package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/service"
)

// runRemote executes the job on a remote ftrepaird (or cluster coordinator)
// instead of in-process: it POSTs the spec, follows the job's event stream
// via the JSON long-poll (progress goes to stderr under -v), and renders the
// final RunReport. The same flag set drives both paths, so
// `ftrepair -case ba -n 3` and `ftrepair -server http://host:8727 -case ba
// -n 3` describe the identical job.
func runRemote(server string, spec service.Spec, verbose, jsonOut, explain bool) {
	server = strings.TrimRight(server, "/")
	body, err := json.Marshal(spec)
	if err != nil {
		fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, server+"/v1/repair", bytes.NewReader(body))
	if err != nil {
		fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client-ID", "ftrepair")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fatal(fmt.Errorf("submitting to %s: %w", server, err))
	}
	view := decodeView(resp)
	if verbose {
		fmt.Fprintf(os.Stderr, "job %s %s (key %s)\n", view.ID, view.State, short(view.Key))
	}

	// Follow the event stream until the job lands. The long-poll fallback is
	// used instead of SSE because it needs no streaming parser and blocks
	// server-side — each round trip returns only news.
	var after int64
	for !view.State.Terminal() {
		page := pollEvents(server, view.ID, after)
		for _, ev := range page.Events {
			after = ev.Seq
			if verbose {
				switch ev.Type {
				case "phase":
					fmt.Fprintf(os.Stderr, "phase: %s\n", ev.Phase)
				case "state":
					msg := ""
					if ev.Message != "" {
						msg = " (" + ev.Message + ")"
					}
					fmt.Fprintf(os.Stderr, "state: %s%s\n", ev.State, msg)
				}
			}
		}
		if page.Done {
			break
		}
	}

	final, err := getJob(server, view.ID)
	if err != nil {
		fatal(err)
	}
	switch final.State {
	case service.StateDone:
	case service.StateFailed:
		fatal(fmt.Errorf("remote job failed: %s", final.Error))
	case service.StateCancelled:
		fatal(fmt.Errorf("remote job cancelled: %s", final.Error))
	default:
		fatal(fmt.Errorf("remote job ended in state %s", final.State))
	}
	report := final.Result
	if report == nil {
		fatal(fmt.Errorf("remote job done but carried no report"))
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fatal(err)
		}
		if report.Verified != nil && !*report.Verified {
			os.Exit(1)
		}
		return
	}

	name := report.Model
	if report.Case != "" {
		name = fmt.Sprintf("%s (n=%d)", report.Case, report.N)
	}
	fmt.Printf("server:            %s\n", server)
	fmt.Printf("case study:        %s\n", name)
	fmt.Printf("algorithm:         %s\n", report.Algorithm)
	fmt.Printf("cache hit:         %t\n", final.CacheHit)
	fmt.Printf("state space:       %.3g states (%d boolean bits)\n", report.States, report.StateBits)
	fmt.Printf("reachable states:  %.3g\n", report.ReachableStates)
	fmt.Printf("compile time:      %v\n", time.Duration(report.CompileNS))
	fmt.Printf("repair time:       %v\n", time.Duration(report.TotalNS))
	fmt.Printf("  step 1:          %v\n", time.Duration(report.Step1NS))
	fmt.Printf("  step 2:          %v\n", time.Duration(report.Step2NS))
	fmt.Printf("outer iterations:  %d\n", report.OuterIterations)
	fmt.Printf("invariant:         %.3g states\n", report.InvariantStates)
	fmt.Printf("fault-span:        %.3g states\n", report.FaultSpanStates)
	fmt.Printf("BDD nodes:         %d\n", report.BDDNodes)
	if report.Costed {
		fmt.Printf("achieved cost:     %.4g (weighted recovery transitions kept)\n", report.AchievedCost)
		fmt.Printf("cost removed:      %.4g (weighted original transitions deleted)\n", report.CostRemoved)
	}
	if final.Predicted != nil {
		fmt.Printf("admission lane:    %s (predicted %v, %d peak nodes)\n",
			final.Lane, time.Duration(final.Predicted.TotalNS), final.Predicted.PeakNodes)
	}
	if report.Verified != nil {
		fmt.Printf("\nverification (%s backend):\n", report.Backend)
		for _, c := range report.Checks {
			mark := "ok"
			if !c.OK {
				mark = "FAIL"
				if c.Warning {
					mark = "warn"
				}
			}
			fmt.Printf("  [%-4s] %s", mark, c.Name)
			if c.Detail != "" {
				fmt.Printf(": %s", c.Detail)
			}
			fmt.Println()
		}
	}
	if explain {
		if report.Verified != nil {
			for _, c := range report.Checks {
				if c.Witness != nil {
					fmt.Printf("\nwitness for failed check:\n%s", c.Witness)
				}
			}
		}
		for _, tr := range report.Witnesses {
			fmt.Printf("\nrecovery demonstration:\n%s", tr)
		}
	}
	if report.Verified != nil && !*report.Verified {
		fatal(fmt.Errorf("verification failed"))
	}
}

func decodeView(resp *http.Response) service.JobView {
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		fatal(err)
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		var apiErr service.APIError
		if json.Unmarshal(raw, &apiErr) == nil && apiErr.Code != "" {
			hint := ""
			if apiErr.RetryAfterS > 0 {
				hint = fmt.Sprintf(" (retry after %ds, queue depth %d)", apiErr.RetryAfterS, apiErr.QueueDepth)
			}
			fatal(fmt.Errorf("server rejected job: %s: %s%s", apiErr.Code, apiErr.Message, hint))
		}
		fatal(fmt.Errorf("server responded %d: %s", resp.StatusCode, raw))
	}
	var view service.JobView
	if err := json.Unmarshal(raw, &view); err != nil {
		fatal(fmt.Errorf("decoding server response: %w", err))
	}
	return view
}

func getJob(server, id string) (service.JobView, error) {
	resp, err := http.Get(server + "/v1/jobs/" + id)
	if err != nil {
		return service.JobView{}, err
	}
	return decodeView(resp), nil
}

func pollEvents(server, id string, after int64) service.EventsPage {
	url := fmt.Sprintf("%s/v1/jobs/%s/events?poll=1&after=%d", server, id, after)
	resp, err := http.Get(url)
	if err != nil {
		fatal(fmt.Errorf("polling events: %w", err))
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		fatal(fmt.Errorf("polling events: server responded %d: %s", resp.StatusCode, raw))
	}
	var page service.EventsPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		fatal(fmt.Errorf("decoding events page: %w", err))
	}
	return page
}

func short(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}
