// Command ftrepair runs one fault-tolerance repair job on a built-in case
// study and reports synthesis statistics, the verification report, and
// (optionally) the synthesized per-process protocol.
//
// Usage:
//
//	ftrepair -case ba -n 3 -alg lazy -verify -protocol
//	ftrepair -case ba -n 3 -explain
//	ftrepair -case ba -n 3 -json | jq .total_ns
//	ftrepair -server http://localhost:8727 -case ba -n 3
//
// With -server the same flag set describes the same job, but it runs on a
// remote ftrepaird (or cluster coordinator) instead of in-process: the spec
// is POSTed, progress is followed over the event stream (-v prints phases),
// and the verified report is rendered locally. -protocol needs the compiled
// state space and is local-only.
//
// Case studies: ba (Byzantine agreement), bafs (Byzantine agreement with
// fail-stop faults), sc (stabilizing chain), ring (Dijkstra token ring),
// tmr (triple modular redundancy). Algorithms: lazy, cautious.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/parse"
	"repro/internal/program"
	"repro/internal/repair"
	"repro/internal/service"
	"repro/internal/verify"
)

func main() {
	var (
		caseName  = flag.String("case", "ba", "case study: ba, bafs, sc, ring, or tmr")
		file      = flag.String("file", "", "load the model from a .ftr file instead of -case")
		n         = flag.Int("n", 3, "instance size (non-generals / chain cells)")
		alg       = flag.String("alg", "lazy", "repair algorithm: lazy or cautious")
		doVerify  = flag.Bool("verify", true, "run the independent verifier on the result")
		backend   = flag.String("backend", "bdd", "verification backend: bdd (exact fixpoints) or sat (bounded model checking)")
		verbose   = flag.Bool("v", false, "log repair progress")
		protocol  = flag.Bool("protocol", false, "print the synthesized per-process protocol")
		pure      = flag.Bool("pure", false, "disable the reachability heuristic (pure lazy)")
		deferCyc  = flag.Bool("defer-cycles", false, "defer cycle-breaking to after Step 2 (ablation)")
		protLimit = flag.Int("protocol-limit", 24, "max protocol lines per process")
		explain   = flag.Bool("explain", false, "extract and pretty-print witness traces: recovery demonstrations on success, failure traces on failed checks")
		witnesses = flag.Int("witnesses", 4, "max recovery demonstrations with -explain (one per fault action)")
		jsonOut   = flag.Bool("json", false, "emit one machine-readable JSON report on stdout")
		timeout   = flag.Duration("timeout", 0, "abort synthesis after this long (0 = no limit)")
		engine    = flag.String("engine", "partitioned", "parallel engine mode: partitioned (private worker managers) or shared (one shared node table)")
		workers   = flag.Int("workers", 0, "parallel-engine workers (0 = GOMAXPROCS, 1 = serial); private managers in partitioned mode, views of one table in shared mode")
		budget    = flag.Int64("node-budget", 0, "fail the run if live BDD nodes exceed this after a collection (0 = unbounded)")
		reorder   = flag.Int64("reorder", 0, "run a BDD variable-reordering (sifting) pass after this many node allocations (0 = off)")
		costModel = flag.String("cost-model", "", "price transitions and minimize repair cost: \"default=N,action=W,proc.action=W,...\" (weights override .ftr cost annotations)")
		server    = flag.String("server", "", "run the job on this ftrepaird (or coordinator) base URL instead of in-process")
	)
	flag.Parse()

	var costs *repair.CostModel
	if *costModel != "" {
		cm, err := parseCostModel(*costModel)
		if err != nil {
			fatal(err)
		}
		costs = cm
	}

	if *server != "" {
		if *protocol {
			fatal(fmt.Errorf("-protocol requires a local run (the compiled state space never leaves the server)"))
		}
		spec := service.Spec{
			Case:        *caseName,
			N:           *n,
			Algorithm:   *alg,
			Pure:        *pure,
			DeferCycles: *deferCyc,
			NoVerify:    !*doVerify,
			TimeoutMS:   timeout.Milliseconds(),
			Engine: &service.EngineSpec{
				Mode:       *engine,
				Workers:    *workers,
				NodeBudget: *budget,
				Reorder:    *reorder,
				Backend:    *backend,
			},
		}
		if costs != nil {
			spec.Cost = &service.CostSpec{Default: costs.Default, Actions: costs.Actions, Minimize: true}
		}
		if *file != "" {
			src, err := os.ReadFile(*file)
			if err != nil {
				fatal(err)
			}
			spec.Case, spec.N, spec.Model = "", 0, string(src)
		}
		if *explain {
			spec.Witnesses = *witnesses
		}
		runRemote(*server, spec, *verbose, *jsonOut, *explain)
		return
	}

	var def *program.Def
	var err error
	if *file != "" {
		src, rerr := os.ReadFile(*file)
		if rerr != nil {
			fatal(rerr)
		}
		if def, err = parse.Program(string(src)); err != nil {
			fatal(err)
		}
	} else if def, err = core.CaseStudy(*caseName, *n); err != nil {
		fatal(err)
	}

	mode, err := program.ParseMode(*engine)
	if err != nil {
		fatal(err)
	}
	opts := repair.DefaultOptions()
	opts.ReachabilityHeuristic = !*pure
	opts.DeferCycleBreaking = *deferCyc
	opts.Mode = string(mode)
	opts.Workers = *workers
	opts.NodeBudget = *budget
	opts.Reorder = *reorder
	if costs != nil {
		opts.Costs = costs
		opts.MinimizeCost = true
	}
	if *verbose {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	be, err := verify.ParseBackend(*backend)
	if err != nil {
		fatal(err)
	}
	job := core.Job{
		Def:       def,
		Algorithm: core.Algorithm(*alg),
		Options:   opts,
		Verify:    *doVerify,
		Backend:   be,
	}
	if *explain {
		job.Witnesses = *witnesses
	}
	out, err := core.Run(ctx, job)
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		cn, cnN := *caseName, *n
		if *file != "" {
			cn, cnN = "", 0
		}
		report := core.NewRunReport(job, out, cn, cnN)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fatal(err)
		}
		if out.Report != nil && !out.Report.OK() {
			os.Exit(1)
		}
		return
	}

	s := out.Compiled.Space
	res := out.Result
	fmt.Printf("case study:        %s\n", def.Name)
	fmt.Printf("algorithm:         %s\n", *alg)
	fmt.Printf("state space:       %.3g states (%d boolean bits)\n",
		s.CountStates(s.ValidCur()), s.TotalBits())
	fmt.Printf("reachable states:  %.3g\n", res.Stats.ReachableStates)
	fmt.Printf("compile time:      %v\n", out.CompileTime)
	if res.Stats.Total > 0 {
		fmt.Printf("repair time:       %v\n", res.Stats.Total)
	}
	if res.Stats.Step1 > 0 || res.Stats.Step2 > 0 {
		fmt.Printf("  step 1:          %v\n", res.Stats.Step1)
		fmt.Printf("  step 2:          %v\n", res.Stats.Step2)
	}
	fmt.Printf("outer iterations:  %d\n", res.Stats.OuterIterations)
	fmt.Printf("engine mode:       %s\n", out.Mode)
	fmt.Printf("engine workers:    %d\n", out.Workers)
	fmt.Printf("invariant:         %.3g states\n", s.CountStates(res.Invariant))
	fmt.Printf("fault-span:        %.3g states\n", s.CountStates(res.FaultSpan))
	fmt.Printf("BDD nodes:         %d\n", res.Stats.BDDNodes)
	if res.Costed {
		fmt.Printf("achieved cost:     %.4g (weighted recovery transitions kept)\n", res.AchievedCost)
		fmt.Printf("cost removed:      %.4g (weighted original transitions deleted)\n", res.CostRemoved)
	}

	if out.Report != nil {
		fmt.Printf("\nverification:\n%s", out.Report)
		if st := out.SATStats; st != nil {
			fmt.Printf("SAT solver:        %d conflicts, %d decisions, %d propagations, %d learned, max level %d\n",
				st.Conflicts, st.Decisions, st.Propagations, st.Learned, st.MaxLevel)
		}
	}
	if *explain {
		if out.Report != nil {
			for _, c := range out.Report.Checks {
				if c.Witness != nil {
					fmt.Printf("\nwitness for failed check:\n%s", c.Witness)
				}
			}
		}
		for _, tr := range res.Witnesses {
			fmt.Printf("\nrecovery demonstration:\n%s", tr)
		}
	}
	if out.Report != nil && !out.Report.OK() {
		fatal(fmt.Errorf("verification failed: %v", out.Report.Failures()))
	}

	if *protocol {
		fmt.Printf("\nsynthesized protocol (restricted to the fault-span):\n")
		m := s.M
		inSpan := m.AndN(res.Trans, res.FaultSpan, s.ValidTrans())
		for _, p := range out.Compiled.Procs {
			part := p.MaxRealizableSubset(res.Trans)
			part = m.And(part, inSpan)
			fmt.Printf("process %s:\n", p.Name)
			for _, line := range p.DescribeActions(part, *protLimit) {
				fmt.Printf("  %s\n", line)
			}
		}
	}
}

// parseCostModel parses the -cost-model flag: comma-separated entries, each
// either "default=N" or "name=weight" where name is an action ("act") or a
// process-qualified action ("proc.act").
func parseCostModel(s string) (*repair.CostModel, error) {
	cm := &repair.CostModel{Actions: map[string]int64{}}
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, val, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("cost-model entry %q: want name=weight", entry)
		}
		w, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
		if err != nil || w < 1 || w > 1<<30 {
			return nil, fmt.Errorf("cost-model entry %q: weight must be an integer in [1, 2^30]", entry)
		}
		if name = strings.TrimSpace(name); name == "default" {
			cm.Default = w
		} else {
			cm.Actions[name] = w
		}
	}
	return cm, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ftrepair:", err)
	os.Exit(1)
}
