// Command benchjson runs the case-study ladder and writes a machine-readable
// performance snapshot: a JSON array of core.RunReport records (the same
// encoding served by `ftrepair -json` and the ftrepaird daemon), one per
// instance, capturing reachable states, BDD nodes, and Step 1 / Step 2 /
// total repair times.
//
// Usage:
//
//	benchjson                 # full ladder -> BENCH_1.json
//	benchjson -quick          # small instances only
//	benchjson -out perf.json  # alternate output path
//	benchjson -workers 4      # parallel engine width (reports gain "workers")
//	benchjson -gc             # GC on/off comparison -> BENCH_4.json
//	benchjson -reorder        # reordering on/off comparison -> BENCH_5.json
//
// The -gc mode runs the two largest stabilizing-chain instances twice each —
// once with automatic collection disabled and once with an aggressive
// collection cadence — and writes records tagged with the GC arm, so the
// peak-live-node reduction of mark-and-sweep GC is directly visible in the
// bdd_peak_nodes fields.
//
// The -reorder mode runs the chain and Byzantine-agreement instances twice
// each — reordering off and on, same GC cadence — and writes records tagged
// with the reordering arm, so the node-table reduction of dynamic sifting is
// directly visible in the bdd_peak_nodes / bdd_nodes_live fields.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/repair"
)

type instance struct {
	name string
	n    int
}

func ladder(quick bool) []instance {
	if quick {
		return []instance{
			{"ba", 3}, {"bafs", 2}, {"sc", 8}, {"ring", 2}, {"tmr", 0},
		}
	}
	return []instance{
		{"ba", 3}, {"ba", 6},
		{"bafs", 2}, {"bafs", 3},
		{"sc", 8}, {"sc", 12},
		{"ring", 2}, {"ring", 3},
		{"tmr", 0},
	}
}

// gcReport is one record of the -gc comparison: a RunReport tagged with the
// collection arm it ran under.
type gcReport struct {
	GC string `json:"gc"` // "off" or "on"
	core.RunReport
}

// aggressiveGCThreshold collects every 2^16 allocations — frequent enough to
// fire many times on the chain instances (the manager default of 2^21 may
// never trigger there, which would make the comparison vacuous).
const aggressiveGCThreshold = 1 << 16

func runOne(ctx context.Context, inst instance, workers, witnesses int, gcThreshold, reorder int64) (core.RunReport, error) {
	def, err := core.CaseStudy(inst.name, inst.n)
	if err != nil {
		return core.RunReport{}, err
	}
	opts := repair.DefaultOptions()
	opts.Workers = workers
	opts.GCThreshold = gcThreshold
	opts.Reorder = reorder
	job := core.Job{
		Def:       def,
		Algorithm: core.LazyRepair,
		Options:   opts,
		Verify:    true,
		Witnesses: witnesses,
	}
	outc, err := core.Run(ctx, job)
	if err != nil {
		return core.RunReport{}, fmt.Errorf("%s n=%d: %w", inst.name, inst.n, err)
	}
	return core.NewRunReport(job, outc, inst.name, inst.n), nil
}

func gcComparison(ctx context.Context, out string, workers, witnesses int) {
	instances := []instance{{"sc", 8}, {"sc", 12}}
	arms := []struct {
		label     string
		threshold int64
	}{
		{"off", -1}, // disable automatic collection
		{"on", aggressiveGCThreshold},
	}
	var reports []gcReport
	for _, inst := range instances {
		for _, arm := range arms {
			r, err := runOne(ctx, inst, workers, witnesses, arm.threshold, 0)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
			reports = append(reports, gcReport{GC: arm.label, RunReport: r})
			fmt.Fprintf(os.Stderr, "benchjson: %-4s n=%-2d gc=%-3s peak=%d live=%d gcruns=%d freed=%d total=%s\n",
				inst.name, inst.n, arm.label, r.BDDPeakNodes, r.BDDNodesLive,
				r.BDDGCRuns, r.BDDNodesFreed, time.Duration(r.TotalNS))
		}
	}
	writeJSON(out, reports, len(reports))
}

// reorderReport is one record of the -reorder comparison: a RunReport tagged
// with the reordering arm it ran under.
type reorderReport struct {
	Reorder string `json:"reorder"` // "off" or "on"
	core.RunReport
}

// reorderSiftThreshold arms a sifting pass every 2^16 allocations (the
// growth gate keeps actual passes much rarer): on the chain instances this
// fires early enough to shrink the Step 1 fixpoint's working set, which is
// where the peak lives.
const reorderSiftThreshold = 1 << 16

// reorderComparison runs the chain and Byzantine-agreement instances with
// reordering off and on. Both arms keep the manager's default GC cadence:
// an aggressive cadence would itself flatten the peaks reordering targets,
// masking the comparison — at the default, the peak-live fields reflect the
// fixpoints' actual working sets under each variable order.
func reorderComparison(ctx context.Context, out string, quick bool, workers, witnesses int) {
	instances := []instance{{"sc", 8}, {"sc", 12}, {"ba", 6}}
	if quick {
		instances = []instance{{"sc", 8}, {"ba", 3}}
	}
	arms := []struct {
		label   string
		reorder int64
	}{
		{"off", 0},
		{"on", reorderSiftThreshold},
	}
	var reports []reorderReport
	for _, inst := range instances {
		for _, arm := range arms {
			r, err := runOne(ctx, inst, workers, witnesses, 0, arm.reorder)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
			reports = append(reports, reorderReport{Reorder: arm.label, RunReport: r})
			fmt.Fprintf(os.Stderr, "benchjson: %-4s n=%-2d reorder=%-3s peak=%d live=%d passes=%d total=%s\n",
				inst.name, inst.n, arm.label, r.BDDPeakNodes, r.BDDNodesLive,
				r.BDDReorderRuns, time.Duration(r.TotalNS))
		}
	}
	writeJSON(out, reports, len(reports))
}

func writeJSON(out string, v any, n int) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d reports to %s\n", n, out)
}

func main() {
	var (
		out       = flag.String("out", "", "output path (default BENCH_1.json, or BENCH_4.json with -gc)")
		quick     = flag.Bool("quick", false, "run only the small instances")
		timeout   = flag.Duration("timeout", 10*time.Minute, "deadline for the whole ladder")
		workers   = flag.Int("workers", 1, "parallel-engine worker managers per job (0 = GOMAXPROCS)")
		witnesses = flag.Int("witnesses", 0, "recovery demonstrations per job (adds witness extraction to the measured phases)")
		gc        = flag.Bool("gc", false, "run the GC on/off comparison on the chain instances instead of the ladder")
		reorder   = flag.Bool("reorder", false, "run the variable-reordering on/off comparison instead of the ladder")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	if *gc {
		if *out == "" {
			*out = "BENCH_4.json"
		}
		gcComparison(ctx, *out, *workers, *witnesses)
		return
	}
	if *reorder {
		if *out == "" {
			*out = "BENCH_5.json"
		}
		reorderComparison(ctx, *out, *quick, *workers, *witnesses)
		return
	}
	if *out == "" {
		*out = "BENCH_1.json"
	}

	var reports []core.RunReport
	for _, inst := range ladder(*quick) {
		r, err := runOne(ctx, inst, *workers, *witnesses, 0, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		reports = append(reports, r)
		fmt.Fprintf(os.Stderr, "benchjson: %-4s n=%-2d reach=%g nodes=%d total=%s witness=%s verified=%t\n",
			inst.name, inst.n, r.ReachableStates, r.BDDNodes,
			time.Duration(r.TotalNS), time.Duration(r.WitnessNS),
			r.Verified != nil && *r.Verified)
	}
	writeJSON(*out, reports, len(reports))
}
