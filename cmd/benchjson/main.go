// Command benchjson runs the case-study ladder and writes a machine-readable
// performance snapshot: a JSON array of core.RunReport records (the same
// encoding served by `ftrepair -json` and the ftrepaird daemon), one per
// instance, capturing reachable states, BDD nodes, and Step 1 / Step 2 /
// total repair times.
//
// Usage:
//
//	benchjson                 # full ladder -> BENCH_1.json
//	benchjson -quick          # small instances only
//	benchjson -out perf.json  # alternate output path
//	benchjson -workers 4      # parallel engine width (reports gain "workers")
//	benchjson -gc             # GC on/off comparison -> BENCH_4.json
//
// The -gc mode runs the two largest stabilizing-chain instances twice each —
// once with automatic collection disabled and once with an aggressive
// collection cadence — and writes records tagged with the GC arm, so the
// peak-live-node reduction of mark-and-sweep GC is directly visible in the
// bdd_peak_nodes fields.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/repair"
)

type instance struct {
	name string
	n    int
}

func ladder(quick bool) []instance {
	if quick {
		return []instance{
			{"ba", 3}, {"bafs", 2}, {"sc", 8}, {"ring", 2}, {"tmr", 0},
		}
	}
	return []instance{
		{"ba", 3}, {"ba", 6},
		{"bafs", 2}, {"bafs", 3},
		{"sc", 8}, {"sc", 12},
		{"ring", 2}, {"ring", 3},
		{"tmr", 0},
	}
}

// gcReport is one record of the -gc comparison: a RunReport tagged with the
// collection arm it ran under.
type gcReport struct {
	GC string `json:"gc"` // "off" or "on"
	core.RunReport
}

// aggressiveGCThreshold collects every 2^16 allocations — frequent enough to
// fire many times on the chain instances (the manager default of 2^21 may
// never trigger there, which would make the comparison vacuous).
const aggressiveGCThreshold = 1 << 16

func runOne(ctx context.Context, inst instance, workers, witnesses int, gcThreshold int64) (core.RunReport, error) {
	def, err := core.CaseStudy(inst.name, inst.n)
	if err != nil {
		return core.RunReport{}, err
	}
	opts := repair.DefaultOptions()
	opts.Workers = workers
	opts.GCThreshold = gcThreshold
	job := core.Job{
		Def:       def,
		Algorithm: core.LazyRepair,
		Options:   opts,
		Verify:    true,
		Witnesses: witnesses,
	}
	outc, err := core.Run(ctx, job)
	if err != nil {
		return core.RunReport{}, fmt.Errorf("%s n=%d: %w", inst.name, inst.n, err)
	}
	return core.NewRunReport(job, outc, inst.name, inst.n), nil
}

func gcComparison(ctx context.Context, out string, workers, witnesses int) {
	instances := []instance{{"sc", 8}, {"sc", 12}}
	arms := []struct {
		label     string
		threshold int64
	}{
		{"off", -1}, // disable automatic collection
		{"on", aggressiveGCThreshold},
	}
	var reports []gcReport
	for _, inst := range instances {
		for _, arm := range arms {
			r, err := runOne(ctx, inst, workers, witnesses, arm.threshold)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
			reports = append(reports, gcReport{GC: arm.label, RunReport: r})
			fmt.Fprintf(os.Stderr, "benchjson: %-4s n=%-2d gc=%-3s peak=%d live=%d gcruns=%d freed=%d total=%s\n",
				inst.name, inst.n, arm.label, r.BDDPeakNodes, r.BDDNodesLive,
				r.BDDGCRuns, r.BDDNodesFreed, time.Duration(r.TotalNS))
		}
	}
	writeJSON(out, reports, len(reports))
}

func writeJSON(out string, v any, n int) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d reports to %s\n", n, out)
}

func main() {
	var (
		out       = flag.String("out", "", "output path (default BENCH_1.json, or BENCH_4.json with -gc)")
		quick     = flag.Bool("quick", false, "run only the small instances")
		timeout   = flag.Duration("timeout", 10*time.Minute, "deadline for the whole ladder")
		workers   = flag.Int("workers", 1, "parallel-engine worker managers per job (0 = GOMAXPROCS)")
		witnesses = flag.Int("witnesses", 0, "recovery demonstrations per job (adds witness extraction to the measured phases)")
		gc        = flag.Bool("gc", false, "run the GC on/off comparison on the chain instances instead of the ladder")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	if *gc {
		if *out == "" {
			*out = "BENCH_4.json"
		}
		gcComparison(ctx, *out, *workers, *witnesses)
		return
	}
	if *out == "" {
		*out = "BENCH_1.json"
	}

	var reports []core.RunReport
	for _, inst := range ladder(*quick) {
		r, err := runOne(ctx, inst, *workers, *witnesses, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		reports = append(reports, r)
		fmt.Fprintf(os.Stderr, "benchjson: %-4s n=%-2d reach=%g nodes=%d total=%s witness=%s verified=%t\n",
			inst.name, inst.n, r.ReachableStates, r.BDDNodes,
			time.Duration(r.TotalNS), time.Duration(r.WitnessNS),
			r.Verified != nil && *r.Verified)
	}
	writeJSON(*out, reports, len(reports))
}
