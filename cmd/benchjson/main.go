// Command benchjson runs the case-study ladder and writes a machine-readable
// performance snapshot: a JSON array of core.RunReport records (the same
// encoding served by `ftrepair -json` and the ftrepaird daemon), one per
// instance, capturing reachable states, BDD nodes, and Step 1 / Step 2 /
// total repair times.
//
// Usage:
//
//	benchjson                 # full ladder -> BENCH_1.json
//	benchjson -quick          # small instances only
//	benchjson -out perf.json  # alternate output path
//	benchjson -workers 4      # parallel engine width (reports gain "workers")
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/repair"
)

type instance struct {
	name string
	n    int
}

func ladder(quick bool) []instance {
	if quick {
		return []instance{
			{"ba", 3}, {"bafs", 2}, {"sc", 8}, {"ring", 2}, {"tmr", 0},
		}
	}
	return []instance{
		{"ba", 3}, {"ba", 6},
		{"bafs", 2}, {"bafs", 3},
		{"sc", 8}, {"sc", 12},
		{"ring", 2}, {"ring", 3},
		{"tmr", 0},
	}
}

func main() {
	var (
		out       = flag.String("out", "BENCH_1.json", "output path")
		quick     = flag.Bool("quick", false, "run only the small instances")
		timeout   = flag.Duration("timeout", 10*time.Minute, "deadline for the whole ladder")
		workers   = flag.Int("workers", 1, "parallel-engine worker managers per job (0 = GOMAXPROCS)")
		witnesses = flag.Int("witnesses", 0, "recovery demonstrations per job (adds witness extraction to the measured phases)")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var reports []core.RunReport
	for _, inst := range ladder(*quick) {
		def, err := core.CaseStudy(inst.name, inst.n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		opts := repair.DefaultOptions()
		opts.Workers = *workers
		job := core.Job{
			Def:       def,
			Algorithm: core.LazyRepair,
			Options:   opts,
			Verify:    true,
			Witnesses: *witnesses,
		}
		outc, err := core.Run(ctx, job)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s n=%d: %v\n", inst.name, inst.n, err)
			os.Exit(1)
		}
		r := core.NewRunReport(job, outc, inst.name, inst.n)
		reports = append(reports, r)
		fmt.Fprintf(os.Stderr, "benchjson: %-4s n=%-2d reach=%g nodes=%d total=%s witness=%s verified=%t\n",
			inst.name, inst.n, r.ReachableStates, r.BDDNodes,
			time.Duration(r.TotalNS), time.Duration(r.WitnessNS),
			r.Verified != nil && *r.Verified)
	}

	data, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d reports to %s\n", len(reports), *out)
}
