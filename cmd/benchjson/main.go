// Command benchjson runs the case-study ladder and writes a machine-readable
// performance snapshot: a JSON array of core.RunReport records (the same
// encoding served by `ftrepair -json` and the ftrepaird daemon), one per
// instance, capturing reachable states, BDD nodes, and Step 1 / Step 2 /
// total repair times.
//
// Usage:
//
//	benchjson                 # full ladder -> BENCH_1.json
//	benchjson -quick          # small instances only
//	benchjson -out perf.json  # alternate output path
//	benchjson -workers 4      # parallel engine width (reports gain "workers")
//	benchjson -gc             # GC on/off comparison -> BENCH_4.json
//	benchjson -reorder        # reordering on/off comparison -> BENCH_5.json
//	benchjson -backend        # BDD vs SAT verification -> BENCH_6.json
//	benchjson -engine shared  # run the ladder on the shared-table engine
//	benchjson -scaling        # per-core scaling, shared vs partitioned -> BENCH_8.json
//	benchjson -cost           # cost-blind vs cost-aware synthesis -> BENCH_9.json
//
// The -gc mode runs the two largest stabilizing-chain instances twice each —
// once with automatic collection disabled and once with an aggressive
// collection cadence — and writes records tagged with the GC arm, so the
// peak-live-node reduction of mark-and-sweep GC is directly visible in the
// bdd_peak_nodes fields.
//
// The -reorder mode runs the chain and Byzantine-agreement instances twice
// each — reordering off and on, same GC cadence — and writes records tagged
// with the reordering arm, so the node-table reduction of dynamic sifting is
// directly visible in the bdd_peak_nodes / bdd_nodes_live fields.
//
// The -scaling mode runs the stabilizing-chain instances sc(8) through
// sc(12) across a worker ladder (1, 2, 4) under both parallel engines —
// partitioned (private worker managers, canonical DAG transfer at merges)
// and shared (one lock-free node table, per-worker caches) — and writes one
// RunReport per cell plus a host block (OS, arch, CPU count); engine_mode,
// workers, the *_ns fields, and the fix_* scheduler counters make the
// scaling curves directly plottable. The partitioned workers=1 row is the
// serial engine. Interpret the numbers against the host block: on a box
// with fewer physical cores than workers, the extra workers measure
// scheduling overhead, not speedup. Earlier snapshots (BENCH_7.json) pinned
// the instance at sc(8) because the round-based parallel fixpoints of that
// generation recomputed images of the whole reached set every round, which
// on the deep chain of sc(12) made any multi-worker run orders of magnitude
// slower than serial; the unified frontier-chained scheduler (see
// internal/program/fixpoint.go and DESIGN.md §19) removed that pathology,
// so the ladder now runs unpinned through sc(12).
//
// The -backend mode verifies each ladder instance's repaired program under
// both verification backends (BDD fixpoints vs SAT bounded model checking)
// and then runs the swap-permutation deep-counterexample model — a program
// whose shortest safety violation is n(n-1)/2 adjacent transpositions away —
// under both, so the records show where exact fixpoints win (closing a
// passing verdict) and what a deep violation costs each engine.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/program"
	"repro/internal/repair"
	"repro/internal/sat"
	"repro/internal/symbolic"
	"repro/internal/verify"
)

type instance struct {
	name string
	n    int
}

func ladder(quick bool) []instance {
	if quick {
		return []instance{
			{"ba", 3}, {"bafs", 2}, {"sc", 8}, {"ring", 2}, {"tmr", 0},
		}
	}
	return []instance{
		{"ba", 3}, {"ba", 6},
		{"bafs", 2}, {"bafs", 3},
		{"sc", 8}, {"sc", 12},
		{"ring", 2}, {"ring", 3},
		{"tmr", 0},
	}
}

// gcReport is one record of the -gc comparison: a RunReport tagged with the
// collection arm it ran under.
type gcReport struct {
	GC string `json:"gc"` // "off" or "on"
	core.RunReport
}

// aggressiveGCThreshold collects every 2^16 allocations — frequent enough to
// fire many times on the chain instances (the manager default of 2^21 may
// never trigger there, which would make the comparison vacuous).
const aggressiveGCThreshold = 1 << 16

func runOne(ctx context.Context, inst instance, mode string, workers, witnesses int, gcThreshold, reorder int64) (core.RunReport, error) {
	def, err := core.CaseStudy(inst.name, inst.n)
	if err != nil {
		return core.RunReport{}, err
	}
	opts := repair.DefaultOptions()
	opts.Mode = mode
	opts.Workers = workers
	opts.GCThreshold = gcThreshold
	opts.Reorder = reorder
	job := core.Job{
		Def:       def,
		Algorithm: core.LazyRepair,
		Options:   opts,
		Verify:    true,
		Witnesses: witnesses,
	}
	outc, err := core.Run(ctx, job)
	if err != nil {
		return core.RunReport{}, fmt.Errorf("%s n=%d: %w", inst.name, inst.n, err)
	}
	return core.NewRunReport(job, outc, inst.name, inst.n), nil
}

func gcComparison(ctx context.Context, out, mode string, workers, witnesses int) {
	instances := []instance{{"sc", 8}, {"sc", 12}}
	arms := []struct {
		label     string
		threshold int64
	}{
		{"off", -1}, // disable automatic collection
		{"on", aggressiveGCThreshold},
	}
	var reports []gcReport
	for _, inst := range instances {
		for _, arm := range arms {
			r, err := runOne(ctx, inst, mode, workers, witnesses, arm.threshold, 0)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
			reports = append(reports, gcReport{GC: arm.label, RunReport: r})
			fmt.Fprintf(os.Stderr, "benchjson: %-4s n=%-2d gc=%-3s peak=%d live=%d gcruns=%d freed=%d total=%s\n",
				inst.name, inst.n, arm.label, r.BDDPeakNodes, r.BDDNodesLive,
				r.BDDGCRuns, r.BDDNodesFreed, time.Duration(r.TotalNS))
		}
	}
	writeJSON(out, reports, len(reports))
}

// reorderReport is one record of the -reorder comparison: a RunReport tagged
// with the reordering arm it ran under.
type reorderReport struct {
	Reorder string `json:"reorder"` // "off" or "on"
	core.RunReport
}

// reorderSiftThreshold arms a sifting pass every 2^16 allocations (the
// growth gate keeps actual passes much rarer): on the chain instances this
// fires early enough to shrink the Step 1 fixpoint's working set, which is
// where the peak lives.
const reorderSiftThreshold = 1 << 16

// reorderComparison runs the chain and Byzantine-agreement instances with
// reordering off and on. Both arms keep the manager's default GC cadence:
// an aggressive cadence would itself flatten the peaks reordering targets,
// masking the comparison — at the default, the peak-live fields reflect the
// fixpoints' actual working sets under each variable order.
func reorderComparison(ctx context.Context, out, mode string, quick bool, workers, witnesses int) {
	instances := []instance{{"sc", 8}, {"sc", 12}, {"ba", 6}}
	if quick {
		instances = []instance{{"sc", 8}, {"ba", 3}}
	}
	arms := []struct {
		label   string
		reorder int64
	}{
		{"off", 0},
		{"on", reorderSiftThreshold},
	}
	var reports []reorderReport
	for _, inst := range instances {
		for _, arm := range arms {
			r, err := runOne(ctx, inst, mode, workers, witnesses, 0, arm.reorder)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
			reports = append(reports, reorderReport{Reorder: arm.label, RunReport: r})
			fmt.Fprintf(os.Stderr, "benchjson: %-4s n=%-2d reorder=%-3s peak=%d live=%d passes=%d total=%s\n",
				inst.name, inst.n, arm.label, r.BDDPeakNodes, r.BDDNodesLive,
				r.BDDReorderRuns, time.Duration(r.TotalNS))
		}
	}
	writeJSON(out, reports, len(reports))
}

// scalingHost records where a scaling run happened. A scaling curve is
// meaningless without it: workers beyond the physical core count measure
// scheduling overhead, not speedup.
type scalingHost struct {
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	CPUs       int    `json:"cpus"` // runtime.NumCPU — what the OS exposes
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
}

// scalingSnapshot is the BENCH_8.json shape: host metadata plus one
// RunReport per (instance, engine, workers) cell.
type scalingSnapshot struct {
	Host scalingHost      `json:"host"`
	Runs []core.RunReport `json:"runs"`
}

// scalingComparison runs the stabilizing-chain instances sc(8)..sc(12)
// across a worker ladder under both parallel engines (the partitioned
// workers=1 cell is the serial engine). Each cell is a full repair+verify
// job; the RunReport's engine_mode and workers fields identify the cell,
// total_ns carries the wall time, and the fix_* fields carry the scheduler's
// round/image/frontier counters, so the output is directly plottable as
// scaling curves per instance.
func scalingComparison(ctx context.Context, out string, quick bool, witnesses int) {
	sizes := []int{8, 9, 10, 11, 12}
	if quick {
		sizes = []int{5, 8}
	}
	engines := []string{string(program.ModePartitioned), string(program.ModeShared)}
	ladder := []int{1, 2, 4}
	snap := scalingSnapshot{Host: scalingHost{
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}}
	for _, n := range sizes {
		inst := instance{"sc", n}
		for _, mode := range engines {
			for _, w := range ladder {
				r, err := runOne(ctx, inst, mode, w, witnesses, 0, 0)
				if err != nil {
					fmt.Fprintln(os.Stderr, "benchjson:", err)
					os.Exit(1)
				}
				snap.Runs = append(snap.Runs, r)
				fmt.Fprintf(os.Stderr, "benchjson: %-4s n=%-2d engine=%-11s workers=%d total=%s verify=%s rounds=%d images=%d\n",
					inst.name, inst.n, r.EngineMode, r.Workers,
					time.Duration(r.TotalNS), time.Duration(r.VerifyNS), r.FixRounds, r.FixImages)
			}
		}
	}
	writeJSON(out, snap, len(snap.Runs))
}

// costReport is one record of the -cost comparison: a RunReport tagged with
// the arm it ran under ("baseline" prices transitions but synthesizes
// cost-blind; "mincost" turns on cost-aware synthesis).
type costReport struct {
	Arm string `json:"arm"` // "baseline" or "mincost"
	core.RunReport
}

// costComparison runs each ladder instance twice under a unit cost model —
// once cost-blind, once with cost-aware synthesis — and writes BENCH_9.json.
// It enforces the refinement's contract: identical verdicts on every
// instance, achieved_cost never higher under mincost, and strictly lower on
// at least one instance (otherwise the pass did nothing and the run fails).
func costComparison(ctx context.Context, out, mode string, quick bool, workers int) {
	var reports []costReport
	improved := false
	for _, inst := range ladder(quick) {
		def, err := core.CaseStudy(inst.name, inst.n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var arms [2]core.RunReport
		for i, arm := range []string{"baseline", "mincost"} {
			opts := repair.DefaultOptions()
			opts.Mode = mode
			opts.Workers = workers
			opts.Costs = &repair.CostModel{Default: 1}
			opts.MinimizeCost = arm == "mincost"
			job := core.Job{Def: def, Algorithm: core.LazyRepair, Options: opts, Verify: true}
			outc, err := core.Run(ctx, job)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %s n=%d %s: %v\n", inst.name, inst.n, arm, err)
				os.Exit(1)
			}
			arms[i] = core.NewRunReport(job, outc, inst.name, inst.n)
			reports = append(reports, costReport{Arm: arm, RunReport: arms[i]})
			fmt.Fprintf(os.Stderr, "benchjson: %-4s n=%-2d arm=%-8s cost=%-8g removed=%-8g total=%s verified=%t\n",
				inst.name, inst.n, arm, arms[i].AchievedCost, arms[i].CostRemoved,
				time.Duration(arms[i].TotalNS), arms[i].Verified != nil && *arms[i].Verified)
		}
		base, min := arms[0], arms[1]
		if base.Verified == nil || min.Verified == nil || *base.Verified != *min.Verified {
			fmt.Fprintf(os.Stderr, "benchjson: %s n=%d: verdicts differ between arms\n", inst.name, inst.n)
			os.Exit(1)
		}
		if min.AchievedCost > base.AchievedCost {
			fmt.Fprintf(os.Stderr, "benchjson: %s n=%d: mincost achieved %g > baseline %g\n",
				inst.name, inst.n, min.AchievedCost, base.AchievedCost)
			os.Exit(1)
		}
		if min.AchievedCost < base.AchievedCost {
			improved = true
		}
	}
	if !improved {
		fmt.Fprintln(os.Stderr, "benchjson: cost-aware synthesis improved no instance")
		os.Exit(1)
	}
	writeJSON(out, reports, len(reports))
}

// backendRecord is one record of the -backend comparison: one verification
// pass of one model under one backend.
type backendRecord struct {
	Backend string `json:"backend"` // "bdd" or "sat"
	Case    string `json:"case"`
	N       int    `json:"n,omitempty"`
	// Repaired marks passes over the repaired program (the verdict is a
	// pass); false means the unrepaired deep-counterexample model.
	Repaired bool  `json:"repaired"`
	Verified bool  `json:"verified"`
	VerifyNS int64 `json:"verify_ns"`
	// CounterexampleDepth is the length (steps) of the safety trace when the
	// verdict failed; both backends must find the same shortest depth.
	CounterexampleDepth int        `json:"counterexample_depth,omitempty"`
	SAT                 *sat.Stats `json:"sat,omitempty"`
}

// swapDef builds the deep-counterexample model: n variables over domain n,
// starting as the identity permutation, with one process that may swap any
// adjacent pair (simultaneous copy of each into the other). The bad set is
// the reversed permutation, whose shortest derivation is n(n-1)/2 adjacent
// transpositions — every inversion must be introduced by its own swap — so
// the counterexample depth grows quadratically while the state space stays
// tiny. BDD reachability closes in n(n-1)/2 frontier layers; the SAT backend
// must unroll that many frames before the target becomes satisfiable.
func swapDef(n int) *program.Def {
	d := &program.Def{Name: fmt.Sprintf("swap-%d", n)}
	v := func(i int) string { return fmt.Sprintf("v%d", i) }
	var names []string
	var identity, reversed []expr.Expr
	for i := 0; i < n; i++ {
		d.Vars = append(d.Vars, symbolic.VarSpec{Name: v(i), Domain: n})
		names = append(names, v(i))
		identity = append(identity, expr.Eq(v(i), i))
		reversed = append(reversed, expr.Eq(v(i), n-1-i))
	}
	proc := &program.Process{Name: "swapper", Read: names, Write: names}
	for i := 0; i+1 < n; i++ {
		proc.Actions = append(proc.Actions, program.Action{
			Name:    fmt.Sprintf("swap-%d", i),
			Guard:   expr.True,
			Updates: []program.Update{program.Copy(v(i), v(i+1)), program.Copy(v(i+1), v(i))},
		})
	}
	d.Processes = []*program.Process{proc}
	d.Invariant = expr.And(identity...)
	d.BadStates = expr.And(reversed...)
	return d
}

// verifyUnder times one verification pass of res under the given backend.
func verifyUnder(ctx context.Context, c *program.Compiled, res *repair.Result, backend verify.Backend) (*verify.Report, time.Duration, error) {
	t0 := time.Now()
	rep, err := verify.ResultBackendEngine(ctx, program.SerialEngine(c), res, backend, true)
	return rep, time.Since(t0), err
}

// traceDepth returns the step count of the first failed check's witness, or
// zero when every check passed.
func traceDepth(rep *verify.Report) int {
	for _, ck := range rep.Checks {
		if ck.Witness != nil && len(ck.Witness.Steps) > 0 {
			return len(ck.Witness.Steps) - 1
		}
	}
	return 0
}

func backendComparison(ctx context.Context, out string, quick bool, workers int) {
	backends := []verify.Backend{verify.BackendBDD, verify.BackendSAT}
	var records []backendRecord

	// Repaired ladder — always the small instances: a passing SAT verdict
	// needs the loop-free-path completeness proof, whose CNF grows
	// quadratically with the depth bound, so the large instances belong to
	// the BDD engine (that asymmetry is exactly what the records document).
	for _, inst := range ladder(true) {
		def, err := core.CaseStudy(inst.name, inst.n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		c, err := def.Compile()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		opts := repair.DefaultOptions()
		opts.Workers = workers
		res, err := repair.Lazy(ctx, c, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s n=%d: %v\n", inst.name, inst.n, err)
			os.Exit(1)
		}
		for _, backend := range backends {
			rep, d, err := verifyUnder(ctx, c, res, backend)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %s n=%d %s: %v\n", inst.name, inst.n, backend, err)
				os.Exit(1)
			}
			records = append(records, backendRecord{
				Backend: string(backend), Case: inst.name, N: inst.n,
				Repaired: true, Verified: rep.OK(), VerifyNS: d.Nanoseconds(), SAT: rep.SAT,
			})
			fmt.Fprintf(os.Stderr, "benchjson: %-7s n=%-2d backend=%-3s repaired verified=%-5t verify=%s\n",
				inst.name, inst.n, backend, rep.OK(), d)
		}
	}

	// Deep counterexample: the unrepaired swap model under its identity
	// invariant, bad set at quadratic distance.
	n := 6
	if quick {
		n = 5
	}
	def := swapDef(n)
	c, err := def.Compile()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	res := &repair.Result{Trans: c.Trans, Invariant: c.Invariant, FaultSpan: c.Space.ValidCur()}
	want := n * (n - 1) / 2
	for _, backend := range backends {
		rep, d, err := verifyUnder(ctx, c, res, backend)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s %s: %v\n", def.Name, backend, err)
			os.Exit(1)
		}
		depth := traceDepth(rep)
		if depth != want {
			fmt.Fprintf(os.Stderr, "benchjson: %s %s: counterexample depth %d, want %d\n", def.Name, backend, depth, want)
			os.Exit(1)
		}
		records = append(records, backendRecord{
			Backend: string(backend), Case: def.Name,
			Verified: rep.OK(), VerifyNS: d.Nanoseconds(), CounterexampleDepth: depth, SAT: rep.SAT,
		})
		fmt.Fprintf(os.Stderr, "benchjson: %-7s      backend=%-3s depth=%d verify=%s\n", def.Name, backend, depth, d)
	}
	writeJSON(out, records, len(records))
}

func writeJSON(out string, v any, n int) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d reports to %s\n", n, out)
}

func main() {
	var (
		out       = flag.String("out", "", "output path (default BENCH_1.json, or BENCH_4.json with -gc)")
		quick     = flag.Bool("quick", false, "run only the small instances")
		timeout   = flag.Duration("timeout", 10*time.Minute, "deadline for the whole ladder")
		workers   = flag.Int("workers", 1, "parallel-engine workers per job (0 = GOMAXPROCS)")
		engine    = flag.String("engine", "partitioned", "parallel engine mode: partitioned or shared")
		witnesses = flag.Int("witnesses", 0, "recovery demonstrations per job (adds witness extraction to the measured phases)")
		gc        = flag.Bool("gc", false, "run the GC on/off comparison on the chain instances instead of the ladder")
		reorder   = flag.Bool("reorder", false, "run the variable-reordering on/off comparison instead of the ladder")
		backend   = flag.Bool("backend", false, "run the BDD vs SAT verification-backend comparison instead of the ladder")
		scaling   = flag.Bool("scaling", false, "run the per-core scaling comparison (shared vs partitioned engine) instead of the ladder")
		cost      = flag.Bool("cost", false, "run the cost-blind vs cost-aware synthesis comparison instead of the ladder")
	)
	flag.Parse()

	mode, err := program.ParseMode(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	if *gc {
		if *out == "" {
			*out = "BENCH_4.json"
		}
		gcComparison(ctx, *out, string(mode), *workers, *witnesses)
		return
	}
	if *reorder {
		if *out == "" {
			*out = "BENCH_5.json"
		}
		reorderComparison(ctx, *out, string(mode), *quick, *workers, *witnesses)
		return
	}
	if *backend {
		if *out == "" {
			*out = "BENCH_6.json"
		}
		backendComparison(ctx, *out, *quick, *workers)
		return
	}
	if *scaling {
		if *out == "" {
			*out = "BENCH_8.json"
		}
		scalingComparison(ctx, *out, *quick, *witnesses)
		return
	}
	if *cost {
		if *out == "" {
			*out = "BENCH_9.json"
		}
		costComparison(ctx, *out, string(mode), *quick, *workers)
		return
	}
	if *out == "" {
		*out = "BENCH_1.json"
	}

	var reports []core.RunReport
	for _, inst := range ladder(*quick) {
		r, err := runOne(ctx, inst, string(mode), *workers, *witnesses, 0, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		reports = append(reports, r)
		fmt.Fprintf(os.Stderr, "benchjson: %-4s n=%-2d reach=%g nodes=%d total=%s witness=%s verified=%t\n",
			inst.name, inst.n, r.ReachableStates, r.BDDNodes,
			time.Duration(r.TotalNS), time.Duration(r.WitnessNS),
			r.Verified != nil && *r.Verified)
	}
	writeJSON(*out, reports, len(reports))
}
