// Command ftrepaird is the repair daemon: an HTTP/JSON service that accepts
// fault-tolerance repair jobs, runs them on a worker pool with bounded
// queueing, content-addressed result caching, and per-job deadlines, and
// exposes status, health, and Prometheus metrics.
//
// Usage:
//
//	ftrepaird -addr :8727 -workers 4 -queue 64 -cache 256 -default-timeout 5m
//
// API:
//
//	POST   /v1/repair      {"case":"ba","n":3}  or  {"model":"program ..."}
//	GET    /v1/jobs/{id}   job status and (when done) the verified result
//	DELETE /v1/jobs/{id}   cancel a queued or running job
//	GET    /healthz        liveness
//	GET    /metrics        queue depth, cache hit ratio, per-phase latency
//	                       (Prometheus text; /metrics.json for the same as JSON)
//	GET    /debug/pprof/   Go profiling endpoints (only with -pprof)
//
// See the README's "Running the service" section for curl examples.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8727", "listen address")
		workers    = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		jobWorkers = flag.Int("job-workers", 0, "default per-job parallel-engine width for specs that omit workers (0 = serial jobs)")
		queueDepth = flag.Int("queue", 64, "bounded work-queue depth")
		cacheSize  = flag.Int("cache", 256, "result-cache entries")
		defTimeout = flag.Duration("default-timeout", 5*time.Minute, "per-job deadline when the spec sets none")
		withPprof  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (opt-in: exposes goroutine dumps and heap profiles)")
		verbose    = flag.Bool("v", false, "log job lifecycle events")
	)
	flag.Parse()

	cfg := service.Config{
		Workers:        *workers,
		JobWorkers:     *jobWorkers,
		QueueDepth:     *queueDepth,
		CacheEntries:   *cacheSize,
		DefaultTimeout: *defTimeout,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	svc := service.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftrepaird:", err)
		os.Exit(1)
	}
	handler := svc.Handler()
	if *withPprof {
		// The profiling endpoints are mounted only on explicit request: they
		// expose process internals and cost CPU while scraped, so a production
		// daemon keeps them off unless an operator is debugging it.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	srv := &http.Server{Handler: handler}
	log.Printf("ftrepaird: serving on http://%s (workers=%d queue=%d cache=%d pprof=%t)",
		ln.Addr(), cfg.Workers, cfg.QueueDepth, cfg.CacheEntries, *withPprof)

	// Graceful shutdown: stop accepting, cancel live jobs, drain workers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("ftrepaird: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		svc.Close()
	}()

	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "ftrepaird:", err)
		os.Exit(1)
	}
	<-done
}
