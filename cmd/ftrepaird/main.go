// Command ftrepaird is the repair daemon: an HTTP/JSON service that accepts
// fault-tolerance repair jobs, runs them on a worker pool with bounded
// queueing, content-addressed result caching (optionally spilled to disk),
// cost-aware admission control, and per-job deadlines, and exposes status,
// streaming progress, health, and Prometheus metrics.
//
// Usage:
//
//	ftrepaird -addr :8727 -workers 4 -queue 64 -cache 256 -default-timeout 5m
//	ftrepaird -spill-dir /var/lib/ftrepaird -quota-rate 2 -shed-watermark 32
//	ftrepaird -mode coordinator -replicas http://n1:8727,http://n2:8727,http://n3:8727
//
// In coordinator mode the process runs no synthesis itself: it consistent-
// hash routes submissions across the configured replicas by content key,
// fails over around dead replicas, and relays job status and event streams,
// presenting the same HTTP surface as a single daemon.
//
// API:
//
//	POST   /v1/repair             {"case":"ba","n":3}  or  {"model":"program ..."}
//	GET    /v1/jobs/{id}          job status and (when done) the verified result
//	GET    /v1/jobs/{id}/events   progress stream: SSE, or JSON long-poll with ?poll=1
//	DELETE /v1/jobs/{id}          cancel a queued or running job
//	GET    /healthz               liveness (coordinator mode: per-replica view)
//	GET    /metrics               queue depth, cache hit ratio, per-phase latency
//	                              (Prometheus text; /metrics.json for the same as JSON)
//	GET    /debug/pprof/          Go profiling endpoints (only with -pprof)
//
// See the README's "Running the service" and "Clustering" sections for curl
// examples.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8727", "listen address")
		mode       = flag.String("mode", "single", "single (run jobs locally) or coordinator (route jobs across -replicas)")
		workers    = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		jobWorkers = flag.Int("job-workers", 0, "default per-job parallel-engine width for specs that omit workers (0 = serial jobs)")
		queueDepth = flag.Int("queue", 64, "bounded work-queue depth")
		cacheSize  = flag.Int("cache", 256, "result-cache entries")
		defTimeout = flag.Duration("default-timeout", 5*time.Minute, "per-job deadline when the spec sets none")
		withPprof  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (opt-in: exposes goroutine dumps and heap profiles)")
		verbose    = flag.Bool("v", false, "log job lifecycle events")

		// Persistent spill + admission control (single mode).
		spillDir    = flag.String("spill-dir", "", "directory for the persistent result-cache spill (empty = memory-only cache)")
		spillMax    = flag.Int("spill-entries", 4096, "max spill entries on disk (oldest evicted first)")
		quotaRate   = flag.Float64("quota-rate", 0, "per-client admitted submissions per second, token bucket (0 = no quotas)")
		quotaBurst  = flag.Int("quota-burst", 8, "per-client token-bucket burst")
		shedMark    = flag.Int("shed-watermark", 0, "shed predicted-expensive jobs once the general queue lane holds this many (0 = off)")
		fastWorkers = flag.Int("fast-workers", 0, "pool workers reserved for the predicted-cheap fast lane")
		fastLane    = flag.Duration("fast-lane", 100*time.Millisecond, "predicted serial wall time under which a job takes the fast lane (negative = off)")
		costScale   = flag.Int64("cost-budget-scale", 0, "NodeBudget = scale x predicted peak nodes for predicted-expensive jobs without their own budget (0 = off)")

		// Coordinator mode.
		replicas = flag.String("replicas", "", "comma-separated replica base URLs (coordinator mode)")
		vnodes   = flag.Int("vnodes", 0, "virtual nodes per replica on the hash ring (0 = default)")
		probe    = flag.Duration("probe-interval", 5*time.Second, "replica health-probe period (coordinator mode; 0 = request-path detection only)")
	)
	flag.Parse()

	var handler http.Handler
	var shutdown func()
	switch *mode {
	case "single":
		cfg := service.Config{
			Workers:         *workers,
			JobWorkers:      *jobWorkers,
			QueueDepth:      *queueDepth,
			CacheEntries:    *cacheSize,
			DefaultTimeout:  *defTimeout,
			SpillDir:        *spillDir,
			SpillEntries:    *spillMax,
			QuotaRate:       *quotaRate,
			QuotaBurst:      *quotaBurst,
			ShedWatermark:   *shedMark,
			FastWorkers:     *fastWorkers,
			FastLaneNS:      fastLane.Nanoseconds(),
			CostBudgetScale: *costScale,
		}
		if *verbose {
			cfg.Logf = log.Printf
		}
		svc := service.New(cfg)
		handler = svc.Handler()
		shutdown = svc.Close
		log.Printf("ftrepaird: serving on %s (workers=%d queue=%d cache=%d spill=%q pprof=%t)",
			*addr, cfg.Workers, cfg.QueueDepth, cfg.CacheEntries, cfg.SpillDir, *withPprof)
	case "coordinator":
		ccfg := cluster.Config{
			Replicas:      splitList(*replicas),
			VirtualNodes:  *vnodes,
			ProbeInterval: *probe,
		}
		if *verbose {
			ccfg.Logf = log.Printf
		}
		coord, err := cluster.New(ccfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ftrepaird:", err)
			os.Exit(1)
		}
		handler = coord.Handler()
		shutdown = coord.Close
		log.Printf("ftrepaird: coordinating %d replicas on %s (vnodes=%d probe=%v)",
			len(ccfg.Replicas), *addr, *vnodes, *probe)
	default:
		fmt.Fprintf(os.Stderr, "ftrepaird: unknown -mode %q (want single or coordinator)\n", *mode)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftrepaird:", err)
		os.Exit(1)
	}
	if *withPprof {
		// The profiling endpoints are mounted only on explicit request: they
		// expose process internals and cost CPU while scraped, so a production
		// daemon keeps them off unless an operator is debugging it.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	srv := &http.Server{Handler: handler}

	// Graceful shutdown: stop accepting, cancel live jobs, drain workers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("ftrepaird: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		shutdown()
	}()

	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "ftrepaird:", err)
		os.Exit(1)
	}
	<-done
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
