// Command tables regenerates the paper's evaluation tables:
//
//	Table I   — Byzantine agreement: cautious repair vs lazy repair
//	            (Step 1 / Step 2), with reachable-state counts.
//	Table II  — Stabilizing chain: lazy repair scaling to huge state
//	            spaces; Step 2 stays flat while Step 1 grows.
//	Table III — Byzantine agreement with fail-stop faults (the caption of
//	            the paper's garbled second table).
//	Table IV  — Ablations: the reachability heuristic (pure lazy) and the
//	            placement of cycle-breaking.
//
// Absolute times differ from the paper (different machine, BDD engine and
// reconstructed models); the shapes — who wins, how the gap grows, Step 2
// staying flat — are the reproduction targets. See EXPERIMENTS.md.
//
// Usage:
//
//	tables -table all -budget 120s
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/casestudies"
	"repro/internal/program"
	"repro/internal/repair"
	"repro/internal/verify"
)

type row struct {
	label     string
	states    float64 // reachable states
	cautious  time.Duration
	step1     time.Duration
	step2     time.Duration
	ok        bool
	cautiousS string // rendered cautious cell (may be "—" or ">budget")
}

func main() {
	var (
		table  = flag.String("table", "all", "which table to print: 1, 2, 3, 4, or all")
		budget = flag.Duration("budget", 120*time.Second, "per-cell time budget; slower cells are skipped")
		baStr  = flag.String("ba-sizes", "3,4,5,6,8,10", "BA instance sizes for Table I")
		scStr  = flag.String("sc-sizes", "8,12,16,20,22", "chain sizes for Table II")
		bfStr  = flag.String("bafs-sizes", "2,3,4,5", "BAFS sizes for Table III")
		check  = flag.Bool("verify", true, "verify every synthesized program")
	)
	flag.Parse()

	cfg := config{budget: *budget, verify: *check}
	switch *table {
	case "1":
		table1(cfg, sizes(*baStr))
	case "2":
		table2(cfg, sizes(*scStr))
	case "3":
		table3(cfg, sizes(*bfStr))
	case "4":
		table4(cfg, sizes(*baStr))
	case "all":
		table1(cfg, sizes(*baStr))
		table2(cfg, sizes(*scStr))
		table3(cfg, sizes(*bfStr))
		table4(cfg, sizes(*baStr))
	default:
		fmt.Fprintln(os.Stderr, "tables: unknown -table", *table)
		os.Exit(1)
	}
}

type config struct {
	budget time.Duration
	verify bool
}

func sizes(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables: bad size list:", s)
			os.Exit(1)
		}
		out = append(out, n)
	}
	return out
}

// runOne compiles def in a fresh manager and repairs it with alg, verifying
// the result. It returns the result and whether verification passed.
func runOne(cfg config, def *program.Def, alg func(context.Context, *program.Compiled, repair.Options) (*repair.Result, error), opts repair.Options) (*repair.Result, bool, error) {
	c, err := def.Compile()
	if err != nil {
		return nil, false, err
	}
	res, err := alg(context.Background(), c, opts)
	if err != nil {
		return nil, false, err
	}
	ok := true
	if cfg.verify {
		ok = verify.Result(c, res).OK()
	}
	return res, ok, nil
}

func table1(cfg config, ns []int) {
	fmt.Println("Table I — Byzantine agreement: cautious vs lazy repair")
	fmt.Println("(paper: BA ladder up to 10^16 reachable states; cautious 6s→20348s,")
	fmt.Println(" lazy Step 1 <1s→385s, Step 2 <1s→25s; lazy wins by a growing factor)")
	fmt.Println()
	fmt.Printf("%-8s  %-12s  %-12s  %-12s  %-12s  %-8s  %s\n",
		"", "Reachable", "Cautious", "Lazy Step 1", "Lazy Step 2", "Speedup", "Verified")
	over := false
	for _, n := range ns {
		label := fmt.Sprintf("BA(%d)", n)
		lazyRes, lazyOK, err := runOne(cfg, casestudies.BA(n), repair.Lazy, repair.DefaultOptions())
		if err != nil {
			fmt.Printf("%-8s  repair failed: %v\n", label, err)
			continue
		}
		cautCell, speedCell, verCell := "skipped", "", okStr(lazyOK)
		if !over {
			cautRes, cautOK, err := runOne(cfg, casestudies.BA(n), repair.Cautious, repair.DefaultOptions())
			if err != nil {
				cautCell = "failed"
			} else {
				cautCell = round(cautRes.Stats.Total)
				speedCell = fmt.Sprintf("%.1fx", float64(cautRes.Stats.Total)/float64(lazyRes.Stats.Total))
				verCell = okStr(lazyOK && cautOK)
				if cautRes.Stats.Total > cfg.budget {
					over = true // stop running cautious at larger sizes
				}
			}
		}
		fmt.Printf("%-8s  %-12.3g  %-12s  %-12s  %-12s  %-8s  %s\n",
			label, lazyRes.Stats.ReachableStates, cautCell,
			round(lazyRes.Stats.Step1), round(lazyRes.Stats.Step2), speedCell, verCell)
		if lazyRes.Stats.Total > cfg.budget {
			break
		}
	}
	fmt.Println()
}

func table2(cfg config, ns []int) {
	fmt.Println("Table II — Stabilizing chain: lazy repair at scale")
	fmt.Println("(paper: Sc ladder 10^19→10^30 states; Step 1 grows 2s→889s ≈1.8x/cell,")
	fmt.Println(" Step 2 stays ≈1s; cautious repair is not reported at these sizes)")
	fmt.Println()
	fmt.Printf("%-8s  %-12s  %-12s  %-12s  %s\n", "", "States", "Lazy Step 1", "Lazy Step 2", "Verified")
	for _, n := range ns {
		label := fmt.Sprintf("SC(%d)", n)
		res, ok, err := runOne(cfg, casestudies.SC(n), repair.Lazy, repair.DefaultOptions())
		if err != nil {
			fmt.Printf("%-8s  repair failed: %v\n", label, err)
			continue
		}
		fmt.Printf("%-8s  %-12.3g  %-12s  %-12s  %s\n",
			label, res.Stats.ReachableStates, round(res.Stats.Step1), round(res.Stats.Step2), okStr(ok))
		if res.Stats.Total > cfg.budget {
			fmt.Printf("(stopping: last cell exceeded the %v budget)\n", cfg.budget)
			break
		}
	}
	fmt.Println()
}

func table3(cfg config, ns []int) {
	fmt.Println("Table III — Byzantine agreement with fail-stop faults (lazy repair)")
	fmt.Println()
	fmt.Printf("%-10s  %-12s  %-12s  %-12s  %s\n", "", "Reachable", "Lazy Step 1", "Lazy Step 2", "Verified")
	for _, n := range ns {
		label := fmt.Sprintf("BAFS(%d)", n)
		res, ok, err := runOne(cfg, casestudies.BAFS(n), repair.Lazy, repair.DefaultOptions())
		if err != nil {
			fmt.Printf("%-10s  repair failed: %v\n", label, err)
			continue
		}
		fmt.Printf("%-10s  %-12.3g  %-12s  %-12s  %s\n",
			label, res.Stats.ReachableStates, round(res.Stats.Step1), round(res.Stats.Step2), okStr(ok))
		if res.Stats.Total > cfg.budget {
			fmt.Printf("(stopping: last cell exceeded the %v budget)\n", cfg.budget)
			break
		}
	}
	fmt.Println()
}

func table4(cfg config, ns []int) {
	fmt.Println("Table IV — Ablations on Byzantine agreement (lazy repair)")
	fmt.Println("(the paper: pure lazy repair — no reachability heuristic — is not")
	fmt.Println(" competitive; combining lazy repair with the heuristic wins)")
	fmt.Println()
	fmt.Printf("%-8s  %-14s  %-14s  %-14s  %s\n",
		"", "Default", "PureLazy", "DeferCycles", "Verified")
	for _, n := range ns {
		label := fmt.Sprintf("BA(%d)", n)
		def, defOK, err := runOne(cfg, casestudies.BA(n), repair.Lazy, repair.DefaultOptions())
		if err != nil {
			fmt.Printf("%-8s  repair failed: %v\n", label, err)
			continue
		}
		pureOpts := repair.DefaultOptions()
		pureOpts.ReachabilityHeuristic = false
		pureCell, pureOK := "failed", true
		if pure, ok, err := runOne(cfg, casestudies.BA(n), repair.Lazy, pureOpts); err == nil {
			pureCell, pureOK = round(pure.Stats.Total), ok
		}
		deferOpts := repair.DefaultOptions()
		deferOpts.DeferCycleBreaking = true
		deferCell, deferOK := "failed", true
		if d, ok, err := runOne(cfg, casestudies.BA(n), repair.Lazy, deferOpts); err == nil {
			deferCell, deferOK = round(d.Stats.Total), ok
		}
		fmt.Printf("%-8s  %-14s  %-14s  %-14s  %s\n",
			label, round(def.Stats.Total), pureCell, deferCell, okStr(defOK && pureOK && deferOK))
		if def.Stats.Total > cfg.budget/4 {
			break
		}
	}
	fmt.Println()
}

func round(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return d.Round(time.Second).String()
	case d >= time.Second:
		return d.Round(100 * time.Millisecond).String()
	default:
		return d.Round(time.Millisecond).String()
	}
}

func okStr(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}
