package repro

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
)

// TestTrafficRoundTrip drives the shipped example model through the whole
// public surface: parse the .ftr source, repair it with witness extraction,
// verify the result, certify every recovery demonstration with the
// independent checker, and replay each one on the explicit simulator.
func TestTrafficRoundTrip(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("examples", "models", "traffic.ftr"))
	if err != nil {
		t.Fatal(err)
	}
	def, err := ParseProgram(string(src))
	if err != nil {
		t.Fatal(err)
	}
	if def.Name != "traffic" {
		t.Fatalf("parsed program name %q, want traffic", def.Name)
	}

	c, res, err := Repair(context.Background(), def, WithWitnesses(4))
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	rep, err := Verify(context.Background(), c, res, WithEngine(EngineConfig{Workers: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("repaired traffic fails verification:\n%s", rep)
	}

	// The glitch fault must leave the invariant (light = 2 is illegal), so at
	// least one demonstration is a genuine excursion-and-return.
	if len(res.Witnesses) == 0 {
		t.Fatal("repair produced no recovery demonstrations")
	}
	walker := sim.New(c, res.Trans, res.Invariant)
	departed := 0
	for i, tr := range res.Witnesses {
		if err := Certify(c, res.Trans, res.Invariant, tr); err != nil {
			t.Errorf("demo %d fails certification: %v\n%s", i, err, tr)
			continue
		}
		r, err := walker.Replay(tr)
		if err != nil {
			t.Errorf("demo %d does not replay: %v\n%s", i, err, tr)
			continue
		}
		if r.BadStates != 0 || r.BadTransitions != 0 {
			t.Errorf("demo %d violates safety on replay", i)
		}
		if r.Departed {
			if !r.Reentered {
				t.Errorf("demo %d departs without re-entering:\n%s", i, tr)
			}
			departed++
		}
	}
	if departed == 0 {
		t.Error("no demonstration leaves the invariant (glitch should force an excursion)")
	}
}
