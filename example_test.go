package repro_test

import (
	"context"
	"fmt"

	"repro"
)

// Example demonstrates the whole pipeline on the smallest possible repair
// problem: a one-bit program whose invariant is a=0 and whose fault sets
// a:=1. Lazy repair synthesizes the recovery transition and the result
// verifies as masking fault-tolerant and realizable.
func Example() {
	def := &repro.Def{
		Name: "flip",
		Vars: []repro.VarSpec{{Name: "a", Domain: 2}},
		Processes: []*repro.Process{
			{Name: "p", Read: []string{"a"}, Write: []string{"a"}},
		},
		Faults: []repro.Action{{
			Guard:   repro.Eq("a", 0),
			Updates: []repro.Update{repro.Set("a", 1)},
		}},
		Invariant: repro.Eq("a", 0),
	}
	c, res, err := repro.Repair(context.Background(), def)
	if err != nil {
		fmt.Println("repair failed:", err)
		return
	}
	rep, err := repro.Verify(context.Background(), c, res)
	if err != nil {
		fmt.Println("verify failed:", err)
		return
	}
	fmt.Printf("invariant: %g state(s)\n", repro.CountStates(c, res.Invariant))
	fmt.Printf("recovery:  %g transition(s)\n", repro.CountTransitions(c, res.Trans))
	fmt.Printf("verified:  %v\n", rep.OK())
	for _, line := range c.Procs[0].DescribeActions(res.Trans, 4) {
		fmt.Println("protocol: ", line)
	}
	// Output:
	// invariant: 1 state(s)
	// recovery:  1 transition(s)
	// verified:  true
	// protocol:  when a=1 → a:=0
}

// ExampleParseProgram loads a model from the declarative text format and
// repairs it.
func ExampleParseProgram() {
	def, err := repro.ParseProgram(`
program lamp
var light : 0..2

process controller
  read  light
  write light

fault glitch : light < 2 -> light := 2

invariant light < 2
`)
	if err != nil {
		fmt.Println("parse failed:", err)
		return
	}
	c, res, err := repro.Repair(context.Background(), def)
	if err != nil {
		fmt.Println("repair failed:", err)
		return
	}
	rep, err := repro.Verify(context.Background(), c, res)
	if err != nil {
		fmt.Println("verify failed:", err)
		return
	}
	fmt.Printf("%s: verified %v\n", def.Name, rep.OK())
	// Output:
	// lamp: verified true
}

// ExampleWithCostModel prices a model's transitions and lets cost-aware
// repair choose the cheap recovery: resetting the glitched lamp to 1 costs 5
// (the .ftr cost rule), resetting to 0 costs the default 1, so the
// synthesized recovery keeps only the cheap transition.
func ExampleWithCostModel() {
	def, err := repro.ParseProgram(`
program lamp
var light : 0..2

process controller
  read  light
  write light

fault glitch : light < 2 -> light := 2

invariant light < 2
cost 5 : light' = 1
`)
	if err != nil {
		fmt.Println("parse failed:", err)
		return
	}
	c, res, err := repro.Repair(context.Background(), def,
		repro.WithCostModel(repro.CostModel{Default: 1}))
	if err != nil {
		fmt.Println("repair failed:", err)
		return
	}
	rep, err := repro.Verify(context.Background(), c, res)
	if err != nil {
		fmt.Println("verify failed:", err)
		return
	}
	fmt.Printf("achieved cost: %g, verified %v\n", res.AchievedCost, rep.OK())
	for _, line := range c.Procs[0].DescribeActions(res.Trans, 4) {
		fmt.Println("protocol: ", line)
	}
	// Output:
	// achieved cost: 1, verified true
	// protocol:  when light=2 → light:=0
}

// ExampleCaseStudy repairs the paper's Byzantine-agreement instance with
// three non-generals and reports the headline statistics.
func ExampleCaseStudy() {
	def, err := repro.CaseStudy("ba", 3)
	if err != nil {
		fmt.Println(err)
		return
	}
	c, res, err := repro.Repair(context.Background(), def)
	if err != nil {
		fmt.Println("repair failed:", err)
		return
	}
	rep, err := repro.Verify(context.Background(), c, res)
	if err != nil {
		fmt.Println("verify failed:", err)
		return
	}
	fmt.Printf("%s: invariant %g states, verified %v\n",
		def.Name, repro.CountStates(c, res.Invariant), rep.OK())
	// Output:
	// BA(3): invariant 484 states, verified true
}
