package repro

import (
	"context"
	"errors"
	"testing"
)

// TestPublicAPIQuickstart exercises the whole facade the way the README's
// quickstart does: define, repair, verify, count, describe.
func TestPublicAPIQuickstart(t *testing.T) {
	def := &Def{
		Name: "api-flip",
		Vars: []VarSpec{{Name: "a", Domain: 2}},
		Processes: []*Process{
			{Name: "p", Read: []string{"a"}, Write: []string{"a"}},
		},
		Faults: []Action{{
			Name:    "hit",
			Guard:   Eq("a", 0),
			Updates: []Update{Set("a", 1)},
		}},
		Invariant: Eq("a", 0),
	}
	c, res, err := Repair(context.Background(), def)
	if err != nil {
		t.Fatal(err)
	}
	if got := CountStates(c, res.Invariant); got != 1 {
		t.Fatalf("invariant states = %v, want 1", got)
	}
	if got := CountStates(c, res.FaultSpan); got != 2 {
		t.Fatalf("fault-span states = %v, want 2", got)
	}
	if got := CountTransitions(c, res.Trans); got != 1 {
		t.Fatalf("transitions = %v, want 1 (the recovery)", got)
	}
	rep, err := Verify(context.Background(), c, res)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("verification failed:\n%s", rep)
	}
	lines := c.Procs[0].DescribeActions(c.Procs[0].MaxRealizableSubset(res.Trans), 4)
	if len(lines) != 1 || lines[0] != "when a=1 → a:=0" {
		t.Fatalf("protocol rendering = %q", lines)
	}
}

func TestPublicAPICautious(t *testing.T) {
	def, err := CaseStudy("sc", 3)
	if err != nil {
		t.Fatal(err)
	}
	c, res, err := Repair(context.Background(), def, WithAlgorithm(CautiousAlg))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(context.Background(), c, res)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("verification failed:\n%s", rep)
	}
}

func TestCaseStudyNamesAndErrors(t *testing.T) {
	for _, name := range []string{"ba", "bafs", "sc"} {
		if _, err := CaseStudy(name, 3); err != nil {
			t.Errorf("CaseStudy(%q, 3): %v", name, err)
		}
	}
	if _, err := CaseStudy("nope", 3); err == nil {
		t.Error("unknown case study should error")
	}
	if _, err := CaseStudy("sc", 1); err == nil {
		t.Error("sc with 1 cell should error")
	}
	if _, err := CaseStudy("ba", 0); err == nil {
		t.Error("ba with 0 non-generals should error")
	}
}

func TestUnrepairableSurfacesError(t *testing.T) {
	def := &Def{
		Name: "doomed",
		Vars: []VarSpec{{Name: "a", Domain: 2}},
		Processes: []*Process{
			{Name: "p", Read: []string{"a"}, Write: []string{"a"}},
		},
		Faults: []Action{{
			Guard:   Eq("a", 0),
			Updates: []Update{Set("a", 1)},
		}},
		Invariant: Eq("a", 0),
		BadStates: Eq("a", 1),
	}
	if _, _, err := Repair(context.Background(), def); !errors.Is(err, ErrNotRepairable) {
		t.Fatalf("want ErrNotRepairable, got %v", err)
	}
	if _, _, err := Repair(context.Background(), def, WithAlgorithm(CautiousAlg)); !errors.Is(err, ErrNotRepairable) {
		t.Fatalf("cautious: want ErrNotRepairable, got %v", err)
	}
}

func TestExpressionReexports(t *testing.T) {
	def := &Def{
		Name: "exprs",
		Vars: []VarSpec{{Name: "x", Domain: 3}, {Name: "y", Domain: 3}},
		Processes: []*Process{
			{Name: "p", Read: []string{"x", "y"}, Write: []string{"y"},
				Actions: []Action{{
					Guard:   And(Or(Eq("x", 0), Ne("y", 1)), Implies(Lt("x", 2), True), Not(False)),
					Updates: []Update{Copy("y", "x")},
				}}},
		},
		Invariant: EqVar("x", "y"),
		BadTrans:  And(Changed("y"), Not(NextEqVar("y", "x")), Unchanged("x"), Not(NextEq("y", 2)), NeVar("x", "y")),
	}
	if _, err := def.Compile(); err != nil {
		t.Fatal(err)
	}
}

func TestIntersects(t *testing.T) {
	def, _ := CaseStudy("sc", 3)
	c, res, err := Repair(context.Background(), def)
	if err != nil {
		t.Fatal(err)
	}
	if !Intersects(c, res.Invariant, res.FaultSpan) {
		t.Fatal("invariant must intersect fault-span")
	}
}
