// Quickstart: the paper's running example (Section III-B, Figures 3–5) and
// a first repair.
//
// The program has three boolean variables v0, v1, v2 and two processes:
// pj reads {v0,v1} and writes v1; pk reads {v0,v2} and writes v2. The
// example shows why realizability constraints matter — a transition that is
// perfectly fine as a graph edge may be impossible for any process — and
// then repairs a tiny fault-intolerant program, printing the synthesized
// protocol.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	def := &repro.Def{
		Name: "quickstart",
		Vars: []repro.VarSpec{
			{Name: "v0", Domain: 2}, {Name: "v1", Domain: 2}, {Name: "v2", Domain: 2},
		},
		Processes: []*repro.Process{
			{Name: "pj", Read: []string{"v0", "v1"}, Write: []string{"v1"}},
			{Name: "pk", Read: []string{"v0", "v2"}, Write: []string{"v2"}},
		},
		Invariant: repro.True,
	}
	c, err := def.Compile()
	if err != nil {
		log.Fatal(err)
	}
	s := c.Space

	// Figure 3: (000 → 011) changes v1 and v2 at once — no process can do
	// that, so no program containing it is realizable.
	fig3, _ := s.Transition(
		map[string]int{"v0": 0, "v1": 0, "v2": 0},
		map[string]int{"v0": 0, "v1": 1, "v2": 1})
	fmt.Printf("Figure 3  {(000,011)}            realizable: %v\n", c.ProgramRealizable(fig3))

	// Figure 4: (000 → 010) changes only v1, but pj cannot read v2, so it
	// cannot distinguish 000 from 001: the lone transition is unrealizable.
	fig4, _ := s.Transition(
		map[string]int{"v0": 0, "v1": 0, "v2": 0},
		map[string]int{"v0": 0, "v1": 1, "v2": 0})
	fmt.Printf("Figure 4  {(000,010)}            realizable: %v\n", c.ProgramRealizable(fig4))

	// Figure 5: adding the group twin (001 → 011) makes the pair realizable:
	// together they are the action "if v0=0 ∧ v1=0 then v1 := 1".
	twin, _ := s.Transition(
		map[string]int{"v0": 0, "v1": 0, "v2": 1},
		map[string]int{"v0": 0, "v1": 1, "v2": 1})
	fig5 := s.M.Or(fig4, twin)
	fmt.Printf("Figure 5  {(000,010),(001,011)}  realizable: %v\n", c.ProgramRealizable(fig5))

	// Now an actual repair: a one-bit program whose invariant is a=0, hit
	// by a fault that sets a:=1. The fault-intolerant program has no
	// actions; lazy repair must synthesize the recovery a:=0.
	fmt.Println("\nRepairing the one-bit flip program…")
	flip := &repro.Def{
		Name: "flip",
		Vars: []repro.VarSpec{{Name: "a", Domain: 2}},
		Processes: []*repro.Process{
			{Name: "p", Read: []string{"a"}, Write: []string{"a"}},
		},
		Faults: []repro.Action{{
			Name:    "hit",
			Guard:   repro.Eq("a", 0),
			Updates: []repro.Update{repro.Set("a", 1)},
		}},
		Invariant: repro.Eq("a", 0),
	}
	fc, res, err := repro.Repair(context.Background(), flip)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("invariant %g state(s), fault-span %g state(s), %d outer iteration(s)\n",
		repro.CountStates(fc, res.Invariant), repro.CountStates(fc, res.FaultSpan),
		res.Stats.OuterIterations)
	fmt.Println("synthesized protocol:")
	for _, p := range fc.Procs {
		for _, line := range p.DescribeActions(p.MaxRealizableSubset(res.Trans), 8) {
			fmt.Printf("  %s: %s\n", p.Name, line)
		}
	}

	rep, err := repro.Verify(context.Background(), fc, res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified: %v\n", rep.OK())
}
