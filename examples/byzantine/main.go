// Byzantine agreement: repair the classic fault-intolerant agreement
// protocol (Section VI of the paper) and inspect the synthesized protocol.
//
// The fault-intolerant program lets every non-general copy the general's
// decision and finalize unconditionally; with a Byzantine process that
// violates agreement and validity. Lazy repair synthesizes the classical
// fix: finalize only with a witness, and guard copies so honest processes
// never diverge.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	n := flag.Int("n", 3, "number of non-general processes")
	flag.Parse()

	def, err := repro.CaseStudy("ba", *n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repairing %s (Byzantine general or one Byzantine non-general)…\n", def.Name)

	c, res, err := repro.Repair(context.Background(), def)
	if err != nil {
		log.Fatal(err)
	}
	s := c.Space
	fmt.Printf("state space %.3g, reachable %.3g, invariant %.3g, %v (step1 %v, step2 %v)\n",
		repro.CountStates(c, s.ValidCur()), res.Stats.ReachableStates,
		repro.CountStates(c, res.Invariant), res.Stats.Total, res.Stats.Step1, res.Stats.Step2)

	rep, err := repro.Verify(context.Background(), c, res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified masking fault-tolerant and realizable: %v\n\n", rep.OK())

	// Re-run cost-aware: pricing the finalize actions above the copies makes
	// the synthesis keep the cheapest recovery that still converges, and the
	// result reports exact weighted counts. The verdict is identical.
	costedDef, _ := repro.CaseStudy("ba", *n)
	cc, cres, err := repro.Repair(context.Background(), costedDef,
		repro.WithCostModel(repro.CostModel{Default: 1, Actions: map[string]int64{"finalize": 3}}))
	if err != nil {
		log.Fatal(err)
	}
	crep, err := repro.Verify(context.Background(), cc, cres)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cost-aware repair (finalize=3, default=1): achieved %.4g, removed %.4g, verified %v\n\n",
		cres.AchievedCost, cres.CostRemoved, crep.OK())

	// Show process 0's synthesized decision logic for the d.g = 1 slice.
	m := s.M
	p := c.Procs[0]
	slice := m.AndN(p.MaxRealizableSubset(res.Trans), res.FaultSpan,
		s.VarByName("d.g").EqConst(1))
	fmt.Println("process p0's protocol when the general says 1 (⊥ is encoded as 2):")
	for _, line := range p.DescribeActions(slice, 16) {
		fmt.Printf("  %s\n", line)
	}

	// Walk one scenario: the general is Byzantine and flip-flops; the
	// repaired program still drives every honest process to agreement.
	fmt.Println("\nscenario: general turned Byzantine; p0 copied 1 while d.g reads 1")
	vals := map[string]int{"b.g": 1, "d.g": 1}
	for j := 0; j < *n; j++ {
		vals[fmt.Sprintf("b.%d", j)] = 0
		vals[fmt.Sprintf("d.%d", j)] = 2 // ⊥
		vals[fmt.Sprintf("f.%d", j)] = 0
	}
	vals["d.0"] = 1
	state, err := s.State(vals)
	if err != nil {
		log.Fatal(err)
	}
	reach := s.Reachable(state, res.Trans)
	agreed := repro.True
	for j := 0; j < *n; j++ {
		agreed = repro.And(agreed, repro.Eq(fmt.Sprintf("f.%d", j), 1),
			repro.Eq(fmt.Sprintf("d.%d", j), 1))
	}
	goal, err := agreed.Compile(s)
	if err != nil {
		log.Fatal(err)
	}
	if repro.Intersects(c, reach, goal) {
		fmt.Println("→ the repaired program can finalize everyone on 1: agreement holds")
	} else {
		fmt.Println("→ unexpectedly, agreement on 1 is not reachable")
	}
}
