// Barrier semantics: lazy repair for synchronous systems (Section VIII).
//
// The paper's conclusion argues lazy repair transfers to synchronous
// (barrier-controlled) execution because Step 1 never looks at realizability
// — only Step 2's notion of realizability changes — and notes that no
// cautious algorithm is known for this setting. This example repairs the
// stabilizing chain under barrier semantics: all cells copy their left
// neighbour simultaneously, so a fully corrupted chain heals in at most n−1
// rounds instead of O(n²) interleaved steps.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
	"repro/internal/synchronous"
)

func main() {
	n := flag.Int("n", 6, "number of chain cells")
	flag.Parse()

	def, err := repro.CaseStudy("sc", *n)
	if err != nil {
		log.Fatal(err)
	}
	c, err := def.Compile()
	if err != nil {
		log.Fatal(err)
	}
	sys := synchronous.New(c)

	res, err := synchronous.Lazy(sys, repro.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repaired %s under barrier semantics in %v (step1 %v, step2 %v)\n",
		def.Name, res.Stats.Total, res.Stats.Step1, res.Stats.Step2)
	fmt.Printf("synchronously realizable: %v\n\n", sys.Realizable(res.Trans))

	// Heal a fully corrupted chain, one barrier round per line.
	s := c.Space
	m := s.M
	vals := map[string]int{"fc": 0}
	for i := 0; i < *n; i++ {
		vals[fmt.Sprintf("x.%d", i)] = (3*i + 1) % 10
	}
	state, err := s.State(vals)
	if err != nil {
		log.Fatal(err)
	}
	show := func(v map[string]int) {
		fmt.Print("  round [")
		for i := 0; i < *n; i++ {
			if i > 0 {
				fmt.Print(" ")
			}
			fmt.Print(v[fmt.Sprintf("x.%d", i)])
		}
		fmt.Println("]")
	}
	fmt.Println("healing a fully corrupted chain, one barrier round per line")
	fmt.Println("(the maximal-parallel wave — every cell copies at once — and each")
	fmt.Println(" round is checked to be a transition of the repaired program):")
	show(vals)
	cur := vals
	for round := 1; round < *n; round++ {
		next := map[string]int{"fc": cur["fc"]}
		for i := *n - 1; i >= 1; i-- {
			next[fmt.Sprintf("x.%d", i)] = cur[fmt.Sprintf("x.%d", i-1)]
		}
		next["x.0"] = cur["x.0"]
		tr, err := s.Transition(cur, next)
		if err != nil {
			log.Fatal(err)
		}
		if !m.Implies(tr, res.Trans) {
			log.Fatal("the parallel wave is not a repaired-program transition")
		}
		show(next)
		cur = next
		state, err = s.State(cur)
		if err != nil {
			log.Fatal(err)
		}
		if repro.Intersects(c, state, res.Invariant) {
			fmt.Printf("→ stabilized after %d synchronous round(s); an interleaved\n", round)
			fmt.Printf("  schedule needs up to %d individual copies\n", (*n)*(*n-1)/2)
			return
		}
	}
	fmt.Println("→ did not stabilize (unexpected)")
}
