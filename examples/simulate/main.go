// Simulation: run adversarial random executions of Byzantine agreement
// before and after repair.
//
// The symbolic verifier *proves* the repaired program masking
// fault-tolerant; this example demonstrates it at runtime: under identical
// fault pressure, the fault-intolerant program reaches agreement/validity
// violations, while the repaired one never does and always returns to the
// invariant after faults stop.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro"
	"repro/internal/sim"
)

func main() {
	n := flag.Int("n", 3, "number of non-general processes")
	runs := flag.Int("runs", 500, "number of random executions per campaign")
	flag.Parse()

	def, err := repro.CaseStudy("ba", *n)
	if err != nil {
		log.Fatal(err)
	}
	c, err := def.Compile()
	if err != nil {
		log.Fatal(err)
	}

	// Start every run fully undecided with no Byzantine process.
	start := []repro.Expr{repro.Eq("b.g", 0)}
	for j := 0; j < *n; j++ {
		start = append(start,
			repro.Eq(fmt.Sprintf("b.%d", j), 0),
			repro.Eq(fmt.Sprintf("d.%d", j), 2),
			repro.Eq(fmt.Sprintf("f.%d", j), 0))
	}
	startBDD, err := repro.And(start...).Compile(c.Space)
	if err != nil {
		log.Fatal(err)
	}

	cfg := sim.DefaultConfig()
	cfg.Runs = *runs
	cfg.MaxFaults = 4
	cfg.FaultProb = 0.35

	fmt.Printf("campaign: %d runs × %d steps, ≤%d faults per run\n\n",
		cfg.Runs, cfg.Steps, cfg.MaxFaults)

	before, err := sim.New(c, c.Trans, c.Invariant).WithStart(startBDD).Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault-intolerant %s:\n  %s\n\n", def.Name, before)

	c2, res, err := repro.Repair(context.Background(), def)
	if err != nil {
		log.Fatal(err)
	}
	start2, err := repro.And(start...).Compile(c2.Space)
	if err != nil {
		log.Fatal(err)
	}
	after, err := sim.New(c2, res.Trans, res.Invariant).WithStart(start2).Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repaired %s:\n  %s\n\n", def.Name, after)

	switch {
	case before.BadStates == 0:
		fmt.Println("→ unexpected: the unrepaired program stayed safe in this campaign")
	case after.BadStates > 0 || after.BadTransitions > 0:
		fmt.Println("→ unexpected: the repaired program violated safety")
	default:
		fmt.Printf("→ the unrepaired program violated safety in %d step(s); the repaired\n", before.BadStates)
		fmt.Printf("  program stayed safe across %d adversarial executions\n", cfg.Runs)
	}
}
