// Stabilizing chain: lazy repair discovers the copy-from-left protocol.
//
// SC(n) is a chain of n ten-valued cells whose legitimate states have every
// cell equal to its left neighbour. The fault-intolerant program has *no*
// actions; transient faults corrupt arbitrary cells. Repair must invent the
// stabilization protocol — and Step 2's group filtering forces it to be
// exactly "copy your left neighbour", because anything cleverer would need
// to read cells a process cannot see.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	n := flag.Int("n", 6, "number of chain cells")
	flag.Parse()

	def, err := repro.CaseStudy("sc", *n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repairing %s (%g states)…\n", def.Name, pow10(*n)*2)

	c, res, err := repro.Repair(context.Background(), def)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repaired in %v (step1 %v, step2 %v), invariant %.3g states\n",
		res.Stats.Total, res.Stats.Step1, res.Stats.Step2,
		repro.CountStates(c, res.Invariant))
	rep, err := repro.Verify(context.Background(), c, res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified: %v\n\n", rep.OK())

	// The synthesized protocol of one middle process.
	p := c.Procs[*n/2]
	fmt.Printf("synthesized protocol of %s (first lines):\n", p.Name)
	for _, line := range p.DescribeActions(p.MaxRealizableSubset(res.Trans), 6) {
		fmt.Printf("  %s\n", line)
	}

	// Simulate recovery from a corrupted configuration by following the
	// repaired transition relation greedily.
	fmt.Println("\nrecovery from a corrupted chain:")
	s := c.Space
	vals := map[string]int{"fc": 0}
	for i := 0; i < *n; i++ {
		vals[fmt.Sprintf("x.%d", i)] = (7 * (i + 1)) % 10 // arbitrary corruption
	}
	state, err := s.State(vals)
	if err != nil {
		log.Fatal(err)
	}
	printChain := func(st map[string]int) {
		fmt.Print("  [")
		for i := 0; i < *n; i++ {
			if i > 0 {
				fmt.Print(" ")
			}
			fmt.Print(st[fmt.Sprintf("x.%d", i)])
		}
		fmt.Println("]")
	}
	printChain(vals)
	for step := 0; step < (*n)*(*n); step++ {
		img := s.Image(state, res.Trans)
		if !repro.Intersects(c, img, img) { // empty image: deadlock
			break
		}
		cube := s.M.PickCube(img)
		next := map[string]int{}
		for _, v := range s.Vars {
			next[v.Name] = v.DecodeCube(cube)
		}
		state, err = s.State(next)
		if err != nil {
			log.Fatal(err)
		}
		printChain(next)
		if repro.Intersects(c, state, res.Invariant) {
			fmt.Println("→ chain stabilized (all cells equal)")
			return
		}
	}
	fmt.Println("→ did not stabilize (unexpected)")
}

func pow10(n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= 10
	}
	return out
}
