// Byzantine agreement with fail-stop faults: the BAFS case study.
//
// On top of the Byzantine fault, one non-general may crash (up.j := 0) and
// take no further steps. The safety specification freezes a crashed
// process's decision variables, which also forces the synthesized recovery
// to respect the crash. The repaired program still reaches agreement among
// the live honest processes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	n := flag.Int("n", 3, "number of non-general processes")
	flag.Parse()

	def, err := repro.CaseStudy("bafs", *n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repairing %s (one Byzantine OR one crashed process)…\n", def.Name)

	c, res, err := repro.Repair(context.Background(), def)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reachable %.3g states, repaired in %v (step1 %v, step2 %v)\n",
		res.Stats.ReachableStates, res.Stats.Total, res.Stats.Step1, res.Stats.Step2)
	rep, err := repro.Verify(context.Background(), c, res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified: %v\n\n", rep.OK())

	// Crashed processes never act: intersect the program with "up.0 = 0 and
	// p0 changes something" — it must be empty.
	s := c.Space
	m := s.M
	frozen, err := repro.And(
		repro.Eq("up.0", 0),
		repro.Or(repro.Changed("d.0"), repro.Changed("f.0")),
	).Compile(s)
	if err != nil {
		log.Fatal(err)
	}
	moves := m.AndN(res.Trans, res.FaultSpan, frozen)
	fmt.Printf("synthesized transitions where crashed p0 acts: %g (must be 0)\n",
		repro.CountTransitions(c, moves))

	// Scenario: p0 crashes undecided; the rest still finalize agreement.
	vals := map[string]int{"b.g": 0, "d.g": 1}
	for j := 0; j < *n; j++ {
		vals[fmt.Sprintf("b.%d", j)] = 0
		vals[fmt.Sprintf("d.%d", j)] = 2
		vals[fmt.Sprintf("f.%d", j)] = 0
		vals[fmt.Sprintf("up.%d", j)] = 1
	}
	vals["up.0"] = 0 // p0 crashed before deciding
	state, err := s.State(vals)
	if err != nil {
		log.Fatal(err)
	}
	reach := s.Reachable(state, res.Trans)
	goalExpr := repro.True
	for j := 1; j < *n; j++ {
		goalExpr = repro.And(goalExpr,
			repro.Eq(fmt.Sprintf("f.%d", j), 1),
			repro.EqVar(fmt.Sprintf("d.%d", j), "d.g"))
	}
	goal, err := goalExpr.Compile(s)
	if err != nil {
		log.Fatal(err)
	}
	if repro.Intersects(c, reach, goal) {
		fmt.Println("→ live processes finalize the general's decision despite the crash")
	} else {
		fmt.Println("→ unexpectedly, the live processes cannot finalize")
	}
}
