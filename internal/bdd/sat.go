package bdd

import (
	"fmt"
	"math"
	"strings"
)

// This file implements model counting, model enumeration, evaluation and
// structural inspection of BDDs.

// SatCount returns the number of satisfying assignments of f over all
// variables currently allocated in the manager. The result is a float64; for
// the state-space sizes in the paper's tables (up to 10^30) this is exact in
// shape though not in the last bits.
func (m *Manager) SatCount(f Node) float64 {
	return m.SatCountVars(f, m.numVars)
}

// SatCountVars returns the number of satisfying assignments of f over the
// first nvars variables of the order. f must not depend on variables at or
// beyond level nvars.
func (m *Manager) SatCountVars(f Node, nvars int) float64 {
	full := m.satRec(f) * math.Pow(2, float64(m.levelOrTop(f)))
	return full / math.Pow(2, float64(m.numVars-nvars))
}

// levelOrTop returns f's root level, treating terminals as sitting just
// below the last variable.
func (m *Manager) levelOrTop(f Node) int32 {
	if m.IsTerminal(f) {
		return int32(m.numVars)
	}
	return m.nodes[f].level
}

// satRec returns the satisfying-assignment count of f over the variables at
// levels in [level(f), numVars).
func (m *Manager) satRec(f Node) float64 {
	if f == False {
		return 0
	}
	if f == True {
		return 1
	}
	if c, ok := m.sat[f]; ok {
		return c
	}
	n := m.nodes[f]
	cl := m.satRec(n.low) * math.Pow(2, float64(m.levelOrTop(n.low)-n.level-1))
	ch := m.satRec(n.high) * math.Pow(2, float64(m.levelOrTop(n.high)-n.level-1))
	c := cl + ch
	// The memo is a cache, not a requirement: bound it so a long-lived
	// manager cannot grow it without limit. Dropping entries mid-walk only
	// costs recomputation.
	if len(m.sat) >= satMemoLimit {
		m.sat = make(map[Node]float64)
	}
	m.sat[f] = c
	return c
}

// IsSat reports whether f has at least one satisfying assignment.
func (m *Manager) IsSat(f Node) bool { return f != False }

// Eval evaluates f under the given total assignment (indexed by variable
// id).
func (m *Manager) Eval(f Node, assignment []bool) bool {
	for !m.IsTerminal(f) {
		n := m.nodes[f]
		if assignment[m.level2var[n.level]] {
			f = n.high
		} else {
			f = n.low
		}
	}
	return f == True
}

// PickCube returns one satisfying assignment of f as a slice indexed by
// variable id with values 1 (true), 0 (false) and -1 (don't care). It
// returns nil if f is unsatisfiable.
//
// The pick is canonical in the variable ids, not the order: variables are
// examined in id order, choosing the false branch whenever it is satisfiable
// and leaving variables the remaining function does not depend on as don't
// cares. Two managers holding the same function under different variable
// orders therefore pick the same cube — the property that keeps witness
// traces byte-identical with reordering enabled. When the order is the
// identity this degenerates into the plain root-to-terminal walk.
func (m *Manager) PickCube(f Node) []int8 {
	if f == False {
		return nil
	}
	m.safe(f, False, False)
	out := make([]int8, m.numVars)
	for i := range out {
		out[i] = -1
	}
	for v := 0; v < m.numVars && !m.IsTerminal(f); v++ {
		lvl := m.var2level[v]
		f0 := m.cofVarRec(f, lvl, 0)
		f1 := m.cofVarRec(f, lvl, 1)
		if f0 == f1 {
			continue // f does not depend on v
		}
		if f0 != False {
			out[v] = 0
			f = f0
		} else {
			out[v] = 1
			f = f1
		}
	}
	return out
}

// PickCubeRand is PickCube with randomized branch choices: whenever both
// cofactors are satisfiable, coin() decides which branch to take, so
// repeated calls sample different models. Variables the chosen model does
// not constrain are left as -1 (don't care). Like PickCube, the walk is in
// variable-id order, so the sequence of coin() consultations depends only on
// the function, not on the current variable order.
func (m *Manager) PickCubeRand(f Node, coin func() bool) []int8 {
	if f == False {
		return nil
	}
	m.safe(f, False, False)
	out := make([]int8, m.numVars)
	for i := range out {
		out[i] = -1
	}
	for v := 0; v < m.numVars && !m.IsTerminal(f); v++ {
		lvl := m.var2level[v]
		f0 := m.cofVarRec(f, lvl, 0)
		f1 := m.cofVarRec(f, lvl, 1)
		switch {
		case f0 == f1:
			continue
		case f0 == False:
			out[v] = 1
			f = f1
		case f1 == False:
			out[v] = 0
			f = f0
		case coin():
			out[v] = 1
			f = f1
		default:
			out[v] = 0
			f = f0
		}
	}
	return out
}

// AllSat calls visit for every satisfying cube of f. The cube slice is
// indexed by variable id with values 1, 0 and -1 (don't care); it is reused
// across calls, so visit must copy it if it retains it. Enumeration stops
// early if visit returns false. Cubes are produced in variable-id
// lexicographic order (false before true), independent of the current
// variable order.
func (m *Manager) AllSat(f Node, visit func(cube []int8) bool) {
	m.safe(f, False, False)
	cube := make([]int8, m.numVars)
	for i := range cube {
		cube[i] = -1
	}
	m.allSatRec(f, 0, cube, visit)
}

func (m *Manager) allSatRec(f Node, v int, cube []int8, visit func([]int8) bool) bool {
	if f == False {
		return true
	}
	if f == True || v == m.numVars {
		return visit(cube)
	}
	lvl := m.var2level[v]
	f0 := m.cofVarRec(f, lvl, 0)
	f1 := m.cofVarRec(f, lvl, 1)
	if f0 == f1 {
		return m.allSatRec(f0, v+1, cube, visit)
	}
	// The restricted functions are fresh nodes, not part of f's DAG — root
	// them across the recursion in case visit calls back into the manager
	// and lands on a collection or reorder safe point.
	m.Ref(f0)
	m.Ref(f1)
	defer func() {
		m.Deref(f0)
		m.Deref(f1)
	}()
	cube[v] = 0
	if !m.allSatRec(f0, v+1, cube, visit) {
		cube[v] = -1
		return false
	}
	cube[v] = 1
	if !m.allSatRec(f1, v+1, cube, visit) {
		cube[v] = -1
		return false
	}
	cube[v] = -1
	return true
}

// Support returns the ids of the variables f depends on, ascending.
func (m *Manager) Support(f Node) []int {
	seen := make(map[Node]bool)
	vars := make(map[int32]bool)
	var rec func(Node)
	rec = func(g Node) {
		if m.IsTerminal(g) || seen[g] {
			return
		}
		seen[g] = true
		n := m.nodes[g]
		vars[m.level2var[n.level]] = true
		rec(n.low)
		rec(n.high)
	}
	rec(f)
	out := make([]int, 0, len(vars))
	for v := range vars {
		out = append(out, int(v))
	}
	insertionSortAsc(out)
	return out
}

func insertionSortAsc(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// NodeCount returns the number of distinct nodes in the DAG rooted at f,
// including terminals reachable from it.
func (m *Manager) NodeCount(f Node) int {
	seen := make(map[Node]bool)
	var rec func(Node)
	rec = func(g Node) {
		if seen[g] {
			return
		}
		seen[g] = true
		if m.IsTerminal(g) {
			return
		}
		n := m.nodes[g]
		rec(n.low)
		rec(n.high)
	}
	rec(f)
	return len(seen)
}

// String renders f as a disjunction of cubes (up to a small limit), mainly
// for debugging and tests.
func (m *Manager) String(f Node) string {
	switch f {
	case False:
		return "false"
	case True:
		return "true"
	}
	var sb strings.Builder
	count := 0
	const limit = 16
	m.AllSat(f, func(cube []int8) bool {
		if count == limit {
			sb.WriteString(" ∨ …")
			return false
		}
		if count > 0 {
			sb.WriteString(" ∨ ")
		}
		sb.WriteString("(")
		first := true
		for id, v := range cube {
			if v == -1 {
				continue
			}
			if !first {
				sb.WriteString("∧")
			}
			first = false
			if v == 0 {
				sb.WriteString("¬")
			}
			sb.WriteString(m.varNames[id])
		}
		sb.WriteString(")")
		count++
		return true
	})
	return sb.String()
}

// Dot renders the DAG rooted at f in Graphviz DOT format.
func (m *Manager) Dot(f Node, name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", name)
	sb.WriteString("  node [shape=circle];\n")
	sb.WriteString("  F [shape=box,label=\"0\"]; T [shape=box,label=\"1\"];\n")
	seen := make(map[Node]bool)
	var rec func(Node)
	label := func(g Node) string {
		switch g {
		case False:
			return "F"
		case True:
			return "T"
		}
		return fmt.Sprintf("n%d", g)
	}
	rec = func(g Node) {
		if m.IsTerminal(g) || seen[g] {
			return
		}
		seen[g] = true
		n := m.nodes[g]
		fmt.Fprintf(&sb, "  n%d [label=%q];\n", g, m.varNames[m.level2var[n.level]])
		fmt.Fprintf(&sb, "  n%d -> %s [style=dashed];\n", g, label(n.low))
		fmt.Fprintf(&sb, "  n%d -> %s;\n", g, label(n.high))
		rec(n.low)
		rec(n.high)
	}
	rec(f)
	sb.WriteString("}\n")
	return sb.String()
}
