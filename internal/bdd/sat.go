package bdd

import (
	"fmt"
	"math"
	"strings"
)

// This file implements model counting, model enumeration, evaluation and
// structural inspection of BDDs.

// SatCount returns the number of satisfying assignments of f over all
// variables currently allocated in the manager. The result is a float64; for
// the state-space sizes in the paper's tables (up to 10^30) this is exact in
// shape though not in the last bits.
func (m *Manager) SatCount(f Node) float64 {
	return m.SatCountVars(f, m.numVars)
}

// SatCountVars returns the number of satisfying assignments of f over the
// first nvars variables of the order. f must not depend on variables at or
// beyond level nvars.
func (m *Manager) SatCountVars(f Node, nvars int) float64 {
	full := m.satRec(f) * math.Pow(2, float64(m.levelOrTop(f)))
	return full / math.Pow(2, float64(m.numVars-nvars))
}

// levelOrTop returns f's root level, treating terminals as sitting just
// below the last variable.
func (m *Manager) levelOrTop(f Node) int32 {
	if m.IsTerminal(f) {
		return int32(m.numVars)
	}
	return m.nodes[f].level
}

// satRec returns the satisfying-assignment count of f over the variables at
// levels in [level(f), numVars).
func (m *Manager) satRec(f Node) float64 {
	if f == False {
		return 0
	}
	if f == True {
		return 1
	}
	if c, ok := m.sat[f]; ok {
		return c
	}
	n := m.nodes[f]
	cl := m.satRec(n.low) * math.Pow(2, float64(m.levelOrTop(n.low)-n.level-1))
	ch := m.satRec(n.high) * math.Pow(2, float64(m.levelOrTop(n.high)-n.level-1))
	c := cl + ch
	// The memo is a cache, not a requirement: bound it so a long-lived
	// manager cannot grow it without limit. Dropping entries mid-walk only
	// costs recomputation.
	if len(m.sat) >= satMemoLimit {
		m.sat = make(map[Node]float64)
	}
	m.sat[f] = c
	return c
}

// IsSat reports whether f has at least one satisfying assignment.
func (m *Manager) IsSat(f Node) bool { return f != False }

// Eval evaluates f under the given total assignment (indexed by level).
func (m *Manager) Eval(f Node, assignment []bool) bool {
	for !m.IsTerminal(f) {
		n := m.nodes[f]
		if assignment[n.level] {
			f = n.high
		} else {
			f = n.low
		}
	}
	return f == True
}

// PickCube returns one satisfying assignment of f as a slice indexed by
// level with values 1 (true), 0 (false) and -1 (don't care). It returns nil
// if f is unsatisfiable.
func (m *Manager) PickCube(f Node) []int8 {
	if f == False {
		return nil
	}
	out := make([]int8, m.numVars)
	for i := range out {
		out[i] = -1
	}
	for !m.IsTerminal(f) {
		n := m.nodes[f]
		if n.low != False {
			out[n.level] = 0
			f = n.low
		} else {
			out[n.level] = 1
			f = n.high
		}
	}
	return out
}

// PickCubeRand is PickCube with randomized branch choices: whenever both
// cofactors are satisfiable, coin() decides which branch to take, so
// repeated calls sample different models. Levels not on the chosen path are
// left as -1 (don't care).
func (m *Manager) PickCubeRand(f Node, coin func() bool) []int8 {
	if f == False {
		return nil
	}
	out := make([]int8, m.numVars)
	for i := range out {
		out[i] = -1
	}
	for !m.IsTerminal(f) {
		n := m.nodes[f]
		switch {
		case n.low == False:
			out[n.level] = 1
			f = n.high
		case n.high == False:
			out[n.level] = 0
			f = n.low
		case coin():
			out[n.level] = 1
			f = n.high
		default:
			out[n.level] = 0
			f = n.low
		}
	}
	return out
}

// AllSat calls visit for every satisfying cube of f. The cube slice is
// indexed by level with values 1, 0 and -1 (don't care); it is reused across
// calls, so visit must copy it if it retains it. Enumeration stops early if
// visit returns false.
func (m *Manager) AllSat(f Node, visit func(cube []int8) bool) {
	cube := make([]int8, m.numVars)
	for i := range cube {
		cube[i] = -1
	}
	m.allSatRec(f, cube, visit)
}

func (m *Manager) allSatRec(f Node, cube []int8, visit func([]int8) bool) bool {
	if f == False {
		return true
	}
	if f == True {
		return visit(cube)
	}
	n := m.nodes[f]
	cube[n.level] = 0
	if !m.allSatRec(n.low, cube, visit) {
		cube[n.level] = -1
		return false
	}
	cube[n.level] = 1
	if !m.allSatRec(n.high, cube, visit) {
		cube[n.level] = -1
		return false
	}
	cube[n.level] = -1
	return true
}

// Support returns the levels of the variables f depends on, in order.
func (m *Manager) Support(f Node) []int {
	seen := make(map[Node]bool)
	levels := make(map[int32]bool)
	var rec func(Node)
	rec = func(g Node) {
		if m.IsTerminal(g) || seen[g] {
			return
		}
		seen[g] = true
		n := m.nodes[g]
		levels[n.level] = true
		rec(n.low)
		rec(n.high)
	}
	rec(f)
	out := make([]int, 0, len(levels))
	for l := range levels {
		out = append(out, int(l))
	}
	insertionSortAsc(out)
	return out
}

func insertionSortAsc(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// NodeCount returns the number of distinct nodes in the DAG rooted at f,
// including terminals reachable from it.
func (m *Manager) NodeCount(f Node) int {
	seen := make(map[Node]bool)
	var rec func(Node)
	rec = func(g Node) {
		if seen[g] {
			return
		}
		seen[g] = true
		if m.IsTerminal(g) {
			return
		}
		n := m.nodes[g]
		rec(n.low)
		rec(n.high)
	}
	rec(f)
	return len(seen)
}

// String renders f as a disjunction of cubes (up to a small limit), mainly
// for debugging and tests.
func (m *Manager) String(f Node) string {
	switch f {
	case False:
		return "false"
	case True:
		return "true"
	}
	var sb strings.Builder
	count := 0
	const limit = 16
	m.AllSat(f, func(cube []int8) bool {
		if count == limit {
			sb.WriteString(" ∨ …")
			return false
		}
		if count > 0 {
			sb.WriteString(" ∨ ")
		}
		sb.WriteString("(")
		first := true
		for lvl, v := range cube {
			if v == -1 {
				continue
			}
			if !first {
				sb.WriteString("∧")
			}
			first = false
			if v == 0 {
				sb.WriteString("¬")
			}
			sb.WriteString(m.varNames[lvl])
		}
		sb.WriteString(")")
		count++
		return true
	})
	return sb.String()
}

// Dot renders the DAG rooted at f in Graphviz DOT format.
func (m *Manager) Dot(f Node, name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", name)
	sb.WriteString("  node [shape=circle];\n")
	sb.WriteString("  F [shape=box,label=\"0\"]; T [shape=box,label=\"1\"];\n")
	seen := make(map[Node]bool)
	var rec func(Node)
	label := func(g Node) string {
		switch g {
		case False:
			return "F"
		case True:
			return "T"
		}
		return fmt.Sprintf("n%d", g)
	}
	rec = func(g Node) {
		if m.IsTerminal(g) || seen[g] {
			return
		}
		seen[g] = true
		n := m.nodes[g]
		fmt.Fprintf(&sb, "  n%d [label=%q];\n", g, m.varNames[n.level])
		fmt.Fprintf(&sb, "  n%d -> %s [style=dashed];\n", g, label(n.low))
		fmt.Fprintf(&sb, "  n%d -> %s;\n", g, label(n.high))
		rec(n.low)
		rec(n.high)
	}
	rec(f)
	sb.WriteString("}\n")
	return sb.String()
}
