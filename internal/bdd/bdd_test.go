package bdd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// truthTable evaluates f on all 2^nvars assignments, returning a bit per row.
func truthTable(m *Manager, f Node, nvars int) []bool {
	rows := 1 << nvars
	out := make([]bool, rows)
	assignment := make([]bool, m.NumVars())
	for r := 0; r < rows; r++ {
		for v := 0; v < nvars; v++ {
			assignment[v] = r&(1<<v) != 0
		}
		out[r] = m.Eval(f, assignment)
	}
	return out
}

func TestTerminals(t *testing.T) {
	m := New()
	if m.Not(True) != False || m.Not(False) != True {
		t.Fatal("Not on terminals broken")
	}
	if m.And(True, False) != False || m.Or(True, False) != True {
		t.Fatal("And/Or on terminals broken")
	}
	if m.Size() != 2 {
		t.Fatalf("fresh manager has %d nodes, want 2", m.Size())
	}
}

func TestVarBasics(t *testing.T) {
	m := New()
	x := m.NewVar("x")
	y := m.NewVar("y")
	if x == y {
		t.Fatal("distinct variables share a node")
	}
	if m.Var(0) != x || m.Var(1) != y {
		t.Fatal("Var does not return the allocated variable")
	}
	if m.NVar(0) != m.Not(x) {
		t.Fatal("NVar(0) != Not(x)")
	}
	if m.VarName(0) != "x" || m.VarName(1) != "y" {
		t.Fatal("variable names not registered")
	}
}

func TestHashConsing(t *testing.T) {
	m := New()
	x := m.NewVar("x")
	y := m.NewVar("y")
	a := m.And(x, y)
	b := m.And(y, x)
	if a != b {
		t.Fatal("And is not canonical under argument order")
	}
	c := m.Not(m.Or(m.Not(x), m.Not(y)))
	if c != a {
		t.Fatal("De Morgan equivalent did not hash-cons to the same node")
	}
}

func TestBooleanIdentities(t *testing.T) {
	m := New()
	vars := m.NewVars(4)
	x, y, z := vars[0], vars[1], vars[2]

	checks := []struct {
		name string
		a, b Node
	}{
		{"double negation", m.Not(m.Not(x)), x},
		{"and idempotent", m.And(x, x), x},
		{"or idempotent", m.Or(x, x), x},
		{"excluded middle", m.Or(x, m.Not(x)), True},
		{"contradiction", m.And(x, m.Not(x)), False},
		{"distributivity", m.And(x, m.Or(y, z)), m.Or(m.And(x, y), m.And(x, z))},
		{"xor def", m.Xor(x, y), m.Or(m.And(x, m.Not(y)), m.And(m.Not(x), y))},
		{"iff def", m.Iff(x, y), m.Not(m.Xor(x, y))},
		{"imp def", m.Imp(x, y), m.Or(m.Not(x), y)},
		{"ite def", m.ITE(x, y, z), m.Or(m.And(x, y), m.And(m.Not(x), z))},
		{"absorption", m.Or(x, m.And(x, y)), x},
		{"diff def", m.Diff(x, y), m.And(x, m.Not(y))},
	}
	for _, c := range checks {
		if c.a != c.b {
			t.Errorf("%s: nodes differ (%v vs %v)", c.name, c.a, c.b)
		}
	}
}

// randomFormula builds a random BDD over nvars variables using depth ops.
func randomFormula(m *Manager, rng *rand.Rand, nvars, depth int) Node {
	if depth == 0 || rng.Intn(4) == 0 {
		switch rng.Intn(6) {
		case 0:
			return True
		case 1:
			return False
		default:
			v := m.Var(rng.Intn(nvars))
			if rng.Intn(2) == 0 {
				return m.Not(v)
			}
			return v
		}
	}
	a := randomFormula(m, rng, nvars, depth-1)
	b := randomFormula(m, rng, nvars, depth-1)
	switch rng.Intn(5) {
	case 0:
		return m.And(a, b)
	case 1:
		return m.Or(a, b)
	case 2:
		return m.Xor(a, b)
	case 3:
		return m.Not(a)
	default:
		c := randomFormula(m, rng, nvars, depth-1)
		return m.ITE(a, b, c)
	}
}

// TestOpsAgainstTruthTables cross-checks every operation against brute force
// on random formulas.
func TestOpsAgainstTruthTables(t *testing.T) {
	const nvars = 6
	m := New()
	m.NewVars(nvars)
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		f := randomFormula(m, rng, nvars, 4)
		g := randomFormula(m, rng, nvars, 4)
		tf := truthTable(m, f, nvars)
		tg := truthTable(m, g, nvars)

		and := truthTable(m, m.And(f, g), nvars)
		or := truthTable(m, m.Or(f, g), nvars)
		xor := truthTable(m, m.Xor(f, g), nvars)
		not := truthTable(m, m.Not(f), nvars)
		for r := range tf {
			if and[r] != (tf[r] && tg[r]) {
				t.Fatalf("iter %d row %d: And mismatch", iter, r)
			}
			if or[r] != (tf[r] || tg[r]) {
				t.Fatalf("iter %d row %d: Or mismatch", iter, r)
			}
			if xor[r] != (tf[r] != tg[r]) {
				t.Fatalf("iter %d row %d: Xor mismatch", iter, r)
			}
			if not[r] != !tf[r] {
				t.Fatalf("iter %d row %d: Not mismatch", iter, r)
			}
		}
	}
}

func TestExistsForallAgainstTruthTables(t *testing.T) {
	const nvars = 6
	m := New()
	m.NewVars(nvars)
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		f := randomFormula(m, rng, nvars, 4)
		// Random quantified variable set.
		var levels []int
		for v := 0; v < nvars; v++ {
			if rng.Intn(2) == 0 {
				levels = append(levels, v)
			}
		}
		cube := m.Cube(levels)
		ex := truthTable(m, m.Exists(f, cube), nvars)
		fa := truthTable(m, m.Forall(f, cube), nvars)
		tf := truthTable(m, f, nvars)

		inSet := make([]bool, nvars)
		for _, l := range levels {
			inSet[l] = true
		}
		for r := 0; r < 1<<nvars; r++ {
			// Enumerate all settings of quantified vars while fixing others.
			any, all := false, true
			for q := 0; q < 1<<len(levels); q++ {
				row := r
				for i, l := range levels {
					if q&(1<<i) != 0 {
						row |= 1 << l
					} else {
						row &^= 1 << l
					}
				}
				if tf[row] {
					any = true
				} else {
					all = false
				}
			}
			if ex[r] != any {
				t.Fatalf("iter %d row %d: Exists mismatch", iter, r)
			}
			if fa[r] != all {
				t.Fatalf("iter %d row %d: Forall mismatch", iter, r)
			}
		}
	}
}

func TestAndExistsEqualsComposition(t *testing.T) {
	const nvars = 8
	m := New()
	m.NewVars(nvars)
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 300; iter++ {
		f := randomFormula(m, rng, nvars, 5)
		g := randomFormula(m, rng, nvars, 5)
		var levels []int
		for v := 0; v < nvars; v++ {
			if rng.Intn(2) == 0 {
				levels = append(levels, v)
			}
		}
		cube := m.Cube(levels)
		got := m.AndExists(f, g, cube)
		want := m.Exists(m.And(f, g), cube)
		if got != want {
			t.Fatalf("iter %d: AndExists != Exists∘And", iter)
		}
	}
}

func TestReplaceSwapsVariables(t *testing.T) {
	const nvars = 8
	m := New()
	m.NewVars(nvars)
	// Pairwise swap 2i <-> 2i+1 (the current/next interleaving used by the
	// symbolic layer, deliberately order-breaking within pairs).
	mapping := make([]int, nvars)
	for i := 0; i < nvars; i += 2 {
		mapping[i] = i + 1
		mapping[i+1] = i
	}
	p := m.NewPermutation(mapping)

	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 200; iter++ {
		f := randomFormula(m, rng, nvars, 5)
		g := m.Replace(f, p)
		tf := truthTable(m, f, nvars)
		tg := truthTable(m, g, nvars)
		for r := 0; r < 1<<nvars; r++ {
			// Apply the same swap to the assignment bits.
			swapped := 0
			for v := 0; v < nvars; v++ {
				if r&(1<<v) != 0 {
					swapped |= 1 << mapping[v]
				}
			}
			if tg[swapped] != tf[r] {
				t.Fatalf("iter %d: Replace mismatch at row %d", iter, r)
			}
		}
		// Replace is an involution for a pairwise swap.
		if m.Replace(g, p) != f {
			t.Fatalf("iter %d: Replace not involutive", iter)
		}
	}
}

func TestSatCount(t *testing.T) {
	m := New()
	vars := m.NewVars(10)
	if got := m.SatCount(True); got != 1024 {
		t.Fatalf("SatCount(True) = %v, want 1024", got)
	}
	if got := m.SatCount(False); got != 0 {
		t.Fatalf("SatCount(False) = %v, want 0", got)
	}
	if got := m.SatCount(vars[3]); got != 512 {
		t.Fatalf("SatCount(x3) = %v, want 512", got)
	}
	f := m.And(vars[0], m.Or(vars[1], vars[2]))
	// x0 ∧ (x1 ∨ x2): 3 of 8 settings of (x0,x1,x2), times 2^7 for the rest.
	if got := m.SatCount(f); got != 3*128 {
		t.Fatalf("SatCount = %v, want 384", got)
	}
}

func TestSatCountAgainstTruthTables(t *testing.T) {
	const nvars = 7
	m := New()
	m.NewVars(nvars)
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 100; iter++ {
		f := randomFormula(m, rng, nvars, 5)
		tt := truthTable(m, f, nvars)
		want := 0
		for _, b := range tt {
			if b {
				want++
			}
		}
		if got := m.SatCount(f); math.Abs(got-float64(want)) > 1e-9 {
			t.Fatalf("iter %d: SatCount = %v, want %d", iter, got, want)
		}
	}
}

func TestSatCountVars(t *testing.T) {
	m := New()
	vars := m.NewVars(6)
	f := m.And(vars[0], vars[1])
	if got := m.SatCountVars(f, 3); got != 2 {
		t.Fatalf("SatCountVars(x0∧x1, 3) = %v, want 2", got)
	}
}

func TestPickCubeAndEval(t *testing.T) {
	const nvars = 6
	m := New()
	m.NewVars(nvars)
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 100; iter++ {
		f := randomFormula(m, rng, nvars, 4)
		cube := m.PickCube(f)
		if f == False {
			if cube != nil {
				t.Fatal("PickCube on False should be nil")
			}
			continue
		}
		assignment := make([]bool, nvars)
		for v := 0; v < nvars; v++ {
			assignment[v] = cube[v] == 1
		}
		if !m.Eval(f, assignment) {
			t.Fatalf("iter %d: PickCube produced a non-model", iter)
		}
	}
}

func TestAllSatEnumeratesExactly(t *testing.T) {
	const nvars = 5
	m := New()
	m.NewVars(nvars)
	rng := rand.New(rand.NewSource(33))
	for iter := 0; iter < 100; iter++ {
		f := randomFormula(m, rng, nvars, 4)
		found := make(map[int]bool)
		m.AllSat(f, func(cube []int8) bool {
			// Expand don't-cares.
			var expand func(i, row int)
			expand = func(i, row int) {
				if i == nvars {
					found[row] = true
					return
				}
				switch cube[i] {
				case 0:
					expand(i+1, row)
				case 1:
					expand(i+1, row|1<<i)
				default:
					expand(i+1, row)
					expand(i+1, row|1<<i)
				}
			}
			expand(0, 0)
			return true
		})
		tt := truthTable(m, f, nvars)
		for r, b := range tt {
			if b != found[r] {
				t.Fatalf("iter %d row %d: AllSat=%v truth=%v", iter, r, found[r], b)
			}
		}
	}
}

func TestSupport(t *testing.T) {
	m := New()
	vars := m.NewVars(8)
	f := m.And(vars[1], m.Or(vars[4], m.Not(vars[6])))
	got := m.Support(f)
	want := []int{1, 4, 6}
	if len(got) != len(want) {
		t.Fatalf("Support = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Support = %v, want %v", got, want)
		}
	}
}

func TestCubeRoundTrip(t *testing.T) {
	m := New()
	m.NewVars(10)
	vars := []int{7, 2, 5}
	cube := m.Cube(vars)
	got := m.CubeVars(cube)
	if len(got) != 3 {
		t.Fatalf("CubeVars returned %v", got)
	}
	seen := map[int]bool{}
	for _, v := range got {
		seen[v] = true
	}
	for _, v := range vars {
		if !seen[v] {
			t.Fatalf("cube lost variable %d: %v", v, got)
		}
	}
}

func TestImplies(t *testing.T) {
	m := New()
	x := m.NewVar("x")
	y := m.NewVar("y")
	if !m.Implies(m.And(x, y), x) {
		t.Fatal("x∧y should imply x")
	}
	if m.Implies(x, m.And(x, y)) {
		t.Fatal("x should not imply x∧y")
	}
	if !m.Implies(False, x) || !m.Implies(x, True) {
		t.Fatal("terminal implications broken")
	}
}

func TestNodeCount(t *testing.T) {
	m := New()
	x := m.NewVar("x")
	if m.NodeCount(True) != 1 {
		t.Fatal("NodeCount(True) != 1")
	}
	if got := m.NodeCount(x); got != 3 { // x node + two terminals
		t.Fatalf("NodeCount(x) = %d, want 3", got)
	}
}

func TestClearCachesPreservesSemantics(t *testing.T) {
	m := New()
	vars := m.NewVars(6)
	f := m.And(vars[0], m.Or(vars[1], vars[2]))
	before := m.SatCount(f)
	m.ClearCaches()
	g := m.And(vars[0], m.Or(vars[1], vars[2]))
	if g != f {
		t.Fatal("rebuilding after ClearCaches produced a different node")
	}
	if m.SatCount(g) != before {
		t.Fatal("SatCount changed after ClearCaches")
	}
}

func TestDotOutput(t *testing.T) {
	m := New()
	x := m.NewVar("x")
	y := m.NewVar("y")
	dot := m.Dot(m.And(x, y), "and")
	if len(dot) == 0 {
		t.Fatal("empty dot output")
	}
	for _, want := range []string{"digraph", "x", "y", "->"} {
		if !contains(dot, want) {
			t.Fatalf("dot output missing %q:\n%s", want, dot)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

// Property-based tests via testing/quick. Assignments are driven by a random
// uint32 per test case; formulas are fixed structurally rich ones.

func TestQuickDeMorgan(t *testing.T) {
	m := New()
	const nvars = 8
	m.NewVars(nvars)
	rng := rand.New(rand.NewSource(99))
	f := randomFormula(m, rng, nvars, 6)
	g := randomFormula(m, rng, nvars, 6)
	lhs := m.Not(m.And(f, g))
	rhs := m.Or(m.Not(f), m.Not(g))
	if lhs != rhs {
		t.Fatal("De Morgan violated structurally")
	}
	prop := func(bits uint32) bool {
		assignment := make([]bool, nvars)
		for v := 0; v < nvars; v++ {
			assignment[v] = bits&(1<<v) != 0
		}
		return m.Eval(lhs, assignment) == !(m.Eval(f, assignment) && m.Eval(g, assignment))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickExistsIsUpperBound(t *testing.T) {
	m := New()
	const nvars = 8
	m.NewVars(nvars)
	rng := rand.New(rand.NewSource(123))
	prop := func(seed int64, mask uint8) bool {
		local := rand.New(rand.NewSource(seed))
		f := randomFormula(m, local, nvars, 4)
		var levels []int
		for v := 0; v < nvars; v++ {
			if mask&(1<<v) != 0 {
				levels = append(levels, v)
			}
		}
		cube := m.Cube(levels)
		ex := m.Exists(f, cube)
		fa := m.Forall(f, cube)
		// ∀ ⊆ f ⊆ ∃ and quantifications remove the support.
		if !m.Implies(fa, f) || !m.Implies(f, ex) {
			return false
		}
		for _, l := range m.Support(ex) {
			for _, ql := range levels {
				if l == ql {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestUniqueTableGrowth(t *testing.T) {
	m := New()
	vars := m.NewVars(20)
	// Build a function with many nodes to force table growth.
	f := False
	for i := 0; i+1 < len(vars); i++ {
		f = m.Or(f, m.And(vars[i], vars[i+1]))
	}
	if f == False || f == True {
		t.Fatal("expected nontrivial function")
	}
	if m.Size() < 40 {
		t.Fatalf("expected node growth, size=%d", m.Size())
	}
	// Semantics survive growth.
	assignment := make([]bool, 20)
	assignment[3], assignment[4] = true, true
	if !m.Eval(f, assignment) {
		t.Fatal("Eval wrong after growth")
	}
}

func TestPermutationValidation(t *testing.T) {
	m := New()
	m.NewVars(4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-bijective permutation")
		}
	}()
	m.NewPermutation([]int{0, 0, 2, 3})
}

func TestVarOutOfRangePanics(t *testing.T) {
	m := New()
	m.NewVars(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range Var")
		}
	}()
	m.Var(5)
}

func TestRestrictAgreesOnCareSet(t *testing.T) {
	const nvars = 7
	m := New()
	m.NewVars(nvars)
	rng := rand.New(rand.NewSource(55))
	for iter := 0; iter < 200; iter++ {
		f := randomFormula(m, rng, nvars, 4)
		c := randomFormula(m, rng, nvars, 4)
		if c == False {
			continue
		}
		r := m.Restrict(f, c)
		tf := truthTable(m, f, nvars)
		tc := truthTable(m, c, nvars)
		tr := truthTable(m, r, nvars)
		for row := range tf {
			if tc[row] && tr[row] != tf[row] {
				t.Fatalf("iter %d row %d: Restrict disagrees on the care set", iter, row)
			}
		}
		// Idempotent on the care set and never larger than useful: the
		// classical size property r = f when c = True.
		if m.Restrict(f, True) != f {
			t.Fatal("Restrict with True care set must be identity")
		}
	}
}

func TestRestrictPanicsOnEmptyCareSet(t *testing.T) {
	m := New()
	x := m.NewVar("x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Restrict(x, False)
}
