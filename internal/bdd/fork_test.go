package bdd

// Tests for op-internal fork/join (Shared.Run): results must be the same
// canonical nodes the serial engine produces, the spawn/steal counters must
// move, surplus workers must help on a single giant operation, and the
// table-full abort must unwind cleanly through spinning joiners.

import (
	"context"
	"errors"
	"testing"
)

// forkFormula builds a wide pseudo-random DNF whose BDD root sits at the top
// of the order, so forked recursions get big, balanced high branches. The
// LCG makes it deterministic per seed.
func forkFormula(m *Manager, vars []Node, seed int) Node {
	r := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func(n int) int {
		r = r*6364136223846793005 + 1442695040888963407
		return int((r >> 33) % uint64(n))
	}
	f := False
	for c := 0; c < 40; c++ {
		cube := True
		for k := 0; k < 6; k++ {
			v := vars[next(len(vars))]
			if next(2) == 0 {
				v = m.Not(v)
			}
			cube = m.And(cube, v)
		}
		f = m.Or(f, cube)
	}
	return f
}

// TestSharedForkJoin runs forked And/Or/AndExists across views and checks
// node-identity with the serial results (one hash-consed table: function
// identity is index identity), plus that forks actually fired.
func TestSharedForkJoin(t *testing.T) {
	m := New()
	vars := m.NewVars(24)
	for _, x := range vars {
		m.Ref(x) // vars are held across GCs; the ring alone cannot root them
	}
	evens := make([]int, 0, 12)
	for i := 0; i < len(vars); i += 2 {
		evens = append(evens, i)
	}
	sc := m.Protect()
	defer sc.Release()
	cube := sc.Keep(m.Cube(evens))

	const pairs = 6
	fs := make([]Node, 2*pairs)
	for i := range fs {
		fs[i] = sc.Keep(forkFormula(m, vars, i))
	}
	want := make([]Node, 3*pairs)
	for p := 0; p < pairs; p++ {
		f, g := fs[2*p], fs[2*p+1]
		want[3*p+0] = sc.Keep(m.And(f, g))
		want[3*p+1] = sc.Keep(m.Or(f, g))
		want[3*p+2] = sc.Keep(m.AndExists(f, g, cube))
	}

	s := NewShared(m, 4, 12)
	defer s.Close()
	got := make([]Node, len(want))
	s.Begin()
	err := s.Run(context.Background(), len(want), func(w, task int) error {
		v := s.View(w)
		f, g := fs[2*(task/3)], fs[2*(task/3)+1]
		var r Node
		switch task % 3 {
		case 0:
			r = v.And(f, g)
		case 1:
			r = v.Or(f, g)
		default:
			r = v.AndExists(f, g, cube)
		}
		got[task] = v.Ref(r)
		return nil
	})
	s.End()
	if err != nil {
		t.Fatalf("Shared.Run: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("task %d: forked node %d != serial node %d", i, got[i], want[i])
		}
	}
	spawns, steals := s.OpStats()
	if spawns == 0 {
		t.Fatal("no opTasks spawned: fork sites never fired")
	}
	if steals < 0 || steals > spawns {
		t.Fatalf("implausible steal count %d for %d spawns", steals, spawns)
	}
	for w := 0; w < s.Workers(); w++ {
		v := s.View(w)
		for n := range v.refs {
			delete(v.refs, n)
		}
	}
}

// TestSharedForkJoinSingleTask gives 4 workers ONE giant conjunction: without
// fork/join three of them would idle; with it the task must still produce the
// serial result and spawn stealable branches.
func TestSharedForkJoinSingleTask(t *testing.T) {
	m := New()
	vars := m.NewVars(24)
	for _, x := range vars {
		m.Ref(x)
	}
	sc := m.Protect()
	defer sc.Release()
	f := sc.Keep(forkFormula(m, vars, 101))
	g := sc.Keep(forkFormula(m, vars, 202))
	want := sc.Keep(m.And(f, g))

	s := NewShared(m, 4, 12)
	defer s.Close()
	var got Node
	s.Begin()
	err := s.Run(context.Background(), 1, func(w, task int) error {
		v := s.View(w)
		got = v.Ref(v.And(f, g))
		return nil
	})
	s.End()
	if err != nil {
		t.Fatalf("Shared.Run: %v", err)
	}
	if got != want {
		t.Fatalf("forked single-task result %d != serial %d", got, want)
	}
	if spawns, _ := s.OpStats(); spawns == 0 {
		t.Fatal("single-task region spawned nothing")
	}
	for w := 0; w < s.Workers(); w++ {
		v := s.View(w)
		for n := range v.refs {
			delete(v.refs, n)
		}
	}
}

// TestSharedForkJoinTableFull exhausts a tiny region while forked opTasks are
// in flight: every abort must unwind (spawner spins see the abort flag, no
// hang), and after Bump the retry must produce the serial results.
func TestSharedForkJoinTableFull(t *testing.T) {
	m := NewSized(10)
	vars := m.NewVars(20)
	for _, x := range vars {
		m.Ref(x)
	}
	sc := m.Protect()
	defer sc.Release()
	const tasks = 4

	s := NewShared(m, 3, 10)
	defer s.Close()
	s.minCap = 64 // tiny region capacity: the first round must blow
	sawFull := false
	got := make([]Node, tasks)
	for attempt := 0; ; attempt++ {
		if attempt > 20 {
			t.Fatal("region capacity never became sufficient")
		}
		s.Begin()
		err := s.Run(context.Background(), tasks, func(w, task int) error {
			v := s.View(w)
			got[task] = v.Ref(v.And(forkFormula(v, vars, 7*task), forkFormula(v, vars, 7*task+3)))
			return nil
		})
		s.End()
		if err == nil {
			break
		}
		if !errors.Is(err, ErrSharedTableFull) {
			t.Fatalf("unexpected error: %v", err)
		}
		sawFull = true
		for w := 0; w < s.Workers(); w++ {
			v := s.View(w)
			for n := range v.refs {
				delete(v.refs, n)
			}
		}
		s.Bump()
		m.GC()
	}
	if !sawFull {
		t.Fatal("tiny region never reported ErrSharedTableFull")
	}
	// The serial reference, computed after the fact in the same hash-consed
	// table, must land on the exact nodes the forked rounds produced. Each
	// operand is Kept before building the next: forkFormula runs more ops
	// than the recent ring holds, so a ring-rooted result would be collected
	// mid-expression under GC stress.
	for i := 0; i < tasks; i++ {
		f := sc.Keep(forkFormula(m, vars, 7*i))
		g := sc.Keep(forkFormula(m, vars, 7*i+3))
		want := sc.Keep(m.And(f, g))
		if got[i] != want {
			t.Fatalf("task %d after retries: node %d != serial node %d", i, got[i], want)
		}
	}
	for w := 0; w < s.Workers(); w++ {
		v := s.View(w)
		for n := range v.refs {
			delete(v.refs, n)
		}
	}
}
