package bdd

// This file implements quantification (∃, ∀), the combined relational
// product And-Exists used for image computation, and variable replacement
// (renaming), which together are the workhorses of symbolic reachability and
// the group computation for read restrictions.
//
// As in apply.go, each public operation is a safe-point wrapper around a
// private recursive body; recursive bodies only call other private bodies.

// Cube builds the positive cube (conjunction) of the variables with the
// given ids. Cubes identify the quantified variable sets for Exists, Forall
// and AndExists.
func (m *Manager) Cube(vars []int) Node {
	m.safe(False, False, False)
	// Build from the bottom of the current order upward so each mk is O(1).
	sorted := make([]int, len(vars))
	for i, v := range vars {
		sorted[i] = int(m.var2level[v])
	}
	insertionSortDesc(sorted)
	r := True
	for _, l := range sorted {
		r = m.mk(int32(l), False, r)
	}
	return m.keep(r)
}

func insertionSortDesc(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] < v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// CubeVars returns the variable ids of a positive cube built by Cube,
// ascending.
func (m *Manager) CubeVars(cube Node) []int {
	var out []int
	for cube != True {
		n := m.nodes[cube]
		out = append(out, int(m.level2var[n.level]))
		if n.low == False {
			cube = n.high
		} else {
			cube = n.low
		}
	}
	insertionSortAsc(out)
	return out
}

// Exists existentially quantifies the variables of cube out of f.
func (m *Manager) Exists(f, cube Node) Node {
	m.safe(f, cube, False)
	return m.keep(m.existsRec(f, cube))
}

func (m *Manager) existsRec(f, cube Node) Node {
	if m.IsTerminal(f) || cube == True {
		return f
	}
	if r, ok := m.unLookup(opExists, f, cube); ok {
		return r
	}
	nf := m.nodes[f]
	// Skip cube variables above f's root.
	c := cube
	for !m.IsTerminal(c) && m.nodes[c].level < nf.level {
		c = m.nodes[c].high
	}
	var r Node
	if c == True {
		r = f
	} else if m.nodes[c].level == nf.level {
		lo := m.existsRec(nf.low, m.nodes[c].high)
		if lo == True {
			r = True
		} else {
			r = m.orRec(lo, m.existsRec(nf.high, m.nodes[c].high))
		}
	} else {
		r = m.mk(nf.level, m.existsRec(nf.low, c), m.existsRec(nf.high, c))
	}
	m.unStore(opExists, f, cube, r)
	return r
}

// Forall universally quantifies the variables of cube out of f.
func (m *Manager) Forall(f, cube Node) Node {
	m.safe(f, cube, False)
	return m.keep(m.forallRec(f, cube))
}

func (m *Manager) forallRec(f, cube Node) Node {
	if m.IsTerminal(f) || cube == True {
		return f
	}
	if r, ok := m.unLookup(opForall, f, cube); ok {
		return r
	}
	nf := m.nodes[f]
	c := cube
	for !m.IsTerminal(c) && m.nodes[c].level < nf.level {
		c = m.nodes[c].high
	}
	var r Node
	if c == True {
		r = f
	} else if m.nodes[c].level == nf.level {
		lo := m.forallRec(nf.low, m.nodes[c].high)
		if lo == False {
			r = False
		} else {
			r = m.andRec(lo, m.forallRec(nf.high, m.nodes[c].high))
		}
	} else {
		r = m.mk(nf.level, m.forallRec(nf.low, c), m.forallRec(nf.high, c))
	}
	m.unStore(opForall, f, cube, r)
	return r
}

// AndExists computes ∃cube. (f ∧ g) without materializing the full
// conjunction — the classic relational product used for image and preimage
// computation on transition relations.
func (m *Manager) AndExists(f, g, cube Node) Node {
	m.safe(f, g, cube)
	return m.keep(m.andExistsRec(f, g, cube))
}

func (m *Manager) andExistsRec(f, g, cube Node) Node {
	// Terminal cases.
	switch {
	case f == False || g == False:
		return False
	case f == True && g == True:
		return True
	case f == True:
		return m.existsRec(g, cube)
	case g == True:
		return m.existsRec(f, cube)
	case f == g:
		return m.existsRec(f, cube)
	}
	if f > g {
		f, g = g, f
	}
	if r, ok := m.relLookup(f, g, cube); ok {
		return r
	}
	nf, ng := m.nodes[f], m.nodes[g]
	top := nf.level
	if ng.level < top {
		top = ng.level
	}
	c := cube
	for !m.IsTerminal(c) && m.nodes[c].level < top {
		c = m.nodes[c].high
	}
	f0, f1 := m.cofactor(f, top)
	g0, g1 := m.cofactor(g, top)
	var r Node
	if c != True && m.nodes[c].level == top {
		rest := m.nodes[c].high
		if m.shouldFork(top) {
			// Fork/join (Shared.Run regions only): ship the high branch,
			// compute the low inline, join before the combine and the cache
			// write. The forked path gives up the lo == True short-circuit —
			// the high branch is already in flight.
			ot := m.forkSpawn(opAndExists, f1, g1, rest)
			lo := m.andExistsRec(f0, g0, rest)
			hi := m.forkJoin(ot)
			if lo == True || hi == True {
				r = True
			} else {
				r = m.orRec(lo, hi)
			}
		} else {
			lo := m.andExistsRec(f0, g0, rest)
			if lo == True {
				r = True
			} else {
				r = m.orRec(lo, m.andExistsRec(f1, g1, rest))
			}
		}
	} else if m.shouldFork(top) {
		ot := m.forkSpawn(opAndExists, f1, g1, c)
		lo := m.andExistsRec(f0, g0, c)
		r = m.mk(top, lo, m.forkJoin(ot))
	} else {
		r = m.mk(top, m.andExistsRec(f0, g0, c), m.andExistsRec(f1, g1, c))
	}
	m.relStore(f, g, cube, r)
	return r
}

// Permutation registers a variable renaming for use with Replace. mapping
// maps variable ids to variable ids; it must be a bijection on the ids it
// moves. Unlisted ids (mapping[i] == i) stay in place.
type Permutation struct {
	id      Node // index into m.perm, used as cache parameter
	mapping []int32
}

// NewPermutation registers mapping (old variable id -> new variable id) with
// the manager. The mapping slice must have one entry per allocated variable.
func (m *Manager) NewPermutation(mapping []int) *Permutation {
	if len(mapping) != m.numVars {
		panic("bdd: permutation length must equal NumVars")
	}
	mm := make([]int32, len(mapping))
	seen := make([]bool, len(mapping))
	for i, v := range mapping {
		if v < 0 || v >= m.numVars {
			panic("bdd: permutation target out of range")
		}
		if seen[v] {
			panic("bdd: permutation is not a bijection")
		}
		seen[v] = true
		mm[i] = int32(v)
	}
	m.perm = append(m.perm, permutation{mapping: mm})
	return &Permutation{id: Node(len(m.perm) - 1), mapping: mm}
}

// Replace renames the variables of f according to the permutation. The
// implementation rebuilds with ITE, so it is correct for arbitrary
// (order-breaking) permutations such as swapping current- and next-state
// variables.
func (m *Manager) Replace(f Node, p *Permutation) Node {
	m.safe(f, False, False)
	return m.keep(m.replaceRec(f, p))
}

func (m *Manager) replaceRec(f Node, p *Permutation) Node {
	if m.IsTerminal(f) {
		return f
	}
	if r, ok := m.unLookup(opReplace, f, p.id); ok {
		return r
	}
	n := m.nodes[f]
	lo := m.replaceRec(n.low, p)
	hi := m.replaceRec(n.high, p)
	r := m.iteRec(m.mkVar(m.var2level[p.mapping[m.level2var[n.level]]]), hi, lo)
	m.unStore(opReplace, f, p.id, r)
	return r
}
