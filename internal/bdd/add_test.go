package bdd

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// addOracle is a map-based model of a weighted function over nv variables:
// value[assignment bitmask] = weight. The ADD under test must agree with it
// on every one of the 2^nv assignments.
type addOracle struct {
	nv   int
	vals []int64
}

func newAddOracle(nv int) *addOracle {
	return &addOracle{nv: nv, vals: make([]int64, 1<<nv)}
}

func (o *addOracle) combine(other *addOracle, f func(a, b int64) int64) *addOracle {
	out := newAddOracle(o.nv)
	for i := range out.vals {
		out.vals[i] = f(o.vals[i], other.vals[i])
	}
	return out
}

// checkAgainst evaluates the ADD on every assignment and compares.
func (o *addOracle) checkAgainst(t *testing.T, m *Manager, f Node, what string) {
	t.Helper()
	assign := make([]bool, o.nv)
	for mask := 0; mask < 1<<o.nv; mask++ {
		for v := 0; v < o.nv; v++ {
			assign[v] = mask&(1<<v) != 0
		}
		if got, want := m.AddEval(f, assign), o.vals[mask]; got != want {
			t.Fatalf("%s: assignment %b: ADD evaluates to %d, oracle says %d", what, mask, got, want)
		}
	}
}

// randWeighted builds a random weighted function as a sum of weighted random
// cubes, returning both the ADD and its oracle. Weights stay small enough
// that sums cannot saturate.
func randWeighted(t *testing.T, m *Manager, rng *rand.Rand, vars []Node, terms int) (Node, *addOracle) {
	t.Helper()
	nv := len(vars)
	o := newAddOracle(nv)
	sc := m.Protect()
	defer sc.Release()
	acc := sc.Slot(False) // constant 0
	for i := 0; i < terms; i++ {
		cube := sc.Slot(True)
		careMask, valMask := 0, 0
		for v := 0; v < nv; v++ {
			switch rng.Intn(3) {
			case 0:
				careMask |= 1 << v
				valMask |= 1 << v
				cube.Set(m.And(cube.Node(), vars[v]))
			case 1:
				careMask |= 1 << v
				cube.Set(m.And(cube.Node(), m.Not(vars[v])))
			}
		}
		w := int64(rng.Intn(50) + 1)
		acc.Set(m.AddPlus(acc.Node(), m.FromBDD(cube.Node(), w)))
		for mask := 0; mask < 1<<nv; mask++ {
			if mask&careMask == valMask {
				o.vals[mask] += w
			}
		}
	}
	return m.Ref(acc.Node()), o
}

// TestAddConstInterning pins the terminal representation: 0 and 1 are the
// Boolean terminals, every other value is one interned slot with a stable
// value, and terminals read back as ADD terminals.
func TestAddConstInterning(t *testing.T) {
	m := New()
	if m.AddConst(0) != False || m.AddConst(1) != True {
		t.Fatal("AddConst(0)/AddConst(1) must be the Boolean terminals")
	}
	five := m.AddConst(5)
	if five2 := m.AddConst(5); five2 != five {
		t.Fatalf("AddConst(5) not interned: %d then %d", five, five2)
	}
	if !m.IsAddTerminal(five) || m.AddValue(five) != 5 {
		t.Fatalf("AddConst(5) does not read back as a 5-valued terminal")
	}
	if m.AddValue(False) != 0 || m.AddValue(True) != 1 {
		t.Fatal("Boolean terminals must carry values 0 and 1")
	}
	inf := m.AddConst(AddInf)
	if m.AddValue(inf) != AddInf {
		t.Fatal("AddInf terminal does not round-trip")
	}
	x := m.NewVar("x")
	if m.IsAddTerminal(x) {
		t.Fatal("a variable node is not an ADD terminal")
	}
}

// TestAddApplyOracle checks the three binary apply operators against the
// map-based oracle on random weighted functions.
func TestAddApplyOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for round := 0; round < 20; round++ {
		m := New()
		vars := m.NewVars(6)
		a, ao := randWeighted(t, m, rng, vars, 4)
		b, bo := randWeighted(t, m, rng, vars, 4)
		ao.checkAgainst(t, m, a, "operand a")
		bo.checkAgainst(t, m, b, "operand b")
		min64 := func(x, y int64) int64 {
			if x < y {
				return x
			}
			return y
		}
		max64 := func(x, y int64) int64 {
			if x > y {
				return x
			}
			return y
		}
		ao.combine(bo, func(x, y int64) int64 { return x + y }).checkAgainst(t, m, m.AddPlus(a, b), "AddPlus")
		ao.combine(bo, min64).checkAgainst(t, m, m.AddMin(a, b), "AddMin")
		ao.combine(bo, max64).checkAgainst(t, m, m.AddMax(a, b), "AddMax")
		if m.AddMin(a, a) != a || m.AddMax(a, a) != a {
			t.Fatal("min/max are not idempotent")
		}
		// Commutativity must hold on the nose (canonical structure).
		if m.AddPlus(a, b) != m.AddPlus(b, a) || m.AddMin(a, b) != m.AddMin(b, a) {
			t.Fatal("binary apply is not commutative")
		}
	}
}

// TestAddSaturation pins the +∞ arithmetic: AddInf is absorbing under
// saturating addition and the identity of min.
func TestAddSaturation(t *testing.T) {
	m := New()
	x := m.NewVar("x")
	inf := m.AddConst(AddInf)
	w := m.FromBDD(x, 7)
	if got := m.AddPlus(inf, m.AddConst(3)); m.AddValue(got) != AddInf {
		t.Fatalf("AddInf + 3 = %d, want AddInf", m.AddValue(got))
	}
	if got := m.AddMin(inf, w); got != w {
		t.Fatal("min(AddInf, f) must be f")
	}
	lo := m.AddConst(math.MinInt64)
	if got := m.AddPlus(lo, m.AddConst(-1)); m.AddValue(got) != math.MinInt64 {
		t.Fatal("negative saturation must clamp at MinInt64")
	}
}

// TestFromBDDThreshold checks the two bridge directions compose: lifting a
// BDD to weight w and thresholding at w recovers the BDD, and thresholding
// slices a multi-weight function into its cost classes.
func TestFromBDDThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := New()
	vars := m.NewVars(6)
	f, _ := randWeighted(t, m, rng, vars, 1)
	support := m.Threshold(f, 1) // the lifted cube: everything weighted ≥ 1
	w := m.AddMaxValue(f)
	if w > 0 && m.FromBDD(support, w) != f {
		t.Fatal("FromBDD(Threshold(f,1), max) does not recover a single-weight lift")
	}
	// Cost classes partition the support: each assignment lands in exactly
	// the class of its weight.
	g, og := randWeighted(t, m, rng, vars, 3)
	for _, v := range m.AddTerminals(g) {
		atLeast := m.Threshold(g, v)
		var above Node
		if v == AddInf {
			above = False
		} else {
			above = m.Threshold(g, v+1)
		}
		class := m.Diff(atLeast, above)
		assign := make([]bool, len(vars))
		for mask := 0; mask < 1<<len(vars); mask++ {
			for i := range vars {
				assign[i] = mask&(1<<i) != 0
			}
			want := og.vals[mask] == v
			if got := m.Eval(class, assign); got != want {
				t.Fatalf("class %d: assignment %b: in-class=%v, oracle weight %d", v, mask, got, og.vals[mask])
			}
		}
	}
	if vs := m.AddTerminals(g); len(vs) == 0 {
		t.Fatal("AddTerminals returned no classes")
	}
}

// TestMinAbstractOracle checks the existential cost projection against a
// brute-force minimum over the abstracted variables.
func TestMinAbstractOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 10; round++ {
		m := New()
		vars := m.NewVars(6)
		f, o := randWeighted(t, m, rng, vars, 4)
		// Abstract a random subset of variables.
		var cubeVars []int
		cubeMask := 0
		for v := range vars {
			if rng.Intn(2) == 0 {
				cubeVars = append(cubeVars, v)
				cubeMask |= 1 << v
			}
		}
		proj := m.MinAbstract(f, m.Cube(cubeVars))
		assign := make([]bool, len(vars))
		for mask := 0; mask < 1<<len(vars); mask++ {
			want := int64(math.MaxInt64)
			// Minimum over all completions of the non-abstracted bits.
			for sub := 0; ; sub = (sub - cubeMask) & cubeMask {
				v := o.vals[(mask&^cubeMask)|sub]
				if v < want {
					want = v
				}
				if sub == cubeMask {
					break
				}
			}
			for i := range vars {
				assign[i] = mask&(1<<i) != 0
			}
			if got := m.AddEval(proj, assign); got != want {
				t.Fatalf("MinAbstract: assignment %b: got %d, want %d", mask, got, want)
			}
		}
	}
}

// TestAddSumOracle checks the weighted model count against brute force, and
// its agreement with SatCount on 0/1 functions.
func TestAddSumOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := New()
	vars := m.NewVars(6)
	f, o := randWeighted(t, m, rng, vars, 4)
	var want float64
	for _, v := range o.vals {
		want += float64(v)
	}
	if got := m.AddSum(f); got != want {
		t.Fatalf("AddSum = %g, want %g", got, want)
	}
	cube := m.And(vars[0], m.Not(vars[3]))
	if got, want := m.AddSum(cube), m.SatCount(cube); got != want {
		t.Fatalf("AddSum on a 0/1 function = %g, SatCount = %g", got, want)
	}
}

// TestAddITE checks that the general ITE combinator multiplexes ADDs by a
// BDD condition — the property the cost builder relies on.
func TestAddITE(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := New()
	vars := m.NewVars(6)
	a, ao := randWeighted(t, m, rng, vars, 3)
	b, bo := randWeighted(t, m, rng, vars, 3)
	cond := m.Or(vars[1], m.And(vars[2], m.Not(vars[4])))
	r := m.ITE(cond, a, b)
	assign := make([]bool, len(vars))
	for mask := 0; mask < 1<<len(vars); mask++ {
		for i := range vars {
			assign[i] = mask&(1<<i) != 0
		}
		want := bo.vals[mask]
		if m.Eval(cond, assign) {
			want = ao.vals[mask]
		}
		if got := m.AddEval(r, assign); got != want {
			t.Fatalf("ITE: assignment %b: got %d, want %d", mask, got, want)
		}
	}
}

// TestAddTransferRoundTrip checks Export/Import of weighted terminals: the
// buffer is canonical (manager-independent), a pure BDD still exports as the
// v2 format byte-for-byte, and an ADD round-trips into managers with the
// same and with a different variable order.
func TestAddTransferRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := New()
	vars := m.NewVars(6)
	f, o := randWeighted(t, m, rng, vars, 4)

	// A pure BDD must still use the v2 format (byte-compatibility with the
	// worker-pool transfer path and its goldens).
	if buf := m.Export(m.And(vars[0], vars[1])); buf[1] != transferVersion {
		t.Fatalf("pure-BDD export uses version %#x, want %#x", buf[1], transferVersion)
	}
	buf := m.Export(f)
	if buf[1] != transferVersionV3 {
		t.Fatalf("weighted export uses version %#x, want %#x", buf[1], transferVersionV3)
	}

	// Same-order import: values agree everywhere and re-export is identical.
	m2 := New()
	m2.NewVars(6)
	g := Import(m2, buf)
	o.checkAgainst(t, m2, g, "same-order import")
	if !bytes.Equal(m2.Export(g), buf) {
		t.Fatal("re-export after same-order import is not byte-identical")
	}

	// Mismatched-order import exercises the ITE rebuild path.
	m3 := New()
	m3.NewVars(6)
	m3.SetOrder([]int{5, 3, 1, 0, 2, 4})
	h := Import(m3, buf)
	o.checkAgainst(t, m3, h, "reordered import")

	// Export from a reordered sender carries the order section and still
	// lands on the same function.
	m.SetOrder([]int{2, 4, 0, 5, 1, 3})
	buf2 := m.Export(f)
	m4 := New()
	m4.NewVars(6)
	o.checkAgainst(t, m4, Import(m4, buf2), "reordered export")
}

// TestAddGCReorderStress interleaves collections, explicit sifting passes and
// order shuffles with ADD operations: terminal slots must survive every
// collection (they are permanently rooted), sifting must skip them, and every
// function must keep its values. Under REPRO_GC_STRESS=1 the automatic
// triggers add collections at nearly every allocation on top.
func TestAddGCReorderStress(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := New()
	vars := m.NewVars(8)
	f, o := randWeighted(t, m, rng, vars, 5)
	orders := [][]int{
		{7, 6, 5, 4, 3, 2, 1, 0},
		{3, 1, 4, 0, 6, 2, 7, 5},
		{0, 1, 2, 3, 4, 5, 6, 7},
	}
	for round := 0; round < 6; round++ {
		m.GC()
		// Churn: allocate garbage ADDs so collections and sifts have dead
		// weighted structure to chew through.
		g, _ := randWeighted(t, m, rng, vars, 3)
		_ = m.AddMin(f, m.AddPlus(g, m.AddConst(int64(round)+2)))
		m.Deref(g)
		if round%2 == 0 {
			m.Reorder()
		} else {
			m.SetOrder(orders[round%len(orders)])
		}
		m.GC()
		o.checkAgainst(t, m, f, "after stress round")
		// The projection and the slices must also survive post-reorder.
		proj := m.MinAbstract(f, m.Cube([]int{0, 5}))
		if m.AddMinValue(proj) != m.AddMinValue(f) {
			t.Fatal("global minimum changed across GC/reorder")
		}
	}
}
