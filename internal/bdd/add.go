package bdd

// This file implements ADDs (algebraic decision diagrams, also known as
// MTBDDs): decision diagrams whose terminals carry int64 weights instead of
// just false/true. The cost-aware repair pipeline uses them to attach a
// removal cost to every transition of a program and to reason about whole
// weighted transition sets symbolically.
//
// Representation. A weighted terminal is an ordinary node slot whose level is
// terminalLevel and whose low and high fields point at the slot itself — the
// same shape as the built-in False/True records, so the GC mark phase, the
// sweep, the unique-table rebuilds and CheckNode all handle them with no
// special cases. The two Boolean terminals double as the ADD constants 0
// (False) and 1 (True), which makes every BDD also a 0/1-valued ADD and the
// ITE combinator the Boolean↔ADD multiplexer for free. Terminals are interned
// through side maps (value ↔ node) and permanently rooted at creation:
//
//   - the permanent ref keeps the intern maps valid across collections (a
//     freed-and-reused slot would silently alias another function), and
//   - it marks the terminal externally rooted during reorder sessions, which
//     short-circuits the incEdge/decEdge death cascade that would otherwise
//     chase the terminal's self-loop forever.
//
// Reordering. Terminal records sit at terminalLevel, below every variable, so
// sifting never moves them; buildReorderLists skips them when indexing levels
// (their level is not a valid rl index and their self-loops would count as
// parents). The apply recursions below compare levels just like apply.go, so
// they are correct under any variable order.
//
// Arithmetic. Weights are int64. AddInf (MaxInt64) serves as +∞; addSat is
// the saturating addition that keeps it absorbing. MinAbstract is the
// min-analogue of Exists: it projects a cube of variables out of a weighted
// function by taking the cheapest branch, the existential cost projection
// used to price transition groups.
//
// Concurrency. Terminal interning mutates manager-level maps with no
// synchronization, so ADD operations must not run inside shared-memory
// parallel regions; AddConst panics on a worker view. The repair pipeline
// computes all costs on the primary manager outside parallel regions, which
// is also what keeps weighted runs byte-identical across engine modes.

import (
	"fmt"
	"math"
	"sort"
)

// AddInf is the +∞ weight: the identity of AddMin and an absorbing element of
// saturating addition. Threshold and friends treat it like any other value.
const AddInf int64 = math.MaxInt64

// addSat is saturating addition: results beyond the int64 range clamp to
// AddInf / MinInt64 instead of wrapping, so +∞ stays absorbing.
func addSat(a, b int64) int64 {
	s := a + b
	switch {
	case a > 0 && b > 0 && s < 0:
		return AddInf
	case a < 0 && b < 0 && s >= 0:
		return math.MinInt64
	}
	return s
}

// isAddTerm reports whether f is a terminal of an ADD: one of the Boolean
// terminals or a weighted terminal record.
func (m *Manager) isAddTerm(f Node) bool {
	return f <= True || m.nodes[f].level == terminalLevel
}

// IsAddTerminal reports whether f is an ADD terminal (a constant function):
// False (0), True (1), or a weighted terminal created by AddConst.
func (m *Manager) IsAddTerminal(f Node) bool {
	m.CheckNode(f)
	return m.isAddTerm(f)
}

// AddValue returns the weight of an ADD terminal. It panics if f is not a
// terminal; use IsAddTerminal to test first.
func (m *Manager) AddValue(f Node) int64 {
	m.CheckNode(f)
	return m.addTermValue(f)
}

func (m *Manager) addTermValue(f Node) int64 {
	switch f {
	case False:
		return 0
	case True:
		return 1
	}
	v, ok := m.addVal[f]
	if !ok {
		panic(fmt.Sprintf("bdd: AddValue of non-terminal node %d", f))
	}
	return v
}

// AddConst returns the constant ADD with the given value. Values 0 and 1 are
// the Boolean terminals False and True; other values are interned weighted
// terminals, permanently rooted in the manager (they are shared leaves of
// every weighted function, so they live as long as the manager does).
func (m *Manager) AddConst(v int64) Node {
	m.safe(False, False, False)
	return m.addConst(v)
}

// addConst is AddConst without the safe point, for use inside recursions.
func (m *Manager) addConst(v int64) Node {
	switch v {
	case 0:
		return False
	case 1:
		return True
	}
	if t, ok := m.addTerm[v]; ok {
		return t
	}
	if m.shared != nil {
		panic("bdd: ADD operations are not available inside shared parallel regions " +
			"(terminal interning is unsynchronized); compute costs on the primary manager")
	}
	var idx Node
	if m.freeHead != 0 {
		idx = m.freeHead
		m.freeHead = m.nodes[idx].low
		m.freeCnt--
	} else {
		idx = Node(len(m.nodes))
		m.nodes = append(m.nodes, node{})
	}
	m.nodes[idx] = node{level: terminalLevel, low: idx, high: idx}
	m.uniqueInsert(idx)
	m.stats.NodesAllocated++
	m.allocSince++
	if m.gcThreshold > 0 && m.allocSince >= m.gcThreshold {
		m.gcPending = true
	}
	live := int64(len(m.nodes) - m.freeCnt)
	if live > m.stats.PeakLive {
		m.stats.PeakLive = live
	}
	if m.nodeBudget > 0 && live > m.nodeBudget {
		m.gcPending = true
		m.budgetHit = true
	}
	if uint64(live)*4 > uint64(len(m.unique))*3 {
		m.growUnique(uint64(len(m.unique)) * 2)
	}
	if m.addTerm == nil {
		m.addTerm = make(map[int64]Node)
		m.addVal = make(map[Node]int64)
	}
	m.addTerm[v] = idx
	m.addVal[idx] = v
	m.Ref(idx) // permanent: keeps the intern maps valid across collections
	return idx
}

// AddPlus returns the pointwise saturating sum f + g of two ADDs.
func (m *Manager) AddPlus(f, g Node) Node {
	m.safe(f, g, False)
	return m.keep(m.addApplyRec(opAddPlus, f, g))
}

// AddMin returns the pointwise minimum of two ADDs.
func (m *Manager) AddMin(f, g Node) Node {
	m.safe(f, g, False)
	return m.keep(m.addApplyRec(opAddMin, f, g))
}

// AddMax returns the pointwise maximum of two ADDs.
func (m *Manager) AddMax(f, g Node) Node {
	m.safe(f, g, False)
	return m.keep(m.addApplyRec(opAddMax, f, g))
}

// addApply evaluates one binary apply operator on two terminal values.
func addApply(op uint32, a, b int64) int64 {
	switch op {
	case opAddPlus:
		return addSat(a, b)
	case opAddMin:
		if a < b {
			return a
		}
		return b
	default: // opAddMax
		if a > b {
			return a
		}
		return b
	}
}

// addApplyRec is the shared recursion of the three commutative binary ADD
// operators, memoized in the binary apply cache alongside And/Or/Xor.
func (m *Manager) addApplyRec(op uint32, f, g Node) Node {
	if f == g && op != opAddPlus {
		return f // min/max are idempotent
	}
	if m.isAddTerm(f) && m.isAddTerm(g) {
		return m.addConst(addApply(op, m.addTermValue(f), m.addTermValue(g)))
	}
	if f > g {
		f, g = g, f // all three operators commute
	}
	if r, ok := m.binLookup(op, f, g); ok {
		return r
	}
	nf, ng := m.nodes[f], m.nodes[g]
	top := nf.level
	if ng.level < top {
		top = ng.level
	}
	f0, f1 := m.cofactor(f, top)
	g0, g1 := m.cofactor(g, top)
	r := m.mk(top, m.addApplyRec(op, f0, g0), m.addApplyRec(op, f1, g1))
	m.binStore(op, f, g, r)
	return r
}

// FromBDD lifts a BDD to an ADD that is w where f holds and 0 elsewhere.
func (m *Manager) FromBDD(f Node, w int64) Node {
	m.safe(f, False, False)
	return m.keep(m.fromBDDRec(f, m.addConst(w)))
}

func (m *Manager) fromBDDRec(f, wterm Node) Node {
	switch f {
	case False:
		return False
	case True:
		return wterm
	}
	if r, ok := m.unLookup(opFromBDD, f, wterm); ok {
		return r
	}
	n := m.nodes[f]
	r := m.mk(n.level, m.fromBDDRec(n.low, wterm), m.fromBDDRec(n.high, wterm))
	m.unStore(opFromBDD, f, wterm, r)
	return r
}

// Threshold returns the BDD of the assignments where the ADD f is at least c
// — the Boolean side of the ADD bridge (FromBDD is the other direction).
// Together with Not it slices an ADD into its cost classes.
func (m *Manager) Threshold(f Node, c int64) Node {
	m.safe(f, False, False)
	return m.keep(m.thresholdRec(f, m.addConst(c), c))
}

func (m *Manager) thresholdRec(f, cterm Node, c int64) Node {
	if m.isAddTerm(f) {
		if m.addTermValue(f) >= c {
			return True
		}
		return False
	}
	if r, ok := m.unLookup(opThreshold, f, cterm); ok {
		return r
	}
	n := m.nodes[f]
	r := m.mk(n.level, m.thresholdRec(n.low, cterm, c), m.thresholdRec(n.high, cterm, c))
	m.unStore(opThreshold, f, cterm, r)
	return r
}

// MinAbstract projects the variables of cube out of the ADD f by taking the
// pointwise minimum over their assignments — the min-analogue of Exists, used
// as the existential cost projection (the cheapest completion of a partial
// assignment). cube must be a positive cube as built by Cube.
func (m *Manager) MinAbstract(f, cube Node) Node {
	m.safe(f, cube, False)
	return m.keep(m.minAbstractRec(f, cube))
}

func (m *Manager) minAbstractRec(f, cube Node) Node {
	for cube != True && !m.isAddTerm(f) && m.nodes[cube].level < m.nodes[f].level {
		cube = m.nodes[cube].high // f does not depend on this cube variable
	}
	if cube == True || m.isAddTerm(f) {
		return f
	}
	if r, ok := m.unLookup(opMinAbstract, f, cube); ok {
		return r
	}
	nf, nc := m.nodes[f], m.nodes[cube]
	var r Node
	if nf.level == nc.level {
		r = m.addApplyRec(opAddMin, m.minAbstractRec(nf.low, nc.high), m.minAbstractRec(nf.high, nc.high))
	} else { // nf.level < nc.level
		r = m.mk(nf.level, m.minAbstractRec(nf.low, cube), m.minAbstractRec(nf.high, cube))
	}
	m.unStore(opMinAbstract, f, cube, r)
	return r
}

// AddEval evaluates the ADD f under the given total assignment (indexed by
// variable id).
func (m *Manager) AddEval(f Node, assignment []bool) int64 {
	m.CheckNode(f)
	for !m.isAddTerm(f) {
		n := m.nodes[f]
		if assignment[m.level2var[n.level]] {
			f = n.high
		} else {
			f = n.low
		}
	}
	return m.addTermValue(f)
}

// AddTerminals returns the distinct terminal values reachable in the ADD f,
// ascending — the cost classes of a weighted function.
func (m *Manager) AddTerminals(f Node) []int64 {
	m.CheckNode(f)
	seen := make(map[Node]bool)
	vals := make(map[int64]bool)
	var rec func(Node)
	rec = func(g Node) {
		if seen[g] {
			return
		}
		seen[g] = true
		if m.isAddTerm(g) {
			vals[m.addTermValue(g)] = true
			return
		}
		n := m.nodes[g]
		rec(n.low)
		rec(n.high)
	}
	rec(f)
	out := make([]int64, 0, len(vals))
	for v := range vals {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddMinValue returns the smallest terminal value reachable in f.
func (m *Manager) AddMinValue(f Node) int64 {
	vs := m.AddTerminals(f)
	return vs[0]
}

// AddMaxValue returns the largest terminal value reachable in f.
func (m *Manager) AddMaxValue(f Node) int64 {
	vs := m.AddTerminals(f)
	return vs[len(vs)-1]
}

// AddSum returns the sum of f's value over all assignments of all variables
// currently allocated in the manager — the weighted model count (for a 0/1
// ADD it equals SatCount). Like SatCount the result is a float64: exact in
// shape for the magnitudes in the paper's tables, not in the last bits.
func (m *Manager) AddSum(f Node) float64 {
	m.CheckNode(f)
	memo := make(map[Node]float64)
	var rec func(Node) float64
	rec = func(g Node) float64 {
		if m.isAddTerm(g) {
			return float64(m.addTermValue(g))
		}
		if c, ok := memo[g]; ok {
			return c
		}
		n := m.nodes[g]
		c := rec(n.low)*math.Pow(2, float64(m.addLevelOrTop(n.low)-n.level-1)) +
			rec(n.high)*math.Pow(2, float64(m.addLevelOrTop(n.high)-n.level-1))
		memo[g] = c
		return c
	}
	return rec(f) * math.Pow(2, float64(m.addLevelOrTop(f)))
}

// addLevelOrTop is levelOrTop with weighted terminals also treated as sitting
// just below the last variable.
func (m *Manager) addLevelOrTop(f Node) int32 {
	if m.isAddTerm(f) {
		return int32(m.numVars)
	}
	return m.nodes[f].level
}
