// Package bdd implements reduced ordered binary decision diagrams (ROBDDs)
// with hash-consing, memoized logical operations, quantification, relational
// products, and variable replacement.
//
// The package is self-contained (standard library only) and serves as the
// symbolic substrate for the lazy-repair synthesis engine: state predicates
// and transition predicates of distributed programs are represented as BDDs,
// exactly as in the BDD-based synthesis tools the paper builds on.
//
// A Manager owns all nodes. Node values are only meaningful relative to the
// Manager that created them. Managers are not safe for concurrent use; create
// one Manager per goroutine for parallel workloads.
package bdd

import (
	"fmt"
	"math"
)

// Node is a reference to a BDD node inside a Manager. The constants False and
// True are the two terminal nodes and are valid in every Manager.
type Node int32

// Terminal nodes. These are the same in every Manager.
const (
	// False is the terminal node for the constant false function.
	False Node = 0
	// True is the terminal node for the constant true function.
	True Node = 1
)

// terminalLevel orders terminals below every variable.
const terminalLevel = math.MaxInt32

// node is the internal storage for one BDD node.
type node struct {
	level     int32 // variable level (position in the global order)
	low, high Node  // cofactors: level=false -> low, level=true -> high
}

// Manager owns a shared, hash-consed node table and the operation caches.
//
// All operations on Nodes must go through the Manager that created them.
type Manager struct {
	nodes []node // index = Node; 0 and 1 are terminals

	// unique is an open-addressed hash table mapping (level,low,high) to the
	// node index, guaranteeing structural sharing (hash-consing).
	unique     []Node // 0 means empty slot
	uniqueMask uint64

	numVars int

	// Variable order (see order.go). A variable's id is its creation index
	// and never changes; its level is its current position in the order.
	// Node records store levels; the public API speaks ids.
	var2level []int32 // var2level[id] = level
	level2var []int32 // level2var[level] = id

	// Operation caches (direct-mapped).
	ite  []iteEntry
	bin  []binEntry
	un   []unEntry
	rel  []relEntry
	sat  map[Node]float64
	perm []permutation

	// cacheEpoch is the generation stamp for all op-cache entries; entries
	// written under an older epoch read as misses. Starts at 1 so that
	// zero-valued entries are invalid.
	cacheEpoch uint32

	// Node lifetime management (see gc.go).
	refs        map[Node]int32   // explicit roots, with counts
	freeHead    Node             // head of the freed-slot reuse list (0 = empty)
	freeCnt     int              // number of slots on the free list
	gcThreshold int64            // allocations between automatic collections (<=0 disables)
	allocSince  int64            // allocations since the last collection
	gcPending   bool             // a collection is due at the next safe point
	nodeBudget  int64            // live-node ceiling (<=0 disables)
	budgetHit   bool             // the budget was exceeded; re-check after collecting
	tmpRoots    [3]Node          // operands of the op currently at its safe point
	recent      [recentRing]Node // ring of recent public-op results (roots)
	recentPos   int
	markBuf     []uint64 // reusable mark bitset
	markStack   []Node   // reusable mark traversal stack

	// Dynamic reordering (see order.go).
	reorderThreshold  int64     // allocations between automatic sifting passes (<=0 disables)
	allocSinceReorder int64     // allocations since the last sifting pass
	reorderPending    bool      // a sifting pass is due at the next safe point
	inReorder         bool      // a swap session is active
	rl                [][]Node  // per-level node lists, valid during a session
	depBuf            []swapDep // scratch: level-x nodes depending on level y
	indepBuf          []Node    // scratch: level-x nodes independent of level y
	lastCollectSize   int       // table size after the session's last collect
	swapsThisPass     int       // adjacent swaps consumed by the current pass
	touchedThisPass   int       // level-node touches consumed by the current pass
	passWorkBudget    int       // touch budget of the current pass
	reorderNextSize   int       // table size gate for the next automatic pass
	pc                []int32   // session-local parent counts (live parents only)
	extBits           []uint64  // session-local bitset of externally rooted nodes
	deadCnt           int       // nodes currently dead (unreachable) in the session

	// ADD terminal interning (see add.go). Weighted terminals are node slots
	// at terminalLevel, permanently rooted; these maps translate between
	// values and slots. Nil until the first AddConst.
	addTerm map[int64]Node // value -> terminal slot
	addVal  map[Node]int64 // terminal slot -> value

	// Shared-memory parallel mode (see shared.go, sched.go).
	shared      *Shared    // set on a view while a parallel region is active
	sharedViews []*Manager // set on the primary for a Shared session's lifetime
	chunk       []Node     // view-private allocation chunk during a region
	team        *stealTeam // set on a view while a Shared.Run drives it (fork/join)
	worker      int        // this view's worker index in team

	// Statistics.
	stats Stats

	varNames []string
}

// Stats reports operation, cache and collector counters for a Manager.
type Stats struct {
	NodesAllocated int64 // total nodes ever created (excluding terminals)
	UniqueHits     int64 // mk() calls answered from the unique table
	CacheHits      int64 // operation cache hits
	CacheMisses    int64 // operation cache misses
	NodesLive      int64 // nodes currently live (terminals included)
	PeakLive       int64 // high-water mark of NodesLive
	GCRuns         int64 // collections performed
	NodesFreed     int64 // nodes reclaimed across all collections
	ReorderRuns    int64 // sifting passes performed
	ReorderSwaps   int64 // adjacent-level swaps across all passes
}

// Cache entries carry the epoch they were written in; an entry whose epoch
// differs from the manager's current one is a miss. FlushCaches bumps the
// epoch, invalidating every cache in O(1) — essential now that the collector
// flushes after every sweep.

// iteEntry caches ITE(f,g,h) = res.
type iteEntry struct {
	f, g, h, res Node
	epoch        uint32
}

// binEntry caches op(f,g) = res for the binary apply operations.
type binEntry struct {
	f, g, res Node
	op        uint32
	epoch     uint32
}

// unEntry caches unary-with-parameter operations: exists, forall, replace,
// restrictSupport. param is a cube node or a permutation id.
type unEntry struct {
	f, param, res Node
	op            uint32
	epoch         uint32
}

// relEntry caches AndExists(f,g,cube) = res.
type relEntry struct {
	f, g, cube, res Node
	epoch           uint32
}

// permutation is a registered variable-id renaming used by Replace.
type permutation struct {
	mapping []int32 // mapping[id] = new id
}

// op codes for the binary and unary caches.
const (
	opAnd uint32 = iota
	opOr
	opXor
	opNot
	opExists
	opForall
	opReplace
	opSimplify
	opCof0 // cofactor w.r.t. the variable at a level (param = level)
	opCof1
	// ADD operations (see add.go). The binary ops share the bin cache with
	// And/Or/Xor; the unary ops share the un cache, with an interned terminal
	// as the parameter where the operation is parameterized by a weight.
	opAddPlus
	opAddMin
	opAddMax
	opFromBDD     // param = weight terminal
	opThreshold   // param = threshold terminal
	opMinAbstract // param = cube
)

const (
	defaultCacheBits = 20 // 2^20 entries per cache
	initialNodeCap   = 1 << 20
)

// New creates an empty Manager with no variables. Call NewVar (or NewVars) to
// allocate variables; the creation order defines the global variable order.
func New() *Manager {
	return NewSized(defaultCacheBits)
}

// NewSized creates an empty Manager whose operation caches hold 2^cacheBits
// entries each. The default (New) is tuned for a synthesis that owns the
// machine; worker managers in a Pool use fewer bits so that N workers do not
// multiply the memory footprint by N.
func NewSized(cacheBits int) *Manager {
	if cacheBits < 10 || cacheBits > 28 {
		panic(fmt.Sprintf("bdd: NewSized: cacheBits %d out of range [10,28]", cacheBits))
	}
	m := &Manager{
		nodes: make([]node, 2, initialNodeCap),
		ite:   make([]iteEntry, 1<<cacheBits),
		bin:   make([]binEntry, 1<<cacheBits),
		un:    make([]unEntry, 1<<cacheBits),
		rel:   make([]relEntry, 1<<cacheBits),
		sat:   make(map[Node]float64),
	}
	m.cacheEpoch = 1
	m.nodes[False] = node{level: terminalLevel, low: False, high: False}
	m.nodes[True] = node{level: terminalLevel, low: True, high: True}
	// The unique table starts small; the load-factor check in mk grows it
	// with the live-node count (and the collector keeps it sized to the
	// survivors).
	m.growUnique(1 << 14)
	m.stats.PeakLive = 2
	m.gcThreshold = defaultGCThreshold
	if s := stressThreshold(); s > 0 {
		m.gcThreshold = s
	}
	if s := reorderStress(); s > 0 {
		m.reorderThreshold = s
	}
	m.reorderNextSize = reorderFirstSize
	return m
}

// CheckNode panics if f cannot be a Node of this manager. Node values are
// plain indices, so a Node from a different (often larger) Manager may be out
// of range here — or, worse, silently alias an unrelated function. Operations
// that walk a caller-supplied DAG outside the apply layer call this to turn
// the cross-manager mistake into an immediate, explainable failure.
func (m *Manager) CheckNode(f Node) {
	if f < 0 || int(f) >= len(m.nodes) {
		panic(fmt.Sprintf("bdd: Node %d is not from this manager (have %d nodes); "+
			"nodes are only meaningful relative to the Manager that created them", f, len(m.nodes)))
	}
	if f > True && m.nodes[f].level == freeLevel {
		panic(fmt.Sprintf("bdd: Node %d was collected; it was not rooted across a GC "+
			"(see Ref/Rooted/Protect in package bdd)", f))
	}
}

// NumVars returns the number of variables allocated in the manager.
func (m *Manager) NumVars() int { return m.numVars }

// Size returns the total number of live nodes in the manager, including the
// two terminals. Slots freed by the collector do not count.
func (m *Manager) Size() int { return len(m.nodes) - m.freeCnt }

// Stats returns a snapshot of the manager's operation counters.
func (m *Manager) Stats() Stats {
	s := m.stats
	s.NodesLive = int64(m.Size())
	return s
}

// NewVar allocates a fresh variable at the end of the current order and
// returns the BDD for that variable (the function that is true iff the
// variable is true). The variable's id equals its creation index and is
// stable across reorders. The optional name is used by String and Dot.
func (m *Manager) NewVar(name string) Node {
	m.safe(False, False, False)
	id := int32(m.numVars)
	level := id // a new variable always enters at the bottom of the order
	m.numVars++
	m.var2level = append(m.var2level, level)
	m.level2var = append(m.level2var, id)
	// Cached sat counts are relative to the variable count; invalidate them.
	if len(m.sat) > 0 {
		m.sat = make(map[Node]float64)
	}
	if name == "" {
		name = fmt.Sprintf("x%d", id)
	}
	m.varNames = append(m.varNames, name)
	return m.keep(m.mk(level, False, True))
}

// NewVars allocates n fresh variables with generated names and returns them.
func (m *Manager) NewVars(n int) []Node {
	out := make([]Node, n)
	for i := range out {
		out[i] = m.NewVar("")
	}
	return out
}

// Var returns the BDD for the variable with the given id (creation index).
// It panics if no such variable has been allocated.
func (m *Manager) Var(v int) Node {
	if v < 0 || v >= m.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, m.numVars))
	}
	m.safe(False, False, False)
	return m.keep(m.mkVar(m.var2level[v]))
}

// mkVar is Var without the safe point, for use inside recursions. It takes a
// level, not a variable id.
func (m *Manager) mkVar(level int32) Node {
	return m.mk(level, False, True)
}

// NVar returns the negation of the variable with the given id.
func (m *Manager) NVar(v int) Node {
	if v < 0 || v >= m.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, m.numVars))
	}
	m.safe(False, False, False)
	return m.keep(m.mk(m.var2level[v], True, False))
}

// VarName returns the registered name of the variable with the given id.
func (m *Manager) VarName(v int) string { return m.varNames[v] }

// Level returns the current order position of the root of f, or a value
// larger than any variable level if f is a terminal. Levels move under
// reordering; use VarOf for the stable variable id.
func (m *Manager) Level(f Node) int {
	return int(m.nodes[f].level)
}

// IsTerminal reports whether f is one of the two constant functions.
func (m *Manager) IsTerminal(f Node) bool { return f <= True }

// Low returns the low (else) cofactor of f. f must not be a terminal.
func (m *Manager) Low(f Node) Node { return m.nodes[f].low }

// High returns the high (then) cofactor of f. f must not be a terminal.
func (m *Manager) High(f Node) Node { return m.nodes[f].high }

// mk returns the canonical node for (level, low, high), creating it if needed.
func (m *Manager) mk(level int32, low, high Node) Node {
	if low == high {
		return low
	}
	if m.shared != nil {
		// Inside a parallel region the receiver is a worker view: node
		// creation goes through the lock-free shared path, and maintenance
		// triggers (GC, reorder, budget) are deferred to the barrier.
		return m.mkShared(level, low, high)
	}
	h := hash3(uint64(level), uint64(low), uint64(high)) & m.uniqueMask
	for {
		slot := m.unique[h]
		if slot == 0 {
			break
		}
		n := &m.nodes[slot]
		if n.level == level && n.low == low && n.high == high {
			m.stats.UniqueHits++
			return slot
		}
		h = (h + 1) & m.uniqueMask
	}
	var idx Node
	if m.freeHead != 0 {
		// Reuse the lowest free slot (the sweep orders the list ascending),
		// so indices stay dense and deterministic after collections.
		idx = m.freeHead
		m.freeHead = m.nodes[idx].low
		m.freeCnt--
		m.nodes[idx] = node{level: level, low: low, high: high}
	} else {
		idx = Node(len(m.nodes))
		m.nodes = append(m.nodes, node{level: level, low: low, high: high})
	}
	m.unique[h] = idx
	m.stats.NodesAllocated++
	m.allocSince++
	if m.gcThreshold > 0 && m.allocSince >= m.gcThreshold {
		m.gcPending = true
	}
	m.allocSinceReorder++
	if m.reorderThreshold > 0 && m.allocSinceReorder >= m.reorderThreshold &&
		len(m.nodes)-m.freeCnt >= m.reorderNextSize {
		m.reorderPending = true
	}
	live := int64(len(m.nodes) - m.freeCnt)
	if live > m.stats.PeakLive {
		m.stats.PeakLive = live
	}
	if m.nodeBudget > 0 && live > m.nodeBudget {
		m.gcPending = true
		m.budgetHit = true
	}
	if uint64(live)*4 > uint64(len(m.unique))*3 {
		m.growUnique(uint64(len(m.unique)) * 2)
	}
	return idx
}

// growUnique rebuilds the unique table with the given capacity (power of 2).
func (m *Manager) growUnique(capacity uint64) {
	m.unique = make([]Node, capacity)
	m.uniqueMask = capacity - 1
	for i := 2; i < len(m.nodes); i++ {
		n := &m.nodes[i]
		if n.level == freeLevel {
			continue
		}
		h := hash3(uint64(n.level), uint64(n.low), uint64(n.high)) & m.uniqueMask
		for m.unique[h] != 0 {
			h = (h + 1) & m.uniqueMask
		}
		m.unique[h] = Node(i)
	}
}

// ClearCaches drops all memoized operation results. Node storage is kept.
//
// Deprecated: use FlushCaches.
func (m *Manager) ClearCaches() { m.FlushCaches() }

// FlushCaches drops all memoized operation results — the direct-mapped ITE,
// binary, unary and relational-product caches plus the sat-count memo. Node
// storage is kept. Useful between phases of a long-running synthesis to
// bound cache staleness; the collector also calls it after every sweep,
// because the caches key on raw node indices that may alias once slots are
// reused.
func (m *Manager) FlushCaches() {
	m.cacheEpoch++
	if m.cacheEpoch == 0 {
		// Epoch wrapped (after ~4G flushes): old entries could alias the new
		// generation, so pay for one true clear.
		for i := range m.ite {
			m.ite[i] = iteEntry{}
		}
		for i := range m.bin {
			m.bin[i] = binEntry{}
		}
		for i := range m.un {
			m.un[i] = unEntry{}
		}
		for i := range m.rel {
			m.rel[i] = relEntry{}
		}
		m.cacheEpoch = 1
	}
	m.sat = make(map[Node]float64)
}

// hash3 mixes three words into a table index.
func hash3(a, b, c uint64) uint64 {
	h := a*0x9e3779b97f4a7c15 ^ b*0xc2b2ae3d27d4eb4f ^ c*0x165667b19e3779f9
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h
}
