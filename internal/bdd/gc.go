package bdd

// This file implements node lifetime management: an explicit rooting API
// (Ref/Deref, Rooted handles, Protect scopes), a mark-and-sweep garbage
// collector over the node table, automatic triggering at operation safe
// points, and a node budget that turns unbounded growth into a typed error.
//
// Lifetime contract. A Node stays valid across a collection iff it is
// reachable from a root at collection time. Roots are:
//
//   - explicitly referenced nodes (Ref, Rooted, Protect/Keep/Slot),
//   - the operands of the public operation currently entering its safe point,
//   - the results of the last recentRing public operations (a ring buffer
//     the manager maintains automatically), and
//   - the two terminals.
//
// The ring exists so that short chains of operations — building a cube of
// conjuncts, a nested Or(And(..),And(..)) — need no ceremony: each operand
// was itself a recent result. Anything held across MORE than recentRing
// operation results (struct fields, fixpoint accumulators, slices of
// partition relations) must be rooted explicitly.
//
// Collections only ever run at the entry of a public operation (the safe
// point), never inside a recursion: the public entry points are thin
// wrappers around private recursive bodies, so intermediate nodes living on
// the Go stack during a recursion can never observe a sweep.

import (
	"fmt"
	"os"
	"strconv"
	"sync"
)

// freeLevel marks a node slot on the free list. No real variable can have a
// negative level, so a freed slot is unambiguous; its low field links to the
// next free slot (0 terminates the list, since slot 0 is the False terminal
// and never freed).
const freeLevel int32 = -1

// recentRing is the size of the recent-results root ring (power of two).
const recentRing = 256

// defaultGCThreshold is the allocations-since-last-GC count that arms an
// automatic collection when the manager is created. SetGCThreshold tunes it;
// the REPRO_GC_STRESS environment variable overrides it for every new
// manager (see stressThreshold).
const defaultGCThreshold = 1 << 21

// satMemoLimit bounds the sat-count memo map; satRec resets the map when it
// would grow past this many entries.
const satMemoLimit = 1 << 20

// stressThreshold parses REPRO_GC_STRESS once. Empty/unset disables stress
// mode; a positive integer is used as the GC threshold for every new
// manager; any other non-empty value selects an aggressive default. This is
// the GC-stress mode used by CI: the whole test suite runs with frequent
// collections, so rooting violations surface as test failures.
var stressThreshold = sync.OnceValue(func() int64 {
	v := os.Getenv("REPRO_GC_STRESS")
	if v == "" {
		return 0
	}
	if n, err := strconv.ParseInt(v, 10, 64); err == nil && n > 0 {
		return n
	}
	return 1 << 12
})

// BudgetError reports that a manager exceeded its node budget even after a
// collection. It is delivered as a panic at the offending operation's safe
// point and converted back to an error at the run boundary (core.Run,
// repro.Repair, Pool.Map), so a runaway synthesis fails cleanly instead of
// exhausting memory.
type BudgetError struct {
	Live   int // live node count after the failed collection
	Budget int // the configured budget
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("bdd: node budget exceeded: %d live nodes > budget %d", e.Live, e.Budget)
}

// Ref roots f: it will survive collections until a matching Deref. Ref
// counts, so independent owners may root the same node. Terminals need no
// rooting; Ref returns f for call-chaining.
func (m *Manager) Ref(f Node) Node {
	if f <= True {
		return f
	}
	m.CheckNode(f)
	if m.refs == nil {
		m.refs = make(map[Node]int32)
	}
	m.refs[f]++
	return f
}

// Deref removes one root from f. It panics if f was not rooted — an
// unbalanced Deref is a lifetime-discipline bug worth failing loudly on.
func (m *Manager) Deref(f Node) {
	if f <= True {
		return
	}
	c, ok := m.refs[f]
	if !ok {
		panic(fmt.Sprintf("bdd: Deref of unreferenced node %d", f))
	}
	if c == 1 {
		delete(m.refs, f)
	} else {
		m.refs[f] = c - 1
	}
}

// Rooted is a re-assignable strong handle: the held node is always rooted.
// It is the natural shape for loop-carried fixpoint accumulators
// (reached/frontier sets, invariant candidates) and long-lived struct
// fields.
type Rooted struct {
	m *Manager
	n Node
}

// NewRooted roots f and wraps it in a handle.
func (m *Manager) NewRooted(f Node) *Rooted {
	m.Ref(f)
	return &Rooted{m: m, n: f}
}

// Node returns the currently held node.
func (r *Rooted) Node() Node { return r.n }

// Set re-points the handle at f, rooting f and un-rooting the previous
// value. Returns f for call-chaining.
func (r *Rooted) Set(f Node) Node {
	r.m.Ref(f)
	r.m.Deref(r.n)
	r.n = f
	return f
}

// Release un-roots the held value. The handle holds False afterwards, so a
// second Release is a no-op.
func (r *Rooted) Release() {
	r.m.Deref(r.n)
	r.n = False
}

// Scope is a bulk-release root set for one phase of work: Keep pins
// individual nodes, Slot creates re-assignable handles, and a single
// (usually deferred) Release drops everything at once.
type Scope struct {
	m     *Manager
	kept  []Node
	slots []*Rooted
}

// Protect opens a rooting scope. Typical use:
//
//	sc := m.Protect()
//	defer sc.Release()
//	acc := sc.Slot(bdd.True)
//	for ... { acc.Set(m.And(acc.Node(), step)) }
func (m *Manager) Protect() *Scope { return &Scope{m: m} }

// Keep roots f for the lifetime of the scope and returns it.
func (s *Scope) Keep(f Node) Node {
	s.m.Ref(f)
	s.kept = append(s.kept, f)
	return f
}

// Slot creates a scope-owned re-assignable root initialized to f.
func (s *Scope) Slot(f Node) *Rooted {
	r := s.m.NewRooted(f)
	s.slots = append(s.slots, r)
	return r
}

// Release un-roots everything the scope holds. Safe to call more than once.
func (s *Scope) Release() {
	for _, f := range s.kept {
		s.m.Deref(f)
	}
	s.kept = s.kept[:0]
	for _, r := range s.slots {
		r.Release()
	}
	s.slots = s.slots[:0]
}

// SetGCThreshold arms automatic collection: once n nodes have been
// allocated since the last collection, the next operation safe point
// collects. n <= 0 disables automatic GC (explicit GC() still works).
func (m *Manager) SetGCThreshold(n int64) {
	m.gcThreshold = n
	if n > 0 && m.allocSince >= n {
		m.gcPending = true
	}
}

// SetNodeBudget bounds the live node count: if an operation pushes the live
// count past n and a collection cannot bring it back under, the operation
// panics with *BudgetError (recovered into an error at the run boundary).
// n <= 0 removes the budget.
func (m *Manager) SetNodeBudget(n int64) {
	m.nodeBudget = n
	if n > 0 && int64(len(m.nodes)-m.freeCnt) > n {
		m.gcPending = true
		m.budgetHit = true
	}
}

// keep records r in the recent-results root ring and returns it. Every
// public operation funnels its result through keep, which is what makes
// short operation chains safe without explicit rooting.
func (m *Manager) keep(r Node) Node {
	m.recent[m.recentPos&(recentRing-1)] = r
	m.recentPos++
	return r
}

// safe is the collection and reordering safe point at the entry of every
// public operation. The operands are temporarily rooted so the operation
// about to run cannot lose them; unused operand positions are passed as
// terminals. A pending sifting pass subsumes a pending collection (it
// collects at both session boundaries). After a budget-triggered collection
// that still leaves the manager over budget, safe panics with *BudgetError.
func (m *Manager) safe(f, g, h Node) {
	if !m.gcPending && !m.reorderPending {
		return
	}
	m.tmpRoots = [3]Node{f, g, h}
	if m.reorderPending {
		m.reorderPending = false
		m.reorderNow()
	} else {
		m.collect()
	}
	m.tmpRoots = [3]Node{False, False, False}
	if m.budgetHit {
		m.budgetHit = false
		if live := len(m.nodes) - m.freeCnt; m.nodeBudget > 0 && int64(live) > m.nodeBudget {
			panic(&BudgetError{Live: live, Budget: int(m.nodeBudget)})
		}
	}
}

// GC forces a mark-and-sweep collection now. Unrooted nodes are freed into
// a reuse list, the unique table is rebuilt over the survivors, and all
// operation caches (and the sat memo) are flushed — they key on raw node
// indices, which may alias new functions once slots are reused.
func (m *Manager) GC() {
	m.collect()
}

// collect is the collector: mark from the root set, sweep dead slots onto
// the free list, rebuild the unique table, flush caches, update counters.
//
// The sweep walks the table from the top down so the free list ends ordered
// by ascending index: allocation after a collection reuses the densest
// (lowest) slots first, keeping node indices — and therefore every
// downstream computation — deterministic for a fixed operation sequence.
func (m *Manager) collect() {
	// Mark phase: bitset over the node table, iterative DAG traversal.
	words := (len(m.nodes) + 63) / 64
	if cap(m.markBuf) < words {
		m.markBuf = make([]uint64, words)
	}
	m.markBuf = m.markBuf[:words]
	for i := range m.markBuf {
		m.markBuf[i] = 0
	}
	m.markBuf[0] = 3 // terminals

	stack := m.markStack[:0]
	push := func(n Node) {
		if n <= True {
			return
		}
		w, b := n>>6, uint(n)&63
		if m.markBuf[w]&(1<<b) == 0 {
			m.markBuf[w] |= 1 << b
			stack = append(stack, n)
		}
	}
	for n := range m.refs {
		push(n)
	}
	for _, n := range m.recent {
		push(n)
	}
	for _, n := range m.tmpRoots {
		push(n)
	}
	// Worker views of a shared session root nodes in the primary's table;
	// their root sets join the mark phase so view-held results survive
	// barrier maintenance.
	for _, v := range m.sharedViews {
		for n := range v.refs {
			push(n)
		}
		for _, n := range v.recent {
			push(n)
		}
		for _, n := range v.tmpRoots {
			push(n)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := &m.nodes[n]
		push(nd.low)
		push(nd.high)
	}
	m.markStack = stack[:0]

	// Sweep phase: rebuild the free list top-down (see above), counting only
	// newly freed slots; previously free slots re-enter the list unchanged.
	freed := 0
	m.freeHead = 0
	m.freeCnt = 0
	for i := len(m.nodes) - 1; i >= 2; i-- {
		if m.markBuf[i>>6]&(1<<(uint(i)&63)) != 0 {
			continue
		}
		if m.nodes[i].level != freeLevel {
			freed++
		}
		m.nodes[i] = node{level: freeLevel, low: m.freeHead}
		m.freeHead = Node(i)
		m.freeCnt++
	}

	if freed > 0 {
		// Rebuild the unique table in place over the survivors. (When the
		// sweep freed nothing, every table entry and cache line still refers
		// to a live node, so both rebuild and flush can be skipped — the
		// common case under frequent automatic collections.)
		for i := range m.unique {
			m.unique[i] = 0
		}
		for i := 2; i < len(m.nodes); i++ {
			n := &m.nodes[i]
			if n.level == freeLevel {
				continue
			}
			h := hash3(uint64(n.level), uint64(n.low), uint64(n.high)) & m.uniqueMask
			for m.unique[h] != 0 {
				h = (h + 1) & m.uniqueMask
			}
			m.unique[h] = Node(i)
		}

		// The op caches and sat memo hold raw indices into slots that may now
		// be reused for different functions; flushing them is a soundness
		// requirement, not an optimization.
		m.FlushCaches()
	}

	m.stats.GCRuns++
	m.stats.NodesFreed += int64(freed)
	m.allocSince = 0
	m.gcPending = false
}
