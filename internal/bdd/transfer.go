package bdd

// This file implements compact DAG serialization, the transfer format that
// lets predicates migrate between Managers. A multi-core synthesis exports a
// predicate from the owning manager, imports it into a worker's private
// manager, computes there, and ships the result back the same way — Managers
// stay single-threaded while the workload fans out.
//
// Format (all integers unsigned LEB128 varints):
//
//	magic byte 0xBD, version byte 0x01
//	numVars   — variable count the DAG was exported under
//	count     — number of non-terminal nodes
//	count × (level, low, high) node records in bottom-up DFS order
//	root      — reference to the exported function
//
// A node reference is 0 for False, 1 for True, and k+2 for the k-th record.
// Records appear in deterministic depth-first post-order (low before high
// before the node itself), so each record only references earlier ones and
// import is a single pass of mk() calls. Because an ROBDD is canonical, the
// byte encoding of a function is identical no matter which manager it is
// exported from: two managers over the same variable order always produce
// byte-identical buffers for semantically equal predicates.

import (
	"encoding/binary"
	"fmt"
)

const (
	transferMagic   = 0xBD
	transferVersion = 0x01
)

// Export serializes the DAG rooted at f into the transfer format. The buffer
// depends only on the function and the variable order, not on the manager's
// node numbering.
func (m *Manager) Export(f Node) []byte {
	m.CheckNode(f)
	// Collect the DAG bottom-up. ref[n] is the reference assigned to node n.
	ref := make(map[Node]uint64, 64)
	var order []Node
	var walk func(Node)
	walk = func(g Node) {
		if g <= True {
			return
		}
		if _, ok := ref[g]; ok {
			return
		}
		n := m.nodes[g]
		walk(n.low)
		walk(n.high)
		ref[g] = uint64(len(order)) + 2
		order = append(order, g)
	}
	walk(f)

	buf := make([]byte, 0, 4+10*len(order))
	buf = append(buf, transferMagic, transferVersion)
	buf = binary.AppendUvarint(buf, uint64(m.numVars))
	buf = binary.AppendUvarint(buf, uint64(len(order)))
	deref := func(g Node) uint64 {
		if g <= True {
			return uint64(g)
		}
		return ref[g]
	}
	for _, g := range order {
		n := m.nodes[g]
		buf = binary.AppendUvarint(buf, uint64(n.level))
		buf = binary.AppendUvarint(buf, deref(n.low))
		buf = binary.AppendUvarint(buf, deref(n.high))
	}
	buf = binary.AppendUvarint(buf, deref(f))
	return buf
}

// Import deserializes a buffer produced by Export into m and returns the
// root. The manager must have at least as many variables as the exporting
// manager, allocated in the same order; hash-consing makes re-importing an
// already-present function free of new allocations. Import panics on a
// malformed buffer or a variable-count mismatch — both are programming
// errors in the transfer plumbing, not recoverable conditions.
func Import(m *Manager, buf []byte) Node {
	// Safe point up front; the import loop itself only calls mk, which never
	// collects, so the partially built record list cannot be swept from
	// under the loop.
	m.safe(False, False, False)
	read := func() uint64 {
		v, n := binary.Uvarint(buf)
		if n <= 0 {
			panic("bdd: Import: truncated buffer")
		}
		buf = buf[n:]
		return v
	}
	if len(buf) < 2 || buf[0] != transferMagic || buf[1] != transferVersion {
		panic("bdd: Import: bad magic or version")
	}
	buf = buf[2:]
	nv := read()
	if int(nv) > m.numVars {
		panic(fmt.Sprintf("bdd: Import: buffer uses %d variables, manager has %d", nv, m.numVars))
	}
	count := read()
	nodes := make([]Node, 2, count+2)
	nodes[False], nodes[True] = False, True
	deref := func(r uint64) Node {
		if r >= uint64(len(nodes)) {
			panic("bdd: Import: forward or out-of-range node reference")
		}
		return nodes[r]
	}
	for i := uint64(0); i < count; i++ {
		level := read()
		if level >= nv {
			panic("bdd: Import: node level out of range")
		}
		low := deref(read())
		high := deref(read())
		if low == high {
			panic("bdd: Import: non-reduced node record")
		}
		nodes = append(nodes, m.mk(int32(level), low, high))
	}
	return m.keep(deref(read()))
}
