package bdd

// This file implements compact DAG serialization, the transfer format that
// lets predicates migrate between Managers. A multi-core synthesis exports a
// predicate from the owning manager, imports it into a worker's private
// manager, computes there, and ships the result back the same way — Managers
// stay single-threaded while the workload fans out.
//
// Format (all integers unsigned LEB128 varints):
//
//	magic byte 0xBD, version byte 0x02
//	numVars   — variable count the DAG was exported under
//	orderFlag — 0: the sender's order is the identity; 1: explicit order
//	[order]   — with orderFlag 1: numVars varints, the variable id at each
//	            level of the sender's order
//	count     — number of non-terminal nodes
//	count × (level, low, high) node records in bottom-up DFS order, with
//	            levels in the sender's order
//	root      — reference to the exported function
//
// A node reference is 0 for False, 1 for True, and k+2 for the k-th record.
// Records appear in deterministic depth-first post-order (low before high
// before the node itself), so each record only references earlier ones and
// import is a single pass. Because an ROBDD is canonical, the byte encoding
// of a function is identical no matter which manager it is exported from:
// two managers over the same variables in the same order always produce
// byte-identical buffers for semantically equal predicates.
//
// With dynamic reordering the sender's and receiver's orders can differ.
// The order section pins down what the record levels mean; Import takes a
// fast structural path when the receiver's order matches and otherwise
// rebuilds the function over the receiver's order with ITE — same function,
// different shape. Version 0x01 buffers (no order section, identity order
// implied) remain readable.

import (
	"encoding/binary"
	"fmt"
	"sort"
)

const (
	transferMagic     = 0xBD
	transferVersion   = 0x02
	transferVersionV1 = 0x01
	// transferVersionV3 extends v2 with a weighted-terminal section for ADDs
	// (see add.go): after the order section, termCount followed by termCount
	// signed varint values; node references become 0 (False), 1 (True), 2+i
	// for the i-th terminal (ascending by value), then termCount+2+k for the
	// k-th record. Export emits v3 only when the DAG actually contains
	// weighted terminals, so pure-BDD buffers stay byte-identical to v2.
	transferVersionV3 = 0x03
)

// Export serializes the DAG rooted at f into the transfer format. The buffer
// depends only on the function and the variable order, not on the manager's
// node numbering.
func (m *Manager) Export(f Node) []byte {
	m.CheckNode(f)
	// Collect the DAG bottom-up. ref[n] is the reference assigned to node n;
	// weighted ADD terminals (self-loop records at terminalLevel) go to a
	// separate section and must not be walked into — their self-loops would
	// recurse forever.
	ref := make(map[Node]uint64, 64)
	var order []Node
	var terms []Node
	var walk func(Node)
	walk = func(g Node) {
		if g <= True {
			return
		}
		if _, ok := ref[g]; ok {
			return
		}
		n := m.nodes[g]
		if n.level == terminalLevel {
			ref[g] = 0 // placeholder; assigned after terminals are sorted
			terms = append(terms, g)
			return
		}
		walk(n.low)
		walk(n.high)
		ref[g] = uint64(len(order)) + 2
		order = append(order, g)
	}
	walk(f)
	version := byte(transferVersion)
	if len(terms) > 0 {
		version = transferVersionV3
		// Terminal references are canonical in the values, not the slots, so
		// two managers export the same weighted function byte-identically.
		sort.Slice(terms, func(i, j int) bool {
			return m.addVal[terms[i]] < m.addVal[terms[j]]
		})
		for i, t := range terms {
			ref[t] = uint64(i) + 2
		}
		for i, g := range order {
			ref[g] = uint64(len(terms)) + uint64(i) + 2
		}
	}

	buf := make([]byte, 0, 8+10*len(order))
	buf = append(buf, transferMagic, version)
	buf = binary.AppendUvarint(buf, uint64(m.numVars))
	if m.orderIsIdentity() {
		buf = append(buf, 0)
	} else {
		buf = append(buf, 1)
		for _, v := range m.level2var {
			buf = binary.AppendUvarint(buf, uint64(v))
		}
	}
	if version == transferVersionV3 {
		buf = binary.AppendUvarint(buf, uint64(len(terms)))
		for _, t := range terms {
			buf = binary.AppendVarint(buf, m.addVal[t])
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(order)))
	deref := func(g Node) uint64 {
		if g <= True {
			return uint64(g)
		}
		return ref[g]
	}
	for _, g := range order {
		n := m.nodes[g]
		buf = binary.AppendUvarint(buf, uint64(n.level))
		buf = binary.AppendUvarint(buf, deref(n.low))
		buf = binary.AppendUvarint(buf, deref(n.high))
	}
	buf = binary.AppendUvarint(buf, deref(f))
	return buf
}

// Import deserializes a buffer produced by Export into m and returns the
// root. The manager must hold at least the variables of the exporting
// manager, identified by id; when the receiver's order over those variables
// matches the sender's, hash-consing makes re-importing an already-present
// function free of new allocations, and otherwise the function is rebuilt
// over the receiver's order. Import panics on a malformed buffer or a
// variable-count mismatch — both are programming errors in the transfer
// plumbing, not recoverable conditions.
func Import(m *Manager, buf []byte) Node {
	// Safe point up front; the import loop itself only calls mk and iteRec,
	// which never collect, so the partially built record list cannot be
	// swept from under the loop.
	m.safe(False, False, False)
	read := func() uint64 {
		v, n := binary.Uvarint(buf)
		if n <= 0 {
			panic("bdd: Import: truncated buffer")
		}
		buf = buf[n:]
		return v
	}
	if len(buf) < 2 || buf[0] != transferMagic ||
		(buf[1] != transferVersion && buf[1] != transferVersionV1 && buf[1] != transferVersionV3) {
		panic("bdd: Import: bad magic or version")
	}
	version := buf[1]
	buf = buf[2:]
	readSigned := func() int64 {
		v, n := binary.Varint(buf)
		if n <= 0 {
			panic("bdd: Import: truncated buffer")
		}
		buf = buf[n:]
		return v
	}
	nv := read()
	if int(nv) > m.numVars {
		panic(fmt.Sprintf("bdd: Import: buffer uses %d variables, manager has %d", nv, m.numVars))
	}
	// senderVar[l] is the variable id at level l of the sender's order.
	var senderVar []int32
	if version == transferVersion || version == transferVersionV3 {
		if len(buf) < 1 {
			panic("bdd: Import: truncated buffer")
		}
		flag := buf[0]
		buf = buf[1:]
		if flag != 0 {
			senderVar = make([]int32, nv)
			seen := make([]bool, nv)
			for l := range senderVar {
				v := read()
				if v >= nv || seen[v] {
					panic("bdd: Import: malformed order section")
				}
				seen[v] = true
				senderVar[l] = int32(v)
			}
		}
	}
	// The fast path replays the records with mk: valid iff every sender
	// level means the same variable at the same position on the receiver.
	structural := true
	for l := 0; l < int(nv); l++ {
		sv := int32(l)
		if senderVar != nil {
			sv = senderVar[l]
		}
		if m.level2var[l] != sv {
			structural = false
			break
		}
	}
	nodes := []Node{False, True}
	if version == transferVersionV3 {
		termCount := read()
		for i := uint64(0); i < termCount; i++ {
			nodes = append(nodes, m.addConst(readSigned()))
		}
	}
	count := read()
	deref := func(r uint64) Node {
		if r >= uint64(len(nodes)) {
			panic("bdd: Import: forward or out-of-range node reference")
		}
		return nodes[r]
	}
	for i := uint64(0); i < count; i++ {
		level := read()
		if level >= nv {
			panic("bdd: Import: node level out of range")
		}
		low := deref(read())
		high := deref(read())
		if low == high {
			panic("bdd: Import: non-reduced node record")
		}
		if structural {
			nodes = append(nodes, m.mk(int32(level), low, high))
			continue
		}
		// Order mismatch: rebuild over the receiver's order. The record's
		// level names a sender position; translate to the variable id and
		// then to the receiver's position for that variable.
		sv := int32(level)
		if senderVar != nil {
			sv = senderVar[level]
		}
		rl := m.var2level[sv]
		nodes = append(nodes, m.iteRec(m.mkVar(rl), high, low))
	}
	return m.keep(deref(read()))
}
