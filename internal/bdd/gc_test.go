package bdd

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestGCReclaimsGarbage checks that unrooted nodes are swept, rooted nodes
// survive, and the counters move.
func TestGCReclaimsGarbage(t *testing.T) {
	m := New()
	m.NewVars(8)

	// Build a sizeable rooted function and a pile of garbage.
	f := True
	for i := 0; i < 8; i += 2 {
		f = m.And(f, m.Or(m.Var(i), m.Var(i+1)))
	}
	m.Ref(f)
	for i := 0; i < 200; i++ {
		g := m.Xor(m.Var(i%8), m.Var((i+3)%8))
		m.Or(g, m.Var((i+5)%8))
	}

	before := m.Size()
	runs0 := m.Stats().GCRuns // stress mode may have collected already
	m.GC()
	after := m.Size()
	st := m.Stats()
	if st.GCRuns != runs0+1 {
		t.Fatalf("GCRuns = %d, want %d", st.GCRuns, runs0+1)
	}
	if st.NodesFreed == 0 || after >= before {
		t.Fatalf("GC freed nothing: size %d -> %d, freed %d", before, after, st.NodesFreed)
	}
	// The rooted function must still denote the same set.
	want := 0
	for a := 0; a < 256; a++ {
		asg := assignment(a, 8)
		ok := true
		for i := 0; i < 8; i += 2 {
			if !asg[i] && !asg[i+1] {
				ok = false
			}
		}
		if ok {
			want++
		}
		if m.Eval(f, asg) != ok {
			t.Fatalf("rooted function corrupted at assignment %d", a)
		}
	}
	if got := m.SatCount(f); got != float64(want) {
		t.Fatalf("SatCount after GC = %g, want %d", got, want)
	}
	m.Deref(f)
}

func assignment(bits, n int) []bool {
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		out[i] = bits&(1<<i) != 0
	}
	return out
}

// TestGCNodeReuse checks that slots freed by a collection are actually
// reused by subsequent allocations (the table does not just keep growing).
func TestGCNodeReuse(t *testing.T) {
	m := New()
	m.NewVars(12)
	minterm := func(i int) {
		f := True
		for j := 0; j < 12; j++ {
			if i&(1<<j) != 0 {
				f = m.And(f, m.Var(j))
			} else {
				f = m.And(f, m.NVar(j))
			}
		}
	}
	// Enough distinct garbage to rotate well past the recent-results ring.
	for i := 0; i < 512; i++ {
		minterm(i)
	}
	grown := len(m.nodes)
	m.GC()
	if m.freeCnt == 0 {
		t.Fatal("expected free slots after GC")
	}
	// Rebuild similar garbage; the backing array should not grow.
	for i := 0; i < 128; i++ {
		minterm(i)
	}
	if len(m.nodes) > grown {
		t.Fatalf("node table grew from %d to %d despite free list", grown, len(m.nodes))
	}
}

// TestGCPropertyTwinManager is the GC correctness property test: it
// interleaves random formula construction, rooting/unrooting, and forced
// collections on one manager while mirroring the same operations on a
// GC-free twin, then compares full truth tables of every live pair.
func TestGCPropertyTwinManager(t *testing.T) {
	const nvars = 6
	rng := rand.New(rand.NewSource(42))

	for round := 0; round < 20; round++ {
		a := NewSized(10) // manager under test: forced GC
		b := NewSized(10) // twin: never collects
		a.SetGCThreshold(0)
		b.SetGCThreshold(0)
		a.NewVars(nvars)
		b.NewVars(nvars)

		type pair struct{ a, b Node }
		live := []pair{}
		for i := 0; i < nvars; i++ {
			live = append(live, pair{a.Ref(a.Var(i)), b.Var(i)})
		}

		pick := func() pair { return live[rng.Intn(len(live))] }
		for step := 0; step < 300; step++ {
			switch op := rng.Intn(10); {
			case op < 3: // binary op
				x, y := pick(), pick()
				var ra, rb Node
				switch rng.Intn(3) {
				case 0:
					ra, rb = a.And(x.a, y.a), b.And(x.b, y.b)
				case 1:
					ra, rb = a.Or(x.a, y.a), b.Or(x.b, y.b)
				default:
					ra, rb = a.Xor(x.a, y.a), b.Xor(x.b, y.b)
				}
				live = append(live, pair{a.Ref(ra), rb})
			case op < 4: // negation
				x := pick()
				live = append(live, pair{a.Ref(a.Not(x.a)), b.Not(x.b)})
			case op < 5: // ITE
				x, y, z := pick(), pick(), pick()
				live = append(live, pair{a.Ref(a.ITE(x.a, y.a, z.a)), b.ITE(x.b, y.b, z.b)})
			case op < 6: // quantification over a random cube
				levels := []int{rng.Intn(nvars), rng.Intn(nvars)}
				x := pick()
				ca, cb := a.Cube(levels), b.Cube(levels)
				if rng.Intn(2) == 0 {
					live = append(live, pair{a.Ref(a.Exists(x.a, ca)), b.Exists(x.b, cb)})
				} else {
					live = append(live, pair{a.Ref(a.Forall(x.a, ca)), b.Forall(x.b, cb)})
				}
			case op < 8: // unroot a random pair (keep the variables alive)
				if len(live) > nvars {
					i := nvars + rng.Intn(len(live)-nvars)
					a.Deref(live[i].a)
					live = append(live[:i], live[i+1:]...)
				}
			default: // forced collection on the manager under test
				a.GC()
			}
		}
		a.GC()

		// Every surviving pair must denote the same function.
		for i, p := range live {
			for bits := 0; bits < 1<<nvars; bits++ {
				asg := assignment(bits, nvars)
				if a.Eval(p.a, asg) != b.Eval(p.b, asg) {
					t.Fatalf("round %d: pair %d diverges at assignment %06b", round, i, bits)
				}
			}
			if a.SatCount(p.a) != b.SatCount(p.b) {
				t.Fatalf("round %d: pair %d SatCount diverges", round, i)
			}
		}
	}
}

// TestGCDeterministicExports runs the same operation sequence with
// aggressive automatic GC and with GC disabled and checks that the exported
// (canonical) encodings of the results are byte-identical: collections must
// not influence any function the computation produces.
func TestGCDeterministicExports(t *testing.T) {
	build := func(threshold int64) [][]byte {
		m := NewSized(10)
		m.SetGCThreshold(threshold)
		m.NewVars(10)
		acc := m.NewRooted(True)
		var outs [][]byte
		for i := 0; i < 10; i++ {
			clause := m.Or(m.Var(i), m.NVar((i+3)%10))
			acc.Set(m.And(acc.Node(), clause))
			step := m.Xor(acc.Node(), m.Var((i+5)%10))
			outs = append(outs, m.Export(m.ITE(step, acc.Node(), m.Not(step))))
		}
		outs = append(outs, m.Export(acc.Node()))
		return outs
	}
	noGC := build(0)
	withGC := build(8) // collect every 8 allocations
	if len(noGC) != len(withGC) {
		t.Fatal("length mismatch")
	}
	for i := range noGC {
		if !bytes.Equal(noGC[i], withGC[i]) {
			t.Fatalf("export %d differs between GC-off and aggressive GC", i)
		}
	}
}

// TestNodeBudget checks that exceeding the budget surfaces as a *BudgetError
// panic at a safe point, and that a budget that GC can satisfy does not trip.
func TestNodeBudget(t *testing.T) {
	m := NewSized(10)
	m.SetGCThreshold(0)
	m.NewVars(16)
	m.SetNodeBudget(64)

	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				if be, ok := r.(*BudgetError); ok {
					err = be
					return
				}
				panic(r)
			}
		}()
		f := True
		for i := 0; i < 16; i++ {
			f = m.Ref(m.Xor(f, m.Var(i)))
		}
		return nil
	}()
	var be *BudgetError
	if err == nil {
		t.Fatal("expected BudgetError, got nil")
	}
	if !errorsAs(err, &be) {
		t.Fatalf("expected *BudgetError, got %v", err)
	}
	if be.Budget != 64 || be.Live <= 64 {
		t.Fatalf("implausible BudgetError: %+v", be)
	}

	// A generous budget over collectable garbage must not trip: the safe
	// point collects and continues.
	m2 := NewSized(10)
	m2.SetGCThreshold(0)
	m2.NewVars(12)
	m2.SetNodeBudget(8192)
	for i := 0; i < 1<<12; i++ {
		f := True // distinct unrooted minterm per iteration
		for j := 0; j < 12; j++ {
			if i&(1<<j) != 0 {
				f = m2.And(f, m2.Var(j))
			} else {
				f = m2.And(f, m2.NVar(j))
			}
		}
	}
	if m2.Stats().GCRuns == 0 {
		t.Fatal("budget pressure never triggered a collection")
	}
}

func errorsAs(err error, target **BudgetError) bool {
	be, ok := err.(*BudgetError)
	if ok {
		*target = be
	}
	return ok
}

// TestRootedAndScope exercises the handle helpers.
func TestRootedAndScope(t *testing.T) {
	m := New()
	m.NewVars(4)

	sc := m.Protect()
	kept := sc.Keep(m.And(m.Var(0), m.Var(1)))
	slot := sc.Slot(m.Var(2))
	slot.Set(m.Or(slot.Node(), m.Var(3)))
	m.GC()
	if m.Eval(kept, []bool{true, true, false, false}) != true {
		t.Fatal("kept node corrupted")
	}
	if m.Eval(slot.Node(), []bool{false, false, false, true}) != true {
		t.Fatal("slot node corrupted")
	}
	sc.Release()
	sc.Release() // idempotent

	r := m.NewRooted(m.And(m.Var(0), m.Var(3)))
	m.GC()
	if m.Eval(r.Node(), []bool{true, false, false, true}) != true {
		t.Fatal("rooted node corrupted")
	}
	r.Release()
	r.Release() // idempotent

	// Unbalanced Deref must panic loudly.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic on unbalanced Deref")
			}
		}()
		m.Deref(m.And(m.Var(0), m.Var(1)))
	}()
}

// TestFlushCachesIndependent checks that FlushCaches is usable on its own
// and does not disturb node storage or results.
func TestFlushCachesIndependent(t *testing.T) {
	m := New()
	m.NewVars(6)
	f := m.And(m.Or(m.Var(0), m.Var(1)), m.Xor(m.Var(2), m.Var(5)))
	n := m.Size()
	m.FlushCaches()
	if m.Size() != n {
		t.Fatal("FlushCaches changed node storage")
	}
	g := m.And(m.Or(m.Var(0), m.Var(1)), m.Xor(m.Var(2), m.Var(5)))
	if f != g {
		t.Fatal("rebuild after FlushCaches produced a different node")
	}
}

// TestStaleNodePanics checks that CheckNode detects a node that was swept.
func TestStaleNodePanics(t *testing.T) {
	m := New()
	m.NewVars(4)
	f := m.And(m.Var(0), m.Var(1))
	g := m.Xor(f, m.Var(2))
	_ = g
	// Overwrite the ring so f has no root left, then collect.
	for i := 0; i < recentRing+8; i++ {
		m.Or(m.Var(3), m.NVar(3))
	}
	m.GC()
	defer func() {
		if recover() == nil {
			t.Fatal("expected CheckNode to panic on a collected node")
		}
	}()
	m.CheckNode(f)
}

// TestSatMemoBounded checks the sat memo cannot grow past its limit by more
// than one walk's worth of entries.
func TestSatMemoBounded(t *testing.T) {
	m := New()
	m.NewVars(20)
	for i := 0; i < 64; i++ {
		f := m.Var(i % 20)
		for j := 0; j < 19; j++ {
			f = m.Xor(f, m.Var((i+j)%20))
		}
		m.SatCount(f)
	}
	if len(m.sat) > satMemoLimit {
		t.Fatalf("sat memo exceeded bound: %d entries", len(m.sat))
	}
}
