package bdd

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// sharedFormula builds a deterministic formula over vars, different per seed.
// It exercises ands/ors/xors/negations, so concurrent builders collide on
// shared subterms.
func sharedFormula(m *Manager, vars []Node, seed int) Node {
	f := vars[seed%len(vars)]
	for i := 0; i < 3*len(vars); i++ {
		v := vars[(seed+i)%len(vars)]
		w := vars[(seed+2*i+1)%len(vars)]
		switch (seed + i) % 4 {
		case 0:
			f = m.And(f, m.Or(v, w))
		case 1:
			f = m.Or(f, m.And(v, m.Not(w)))
		case 2:
			f = m.Xor(f, m.And(v, w))
		case 3:
			f = m.ITE(v, f, m.Or(f, w))
		}
	}
	return f
}

// TestSharedCanonical runs the same formulas serially on the primary and
// concurrently on shared views, and checks that every result is the SAME
// node: in one hash-consed table, function identity is index identity.
func TestSharedCanonical(t *testing.T) {
	const tasks = 64
	m := New()
	defer func() { _ = m }()
	vars := m.NewVars(10)
	for _, x := range vars {
		m.Ref(x) // vars are held across GCs; the ring alone cannot root them
	}

	want := make([]Node, tasks)
	sc := m.Protect()
	defer sc.Release()
	for i := range want {
		want[i] = sc.Keep(sharedFormula(m, vars, i))
	}

	s := NewShared(m, 4, 12)
	defer s.Close()
	got := make([]Node, tasks)
	s.Begin()
	err := RunSteal(context.Background(), s.Workers(), tasks, func(w, task int) error {
		v := s.View(w)
		got[task] = v.Ref(sharedFormula(v, vars, task))
		return nil
	})
	s.End()
	if err != nil {
		t.Fatalf("RunSteal: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("task %d: shared node %d != serial node %d", i, got[i], want[i])
		}
	}
	for w := 0; w < s.Workers(); w++ {
		v := s.View(w)
		for n := range v.refs {
			delete(v.refs, n)
		}
	}
}

// TestSharedContention hammers the unique table: every worker builds the
// SAME formulas (maximal publish races), and all copies must come out as
// identical nodes. Run with -race; REPRO_GC_STRESS exercises the barrier GC
// between rounds.
func TestSharedContention(t *testing.T) {
	const workers, rounds, perRound = 8, 4, 24
	m := New()
	vars := m.NewVars(12)
	for _, x := range vars {
		m.Ref(x) // vars are held across GCs; the ring alone cannot root them
	}
	s := NewShared(m, workers, 10)
	defer s.Close()

	for r := 0; r < rounds; r++ {
		got := make([][]Node, workers)
		s.Begin()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				v := s.View(w)
				for i := 0; i < perRound; i++ {
					got[w] = append(got[w], v.Ref(sharedFormula(v, vars, r*perRound+i)))
				}
			}(w)
		}
		wg.Wait()
		s.End()
		for w := 1; w < workers; w++ {
			for i := range got[0] {
				if got[w][i] != got[0][i] {
					t.Fatalf("round %d formula %d: worker %d got node %d, worker 0 got %d",
						r, i, w, got[w][i], got[0][i])
				}
			}
		}
		for w := 0; w < workers; w++ {
			v := s.View(w)
			for _, n := range got[w] {
				v.Deref(n)
			}
		}
		// Barrier housekeeping between rounds: the primary may collect and
		// reorder freely; the next Begin must resync the views.
		m.GC()
	}
}

// TestSharedBarrierGC checks that nodes rooted only in a worker view survive
// primary collections and sifting passes at the barrier, and that unrooted
// region garbage is actually reclaimed.
func TestSharedBarrierGC(t *testing.T) {
	m := New()
	vars := m.NewVars(8)
	for _, x := range vars {
		m.Ref(x) // vars are held across GCs; the ring alone cannot root them
	}
	s := NewShared(m, 2, 10)
	defer s.Close()

	var kept []Node
	s.Begin()
	err := RunSteal(context.Background(), 2, 8, func(w, task int) error {
		v := s.View(w)
		f := sharedFormula(v, vars, task)
		if task%2 == 0 {
			v.Ref(f) // half the results stay rooted only in the views
		}
		return nil
	})
	s.End()
	if err != nil {
		t.Fatalf("RunSteal: %v", err)
	}
	for w := 0; w < 2; w++ {
		for n := range s.View(w).refs {
			kept = append(kept, n)
		}
	}
	if len(kept) == 0 {
		t.Fatal("no view-rooted results")
	}

	before := m.Size()
	m.GC()
	m.Reorder()
	m.GC()
	if m.Size() >= before {
		t.Fatalf("barrier GC reclaimed nothing: size %d -> %d", before, m.Size())
	}
	for _, n := range kept {
		m.CheckNode(n) // panics if a view-rooted node was swept
	}

	// Dropping the view roots releases the nodes at the next collection.
	for w := 0; w < 2; w++ {
		v := s.View(w)
		for n := range v.refs {
			for v.refs[n] > 0 {
				v.Deref(n)
			}
		}
	}
	m.FlushCaches() // recent rings of the views still pin; primary ring too
}

// TestSharedTableFull forces region exhaustion and checks the abort/grow/
// retry protocol: RunSteal surfaces ErrSharedTableFull, Bump doubles the
// capacity, and the rerun succeeds with canonical results.
func TestSharedTableFull(t *testing.T) {
	m := NewSized(10)
	vars := m.NewVars(10)
	for _, x := range vars {
		m.Ref(x) // vars are held across GCs; the ring alone cannot root them
	}
	s := NewShared(m, 2, 10)
	defer s.Close()
	s.minCap = 64 // tiny region capacity: the first round must blow

	want := make([]Node, 8)
	sawFull := false
	for attempt := 0; ; attempt++ {
		if attempt > 20 {
			t.Fatal("region capacity never became sufficient")
		}
		got := make([]Node, len(want))
		s.Begin()
		err := RunSteal(context.Background(), 2, len(want), func(w, task int) error {
			v := s.View(w)
			got[task] = v.Ref(sharedFormula(v, vars, task))
			return nil
		})
		s.End()
		if err == nil {
			copy(want, got)
			break
		}
		if !errors.Is(err, ErrSharedTableFull) {
			t.Fatalf("unexpected error: %v", err)
		}
		sawFull = true
		// Partial results from the aborted round must be un-rooted so the
		// garbage dies at the barrier, then grow and retry.
		for w := 0; w < 2; w++ {
			v := s.View(w)
			for n := range v.refs {
				delete(v.refs, n)
			}
		}
		s.Bump()
	}
	if !sawFull {
		t.Skip("capacity floor did not force exhaustion (thresholds changed?)")
	}
	for i, n := range want {
		if exp := sharedFormula(m, vars, i); n != exp {
			t.Fatalf("task %d: node %d != serial node %d after retry", i, n, exp)
		}
	}
}

// TestSharedExportIdentity checks the determinism contract end to end at
// this layer: the canonical export of a shared-mode result is byte-identical
// to the export of the serial result.
func TestSharedExportIdentity(t *testing.T) {
	serial := New()
	sv := serial.NewVars(10)
	for _, x := range sv {
		serial.Ref(x) // vars are held across GCs; the ring alone cannot root them
	}
	sRes := serial.Protect()
	defer sRes.Release()
	f0 := sRes.Keep(serial.OrN(
		sharedFormula(serial, sv, 3),
		sharedFormula(serial, sv, 17),
		sharedFormula(serial, sv, 29)))
	wantBuf := serial.Export(f0)

	m := New()
	vars := m.NewVars(10)
	for _, x := range vars {
		m.Ref(x) // vars are held across GCs; the ring alone cannot root them
	}
	s := NewShared(m, 3, 10)
	defer s.Close()
	parts := make([]Node, 3)
	seeds := []int{3, 17, 29}
	s.Begin()
	err := RunSteal(context.Background(), 3, 3, func(w, task int) error {
		v := s.View(w)
		parts[task] = v.Ref(sharedFormula(v, vars, seeds[task]))
		return nil
	})
	s.End()
	if err != nil {
		t.Fatalf("RunSteal: %v", err)
	}
	sc := m.Protect()
	defer sc.Release()
	merged := sc.Keep(m.OrN(parts...))
	for w := 0; w < 3; w++ {
		v := s.View(w)
		for n := range v.refs {
			delete(v.refs, n)
		}
	}
	gotBuf := m.Export(merged)
	if string(gotBuf) != string(wantBuf) {
		t.Fatalf("shared-mode export differs from serial export (%d vs %d bytes)", len(gotBuf), len(wantBuf))
	}
}

// TestSharedViewCacheInvalidation makes a view cache an op result, lets the
// primary collect-and-reuse the slot between regions, and checks the next
// region does not serve the stale entry.
func TestSharedViewCacheInvalidation(t *testing.T) {
	m := New()
	vars := m.NewVars(6)
	for _, x := range vars {
		m.Ref(x) // vars are held across GCs; the ring alone cannot root them
	}
	s := NewShared(m, 1, 10)
	defer s.Close()

	// Region 1: the view computes and caches f = x0&x1 .. chain, unrooted.
	s.Begin()
	err := RunSteal(context.Background(), 1, 1, func(w, task int) error {
		v := s.View(w)
		sharedFormula(v, vars, 5)
		return nil
	})
	s.End()
	if err != nil {
		t.Fatal(err)
	}

	// Barrier: primary churns enough to free the region garbage and reuse
	// slots for different functions, bumping the epoch.
	m.FlushCaches()
	m.GC()
	sc := m.Protect()
	for i := 0; i < 40; i++ {
		sc.Keep(sharedFormula(m, vars, 100+i))
	}
	sc.Release()
	m.GC()

	// Region 2: recompute the same formula; a stale cache hit on a reused
	// slot would yield a wrong (or freed) node.
	var got Node
	s.Begin()
	err = RunSteal(context.Background(), 1, 1, func(w, task int) error {
		v := s.View(w)
		got = v.Ref(sharedFormula(v, vars, 5))
		return nil
	})
	s.End()
	if err != nil {
		t.Fatal(err)
	}
	m.CheckNode(got)
	if want := sharedFormula(m, vars, 5); got != want {
		t.Fatalf("stale view cache: got node %d, want %d", got, want)
	}
	s.View(0).Deref(got)
}

// TestSharedBudgetAtBarrier checks that a node budget blown inside a region
// surfaces as *BudgetError from End's safe point, like serial mode.
func TestSharedBudgetAtBarrier(t *testing.T) {
	m := New()
	vars := m.NewVars(12)
	for _, x := range vars {
		m.Ref(x) // vars are held across GCs; the ring alone cannot root them
	}
	m.SetNodeBudget(40) // far below what the formulas need
	s := NewShared(m, 2, 10)
	defer s.Close()

	s.Begin()
	err := RunSteal(context.Background(), 2, 6, func(w, task int) error {
		v := s.View(w)
		v.Ref(sharedFormula(v, vars, task))
		return nil
	})
	if err != nil {
		t.Fatalf("RunSteal: %v", err)
	}
	defer func() {
		r := recover()
		be, ok := r.(*BudgetError)
		if !ok {
			t.Fatalf("End did not panic *BudgetError (got %v)", r)
		}
		if be.Budget != 40 || be.Live <= 40 {
			t.Fatalf("implausible budget error: %v", be)
		}
	}()
	s.End()
	t.Fatal("End returned despite blown budget")
}

// TestRunStealCoverage checks the scheduler itself: every task runs exactly
// once for various worker/task shapes, and errors stop the run.
func TestRunStealCoverage(t *testing.T) {
	for _, shape := range []struct{ workers, tasks int }{
		{1, 1}, {1, 7}, {4, 4}, {4, 17}, {8, 3}, {3, 100},
	} {
		var mu sync.Mutex
		ran := make(map[int]int)
		err := RunSteal(context.Background(), shape.workers, shape.tasks, func(w, task int) error {
			mu.Lock()
			ran[task]++
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("%+v: %v", shape, err)
		}
		if len(ran) != shape.tasks {
			t.Fatalf("%+v: ran %d distinct tasks", shape, len(ran))
		}
		for task, n := range ran {
			if n != 1 {
				t.Fatalf("%+v: task %d ran %d times", shape, task, n)
			}
		}
	}

	wantErr := fmt.Errorf("boom")
	err := RunSteal(context.Background(), 4, 100, func(w, task int) error {
		if task == 13 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("error not surfaced: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := RunSteal(ctx, 4, 100, func(w, task int) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation not surfaced: %v", err)
	}
}
