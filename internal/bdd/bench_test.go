package bdd

import (
	"math/rand"
	"testing"
)

// buildChainRelation builds an interleaved-variable transition relation of
// a token-passing chain with n cells of b bits — a realistic workload for
// the image-computation benchmarks.
func buildChainRelation(m *Manager, n, bits int) (rel Node, curLevels, nextLevels []int) {
	for i := 0; i < n*bits; i++ {
		m.NewVar("")
		m.NewVar("")
	}
	for i := 0; i < n*bits; i++ {
		curLevels = append(curLevels, 2*i)
		nextLevels = append(nextLevels, 2*i+1)
	}
	unchanged := func(cell int) Node {
		out := True
		for b := 0; b < bits; b++ {
			i := cell*bits + b
			out = m.And(out, m.Iff(m.Var(2*i), m.Var(2*i+1)))
		}
		return out
	}
	copyLeft := func(cell int) Node {
		out := True
		for b := 0; b < bits; b++ {
			src := (cell-1)*bits + b
			dst := cell*bits + b
			out = m.And(out, m.Iff(m.Var(2*dst+1), m.Var(2*src)))
		}
		return out
	}
	rel = False
	for cell := 1; cell < n; cell++ {
		action := copyLeft(cell)
		for other := 0; other < n; other++ {
			if other != cell {
				action = m.And(action, unchanged(other))
			}
		}
		rel = m.Or(rel, action)
	}
	return rel, curLevels, nextLevels
}

func BenchmarkAndOrRandom(b *testing.B) {
	m := New()
	const nvars = 24
	m.NewVars(nvars)
	rng := rand.New(rand.NewSource(1))
	fs := make([]Node, 64)
	for i := range fs {
		fs[i] = randomFormula(m, rng, nvars, 8)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := fs[i%len(fs)]
		g := fs[(i*7+3)%len(fs)]
		m.And(f, g)
		m.Or(f, g)
	}
}

func BenchmarkITERandom(b *testing.B) {
	m := New()
	const nvars = 24
	m.NewVars(nvars)
	rng := rand.New(rand.NewSource(2))
	fs := make([]Node, 64)
	for i := range fs {
		fs[i] = randomFormula(m, rng, nvars, 8)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ITE(fs[i%64], fs[(i+11)%64], fs[(i+23)%64])
	}
}

func BenchmarkImageChain(b *testing.B) {
	m := New()
	rel, curLevels, _ := buildChainRelation(m, 12, 2)
	cube := m.Cube(curLevels)
	// A nontrivial state set: cell 0 fixed to 3.
	set := m.And(m.Var(0), m.Var(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.AndExists(set, rel, cube)
	}
}

func BenchmarkReplacePrime(b *testing.B) {
	m := New()
	rel, curLevels, nextLevels := buildChainRelation(m, 10, 2)
	mapping := make([]int, m.NumVars())
	for i := range mapping {
		mapping[i] = i
	}
	for k := range curLevels {
		mapping[curLevels[k]] = nextLevels[k]
		mapping[nextLevels[k]] = curLevels[k]
	}
	p := m.NewPermutation(mapping)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Replace(rel, p)
	}
}

func BenchmarkSatCount(b *testing.B) {
	m := New()
	rel, _, _ := buildChainRelation(m, 12, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ClearCaches()
		m.SatCount(rel)
	}
}

func BenchmarkMkHashConsing(b *testing.B) {
	m := New()
	vars := m.NewVars(20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Rebuild a shared structure; most mk calls hit the unique table.
		f := True
		for _, v := range vars {
			f = m.And(f, v)
		}
	}
}
