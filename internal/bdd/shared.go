package bdd

// This file implements the shared-memory parallel mode: one node table shared
// by all workers, with lock-free CAS insertion into the unique table and
// per-worker (per-view) operation caches, instead of the share-nothing
// Pool/Export/Import migration path.
//
// Structure. A Shared session couples a primary Manager (the owner of the
// node table) with N lightweight views: Manager values whose node-table slice
// headers (nodes, unique table, variable order) are copies of the primary's,
// but whose operation caches, recent-result ring, and root sets are private.
// Because every recursion in apply.go/quant.go reads the table through its
// own Manager receiver, all existing operation code runs unchanged on a view;
// only node creation (mk) takes a different path.
//
// A session alternates between two phases:
//
//   - Parallel region (Begin..End): one goroutine per view runs operations
//     concurrently. New nodes are claimed from per-view allocation chunks
//     (granted in batches from a shared free list and a bump frontier under a
//     mutex) and published by a compare-and-swap into the shared unique
//     table; losers of an equal-key race return their claimed slot to the
//     chunk and adopt the winner's node, so hash-consing stays canonical.
//     The table never grows and no collection or reordering runs inside a
//     region — maintenance is quiesced to the barrier.
//
//   - Barrier (End..Begin): the primary runs alone. End tears the region
//     down (truncates the table to the allocation frontier, rebuilds the
//     lowest-first free list from unconsumed slots) and then runs any
//     deferred maintenance stop-the-world through the ordinary safe-point
//     machinery: mark-and-sweep GC marking from the primary's AND every
//     view's roots, automatic sifting, node-budget enforcement (a blown
//     budget panics *BudgetError exactly as in serial mode). Between regions
//     the primary is a completely ordinary Manager — it may allocate,
//     collect, and reorder freely; the next Begin re-copies the slice
//     headers into the views and flushes their caches if anything
//     invalidating happened.
//
// Memory model. Within a region, a node created by one worker becomes
// visible to another only through the atomic unique-table slot (the CAS
// publish and the atomic probe load form a happens-before edge, which by
// transitivity covers the whole DAG under the published node). Workers never
// write the same node slot: claimed slots are chunk-private until published.
// Everything else a view touches concurrently — the node records, the
// variable-order arrays — is read-only during the region.
//
// Determinism. Node indices in shared mode depend on the goroutine schedule
// (chunk grants interleave), so determinism is NOT index-identity: it is
// function identity. Every operation result is a canonical ROBDD, so the
// merged results on the primary are the same Boolean functions for any
// worker count or schedule, and the canonical Export of any result is
// byte-identical to the serial run's. The engine's differential gates check
// exactly that.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"
)

const (
	// sharedChunk is the number of node slots granted to a view's private
	// allocation chunk at a time: large enough that the grant mutex is cold,
	// small enough that N workers stranding a chunk each wastes little.
	sharedChunk = 1024
	// sharedMinCap is the smallest node capacity a region is created with.
	sharedMinCap = 1 << 16
)

// ErrSharedTableFull reports that a parallel region ran out of its pre-sized
// node capacity mid-round. The round's results are garbage (collected at the
// barrier); the caller grows the session (Shared.Bump) and reruns the round,
// which is sound because rounds are pure functions of their rooted inputs.
var ErrSharedTableFull = errors.New("bdd: shared node table full (grow the session and retry the round)")

// sharedFullPanic is the panic sentinel mkShared raises on exhaustion;
// RunSteal converts it to ErrSharedTableFull.
type sharedFullPanic struct{}

// Shared is a shared-memory parallel session over one primary Manager. See
// the file comment for the phase protocol. Create with NewShared, hand each
// worker goroutine its View, and bracket every parallel region with
// Begin/End. The zero value is not usable.
type Shared struct {
	m     *Manager
	views []*Manager

	minCap    int    // capacity floor for the next region (doubled by Bump)
	lastEpoch uint32 // primary cache epoch the views were last synced to
	active    bool

	// Region allocation state, guarded by mu during a region.
	mu       sync.Mutex
	free     []Node // pre-region free slots, ascending
	freePos  int    // next free slot to grant
	frontier int    // next virgin slot to grant
	capNodes int    // fixed node capacity of the region
	granted  int    // slots handed to chunks this region

	// Cumulative fork/join counters across all Shared.Run calls, folded in
	// single-threaded after each run.
	opSpawns int64
	opSteals int64
}

// OpStats returns the cumulative fork/join counters: opTasks spawned by
// forked apply recursions, and how many of them were executed by a worker
// other than the spawner. Must be called outside a parallel region.
func (s *Shared) OpStats() (spawns, steals int64) { return s.opSpawns, s.opSteals }

// Run executes fn once per task index in [0, tasks) across the session's
// worker views inside the current parallel region — RunSteal with
// op-internal fork/join enabled: while fn(w, task) runs a large And/Or/
// AndExists on view w, the top recursion levels spawn their high branches as
// stealable opTasks, so idle views parallelize a single giant operation
// instead of waiting for the next task. Unlike RunSteal, surplus workers are
// kept (they steal opTasks even when tasks < workers). Must be called
// between Begin and End; exactly one goroutine drives each view.
func (s *Shared) Run(ctx context.Context, tasks int, fn func(worker, task int) error) error {
	if !s.active {
		panic("bdd: Shared.Run outside a parallel region")
	}
	if tasks == 0 {
		return nil
	}
	t := newStealTeam(len(s.views), tasks, s.views, forkLevelFor(s.m.numVars))
	for i, v := range s.views {
		v.team, v.worker = t, i
	}
	err := t.run(ctx, fn)
	for _, v := range s.views {
		v.team, v.worker = nil, 0
	}
	s.opSpawns += atomic.LoadInt64(&t.spawns)
	s.opSteals += atomic.LoadInt64(&t.steals)
	return err
}

// NewShared builds a session with the given number of worker views, each with
// private operation caches of 2^cacheBits entries. The primary must not be
// mid-operation. The session registers the views with the primary's collector
// and reorderer so nodes rooted in a view survive barrier maintenance; Close
// unregisters them.
func NewShared(m *Manager, workers, cacheBits int) *Shared {
	if workers < 1 {
		panic("bdd: NewShared: need at least one worker view")
	}
	if m.sharedViews != nil {
		panic("bdd: NewShared: manager already owns a shared session")
	}
	s := &Shared{m: m, minCap: sharedMinCap, lastEpoch: m.cacheEpoch}
	for i := 0; i < workers; i++ {
		s.views = append(s.views, newView(cacheBits))
	}
	m.sharedViews = s.views
	return s
}

// newView allocates a Manager shell holding only view-private state: caches,
// sat memo, rings, roots. The table headers are copied in at every Begin.
func newView(cacheBits int) *Manager {
	if cacheBits < 10 || cacheBits > 28 {
		panic(fmt.Sprintf("bdd: newView: cacheBits %d out of range [10,28]", cacheBits))
	}
	v := &Manager{
		ite: make([]iteEntry, 1<<cacheBits),
		bin: make([]binEntry, 1<<cacheBits),
		un:  make([]unEntry, 1<<cacheBits),
		rel: make([]relEntry, 1<<cacheBits),
		sat: make(map[Node]float64),
	}
	v.cacheEpoch = 1
	return v
}

// Workers returns the number of worker views.
func (s *Shared) Workers() int { return len(s.views) }

// View returns the i-th worker view. Inside a parallel region exactly one
// goroutine may drive each view; outside a region views must stay idle
// (except for Ref/Deref bookkeeping by the coordinating goroutine).
func (s *Shared) View(i int) *Manager { return s.views[i] }

// Bump doubles the node-capacity floor for the next region. Call after a
// round aborted with ErrSharedTableFull, before rerunning it.
func (s *Shared) Bump() {
	next := 2 * s.capNodes
	if next < 2*s.minCap {
		next = 2 * s.minCap
	}
	s.minCap = next
}

// Close unregisters the views from the primary's maintenance root set. The
// session must not be used afterwards.
func (s *Shared) Close() {
	if s.active {
		panic("bdd: Shared.Close inside a parallel region")
	}
	s.m.sharedViews = nil
	s.views = nil
}

// Begin opens a parallel region: it sizes the table for concurrent
// allocation (node capacity at least twice the live count, unique table at
// least twice the node capacity so probe chains always terminate), converts
// the primary's free list into grantable form, copies the table headers into
// every view, and flushes view caches if the primary collected or reordered
// since the previous region. After Begin returns, the views may run
// concurrently and the primary must stay idle until End.
func (s *Shared) Begin() {
	if s.active {
		panic("bdd: Shared.Begin inside an active region")
	}
	m := s.m
	s.active = true

	// View caches key on raw node indices; any primary flush (collection
	// that freed, sifting pass, explicit FlushCaches) since the last region
	// means those indices may have been rebound.
	if s.lastEpoch != m.cacheEpoch {
		for _, v := range s.views {
			v.FlushCaches()
		}
		s.lastEpoch = m.cacheEpoch
	}

	// Capacity covers twice the live count, but never shrinks below the
	// current table length: free slots between live ones are granted through
	// s.free, and End's truncation to the frontier must not cut live slots.
	live := m.Size()
	c := s.minCap
	for c < 2*live || c < len(m.nodes) {
		c *= 2
	}
	s.capNodes = c
	if uint64(2*c) > uint64(len(m.unique)) {
		m.growUnique(nextPow2(uint64(2 * c)))
	}

	// Free slots become a grantable array; the chain is ascending already
	// (the sweep builds it lowest-first).
	s.free = s.free[:0]
	for idx := m.freeHead; idx != 0; idx = m.nodes[idx].low {
		s.free = append(s.free, idx)
	}
	s.freePos = 0
	s.granted = 0
	m.freeHead = 0
	m.freeCnt = 0

	// Extend node storage to the region capacity, marking every not-yet-real
	// slot as free so a stray access fails loudly instead of aliasing.
	s.frontier = len(m.nodes)
	if cap(m.nodes) < c {
		nn := make([]node, c)
		copy(nn, m.nodes)
		for i := s.frontier; i < c; i++ {
			nn[i] = node{level: freeLevel}
		}
		m.nodes = nn
	} else {
		m.nodes = m.nodes[:c]
		for i := s.frontier; i < c; i++ {
			m.nodes[i] = node{level: freeLevel}
		}
	}

	for _, v := range s.views {
		if v.numVars != m.numVars && len(v.sat) > 0 {
			v.sat = make(map[Node]float64) // sat counts are relative to numVars
		}
		v.nodes = m.nodes
		v.unique = m.unique
		v.uniqueMask = m.uniqueMask
		v.numVars = m.numVars
		v.var2level = m.var2level
		v.level2var = m.level2var
		v.varNames = m.varNames
		v.chunk = v.chunk[:0]
		v.shared = s
	}
}

// End closes the region at a barrier: it reclaims unconsumed chunk slots,
// truncates the table to the allocation frontier, rebuilds the lowest-first
// free list, folds the region's allocation count into the primary's GC and
// reorder triggers, and then runs any deferred maintenance stop-the-world
// via the primary's ordinary safe point — which is where a blown node budget
// panics *BudgetError, exactly as in serial mode. All worker goroutines must
// have finished before End is called.
func (s *Shared) End() {
	if !s.active {
		panic("bdd: Shared.End without an active region")
	}
	m := s.m
	s.active = false

	// Unconsumed chunk slots (and never-granted free slots) form the new
	// free list. Leftovers may hold garbage from lost CAS races; mark them.
	rem := append([]Node(nil), s.free[s.freePos:]...)
	leftover := 0
	for _, v := range s.views {
		v.shared = nil
		rem = append(rem, v.chunk...)
		leftover += len(v.chunk)
		v.chunk = v.chunk[:0]
	}
	sort.Slice(rem, func(i, j int) bool { return rem[i] < rem[j] })

	m.nodes = m.nodes[:s.frontier]
	m.freeHead = 0
	m.freeCnt = 0
	for i := len(rem) - 1; i >= 0; i-- {
		idx := rem[i]
		m.nodes[idx] = node{level: freeLevel, low: m.freeHead}
		m.freeHead = idx
		m.freeCnt++
	}

	consumed := int64(s.granted - leftover)
	m.stats.NodesAllocated += consumed
	m.allocSince += consumed
	m.allocSinceReorder += consumed
	live := int64(m.Size())
	if live > m.stats.PeakLive {
		m.stats.PeakLive = live
	}
	if m.gcThreshold > 0 && m.allocSince >= m.gcThreshold {
		m.gcPending = true
	}
	if m.reorderThreshold > 0 && m.allocSinceReorder >= m.reorderThreshold &&
		int(live) >= m.reorderNextSize {
		m.reorderPending = true
	}
	if m.nodeBudget > 0 && live > m.nodeBudget {
		m.gcPending = true
		m.budgetHit = true
	}
	s.free = s.free[:0]
	s.freePos = 0
	s.granted = 0

	// Stop-the-world barrier maintenance: collection and/or sifting marking
	// from the primary's and every view's roots, budget enforcement after.
	m.safe(False, False, False)
}

// grant refills a view's allocation chunk from the shared free list (lowest
// slots first, keeping the table dense) and then the bump frontier. An empty
// chunk after grant means the region is out of capacity.
func (s *Shared) grant(v *Manager) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := sharedChunk
	for n > 0 && s.freePos < len(s.free) {
		v.chunk = append(v.chunk, s.free[s.freePos])
		s.freePos++
		s.granted++
		n--
	}
	for n > 0 && s.frontier < s.capNodes {
		v.chunk = append(v.chunk, Node(s.frontier))
		s.frontier++
		s.granted++
		n--
	}
}

// sharedClaim pops a private slot from the view's chunk, refilling it from
// the session when empty. Exhaustion aborts the round via the table-full
// sentinel.
func (m *Manager) sharedClaim() Node {
	if len(m.chunk) == 0 {
		m.shared.grant(m)
		if len(m.chunk) == 0 {
			panic(sharedFullPanic{})
		}
	}
	idx := m.chunk[len(m.chunk)-1]
	m.chunk = m.chunk[:len(m.chunk)-1]
	return idx
}

// mkShared is mk inside a parallel region: lock-free CAS insertion into the
// shared unique table. The caller (mk) has already handled low == high.
//
// The probe loads each bucket atomically. An empty bucket is claimed by
// writing the node record into a chunk-private slot first and then
// publishing the slot index with a CAS; on a lost race the same bucket is
// re-examined — if the winner inserted the same triple we adopt its node and
// return our claimed slot to the chunk, otherwise the probe continues. The
// table is pre-sized to at most 50% load, so probes always terminate.
func (m *Manager) mkShared(level int32, low, high Node) Node {
	s := m.shared
	h := hash3(uint64(level), uint64(low), uint64(high)) & m.uniqueMask
	claimed := Node(0)
	for {
		slot := loadNode(&m.unique[h])
		if slot == 0 {
			if claimed == 0 {
				claimed = m.sharedClaim()
				s.m.nodes[claimed] = node{level: level, low: low, high: high}
			}
			if casNode(&m.unique[h], 0, claimed) {
				m.stats.NodesAllocated++
				return claimed
			}
			continue // lost the publish race; re-examine this bucket
		}
		n := &s.m.nodes[slot]
		if n.level == level && n.low == low && n.high == high {
			if claimed != 0 {
				m.chunk = append(m.chunk, claimed)
			}
			m.stats.UniqueHits++
			return slot
		}
		h = (h + 1) & m.uniqueMask
	}
}

// loadNode atomically loads a unique-table bucket. Node is a defined int32,
// so the pointer is reinterpreted for sync/atomic.
func loadNode(p *Node) Node {
	return Node(atomic.LoadInt32((*int32)(unsafe.Pointer(p))))
}

// casNode atomically publishes a unique-table bucket.
func casNode(p *Node, old, new Node) bool {
	return atomic.CompareAndSwapInt32((*int32)(unsafe.Pointer(p)), int32(old), int32(new))
}

// nextPow2 rounds up to a power of two.
func nextPow2(n uint64) uint64 {
	c := uint64(1)
	for c < n {
		c *= 2
	}
	return c
}
