package bdd

// This file implements the work-stealing scheduler for shared-memory parallel
// regions, at two grains:
//
//   - Task grain (RunSteal, Shared.Run): whole operations — partition images,
//     per-process subset checks — dealt into per-worker deques in contiguous
//     blocks. A worker pops its own deque from the back (LIFO, cache-warm)
//     and, when empty, steals from the front of other workers' deques (FIFO,
//     taking the oldest task first), scanning round-robin from its right
//     neighbor. The steal grain is one task: coarse enough that a mutex per
//     deque is invisible next to the BDD work inside.
//
//   - Operation grain (fork/join apply, Shared.Run only): inside a running
//     task, the top recursion levels of And/Or/AndExists spawn their high
//     branch as a stealable opTask on the spawner's own deque, compute the
//     low branch inline, and join before the mk and the cache write. If
//     nobody stole the spawn, the join pops it back (it is necessarily the
//     back item — joins nest LIFO) and runs it inline on the spawner's view,
//     so an uncontended fork costs one deque push/pop. If a thief took it,
//     the thief executes it on the thief's own view (private caches, same
//     shared node table) and publishes the result through the opTask's
//     atomic state word; the spawner spins with Gosched until it lands.
//
// Memory model of the join: the thief's plain writes (node records behind its
// chunk-private claims, the opTask result field) happen before its atomic
// Store of opTaskDone, and the spawner's atomic Load of opTaskDone happens
// before it reads the result — one release/acquire edge. Nodes the thief
// merely adopted from the shared unique table are covered transitively by
// the CAS-publish edge of whoever created them (see shared.go). So every
// node record reachable from the joined result is visible to the spawner
// before it builds on top of it.
//
// Deadlock freedom: only top-level workers steal, a popped opTask is always
// executed to completion (no stop-check between pop and run), and the
// spawner-waits-for-thief relation follows spawn edges, which form a DAG —
// a spin in forkJoin therefore always terminates. If the thief aborts
// (shared table full), it marks the opTask aborted and sets the team-wide
// abort flag; spinners convert either signal back into the table-full panic
// so the whole round unwinds to the retry loop.

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// opTask is one spawned high branch of a forked apply recursion.
type opTask struct {
	op    uint32 // opAnd, opOr, or opAndExists
	f, g  Node
	cube  Node   // quantification cube (opAndExists only)
	res   Node   // written by the executor before publishing state
	state uint32 // atomic: opTaskPending -> opTaskDone | opTaskAborted
}

const (
	opTaskPending uint32 = iota
	opTaskDone
	opTaskAborted
)

// opAndExists tags AndExists opTasks; it lives outside the op-cache code
// space (bdd.go) on purpose — opTask.op is a scheduler discriminant, not a
// cache key.
const opAndExists uint32 = 1 << 30

// stealItem is one deque entry: a top-level task index, or a spawned opTask.
type stealItem struct {
	task int
	op   *opTask // nil for top-level tasks
}

// stealDeque is one worker's queue. A plain mutex suffices: every operation
// is O(1), and the fork throttle keeps queues short.
type stealDeque struct {
	mu    sync.Mutex
	items []stealItem
}

// popBack removes the worker's own next item (LIFO end).
func (d *stealDeque) popBack() (stealItem, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return stealItem{}, false
	}
	it := d.items[len(d.items)-1]
	d.items = d.items[:len(d.items)-1]
	return it, true
}

// popBackIf removes the back item iff it is the given opTask — the join-side
// check for "nobody stole my spawn". Spawns nest strictly (the spawner joins
// in reverse push order), so a spawn still in the deque is always the back
// item.
func (d *stealDeque) popBackIf(ot *opTask) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 || d.items[len(d.items)-1].op != ot {
		return false
	}
	d.items = d.items[:len(d.items)-1]
	return true
}

// popFront removes an item for a thief (FIFO end).
func (d *stealDeque) popFront() (stealItem, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return stealItem{}, false
	}
	it := d.items[0]
	d.items = d.items[1:]
	return it, true
}

// push appends an item at the LIFO end.
func (d *stealDeque) push(it stealItem) {
	d.mu.Lock()
	d.items = append(d.items, it)
	d.mu.Unlock()
}

// length returns the current queue length (throttle input; approximate is
// fine, the lock just makes the read well-defined).
func (d *stealDeque) length() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.items)
}

const (
	// forkThrottle caps the spawner's deque length: once this many items wait
	// unstolen there is no idle worker to feed, so deeper recursions run
	// serially (and uncontended joins stay one push/pop).
	forkThrottle = 8
	// spinIdleRounds is how many empty pop/steal scans an idle worker burns
	// on Gosched before backing off to short sleeps.
	spinIdleRounds = 64
)

// forkLevelFor bounds fork points to the top slice of the variable order:
// high branches near the root are the big, balanced halves worth shipping to
// another worker; deeper splits are too fine to pay a deque round-trip for.
func forkLevelFor(numVars int) int32 {
	l := numVars / 4
	if l < 4 {
		l = 4
	}
	if l > 16 {
		l = 16
	}
	return int32(l)
}

// stealTeam is the shared state of one scheduler run: the deques, the
// outstanding-task count, the abort flag, and the fork/join counters.
// views is nil for plain RunSteal (no fork/join; workers exit as soon as
// every deque is empty) and non-nil for Shared.Run (workers stay to steal
// spawned opTasks until every top-level task has finished).
type stealTeam struct {
	deques    []stealDeque
	views     []*Manager
	forkLevel int32
	remaining int64 // atomic: top-level tasks not yet finished
	abort     uint32
	spawns    int64
	steals    int64
}

func newStealTeam(workers, tasks int, views []*Manager, forkLevel int32) *stealTeam {
	t := &stealTeam{
		deques:    make([]stealDeque, workers),
		views:     views,
		forkLevel: forkLevel,
		remaining: int64(tasks),
	}
	for w := 0; w < workers; w++ {
		lo, hi := w*tasks/workers, (w+1)*tasks/workers
		for i := lo; i < hi; i++ {
			t.deques[w].items = append(t.deques[w].items, stealItem{task: i})
		}
	}
	return t
}

// run drives the worker goroutines. The first error stops the run after
// in-flight tasks finish; context cancellation is reported as ctx.Err().
func (t *stealTeam) run(ctx context.Context, fn func(worker, task int) error) error {
	workers := len(t.deques)
	var (
		stop    = make(chan struct{})
		errOnce sync.Once
		firstEr error
		wg      sync.WaitGroup
	)
	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}
	fail := func(err error) {
		errOnce.Do(func() {
			firstEr = err
			close(stop)
		})
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			idle := 0
			for {
				if stopped() {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				it, ok := t.deques[worker].popBack()
				stolen := false
				if !ok {
					// Own deque drained: steal the oldest item from the first
					// non-empty victim, scanning from the right neighbor.
					for i := 1; i < workers && !ok; i++ {
						it, ok = t.deques[(worker+i)%workers].popFront()
					}
					stolen = ok
				}
				if !ok {
					if t.views == nil || atomic.LoadInt64(&t.remaining) == 0 {
						return // run complete (or, teamless, nothing left to pop)
					}
					// Fork/join mode: running tasks may still spawn stealable
					// work; wait for it politely.
					idle++
					if idle > spinIdleRounds {
						time.Sleep(20 * time.Microsecond)
					} else {
						runtime.Gosched()
					}
					continue
				}
				idle = 0
				if it.op != nil {
					if stolen {
						atomic.AddInt64(&t.steals, 1)
					}
					if err := t.runOpItem(worker, it.op); err != nil {
						fail(err)
						return
					}
					continue
				}
				err := runStealTask(worker, it.task, fn)
				atomic.AddInt64(&t.remaining, -1)
				if err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return firstEr
}

// runOpItem executes a stolen (or orphaned) opTask on this worker's view and
// publishes the result. On a table-full abort it marks the task and the team
// so any spinning joiner unwinds too.
func (t *stealTeam) runOpItem(worker int, ot *opTask) (err error) {
	defer func() {
		if r := recover(); r != nil {
			atomic.StoreUint32(&t.abort, 1)
			atomic.StoreUint32(&ot.state, opTaskAborted)
			if _, ok := r.(sharedFullPanic); ok {
				err = ErrSharedTableFull
				return
			}
			panic(r)
		}
	}()
	ot.res = t.views[worker].runOpTask(ot)
	atomic.StoreUint32(&ot.state, opTaskDone)
	return nil
}

// RunSteal runs fn once per task index in [0, tasks) on `workers` goroutines
// (fn's worker argument identifies the goroutine, e.g. to pick a Shared
// view). The first error stops the run after in-flight tasks finish; context
// cancellation is reported as ctx.Err(). Panics raised by the BDD layer are
// converted to errors at the goroutine boundary — *BudgetError (node budget
// blown) and ErrSharedTableFull (region capacity exhausted, retry after
// Shared.Bump) — so they cannot kill the process; other panics propagate.
//
// RunSteal schedules at task grain only. Shared.Run additionally enables
// op-internal fork/join on the session's views.
func RunSteal(ctx context.Context, workers, tasks int, fn func(worker, task int) error) error {
	if tasks == 0 {
		return nil
	}
	if workers > tasks {
		workers = tasks
	}
	return newStealTeam(workers, tasks, nil, 0).run(ctx, fn)
}

// runStealTask invokes fn for one task, converting the BDD layer's panics
// into errors at the goroutine boundary (see RunSteal).
func runStealTask(worker, task int, fn func(worker, task int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			switch p := r.(type) {
			case *BudgetError:
				err = p
			case sharedFullPanic:
				err = ErrSharedTableFull
			default:
				panic(r)
			}
		}
	}()
	return fn(worker, task)
}

// --- fork/join hooks used by apply.go / quant.go --------------------------

// shouldFork reports whether a recursion at the given level should spawn its
// high branch: only inside a Shared.Run, only in the top slice of the
// variable order, and only while the spawner's deque is short enough that an
// idle worker might actually take it.
func (m *Manager) shouldFork(level int32) bool {
	t := m.team
	return t != nil && level < t.forkLevel && t.deques[m.worker].length() < forkThrottle
}

// forkSpawn pushes the high branch as a stealable opTask on this worker's
// own deque and returns the handle to join on.
func (m *Manager) forkSpawn(op uint32, f, g, cube Node) *opTask {
	ot := &opTask{op: op, f: f, g: g, cube: cube}
	t := m.team
	t.deques[m.worker].push(stealItem{op: ot})
	atomic.AddInt64(&t.spawns, 1)
	return ot
}

// forkJoin resolves a spawned opTask: pop-and-run inline if nobody stole it,
// otherwise spin until the thief publishes (or the round aborts).
func (m *Manager) forkJoin(ot *opTask) Node {
	t := m.team
	if t.deques[m.worker].popBackIf(ot) {
		return m.runOpTask(ot)
	}
	for {
		switch atomic.LoadUint32(&ot.state) {
		case opTaskDone:
			return ot.res
		case opTaskAborted:
			panic(sharedFullPanic{})
		}
		if atomic.LoadUint32(&t.abort) == 1 {
			panic(sharedFullPanic{})
		}
		runtime.Gosched()
	}
}

// runOpTask dispatches an opTask to the private recursion it stands for, on
// the receiver (the executing worker's view — its caches, the shared table).
func (m *Manager) runOpTask(ot *opTask) Node {
	switch ot.op {
	case opAnd:
		return m.andRec(ot.f, ot.g)
	case opOr:
		return m.orRec(ot.f, ot.g)
	default:
		return m.andExistsRec(ot.f, ot.g, ot.cube)
	}
}
