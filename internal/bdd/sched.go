package bdd

// RunSteal is the work-stealing task scheduler for shared-memory parallel
// regions. Where Pool.Map migrates DAGs between private managers, RunSteal
// assumes the workers already share one node space (a Shared session): fn is
// handed only worker and task indices, and results stay in the shared table.
//
// Scheduling: tasks are dealt into per-worker deques in contiguous blocks
// (worker w starts with tasks [w*tasks/n, (w+1)*tasks/n)), preserving the
// locality of partition-ordered work. A worker pops its own deque from the
// back (LIFO, cache-warm) and, when empty, steals from the front of other
// workers' deques (FIFO, taking the oldest — largest remaining — block
// first), scanning round-robin from its right neighbor. The steal grain is
// one task: tasks here are whole partition images or per-process subset
// checks, coarse enough that a mutex per deque is invisible next to the BDD
// work inside.

import (
	"context"
	"sync"
)

// stealDeque is one worker's task queue. A plain mutex suffices: every
// operation is O(1) against queues holding at most a few hundred coarse
// tasks.
type stealDeque struct {
	mu    sync.Mutex
	tasks []int
}

// popBack removes the worker's own next task (LIFO end).
func (d *stealDeque) popBack() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.tasks) == 0 {
		return 0, false
	}
	t := d.tasks[len(d.tasks)-1]
	d.tasks = d.tasks[:len(d.tasks)-1]
	return t, true
}

// popFront removes a task for a thief (FIFO end).
func (d *stealDeque) popFront() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.tasks) == 0 {
		return 0, false
	}
	t := d.tasks[0]
	d.tasks = d.tasks[1:]
	return t, true
}

// RunSteal runs fn once per task index in [0, tasks) on `workers` goroutines
// (fn's worker argument identifies the goroutine, e.g. to pick a Shared
// view). The first error stops the run after in-flight tasks finish; context
// cancellation is reported as ctx.Err(). Panics raised by the BDD layer are
// converted to errors at the goroutine boundary — *BudgetError (node budget
// blown) and ErrSharedTableFull (region capacity exhausted, retry after
// Shared.Bump) — so they cannot kill the process; other panics propagate.
func RunSteal(ctx context.Context, workers, tasks int, fn func(worker, task int) error) error {
	if tasks == 0 {
		return nil
	}
	if workers > tasks {
		workers = tasks
	}
	deques := make([]stealDeque, workers)
	for w := 0; w < workers; w++ {
		lo, hi := w*tasks/workers, (w+1)*tasks/workers
		for t := lo; t < hi; t++ {
			deques[w].tasks = append(deques[w].tasks, t)
		}
	}

	var (
		stop    chan struct{} = make(chan struct{})
		errOnce sync.Once
		firstEr error
		wg      sync.WaitGroup
	)
	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}
	fail := func(err error) {
		errOnce.Do(func() {
			firstEr = err
			close(stop)
		})
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				if stopped() {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				task, ok := deques[worker].popBack()
				if !ok {
					// Own deque drained: steal the oldest task from the first
					// non-empty victim, scanning from the right neighbor.
					for i := 1; i < workers && !ok; i++ {
						task, ok = deques[(worker+i)%workers].popFront()
					}
					if !ok {
						return // all deques empty: run is complete
					}
				}
				if err := runStealTask(worker, task, fn); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return firstEr
}

// runStealTask invokes fn for one task, converting the BDD layer's panics
// into errors at the goroutine boundary (see RunSteal).
func runStealTask(worker, task int, fn func(worker, task int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			switch p := r.(type) {
			case *BudgetError:
				err = p
			case sharedFullPanic:
				err = ErrSharedTableFull
			default:
				panic(r)
			}
		}
	}()
	return fn(worker, task)
}
