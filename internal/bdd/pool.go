package bdd

// A Pool fans symbolic work out across private worker Managers. Managers are
// not safe for concurrent use, so intra-job parallelism works by migration
// rather than sharing: the owning manager Exports the predicates a task
// needs, a worker Imports them into its own manager, computes there, and the
// result travels back as a buffer that the owner Imports in task order.
//
// Determinism: an ROBDD is canonical, so the buffer encoding a function is
// the same no matter which manager produced it, and merging results in task
// order makes the owning manager evolve identically for any worker count or
// goroutine schedule.

import (
	"context"
	"sync"
	"sync/atomic"
)

// Pool is a fixed set of private worker Managers.
type Pool struct {
	workers []*Manager
}

// NewPool wraps the given worker managers (one goroutine will drive each).
// The managers must have been prepared with the same variable order as the
// owning manager, and must not be used outside the pool while a Map call is
// running.
func NewPool(workers []*Manager) *Pool {
	if len(workers) == 0 {
		panic("bdd: NewPool: need at least one worker manager")
	}
	return &Pool{workers: workers}
}

// Workers returns the number of worker managers in the pool.
func (p *Pool) Workers() int { return len(p.workers) }

// Worker returns the i-th worker manager.
func (p *Pool) Worker(i int) *Manager { return p.workers[i] }

// Map evaluates fn once per task index in [0, tasks), distributing tasks
// across the pool's workers, and returns the produced buffers in task order.
// fn runs on the goroutine that owns worker w (= Worker(worker)) and must
// confine all BDD operations to that manager. The first error (or a context
// cancellation, reported as ctx.Err()) stops the pool after in-flight tasks
// finish.
func (p *Pool) Map(ctx context.Context, tasks int, fn func(w *Manager, worker, task int) ([]byte, error)) ([][]byte, error) {
	results := make([][]byte, tasks)
	if tasks == 0 {
		return results, nil
	}
	nw := len(p.workers)
	if nw > tasks {
		nw = tasks
	}

	var (
		next    atomic.Int64
		stop    atomic.Bool
		errOnce sync.Once
		firstEr error
		wg      sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() { firstEr = err })
		stop.Store(true)
	}
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for !stop.Load() {
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				task := int(next.Add(1)) - 1
				if task >= tasks {
					return
				}
				buf, err := runTask(p.workers[worker], worker, task, fn)
				if err != nil {
					fail(err)
					return
				}
				results[task] = buf
			}
		}(w)
	}
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	return results, nil
}

// runTask invokes fn for one task, converting a node-budget panic raised in
// the worker manager into an ordinary error: a panic on a pool goroutine
// would otherwise kill the whole process (in the daemon, every job). Other
// panics propagate unchanged.
func runTask(w *Manager, worker, task int, fn func(w *Manager, worker, task int) ([]byte, error)) (buf []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			if be, ok := r.(*BudgetError); ok {
				err = be
				return
			}
			panic(r)
		}
	}()
	return fn(w, worker, task)
}
