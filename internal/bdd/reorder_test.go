package bdd

import (
	"math/rand"
	"reflect"
	"testing"
)

// checkOrderInvariants verifies the structural invariants reordering must
// preserve: var2level/level2var are inverse bijections, every live node is
// reduced and ordered under the current level assignment, no two live slots
// hold the same triple, and every live slot is findable in the unique table.
func checkOrderInvariants(t *testing.T, m *Manager) {
	t.Helper()
	if len(m.var2level) != m.numVars || len(m.level2var) != m.numVars {
		t.Fatalf("order arrays sized %d/%d, want %d", len(m.var2level), len(m.level2var), m.numVars)
	}
	for v, l := range m.var2level {
		if m.level2var[l] != int32(v) {
			t.Fatalf("var2level/level2var not inverse at var %d (level %d)", v, l)
		}
	}
	type triple struct {
		level     int32
		low, high Node
	}
	seen := make(map[triple]Node)
	for i := 2; i < len(m.nodes); i++ {
		n := m.nodes[i]
		if n.level == freeLevel {
			continue
		}
		if n.level < 0 || int(n.level) >= m.numVars {
			t.Fatalf("node %d has level %d outside [0,%d)", i, n.level, m.numVars)
		}
		if n.low == n.high {
			t.Fatalf("node %d is not reduced", i)
		}
		for _, c := range [2]Node{n.low, n.high} {
			cl := m.nodes[c].level
			if cl == freeLevel {
				t.Fatalf("node %d has freed child %d", i, c)
			}
			if cl <= n.level {
				t.Fatalf("node %d (level %d) has child %d at level %d — not ordered", i, n.level, c, cl)
			}
		}
		tr := triple{n.level, n.low, n.high}
		if prev, dup := seen[tr]; dup {
			t.Fatalf("nodes %d and %d share triple %+v — canonicity broken", prev, i, tr)
		}
		seen[tr] = Node(i)
		// The slot must be reachable by probing.
		h := hash3(uint64(n.level), uint64(n.low), uint64(n.high)) & m.uniqueMask
		for {
			slot := m.unique[h]
			if slot == Node(i) {
				break
			}
			if slot == 0 {
				t.Fatalf("node %d missing from the unique table", i)
			}
			h = (h + 1) & m.uniqueMask
		}
	}
}

// buildRandomFuncs makes a reproducible batch of functions over nvars
// variables, exercising all the binary ops.
func buildRandomFuncs(m *Manager, nvars, count int, seed int64) []Node {
	rng := rand.New(rand.NewSource(seed))
	vars := m.NewVars(nvars)
	out := make([]Node, 0, count)
	for i := 0; i < count; i++ {
		f := vars[rng.Intn(nvars)]
		for j := 0; j < 6; j++ {
			g := vars[rng.Intn(nvars)]
			if rng.Intn(3) == 0 {
				g = m.Not(g)
			}
			switch rng.Intn(3) {
			case 0:
				f = m.And(f, g)
			case 1:
				f = m.Or(f, g)
			default:
				f = m.Xor(f, g)
			}
		}
		out = append(out, m.Ref(f))
	}
	return out
}

func TestSetOrderPreservesFunctionsAndHandles(t *testing.T) {
	const nvars = 9
	m := New()
	funcs := buildRandomFuncs(m, nvars, 24, 1)
	before := make([][]bool, len(funcs))
	for i, f := range funcs {
		before[i] = truthTable(m, f, nvars)
	}
	rng := rand.New(rand.NewSource(2))
	for round := 0; round < 8; round++ {
		order := rng.Perm(nvars)
		m.SetOrder(order)
		checkOrderInvariants(t, m)
		got := m.Order()
		if !reflect.DeepEqual(got, order) {
			t.Fatalf("round %d: Order() = %v, want %v", round, got, order)
		}
		for i, f := range funcs {
			if after := truthTable(m, f, nvars); !reflect.DeepEqual(after, before[i]) {
				t.Fatalf("round %d: function %d changed semantics after SetOrder(%v)", round, i, order)
			}
		}
	}
	// Back to the identity.
	ident := make([]int, nvars)
	for i := range ident {
		ident[i] = i
	}
	m.SetOrder(ident)
	checkOrderInvariants(t, m)
	for i, f := range funcs {
		if after := truthTable(m, f, nvars); !reflect.DeepEqual(after, before[i]) {
			t.Fatalf("function %d changed semantics after returning to identity", i)
		}
	}
}

func TestReorderShrinksDisjointCover(t *testing.T) {
	// The classic sifting win: f = (a0∧b0) ∨ (a1∧b1) ∨ … built under an
	// order that separates every pair (all a's first, then all b's) is
	// exponential; pairing the variables up makes it linear.
	const pairs = 7
	m := New()
	vars := m.NewVars(2 * pairs)
	f := False
	for i := 0; i < pairs; i++ {
		f = m.Or(f, m.And(vars[i], vars[pairs+i]))
	}
	m.Ref(f)
	wide := m.NodeCount(f)
	m.Reorder()
	checkOrderInvariants(t, m)
	narrow := m.NodeCount(f)
	if narrow >= wide {
		t.Fatalf("sifting did not shrink the cover: %d -> %d nodes", wide, narrow)
	}
	// 3 nodes per pair plus the terminal pair is the optimum shape.
	if narrow > 3*pairs+2 {
		t.Fatalf("sifting landed far from optimal: %d nodes for %d pairs", narrow, pairs)
	}
	if s := m.Stats(); s.ReorderRuns != 1 || s.ReorderSwaps == 0 {
		t.Fatalf("stats not updated: runs=%d swaps=%d", s.ReorderRuns, s.ReorderSwaps)
	}
}

func TestAutoReorderThreshold(t *testing.T) {
	// Small tables never trigger automatically: the growth gate starts at
	// reorderFirstSize regardless of how aggressive the threshold is.
	m := New()
	m.SetReorderThreshold(16)
	buildRandomFuncs(m, 10, 40, 3)
	if runs := m.Stats().ReorderRuns; runs != 0 {
		t.Fatalf("reordering triggered on a table of %d nodes (gate is %d)", m.Size(), reorderFirstSize)
	}
	// A table past the gate does trigger. The separated disjoint cover is
	// exponential in the pair count, so 12 pairs comfortably exceeds the gate.
	m = New()
	m.SetReorderThreshold(256)
	const pairs = 12
	vars := m.NewVars(2 * pairs)
	f := False
	for i := 0; i < pairs; i++ {
		f = m.Or(f, m.And(vars[i], vars[pairs+i]))
	}
	m.Ref(f)
	if runs := m.Stats().ReorderRuns; runs == 0 {
		t.Fatal("automatic reordering never triggered")
	}
	checkOrderInvariants(t, m)
	m.SetReorderThreshold(0)
	runs := m.Stats().ReorderRuns
	buildRandomFuncs(m, 2, 8, 4)
	if m.Stats().ReorderRuns != runs {
		t.Fatal("reordering triggered while disabled")
	}
}

func TestPickCubeStableAcrossOrders(t *testing.T) {
	const nvars = 8
	m := New()
	funcs := buildRandomFuncs(m, nvars, 16, 5)
	picks := make([][]int8, len(funcs))
	sups := make([][]int, len(funcs))
	for i, f := range funcs {
		picks[i] = m.PickCube(f)
		sups[i] = m.Support(f)
	}
	rng := rand.New(rand.NewSource(6))
	for round := 0; round < 5; round++ {
		m.SetOrder(rng.Perm(nvars))
		for i, f := range funcs {
			if got := m.PickCube(f); !reflect.DeepEqual(got, picks[i]) {
				t.Fatalf("round %d: PickCube changed under reorder: %v vs %v", round, got, picks[i])
			}
			if got := m.Support(f); !reflect.DeepEqual(got, sups[i]) {
				t.Fatalf("round %d: Support changed under reorder: %v vs %v", round, got, sups[i])
			}
		}
	}
}

func TestAllSatStableAcrossOrders(t *testing.T) {
	const nvars = 6
	m := New()
	funcs := buildRandomFuncs(m, nvars, 8, 7)
	collect := func(f Node) [][]int8 {
		var out [][]int8
		m.AllSat(f, func(cube []int8) bool {
			out = append(out, append([]int8(nil), cube...))
			return true
		})
		return out
	}
	before := make([][][]int8, len(funcs))
	for i, f := range funcs {
		before[i] = collect(f)
	}
	rng := rand.New(rand.NewSource(8))
	for round := 0; round < 4; round++ {
		m.SetOrder(rng.Perm(nvars))
		for i, f := range funcs {
			if got := collect(f); !reflect.DeepEqual(got, before[i]) {
				t.Fatalf("round %d: AllSat enumeration changed under reorder", round)
			}
		}
	}
}

func TestPickCubeRandStableAcrossOrders(t *testing.T) {
	const nvars = 8
	m := New()
	funcs := buildRandomFuncs(m, nvars, 8, 9)
	sample := func(f Node) [][]int8 {
		rng := rand.New(rand.NewSource(42))
		coin := func() bool { return rng.Intn(2) == 1 }
		var out [][]int8
		for k := 0; k < 10; k++ {
			out = append(out, m.PickCubeRand(f, coin))
		}
		return out
	}
	before := make([][][]int8, len(funcs))
	for i, f := range funcs {
		before[i] = sample(f)
	}
	m.SetOrder(rand.New(rand.NewSource(10)).Perm(nvars))
	for i, f := range funcs {
		if got := sample(f); !reflect.DeepEqual(got, before[i]) {
			t.Fatalf("PickCubeRand coin-path changed under reorder for function %d", i)
		}
	}
}

func TestTransferAcrossDifferentOrders(t *testing.T) {
	const nvars = 9
	src := New()
	funcs := buildRandomFuncs(src, nvars, 12, 11)
	tables := make([][]bool, len(funcs))
	for i, f := range funcs {
		tables[i] = truthTable(src, f, nvars)
	}
	src.SetOrder(rand.New(rand.NewSource(12)).Perm(nvars))
	dst := New()
	dst.NewVars(nvars)
	dst.SetOrder(rand.New(rand.NewSource(13)).Perm(nvars))
	for i, f := range funcs {
		g := dst.Ref(Import(dst, src.Export(f)))
		if got := truthTable(dst, g, nvars); !reflect.DeepEqual(got, tables[i]) {
			t.Fatalf("function %d corrupted by transfer across mismatched orders", i)
		}
		// Round-trip back into the source manager.
		h := src.Ref(Import(src, dst.Export(g)))
		if h != f {
			t.Fatalf("function %d did not round-trip to the same node (got %d, want %d)", i, h, f)
		}
		src.Deref(h)
		dst.Deref(g)
	}
}

func TestTransferSameOrderStaysByteIdentical(t *testing.T) {
	const nvars = 8
	src := New()
	funcs := buildRandomFuncs(src, nvars, 10, 14)
	order := rand.New(rand.NewSource(15)).Perm(nvars)
	src.SetOrder(order)
	dst := New()
	dst.NewVars(nvars)
	dst.SetOrder(order)
	for i, f := range funcs {
		buf := src.Export(f)
		alloc0 := dst.Stats().NodesAllocated
		g := dst.Ref(Import(dst, buf))
		first := dst.Stats().NodesAllocated - alloc0
		// Re-import is free: the structural fast path hash-conses onto the
		// nodes the first import built.
		if g2 := Import(dst, buf); g2 != g {
			t.Fatalf("function %d: re-import produced a different node", i)
		}
		if again := dst.Stats().NodesAllocated - alloc0; again != first {
			t.Fatalf("function %d: re-import allocated %d fresh nodes", i, again-first)
		}
		if got := dst.Export(g); !reflect.DeepEqual(got, buf) {
			t.Fatalf("function %d: matching orders did not re-export byte-identically", i)
		}
		dst.Deref(g)
	}
}

func TestRootedHandlesSurviveReorder(t *testing.T) {
	const nvars = 8
	m := New()
	vars := m.NewVars(nvars)
	r := m.NewRooted(m.And(vars[0], m.Or(vars[5], m.Not(vars[3]))))
	sc := m.Protect()
	defer sc.Release()
	kept := sc.Keep(m.Xor(vars[1], vars[6]))
	want := truthTable(m, r.Node(), nvars)
	wantKept := truthTable(m, kept, nvars)
	for round := 0; round < 6; round++ {
		m.SetOrder(rand.New(rand.NewSource(int64(round))).Perm(nvars))
		m.GC()
		if got := truthTable(m, r.Node(), nvars); !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: rooted handle no longer denotes its function", round)
		}
		if got := truthTable(m, kept, nvars); !reflect.DeepEqual(got, wantKept) {
			t.Fatalf("round %d: protected node no longer denotes its function", round)
		}
	}
	r.Release()
}

func TestUniqueRemoveKeepsProbeChains(t *testing.T) {
	m := New()
	funcs := buildRandomFuncs(m, 11, 60, 16)
	_ = funcs
	// Remove every other live node from the table, verify the rest stay
	// findable, then re-insert and verify again.
	var removed []Node
	for i := Node(2); int(i) < len(m.nodes); i++ {
		if m.nodes[i].level == freeLevel {
			continue
		}
		if i%2 == 0 {
			m.uniqueRemove(i)
			removed = append(removed, i)
		}
	}
	for i := Node(2); int(i) < len(m.nodes); i++ {
		n := m.nodes[i]
		if n.level == freeLevel || i%2 == 0 {
			continue
		}
		h := hash3(uint64(n.level), uint64(n.low), uint64(n.high)) & m.uniqueMask
		for {
			slot := m.unique[h]
			if slot == i {
				break
			}
			if slot == 0 {
				t.Fatalf("node %d unreachable after unrelated removals", i)
			}
			h = (h + 1) & m.uniqueMask
		}
	}
	for _, n := range removed {
		m.uniqueInsert(n)
	}
	checkOrderInvariants(t, m)
}

func TestReorderUnderGCStressInterleaving(t *testing.T) {
	// Tiny thresholds for both systems force collections and sifts to
	// interleave densely — the combined REPRO_GC_STRESS/REPRO_REORDER_STRESS
	// mode in miniature.
	const nvars = 10
	m := New()
	m.SetGCThreshold(128)
	m.SetReorderThreshold(512)
	funcs := buildRandomFuncs(m, nvars, 30, 17)
	tables := make([][]bool, len(funcs))
	for i, f := range funcs {
		tables[i] = truthTable(m, f, nvars)
	}
	rng := rand.New(rand.NewSource(18))
	acc := m.NewRooted(True)
	defer acc.Release()
	for step := 0; step < 200; step++ {
		f := funcs[rng.Intn(len(funcs))]
		g := funcs[rng.Intn(len(funcs))]
		switch rng.Intn(3) {
		case 0:
			acc.Set(m.And(m.Or(f, acc.Node()), m.Not(g)))
		case 1:
			acc.Set(m.Xor(acc.Node(), m.And(f, g)))
		default:
			acc.Set(m.ITE(f, g, acc.Node()))
		}
	}
	checkOrderInvariants(t, m)
	for i, f := range funcs {
		if got := truthTable(m, f, nvars); !reflect.DeepEqual(got, tables[i]) {
			t.Fatalf("function %d corrupted by interleaved GC and reordering", i)
		}
	}
	if s := m.Stats(); s.GCRuns == 0 || s.ReorderRuns == 0 {
		t.Fatalf("stress interleaving did not exercise both systems: gc=%d reorder=%d", s.GCRuns, s.ReorderRuns)
	}
}
