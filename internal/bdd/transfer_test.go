package bdd

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"
)

// randNode builds a random predicate over the manager's variables by
// combining literals with random connectives. depth bounds the expression
// tree; the distribution is skewed toward non-trivial functions but True and
// False remain reachable so terminals are exercised too.
func randNode(m *Manager, rng *rand.Rand, depth int) Node {
	if depth == 0 {
		switch rng.Intn(8) {
		case 0:
			return False
		case 1:
			return True
		default:
			v := m.Var(rng.Intn(m.NumVars()))
			if rng.Intn(2) == 0 {
				return m.Not(v)
			}
			return v
		}
	}
	f := randNode(m, rng, depth-1)
	g := randNode(m, rng, depth-1)
	switch rng.Intn(4) {
	case 0:
		return m.And(f, g)
	case 1:
		return m.Or(f, g)
	case 2:
		return m.Xor(f, g)
	default:
		return m.ITE(f, g, randNode(m, rng, depth-1))
	}
}

// TestTransferRoundTrip is the property-based check behind the parallel
// engine: for random predicates over random variable counts, Export from one
// manager and Import into a fresh one must preserve the function exactly
// (same satisfying-assignment count, same value on every sampled point), and
// because ROBDDs are canonical, re-exporting from the destination must
// reproduce the original buffer byte for byte.
func TestTransferRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		nv := 1 + rng.Intn(12)
		src := NewSized(10)
		src.NewVars(nv)
		dst := NewSized(10)
		dst.NewVars(nv)

		f := randNode(src, rng, 3+rng.Intn(3))
		buf := src.Export(f)
		g := Import(dst, buf)

		if sc, dc := src.SatCountVars(f, nv), dst.SatCountVars(g, nv); sc != dc {
			t.Fatalf("trial %d: satcount mismatch after transfer: %g vs %g", trial, sc, dc)
		}
		assignment := make([]bool, nv)
		for probe := 0; probe < 50; probe++ {
			for i := range assignment {
				assignment[i] = rng.Intn(2) == 0
			}
			if src.Eval(f, assignment) != dst.Eval(g, assignment) {
				t.Fatalf("trial %d: pointwise mismatch at %v", trial, assignment)
			}
		}
		if buf2 := dst.Export(g); !bytes.Equal(buf, buf2) {
			t.Fatalf("trial %d: re-export is not byte-identical (%d vs %d bytes)", trial, len(buf), len(buf2))
		}
	}
}

// Terminals are shared constants: they must survive transfer as themselves.
func TestTransferTerminals(t *testing.T) {
	src, dst := New(), New()
	src.NewVars(3)
	dst.NewVars(3)
	if got := Import(dst, src.Export(False)); got != False {
		t.Fatalf("False transferred to %d", got)
	}
	if got := Import(dst, src.Export(True)); got != True {
		t.Fatalf("True transferred to %d", got)
	}
}

// A destination with more variables than the source is fine (the extra
// levels are simply unused); fewer variables must be rejected.
func TestTransferVarCountMismatch(t *testing.T) {
	src := New()
	src.NewVars(5)
	f := src.And(src.Var(1), src.Not(src.Var(4)))
	buf := src.Export(f)

	wide := New()
	wide.NewVars(8)
	g := Import(wide, buf)
	if src.SatCountVars(f, 5) != wide.SatCountVars(g, 5) {
		t.Fatal("transfer into wider manager changed the function")
	}

	narrow := New()
	narrow.NewVars(3)
	defer func() {
		if recover() == nil {
			t.Fatal("Import into a narrower manager did not panic")
		}
	}()
	Import(narrow, buf)
}

func TestImportRejectsGarbage(t *testing.T) {
	m := New()
	m.NewVars(4)
	for name, buf := range map[string][]byte{
		"empty":     {},
		"bad magic": {0x42, 0x01, 0x04, 0x00, 0x00},
		"truncated": m.Export(m.Xor(m.Var(0), m.Var(3)))[:4],
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Import did not panic", name)
				}
			}()
			Import(m, buf)
		}()
	}
}

// TestCheckNodeForeign pins the cross-manager misuse bug: a Node index from a
// big manager handed to a small one must panic with a clear message instead
// of silently reading another function's truth table.
func TestCheckNodeForeign(t *testing.T) {
	big := New()
	big.NewVars(10)
	f := big.AndN(big.Var(0), big.Var(5), big.Var(9))

	small := New()
	small.NewVars(10)
	defer func() {
		if recover() == nil {
			t.Fatal("CheckNode accepted a foreign node index")
		}
	}()
	small.CheckNode(f) // f's index is far beyond small's node table
}

func TestPoolMapOrderAndError(t *testing.T) {
	workers := []*Manager{NewSized(10), NewSized(10)}
	for _, w := range workers {
		w.NewVars(4)
	}
	pool := NewPool(workers)

	results, err := pool.Map(context.Background(), 7, func(w *Manager, worker, task int) ([]byte, error) {
		return []byte{byte(task)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if len(r) != 1 || r[0] != byte(i) {
			t.Fatalf("result %d landed at the wrong slot: %v", i, r)
		}
	}

	boom := errors.New("boom")
	if _, err := pool.Map(context.Background(), 5, func(w *Manager, worker, task int) ([]byte, error) {
		if task == 3 {
			return nil, boom
		}
		return nil, nil
	}); !errors.Is(err, boom) {
		t.Fatalf("Map swallowed the task error: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pool.Map(ctx, 5, func(w *Manager, worker, task int) ([]byte, error) {
		return nil, nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Map ignored a cancelled context: %v", err)
	}
}
