package bdd

// This file implements dynamic variable reordering: Rudell-style sifting over
// the live node table, built from in-place swaps of adjacent levels.
//
// Variable identity vs. order position. With reordering, a variable's
// creation-time index (its id) and its current position in the order (its
// level) come apart. Node records store levels — the recursions in apply.go
// and quant.go compare levels, which is what keeps them correct under any
// fixed order — while the public API (Var, Cube, Eval, PickCube, AllSat,
// Support, Permutation) speaks variable ids, which never change. The
// var2level / level2var arrays translate between the two.
//
// The swap is slot-preserving: a node keeps its index and its Boolean
// function across a swap (only its level/low/high fields are rewritten), so
// every Node held by a caller — rooted or merely recent — survives a reorder
// with no forwarding table. This is the invariant that lets reordering slot
// into the existing GC machinery: a reorder is just another event at an
// operation safe point, after which the epoch-stamped caches are flushed in
// O(1) exactly as after a sweep.
//
// Swapping adjacent levels x and y = x+1 relabels the two levels and
// restructures only the level-x nodes that depend on level y:
//
//   - a level-y node keeps its children (they are all deeper than y) and is
//     relabeled to x;
//   - a level-x node independent of y keeps its children and is relabeled
//     to y;
//   - a level-x node f with a level-y child decomposes into the four
//     cofactors f00, f01, f10, f11 and is rewritten in place as
//     (x: (y: f00, f10), (y: f01, f11)) — the same function with the two
//     variables tested in the opposite sequence. The inner (y: …) nodes are
//     hash-consed via swapMk, which may allocate.
//
// Both levels' unique-table entries are removed before any relabeling (the
// two levels trade hash homes wholesale, and a stale entry could alias a
// rewritten triple), and re-inserted as each node receives its final triple.
// Old level-y children that were only reachable through rewritten parents
// become garbage; the collector sweeps them at the session boundaries.

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
)

const (
	// reorderGrowthFactor bounds how far a single variable's sift may inflate
	// the node table before the walk in that direction is abandoned.
	reorderGrowthFactor = 1.2
	// reorderMaxSwaps bounds the adjacent swaps of one sifting pass. Far
	// above what the state-bit counts in this repo ever need; a backstop
	// against pathological table shapes, not a tuning knob.
	reorderMaxSwaps = 1 << 20
	// reorderCollectSlack triggers a mid-pass collection once swap garbage
	// has grown the table this many halves past the last collected size.
	reorderCollectSlack = 2 // collect when size > lastCollect * 3/2
	// reorderFirstSize is the table size below which automatic reordering
	// never fires: tables this small reorder in microseconds but also have
	// nothing to give. It seeds the growth gate (see reorderNextSize).
	reorderFirstSize = 4096
	// reorderWorkFactor bounds one sifting pass to this many level-node
	// touches per node of starting table size. A swap costs the combined
	// population of the two levels, so an unbounded pass over a large table
	// with many variables is O(vars * size) — minutes, not milliseconds. The
	// budget spends the pass on the most populated (most valuable) variables
	// first and abandons the tail, keeping pass latency roughly linear in the
	// table size.
	reorderWorkFactor = 32
)

// reorderStress parses REPRO_REORDER_STRESS once. Empty/unset disables
// stress mode; an integer above one is used as the reorder threshold for
// every new manager; any other non-empty value selects an aggressive default
// that forces frequent sifting passes. Mirrors REPRO_GC_STRESS: CI runs the
// determinism gates under it so order-dependence bugs surface as failures.
var reorderStress = sync.OnceValue(func() int64 {
	v := os.Getenv("REPRO_REORDER_STRESS")
	if v == "" {
		return 0
	}
	if n, err := strconv.ParseInt(v, 10, 64); err == nil && n > 1 {
		return n
	}
	return 1 << 13
})

// VarOf returns the variable id of f's root. f must not be a terminal.
func (m *Manager) VarOf(f Node) int {
	return int(m.level2var[m.nodes[f].level])
}

// LevelOfVar returns the current order position of variable v.
func (m *Manager) LevelOfVar(v int) int {
	if v < 0 || v >= m.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, m.numVars))
	}
	return int(m.var2level[v])
}

// Order returns the current variable order as a fresh slice: Order()[l] is
// the id of the variable at level l.
func (m *Manager) Order() []int {
	out := make([]int, m.numVars)
	for l, v := range m.level2var {
		out[l] = int(v)
	}
	return out
}

// orderIsIdentity reports whether every variable sits at its creation level.
func (m *Manager) orderIsIdentity() bool {
	for l, v := range m.level2var {
		if int(v) != l {
			return false
		}
	}
	return true
}

// SetReorderThreshold arms automatic sifting: once n nodes have been
// allocated since the last reorder — and the table has outgrown the growth
// gate (twice its size after the previous pass) — the next operation safe
// point runs a sifting pass. The gate makes automatic passes logarithmically
// rare in the table size, so even an aggressive threshold spends almost all
// of its time on useful work rather than re-sifting an already-sifted table.
// n <= 0 disables automatic reordering (explicit Reorder() still works).
func (m *Manager) SetReorderThreshold(n int64) {
	m.reorderThreshold = n
	if n > 0 && m.allocSinceReorder >= n && m.Size() >= m.reorderNextSize {
		m.reorderPending = true
	}
}

// Reorder runs one sifting pass now: each variable, from the most populated
// level down, is moved through the order by adjacent swaps and left at the
// best position seen, abandoning a direction once the table grows past the
// growth factor. All Nodes — rooted, recent, or merely held by the caller —
// remain valid and denote the same functions afterwards.
func (m *Manager) Reorder() {
	m.safe(False, False, False)
	m.reorderPending = false
	m.reorderNow()
}

// SetOrder rearranges the variables into the given order (order[level] =
// variable id, a bijection over all allocated variables) via adjacent swaps.
// Workers in a pool use it to re-align with the owning manager's order at
// merge barriers, keeping transfers on the fast structural path.
func (m *Manager) SetOrder(order []int) {
	if len(order) != m.numVars {
		panic(fmt.Sprintf("bdd: SetOrder: order has %d entries, manager has %d variables", len(order), m.numVars))
	}
	target := make([]int32, len(order))
	seen := make([]bool, len(order))
	same := true
	for l, v := range order {
		if v < 0 || v >= m.numVars {
			panic(fmt.Sprintf("bdd: SetOrder: variable %d out of range [0,%d)", v, m.numVars))
		}
		if seen[v] {
			panic(fmt.Sprintf("bdd: SetOrder: variable %d listed twice", v))
		}
		seen[v] = true
		target[l] = int32(v)
		if m.level2var[l] != int32(v) {
			same = false
		}
	}
	if same {
		return
	}
	m.safe(False, False, False)
	m.beginReorder()
	// Selection by bubbling: fix levels top-down; the variable wanted at
	// level l is somewhere below and rises one swap at a time.
	for l := 0; l < m.numVars-1; l++ {
		v := target[l]
		for m.var2level[v] > int32(l) {
			m.swapAdjacent(m.var2level[v] - 1)
		}
	}
	m.endReorder()
}

// reorderNow is the sifting pass body. Caller must be at a safe point with
// operands temp-rooted.
func (m *Manager) reorderNow() {
	if m.numVars < 2 || m.inReorder {
		m.allocSinceReorder = 0
		return
	}
	m.inReorder = true
	defer func() { m.inReorder = false }()
	m.beginReorder()
	m.swapsThisPass = 0
	m.touchedThisPass = 0
	m.passWorkBudget = reorderWorkFactor * m.Size()
	// Sift the most populated levels first: they have the most to give, and
	// the candidate list is fixed up front so the pass is deterministic.
	type cand struct {
		v int32
		n int
	}
	cands := make([]cand, 0, m.numVars)
	for l := 0; l < m.numVars; l++ {
		cands = append(cands, cand{m.level2var[l], len(m.rl[l])})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].n != cands[j].n {
			return cands[i].n > cands[j].n
		}
		return cands[i].v < cands[j].v
	})
	for _, c := range cands {
		if c.n == 0 || m.swapsThisPass >= reorderMaxSwaps || m.touchedThisPass >= m.passWorkBudget {
			break
		}
		m.siftVar(c.v)
		// Swap garbage (orphaned level-y children) accumulates across sifts;
		// collect when it has grown the table materially so the size signal
		// guiding later sifts stays honest.
		if m.Size() > m.lastCollectSize+m.lastCollectSize/reorderCollectSlack {
			m.collect()
			m.buildReorderLists()
			m.lastCollectSize = m.Size()
		}
	}
	m.endReorder()
}

// siftVar moves variable v through the whole order by adjacent swaps and
// leaves it at the position with the smallest observed table size. The walk
// in a direction stops early once the table exceeds the growth bound.
func (m *Manager) siftVar(v int32) {
	n := int32(m.numVars)
	start := m.var2level[v]
	size := m.sessionSize()
	best, bestLevel := size, start
	limit := size + int(float64(size)*(reorderGrowthFactor-1))
	record := func() {
		size = m.sessionSize()
		if size < best {
			best, bestLevel = size, m.var2level[v]
		}
	}
	budgetLeft := func() bool {
		return m.swapsThisPass < reorderMaxSwaps && m.touchedThisPass < m.passWorkBudget
	}
	walkUp := func() {
		for m.var2level[v] > 0 && budgetLeft() {
			m.swapAdjacent(m.var2level[v] - 1)
			if record(); size > limit {
				break
			}
		}
	}
	walkDown := func() {
		for m.var2level[v] < n-1 && budgetLeft() {
			m.swapAdjacent(m.var2level[v])
			if record(); size > limit {
				break
			}
		}
	}
	// Try the nearer end first so the cheap direction bounds the expensive
	// one's growth budget.
	if start < n/2 {
		walkUp()
		walkDown()
	} else {
		walkDown()
		walkUp()
	}
	// Return to the best position seen (budget overruns are tolerated here —
	// the variable must land somewhere deliberate).
	for m.var2level[v] > bestLevel {
		m.swapAdjacent(m.var2level[v] - 1)
	}
	for m.var2level[v] < bestLevel {
		m.swapAdjacent(m.var2level[v])
	}
}

// beginReorder opens a swap session: collect so the per-level lists hold
// only live nodes, then index every slot by level.
func (m *Manager) beginReorder() {
	m.collect()
	m.buildReorderLists()
	m.lastCollectSize = m.Size()
}

// sessionSize is the live node count during a swap session. Size() counts
// every occupied slot, including nodes orphaned by earlier swaps that only a
// collection can reclaim; subtracting the session's dead count gives the
// honest signal sifting must optimize — otherwise accumulated garbage makes
// every position look worse than the starting one and no sift ever commits.
func (m *Manager) sessionSize() int {
	return m.Size() - m.deadCnt
}

// isExt reports whether n was externally rooted (refs, recent ring, temp
// roots) when the session state was last built. Roots cannot change inside a
// session — no public operation runs — so the frozen bitset stays exact.
func (m *Manager) isExt(n Node) bool {
	w := int(n >> 6)
	return w < len(m.extBits) && m.extBits[w]&(1<<(uint(n)&63)) != 0
}

// pcNew registers a freshly allocated slot with the session's parent counts.
// A new node starts with no parents, i.e. dead; the incEdge from the parent
// that caused its creation immediately revives it (and only then are its own
// outgoing edges counted).
func (m *Manager) pcNew(n Node) {
	for int(n) >= len(m.pc) {
		m.pc = append(m.pc, 0)
	}
	m.pc[n] = 0
	m.deadCnt++
}

// incEdge records a new live parent of n. Edges leaving a dead node are not
// counted, so a node reviving (first live parent) re-counts its outgoing
// edges, cascading down the DAG.
func (m *Manager) incEdge(n Node) {
	if n <= True {
		return
	}
	if m.pc[n] == 0 && !m.isExt(n) {
		m.deadCnt--
		nd := m.nodes[n]
		m.incEdge(nd.low)
		m.incEdge(nd.high)
	}
	m.pc[n]++
}

// decEdge removes one live parent of n; a node whose last live parent goes
// away dies, un-counting its outgoing edges down the DAG.
func (m *Manager) decEdge(n Node) {
	if n <= True {
		return
	}
	m.pc[n]--
	if m.pc[n] == 0 && !m.isExt(n) {
		m.deadCnt++
		nd := m.nodes[n]
		m.decEdge(nd.low)
		m.decEdge(nd.high)
	}
}

// endReorder closes the session: sweep the swap garbage, flush the caches
// (the cofactor-by-level entries key on positions that just moved; everything
// else is invalidated wholesale for the same O(1) epoch bump), and reset the
// trigger counter.
func (m *Manager) endReorder() {
	m.collect()
	m.FlushCaches()
	m.allocSinceReorder = 0
	m.reorderPending = false
	m.stats.ReorderRuns++
	// Growth gate: the next automatic pass waits until the table has doubled
	// past what this one left behind. Re-sifting a table that has not grown
	// mostly rediscovers the same order at full pass cost.
	m.reorderNextSize = 2 * m.Size()
	if m.reorderNextSize < reorderFirstSize {
		m.reorderNextSize = reorderFirstSize
	}
}

// buildReorderLists populates the session state: m.rl (rl[l] lists every
// non-free node slot at level l, ascending), the parent counts, the
// external-root bitset, and the dead count. swapAdjacent keeps all of it
// current for the two levels it touches; other levels are untouched by a
// swap. Called right after a collection, so every occupied slot is live and
// the dead count starts at zero.
func (m *Manager) buildReorderLists() {
	if len(m.rl) < m.numVars {
		m.rl = make([][]Node, m.numVars)
	}
	for i := range m.rl {
		m.rl[i] = m.rl[i][:0]
	}
	if cap(m.pc) < len(m.nodes) {
		m.pc = make([]int32, len(m.nodes))
	} else {
		m.pc = m.pc[:len(m.nodes)]
		for i := range m.pc {
			m.pc[i] = 0
		}
	}
	for i := 2; i < len(m.nodes); i++ {
		nd := m.nodes[i]
		if nd.level == freeLevel || nd.level == terminalLevel {
			// Freed slots and ADD terminals carry no level list entry; a
			// terminal's self-loop must not count as a parent either (its
			// permanent ref keeps it alive and externally rooted instead).
			continue
		}
		m.rl[nd.level] = append(m.rl[nd.level], Node(i))
		m.pc[nd.low]++
		m.pc[nd.high]++
	}
	words := (len(m.nodes) + 63) / 64
	if cap(m.extBits) < words {
		m.extBits = make([]uint64, words)
	} else {
		m.extBits = m.extBits[:words]
		for i := range m.extBits {
			m.extBits[i] = 0
		}
	}
	setExt := func(n Node) {
		if n > True {
			m.extBits[n>>6] |= 1 << (uint(n) & 63)
		}
	}
	for n := range m.refs {
		setExt(n)
	}
	for _, n := range m.recent {
		setExt(n)
	}
	for _, n := range m.tmpRoots {
		setExt(n)
	}
	// Nodes rooted by the worker views of a shared session are external too:
	// sifting at a barrier must preserve results held by idle views.
	for _, v := range m.sharedViews {
		for n := range v.refs {
			setExt(n)
		}
		for _, n := range v.recent {
			setExt(n)
		}
		for _, n := range v.tmpRoots {
			setExt(n)
		}
	}
	m.deadCnt = 0
}

// swapDep is a level-x node that depends on level y, with its four cofactors
// captured before any relabeling.
type swapDep struct {
	f                  Node
	f00, f01, f10, f11 Node
}

// swapAdjacent exchanges levels x and x+1 in place. See the file comment for
// the three node classes; every node keeps its slot and its function.
func (m *Manager) swapAdjacent(x int32) {
	y := x + 1
	m.stats.ReorderSwaps++
	m.swapsThisPass++
	lx, ly := m.rl[x], m.rl[y]
	m.touchedThisPass += len(lx) + len(ly)
	u, v := m.level2var[x], m.level2var[y]
	m.level2var[x], m.level2var[y] = v, u
	m.var2level[u], m.var2level[v] = y, x
	if len(lx) == 0 && len(ly) == 0 {
		return
	}
	// Classify the level-x nodes before touching anything: the cofactor
	// capture must read the pre-swap structure.
	deps := m.depBuf[:0]
	indep := m.indepBuf[:0]
	for _, f := range lx {
		nf := m.nodes[f]
		dep := false
		d := swapDep{f: f, f00: nf.low, f01: nf.low, f10: nf.high, f11: nf.high}
		if c := m.nodes[nf.low]; c.level == y {
			d.f00, d.f01 = c.low, c.high
			dep = true
		}
		if c := m.nodes[nf.high]; c.level == y {
			d.f10, d.f11 = c.low, c.high
			dep = true
		}
		if dep {
			deps = append(deps, d)
		} else {
			indep = append(indep, f)
		}
	}
	m.depBuf, m.indepBuf = deps, indep
	// Pre-grow the unique table for the worst case (two fresh nodes per
	// dependent); swapMk itself never grows, so the table stays consistent
	// through the surgery below.
	for uint64(m.Size()+2*len(deps)+2)*4 > uint64(len(m.unique))*3 {
		m.growUnique(uint64(len(m.unique)) * 2)
	}
	// Both levels leave the table before any relabeling: entries under the
	// old levels could otherwise alias the rewritten triples.
	for _, f := range lx {
		m.uniqueRemove(f)
	}
	for _, g := range ly {
		m.uniqueRemove(g)
	}
	// Level-y nodes rise to x with their children intact (all deeper than y).
	for _, g := range ly {
		m.nodes[g].level = x
		m.uniqueInsert(g)
	}
	newX := ly
	newY := lx[:0]
	// Independent level-x nodes sink to y with their children intact.
	for _, f := range indep {
		m.nodes[f].level = y
		m.uniqueInsert(f)
		newY = append(newY, f)
	}
	// Dependents are rewritten in place around fresh (or shared) inner nodes.
	// Parent-count bookkeeping: a dead dependent's edges are already
	// uncounted, so only live dependents move counts; incEdge before decEdge
	// avoids a transient death of a node shared between old and new children.
	for i := range deps {
		d := &deps[i]
		fLive := m.pc[d.f] > 0 || m.isExt(d.f)
		c0, c1 := m.nodes[d.f].low, m.nodes[d.f].high
		g0, new0 := m.swapMk(y, d.f00, d.f10)
		if new0 {
			m.pcNew(g0)
			newY = append(newY, g0)
		}
		g1, new1 := m.swapMk(y, d.f01, d.f11)
		if new1 {
			m.pcNew(g1)
			newY = append(newY, g1)
		}
		if fLive {
			m.incEdge(g0)
			m.incEdge(g1)
			m.decEdge(c0)
			m.decEdge(c1)
		}
		m.nodes[d.f] = node{level: x, low: g0, high: g1}
		m.uniqueInsert(d.f)
		newX = append(newX, d.f)
	}
	m.rl[x], m.rl[y] = newX, newY
}

// swapMk is mk for use inside a swap: same hash-consing and slot reuse, but
// it never grows the table (swapAdjacent pre-grows), never arms the GC or
// reorder triggers, and reports whether it allocated.
func (m *Manager) swapMk(level int32, low, high Node) (Node, bool) {
	if low == high {
		return low, false
	}
	h := hash3(uint64(level), uint64(low), uint64(high)) & m.uniqueMask
	for {
		slot := m.unique[h]
		if slot == 0 {
			break
		}
		n := &m.nodes[slot]
		if n.level == level && n.low == low && n.high == high {
			m.stats.UniqueHits++
			return slot, false
		}
		h = (h + 1) & m.uniqueMask
	}
	var idx Node
	if m.freeHead != 0 {
		idx = m.freeHead
		m.freeHead = m.nodes[idx].low
		m.freeCnt--
		m.nodes[idx] = node{level: level, low: low, high: high}
	} else {
		idx = Node(len(m.nodes))
		m.nodes = append(m.nodes, node{level: level, low: low, high: high})
	}
	m.unique[h] = idx
	m.stats.NodesAllocated++
	live := int64(len(m.nodes) - m.freeCnt)
	if live > m.stats.PeakLive {
		m.stats.PeakLive = live
	}
	if m.nodeBudget > 0 && live > m.nodeBudget {
		m.gcPending = true
		m.budgetHit = true
	}
	return idx, true
}

// uniqueInsert hashes an existing node slot into the unique table. The
// caller guarantees the triple is not already present.
func (m *Manager) uniqueInsert(n Node) {
	nd := m.nodes[n]
	h := hash3(uint64(nd.level), uint64(nd.low), uint64(nd.high)) & m.uniqueMask
	for m.unique[h] != 0 {
		h = (h + 1) & m.uniqueMask
	}
	m.unique[h] = n
}

// uniqueRemove deletes n's entry from the open-addressed table using
// backward-shift deletion, which keeps every remaining probe chain intact
// (a plain clear would break chains that probed past the hole).
func (m *Manager) uniqueRemove(n Node) {
	nd := m.nodes[n]
	h := hash3(uint64(nd.level), uint64(nd.low), uint64(nd.high)) & m.uniqueMask
	for m.unique[h] != n {
		if m.unique[h] == 0 {
			panic("bdd: internal: uniqueRemove of a node missing from the unique table")
		}
		h = (h + 1) & m.uniqueMask
	}
	i := h
	for {
		m.unique[i] = 0
		j := i
		for {
			j = (j + 1) & m.uniqueMask
			k := m.unique[j]
			if k == 0 {
				return
			}
			kd := m.nodes[k]
			home := hash3(uint64(kd.level), uint64(kd.low), uint64(kd.high)) & m.uniqueMask
			// k may fill the hole at i unless its home lies cyclically in
			// (i, j] — moving it then would strand it before its home.
			inRange := (j > i && home > i && home <= j) || (j < i && (home > i || home <= j))
			if !inRange {
				m.unique[i] = k
				i = j
				break
			}
		}
	}
}
