package bdd

// This file implements the core logical operations: Not, And, Or, Xor, the
// general if-then-else (ITE) combinator, and the derived operations built on
// them. All recursions are memoized in direct-mapped caches.
//
// Each public operation is a thin wrapper: a GC safe point (safe) that
// temp-roots the operands, a private recursive body, and a keep() that
// records the result in the recent-results root ring. The recursive bodies
// only ever call other private bodies, so a collection can never run while
// intermediate nodes live on the Go stack.

// Not returns the complement of f.
func (m *Manager) Not(f Node) Node {
	m.safe(f, False, False)
	return m.keep(m.notRec(f))
}

func (m *Manager) notRec(f Node) Node {
	switch f {
	case False:
		return True
	case True:
		return False
	}
	if r, ok := m.unLookup(opNot, f, 0); ok {
		return r
	}
	n := m.nodes[f]
	r := m.mk(n.level, m.notRec(n.low), m.notRec(n.high))
	m.unStore(opNot, f, 0, r)
	return r
}

// And returns the conjunction of f and g.
func (m *Manager) And(f, g Node) Node {
	m.safe(f, g, False)
	return m.keep(m.andRec(f, g))
}

func (m *Manager) andRec(f, g Node) Node {
	// Terminal cases.
	switch {
	case f == False || g == False:
		return False
	case f == True:
		return g
	case g == True:
		return f
	case f == g:
		return f
	}
	if f > g {
		f, g = g, f // canonical argument order for better cache reuse
	}
	if r, ok := m.binLookup(opAnd, f, g); ok {
		return r
	}
	nf, ng := m.nodes[f], m.nodes[g]
	top := nf.level
	if ng.level < top {
		top = ng.level
	}
	var r Node
	if m.shouldFork(top) {
		// Fork/join (Shared.Run regions only): the high branch becomes a
		// stealable opTask, the low branch runs inline, and the join happens
		// before the mk and the cache write below.
		f0, f1 := m.cofactor(f, top)
		g0, g1 := m.cofactor(g, top)
		ot := m.forkSpawn(opAnd, f1, g1, False)
		lo := m.andRec(f0, g0)
		r = m.mk(top, lo, m.forkJoin(ot))
	} else {
		switch {
		case nf.level == ng.level:
			r = m.mk(top, m.andRec(nf.low, ng.low), m.andRec(nf.high, ng.high))
		case nf.level < ng.level:
			r = m.mk(top, m.andRec(nf.low, g), m.andRec(nf.high, g))
		default:
			r = m.mk(top, m.andRec(f, ng.low), m.andRec(f, ng.high))
		}
	}
	m.binStore(opAnd, f, g, r)
	return r
}

// Or returns the disjunction of f and g.
func (m *Manager) Or(f, g Node) Node {
	m.safe(f, g, False)
	return m.keep(m.orRec(f, g))
}

func (m *Manager) orRec(f, g Node) Node {
	switch {
	case f == True || g == True:
		return True
	case f == False:
		return g
	case g == False:
		return f
	case f == g:
		return f
	}
	if f > g {
		f, g = g, f
	}
	if r, ok := m.binLookup(opOr, f, g); ok {
		return r
	}
	nf, ng := m.nodes[f], m.nodes[g]
	top := nf.level
	if ng.level < top {
		top = ng.level
	}
	var r Node
	if m.shouldFork(top) {
		f0, f1 := m.cofactor(f, top)
		g0, g1 := m.cofactor(g, top)
		ot := m.forkSpawn(opOr, f1, g1, False)
		lo := m.orRec(f0, g0)
		r = m.mk(top, lo, m.forkJoin(ot))
	} else {
		switch {
		case nf.level == ng.level:
			r = m.mk(top, m.orRec(nf.low, ng.low), m.orRec(nf.high, ng.high))
		case nf.level < ng.level:
			r = m.mk(top, m.orRec(nf.low, g), m.orRec(nf.high, g))
		default:
			r = m.mk(top, m.orRec(f, ng.low), m.orRec(f, ng.high))
		}
	}
	m.binStore(opOr, f, g, r)
	return r
}

// Xor returns the exclusive or of f and g.
func (m *Manager) Xor(f, g Node) Node {
	m.safe(f, g, False)
	return m.keep(m.xorRec(f, g))
}

func (m *Manager) xorRec(f, g Node) Node {
	switch {
	case f == False:
		return g
	case g == False:
		return f
	case f == True:
		return m.notRec(g)
	case g == True:
		return m.notRec(f)
	case f == g:
		return False
	}
	if f > g {
		f, g = g, f
	}
	if r, ok := m.binLookup(opXor, f, g); ok {
		return r
	}
	nf, ng := m.nodes[f], m.nodes[g]
	var r Node
	switch {
	case nf.level == ng.level:
		r = m.mk(nf.level, m.xorRec(nf.low, ng.low), m.xorRec(nf.high, ng.high))
	case nf.level < ng.level:
		r = m.mk(nf.level, m.xorRec(nf.low, g), m.xorRec(nf.high, g))
	default:
		r = m.mk(ng.level, m.xorRec(f, ng.low), m.xorRec(f, ng.high))
	}
	m.binStore(opXor, f, g, r)
	return r
}

// Diff returns f ∧ ¬g (set difference when BDDs encode sets).
func (m *Manager) Diff(f, g Node) Node {
	m.Ref(f)
	r := m.And(f, m.Not(g))
	m.Deref(f)
	return r
}

// Imp returns the implication f ⇒ g.
func (m *Manager) Imp(f, g Node) Node {
	m.Ref(g)
	r := m.Or(m.Not(f), g)
	m.Deref(g)
	return r
}

// Iff returns the biconditional f ⇔ g.
func (m *Manager) Iff(f, g Node) Node { return m.Not(m.Xor(f, g)) }

// ITE returns the if-then-else combinator: (f ∧ g) ∨ (¬f ∧ h).
func (m *Manager) ITE(f, g, h Node) Node {
	m.safe(f, g, h)
	return m.keep(m.iteRec(f, g, h))
}

func (m *Manager) iteRec(f, g, h Node) Node {
	// Terminal simplifications.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	case g == False && h == True:
		return m.notRec(f)
	}
	if r, ok := m.iteLookup(f, g, h); ok {
		return r
	}
	top := m.nodes[f].level
	if l := m.nodes[g].level; l < top {
		top = l
	}
	if l := m.nodes[h].level; l < top {
		top = l
	}
	f0, f1 := m.cofactor(f, top)
	g0, g1 := m.cofactor(g, top)
	h0, h1 := m.cofactor(h, top)
	r := m.mk(top, m.iteRec(f0, g0, h0), m.iteRec(f1, g1, h1))
	m.iteStore(f, g, h, r)
	return r
}

// cofactor returns the (low, high) cofactors of f with respect to the
// variable at the given level. If f's root is above that level, f is
// independent of it and both cofactors are f itself.
func (m *Manager) cofactor(f Node, level int32) (Node, Node) {
	n := m.nodes[f]
	if n.level != level {
		return f, f
	}
	return n.low, n.high
}

// cofVarRec returns one cofactor of f with respect to the variable at the
// given level, which — unlike cofactor's — may lie anywhere in the order,
// not just at f's root. which selects high (1) or low (0). This is what lets
// model picking walk variables in id order while the level order underneath
// is arbitrary: when the order is the identity the recursion never descends
// (the level is always at or above f's root), so it costs nothing extra.
func (m *Manager) cofVarRec(f Node, level int32, which uint32) Node {
	n := m.nodes[f]
	if m.IsTerminal(f) || n.level > level {
		return f
	}
	if n.level == level {
		if which == 1 {
			return n.high
		}
		return n.low
	}
	op := opCof0 + which
	if r, ok := m.unLookup(op, f, Node(level)); ok {
		return r
	}
	r := m.mk(n.level, m.cofVarRec(n.low, level, which), m.cofVarRec(n.high, level, which))
	m.unStore(op, f, Node(level), r)
	return r
}

// AndN returns the conjunction of all arguments (True for no arguments).
func (m *Manager) AndN(fs ...Node) Node {
	for _, f := range fs {
		m.Ref(f)
	}
	r := True
	for _, f := range fs {
		r = m.And(r, f)
		if r == False {
			break
		}
	}
	for _, f := range fs {
		m.Deref(f)
	}
	return r
}

// OrN returns the disjunction of all arguments (False for no arguments).
func (m *Manager) OrN(fs ...Node) Node {
	for _, f := range fs {
		m.Ref(f)
	}
	r := False
	for _, f := range fs {
		r = m.Or(r, f)
		if r == True {
			break
		}
	}
	for _, f := range fs {
		m.Deref(f)
	}
	return r
}

// Implies reports whether f ⇒ g holds for all assignments, i.e. the set
// denoted by f is a subset of the set denoted by g.
func (m *Manager) Implies(f, g Node) bool {
	return m.Diff(f, g) == False
}

// --- cache plumbing -------------------------------------------------------

func (m *Manager) binLookup(op uint32, f, g Node) (Node, bool) {
	e := &m.bin[hash3(uint64(op), uint64(f), uint64(g))&uint64(len(m.bin)-1)]
	if e.epoch == m.cacheEpoch && e.op == op && e.f == f && e.g == g {
		m.stats.CacheHits++
		return e.res, true
	}
	m.stats.CacheMisses++
	return 0, false
}

func (m *Manager) binStore(op uint32, f, g, res Node) {
	e := &m.bin[hash3(uint64(op), uint64(f), uint64(g))&uint64(len(m.bin)-1)]
	*e = binEntry{f: f, g: g, res: res, op: op, epoch: m.cacheEpoch}
}

func (m *Manager) unLookup(op uint32, f, param Node) (Node, bool) {
	e := &m.un[hash3(uint64(op), uint64(f), uint64(param))&uint64(len(m.un)-1)]
	if e.epoch == m.cacheEpoch && e.op == op && e.f == f && e.param == param {
		m.stats.CacheHits++
		return e.res, true
	}
	m.stats.CacheMisses++
	return 0, false
}

func (m *Manager) unStore(op uint32, f, param, res Node) {
	e := &m.un[hash3(uint64(op), uint64(f), uint64(param))&uint64(len(m.un)-1)]
	*e = unEntry{f: f, param: param, res: res, op: op, epoch: m.cacheEpoch}
}

func (m *Manager) iteLookup(f, g, h Node) (Node, bool) {
	e := &m.ite[hash3(uint64(f), uint64(g), uint64(h))&uint64(len(m.ite)-1)]
	if e.epoch == m.cacheEpoch && e.f == f && e.g == g && e.h == h {
		m.stats.CacheHits++
		return e.res, true
	}
	m.stats.CacheMisses++
	return 0, false
}

func (m *Manager) iteStore(f, g, h, res Node) {
	e := &m.ite[hash3(uint64(f), uint64(g), uint64(h))&uint64(len(m.ite)-1)]
	*e = iteEntry{f: f, g: g, h: h, res: res, epoch: m.cacheEpoch}
}

func (m *Manager) relLookup(f, g, cube Node) (Node, bool) {
	e := &m.rel[hash3(uint64(f), uint64(g), uint64(cube))&uint64(len(m.rel)-1)]
	if e.epoch == m.cacheEpoch && e.f == f && e.g == g && e.cube == cube {
		m.stats.CacheHits++
		return e.res, true
	}
	m.stats.CacheMisses++
	return 0, false
}

func (m *Manager) relStore(f, g, cube, res Node) {
	e := &m.rel[hash3(uint64(f), uint64(g), uint64(cube))&uint64(len(m.rel)-1)]
	*e = relEntry{f: f, g: g, cube: cube, res: res, epoch: m.cacheEpoch}
}

// Restrict computes Coudert–Madre's generalized cofactor f⇓c ("restrict"):
// a function that agrees with f on every assignment satisfying the care-set
// c and is chosen to have a small BDD elsewhere. Useful to compact
// predicates that are only ever evaluated under an invariant or a
// reachable-set constraint. c must not be False.
func (m *Manager) Restrict(f, c Node) Node {
	m.safe(f, c, False)
	return m.keep(m.restrictRec(f, c))
}

func (m *Manager) restrictRec(f, c Node) Node {
	switch {
	case c == True || m.IsTerminal(f):
		return f
	case c == False:
		panic("bdd: Restrict with empty care set")
	}
	if r, ok := m.binLookup(opSimplify, f, c); ok {
		return r
	}
	nc := m.nodes[c]
	nf := m.nodes[f]
	var r Node
	switch {
	case nc.level < nf.level:
		switch {
		case nc.low == False:
			r = m.restrictRec(f, nc.high)
		case nc.high == False:
			r = m.restrictRec(f, nc.low)
		default:
			r = m.mk(nc.level, m.restrictRec(f, nc.low), m.restrictRec(f, nc.high))
		}
	case nc.level == nf.level:
		switch {
		case nc.low == False:
			r = m.restrictRec(nf.high, nc.high)
		case nc.high == False:
			r = m.restrictRec(nf.low, nc.low)
		default:
			r = m.mk(nf.level, m.restrictRec(nf.low, nc.low), m.restrictRec(nf.high, nc.high))
		}
	default:
		r = m.mk(nf.level, m.restrictRec(nf.low, c), m.restrictRec(nf.high, c))
	}
	m.binStore(opSimplify, f, c, r)
	return r
}
