package witness

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/program"
	"repro/internal/symbolic"
)

// This file is the certificate checker: an explicit-state walker that
// replays a trace step-by-step against the compiled program, independently
// of the fixpoints that produced it. Membership of one concrete transition
// in a relation is decided by pointwise BDD evaluation (a single root-to-leaf
// walk under a total assignment — no symbolic set operations), and the
// structural claims (group membership, write legality, cycle closure) are
// checked directly on the named-variable maps. A trace that passes Certify
// is a genuine computation demonstrating its claim; a fabricated or stale
// trace fails with a step-indexed error.

// evalState evaluates a state predicate at one concrete state by walking the
// BDD under a total assignment of the current-state bits.
func evalState(s *symbolic.Space, f bdd.Node, state map[string]int) bool {
	return s.M.Eval(f, assignment(s, state, nil))
}

// evalTrans evaluates a transition predicate at one concrete (from, to) pair.
func evalTrans(s *symbolic.Space, f bdd.Node, from, to map[string]int) bool {
	return s.M.Eval(f, assignment(s, from, to))
}

// assignment builds the level-indexed assignment for cur (and, when next is
// non-nil, next) bits.
func assignment(s *symbolic.Space, cur, next map[string]int) []bool {
	out := make([]bool, s.M.NumVars())
	for _, v := range s.Vars {
		val := cur[v.Name]
		for b, lvl := range v.CurLevels() {
			out[lvl] = val&(1<<b) != 0
		}
		if next != nil {
			nval := next[v.Name]
			for b, lvl := range v.NextLevels() {
				out[lvl] = nval&(1<<b) != 0
			}
		}
	}
	return out
}

// checkState validates that state is a total in-domain assignment of the
// space's variables.
func checkState(s *symbolic.Space, state map[string]int) error {
	if len(state) != len(s.Vars) {
		return fmt.Errorf("state assigns %d variable(s), model has %d", len(state), len(s.Vars))
	}
	for _, v := range s.Vars {
		val, ok := state[v.Name]
		if !ok {
			return fmt.Errorf("state misses variable %q", v.Name)
		}
		if val < 0 || val >= v.Domain {
			return fmt.Errorf("value %d of %q outside domain [0,%d)", val, v.Name, v.Domain)
		}
	}
	return nil
}

// Certify replays tr against the compiled program c: every program step must
// be a transition of trans, every fault step a transition of c.Fault, and the
// trace's claim (its Kind) must actually hold — the safety violation occurs,
// the deadlock state is deadlocked outside inv, the livelock closes a cycle
// outside inv, the recovery re-enters inv, the unrealizable transition's
// group member is genuinely absent. inv is the invariant the trace's claims
// are relative to (the repaired invariant for repair results, the original
// one when checking the intolerant program).
func Certify(c *program.Compiled, trans, inv bdd.Node, tr *Trace) error {
	s := c.Space
	m := s.M
	sc := m.Protect()
	defer sc.Release()
	trans = sc.Keep(m.And(trans, s.ValidTrans()))
	sc.Keep(inv)

	if tr.Kind == KindUnrealizable {
		return certifyUnrealizable(c, trans, tr)
	}
	if len(tr.Steps) == 0 {
		return fmt.Errorf("witness: %s trace has no steps", tr.Kind)
	}

	badState, badStep := -1, -1
	for i, st := range tr.Steps {
		if err := checkState(s, st.State); err != nil {
			return fmt.Errorf("witness: step %d: %w", i, err)
		}
		if i == 0 {
			if st.Kind != StepInit {
				return fmt.Errorf("witness: step 0 must be %q, got %q", StepInit, st.Kind)
			}
		} else {
			prev := tr.Steps[i-1].State
			switch st.Kind {
			case StepProgram:
				if !evalTrans(s, trans, prev, st.State) {
					return fmt.Errorf("witness: step %d: not a program transition", i)
				}
			case StepFault:
				if !evalTrans(s, c.Fault, prev, st.State) {
					return fmt.Errorf("witness: step %d: not a fault transition", i)
				}
			default:
				return fmt.Errorf("witness: step %d: unknown step kind %q", i, st.Kind)
			}
			if badStep < 0 && evalTrans(s, c.BadTrans, prev, st.State) {
				badStep = i
			}
		}
		if badState < 0 && evalState(s, c.BadStates, st.State) {
			badState = i
		}
	}

	first, last := tr.Steps[0].State, tr.Steps[len(tr.Steps)-1].State
	switch tr.Kind {
	case KindSafety:
		if !evalState(s, inv, first) {
			return fmt.Errorf("witness: safety trace does not start in the invariant")
		}
		if badState < 0 && badStep < 0 {
			return fmt.Errorf("witness: safety trace hits no bad state and takes no bad transition")
		}
	case KindDeadlock:
		if !evalState(s, inv, first) {
			return fmt.Errorf("witness: deadlock trace does not start in the invariant")
		}
		if evalState(s, inv, last) {
			return fmt.Errorf("witness: claimed deadlock state is inside the invariant")
		}
		if m.And(stateOf(s, last), trans) != bdd.False {
			return fmt.Errorf("witness: claimed deadlock state has an outgoing program transition")
		}
	case KindLivelock:
		at := -1
		for i := 0; i < len(tr.Steps)-1; i++ {
			if stateKey(tr.Steps[i].State) == stateKey(last) {
				at = i
				break
			}
		}
		if at < 0 {
			return fmt.Errorf("witness: livelock trace closes no cycle")
		}
		for i := at; i < len(tr.Steps); i++ {
			if evalState(s, inv, tr.Steps[i].State) {
				return fmt.Errorf("witness: livelock cycle passes through the invariant at step %d", i)
			}
			if i > at && tr.Steps[i].Kind != StepProgram {
				return fmt.Errorf("witness: livelock cycle takes a non-program step at %d", i)
			}
		}
	case KindRecovery:
		if !evalState(s, inv, first) {
			return fmt.Errorf("witness: recovery trace does not start in the invariant")
		}
		if !evalState(s, inv, last) {
			return fmt.Errorf("witness: recovery trace does not re-enter the invariant")
		}
		// The demonstration must involve at least one fault; an excursion is
		// not required — a fault masked inside the invariant (excursion of
		// length zero) is the strongest form of recovery.
		if tr.Faults() == 0 {
			return fmt.Errorf("witness: recovery trace takes no fault step")
		}
		// The liveness half demonstrated; the safety half of masking must
		// hold along the way.
		if badState >= 0 {
			return fmt.Errorf("witness: recovery trace visits a bad state at step %d", badState)
		}
		if badStep >= 0 {
			return fmt.Errorf("witness: recovery trace takes a bad transition at step %d", badStep)
		}
	default:
		return fmt.Errorf("witness: unknown trace kind %q", tr.Kind)
	}
	return nil
}

// certifyUnrealizable checks the structural claim of an unrealizability
// witness directly on the named-variable maps.
func certifyUnrealizable(c *program.Compiled, trans bdd.Node, tr *Trace) error {
	s := c.Space
	if tr.Move == nil {
		return fmt.Errorf("witness: unrealizable trace carries no transition")
	}
	for _, st := range []map[string]int{tr.Move.From, tr.Move.To} {
		if err := checkState(s, st); err != nil {
			return fmt.Errorf("witness: unrealizable move: %w", err)
		}
	}
	if !evalTrans(s, trans, tr.Move.From, tr.Move.To) {
		return fmt.Errorf("witness: claimed unrealizable transition is not in the relation")
	}
	if tr.Process == "" || tr.Member == nil {
		// Weaker claim: no process can write the transition at all.
		for _, p := range c.Procs {
			if writeLegal(p, tr.Move) {
				return fmt.Errorf("witness: process %s could write the transition", p.Name)
			}
		}
		return nil
	}
	var proc *program.CompiledProc
	for _, p := range c.Procs {
		if p.Name == tr.Process {
			proc = p
			break
		}
	}
	if proc == nil {
		return fmt.Errorf("witness: unknown process %q", tr.Process)
	}
	for _, st := range []map[string]int{tr.Member.From, tr.Member.To} {
		if err := checkState(s, st); err != nil {
			return fmt.Errorf("witness: unrealizable member: %w", err)
		}
	}
	if !writeLegal(proc, tr.Move) {
		return fmt.Errorf("witness: move violates %s's write restriction", proc.Name)
	}
	if !inGroup(s, proc, tr.Move, tr.Member) {
		return fmt.Errorf("witness: member is not in %s's group of the move", proc.Name)
	}
	if evalTrans(s, trans, tr.Member.From, tr.Member.To) {
		return fmt.Errorf("witness: claimed missing member is present in the relation")
	}
	return nil
}

// writeLegal reports whether the move leaves every variable outside the
// process's write set unchanged.
func writeLegal(p *program.CompiledProc, mv *Move) bool {
	for name, v := range mv.From {
		if !p.Write[name] && mv.To[name] != v {
			return false
		}
	}
	return true
}

// inGroup reports whether member belongs to the process's read-restriction
// group of move (Section III-B): it agrees with move on every readable
// variable (current and next value) and leaves every unreadable variable
// unchanged.
func inGroup(s *symbolic.Space, p *program.CompiledProc, move, member *Move) bool {
	for _, v := range s.Vars {
		if p.Read[v.Name] {
			if member.From[v.Name] != move.From[v.Name] || member.To[v.Name] != move.To[v.Name] {
				return false
			}
		} else if member.From[v.Name] != member.To[v.Name] {
			return false
		}
	}
	return true
}

// stateOf builds the BDD point of a full assignment (used only for the
// deadlock check's one-step successor test).
func stateOf(s *symbolic.Space, state map[string]int) bdd.Node {
	m := s.M
	out := bdd.True
	for _, v := range s.Vars {
		out = m.And(out, v.EqConst(state[v.Name]))
	}
	return out
}
