package witness

import (
	"context"
	"fmt"

	"repro/internal/bdd"
	"repro/internal/program"
)

// part is one labeled slice of the transition relation used for frontier
// search and step attribution.
type part struct {
	rel  bdd.Node
	kind StepKind
	by   string
}

// Extractor reconstructs concrete traces from the symbolic fixpoints of one
// compiled program. All operations run on the owning manager; extraction is
// deterministic for a given (model, result) pair regardless of how the result
// was computed (canonical BDDs plus fixed branch and partition order).
type Extractor struct {
	c *program.Compiled
}

// New builds an extractor over c.
func New(c *program.Compiled) *Extractor { return &Extractor{c: c} }

// maxTraceSteps bounds path reconstruction as a safety net; the frontier
// layers of any terminating fixpoint are far fewer on the paper's models.
const maxTraceSteps = 1 << 14

// PickState selects one concrete state from a nonempty state predicate,
// deterministically: the satisfying cube that always prefers the low branch,
// with don't-care bits resolved to 0. It returns nil when the set is empty.
func (x *Extractor) PickState(set bdd.Node) map[string]int {
	s := x.c.Space
	m := s.M
	valid := m.And(set, s.ValidCur())
	cube := m.PickCube(valid)
	if cube == nil {
		return nil
	}
	out := make(map[string]int, len(s.Vars))
	for _, v := range s.Vars {
		out[v.Name] = v.DecodeCube(cube)
	}
	return out
}

// stateNode builds the BDD point of a full assignment.
func (x *Extractor) stateNode(state map[string]int) bdd.Node {
	s := x.c.Space
	m := s.M
	out := bdd.True
	for _, v := range s.Vars {
		out = m.And(out, v.EqConst(state[v.Name]))
	}
	return out
}

// parts builds the labeled partition list: per-process slices of trans (each
// process's maximal realizable subset, mirroring the verifier's partitioning)
// followed by an anonymous remainder slice (transitions of trans no single
// process realizes — they still belong to the relation being witnessed), and
// finally the per-action fault slices.
func (x *Extractor) parts(sc *bdd.Scope, trans bdd.Node, withFaults bool) []part {
	c := x.c
	m := c.Space.M
	trans = sc.Keep(m.And(trans, c.Space.ValidTrans()))
	var out []part
	union := sc.Slot(bdd.False)
	for _, p := range c.Procs {
		// Each slice is used for the caller's whole reconstruction, so it is
		// rooted in the caller's scope.
		sub := sc.Keep(p.MaxRealizableSubset(trans))
		union.Set(m.Or(union.Node(), sub))
		if sub != bdd.False {
			out = append(out, part{rel: sub, kind: StepProgram, by: p.Name})
		}
	}
	if rest := m.Diff(trans, union.Node()); rest != bdd.False {
		out = append(out, part{rel: sc.Keep(rest), kind: StepProgram})
	}
	if withFaults {
		for i, f := range c.FaultParts {
			name := ""
			if i < len(c.Def.Faults) {
				name = c.Def.Faults[i].Name
			}
			out = append(out, part{rel: f, kind: StepFault, by: name})
		}
	}
	return out
}

// forwardLayers runs a breadth-first frontier fixpoint from init under the
// union of the parts, recording one frontier layer per step, and stops as
// soon as the reached set intersects stop (or at the fixpoint). The context
// is checked every layer, so a caller's deadline interrupts a long
// reconstruction even after the main fixpoint already finished.
func (x *Extractor) forwardLayers(ctx context.Context, sc *bdd.Scope, init bdd.Node, parts []part, stop bdd.Node) ([]bdd.Node, error) {
	s := x.c.Space
	m := s.M
	sc.Keep(stop)
	reachedS := sc.Slot(sc.Keep(m.And(init, s.ValidCur())))
	layers := []bdd.Node{reachedS.Node()}
	nextS := sc.Slot(bdd.False)
	for len(layers) < maxTraceSteps {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("witness: extraction interrupted: %w", err)
		}
		if m.And(reachedS.Node(), stop) != bdd.False {
			return layers, nil
		}
		frontier := layers[len(layers)-1]
		nextS.Set(bdd.False)
		for _, p := range parts {
			nextS.Set(m.Or(nextS.Node(), s.Image(frontier, p.rel)))
		}
		next := nextS.Set(m.Diff(nextS.Node(), reachedS.Node()))
		if next == bdd.False {
			return layers, nil
		}
		reachedS.Set(m.Or(reachedS.Node(), next))
		// Every layer is walked back through later; root them all.
		layers = append(layers, sc.Keep(next))
	}
	return layers, nil
}

// walkBack reconstructs a concrete path ending in the given state, which must
// lie in layers[k]: one predecessor per earlier layer, popped off the frontier
// stack. It returns the steps in forward order, labeling each step with the
// first partition (in fixed order) containing its transition.
func (x *Extractor) walkBack(ctx context.Context, layers []bdd.Node, parts []part, k int, state map[string]int) ([]Step, error) {
	s := x.c.Space
	m := s.M
	steps := []Step{{Kind: StepInit, State: cloneState(state)}} // reversed below
	cur := state
	for i := k - 1; i >= 0; i-- {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("witness: extraction interrupted: %w", err)
		}
		curBDD := x.stateNode(cur)
		var prev map[string]int
		var via part
		for _, p := range parts {
			pre := m.And(s.Preimage(curBDD, p.rel), layers[i])
			if pre == bdd.False {
				continue
			}
			prev = x.PickState(pre)
			via = p
			break
		}
		if prev == nil {
			return nil, fmt.Errorf("witness: no predecessor in layer %d (broken frontier stack)", i)
		}
		// The step into cur carries the label of the partition used.
		steps[len(steps)-1].Kind = via.kind
		steps[len(steps)-1].By = via.by
		steps = append(steps, Step{Kind: StepInit, State: cloneState(prev)})
		cur = prev
	}
	// Reverse into forward order.
	for l, r := 0, len(steps)-1; l < r; l, r = l+1, r-1 {
		steps[l], steps[r] = steps[r], steps[l]
	}
	return steps, nil
}

// tracePath reconstructs one shortest concrete path from init to target under
// the labeled parts: a frontier-stack BFS followed by backward predecessor
// popping. It returns nil (no error) when target is unreachable.
func (x *Extractor) tracePath(ctx context.Context, sc *bdd.Scope, init bdd.Node, parts []part, target bdd.Node) ([]Step, error) {
	m := x.c.Space.M
	layers, err := x.forwardLayers(ctx, sc, init, parts, target)
	if err != nil {
		return nil, err
	}
	k := -1
	for i, l := range layers {
		if m.And(l, target) != bdd.False {
			k = i
			break
		}
	}
	if k < 0 {
		return nil, nil
	}
	state := x.PickState(m.And(layers[k], target))
	return x.walkBack(ctx, layers, parts, k, state)
}

// transitionIn reports whether the concrete transition (from, to) belongs to
// rel, by pointwise evaluation (no symbolic set operations).
func (x *Extractor) transitionIn(rel bdd.Node, from, to map[string]int) bool {
	return evalTrans(x.c.Space, rel, from, to)
}

// Safety extracts a safety-violation witness: a computation starting in init
// that, interleaving trans steps with fault steps, reaches a bad state or
// executes a bad transition. It returns nil when no violation is reachable
// (the corresponding check passed).
func (x *Extractor) Safety(ctx context.Context, trans, init bdd.Node) (*Trace, error) {
	c := x.c
	s := c.Space
	m := s.M
	sc := m.Protect()
	defer sc.Release()
	parts := x.parts(sc, trans, true)

	// Sources of bad transitions of the program-or-fault relation.
	combinedS := sc.Slot(bdd.False)
	for _, p := range parts {
		combinedS.Set(m.Or(combinedS.Node(), p.rel))
	}
	badStep := sc.Keep(m.And(combinedS.Node(), c.BadTrans))
	badSrc := m.AndExists(badStep, s.ValidTrans(), s.NextCube())
	target := sc.Keep(m.Or(c.BadStates, badSrc))

	steps, err := x.tracePath(ctx, sc, init, parts, target)
	if err != nil || steps == nil {
		return nil, err
	}
	last := steps[len(steps)-1].State
	lastBDD := x.stateNode(last)
	detail := ""
	if m.And(lastBDD, c.BadStates) != bdd.False {
		detail = fmt.Sprintf("reaches a bad state (Sf_bs) after %d step(s)", len(steps)-1)
	} else {
		// Extend by one bad transition from the final state.
		ext := false
		for _, p := range parts {
			hit := m.And(badStep, m.And(lastBDD, p.rel))
			if hit == bdd.False {
				continue
			}
			nxt := x.PickState(s.Unprime(m.AndExists(hit, s.ValidTrans(), s.CurCube())))
			steps = append(steps, Step{Kind: p.kind, By: p.by, State: nxt})
			ext = true
			break
		}
		if !ext {
			return nil, fmt.Errorf("witness: bad-transition source has no bad outgoing step (inconsistent relation)")
		}
		detail = fmt.Sprintf("executes a bad transition (Sf_bt) at step %d", len(steps)-1)
	}
	return &Trace{Kind: KindSafety, Detail: detail, Steps: steps}, nil
}

// Deadlock extracts a witness for a reachable deadlock: a computation from
// init (interleaving trans and fault steps) to a state of dead, which the
// caller asserts has no outgoing trans step. It returns nil when no dead
// state is reachable.
func (x *Extractor) Deadlock(ctx context.Context, trans, init, dead bdd.Node) (*Trace, error) {
	sc := x.c.Space.M.Protect()
	defer sc.Release()
	parts := x.parts(sc, trans, true)
	steps, err := x.tracePath(ctx, sc, init, parts, dead)
	if err != nil || steps == nil {
		return nil, err
	}
	tr := &Trace{Kind: KindDeadlock, Steps: steps}
	tr.Detail = fmt.Sprintf("deadlock outside the invariant after %d step(s), %d fault(s)",
		len(steps)-1, tr.Faults())
	return tr, nil
}

// Livelock extracts a witness for a non-recovering cycle: a computation from
// init into the cyclic set (states outside the invariant from which a
// program-only infinite path avoids the invariant forever), extended along
// cyclic program steps until a state repeats. It returns nil when cyclic is
// unreachable.
func (x *Extractor) Livelock(ctx context.Context, trans, init, cyclic bdd.Node) (*Trace, error) {
	s := x.c.Space
	m := s.M
	sc := m.Protect()
	defer sc.Release()
	sc.Keep(cyclic) // read on every reconstruction step below
	parts := x.parts(sc, trans, true)
	steps, err := x.tracePath(ctx, sc, init, parts, cyclic)
	if err != nil || steps == nil {
		return nil, err
	}
	// Follow cyclic-to-cyclic program steps until a state repeats. The
	// cyclic set is a greatest fixpoint under exactly that edge relation, so
	// a successor inside the set always exists and the finite set forces a
	// repeat.
	progParts := x.parts(sc, trans, false)
	seen := map[string]int{stateKey(steps[len(steps)-1].State): len(steps) - 1}
	cur := steps[len(steps)-1].State
	for len(steps) < maxTraceSteps {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("witness: extraction interrupted: %w", err)
		}
		curBDD := x.stateNode(cur)
		var nxt map[string]int
		var via part
		for _, p := range progParts {
			img := m.And(s.Image(curBDD, p.rel), cyclic)
			if img == bdd.False {
				continue
			}
			nxt = x.PickState(img)
			via = p
			break
		}
		if nxt == nil {
			return nil, fmt.Errorf("witness: cyclic state has no successor in the cyclic set")
		}
		steps = append(steps, Step{Kind: via.kind, By: via.by, State: nxt})
		cur = nxt
		if at, ok := seen[stateKey(nxt)]; ok {
			tr := &Trace{Kind: KindLivelock, Steps: steps}
			tr.Detail = fmt.Sprintf("cycle outside the invariant: step %d revisits step %d",
				len(steps)-1, at)
			return tr, nil
		}
		seen[stateKey(nxt)] = len(steps) - 1
	}
	return nil, fmt.Errorf("witness: livelock reconstruction exceeded %d steps", maxTraceSteps)
}

// Unrealizable extracts a witness that trans does not decompose into
// per-process realizable sets (Definition 20): a transition outside every
// process's maximal realizable subset, together with the group member whose
// absence from trans betrays it for the write-capable process. It returns
// nil when trans is program-realizable.
func (x *Extractor) Unrealizable(ctx context.Context, trans bdd.Node) (*Trace, error) {
	c := x.c
	s := c.Space
	m := s.M
	sc := m.Protect()
	defer sc.Release()
	d := sc.Keep(m.And(trans, s.ValidTrans()))
	union := sc.Slot(bdd.False)
	for _, p := range c.Procs {
		union.Set(m.Or(union.Node(), p.MaxRealizableSubset(d)))
	}
	resid := sc.Keep(m.Diff(d, union.Node()))
	if resid == bdd.False {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("witness: extraction interrupted: %w", err)
	}
	move := x.pickMove(resid)
	moveBDD, _ := s.Transition(move.From, move.To)
	sc.Keep(moveBDD)
	for _, p := range c.Procs {
		// Only a process that could write this transition can be betrayed by
		// its group; find the member the relation is missing.
		if m.And(moveBDD, p.WriteOK) == bdd.False {
			continue
		}
		missing := m.Diff(p.Group(moveBDD), d)
		if missing == bdd.False {
			continue
		}
		member := x.pickMove(missing)
		return &Trace{
			Kind:    KindUnrealizable,
			Detail:  fmt.Sprintf("process %s cannot realize the transition: a read-restriction group member is absent", p.Name),
			Process: p.Name,
			Move:    &move,
			Member:  &member,
		}, nil
	}
	return &Trace{
		Kind:   KindUnrealizable,
		Detail: "transition respects no process's write restriction",
		Move:   &move,
	}, nil
}

// pickMove selects one concrete transition from a nonempty transition
// predicate, deterministically.
func (x *Extractor) pickMove(rel bdd.Node) Move {
	s := x.c.Space
	m := s.M
	cube := m.PickCube(m.And(rel, s.ValidTrans()))
	from := make(map[string]int, len(s.Vars))
	to := make(map[string]int, len(s.Vars))
	for _, v := range s.Vars {
		from[v.Name] = v.DecodeCube(cube)
		to[v.Name] = v.DecodeNextCube(cube)
	}
	return Move{From: from, To: to}
}

// Demonstration-size bounds. A recovery demonstration is pedagogical: a
// short excursion and a short convergence tail explain the repair as well as
// a hundred-step one, while the full rank fixpoint over a 10⁸-state span can
// dwarf the synthesis it explains. Drift is capped at maxDemoDrift extra
// fault layers, and rank layers are grown lazily — only until the excursion
// is covered or maxDemoRank layers exist (growing further only when the
// excursion has no ranked state yet). Both bounds are fixed constants, so
// extraction stays deterministic.
const (
	maxDemoDrift = 4
	maxDemoRank  = 12
)

// rankTable is the lazily grown backward rank decomposition toward the
// invariant: ranks[d] holds the states whose shortest program path to the
// invariant has length d (within the span). It depends only on
// (trans, inv, span), so RecoveryDemos shares one table across fault
// indices; full marks the fixpoint.
type rankTable struct {
	sc     *bdd.Scope // roots the layers for the table's lifetime
	ranks  []bdd.Node
	ranked bdd.Node
	full   bool
}

// extendRanks grows rt by one layer; it reports false at the fixpoint.
func (x *Extractor) extendRanks(rt *rankTable, progParts []part, span bdd.Node) bool {
	s := x.c.Space
	m := s.M
	if rt.full {
		return false
	}
	next := bdd.False
	for _, p := range progParts {
		next = m.Or(next, s.Preimage(rt.ranks[len(rt.ranks)-1], p.rel))
	}
	next = m.And(m.Diff(next, rt.ranked), span)
	if next == bdd.False {
		rt.full = true
		return false
	}
	rt.ranks = append(rt.ranks, rt.sc.Keep(next))
	rt.ranked = rt.sc.Keep(m.Or(rt.ranked, next))
	return true
}

// Recovery extracts a recovery demonstration for a repaired program: a
// computation that starts inside inv, leaves it via the fault action with
// the given index (invariant closure guarantees only faults can leave),
// optionally drifts further on subsequent faults, and then converges back to
// inv via program steps of trans — greedily following the breadth-first rank
// toward the invariant, so convergence is structural, not lucky. It returns
// nil when fault faultIndex cannot leave the invariant.
func (x *Extractor) Recovery(ctx context.Context, trans, inv, span bdd.Node, faultIndex int) (*Trace, error) {
	return x.recovery(ctx, trans, inv, span, faultIndex, nil)
}

func (x *Extractor) recovery(ctx context.Context, trans, inv, span bdd.Node, faultIndex int, rt *rankTable) (*Trace, error) {
	c := x.c
	s := c.Space
	m := s.M
	if faultIndex < 0 || faultIndex >= len(c.FaultParts) {
		return nil, fmt.Errorf("witness: fault index %d out of range [0,%d)", faultIndex, len(c.FaultParts))
	}
	sc := m.Protect()
	defer sc.Release()
	inv = sc.Keep(m.And(inv, s.ValidCur()))
	span = sc.Keep(m.And(span, s.ValidCur()))
	progParts := x.parts(sc, trans, false)

	// Departure: the chosen fault's one-step exits from the invariant, then
	// further fault drift within the span, layer by layer (capped — see
	// maxDemoDrift).
	entry := sc.Keep(m.AndN(s.Image(inv, c.FaultParts[faultIndex]), m.Not(inv), span))
	if entry == bdd.False {
		// The fault cannot leave the invariant. If it is enabled there at
		// all, that containment is itself the strongest demonstration: the
		// excursion has length zero (see containedDemo). Otherwise the fault
		// contributes no witness.
		return x.containedDemo(ctx, sc, progParts, inv, faultIndex)
	}
	faultParts := x.parts(sc, bdd.False, true)
	outLayers := []bdd.Node{entry}
	outReachedS := sc.Slot(entry)
	for len(outLayers) <= maxDemoDrift {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("witness: extraction interrupted: %w", err)
		}
		frontier := outLayers[len(outLayers)-1]
		next := bdd.False
		for _, p := range faultParts {
			next = m.Or(next, s.Image(frontier, p.rel))
		}
		next = m.AndN(m.Diff(next, outReachedS.Node()), m.Not(inv), span)
		if next == bdd.False {
			break
		}
		outLayers = append(outLayers, sc.Keep(next))
		outReachedS.Set(m.Or(outReachedS.Node(), next))
	}
	outReached := outReachedS.Node()

	// Grow the rank layers until the excursion is fully covered or
	// maxDemoRank layers exist — and, past the cap, only until the excursion
	// has at least one ranked state (guaranteed to terminate for a verified
	// repair: every span state has finite rank).
	if rt == nil {
		rt = &rankTable{sc: sc}
	}
	if rt.ranks == nil {
		rt.ranks, rt.ranked = []bdd.Node{rt.sc.Keep(inv)}, rt.sc.Keep(inv)
	}
	for !rt.full {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("witness: extraction interrupted: %w", err)
		}
		covered := m.Diff(outReached, rt.ranked) == bdd.False
		if covered {
			break
		}
		if len(rt.ranks) > maxDemoRank && m.And(outReached, rt.ranked) != bdd.False {
			break
		}
		x.extendRanks(rt, progParts, span)
	}

	// Target: among the fault-reachable excursion states, the one with the
	// deepest rank not exceeding the cap — the most instructive bounded
	// demonstration; past-cap ranks are a fallback for excursions whose every
	// state recovers slowly.
	ranks := rt.ranks
	target, targetRank := bdd.False, 0
	top := len(ranks) - 1
	if top > maxDemoRank {
		top = maxDemoRank
	}
	for d := top; d >= 1; d-- {
		if hit := m.And(outReached, ranks[d]); hit != bdd.False {
			target, targetRank = hit, d
			break
		}
	}
	if target == bdd.False {
		for d := maxDemoRank + 1; d < len(ranks); d++ {
			if hit := m.And(outReached, ranks[d]); hit != bdd.False {
				target, targetRank = hit, d
				break
			}
		}
	}
	if target == bdd.False {
		// Every state this fault can reach converges only through states the
		// rank layers do not cover (cannot happen for a verified repair).
		return nil, fmt.Errorf("witness: fault %d reaches no ranked excursion state", faultIndex)
	}
	sc.Keep(target)

	// Reconstruct the fault prefix through the excursion layers.
	k := -1
	for i, l := range outLayers {
		if m.And(l, target) != bdd.False {
			k = i
			break
		}
	}
	state := x.PickState(m.And(outLayers[k], target))
	steps, err := x.walkBack(ctx, outLayers, faultParts, k, state)
	if err != nil {
		return nil, err
	}
	// Prepend the invariant start state via the chosen fault action.
	firstBDD := x.stateNode(steps[0].State)
	start := x.PickState(m.And(s.Preimage(firstBDD, c.FaultParts[faultIndex]), inv))
	if start == nil {
		return nil, fmt.Errorf("witness: lost the invariant predecessor of the fault entry")
	}
	name := ""
	if faultIndex < len(c.Def.Faults) {
		name = c.Def.Faults[faultIndex].Name
	}
	steps[0].Kind, steps[0].By = StepFault, name
	steps = append([]Step{{Kind: StepInit, State: start}}, steps...)

	// Convergence: greedy rank descent — from a rank-d state, step to the
	// lowest-ranked program successor. Some successor always sits at rank
	// d-1 (ranks are shortest-path layers), so scanning below the current
	// rank suffices and the rank strictly decreases: the walk reaches the
	// invariant in at most targetRank steps.
	cur, curRank := steps[len(steps)-1].State, targetRank
	curS := sc.Slot(bdd.False)
	for {
		curBDD := curS.Set(x.stateNode(cur))
		if m.And(curBDD, inv) != bdd.False {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("witness: extraction interrupted: %w", err)
		}
		var nxt map[string]int
		var via part
	descend:
		for d := 0; d < curRank && d < len(ranks); d++ {
			for _, p := range progParts {
				img := m.And(s.Image(curBDD, p.rel), ranks[d])
				if img == bdd.False {
					continue
				}
				nxt = x.PickState(img)
				via = p
				curRank = d
				break descend
			}
		}
		if nxt == nil {
			return nil, fmt.Errorf("witness: excursion state has no ranked program successor")
		}
		steps = append(steps, Step{Kind: via.kind, By: via.by, State: nxt})
		cur = nxt
	}

	tr := &Trace{Kind: KindRecovery, Steps: steps}
	tr.Detail = fmt.Sprintf("leaves the invariant via %d fault(s) and recovers in %d program step(s)",
		tr.Faults(), len(steps)-1-tr.Faults())
	return tr, nil
}

// containedDemo demonstrates a fault that is fully masked inside the
// invariant (the fault-span adds no states for it): one fault step from an
// invariant state to an invariant state, followed by a few program steps
// showing the computation proceeding undisturbed. The closure checks
// guarantee the whole trace stays inside the invariant — an excursion of
// length zero, which is the strongest form of recovery.
func (x *Extractor) containedDemo(ctx context.Context, sc *bdd.Scope, progParts []part, inv bdd.Node, faultIndex int) (*Trace, error) {
	c := x.c
	s := c.Space
	m := s.M
	relS := sc.Slot(m.AndN(c.FaultParts[faultIndex], inv, s.Prime(inv), s.ValidTrans()))
	if relS.Node() == bdd.False {
		return nil, nil // the fault is not enabled anywhere in the invariant
	}
	// Prefer a fault step that visibly changes the state; some fault
	// relations include stutters, which demonstrate nothing.
	if moving := m.Diff(relS.Node(), x.identity()); moving != bdd.False {
		relS.Set(moving)
	}
	mv := x.pickMove(relS.Node())
	name := ""
	if faultIndex < len(c.Def.Faults) {
		name = c.Def.Faults[faultIndex].Name
	}
	steps := []Step{
		{Kind: StepInit, State: mv.From},
		{Kind: StepFault, By: name, State: mv.To},
	}
	after := mv.To
	// A short program tail: the computation continues inside the invariant.
	const maxTail = 4
	cur := after
	for t := 0; t < maxTail; t++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("witness: extraction interrupted: %w", err)
		}
		curBDD := x.stateNode(cur)
		var nxt map[string]int
		var via part
		for _, p := range progParts {
			img := s.Image(curBDD, p.rel)
			if img == bdd.False {
				continue
			}
			nxt = x.PickState(img)
			via = p
			break
		}
		if nxt == nil {
			break // the computation rests; a legal finite maximal computation
		}
		steps = append(steps, Step{Kind: via.kind, By: via.by, State: nxt})
		cur = nxt
	}
	tr := &Trace{Kind: KindRecovery, Steps: steps}
	tr.Detail = fmt.Sprintf("the fault is masked in place: the computation never leaves the invariant (%d program step(s) shown)",
		len(steps)-2)
	return tr, nil
}

// identity returns the stutter relation: every variable keeps its value.
func (x *Extractor) identity() bdd.Node {
	s := x.c.Space
	m := s.M
	out := m.NewRooted(bdd.True)
	defer out.Release()
	same := m.NewRooted(bdd.False)
	defer same.Release()
	for _, v := range s.Vars {
		same.Set(bdd.False)
		for val := 0; val < v.Domain; val++ {
			same.Set(m.Or(same.Node(), m.And(v.EqConst(val), v.NextEqConst(val))))
		}
		out.Set(m.And(out.Node(), same.Node()))
	}
	return out.Node()
}

// RecoveryDemos extracts up to n recovery demonstrations for a repaired
// program, one per fault action in declaration order (each action has one
// canonical demonstration, so asking for more than the model declares yields
// the declared number). Fault actions that cannot leave the invariant are
// skipped; extraction failures on one action skip that action unless the
// context is done, in which case the error propagates.
func RecoveryDemos(ctx context.Context, c *program.Compiled, trans, inv, span bdd.Node, n int) ([]*Trace, error) {
	if n <= 0 {
		return nil, nil
	}
	x := New(c)
	var out []*Trace
	// One rank table serves every fault: the layers depend only on
	// (trans, inv, span), and the per-fault target selection reads a fixed
	// prefix of them, so sharing changes no trace. Its scope outlives the
	// per-fault extraction scopes so the shared layers stay rooted.
	rtsc := c.Space.M.Protect()
	defer rtsc.Release()
	rt := &rankTable{sc: rtsc}
	for i := 0; i < len(c.FaultParts) && len(out) < n; i++ {
		tr, err := x.recovery(ctx, trans, inv, span, i, rt)
		if err != nil {
			if ctx.Err() != nil {
				return nil, err
			}
			continue
		}
		if tr != nil {
			out = append(out, tr)
		}
	}
	return out, nil
}

// stateKey renders a state as a canonical map key (declaration order).
func stateKey(state map[string]int) string {
	// Variables are few; a simple deterministic rendering suffices.
	names := make([]string, 0, len(state))
	for n := range state {
		names = append(names, n)
	}
	sortStrings(names)
	out := ""
	for _, n := range names {
		out += fmt.Sprintf("%s=%d;", n, state[n])
	}
	return out
}

func sortStrings(a []string) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
