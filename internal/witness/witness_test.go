package witness_test

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/program"
	"repro/internal/repair"
	"repro/internal/sim"
	"repro/internal/symbolic"
	"repro/internal/verify"
	"repro/internal/witness"
)

// caseInstances are small instances of every built-in case study. tolerant
// marks programs that are already fault-tolerant as submitted (Dijkstra's
// ring, by his theorem): their original version verifies, so there is no
// failure to witness — only recovery to demonstrate.
var caseInstances = []struct {
	name     string
	n        int
	tolerant bool
}{
	{"ba", 2, false},
	{"bafs", 2, false},
	{"sc", 4, false},
	{"ring", 2, true},
	{"tmr", 0, false},
}

func compileCase(t *testing.T, name string, n int) *program.Compiled {
	t.Helper()
	def, err := core.CaseStudy(name, n)
	if err != nil {
		t.Fatal(err)
	}
	c, err := def.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestOriginalProgramFailuresHaveCertifiedWitnesses is the failure half of
// the witness acceptance criterion: verifying the original (fault-intolerant)
// program of every case study must fail, and at least one failed check must
// carry a witness that the independent explicit checker confirms.
func TestOriginalProgramFailuresHaveCertifiedWitnesses(t *testing.T) {
	for _, tc := range caseInstances {
		t.Run(tc.name, func(t *testing.T) {
			c := compileCase(t, tc.name, tc.n)
			// The original program "as submitted": its own transitions and
			// invariant, with the whole state space as the claimed span (the
			// original program certifies no fault-span of its own).
			res := &repair.Result{Trans: c.Trans, Invariant: c.Invariant, FaultSpan: c.Space.ValidCur()}
			rep, err := verify.ResultWitnessEngine(context.Background(), program.SerialEngine(c), res)
			if err != nil {
				t.Fatal(err)
			}
			if tc.tolerant {
				if !rep.OK() {
					t.Fatalf("already-tolerant %s program fails verification: %v", tc.name, rep.Failures())
				}
				for _, chk := range rep.Checks {
					if chk.Witness != nil {
						t.Errorf("passing check %q carries a witness", chk.Name)
					}
				}
				return
			}
			if rep.OK() {
				t.Fatalf("original %s program unexpectedly verifies:\n%s", tc.name, rep)
			}
			certified := 0
			for _, chk := range rep.Checks {
				if chk.Witness == nil {
					continue
				}
				if chk.OK {
					t.Errorf("check %q passed but carries a witness", chk.Name)
				}
				if chk.Witness.Check != chk.Name {
					t.Errorf("witness on %q names check %q", chk.Name, chk.Witness.Check)
				}
				if err := witness.Certify(c, c.Trans, c.Invariant, chk.Witness); err != nil {
					t.Errorf("witness for %q fails certification: %v\n%s", chk.Name, err, chk.Witness)
					continue
				}
				certified++
			}
			if certified == 0 {
				t.Fatalf("no certified witness on any failed check (failures: %v)", rep.Failures())
			}
		})
	}
}

// TestRecoveryDemosCertifiedAndReplayable is the success half: repairing every
// case study must yield recovery demonstrations that certify and that the
// simulator replays — with every departure from the invariant followed by
// re-entry, and no safety violation along the way.
func TestRecoveryDemosCertifiedAndReplayable(t *testing.T) {
	for _, tc := range caseInstances {
		t.Run(tc.name, func(t *testing.T) {
			c := compileCase(t, tc.name, tc.n)
			res, err := repair.Lazy(context.Background(), c, repair.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			demos, err := witness.RecoveryDemos(context.Background(), c, res.Trans, res.Invariant, res.FaultSpan, 8)
			if err != nil {
				t.Fatal(err)
			}
			if len(demos) == 0 {
				t.Fatal("repair succeeded but produced no recovery demonstration")
			}
			walker := sim.New(c, res.Trans, res.Invariant)
			for i, tr := range demos {
				if tr.Kind != witness.KindRecovery {
					t.Fatalf("demo %d has kind %q", i, tr.Kind)
				}
				if tr.Faults() == 0 {
					t.Errorf("demo %d takes no fault step:\n%s", i, tr)
				}
				if err := witness.Certify(c, res.Trans, res.Invariant, tr); err != nil {
					t.Errorf("demo %d fails certification: %v\n%s", i, err, tr)
					continue
				}
				r, err := walker.Replay(tr)
				if err != nil {
					t.Errorf("demo %d does not replay: %v\n%s", i, err, tr)
					continue
				}
				if r.Departed && !r.Reentered {
					t.Errorf("demo %d departs the invariant without re-entering:\n%s", i, tr)
				}
				if r.BadStates != 0 || r.BadTransitions != 0 {
					t.Errorf("demo %d violates safety (%d bad states, %d bad transitions)", i, r.BadStates, r.BadTransitions)
				}
				if r.Faults == 0 {
					t.Errorf("demo %d replayed no fault step", i)
				}
			}
		})
	}
}

// TestCertifyRejectsTamperedTraces: a certificate is only as good as its
// checker's skepticism. Tampering with any part of a valid demonstration must
// be detected.
func TestCertifyRejectsTamperedTraces(t *testing.T) {
	c := compileCase(t, "sc", 4)
	res, err := repair.Lazy(context.Background(), c, repair.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	demos, err := witness.RecoveryDemos(context.Background(), c, res.Trans, res.Invariant, res.FaultSpan, 1)
	if err != nil || len(demos) == 0 {
		t.Fatalf("no demo to tamper with (err=%v)", err)
	}
	orig, _ := json.Marshal(demos[0])

	reload := func() *witness.Trace {
		var tr witness.Trace
		if err := json.Unmarshal(orig, &tr); err != nil {
			t.Fatal(err)
		}
		return &tr
	}

	// Baseline sanity: the untampered trace certifies.
	if err := witness.Certify(c, res.Trans, res.Invariant, reload()); err != nil {
		t.Fatalf("untampered demo rejected: %v", err)
	}

	// Corrupt a mid-trace state value.
	tr := reload()
	mid := len(tr.Steps) / 2
	for name, v := range tr.Steps[mid].State {
		tr.Steps[mid].State[name] = v ^ 1
		break
	}
	if err := witness.Certify(c, res.Trans, res.Invariant, tr); err == nil {
		t.Error("corrupted state accepted")
	}

	// Relabel a fault step as a program step.
	tr = reload()
	relabelled := false
	for i := range tr.Steps {
		if tr.Steps[i].Kind == witness.StepFault {
			tr.Steps[i].Kind = witness.StepProgram
			relabelled = true
			break
		}
	}
	if !relabelled {
		t.Fatal("demo has no fault step to relabel")
	}
	if err := witness.Certify(c, res.Trans, res.Invariant, tr); err == nil {
		t.Error("fault step relabelled as program step accepted")
	}

	// Truncate the recovery: the trace must end inside the invariant.
	tr = reload()
	if len(tr.Steps) > 2 {
		tr.Steps = tr.Steps[:2] // init + fault, before convergence
		if err := witness.Certify(c, res.Trans, res.Invariant, tr); err == nil {
			t.Error("truncated recovery accepted")
		}
	}

	// Claim an impossible kind.
	tr = reload()
	tr.Kind = witness.KindDeadlock
	if err := witness.Certify(c, res.Trans, res.Invariant, tr); err == nil {
		t.Error("recovery trace accepted as a deadlock witness")
	}
}

// TestExtractionHonorsCancellation: a cancelled context must abort witness
// extraction rather than letting a long reconstruction blow a job deadline.
func TestExtractionHonorsCancellation(t *testing.T) {
	c := compileCase(t, "sc", 4)
	res, err := repair.Lazy(context.Background(), c, repair.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := witness.RecoveryDemos(ctx, c, res.Trans, res.Invariant, res.FaultSpan, 4); err == nil {
		t.Error("cancelled extraction returned no error")
	}
	x := witness.New(c)
	if _, err := x.Safety(ctx, c.Trans, c.Invariant); err == nil {
		t.Error("cancelled safety extraction returned no error")
	}
}

// TestTraceJSONGolden pins the witness JSON encoding: the wire shape is part
// of the service API (RunReport embeds traces) and of the determinism
// contract, so changes must be deliberate.
func TestTraceJSONGolden(t *testing.T) {
	tr := &witness.Trace{
		Kind:   witness.KindRecovery,
		Check:  "",
		Detail: "leaves the invariant via 1 fault(s) and recovers in 1 program step(s)",
		Steps: []witness.Step{
			{Kind: witness.StepInit, State: map[string]int{"x": 0, "y": 1}},
			{Kind: witness.StepFault, By: "hit", State: map[string]int{"x": 1, "y": 1}},
			{Kind: witness.StepProgram, By: "p", State: map[string]int{"x": 0, "y": 1}},
		},
	}
	got, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "trace_golden.json")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading %s: %v (regenerate by writing the 'got' bytes)", golden, err)
	}
	if string(got) != string(want) {
		t.Errorf("trace JSON drifted from golden file:\n got: %s\nwant: %s", got, want)
	}

	// The encoding round-trips.
	var back witness.Trace
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatal(err)
	}
	if back.Kind != tr.Kind || len(back.Steps) != len(tr.Steps) || back.Steps[1].By != "hit" {
		t.Errorf("round-trip lost data: %+v", back)
	}
}

// TestUnrealizableWitness crafts a relation with an incomplete
// read-restriction group — a single transition whose hidden-variable twin is
// absent — and checks the extracted witness names the betrayed process and
// the missing member, and that the certificate checker accepts it.
func TestUnrealizableWitness(t *testing.T) {
	d := &program.Def{
		Name: "hidden",
		Vars: []symbolic.VarSpec{{Name: "a", Domain: 2}, {Name: "y", Domain: 2}},
		Processes: []*program.Process{
			{Name: "p", Read: []string{"y"}, Write: []string{"y"}},
		},
		Faults: []program.Action{{
			Name:    "hit",
			Guard:   expr.And(expr.Eq("a", 0), expr.Eq("y", 0)),
			Updates: []program.Update{program.Set("y", 1)},
		}},
		Invariant: expr.Eq("y", 0),
	}
	c := d.MustCompile()
	s := c.Space

	// One transition flipping y with a=0; the group member with a=1 (which p
	// cannot observe) is absent, so no process realizes the relation.
	only, err := s.Transition(map[string]int{"a": 0, "y": 0}, map[string]int{"a": 0, "y": 1})
	if err != nil {
		t.Fatal(err)
	}
	x := witness.New(c)
	tr, err := x.Unrealizable(context.Background(), only)
	if err != nil {
		t.Fatal(err)
	}
	if tr == nil {
		t.Fatal("incomplete group not detected")
	}
	if tr.Kind != witness.KindUnrealizable || tr.Process != "p" || tr.Move == nil || tr.Member == nil {
		t.Fatalf("unexpected witness: %+v", tr)
	}
	if tr.Member.From["a"] != 1 || tr.Member.To["a"] != 1 {
		t.Errorf("missing member should differ in the hidden variable: %+v", tr.Member)
	}
	if err := witness.Certify(c, only, c.Invariant, tr); err != nil {
		t.Errorf("genuine unrealizability witness rejected: %v", err)
	}

	// A fabricated member that IS in the relation must be rejected.
	forged := *tr
	forged.Member = tr.Move
	if err := witness.Certify(c, only, c.Invariant, &forged); err == nil {
		t.Error("forged member (present in the relation) accepted")
	}

	// A realizable relation yields no witness: the transition plus its twin.
	twin, err := s.Transition(map[string]int{"a": 1, "y": 0}, map[string]int{"a": 1, "y": 1})
	if err != nil {
		t.Fatal(err)
	}
	full := s.M.Or(only, twin)
	tr, err = x.Unrealizable(context.Background(), full)
	if err != nil {
		t.Fatal(err)
	}
	if tr != nil {
		t.Errorf("complete group reported unrealizable:\n%s", tr)
	}
}
