// Package witness turns the symbolic engine's yes/no verdicts into concrete,
// replayable evidence. A Trace is a finite computation of the compiled
// program — a list of named-variable states joined by program or fault steps
// — that demonstrates a specific claim: a safety violation reachable under
// faults, a reachable deadlock with the fault schedule that exposes it, a
// livelock cycle outside the invariant, an unrealizable transition together
// with the read-restriction group member that betrays it, or (on success) a
// recovery demonstration that enters the fault-span via faults and converges
// back to the invariant.
//
// Traces are extracted from BDD fixpoints by frontier-stack path
// reconstruction (see Extractor) and re-checked by an independent
// explicit-state walker (see Certify), so every witness is a certificate
// rather than trust-me output. Extraction is deterministic: the same model
// and result yield byte-identical JSON regardless of the engine's worker
// count, because every intermediate set is a canonical BDD and cube
// selection always follows the same branch order.
package witness

import (
	"fmt"
	"sort"
	"strings"
)

// StepKind labels how a trace reached a state.
type StepKind string

// The step kinds of a trace.
const (
	// StepInit marks the first state of a trace (no incoming transition).
	StepInit StepKind = "init"
	// StepProgram marks a program transition (By names the process, when
	// attribution succeeded).
	StepProgram StepKind = "program"
	// StepFault marks a fault transition (By names the fault action).
	StepFault StepKind = "fault"
)

// Step is one state of a trace plus the transition that produced it.
type Step struct {
	// Kind is init for the first step, program or fault afterwards.
	Kind StepKind `json:"kind"`
	// By attributes the transition: the process name for program steps, the
	// fault action name for fault steps. Empty when the model leaves the
	// action unnamed or the transition belongs to no single process (e.g. a
	// synthesized recovery transition shared by several groups).
	By string `json:"by,omitempty"`
	// State is the full named-variable assignment after the step.
	State map[string]int `json:"state"`
}

// Kind classifies what a trace demonstrates.
type Kind string

// The witness kinds.
const (
	// KindSafety is a computation from the invariant that, under faults,
	// reaches a bad state or executes a bad transition.
	KindSafety Kind = "safety-violation"
	// KindDeadlock is a computation reaching a state outside the invariant
	// with no outgoing program transition.
	KindDeadlock Kind = "deadlock"
	// KindLivelock is a computation reaching a cycle outside the invariant:
	// the final state revisits an earlier state of the trace.
	KindLivelock Kind = "livelock"
	// KindUnrealizable is an unrealizable transition (Move) with the group
	// member (Member) whose absence betrays it (Definition 19/20).
	KindUnrealizable Kind = "unrealizable"
	// KindRecovery is a successful demonstration: the trace leaves the
	// invariant via faults and converges back to it via program steps.
	KindRecovery Kind = "recovery"
)

// Move is one concrete transition, used by unrealizability witnesses.
type Move struct {
	From map[string]int `json:"from"`
	To   map[string]int `json:"to"`
}

// Trace is a concrete witness. It is JSON-serializable and deterministic:
// encoding/json sorts the state maps' keys, so two equal traces encode to
// identical bytes.
type Trace struct {
	// Kind classifies the demonstration.
	Kind Kind `json:"kind"`
	// Check names the verifier check this trace witnesses (empty for
	// recovery demonstrations produced on success).
	Check string `json:"check,omitempty"`
	// Detail is a one-line human-readable summary.
	Detail string `json:"detail,omitempty"`
	// Steps is the computation (empty for unrealizability witnesses, which
	// are about a single transition's group, not a path).
	Steps []Step `json:"steps,omitempty"`

	// Process, Move and Member are set for KindUnrealizable only: Move is a
	// transition of the program that Process cannot realize because Member —
	// a transition in the same read-restriction group — is absent.
	Process string `json:"process,omitempty"`
	Move    *Move  `json:"move,omitempty"`
	Member  *Move  `json:"member,omitempty"`
}

// Faults counts the fault steps of the trace.
func (t *Trace) Faults() int {
	n := 0
	for _, s := range t.Steps {
		if s.Kind == StepFault {
			n++
		}
	}
	return n
}

// String renders the trace for terminals (the ftrepair -explain format):
// one line per step, showing only the variables that changed.
func (t *Trace) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s", t.Kind)
	if t.Check != "" {
		fmt.Fprintf(&sb, " [%s]", t.Check)
	}
	if t.Detail != "" {
		fmt.Fprintf(&sb, ": %s", t.Detail)
	}
	sb.WriteString("\n")
	if t.Move != nil {
		fmt.Fprintf(&sb, "  transition %s -> %s (process %s)\n",
			formatState(t.Move.From), formatState(t.Move.To), t.Process)
		if t.Member != nil {
			fmt.Fprintf(&sb, "  missing group member %s -> %s\n",
				formatState(t.Member.From), formatState(t.Member.To))
		}
	}
	var prev map[string]int
	for i, s := range t.Steps {
		switch s.Kind {
		case StepInit:
			fmt.Fprintf(&sb, "  %2d  init     %s\n", i, formatState(s.State))
		default:
			label := string(s.Kind)
			if s.By != "" {
				label += ":" + s.By
			}
			fmt.Fprintf(&sb, "  %2d  %-8s %s\n", i, label, formatDiff(prev, s.State))
		}
		prev = s.State
	}
	return sb.String()
}

// formatState renders a full assignment with sorted variable names.
func formatState(state map[string]int) string {
	names := make([]string, 0, len(state))
	for n := range state {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%d", n, state[n])
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// formatDiff renders only the variables that changed from prev.
func formatDiff(prev, state map[string]int) string {
	if prev == nil {
		return formatState(state)
	}
	names := make([]string, 0, len(state))
	for n, v := range state {
		if prev[n] != v {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return "(stutter)"
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s: %d->%d", n, prev[n], state[n])
	}
	return strings.Join(parts, "  ")
}

// cloneState copies a state map.
func cloneState(s map[string]int) map[string]int {
	out := make(map[string]int, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}
