package symbolic

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/bdd"
)

func twoCounterSpace(t *testing.T) *Space {
	t.Helper()
	s, err := New([]VarSpec{{Name: "x", Domain: 3}, {Name: "y", Domain: 4}})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]VarSpec{{Name: "x", Domain: 1}}); err == nil {
		t.Fatal("domain 1 should be rejected")
	}
	if _, err := New([]VarSpec{{Name: "x", Domain: 2}, {Name: "x", Domain: 2}}); err == nil {
		t.Fatal("duplicate names should be rejected")
	}
}

func TestStateCounting(t *testing.T) {
	s := twoCounterSpace(t)
	// Full valid space: 3 * 4 = 12 states.
	if got := s.CountStates(bdd.True); got != 12 {
		t.Fatalf("CountStates(true) = %v, want 12", got)
	}
	x := s.VarByName("x")
	if got := s.CountStates(x.EqConst(2)); got != 4 {
		t.Fatalf("CountStates(x=2) = %v, want 4", got)
	}
	st, err := s.State(map[string]int{"x": 1, "y": 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.CountStates(st); got != 1 {
		t.Fatalf("CountStates(single state) = %v, want 1", got)
	}
}

func TestStateErrors(t *testing.T) {
	s := twoCounterSpace(t)
	if _, err := s.State(map[string]int{"z": 0}); err == nil {
		t.Fatal("unknown variable should error")
	}
	if _, err := s.State(map[string]int{"x": 3}); err == nil {
		t.Fatal("out-of-domain value should error")
	}
}

func TestEqConstDisjoint(t *testing.T) {
	s := twoCounterSpace(t)
	x := s.VarByName("x")
	m := s.M
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			inter := m.And(x.EqConst(a), x.EqConst(b))
			if (a == b) != (inter != bdd.False) {
				t.Fatalf("EqConst(%d) ∧ EqConst(%d) wrong", a, b)
			}
		}
	}
	// Union of all values covers ValidCur restricted to x's bits.
	all := bdd.False
	for a := 0; a < 3; a++ {
		all = m.Or(all, x.EqConst(a))
	}
	if s.CountStates(all) != 12 {
		t.Fatal("union of x values should cover the whole valid space")
	}
}

func TestPrimeInvolution(t *testing.T) {
	s := twoCounterSpace(t)
	x := s.VarByName("x")
	f := x.EqConst(2)
	if s.Unprime(s.Prime(f)) != f {
		t.Fatal("Prime is not involutive")
	}
	// Prime moves support from cur to next levels.
	primed := s.Prime(f)
	support := s.M.Support(primed)
	nexts := map[int]bool{}
	for _, l := range x.NextLevels() {
		nexts[l] = true
	}
	for _, l := range support {
		if !nexts[l] {
			t.Fatalf("primed support contains non-next level %d", l)
		}
	}
}

// incrementMod builds the transition x' = (x+1) mod d with y unchanged.
func incrementMod(s *Space) bdd.Node {
	m := s.M
	x, y := s.VarByName("x"), s.VarByName("y")
	tr := bdd.False
	for v := 0; v < x.Domain; v++ {
		tr = m.Or(tr, m.And(x.EqConst(v), x.NextEqConst((v+1)%x.Domain)))
	}
	return m.AndN(tr, y.Unchanged(), s.ValidTrans())
}

func TestImagePreimage(t *testing.T) {
	s := twoCounterSpace(t)
	m := s.M
	x := s.VarByName("x")
	tr := incrementMod(s)

	from := m.And(x.EqConst(0), s.ValidCur())
	img := s.Image(from, tr)
	want := m.And(x.EqConst(1), s.ValidCur())
	if img != want {
		t.Fatalf("Image(x=0) = %s, want x=1", m.String(img))
	}

	pre := s.Preimage(want, tr)
	if pre != from {
		t.Fatalf("Preimage(x=1) = %s, want x=0", m.String(pre))
	}
}

func TestReachableFixpoint(t *testing.T) {
	s := twoCounterSpace(t)
	m := s.M
	y := s.VarByName("y")
	tr := incrementMod(s)
	init, _ := s.State(map[string]int{"x": 0, "y": 2})
	reach := s.Reachable(init, tr)
	// x cycles over 3 values, y frozen at 2 -> 3 states.
	if got := s.CountStates(reach); got != 3 {
		t.Fatalf("reachable count = %v, want 3", got)
	}
	if !m.Implies(reach, y.EqConst(2)) {
		t.Fatal("reachable set should keep y = 2")
	}
	back := s.BackwardReachable(init, tr)
	if s.CountStates(back) != 3 {
		t.Fatal("backward reachable over a cycle should also be 3 states")
	}
}

func TestUnchangedAndIdentity(t *testing.T) {
	s := twoCounterSpace(t)
	m := s.M
	x, y := s.VarByName("x"), s.VarByName("y")
	id := s.Identity()
	if id != m.And(x.Unchanged(), y.Unchanged()) {
		t.Fatal("Identity != conjunction of per-variable Unchanged")
	}
	// Identity maps each state to itself only.
	st, _ := s.State(map[string]int{"x": 1, "y": 1})
	img := s.Image(st, m.And(id, s.ValidTrans()))
	if img != st {
		t.Fatal("Identity image of a state is not the state itself")
	}
}

func TestEqAndNextEq(t *testing.T) {
	s := MustNew([]VarSpec{{Name: "a", Domain: 4}, {Name: "b", Domain: 4}, {Name: "c", Domain: 3}})
	m := s.M
	a, b, c := s.VarByName("a"), s.VarByName("b"), s.VarByName("c")

	eq := a.Eq(b)
	// a = b over 4x4: 4 pairs, times 3 for c.
	if got := s.CountStates(eq); got != 12 {
		t.Fatalf("CountStates(a=b) = %v, want 12", got)
	}
	// Mismatched domains compare value-wise over the common range.
	eqac := a.Eq(c)
	if got := s.CountStates(eqac); got != 12 { // 3 matching values, times 4 for b
		t.Fatalf("CountStates(a=c) = %v, want 12", got)
	}

	// NextEq implements assignment: from any state, image of (a' = b,
	// others unchanged) sets a to b's value.
	tr := m.AndN(a.NextEq(b), b.Unchanged(), c.Unchanged(), s.ValidTrans())
	st, _ := s.State(map[string]int{"a": 0, "b": 3, "c": 1})
	img := s.Image(st, tr)
	want, _ := s.State(map[string]int{"a": 3, "b": 3, "c": 1})
	if img != want {
		t.Fatalf("assignment image wrong: %s", m.String(img))
	}
}

func TestCountTransitions(t *testing.T) {
	s := twoCounterSpace(t)
	tr := incrementMod(s)
	// 3 x-values * 4 y-values source states, each with exactly one successor.
	if got := s.CountTransitions(tr); got != 12 {
		t.Fatalf("CountTransitions = %v, want 12", got)
	}
}

func TestDecodeCube(t *testing.T) {
	s := twoCounterSpace(t)
	x, y := s.VarByName("x"), s.VarByName("y")
	st, _ := s.State(map[string]int{"x": 2, "y": 3})
	cube := s.M.PickCube(st)
	if x.DecodeCube(cube) != 2 || y.DecodeCube(cube) != 3 {
		t.Fatalf("DecodeCube got x=%d y=%d", x.DecodeCube(cube), y.DecodeCube(cube))
	}
}

func TestQuickReachableMonotone(t *testing.T) {
	s := twoCounterSpace(t)
	tr := s.M.Ref(incrementMod(s)) // held across many fixpoint runs
	prop := func(xv, yv uint8) bool {
		init, err := s.State(map[string]int{"x": int(xv % 3), "y": int(yv % 4)})
		if err != nil {
			return false
		}
		reach := s.Reachable(init, tr)
		// init ⊆ reach and image(reach) ⊆ reach (closure).
		if !s.M.Implies(init, reach) {
			return false
		}
		return s.M.Implies(s.Image(reach, tr), reach)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCountStatesLargeSpace(t *testing.T) {
	// 30 variables of domain 10: 10^30 states, matching the paper's largest
	// chain instance. Exercises float counting at Table-II scale.
	specs := make([]VarSpec, 30)
	for i := range specs {
		specs[i] = VarSpec{Name: string(rune('a'+i%26)) + string(rune('0'+i/26)), Domain: 10}
	}
	s := MustNew(specs)
	got := s.CountStates(bdd.True)
	if math.Abs(got-1e30)/1e30 > 1e-9 {
		t.Fatalf("CountStates = %v, want 1e30", got)
	}
}

// TestReachablePartsMatchesMonolithic: disjunctive partitioning with
// chaining computes exactly the same fixpoints as the monolithic relation.
func TestReachablePartsMatchesMonolithic(t *testing.T) {
	s := MustNew([]VarSpec{{Name: "x", Domain: 4}, {Name: "y", Domain: 3}, {Name: "z", Domain: 2}})
	m := s.M
	x, y, z := s.VarByName("x"), s.VarByName("y"), s.VarByName("z")

	// Three independent "actions", one per variable.
	incX := bdd.False
	for v := 0; v < 4; v++ {
		incX = m.Or(incX, m.And(x.EqConst(v), x.NextEqConst((v+1)%4)))
	}
	incX = m.AndN(incX, y.Unchanged(), z.Unchanged(), s.ValidTrans())
	setY := m.AndN(y.NextEq(x), x.Unchanged(), z.Unchanged(), s.ValidTrans())
	flipZ := m.AndN(m.Not(z.Unchanged()), x.Unchanged(), y.Unchanged(), s.ValidTrans())
	parts := []bdd.Node{incX, setY, flipZ}
	union := m.OrN(parts...)

	init, _ := s.State(map[string]int{"x": 0, "y": 2, "z": 0})
	mono := s.Reachable(init, union)
	part := s.ReachableParts(init, parts)
	if mono != part {
		t.Fatalf("partitioned reach (%g) != monolithic (%g)",
			s.CountStates(part), s.CountStates(mono))
	}

	target, _ := s.State(map[string]int{"x": 3, "y": 0, "z": 1})
	monoB := s.BackwardReachable(target, union)
	partB := s.BackwardReachableParts(target, parts)
	if monoB != partB {
		t.Fatalf("partitioned backward reach (%g) != monolithic (%g)",
			s.CountStates(partB), s.CountStates(monoB))
	}
}

func TestReachablePartsSkipsEmptyPartitions(t *testing.T) {
	s := MustNew([]VarSpec{{Name: "x", Domain: 2}})
	init, _ := s.State(map[string]int{"x": 0})
	got := s.ReachableParts(init, []bdd.Node{bdd.False, bdd.False})
	if got != init {
		t.Fatal("no transitions should reach nothing new")
	}
	if s.BackwardReachableParts(init, nil) != init {
		t.Fatal("backward with no partitions should be the target itself")
	}
}
