// Package symbolic provides a finite-domain state space on top of the BDD
// engine: named variables with arbitrary finite domains, state and transition
// predicates, priming (current/next renaming), image and preimage operators,
// and symbolic reachability.
//
// Encoding: each finite-domain variable gets ceil(log2(domain)) boolean bits.
// Current-state and next-state bits are interleaved globally (cur bit at an
// even level, its next twin immediately after), which keeps transition
// relations small and makes the prime/unprime renaming a neighbour swap.
package symbolic

import (
	"context"
	"fmt"
	"math"

	"repro/internal/bdd"
)

// VarSpec declares one finite-domain variable of a Space.
type VarSpec struct {
	Name   string
	Domain int // number of values; the variable ranges over 0..Domain-1
}

// Var is a finite-domain variable inside a Space.
type Var struct {
	Name   string
	Domain int
	Index  int // position in Space.Vars

	bits       int
	curLevels  []int // BDD variable ids of current-state bits (LSB first)
	nextLevels []int // BDD variable ids of next-state bits (LSB first)
	space      *Space
}

// Space is a symbolic state space: a set of finite-domain variables encoded
// into a shared BDD manager.
type Space struct {
	M    *bdd.Manager
	Vars []*Var

	byName map[string]*Var

	curCube  bdd.Node // cube of all current-state bits
	nextCube bdd.Node // cube of all next-state bits
	swap     *bdd.Permutation

	validCur  bdd.Node // excludes unused bit patterns of non-power-of-2 domains
	validNext bdd.Node
	identity  bdd.Node // all variables unchanged (over valid patterns)

	totalBits int
}

// New builds a Space with the given variables. The declaration order defines
// the BDD variable order (earlier variables higher in the order), which for
// the chain and agreement models of the paper gives compact BDDs.
func New(specs []VarSpec) (*Space, error) {
	return newSpace(bdd.New(), specs)
}

// NewSized is New with explicit operation-cache sizing (2^cacheBits entries
// per cache). Worker spaces in a parallel engine use small caches so that N
// workers do not multiply the default footprint by N.
func NewSized(specs []VarSpec, cacheBits int) (*Space, error) {
	return newSpace(bdd.NewSized(cacheBits), specs)
}

func newSpace(m *bdd.Manager, specs []VarSpec) (*Space, error) {
	s := &Space{M: m, byName: make(map[string]*Var)}
	for _, spec := range specs {
		if spec.Domain < 2 {
			return nil, fmt.Errorf("symbolic: variable %q has domain %d; need at least 2", spec.Name, spec.Domain)
		}
		if _, dup := s.byName[spec.Name]; dup {
			return nil, fmt.Errorf("symbolic: duplicate variable %q", spec.Name)
		}
		v := &Var{
			Name:   spec.Name,
			Domain: spec.Domain,
			Index:  len(s.Vars),
			bits:   bitsFor(spec.Domain),
			space:  s,
		}
		for b := 0; b < v.bits; b++ {
			cur := s.M.NewVar(fmt.Sprintf("%s.%d", spec.Name, b))
			next := s.M.NewVar(fmt.Sprintf("%s.%d'", spec.Name, b))
			// Record stable variable ids, not positions: the order under the
			// ids can move once dynamic reordering kicks in.
			v.curLevels = append(v.curLevels, s.M.VarOf(cur))
			v.nextLevels = append(v.nextLevels, s.M.VarOf(next))
		}
		s.totalBits += v.bits
		s.Vars = append(s.Vars, v)
		s.byName[spec.Name] = v
	}
	s.finish()
	return s, nil
}

// View rebinds the space to another manager over the SAME node table — a
// worker view of a shared-memory session (bdd.NewShared). The cubes, valid
// predicates, identity relation, and swap permutation are node values in the
// shared table, so they carry over verbatim; they stay rooted through the
// primary space's permanent refs, which the shared session's barrier
// collector honors. The returned space must only be used while its view is
// (the engine drives one view per worker inside parallel regions).
func (s *Space) View(vm *bdd.Manager) *Space {
	sv := *s
	sv.M = vm
	sv.Vars = make([]*Var, len(s.Vars))
	sv.byName = make(map[string]*Var, len(s.Vars))
	for i, v := range s.Vars {
		vc := *v
		vc.space = &sv
		sv.Vars[i] = &vc
		sv.byName[vc.Name] = &vc
	}
	return &sv
}

// MustNew is New but panics on error; convenient in tests and examples.
func MustNew(specs []VarSpec) *Space {
	s, err := New(specs)
	if err != nil {
		panic(err)
	}
	return s
}

func bitsFor(domain int) int {
	b := 0
	for 1<<b < domain {
		b++
	}
	return b
}

func (s *Space) finish() {
	m := s.M
	var curLevels, nextLevels []int
	mapping := make([]int, m.NumVars())
	for i := range mapping {
		mapping[i] = i
	}
	// The accumulators below are carried across one BDD-op chain per
	// variable; slots keep them rooted through collections, and the final
	// values are rooted permanently — they live as long as the Space.
	sc := m.Protect()
	defer sc.Release()
	vc, vn, id := sc.Slot(bdd.True), sc.Slot(bdd.True), sc.Slot(bdd.True)
	for _, v := range s.Vars {
		curLevels = append(curLevels, v.curLevels...)
		nextLevels = append(nextLevels, v.nextLevels...)
		for b := range v.curLevels {
			mapping[v.curLevels[b]] = v.nextLevels[b]
			mapping[v.nextLevels[b]] = v.curLevels[b]
		}
		vc.Set(m.And(vc.Node(), v.validRange(v.curLevels)))
		vn.Set(m.And(vn.Node(), v.validRange(v.nextLevels)))
		id.Set(m.And(id.Node(), v.Unchanged()))
	}
	s.validCur = m.Ref(vc.Node())
	s.validNext = m.Ref(vn.Node())
	s.identity = m.Ref(id.Node())
	s.curCube = m.Ref(m.Cube(curLevels))
	s.nextCube = m.Ref(m.Cube(nextLevels))
	s.swap = m.NewPermutation(mapping)
}

// validRange builds the constraint value < Domain over the given bit levels.
func (v *Var) validRange(levels []int) bdd.Node {
	m := v.space.M
	if v.Domain == 1<<v.bits {
		return bdd.True
	}
	out := bdd.False
	for val := 0; val < v.Domain; val++ {
		out = m.Or(out, v.eqConstOn(levels, val))
	}
	return out
}

// VarByName returns the variable with the given name, or nil.
func (s *Space) VarByName(name string) *Var { return s.byName[name] }

// TotalBits returns the number of boolean state bits (excluding next copies).
func (s *Space) TotalBits() int { return s.totalBits }

// CurCube returns the cube of all current-state bits.
func (s *Space) CurCube() bdd.Node { return s.curCube }

// NextCube returns the cube of all next-state bits.
func (s *Space) NextCube() bdd.Node { return s.nextCube }

// ValidCur is the predicate excluding unused encodings of current variables.
func (s *Space) ValidCur() bdd.Node { return s.validCur }

// ValidNext is the predicate excluding unused encodings of next variables.
func (s *Space) ValidNext() bdd.Node { return s.validNext }

// ValidTrans is the conjunction ValidCur ∧ ValidNext: the universe of
// well-formed transitions.
func (s *Space) ValidTrans() bdd.Node { return s.M.And(s.validCur, s.validNext) }

// Identity is the transition predicate that leaves every variable unchanged.
func (s *Space) Identity() bdd.Node { return s.identity }

// Prime renames current-state variables to next-state variables (and vice
// versa — the renaming is the involutive neighbour swap).
func (s *Space) Prime(f bdd.Node) bdd.Node { return s.M.Replace(f, s.swap) }

// Unprime is the inverse of Prime.
func (s *Space) Unprime(f bdd.Node) bdd.Node { return s.M.Replace(f, s.swap) }

// Image returns the set of states reachable in one step from the given state
// set via the transition relation.
func (s *Space) Image(states, trans bdd.Node) bdd.Node {
	return s.Unprime(s.M.AndExists(states, trans, s.curCube))
}

// Preimage returns the states that can reach the given state set in one step
// via the transition relation.
func (s *Space) Preimage(states, trans bdd.Node) bdd.Node {
	return s.M.AndExists(trans, s.Prime(states), s.nextCube)
}

// Reachable computes the least fixpoint of states reachable from init via
// trans (including init itself).
func (s *Space) Reachable(init, trans bdd.Node) bdd.Node {
	m := s.M
	sc := m.Protect()
	defer sc.Release()
	sc.Keep(trans)
	reached := sc.Slot(m.And(init, s.validCur))
	frontier := sc.Slot(reached.Node())
	for frontier.Node() != bdd.False {
		next := m.Diff(s.Image(frontier.Node(), trans), reached.Node())
		reached.Set(m.Or(reached.Node(), next))
		frontier.Set(next)
	}
	return reached.Node()
}

// ReachableParts computes the states reachable from init under the union of
// the given transition-relation partitions, using disjunctive partitioning
// with chaining: each partition's image is applied to its own fixpoint
// before moving to the next, and the outer loop repeats until no partition
// adds states. For asynchronous systems (one process or fault acting at a
// time) this keeps intermediate sets near product form and avoids the
// exponential counting sets a breadth-first frontier builds.
func (s *Space) ReachableParts(init bdd.Node, parts []bdd.Node) bdd.Node {
	out, _ := s.ReachablePartsCtx(context.Background(), init, parts)
	return out
}

// ReachablePartsCtx is ReachableParts with cancellation: the context is
// checked at every image-application boundary, so a caller's deadline
// interrupts even a fixpoint whose per-step images are cheap but whose
// iteration count is huge. On cancellation it returns ctx.Err() and the
// (sound but incomplete) set reached so far.
func (s *Space) ReachablePartsCtx(ctx context.Context, init bdd.Node, parts []bdd.Node) (bdd.Node, error) {
	m := s.M
	sc := m.Protect()
	defer sc.Release()
	for _, p := range parts {
		sc.Keep(p)
	}
	reached := sc.Slot(m.And(init, s.validCur))
	for {
		changed := false
		for _, p := range parts {
			if p == bdd.False {
				continue
			}
			for {
				if err := ctx.Err(); err != nil {
					return reached.Node(), err
				}
				img := m.Diff(s.Image(reached.Node(), p), reached.Node())
				if img == bdd.False {
					break
				}
				reached.Set(m.Or(reached.Node(), img))
				changed = true
			}
		}
		if !changed {
			return reached.Node(), nil
		}
	}
}

// BackwardReachableParts is the partitioned-with-chaining form of
// BackwardReachable.
func (s *Space) BackwardReachableParts(target bdd.Node, parts []bdd.Node) bdd.Node {
	out, _ := s.BackwardReachablePartsCtx(context.Background(), target, parts)
	return out
}

// BackwardReachablePartsCtx is BackwardReachableParts with cancellation,
// checked at every preimage-application boundary (see ReachablePartsCtx).
func (s *Space) BackwardReachablePartsCtx(ctx context.Context, target bdd.Node, parts []bdd.Node) (bdd.Node, error) {
	m := s.M
	sc := m.Protect()
	defer sc.Release()
	for _, p := range parts {
		sc.Keep(p)
	}
	reached := sc.Slot(m.And(target, s.validCur))
	frontier := sc.Slot(bdd.False)
	for {
		changed := false
		for _, p := range parts {
			if p == bdd.False {
				continue
			}
			// Chain with a frontier: after the first preimage of the full
			// set, only the newly added states need another preimage.
			// (The forward fixpoint above deliberately images the full
			// reached set instead — there the frontier BDDs grow larger
			// than the set itself on these models.)
			frontier.Set(reached.Node())
			for {
				if err := ctx.Err(); err != nil {
					return reached.Node(), err
				}
				pre := m.Diff(s.Preimage(frontier.Node(), p), reached.Node())
				if pre == bdd.False {
					break
				}
				reached.Set(m.Or(reached.Node(), pre))
				frontier.Set(pre)
				changed = true
			}
		}
		if !changed {
			return reached.Node(), nil
		}
	}
}

// BackwardReachable computes the states that can reach target via trans in
// zero or more steps.
func (s *Space) BackwardReachable(target, trans bdd.Node) bdd.Node {
	m := s.M
	sc := m.Protect()
	defer sc.Release()
	sc.Keep(trans)
	reached := sc.Slot(m.And(target, s.validCur))
	frontier := sc.Slot(reached.Node())
	for frontier.Node() != bdd.False {
		prev := m.Diff(s.Preimage(frontier.Node(), trans), reached.Node())
		reached.Set(m.Or(reached.Node(), prev))
		frontier.Set(prev)
	}
	return reached.Node()
}

// CountStates returns the number of states in a state predicate (a function
// of current-state bits only). It panics if f is not a Node of this space's
// manager (a Node from another manager would silently count an unrelated
// function, or crash deep inside the apply layer).
func (s *Space) CountStates(f bdd.Node) float64 {
	s.M.CheckNode(f)
	// SatCount ranges over every manager bit; divide out the unconstrained
	// next-state bits.
	return s.M.SatCount(s.M.And(f, s.validCur)) / math.Pow(2, float64(s.totalBits))
}

// CountTransitions returns the number of (s0, s1) pairs in a transition
// predicate. Like CountStates it panics on a Node from a different manager.
func (s *Space) CountTransitions(f bdd.Node) float64 {
	s.M.CheckNode(f)
	return s.M.SatCount(s.M.And(f, s.ValidTrans()))
}

// State builds the state predicate fixing each named variable to a value;
// unnamed variables are unconstrained.
func (s *Space) State(values map[string]int) (bdd.Node, error) {
	out := s.validCur
	for name, val := range values {
		v := s.byName[name]
		if v == nil {
			return bdd.False, fmt.Errorf("symbolic: unknown variable %q", name)
		}
		if val < 0 || val >= v.Domain {
			return bdd.False, fmt.Errorf("symbolic: value %d out of domain of %q", val, name)
		}
		out = s.M.And(out, v.EqConst(val))
	}
	return out, nil
}

// Transition builds the transition predicate for a single concrete (from,
// to) state pair. Both maps must assign every variable.
func (s *Space) Transition(from, to map[string]int) (bdd.Node, error) {
	if len(from) != len(s.Vars) || len(to) != len(s.Vars) {
		return bdd.False, fmt.Errorf("symbolic: Transition requires total assignments (%d vars)", len(s.Vars))
	}
	src, err := s.State(from)
	if err != nil {
		return bdd.False, err
	}
	dst, err := s.State(to)
	if err != nil {
		return bdd.False, err
	}
	return s.M.And(src, s.Prime(dst)), nil
}

// --- Var predicates --------------------------------------------------------

func (v *Var) eqConstOn(levels []int, val int) bdd.Node {
	m := v.space.M
	out := bdd.True
	for b, lvl := range levels {
		if val&(1<<b) != 0 {
			out = m.And(out, m.Var(lvl))
		} else {
			out = m.And(out, m.NVar(lvl))
		}
	}
	return out
}

// EqConst returns the predicate v = val over current-state bits.
func (v *Var) EqConst(val int) bdd.Node {
	if val < 0 || val >= v.Domain {
		panic(fmt.Sprintf("symbolic: value %d out of domain [0,%d) of %s", val, v.Domain, v.Name))
	}
	return v.eqConstOn(v.curLevels, val)
}

// NextEqConst returns the predicate v' = val over next-state bits.
func (v *Var) NextEqConst(val int) bdd.Node {
	if val < 0 || val >= v.Domain {
		panic(fmt.Sprintf("symbolic: value %d out of domain [0,%d) of %s", val, v.Domain, v.Name))
	}
	return v.eqConstOn(v.nextLevels, val)
}

// Unchanged returns the transition predicate v' = v.
func (v *Var) Unchanged() bdd.Node {
	m := v.space.M
	out := bdd.True
	for b := range v.curLevels {
		out = m.And(out, m.Iff(m.Var(v.curLevels[b]), m.Var(v.nextLevels[b])))
	}
	return out
}

// Eq returns the state predicate v = w (over current bits of both).
func (v *Var) Eq(w *Var) bdd.Node {
	m := v.space.M
	if v.bits == w.bits && v.Domain == w.Domain {
		out := bdd.True
		for b := range v.curLevels {
			out = m.And(out, m.Iff(m.Var(v.curLevels[b]), m.Var(w.curLevels[b])))
		}
		return out
	}
	// Value-wise comparison for mismatched encodings.
	out := bdd.False
	n := v.Domain
	if w.Domain < n {
		n = w.Domain
	}
	for val := 0; val < n; val++ {
		out = m.Or(out, m.And(v.EqConst(val), w.EqConst(val)))
	}
	return out
}

// NextEq returns the transition predicate v' = w (next of v equals current
// of w) — the symbolic form of the assignment v := w.
func (v *Var) NextEq(w *Var) bdd.Node {
	m := v.space.M
	if v.bits == w.bits && v.Domain == w.Domain {
		out := bdd.True
		for b := range v.curLevels {
			out = m.And(out, m.Iff(m.Var(v.nextLevels[b]), m.Var(w.curLevels[b])))
		}
		return out
	}
	out := bdd.False
	n := v.Domain
	if w.Domain < n {
		n = w.Domain
	}
	for val := 0; val < n; val++ {
		out = m.Or(out, m.And(v.NextEqConst(val), w.EqConst(val)))
	}
	return out
}

// CurLevels returns the BDD variable ids of the variable's current-state
// bits. (Ids, not order positions: they are stable under reordering.)
func (v *Var) CurLevels() []int { return append([]int(nil), v.curLevels...) }

// NextLevels returns the BDD variable ids of the variable's next-state bits.
func (v *Var) NextLevels() []int { return append([]int(nil), v.nextLevels...) }

// DecodeCube extracts this variable's current value from an AllSat cube,
// treating don't-care bits as 0.
func (v *Var) DecodeCube(cube []int8) int {
	val := 0
	for b, lvl := range v.curLevels {
		if cube[lvl] == 1 {
			val |= 1 << b
		}
	}
	return val
}

// DecodeNextCube extracts this variable's next value from an AllSat cube.
func (v *Var) DecodeNextCube(cube []int8) int {
	val := 0
	for b, lvl := range v.nextLevels {
		if cube[lvl] == 1 {
			val |= 1 << b
		}
	}
	return val
}
