package program

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"repro/internal/bdd"
)

// Mode selects how the engine parallelizes symbolic work across workers.
type Mode string

const (
	// ModePartitioned is the share-nothing engine: private worker managers,
	// DAG migration by canonical Export/Import, merges on the owner. It is
	// the default and the reference for the determinism gates.
	ModePartitioned Mode = "partitioned"
	// ModeShared is the shared-memory engine: all workers operate on one
	// node table (bdd.Shared) with per-worker operation caches and a
	// work-stealing scheduler; no transfer, no re-canonicalization — merge
	// barriers double as stop-the-world GC/reorder points.
	ModeShared Mode = "shared"
)

// ParseMode validates a mode string; the empty string selects the default.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case "", ModePartitioned:
		return ModePartitioned, nil
	case ModeShared:
		return ModeShared, nil
	}
	return "", fmt.Errorf("program: unknown engine mode %q (want %q or %q)", s, ModePartitioned, ModeShared)
}

// workerCacheBits sizes the worker clones' BDD operation caches. Workers see
// one fan-out slice of the workload at a time, so they need far less cache
// than the owner (defaultCacheBits = 20 would cost ~80MB per worker).
const workerCacheBits = 16

// Engine couples a compiled program (the owner) with a pool of private worker
// clones for intra-job parallelism. BDD managers are single-threaded, so the
// engine parallelizes by migration: the owner Exports the predicates a task
// needs, a worker Imports them into its clone's manager, computes there, and
// the canonical result buffer travels back to be merged on the owner in task
// order.
//
// Determinism: ROBDDs are canonical, so every intermediate fixpoint set is
// the same function regardless of which manager computed it, and merging in
// task order makes the synthesized Result — transitions, invariant,
// fault-span, and everything derived from them — identical for any worker
// count. (Only incidental manager statistics such as node counts differ.)
type Engine struct {
	// C is the owning compiled program; all results live in its manager.
	C *Compiled

	mode    Mode
	workers []*Compiled // one private clone per pool worker; nil when serial
	pool    *bdd.Pool

	// Shared-memory mode: one session over the owner's manager, with one
	// compiled view per worker (same node table, private caches).
	shared *bdd.Shared
	views  []*Compiled

	// fix accumulates the unified fixpoint scheduler's work counters
	// (fixpoint.go) across the engine's lifetime.
	fix FixpointStats
	// fanoutMin overrides the scheduler's cost-aware fan-out threshold when
	// positive (0 selects fanoutMinFrontier); set by tests to force tiny
	// models through the parallel round paths.
	fanoutMin int
}

// ResolveWorkers maps a requested worker count to an effective one: values
// below 1 select GOMAXPROCS.
func ResolveWorkers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// NewEngine builds an engine over c with the given number of workers (values
// below 1 select GOMAXPROCS). One worker means the serial engine: every
// operation runs directly on the owner with no transfer overhead.
func NewEngine(c *Compiled, workers int) (*Engine, error) {
	e := &Engine{C: c, mode: ModePartitioned}
	workers = ResolveWorkers(workers)
	if workers <= 1 {
		return e, nil
	}
	managers := make([]*bdd.Manager, 0, workers)
	for i := 0; i < workers; i++ {
		wc, err := c.Def.CompileSized(workerCacheBits)
		if err != nil {
			return nil, err
		}
		e.workers = append(e.workers, wc)
		managers = append(managers, wc.Space.M)
	}
	e.pool = bdd.NewPool(managers)
	return e, nil
}

// NewEngineMode builds an engine over c in the given parallelization mode
// (the zero Mode selects partitioned). In shared mode with more than one
// worker, all workers share the owner's node table through a bdd.Shared
// session; one worker degenerates to the serial engine in either mode.
func NewEngineMode(c *Compiled, mode Mode, workers int) (*Engine, error) {
	mode, err := ParseMode(string(mode))
	if err != nil {
		return nil, err
	}
	if mode != ModeShared {
		return NewEngine(c, workers)
	}
	e := &Engine{C: c, mode: ModeShared}
	workers = ResolveWorkers(workers)
	if workers <= 1 {
		return e, nil
	}
	e.shared = bdd.NewShared(c.Space.M, workers, workerCacheBits)
	for i := 0; i < workers; i++ {
		e.views = append(e.views, c.View(e.shared.View(i)))
	}
	return e, nil
}

// SerialEngine wraps c as a one-worker engine (no clones, no transfer).
func SerialEngine(c *Compiled) *Engine { return &Engine{C: c, mode: ModePartitioned} }

// Mode returns the engine's parallelization mode.
func (e *Engine) Mode() Mode {
	if e.mode == "" {
		return ModePartitioned
	}
	return e.mode
}

// Workers returns the engine's worker count (1 for the serial engine).
func (e *Engine) Workers() int {
	if e.shared != nil {
		return e.shared.Workers()
	}
	if e.pool == nil {
		return 1
	}
	return e.pool.Workers()
}

// SetNodeBudget applies a live-node ceiling to the owner manager and every
// worker clone. An operation that pushes any of them past the budget (after
// a collection) panics with *bdd.BudgetError, which Pool.Map and the run
// boundaries convert back into an ordinary error.
func (e *Engine) SetNodeBudget(n int64) {
	e.C.Space.M.SetNodeBudget(n)
	for _, wc := range e.workers {
		wc.Space.M.SetNodeBudget(n)
	}
}

// SetGCThreshold arms (or, with n <= 0, disarms) automatic collection on the
// owning manager and every worker manager.
func (e *Engine) SetGCThreshold(n int64) {
	e.C.Space.M.SetGCThreshold(n)
	for _, wc := range e.workers {
		wc.Space.M.SetGCThreshold(n)
	}
}

// SetReorderThreshold arms (or, with n <= 0, disarms) automatic variable
// reordering on the owning manager and every worker manager.
func (e *Engine) SetReorderThreshold(n int64) {
	e.C.Space.M.SetReorderThreshold(n)
	for _, wc := range e.workers {
		wc.Space.M.SetReorderThreshold(n)
	}
}

// syncOrders re-aligns every worker manager's variable order with the
// owner's. Called at the merge barriers before each fan-out — the workers
// are idle there, and matching orders keep both transfer directions on the
// fast structural path. Results would be identical without it (the transfer
// format carries the sender's order and Import rebuilds on mismatch);
// alignment is the cheap way, not the correct way.
func (e *Engine) syncOrders() {
	if e.pool == nil {
		return
	}
	ord := e.C.Space.M.Order()
	for _, wc := range e.workers {
		wc.Space.M.SetOrder(ord)
	}
}

// PeakLive returns the highest live-node count observed across the owner
// and all worker managers.
func (e *Engine) PeakLive() int64 {
	peak := e.C.Space.M.Stats().PeakLive
	for _, wc := range e.workers {
		if p := wc.Space.M.Stats().PeakLive; p > peak {
			peak = p
		}
	}
	return peak
}

// MapNodes evaluates fn once per task, with tasks distributed across the
// worker clones, and returns the results as nodes of the owning manager in
// task order. shared is one predicate every task reads (exported once,
// imported once per participating worker); inputs[task] is the task's own
// predicate. fn must confine its BDD operations to the *Compiled it is
// handed — the owner on the serial path, a worker clone otherwise.
func (e *Engine) MapNodes(ctx context.Context, shared bdd.Node, inputs []bdd.Node,
	fn func(c *Compiled, shared, input bdd.Node, task int) bdd.Node) ([]bdd.Node, error) {
	if e.shared != nil {
		return e.mapNodesShared(ctx, shared, inputs,
			func(c *Compiled, sh, in bdd.Node, task int) (bdd.Node, error) {
				return fn(c, sh, in, task), nil
			})
	}
	if e.pool == nil {
		// shared, the remaining inputs, and the already-produced results all
		// outlive the arbitrarily large fn calls in between — root them.
		sc := e.C.Space.M.Protect()
		defer sc.Release()
		sc.Keep(shared)
		for _, in := range inputs {
			sc.Keep(in)
		}
		out := make([]bdd.Node, len(inputs))
		for i, in := range inputs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			out[i] = sc.Keep(fn(e.C, shared, in, i))
		}
		return out, nil
	}
	m := e.C.Space.M
	e.syncOrders()
	sharedBuf := m.Export(shared)
	inputBufs := make([][]byte, len(inputs))
	for i, in := range inputs {
		inputBufs[i] = m.Export(in)
	}
	// Per-worker import of the shared predicate, done lazily by the single
	// goroutine that drives each worker (no locking needed). The import is
	// rooted in the worker's manager — it is reused across every task that
	// worker runs — and un-rooted after the pool drains.
	wShared := make([]bdd.Node, len(e.workers))
	wHave := make([]bool, len(e.workers))
	defer func() {
		for i, have := range wHave {
			if have {
				e.workers[i].Space.M.Deref(wShared[i])
			}
		}
	}()
	bufs, err := e.pool.Map(ctx, len(inputs), func(w *bdd.Manager, worker, task int) ([]byte, error) {
		wc := e.workers[worker]
		if !wHave[worker] {
			wShared[worker] = w.Ref(bdd.Import(w, sharedBuf))
			wHave[worker] = true
		}
		in := w.Ref(bdd.Import(w, inputBufs[task]))
		defer w.Deref(in)
		return w.Export(fn(wc, wShared[worker], in, task)), nil
	})
	if err != nil {
		return nil, err
	}
	// Later imports can trigger owner-side collections, so earlier results
	// must be rooted while the loop runs.
	sc := m.Protect()
	defer sc.Release()
	out := make([]bdd.Node, len(bufs))
	for i, b := range bufs {
		out[i] = sc.Keep(bdd.Import(m, b))
	}
	return out, nil
}

// mapNodesShared is MapNodes on the shared-memory engine: tasks run on
// worker views inside one parallel region (bdd.Shared.Run over the shared
// table, with op-internal fork/join underneath — surplus workers steal
// spawned apply branches, so even one giant task keeps every worker busy),
// results are Ref-rooted in the computing view, and after the End barrier —
// where any deferred GC, sifting, or budget enforcement runs stop-the-world —
// the owner adopts them directly: no transfer, no re-canonicalization, the
// result nodes ARE owner nodes. A region that exhausts its pre-sized table
// aborts (the partial results are un-rooted and die at a barrier), grows the
// session, and reruns; tasks are pure functions of their rooted inputs, so a
// rerun is sound.
func (e *Engine) mapNodesShared(ctx context.Context, shared bdd.Node, inputs []bdd.Node,
	fn func(c *Compiled, shared, input bdd.Node, task int) (bdd.Node, error)) ([]bdd.Node, error) {
	m := e.C.Space.M
	sc := m.Protect()
	defer sc.Release()
	sc.Keep(shared)
	for _, in := range inputs {
		sc.Keep(in)
	}
	out := make([]bdd.Node, len(inputs))
	owner := make([]int, len(inputs))
	dropPartials := func() {
		for task, w := range owner {
			if w > 0 {
				e.views[w-1].Space.M.Deref(out[task])
			}
			owner[task] = 0
		}
	}
	for {
		e.shared.Begin()
		err := e.shared.Run(ctx, len(inputs), func(w, task int) error {
			cv := e.views[w]
			r, ferr := fn(cv, shared, inputs[task], task)
			if ferr != nil {
				return ferr
			}
			out[task] = cv.Space.M.Ref(r)
			owner[task] = w + 1 // 0 = not run; results of aborted rounds need un-rooting
			return nil
		})
		e.shared.End() // barrier: stop-the-world GC/reorder; *BudgetError panics here
		if err == nil {
			break
		}
		dropPartials()
		if errors.Is(err, bdd.ErrSharedTableFull) {
			e.shared.Bump()
			m.GC() // sweep the aborted round's garbage before re-sizing the region
			continue
		}
		return nil, err
	}
	for task, w := range owner {
		sc.Keep(out[task])
		e.views[w-1].Space.M.Deref(out[task])
	}
	return out, nil
}

// MapProcs evaluates fn once per process of the program against a shared
// predicate — the shape of the per-process group-closure fan-outs (Step 2's
// maximal realizable subsets, the verifier's per-process checks).
func (e *Engine) MapProcs(ctx context.Context, shared bdd.Node,
	fn func(c *Compiled, j int, shared bdd.Node) bdd.Node) ([]bdd.Node, error) {
	inputs := make([]bdd.Node, len(e.C.Procs)) // placeholders; tasks are indexed by process
	return e.MapNodes(ctx, shared, inputs, func(c *Compiled, sh, _ bdd.Node, j int) bdd.Node {
		return fn(c, j, sh)
	})
}

// ReachableParts computes the forward reachability fixpoint of init under the
// partitioned transition relation, via the unified frontier-chained scheduler
// (fixpoint.go): frontier-only images with saturation-style firing, chained
// within worker blocks and merged across rounds. Every engine configuration
// computes the same least fixpoint.
func (e *Engine) ReachableParts(ctx context.Context, init bdd.Node, parts []bdd.Node) (bdd.Node, error) {
	return e.fixpoint(ctx, init, parts, false)
}

// BackwardReachableParts is the backward (preimage) counterpart of
// ReachableParts.
func (e *Engine) BackwardReachableParts(ctx context.Context, target bdd.Node, parts []bdd.Node) (bdd.Node, error) {
	return e.fixpoint(ctx, target, parts, true)
}
