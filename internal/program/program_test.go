package program

import (
	"math/rand"
	"testing"

	"repro/internal/bdd"
	"repro/internal/expr"
	"repro/internal/symbolic"
)

// figure345Def builds the running example of Section III-B: three boolean
// variables v0, v1, v2; process pj reads {v0,v1} writes {v1}; process pk
// reads {v0,v2} writes {v2}.
func figure345Def() *Def {
	return &Def{
		Name: "figures-3-4-5",
		Vars: []symbolic.VarSpec{
			{Name: "v0", Domain: 2}, {Name: "v1", Domain: 2}, {Name: "v2", Domain: 2},
		},
		Processes: []*Process{
			{Name: "pj", Read: []string{"v0", "v1"}, Write: []string{"v1"}},
			{Name: "pk", Read: []string{"v0", "v2"}, Write: []string{"v2"}},
		},
		Invariant: expr.True,
	}
}

func trans(t *testing.T, s *symbolic.Space, v0, v1, v2, w0, w1, w2 int) bdd.Node {
	t.Helper()
	tr, err := s.Transition(
		map[string]int{"v0": v0, "v1": v1, "v2": v2},
		map[string]int{"v0": w0, "v1": w1, "v2": w2},
	)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestFigure3UnrealizableWrite(t *testing.T) {
	c := figure345Def().MustCompile()
	// (000, 011): changes both v1 and v2 — no single process can do that.
	tr := trans(t, c.Space, 0, 0, 0, 0, 1, 1)
	for _, p := range c.Procs {
		if p.Realizable(tr) {
			t.Errorf("process %s should not realize (000,011)", p.Name)
		}
		if p.MaxRealizableSubset(tr) != bdd.False {
			t.Errorf("process %s max realizable subset of (000,011) should be empty", p.Name)
		}
	}
	if c.ProgramRealizable(tr) {
		t.Error("(000,011) should not be program realizable")
	}
}

func TestFigure4UnrealizableRead(t *testing.T) {
	c := figure345Def().MustCompile()
	// (000, 010): write-legal for pj but its group also contains (001,011),
	// so alone it is not realizable.
	tr := trans(t, c.Space, 0, 0, 0, 0, 1, 0)
	pj := c.Procs[0]
	if pj.Realizable(tr) {
		t.Error("pj should not realize the lone transition (000,010)")
	}
	if c.ProgramRealizable(tr) {
		t.Error("(000,010) alone should not be program realizable")
	}
	// Its group must be exactly {(000,010), (001,011)}.
	group := pj.Group(tr)
	want := c.Space.M.Or(tr, trans(t, c.Space, 0, 0, 1, 0, 1, 1))
	if group != want {
		t.Errorf("group of (000,010) = %s", c.Space.M.String(group))
	}
}

func TestFigure5RealizableGroup(t *testing.T) {
	c := figure345Def().MustCompile()
	m := c.Space.M
	tr := m.Or(trans(t, c.Space, 0, 0, 0, 0, 1, 0), trans(t, c.Space, 0, 0, 1, 0, 1, 1))
	pj, pk := c.Procs[0], c.Procs[1]
	if !pj.Realizable(tr) {
		t.Error("pj should realize the full group {(000,010),(001,011)}")
	}
	if pk.Realizable(tr) {
		t.Error("pk cannot realize transitions that write v1")
	}
	if !c.ProgramRealizable(tr) {
		t.Error("the full group should be program realizable")
	}
	if got := pj.MaxRealizableSubset(tr); got != tr {
		t.Errorf("max realizable subset should be the whole group, got %s", m.String(got))
	}
}

func TestCompileActionSemantics(t *testing.T) {
	d := figure345Def()
	// pj: if v0=0 ∧ v1=0 then v1 := 1 — exactly Figure 5's group.
	d.Processes[0].Actions = []Action{{
		Name:    "set-v1",
		Guard:   expr.And(expr.Eq("v0", 0), expr.Eq("v1", 0)),
		Updates: []Update{Set("v1", 1)},
	}}
	c := d.MustCompile()
	m := c.Space.M
	want := m.Or(trans(t, c.Space, 0, 0, 0, 0, 1, 0), trans(t, c.Space, 0, 0, 1, 0, 1, 1))
	if c.Procs[0].Trans != want {
		t.Fatalf("compiled action = %s, want Figure-5 group", m.String(c.Procs[0].Trans))
	}
	if !c.Procs[0].Realizable(c.Procs[0].Trans) {
		t.Fatal("action compiled from readable guard must be realizable")
	}
	if c.Trans != want {
		t.Fatal("program transitions should equal the single process's")
	}
}

func TestCopyAndChooseUpdates(t *testing.T) {
	d := &Def{
		Name: "updates",
		Vars: []symbolic.VarSpec{{Name: "a", Domain: 3}, {Name: "b", Domain: 3}},
		Processes: []*Process{{
			Name: "p", Read: []string{"a", "b"}, Write: []string{"a"},
			Actions: []Action{
				{Name: "copy", Guard: expr.Eq("a", 0), Updates: []Update{Copy("a", "b")}},
				{Name: "choose", Guard: expr.Eq("a", 1), Updates: []Update{Choose("a", 0, 2)}},
			},
		}},
		Invariant: expr.True,
	}
	c := d.MustCompile()
	s := c.Space
	st, _ := s.State(map[string]int{"a": 0, "b": 2})
	img := s.Image(st, c.Trans)
	want, _ := s.State(map[string]int{"a": 2, "b": 2})
	if img != want {
		t.Fatalf("copy image wrong: %s", s.M.String(img))
	}
	st2, _ := s.State(map[string]int{"a": 1, "b": 1})
	img2 := s.Image(st2, c.Trans)
	w0, _ := s.State(map[string]int{"a": 0, "b": 1})
	w2, _ := s.State(map[string]int{"a": 2, "b": 1})
	if img2 != s.M.Or(w0, w2) {
		t.Fatalf("choose image wrong: %s", s.M.String(img2))
	}
}

func TestFaultCompilationUnrestricted(t *testing.T) {
	d := figure345Def()
	// A fault may write a variable no process could: flips v0.
	d.Faults = []Action{{Name: "flip", Guard: expr.Eq("v0", 0), Updates: []Update{Set("v0", 1)}}}
	c := d.MustCompile()
	if c.Fault == bdd.False {
		t.Fatal("fault should compile to a nonempty relation")
	}
	st, _ := c.Space.State(map[string]int{"v0": 0, "v1": 1, "v2": 0})
	img := c.Space.Image(st, c.Fault)
	want, _ := c.Space.State(map[string]int{"v0": 1, "v1": 1, "v2": 0})
	if img != want {
		t.Fatalf("fault image wrong: %s", c.Space.M.String(img))
	}
}

func TestValidationErrors(t *testing.T) {
	base := func() *Def { return figure345Def() }

	cases := []struct {
		name   string
		mutate func(*Def)
	}{
		{"unknown read", func(d *Def) { d.Processes[0].Read = append(d.Processes[0].Read, "zz") }},
		{"unknown write", func(d *Def) { d.Processes[0].Write = append(d.Processes[0].Write, "zz") }},
		{"write outside read", func(d *Def) { d.Processes[0].Write = append(d.Processes[0].Write, "v2") }},
		{"guard outside read", func(d *Def) {
			d.Processes[0].Actions = []Action{{Guard: expr.Eq("v2", 0), Updates: []Update{Set("v1", 1)}}}
		}},
		{"update outside write", func(d *Def) {
			d.Processes[0].Actions = []Action{{Guard: expr.True, Updates: []Update{Set("v0", 1)}}}
		}},
		{"copy outside read", func(d *Def) {
			d.Processes[0].Actions = []Action{{Guard: expr.True, Updates: []Update{Copy("v1", "v2")}}}
		}},
		{"double assignment", func(d *Def) {
			d.Processes[0].Actions = []Action{{Guard: expr.True, Updates: []Update{Set("v1", 1), Set("v1", 0)}}}
		}},
		{"value out of domain", func(d *Def) {
			d.Processes[0].Actions = []Action{{Guard: expr.True, Updates: []Update{Set("v1", 5)}}}
		}},
		{"empty choice", func(d *Def) {
			d.Processes[0].Actions = []Action{{Guard: expr.True, Updates: []Update{Choose("v1")}}}
		}},
		{"unknown invariant var", func(d *Def) { d.Invariant = expr.Eq("zz", 0) }},
		{"unknown bad state var", func(d *Def) { d.BadStates = expr.Eq("zz", 0) }},
		{"unknown bad trans var", func(d *Def) { d.BadTrans = expr.Changed("zz") }},
		{"unknown fault update", func(d *Def) {
			d.Faults = []Action{{Guard: expr.True, Updates: []Update{Set("zz", 0)}}}
		}},
	}
	for _, tc := range cases {
		d := base()
		tc.mutate(d)
		if _, err := d.Compile(); err == nil {
			t.Errorf("%s: expected compile error", tc.name)
		}
	}
}

func TestDeadlocksAndStutter(t *testing.T) {
	d := figure345Def()
	d.Processes[0].Actions = []Action{{
		Name:    "set-v1",
		Guard:   expr.And(expr.Eq("v0", 0), expr.Eq("v1", 0)),
		Updates: []Update{Set("v1", 1)},
	}}
	c := d.MustCompile()
	s := c.Space
	m := s.M
	dl := c.Deadlocks(c.Trans)
	// Deadlocked: every state with v0=1 or v1=1 (the action is disabled).
	want := m.Diff(s.ValidCur(), m.And(s.VarByName("v0").EqConst(0), s.VarByName("v1").EqConst(0)))
	if dl != want {
		t.Fatalf("deadlocks = %s", m.String(dl))
	}
	full := c.WithStutter(c.Trans)
	if c.Deadlocks(full) != bdd.False {
		t.Fatal("WithStutter must leave no deadlocks")
	}
	// Stutter transitions map each deadlock state to itself.
	img := s.Image(dl, full)
	if img != dl {
		t.Fatalf("stutter image = %s", m.String(img))
	}
}

func TestGroupProperties(t *testing.T) {
	c := figure345Def().MustCompile()
	m := c.Space.M
	rng := rand.New(rand.NewSource(17))
	vals := func() (int, int, int) { return rng.Intn(2), rng.Intn(2), rng.Intn(2) }
	for _, p := range c.Procs {
		for iter := 0; iter < 50; iter++ {
			// Random small transition set, filtered to write-legal.
			delta := bdd.False
			for k := 0; k < 3; k++ {
				a, b, cc := vals()
				d, e, f := vals()
				delta = m.Or(delta, trans(t, c.Space, a, b, cc, d, e, f))
			}
			delta = m.And(delta, p.WriteOK)
			g := p.Group(delta)
			// Group contains its argument (write-legal part).
			if !m.Implies(delta, g) {
				t.Fatalf("%s: group does not contain delta", p.Name)
			}
			// Group is idempotent.
			if p.Group(g) != g {
				t.Fatalf("%s: group not idempotent", p.Name)
			}
			// Monotone: group of a subset is a subset of the group.
			sub := m.And(delta, trans(t, c.Space, 0, 0, 0, 0, 0, 0))
			if !m.Implies(p.Group(sub), g) {
				t.Fatalf("%s: group not monotone", p.Name)
			}
			// MaxRealizableSubset is realizable and inside delta.
			mr := p.MaxRealizableSubset(delta)
			if !m.Implies(mr, delta) {
				t.Fatalf("%s: max realizable subset escapes delta", p.Name)
			}
			if !p.Realizable(mr) {
				t.Fatalf("%s: max realizable subset not realizable", p.Name)
			}
		}
	}
}

func TestMaxRealizableSubsetIsMaximal(t *testing.T) {
	// Exhaustive check on the tiny Figure-3/4/5 space: every realizable
	// subset of delta is contained in MaxRealizableSubset(delta).
	c := figure345Def().MustCompile()
	m := c.Space.M
	pj := c.Procs[0]

	// delta: the Figure-5 group plus a lone group-incomplete transition.
	groupA := m.Or(trans(t, c.Space, 0, 0, 0, 0, 1, 0), trans(t, c.Space, 0, 0, 1, 0, 1, 1))
	lone := trans(t, c.Space, 1, 0, 0, 1, 1, 0) // group twin (101,111) missing
	delta := m.Or(groupA, lone)

	mr := pj.MaxRealizableSubset(delta)
	if mr != groupA {
		t.Fatalf("max realizable subset = %s, want the complete group only", m.String(mr))
	}
}

func TestDescribeActions(t *testing.T) {
	d := figure345Def()
	d.Processes[0].Actions = []Action{{
		Name:    "set-v1",
		Guard:   expr.And(expr.Eq("v0", 0), expr.Eq("v1", 0)),
		Updates: []Update{Set("v1", 1)},
	}}
	c := d.MustCompile()
	pj := c.Procs[0]
	lines := pj.DescribeActions(pj.Trans, 8)
	if len(lines) != 1 {
		t.Fatalf("lines = %q", lines)
	}
	want := "when v0=0 ∧ v1=0 → v1:=1"
	if lines[0] != want {
		t.Fatalf("line = %q, want %q", lines[0], want)
	}
	// Truncation marker.
	all := pj.DescribeActions(pj.WriteOK, 1)
	if len(all) == 0 || all[len(all)-1] != "…" {
		t.Fatalf("expected truncation marker, got %q", all)
	}
}

func TestProcPartsAndPartsWithFaults(t *testing.T) {
	d := figure345Def()
	d.Faults = []Action{{Guard: expr.Eq("v0", 0), Updates: []Update{Set("v0", 1)}}}
	c := d.MustCompile()
	parts := c.ProcParts(bdd.True)
	if len(parts) != 2 {
		t.Fatalf("ProcParts = %d entries", len(parts))
	}
	withF := c.PartsWithFaults(bdd.True)
	if len(withF) != 3 {
		t.Fatalf("PartsWithFaults = %d entries", len(withF))
	}
	if withF[2] != c.FaultParts[0] {
		t.Fatal("fault partition missing")
	}
}
