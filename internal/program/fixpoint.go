package program

// This file is the single reachability-fixpoint implementation shared by all
// three engine configurations (serial, partitioned, shared-table) — the
// frontier-chained scheduler (see DESIGN.md §19). The previous generation of
// the engine had three divergent loops (a serial chain delegated to
// internal/symbolic, and one round-based loop per parallel mode that imaged
// the whole reached set every round — catastrophically slow on deep-diameter
// models like sc(12)); they are all replaced by Engine.fixpoint below.
//
// Algorithm. Every partition i carries a snapshot seen[i] ⊆ reached of the
// states its image has already been applied to. Its frontier is
// reached ∖ seen[i]; imaging only the frontier is sound because images
// distribute over union: Image(reached) = Image(seen[i]) ∪ Image(frontier),
// and the invariant Image(seen[i]) ⊆ reached holds from the moment seen[i]
// is advanced. A partition with an empty frontier is saturated and costs
// nothing until other partitions add states — the saturation firing policy.
// When every frontier is empty, reached = seen[i] for all i, so
// Image_i(reached) ⊆ reached for every partition: reached is the (unique)
// least fixpoint, independent of visit order — chaotic iteration of monotone
// operators on a finite lattice.
//
// Serial: one block holding all partitions, chained to convergence
// (chainBlock). Parallel: rounds across workers, chaining within — the
// pending partitions (non-empty frontier) are dealt contiguously into one
// block per worker; each worker runs the block-local chained fixpoint from
// local = reached, returns its delta L_b ∖ reached; the owner merges deltas
// in block order (canonical BDDs make the merged set schedule-independent)
// and advances seen[i] := reached ∪ delta_b for i in block b — sound because
// the block converged locally: Image_i(reached ∪ delta_b) ⊆ reached ∪
// delta_b ⊆ reached'. On a process chain, contiguous blocks keep consecutive
// processes together, so depth is covered by in-block chaining at the cost
// of O(workers) rounds instead of O(diameter).

import (
	"context"
	"runtime"

	"repro/internal/bdd"
	"repro/internal/symbolic"
)

// FixpointStats counts the work of the unified reachability scheduler across
// an engine's lifetime. The counters are observability (RunReport fix_*
// fields, /metrics.json); they are normalized away from reports like the
// other engine counters. Rounds/Images/frontier sizes are deterministic for
// a fixed worker count; OpSpawns/OpSteals depend on the steal schedule.
type FixpointStats struct {
	// Rounds is the number of scheduler rounds: 1 per serial fixpoint,
	// one per cross-worker barrier in parallel mode.
	Rounds int64
	// Images is the number of image/preimage applications (frontier images
	// only — saturated partitions fire none).
	Images int64
	// PeakFrontier is the largest frontier BDD (in nodes) handed to an
	// image; FinalFrontier is the size of the last non-empty frontier before
	// convergence.
	PeakFrontier  int64
	FinalFrontier int64
	// OpSpawns/OpSteals are the shared engine's fork/join apply counters:
	// high branches spawned as stealable opTasks, and how many were executed
	// by a worker other than the spawner (bdd.Shared.OpStats).
	OpSpawns int64
	OpSteals int64
}

// FixpointStats returns the scheduler's cumulative work counters, including
// the shared session's fork/join counters when running in shared mode.
func (e *Engine) FixpointStats() FixpointStats {
	fs := e.fix
	if e.shared != nil {
		fs.OpSpawns, fs.OpSteals = e.shared.OpStats()
	}
	return fs
}

// chainStats accumulates one block's scheduler work; merged into Engine.fix
// in deterministic block order.
type chainStats struct {
	images int64
	peak   int64
	final  int64
}

// fanoutMinFrontier is the default cost-aware fan-out threshold: a parallel
// round whose pending frontiers total fewer BDD nodes than this runs as a
// single owner-side block instead of fanning out (see Engine.fixpoint).
const fanoutMinFrontier = 8192

// fanoutThreshold returns the engine's fan-out threshold (tests lower it to
// force tiny models through the parallel paths).
func (e *Engine) fanoutThreshold() int {
	if e.fanoutMin > 0 {
		return e.fanoutMin
	}
	return fanoutMinFrontier
}

// image applies one frontier image (or preimage) through a partition.
func image(sp *symbolic.Space, front, part bdd.Node, backward bool) bdd.Node {
	if backward {
		return sp.Preimage(front, part)
	}
	return sp.Image(front, part)
}

// chainBlock advances one block of partitions to its block-local fixpoint:
// starting from the rooted running set local and the given per-partition
// initial frontiers (fronts[k] = local ∖ seen_global[parts[k]]), it chains
// frontier images into local until no partition in the block can add states.
// All nodes are relative to sp's manager; local is updated in place.
func chainBlock(ctx context.Context, sp *symbolic.Space, local *bdd.Rooted,
	parts, fronts []bdd.Node, backward bool, st *chainStats) error {
	m := sp.M
	sc := m.Protect()
	defer sc.Release()
	for _, p := range parts {
		sc.Keep(p)
	}
	// Block-local seen snapshots: everything except the handed-in frontier
	// has already been imaged (by this block in an earlier round, or it was
	// merged from another block and granted to this one's frontier).
	seen := make([]*bdd.Rooted, len(parts))
	for k := range parts {
		sc.Keep(fronts[k])
		seen[k] = sc.Slot(m.Diff(local.Node(), fronts[k]))
	}
	for {
		progress := false
		for k, p := range parts {
			if p == bdd.False {
				continue
			}
			for {
				if err := ctx.Err(); err != nil {
					return err
				}
				front := m.Diff(local.Node(), seen[k].Node())
				if front == bdd.False {
					break // saturated until another partition adds states
				}
				if n := int64(m.NodeCount(front)); true {
					if n > st.peak {
						st.peak = n
					}
					st.final = n
				}
				seen[k].Set(local.Node())
				img := image(sp, front, p, backward)
				st.images++
				add := m.Diff(img, local.Node())
				if add == bdd.False {
					break
				}
				local.Set(m.Or(local.Node(), add))
				progress = true
			}
		}
		if !progress {
			return nil
		}
	}
}

// fixpoint is the frontier-chained reachability scheduler — the one fixpoint
// loop behind ReachableParts and BackwardReachableParts on every engine
// configuration. init is conjoined with ValidCur; the result is the least
// fixpoint of the partitioned (pre)image closure.
func (e *Engine) fixpoint(ctx context.Context, init bdd.Node, parts []bdd.Node, backward bool) (bdd.Node, error) {
	m := e.C.Space.M
	sc := m.Protect()
	defer sc.Release()
	for _, p := range parts {
		sc.Keep(p)
	}
	reached := sc.Slot(m.And(init, e.C.Space.ValidCur()))

	if e.Workers() <= 1 {
		// Serial: one block, all partitions, full initial frontiers.
		fronts := make([]bdd.Node, len(parts))
		for k := range fronts {
			fronts[k] = reached.Node()
		}
		var st chainStats
		err := chainBlock(ctx, e.C.Space, reached, parts, fronts, backward, &st)
		e.fix.Rounds++
		e.foldChainStats(st)
		return reached.Node(), err // sound but incomplete on cancellation
	}

	// Parallel: rounds across workers, chained blocks within.
	pc := e.newPoolFixCache()
	defer pc.release(e)
	seen := make([]*bdd.Rooted, len(parts))
	for i := range parts {
		seen[i] = sc.Slot(bdd.False)
	}
	for {
		if err := ctx.Err(); err != nil {
			return bdd.False, err
		}
		rsc := m.Protect()
		// Pending scan: partitions whose frontier is non-empty. Saturated
		// partitions are skipped entirely this round.
		var pidx []int
		var pfronts []bdd.Node
		work := 0
		for i, p := range parts {
			if p == bdd.False {
				continue
			}
			front := m.Diff(reached.Node(), seen[i].Node())
			if front == bdd.False {
				continue
			}
			pidx = append(pidx, i)
			pfronts = append(pfronts, rsc.Keep(front))
			work += m.NodeCount(front)
		}
		if len(pidx) == 0 {
			rsc.Release()
			return reached.Node(), nil
		}
		e.fix.Rounds++
		// Cost-aware fan-out: splitting the pending partitions across blocks
		// duplicates frontier growth (each block's seen snapshots lag the
		// others by a round), which only pays off when the round carries real
		// work. Rounds below the threshold — the long sequential tail of
		// chain-structured models — run as one owner-side block instead,
		// which also keeps them on the owner's large operation cache.
		if len(pidx) < 2 || work < e.fanoutThreshold() {
			bparts := make([]bdd.Node, len(pidx))
			for k, i := range pidx {
				bparts[k] = parts[i]
			}
			var st chainStats
			err := chainBlock(ctx, e.C.Space, reached, bparts, pfronts, backward, &st)
			e.foldChainStats(st)
			if err != nil {
				rsc.Release()
				return reached.Node(), err
			}
			// The owner block converged on every pending partition; their
			// snapshots advance to the new reached set.
			for _, i := range pidx {
				seen[i].Set(reached.Node())
			}
			rsc.Release()
			continue
		}
		// Block count: one per worker, but never wider than the machine —
		// splitting past the physical core count duplicates frontier growth
		// with nothing to run it on. Floor 2 keeps the parallel machinery
		// (regions, transfer, fork/join) exercised whenever workers > 1; the
		// result is the same least fixpoint at any width.
		nb := e.Workers()
		if g := runtime.GOMAXPROCS(0); g < nb {
			nb = g
			if nb < 2 {
				nb = 2
			}
		}
		if len(pidx) < nb {
			nb = len(pidx)
		}
		// Contiguous blocks preserve partition order: on chain-structured
		// models consecutive processes stay in one block, so the in-block
		// chain covers depth without cross-worker rounds.
		blocks := make([][2]int, nb)
		for b := 0; b < nb; b++ {
			blocks[b] = [2]int{b * len(pidx) / nb, (b + 1) * len(pidx) / nb}
		}
		stats := make([]chainStats, nb)
		var deltas []bdd.Node
		var err error
		if e.shared != nil {
			deltas, err = e.runBlocksShared(ctx, reached.Node(), parts, pidx, pfronts, blocks, backward, stats)
		} else {
			deltas, err = e.runBlocksPool(ctx, reached.Node(), parts, pidx, pfronts, blocks, backward, stats, pc)
		}
		if err != nil {
			rsc.Release()
			return bdd.False, err
		}
		// Merge the per-block deltas in block order (canonical ROBDDs make
		// the merged set identical for any schedule and worker count), then
		// advance the seen snapshots: block b converged locally on
		// base ∪ delta_b, so exactly that set is imaged for its partitions.
		for _, d := range deltas {
			rsc.Keep(d)
		}
		base := rsc.Keep(reached.Node())
		for b, d := range deltas {
			e.foldChainStats(stats[b])
			if d != bdd.False {
				reached.Set(m.Or(reached.Node(), d))
			}
			lb := rsc.Keep(m.Or(base, d))
			for k := blocks[b][0]; k < blocks[b][1]; k++ {
				seen[pidx[k]].Set(lb)
			}
		}
		rsc.Release()
	}
}

// foldChainStats merges one block's counters into the engine totals.
func (e *Engine) foldChainStats(st chainStats) {
	e.fix.Images += st.images
	if st.peak > e.fix.PeakFrontier {
		e.fix.PeakFrontier = st.peak
	}
	if st.final > 0 {
		e.fix.FinalFrontier = st.final
	}
}

// runBlocksShared runs one scheduler round's blocks across the shared
// session's views: block b chains its partitions from local = reached inside
// the parallel region (fork/join apply enabled underneath) and returns its
// delta, an owner node adopted at the End barrier.
func (e *Engine) runBlocksShared(ctx context.Context, reached bdd.Node, parts []bdd.Node,
	pidx []int, pfronts []bdd.Node, blocks [][2]int, backward bool, stats []chainStats) ([]bdd.Node, error) {
	placeholders := make([]bdd.Node, len(blocks))
	return e.mapNodesShared(ctx, reached, placeholders, func(cv *Compiled, sh, _ bdd.Node, b int) (bdd.Node, error) {
		stats[b] = chainStats{} // aborted attempts re-enter; count the run that lands
		vm := cv.Space.M
		vsc := vm.Protect()
		defer vsc.Release()
		local := vsc.Slot(sh)
		lo, hi := blocks[b][0], blocks[b][1]
		bparts := make([]bdd.Node, hi-lo)
		bfronts := make([]bdd.Node, hi-lo)
		for k := lo; k < hi; k++ {
			bparts[k-lo] = parts[pidx[k]]
			bfronts[k-lo] = pfronts[k]
		}
		if err := chainBlock(ctx, cv.Space, local, bparts, bfronts, backward, &stats[b]); err != nil {
			return bdd.False, err
		}
		return vm.Diff(local.Node(), sh), nil
	})
}

// poolFixCache holds the partitioned engine's per-fixpoint transfer caches:
// partition predicates are static, so each worker imports a partition at
// most once per fixpoint (rooted in its manager until release).
type poolFixCache struct {
	partBufs map[int][]byte
	wParts   []map[int]bdd.Node
}

func (e *Engine) newPoolFixCache() *poolFixCache {
	pc := &poolFixCache{partBufs: make(map[int][]byte)}
	pc.wParts = make([]map[int]bdd.Node, len(e.workers))
	for i := range pc.wParts {
		pc.wParts[i] = make(map[int]bdd.Node)
	}
	return pc
}

func (pc *poolFixCache) release(e *Engine) {
	for w, imports := range pc.wParts {
		wm := e.workers[w].Space.M
		for _, n := range imports {
			wm.Deref(n)
		}
	}
}

// runBlocksPool is runBlocksShared for the share-nothing engine: the reached
// set and the block frontiers are exported per round, partitions at most
// once per fixpoint (pc), each worker chains its blocks privately, and the
// owner imports the canonical delta buffers in block order.
func (e *Engine) runBlocksPool(ctx context.Context, reached bdd.Node, parts []bdd.Node,
	pidx []int, pfronts []bdd.Node, blocks [][2]int, backward bool, stats []chainStats,
	pc *poolFixCache) ([]bdd.Node, error) {
	m := e.C.Space.M
	// Owner-side merges between rounds can trigger an owner reorder;
	// re-align the idle workers before each fan-out. (A reorder invalidates
	// nothing in pc: transfer buffers carry their own order, and worker-side
	// imports are nodes, which survive their manager's reordering.)
	e.syncOrders()
	setBuf := m.Export(reached)
	frontBufs := make([][]byte, len(pfronts))
	for k, f := range pfronts {
		frontBufs[k] = m.Export(f)
	}
	for _, k := range pidx {
		if _, ok := pc.partBufs[k]; !ok {
			pc.partBufs[k] = m.Export(parts[k])
		}
	}
	// The reached-set import is shared by every block a worker runs this
	// round; rooted until the pool drains.
	wSet := make([]bdd.Node, len(e.workers))
	wHaveS := make([]bool, len(e.workers))
	bufs, err := e.pool.Map(ctx, len(blocks), func(w *bdd.Manager, worker, b int) ([]byte, error) {
		wc := e.workers[worker]
		if !wHaveS[worker] {
			wSet[worker] = w.Ref(bdd.Import(w, setBuf))
			wHaveS[worker] = true
		}
		stats[b] = chainStats{}
		wsc := w.Protect()
		defer wsc.Release()
		lo, hi := blocks[b][0], blocks[b][1]
		bparts := make([]bdd.Node, hi-lo)
		bfronts := make([]bdd.Node, hi-lo)
		for k := lo; k < hi; k++ {
			i := pidx[k]
			if _, ok := pc.wParts[worker][i]; !ok {
				pc.wParts[worker][i] = w.Ref(bdd.Import(w, pc.partBufs[i]))
			}
			bparts[k-lo] = pc.wParts[worker][i]
			bfronts[k-lo] = wsc.Keep(bdd.Import(w, frontBufs[k]))
		}
		local := wsc.Slot(wSet[worker])
		if err := chainBlock(ctx, wc.Space, local, bparts, bfronts, backward, &stats[b]); err != nil {
			return nil, err
		}
		return w.Export(w.Diff(local.Node(), wSet[worker])), nil
	})
	for i, have := range wHaveS {
		if have {
			e.workers[i].Space.M.Deref(wSet[i])
		}
	}
	if err != nil {
		return nil, err
	}
	// Later imports can trigger owner-side collections; root as we go.
	sc := m.Protect()
	defer sc.Release()
	out := make([]bdd.Node, len(bufs))
	for i, b := range bufs {
		out[i] = sc.Keep(bdd.Import(m, b))
	}
	return out, nil
}

// CyclicCore returns the greatest fixpoint of states in region with a
// partition-edge successor staying in the set: the states from which an
// infinite path inside region exists. It is the one GFP loop shared by the
// repair algorithms' cycle analysis and the verifier's livelock check.
//
// The fixpoint runs on the union of the partitions restricted to
// region × region, computed once up front: the greatest fixpoint peels the
// set one layer per iteration (a chain of n cells takes ~n iterations), so a
// single static relation whose relational-product subresults stay cached
// across iterations beats re-scanning every partition per iteration.
func CyclicCore(c *Compiled, parts []bdd.Node, region bdd.Node) bdd.Node {
	m := c.Space.M
	s := c.Space
	sc := m.Protect()
	defer sc.Release()
	sc.Keep(region)
	for _, p := range parts {
		sc.Keep(p)
	}
	rel := sc.Slot(bdd.False)
	inside := sc.Keep(m.And(region, s.Prime(region)))
	for _, p := range parts {
		rel.Set(m.Or(rel.Node(), m.And(p, inside)))
	}
	z := sc.Slot(region)
	for {
		next := m.And(z.Node(), m.AndExists(rel.Node(), s.Prime(z.Node()), s.NextCube()))
		if next == z.Node() {
			return z.Node()
		}
		z.Set(next)
	}
}
