// Package program models distributed programs in the paper's sense: a finite
// set of finite-domain variables and a set of processes, each with read and
// write restrictions and a set of guarded-command actions. Programs compile
// to symbolic (BDD) transition predicates, and the package provides the
// read-restriction group operator that defines realizability
// (Section III-B of the paper).
package program

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/expr"
	"repro/internal/symbolic"
)

// UpdateKind distinguishes the forms of assignment an action can make.
type UpdateKind int

const (
	// SetConst assigns a constant: v := c.
	SetConst UpdateKind = iota
	// CopyVar assigns another variable's current value: v := w.
	CopyVar
	// ChooseConst assigns nondeterministically one of several constants:
	// v := c1 | c2 | …  (used e.g. for Byzantine perturbation).
	ChooseConst
)

// Update is a single assignment performed by an action.
type Update struct {
	Kind  UpdateKind
	Var   string
	Val   int    // SetConst
	From  string // CopyVar
	Among []int  // ChooseConst
}

// Set returns the update v := val.
func Set(v string, val int) Update { return Update{Kind: SetConst, Var: v, Val: val} }

// Copy returns the update v := from.
func Copy(v, from string) Update { return Update{Kind: CopyVar, Var: v, From: from} }

// Choose returns the nondeterministic update v := among[0] | among[1] | …
func Choose(v string, among ...int) Update {
	return Update{Kind: ChooseConst, Var: v, Among: among}
}

// Action is a guarded command: when Guard holds, perform Updates atomically;
// all variables without an update stay unchanged.
type Action struct {
	Name    string
	Guard   expr.Expr
	Updates []Update
	// Cost is the optional weight annotation (.ftr trailing `cost N` clause):
	// the price cost-aware repair assigns to each transition of this action.
	// 0 means unannotated — such transitions fall back to cost rules or the
	// model default (see Compiled.WeightADD). Ignored on fault actions.
	Cost int64
}

// Process declares one process of a distributed program: the variables it
// may read, the variables it may write (W ⊆ R per Definition 17), and its
// actions.
type Process struct {
	Name    string
	Read    []string
	Write   []string
	Actions []Action
}

// Def is the complete declarative definition of a repair problem instance:
// the distributed program, its fault actions, the invariant (set of
// legitimate states), and the safety specification (bad states Sf_bs and bad
// transitions Sf_bt).
type Def struct {
	Name      string
	Vars      []symbolic.VarSpec
	Processes []*Process
	// Faults are transitions not subject to read/write restrictions
	// (Definition 12).
	Faults []Action
	// Invariant is the set of legitimate states S.
	Invariant expr.Expr
	// BadStates is Sf_bs: states no computation may reach.
	BadStates expr.Expr
	// BadTrans is Sf_bt: transitions no computation may take. It may use
	// transition-level predicates (Changed, NextEq).
	BadTrans expr.Expr
	// Liveness holds the optional leads-to properties L ↝ T of the
	// specification (Definition 8). The repair algorithms preserve safety
	// and recovery by construction; leads-to properties are checked by the
	// verifier on the repaired program (see verify.Result).
	Liveness []LeadsTo
	// CostRules price transitions by predicate (.ftr top-level
	// `cost N : expr` declarations; transition-level predicates allowed).
	// When several sources price one transition, the minimum wins.
	CostRules []CostRule
}

// CostRule prices every transition satisfying Pred at Cost (Cost ≥ 1).
type CostRule struct {
	Cost int64
	Pred expr.Expr
}

// LeadsTo is one leads-to property L ↝ T: every computation that visits an
// L-state must later visit a T-state (Definition 8).
type LeadsTo struct {
	Name string
	From expr.Expr // L
	To   expr.Expr // T
}

// CompiledLeadsTo is the symbolic form of a LeadsTo.
type CompiledLeadsTo struct {
	Name     string
	From, To bdd.Node
}

// CompiledProc is the symbolic form of one process.
type CompiledProc struct {
	Name  string
	Read  map[string]bool
	Write map[string]bool

	// Trans is δ_j: the process's transitions (write restrictions hold by
	// construction).
	Trans bdd.Node
	// WriteOK is the set of transitions that respect the process's write
	// restriction: every variable outside W_j unchanged.
	WriteOK bdd.Node
	// SameUnread is the set of transitions leaving every unreadable
	// variable unchanged. Since W ⊆ R this is implied by WriteOK.
	SameUnread bdd.Node
	// Acts holds each action's compiled transition relation alongside its
	// declared cost annotation, in declaration order — the per-action
	// granularity WeightADD prices transitions at (Trans is their union).
	Acts []CompiledAction

	unreadCube bdd.Node // cube of the unreadable variables' cur+next bits
	space      *symbolic.Space
}

// CompiledAction is one action's symbolic transition relation together with
// its declared cost annotation (0 when unannotated).
type CompiledAction struct {
	Name  string
	Cost  int64
	Trans bdd.Node
}

// Compiled is the symbolic form of a Def: everything the repair algorithms
// operate on.
type Compiled struct {
	Def   *Def
	Space *symbolic.Space
	Procs []*CompiledProc

	// Trans is δ_P: the union of all process transitions (without the
	// Definition-18 stutter; see WithStutter).
	Trans bdd.Node
	// Fault is the union of all fault transitions.
	Fault bdd.Node
	// FaultParts holds each fault action's transitions separately, for
	// disjunctively-partitioned image computation.
	FaultParts []bdd.Node
	// AnyWrite is the union of the processes' write-legal transition
	// universes: transitions at least one process could perform without
	// violating its write restriction. Write restrictions are cheap to
	// enforce (a conjunction per process), so Step 1 of lazy repair keeps
	// them while ignoring the expensive read restrictions.
	AnyWrite bdd.Node

	Invariant bdd.Node // S
	BadStates bdd.Node // Sf_bs
	BadTrans  bdd.Node // Sf_bt
	Liveness  []CompiledLeadsTo
	// CostRules is the symbolic form of Def.CostRules: each rule's predicate
	// lowered to a transition relation (conjoined with ValidTrans).
	CostRules []CompiledCostRule
}

// CompiledCostRule is the symbolic form of one CostRule.
type CompiledCostRule struct {
	Cost  int64
	Trans bdd.Node
}

// View rebinds the compiled program to a worker view of a shared-memory BDD
// session (see symbolic.Space.View). All node fields are values in the
// shared table and carry over verbatim; only the manager bindings change.
func (c *Compiled) View(vm *bdd.Manager) *Compiled {
	cv := *c
	cv.Space = c.Space.View(vm)
	cv.Procs = make([]*CompiledProc, len(c.Procs))
	for i, p := range c.Procs {
		pv := *p
		pv.space = cv.Space
		cv.Procs[i] = &pv
	}
	return &cv
}

// Compile validates the definition and lowers it to BDDs.
func (d *Def) Compile() (*Compiled, error) {
	space, err := symbolic.New(d.Vars)
	if err != nil {
		return nil, err
	}
	return d.compileInto(space)
}

// CompileSized is Compile with explicit BDD operation-cache sizing (2^cacheBits
// entries per cache). The parallel engine compiles its worker clones this way
// so that N workers do not multiply the default cache footprint by N.
func (d *Def) CompileSized(cacheBits int) (*Compiled, error) {
	space, err := symbolic.NewSized(d.Vars, cacheBits)
	if err != nil {
		return nil, err
	}
	return d.compileInto(space)
}

// compileInto lowers the definition onto an existing (empty) space. Because
// compilation is deterministic, two compiles of the same Def produce spaces
// with identical variable orders — the property the parallel engine relies on
// to migrate predicates between the owner and its worker clones.
func (d *Def) compileInto(space *symbolic.Space) (*Compiled, error) {
	var err error
	c := &Compiled{Def: d, Space: space, Trans: bdd.False, Fault: bdd.False, AnyWrite: bdd.False}
	m := space.M

	// Compilation accumulates predicates across per-process compiles that
	// may each allocate heavily; slots keep the accumulators rooted through
	// collections, and every Compiled field ends up permanently rooted — the
	// Compiled lives as long as its manager.
	sc := m.Protect()
	defer sc.Release()
	trans := sc.Slot(bdd.False)
	anyWrite := sc.Slot(bdd.False)
	fault := sc.Slot(bdd.False)

	for _, p := range d.Processes {
		cp, err := compileProcess(space, p)
		if err != nil {
			return nil, fmt.Errorf("program %s: %w", d.Name, err)
		}
		c.Procs = append(c.Procs, cp)
		trans.Set(m.Or(trans.Node(), cp.Trans))
		anyWrite.Set(m.Or(anyWrite.Node(), m.And(cp.WriteOK, space.ValidTrans())))
	}
	c.Trans = m.Ref(trans.Node())
	c.AnyWrite = m.Ref(anyWrite.Node())
	for i, fa := range d.Faults {
		tr, err := compileAction(space, fa, nil)
		if err != nil {
			return nil, fmt.Errorf("program %s: fault %d (%s): %w", d.Name, i, fa.Name, err)
		}
		fault.Set(m.Or(fault.Node(), tr))
		c.FaultParts = append(c.FaultParts, m.Ref(tr))
	}
	c.Fault = m.Ref(fault.Node())

	if c.Invariant, err = compilePred(space, d.Invariant, bdd.True); err != nil {
		return nil, fmt.Errorf("program %s: invariant: %w", d.Name, err)
	}
	c.Invariant = m.Ref(m.And(c.Invariant, space.ValidCur()))
	if c.BadStates, err = compilePred(space, d.BadStates, bdd.False); err != nil {
		return nil, fmt.Errorf("program %s: bad states: %w", d.Name, err)
	}
	c.BadStates = m.Ref(m.And(c.BadStates, space.ValidCur()))
	if c.BadTrans, err = compilePred(space, d.BadTrans, bdd.False); err != nil {
		return nil, fmt.Errorf("program %s: bad transitions: %w", d.Name, err)
	}
	c.BadTrans = m.Ref(m.And(c.BadTrans, space.ValidTrans()))
	for i, lt := range d.Liveness {
		from, err := compilePred(space, lt.From, bdd.False)
		if err != nil {
			return nil, fmt.Errorf("program %s: liveness %d (%s): %w", d.Name, i, lt.Name, err)
		}
		sc.Keep(from)
		to, err := compilePred(space, lt.To, bdd.False)
		if err != nil {
			return nil, fmt.Errorf("program %s: liveness %d (%s): %w", d.Name, i, lt.Name, err)
		}
		c.Liveness = append(c.Liveness, CompiledLeadsTo{
			Name: lt.Name,
			From: m.Ref(m.And(from, space.ValidCur())),
			To:   m.Ref(m.And(to, space.ValidCur())),
		})
	}
	for i, cr := range d.CostRules {
		if cr.Cost < 1 {
			return nil, fmt.Errorf("program %s: cost rule %d: cost %d must be positive", d.Name, i, cr.Cost)
		}
		pred, err := compilePred(space, cr.Pred, bdd.False)
		if err != nil {
			return nil, fmt.Errorf("program %s: cost rule %d: %w", d.Name, i, err)
		}
		c.CostRules = append(c.CostRules, CompiledCostRule{
			Cost:  cr.Cost,
			Trans: m.Ref(m.And(pred, space.ValidTrans())),
		})
	}
	return c, nil
}

// MustCompile is Compile but panics on error.
func (d *Def) MustCompile() *Compiled {
	c, err := d.Compile()
	if err != nil {
		panic(err)
	}
	return c
}

func compilePred(s *symbolic.Space, e expr.Expr, dflt bdd.Node) (bdd.Node, error) {
	if e == nil {
		return dflt, nil
	}
	return e.Compile(s)
}

func compileProcess(s *symbolic.Space, p *Process) (*CompiledProc, error) {
	cp := &CompiledProc{
		Name:  p.Name,
		Read:  make(map[string]bool, len(p.Read)),
		Write: make(map[string]bool, len(p.Write)),
		space: s,
	}
	for _, name := range p.Read {
		if s.VarByName(name) == nil {
			return nil, fmt.Errorf("process %s: unknown read variable %q", p.Name, name)
		}
		cp.Read[name] = true
	}
	for _, name := range p.Write {
		if s.VarByName(name) == nil {
			return nil, fmt.Errorf("process %s: unknown write variable %q", p.Name, name)
		}
		if !cp.Read[name] {
			return nil, fmt.Errorf("process %s: writes %q without reading it (W ⊆ R required)", p.Name, name)
		}
		cp.Write[name] = true
	}

	m := s.M
	sc := m.Protect()
	defer sc.Release()
	writeOK := sc.Slot(bdd.True)
	sameUnread := sc.Slot(bdd.True)
	var unreadLevels []int
	for _, v := range s.Vars {
		if !cp.Write[v.Name] {
			writeOK.Set(m.And(writeOK.Node(), v.Unchanged()))
		}
		if !cp.Read[v.Name] {
			sameUnread.Set(m.And(sameUnread.Node(), v.Unchanged()))
			unreadLevels = append(unreadLevels, v.CurLevels()...)
			unreadLevels = append(unreadLevels, v.NextLevels()...)
		}
	}
	// CompiledProc fields share the manager's lifetime; root them for good.
	cp.WriteOK = m.Ref(writeOK.Node())
	cp.SameUnread = m.Ref(sameUnread.Node())
	cp.unreadCube = m.Ref(m.Cube(unreadLevels))

	trans := sc.Slot(bdd.False)
	for i, a := range p.Actions {
		tr, err := compileAction(s, a, cp)
		if err != nil {
			return nil, fmt.Errorf("process %s: action %d (%s): %w", p.Name, i, a.Name, err)
		}
		cp.Acts = append(cp.Acts, CompiledAction{Name: a.Name, Cost: a.Cost, Trans: m.Ref(tr)})
		trans.Set(m.Or(trans.Node(), tr))
	}
	cp.Trans = m.Ref(trans.Node())
	return cp, nil
}

// compileAction lowers a guarded command to a transition predicate. When cp
// is non-nil the action is checked against the process's read/write
// restrictions; fault actions pass cp == nil and are unrestricted.
func compileAction(s *symbolic.Space, a Action, cp *CompiledProc) (bdd.Node, error) {
	m := s.M
	sc := m.Protect()
	defer sc.Release()
	guard := bdd.True
	if a.Guard != nil {
		var err error
		if guard, err = a.Guard.Compile(s); err != nil {
			return bdd.False, err
		}
		sc.Keep(guard) // held across the whole updates + frame accumulation
		if cp != nil {
			for _, name := range a.Guard.Vars(nil) {
				if !cp.Read[name] {
					return bdd.False, fmt.Errorf("guard reads %q outside read set", name)
				}
			}
		}
	}

	relSlot := sc.Slot(bdd.True)
	rel := bdd.True
	assigned := make(map[string]bool, len(a.Updates))
	for _, u := range a.Updates {
		v := s.VarByName(u.Var)
		if v == nil {
			return bdd.False, fmt.Errorf("update targets unknown variable %q", u.Var)
		}
		if assigned[u.Var] {
			return bdd.False, fmt.Errorf("variable %q assigned twice", u.Var)
		}
		assigned[u.Var] = true
		if cp != nil && !cp.Write[u.Var] {
			return bdd.False, fmt.Errorf("update writes %q outside write set", u.Var)
		}
		switch u.Kind {
		case SetConst:
			if u.Val < 0 || u.Val >= v.Domain {
				return bdd.False, fmt.Errorf("value %d outside domain of %q", u.Val, u.Var)
			}
			rel = relSlot.Set(m.And(rel, v.NextEqConst(u.Val)))
		case CopyVar:
			w := s.VarByName(u.From)
			if w == nil {
				return bdd.False, fmt.Errorf("update copies unknown variable %q", u.From)
			}
			if cp != nil && !cp.Read[u.From] {
				return bdd.False, fmt.Errorf("update reads %q outside read set", u.From)
			}
			rel = relSlot.Set(m.And(rel, v.NextEq(w)))
		case ChooseConst:
			if len(u.Among) == 0 {
				return bdd.False, fmt.Errorf("empty choice for %q", u.Var)
			}
			choice := bdd.False
			for _, val := range u.Among {
				if val < 0 || val >= v.Domain {
					return bdd.False, fmt.Errorf("value %d outside domain of %q", val, u.Var)
				}
				choice = m.Or(choice, v.NextEqConst(val))
			}
			rel = relSlot.Set(m.And(rel, choice))
		default:
			return bdd.False, fmt.Errorf("unknown update kind %d", u.Kind)
		}
	}

	// Frame: variables without an update stay unchanged.
	for _, v := range s.Vars {
		if !assigned[v.Name] {
			rel = relSlot.Set(m.And(rel, v.Unchanged()))
		}
	}
	return m.AndN(guard, rel, s.ValidTrans()), nil
}

// Group computes the read-restriction group closure group_j(δ): the union of
// the groups of all transitions in δ (Section III-B). Only the write-legal,
// unreadable-preserving part of δ contributes (the rest could never belong
// to this process).
func (p *CompiledProc) Group(delta bdd.Node) bdd.Node {
	m := p.space.M
	core := m.And(delta, p.SameUnread)
	projected := m.Exists(core, p.unreadCube)
	return m.AndN(projected, p.SameUnread, p.space.ValidTrans())
}

// MaxRealizableSubset returns the largest subset of delta that process p can
// realize: transitions that respect the write restriction and whose entire
// group is contained in delta. This is the closed form of the Algorithm-2
// inner loop (see DESIGN.md §4).
func (p *CompiledProc) MaxRealizableSubset(delta bdd.Node) bdd.Node {
	m := p.space.M
	candidate := m.AndN(delta, p.WriteOK, p.space.ValidTrans())
	// A candidate transition is kept unless some member of its group is
	// missing from the candidate set.
	missing := m.And(m.Not(candidate), m.AndN(p.SameUnread, p.WriteOK, p.space.ValidTrans()))
	return m.Diff(candidate, p.Group(missing))
}

// Realizable reports whether delta is realizable by process p: write-legal
// and closed under grouping (Definition 19).
func (p *CompiledProc) Realizable(delta bdd.Node) bool {
	m := p.space.M
	d := m.And(delta, p.space.ValidTrans())
	if !m.Implies(d, p.WriteOK) {
		return false
	}
	return m.Implies(p.Group(d), d)
}

// ProcParts returns the per-process transition relations, each optionally
// conjoined with restrict, as partitions for image computation.
func (c *Compiled) ProcParts(restrict bdd.Node) []bdd.Node {
	m := c.Space.M
	out := make([]bdd.Node, 0, len(c.Procs))
	for _, p := range c.Procs {
		out = append(out, m.And(p.Trans, restrict))
	}
	return out
}

// PartsWithFaults returns the per-process transition relations (conjoined
// with restrict) followed by the per-fault-action relations — the full
// disjunctive partitioning of δ_P ∪ f.
func (c *Compiled) PartsWithFaults(restrict bdd.Node) []bdd.Node {
	return append(c.ProcParts(restrict), c.FaultParts...)
}

// Deadlocks returns the states (within ValidCur) that have no outgoing
// transition in delta.
func (c *Compiled) Deadlocks(delta bdd.Node) bdd.Node {
	m := c.Space.M
	hasNext := m.AndExists(delta, c.Space.ValidTrans(), c.Space.NextCube())
	return m.Diff(c.Space.ValidCur(), hasNext)
}

// WithStutter returns delta plus self-loops at its deadlock states — the
// Definition-18 semantics of a distributed program's transition relation.
func (c *Compiled) WithStutter(delta bdd.Node) bdd.Node {
	m := c.Space.M
	return m.Or(delta, m.And(c.Deadlocks(delta), c.Space.Identity()))
}

// WeightADD builds the transition-weight ADD of the program: a function
// assigning every valid transition the minimum weight any source prices it
// at — an action's cost annotation (possibly overridden by resolve), a cost
// rule, or dflt for transitions no source covers. resolve, when non-nil,
// receives each process/action pair with its declared annotation (0 when
// unannotated) and returns the effective weight, or 0 to fall through to the
// declared annotation; dflt below 1 means 1.
//
// The construction runs on the compiled program's own (primary) manager and
// must not be called from inside a shared parallel region (see the bdd
// package's ADD concurrency contract); the caller roots the result.
func (c *Compiled) WeightADD(resolve func(proc, action string, declared int64) int64, dflt int64) bdd.Node {
	m := c.Space.M
	if dflt < 1 {
		dflt = 1
	}
	sc := m.Protect()
	defer sc.Release()
	inf := m.AddConst(bdd.AddInf)
	w := sc.Slot(inf)
	price := func(rel bdd.Node, weight int64) {
		if rel == bdd.False || weight <= 0 {
			return
		}
		w.Set(m.AddMin(w.Node(), m.ITE(rel, m.AddConst(weight), inf)))
	}
	for _, p := range c.Procs {
		for _, a := range p.Acts {
			weight := a.Cost
			if resolve != nil {
				if r := resolve(p.Name, a.Name, a.Cost); r > 0 {
					weight = r
				}
			}
			price(a.Trans, weight)
		}
	}
	for _, r := range c.CostRules {
		price(r.Trans, r.Cost)
	}
	// Transitions no source priced carry the default weight, so the result
	// is finite on every valid transition.
	return m.ITE(m.Threshold(w.Node(), bdd.AddInf), m.AddConst(dflt), w.Node())
}

// GroupMinCost is the weighted refinement of the Step-2 group machinery: the
// per-group cost projection of delta under the weight ADD w. The result is
// an ADD over the process's readable variables assigning to each
// read-restriction group the cheapest weight of any member present in delta,
// and +∞ where delta contributes no member. Sliced into cost classes with
// the manager's Threshold (and expanded back to transitions via SameUnread ∧
// ValidTrans, the Group expansion), it lets cost-aware repair remove or keep
// whole groups ordered by what their cheapest member costs.
func (p *CompiledProc) GroupMinCost(delta, w bdd.Node) bdd.Node {
	m := p.space.M
	sc := m.Protect()
	defer sc.Release()
	core := sc.Keep(m.And(delta, p.SameUnread))
	priced := sc.Keep(m.ITE(core, w, m.AddConst(bdd.AddInf)))
	return m.MinAbstract(priced, p.unreadCube)
}

// GroupExpand maps a predicate over the process's readable variables (such
// as a cost class of GroupMinCost) back to the full transition sets of the
// groups it selects — the second half of the Group operator, with the
// projection supplied by the caller.
func (p *CompiledProc) GroupExpand(classPred bdd.Node) bdd.Node {
	m := p.space.M
	return m.AndN(classPred, p.SameUnread, p.space.ValidTrans())
}

// ProgramRealizable reports whether delta (without stutter) is realizable by
// the whole program per Definition 20: it decomposes into per-process
// realizable transition sets.
func (c *Compiled) ProgramRealizable(delta bdd.Node) bool {
	m := c.Space.M
	d := m.And(delta, c.Space.ValidTrans())
	union := bdd.False
	for _, p := range c.Procs {
		union = m.Or(union, p.MaxRealizableSubset(d))
	}
	return m.Implies(d, union)
}
