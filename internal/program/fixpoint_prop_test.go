package program

// Property test for the unified fixpoint scheduler: on a corpus of random
// small models, the frontier-chained scheduler — serial, partitioned, and
// shared, with the fan-out threshold forced down so even tiny rounds take
// the parallel paths — must reach exactly the fixpoint the full-set oracle
// (symbolic.ReachablePartsCtx / BackwardReachablePartsCtx) computes, forward
// and backward. On failure the model shrinks greedily (dropping one action
// at a time while the mismatch persists) before reporting.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bdd"
	"repro/internal/expr"
	"repro/internal/symbolic"
)

// genDef builds a random small model: 2-4 variables over domains 2-3, 1-2
// processes with 1-3 actions each, and 0-2 fault actions. Guards are random
// conjunctions of equality literals; updates are random constant sets and
// variable copies. Every process reads and writes every variable — read and
// write restrictions are irrelevant to reachability.
func genDef(r *rand.Rand, seed int) *Def {
	nv := 2 + r.Intn(3)
	dom := 2 + r.Intn(2)
	d := &Def{Name: fmt.Sprintf("prop-%d", seed)}
	var names []string
	for i := 0; i < nv; i++ {
		name := fmt.Sprintf("x%d", i)
		d.Vars = append(d.Vars, symbolic.VarSpec{Name: name, Domain: dom})
		names = append(names, name)
	}
	randGuard := func() expr.Expr {
		k := r.Intn(3)
		if k == 0 {
			return expr.True
		}
		lits := make([]expr.Expr, k)
		for i := range lits {
			lits[i] = expr.Eq(names[r.Intn(nv)], r.Intn(dom))
		}
		return expr.And(lits...)
	}
	randUpdates := func() []Update {
		ups := make([]Update, 1+r.Intn(2))
		for i := range ups {
			if r.Intn(2) == 0 {
				ups[i] = Set(names[r.Intn(nv)], r.Intn(dom))
			} else {
				ups[i] = Copy(names[r.Intn(nv)], names[r.Intn(nv)])
			}
		}
		return ups
	}
	np := 1 + r.Intn(2)
	for p := 0; p < np; p++ {
		proc := &Process{Name: fmt.Sprintf("p%d", p), Read: names, Write: names}
		na := 1 + r.Intn(3)
		for a := 0; a < na; a++ {
			proc.Actions = append(proc.Actions, Action{
				Name:    fmt.Sprintf("a%d_%d", p, a),
				Guard:   randGuard(),
				Updates: randUpdates(),
			})
		}
		d.Processes = append(d.Processes, proc)
	}
	nf := r.Intn(3)
	for f := 0; f < nf; f++ {
		d.Faults = append(d.Faults, Action{
			Name:    fmt.Sprintf("f%d", f),
			Guard:   randGuard(),
			Updates: randUpdates(),
		})
	}
	d.Invariant = expr.Eq(names[0], 0)
	d.BadStates = expr.And(expr.Eq(names[0], dom-1), expr.Eq(names[nv-1], dom-1))
	return d
}

// checkDef compares the scheduler against the full-set oracle on one model,
// in both directions and on all three engine configurations. It returns a
// description of the first mismatch, or "" when the model passes.
func checkDef(t *testing.T, d *Def, seed int64) string {
	c, err := d.Compile()
	if err != nil {
		// Not every random model compiles (e.g. duplicate updates of one
		// variable in one action); skip those.
		return ""
	}
	m := c.Space.M
	parts := c.PartsWithFaults(bdd.True)
	init := c.Invariant
	target := c.BadStates

	// Oracle: the full-set chained fixpoints in internal/symbolic, which
	// this PR deliberately leaves untouched.
	wantFwd := c.Space.ReachableParts(init, parts)
	m.Ref(wantFwd)
	wantBwd := c.Space.BackwardReachableParts(target, parts)
	m.Ref(wantBwd)

	engines := []struct {
		name  string
		build func() (*Engine, error)
	}{
		{"serial", func() (*Engine, error) { return SerialEngine(c), nil }},
		{"partitioned2", func() (*Engine, error) { return NewEngine(c, 2) }},
		{"shared2", func() (*Engine, error) { return NewEngineMode(c, ModeShared, 2) }},
	}
	for _, ec := range engines {
		e, err := ec.build()
		if err != nil {
			return fmt.Sprintf("%s: engine: %v", ec.name, err)
		}
		e.fanoutMin = 1 // force even tiny rounds through the parallel paths
		gotFwd, err := e.ReachableParts(context.Background(), init, parts)
		if err != nil {
			return fmt.Sprintf("%s forward: %v", ec.name, err)
		}
		if gotFwd != wantFwd {
			return fmt.Sprintf("%s forward fixpoint differs from oracle (node %d vs %d)", ec.name, gotFwd, wantFwd)
		}
		gotBwd, err := e.BackwardReachableParts(context.Background(), target, parts)
		if err != nil {
			return fmt.Sprintf("%s backward: %v", ec.name, err)
		}
		if gotBwd != wantBwd {
			return fmt.Sprintf("%s backward fixpoint differs from oracle (node %d vs %d)", ec.name, gotBwd, wantBwd)
		}
	}
	return ""
}

// shrink greedily drops one action (process or fault) at a time while the
// mismatch persists, returning a locally minimal failing model.
func shrink(t *testing.T, d *Def, seed int64) *Def {
	for {
		reduced := false
		for p := range d.Processes {
			for a := range d.Processes[p].Actions {
				cand := cloneDef(d)
				proc := cand.Processes[p]
				proc.Actions = append(append([]Action{}, proc.Actions[:a]...), proc.Actions[a+1:]...)
				if len(proc.Actions) == 0 {
					continue // every process needs at least one action
				}
				if checkDef(t, cand, seed) != "" {
					d, reduced = cand, true
					break
				}
			}
			if reduced {
				break
			}
		}
		if reduced {
			continue
		}
		for f := range d.Faults {
			cand := cloneDef(d)
			cand.Faults = append(append([]Action{}, cand.Faults[:f]...), cand.Faults[f+1:]...)
			if checkDef(t, cand, seed) != "" {
				d, reduced = cand, true
				break
			}
		}
		if !reduced {
			return d
		}
	}
}

func cloneDef(d *Def) *Def {
	nd := *d
	nd.Processes = make([]*Process, len(d.Processes))
	for i, p := range d.Processes {
		np := *p
		np.Actions = append([]Action{}, p.Actions...)
		nd.Processes[i] = &np
	}
	nd.Faults = append([]Action{}, d.Faults...)
	return &nd
}

func TestFixpointMatchesOracleProperty(t *testing.T) {
	const corpus = 40
	for seed := 0; seed < corpus; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		d := genDef(r, seed)
		if msg := checkDef(t, d, int64(seed)); msg != "" {
			min := shrink(t, d, int64(seed))
			t.Fatalf("seed %d: %s\nshrunk model: %d procs, %d faults: %+v",
				seed, msg, len(min.Processes), len(min.Faults), min)
		}
	}
}
