package program

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bdd"
)

// DescribeActions renders the given transition set, restricted to what
// process p can execute, as human-readable guarded commands over the
// process's readable variables. Each line has the form
//
//	when d.g=1 ∧ d.0=⊥ → d.0:=1
//
// Unreadable variables are projected away (they are unchanged by
// definition), so the rendering is exactly the process's local protocol. At
// most limit lines are returned; a trailing "…" line signals truncation.
func (p *CompiledProc) DescribeActions(delta bdd.Node, limit int) []string {
	s := p.space
	m := s.M
	core := m.AndN(delta, p.WriteOK, p.SameUnread, s.ValidTrans())
	proj := m.Exists(core, p.unreadCube)

	// Drop self-loops: they carry no protocol content.
	proj = m.Diff(proj, s.Identity())

	var out []string
	seen := make(map[string]bool)
	truncated := false
	m.AllSat(proj, func(cube []int8) bool {
		if len(out) >= limit {
			truncated = true
			return false
		}
		var guards, updates []string
		for _, v := range s.Vars {
			if !p.Read[v.Name] {
				continue
			}
			cur, curOK := decodeFull(cube, v.CurLevels())
			next, nextOK := decodeFull(cube, v.NextLevels())
			if curOK {
				guards = append(guards, fmt.Sprintf("%s=%d", v.Name, cur))
			}
			if p.Write[v.Name] && nextOK && (!curOK || next != cur) {
				updates = append(updates, fmt.Sprintf("%s:=%d", v.Name, next))
			}
		}
		if len(updates) == 0 {
			return true
		}
		guard := "true"
		if len(guards) > 0 {
			guard = strings.Join(guards, " ∧ ")
		}
		line := fmt.Sprintf("when %s → %s", guard, strings.Join(updates, ", "))
		if !seen[line] {
			seen[line] = true
			out = append(out, line)
		}
		return true
	})
	sort.Strings(out)
	if truncated {
		out = append(out, "…")
	}
	return out
}

// decodeFull decodes a value from a cube, reporting whether every bit was
// determined (no don't-cares).
func decodeFull(cube []int8, levels []int) (int, bool) {
	val := 0
	for b, lvl := range levels {
		switch cube[lvl] {
		case 1:
			val |= 1 << b
		case -1:
			return 0, false
		}
	}
	return val, true
}
