// Package expr provides a small boolean expression language over the
// finite-domain variables of a symbolic.Space. Expressions describe guards,
// invariants, and safety specifications the way the paper writes them
// (e.g. "d.j = ⊥ ∧ f.j = 0"), and compile to BDDs.
//
// Expressions may refer to both current-state values (Eq, EqVar, Lt) and the
// relationship between current and next state (NextEq, Changed, Unchanged),
// so the same language expresses state predicates and transition predicates
// such as the bad-transition part of a safety specification.
package expr

import (
	"fmt"
	"strings"

	"repro/internal/bdd"
	"repro/internal/symbolic"
)

// Expr is a boolean expression over the variables of a Space.
type Expr interface {
	// Compile lowers the expression to a BDD in the given space.
	Compile(s *symbolic.Space) (bdd.Node, error)
	// String renders the expression in a human-readable form.
	String() string
	// Vars appends the names of variables the expression reads to dst.
	Vars(dst []string) []string
}

// --- constants --------------------------------------------------------------

type constExpr bool

// True is the always-true expression.
var True Expr = constExpr(true)

// False is the always-false expression.
var False Expr = constExpr(false)

func (c constExpr) Compile(*symbolic.Space) (bdd.Node, error) {
	if bool(c) {
		return bdd.True, nil
	}
	return bdd.False, nil
}

func (c constExpr) String() string {
	if bool(c) {
		return "true"
	}
	return "false"
}

func (c constExpr) Vars(dst []string) []string { return dst }

// --- atomic predicates ------------------------------------------------------

type eqConst struct {
	name string
	val  int
}

// Eq returns the predicate "name = val" on the current state.
func Eq(name string, val int) Expr { return eqConst{name, val} }

// Ne returns the predicate "name ≠ val" on the current state.
func Ne(name string, val int) Expr { return Not(Eq(name, val)) }

func (e eqConst) Compile(s *symbolic.Space) (bdd.Node, error) {
	v := s.VarByName(e.name)
	if v == nil {
		return bdd.False, fmt.Errorf("expr: unknown variable %q", e.name)
	}
	if e.val < 0 || e.val >= v.Domain {
		return bdd.False, fmt.Errorf("expr: value %d outside domain of %q", e.val, e.name)
	}
	return v.EqConst(e.val), nil
}

func (e eqConst) String() string             { return fmt.Sprintf("%s=%d", e.name, e.val) }
func (e eqConst) Vars(dst []string) []string { return append(dst, e.name) }

type eqVar struct {
	a, b string
}

// EqVar returns the predicate "a = b" comparing two variables' current values.
func EqVar(a, b string) Expr { return eqVar{a, b} }

// NeVar returns the predicate "a ≠ b".
func NeVar(a, b string) Expr { return Not(EqVar(a, b)) }

func (e eqVar) Compile(s *symbolic.Space) (bdd.Node, error) {
	va, vb := s.VarByName(e.a), s.VarByName(e.b)
	if va == nil {
		return bdd.False, fmt.Errorf("expr: unknown variable %q", e.a)
	}
	if vb == nil {
		return bdd.False, fmt.Errorf("expr: unknown variable %q", e.b)
	}
	return va.Eq(vb), nil
}

func (e eqVar) String() string             { return fmt.Sprintf("%s=%s", e.a, e.b) }
func (e eqVar) Vars(dst []string) []string { return append(dst, e.a, e.b) }

type ltConst struct {
	name string
	val  int
}

// Lt returns the predicate "name < val" on the current state.
func Lt(name string, val int) Expr { return ltConst{name, val} }

func (e ltConst) Compile(s *symbolic.Space) (bdd.Node, error) {
	v := s.VarByName(e.name)
	if v == nil {
		return bdd.False, fmt.Errorf("expr: unknown variable %q", e.name)
	}
	out := bdd.False
	for val := 0; val < e.val && val < v.Domain; val++ {
		out = s.M.Or(out, v.EqConst(val))
	}
	return out, nil
}

func (e ltConst) String() string             { return fmt.Sprintf("%s<%d", e.name, e.val) }
func (e ltConst) Vars(dst []string) []string { return append(dst, e.name) }

// --- transition-level predicates --------------------------------------------

type nextEqConst struct {
	name string
	val  int
}

// NextEq returns the transition predicate "name' = val" on the next state.
func NextEq(name string, val int) Expr { return nextEqConst{name, val} }

func (e nextEqConst) Compile(s *symbolic.Space) (bdd.Node, error) {
	v := s.VarByName(e.name)
	if v == nil {
		return bdd.False, fmt.Errorf("expr: unknown variable %q", e.name)
	}
	if e.val < 0 || e.val >= v.Domain {
		return bdd.False, fmt.Errorf("expr: value %d outside domain of %q", e.val, e.name)
	}
	return v.NextEqConst(e.val), nil
}

func (e nextEqConst) String() string             { return fmt.Sprintf("%s'=%d", e.name, e.val) }
func (e nextEqConst) Vars(dst []string) []string { return append(dst, e.name) }

type nextEqVar struct {
	a, b string
}

// NextEqVar returns the transition predicate "a' = b": after the transition,
// a holds b's pre-transition value (the relational form of the assignment
// a := b).
func NextEqVar(a, b string) Expr { return nextEqVar{a, b} }

func (e nextEqVar) Compile(s *symbolic.Space) (bdd.Node, error) {
	va, vb := s.VarByName(e.a), s.VarByName(e.b)
	if va == nil {
		return bdd.False, fmt.Errorf("expr: unknown variable %q", e.a)
	}
	if vb == nil {
		return bdd.False, fmt.Errorf("expr: unknown variable %q", e.b)
	}
	return va.NextEq(vb), nil
}

func (e nextEqVar) String() string             { return fmt.Sprintf("%s'=%s", e.a, e.b) }
func (e nextEqVar) Vars(dst []string) []string { return append(dst, e.a, e.b) }

type changed struct {
	name string
}

// Changed returns the transition predicate "name' ≠ name".
func Changed(name string) Expr { return changed{name} }

// Unchanged returns the transition predicate "name' = name".
func Unchanged(name string) Expr { return Not(Changed(name)) }

func (e changed) Compile(s *symbolic.Space) (bdd.Node, error) {
	v := s.VarByName(e.name)
	if v == nil {
		return bdd.False, fmt.Errorf("expr: unknown variable %q", e.name)
	}
	return s.M.Not(v.Unchanged()), nil
}

func (e changed) String() string             { return fmt.Sprintf("changed(%s)", e.name) }
func (e changed) Vars(dst []string) []string { return append(dst, e.name) }

// --- connectives -------------------------------------------------------------

type andExpr []Expr

// And returns the conjunction of the given expressions (True if none).
func And(es ...Expr) Expr { return andExpr(es) }

func (e andExpr) Compile(s *symbolic.Space) (bdd.Node, error) {
	// The accumulator survives arbitrarily large sub-compiles, so it must be
	// rooted across them.
	acc := s.M.NewRooted(bdd.True)
	defer acc.Release()
	for _, sub := range e {
		n, err := sub.Compile(s)
		if err != nil {
			return bdd.False, err
		}
		acc.Set(s.M.And(acc.Node(), n))
	}
	return acc.Node(), nil
}

func (e andExpr) String() string { return joinExprs([]Expr(e), " ∧ ", "true") }

func (e andExpr) Vars(dst []string) []string {
	for _, sub := range e {
		dst = sub.Vars(dst)
	}
	return dst
}

type orExpr []Expr

// Or returns the disjunction of the given expressions (False if none).
func Or(es ...Expr) Expr { return orExpr(es) }

func (e orExpr) Compile(s *symbolic.Space) (bdd.Node, error) {
	acc := s.M.NewRooted(bdd.False)
	defer acc.Release()
	for _, sub := range e {
		n, err := sub.Compile(s)
		if err != nil {
			return bdd.False, err
		}
		acc.Set(s.M.Or(acc.Node(), n))
	}
	return acc.Node(), nil
}

func (e orExpr) String() string { return joinExprs([]Expr(e), " ∨ ", "false") }

func (e orExpr) Vars(dst []string) []string {
	for _, sub := range e {
		dst = sub.Vars(dst)
	}
	return dst
}

type notExpr struct{ e Expr }

// Not returns the negation of e.
func Not(e Expr) Expr { return notExpr{e} }

func (e notExpr) Compile(s *symbolic.Space) (bdd.Node, error) {
	n, err := e.e.Compile(s)
	if err != nil {
		return bdd.False, err
	}
	return s.M.Not(n), nil
}

func (e notExpr) String() string             { return "¬(" + e.e.String() + ")" }
func (e notExpr) Vars(dst []string) []string { return e.e.Vars(dst) }

type impliesExpr struct{ a, b Expr }

// Implies returns the implication a ⇒ b.
func Implies(a, b Expr) Expr { return impliesExpr{a, b} }

func (e impliesExpr) Compile(s *symbolic.Space) (bdd.Node, error) {
	na, err := e.a.Compile(s)
	if err != nil {
		return bdd.False, err
	}
	s.M.Ref(na) // held across the (possibly large) compile of e.b
	defer s.M.Deref(na)
	nb, err := e.b.Compile(s)
	if err != nil {
		return bdd.False, err
	}
	return s.M.Imp(na, nb), nil
}

func (e impliesExpr) String() string { return "(" + e.a.String() + " ⇒ " + e.b.String() + ")" }

func (e impliesExpr) Vars(dst []string) []string { return e.b.Vars(e.a.Vars(dst)) }

func joinExprs(es []Expr, sep, empty string) string {
	if len(es) == 0 {
		return empty
	}
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}
