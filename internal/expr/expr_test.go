package expr

import (
	"testing"

	"repro/internal/bdd"
	"repro/internal/symbolic"
)

func space(t *testing.T) *symbolic.Space {
	t.Helper()
	return symbolic.MustNew([]symbolic.VarSpec{
		{Name: "x", Domain: 3},
		{Name: "y", Domain: 3},
		{Name: "b", Domain: 2},
	})
}

func compile(t *testing.T, s *symbolic.Space, e Expr) bdd.Node {
	t.Helper()
	n, err := e.Compile(s)
	if err != nil {
		t.Fatalf("compile %s: %v", e, err)
	}
	return n
}

func TestEqCompile(t *testing.T) {
	s := space(t)
	n := compile(t, s, Eq("x", 2))
	if n != s.VarByName("x").EqConst(2) {
		t.Fatal("Eq compiles to wrong node")
	}
}

func TestNeIsComplementWithinDomain(t *testing.T) {
	s := space(t)
	eq := compile(t, s, Eq("x", 1))
	ne := compile(t, s, Ne("x", 1))
	m := s.M
	if m.And(eq, ne) != bdd.False {
		t.Fatal("Eq and Ne overlap")
	}
	// Within the valid space they partition states.
	if got := s.CountStates(m.Or(eq, ne)); got != s.CountStates(bdd.True) {
		t.Fatalf("Eq ∪ Ne misses states: %v", got)
	}
}

func TestEqVar(t *testing.T) {
	s := space(t)
	n := compile(t, s, EqVar("x", "y"))
	// 3 equal pairs × 2 values of b.
	if got := s.CountStates(n); got != 6 {
		t.Fatalf("CountStates(x=y) = %v, want 6", got)
	}
}

func TestLt(t *testing.T) {
	s := space(t)
	n := compile(t, s, Lt("x", 2))
	// x ∈ {0,1}: 2 × 3 × 2 = 12.
	if got := s.CountStates(n); got != 12 {
		t.Fatalf("CountStates(x<2) = %v, want 12", got)
	}
	if compile(t, s, Lt("x", 0)) != bdd.False {
		t.Fatal("x<0 should be false")
	}
}

func TestConnectives(t *testing.T) {
	s := space(t)
	m := s.M
	a := compile(t, s, Eq("x", 0))
	b := compile(t, s, Eq("y", 1))
	if compile(t, s, And(Eq("x", 0), Eq("y", 1))) != m.And(a, b) {
		t.Fatal("And wrong")
	}
	if compile(t, s, Or(Eq("x", 0), Eq("y", 1))) != m.Or(a, b) {
		t.Fatal("Or wrong")
	}
	if compile(t, s, Implies(Eq("x", 0), Eq("y", 1))) != m.Imp(a, b) {
		t.Fatal("Implies wrong")
	}
	if compile(t, s, And()) != bdd.True || compile(t, s, Or()) != bdd.False {
		t.Fatal("empty connectives wrong")
	}
	if compile(t, s, True) != bdd.True || compile(t, s, False) != bdd.False {
		t.Fatal("constants wrong")
	}
}

func TestChangedUnchanged(t *testing.T) {
	s := space(t)
	m := s.M
	ch := compile(t, s, Changed("x"))
	un := compile(t, s, Unchanged("x"))
	if m.And(ch, un) != bdd.False || m.Or(ch, un) != bdd.True {
		t.Fatal("Changed/Unchanged should partition the transition space")
	}
	if un != s.VarByName("x").Unchanged() {
		t.Fatal("Unchanged compiles to wrong node")
	}
}

func TestNextEq(t *testing.T) {
	s := space(t)
	n := compile(t, s, NextEq("x", 1))
	if n != s.VarByName("x").NextEqConst(1) {
		t.Fatal("NextEq compiles to wrong node")
	}
}

func TestCompileErrors(t *testing.T) {
	s := space(t)
	bad := []Expr{
		Eq("nope", 0),
		Eq("x", 9),
		EqVar("x", "nope"),
		EqVar("nope", "x"),
		NextEq("nope", 0),
		NextEq("x", 3),
		Changed("nope"),
		Lt("nope", 1),
		And(Eq("x", 0), Eq("nope", 0)),
		Or(Eq("nope", 0)),
		Not(Eq("nope", 0)),
		Implies(Eq("nope", 0), True),
		Implies(True, Eq("nope", 0)),
	}
	for _, e := range bad {
		if _, err := e.Compile(s); err == nil {
			t.Errorf("expected error compiling %s", e)
		}
	}
}

func TestVarsCollection(t *testing.T) {
	e := And(Eq("x", 0), Or(EqVar("y", "b"), Changed("x")), Implies(True, Ne("y", 1)))
	vars := e.Vars(nil)
	want := map[string]int{"x": 0, "y": 0, "b": 0}
	for _, v := range vars {
		want[v]++
	}
	for name, n := range want {
		if n == 0 {
			t.Errorf("Vars missed %s (got %v)", name, vars)
		}
	}
}

func TestStringRendering(t *testing.T) {
	e := And(Eq("x", 1), Not(EqVar("x", "y")), Implies(Changed("b"), NextEq("b", 1)))
	s := e.String()
	for _, sub := range []string{"x=1", "x=y", "changed(b)", "b'=1", "⇒"} {
		if !containsStr(s, sub) {
			t.Errorf("String() = %q missing %q", s, sub)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestNextEqVar(t *testing.T) {
	s := space(t)
	n := compile(t, s, NextEqVar("x", "y"))
	if n != s.VarByName("x").NextEq(s.VarByName("y")) {
		t.Fatal("NextEqVar compiles to wrong node")
	}
	if _, err := NextEqVar("x", "zz").Compile(s); err == nil {
		t.Fatal("unknown rhs should error")
	}
	if _, err := NextEqVar("zz", "x").Compile(s); err == nil {
		t.Fatal("unknown lhs should error")
	}
	vars := NextEqVar("x", "y").Vars(nil)
	if len(vars) != 2 {
		t.Fatalf("Vars = %v", vars)
	}
	if NextEqVar("x", "y").String() != "x'=y" {
		t.Fatalf("String = %q", NextEqVar("x", "y").String())
	}
}
