package explicit

import "fmt"

// CheckMasking performs graph-based masking fault-tolerance checks on an
// explicit program (Definition 15), mirroring the symbolic verifier with
// plain graph algorithms. It returns a list of violations (empty when the
// program is masking f-tolerant from the invariant with the given span).
func (sys *System) CheckMasking(trans map[Trans]bool, invariant, span map[State]bool) []string {
	var out []string

	// Invariant closure.
	for t := range trans {
		if invariant[t.From] && !invariant[t.To] {
			out = append(out, fmt.Sprintf("invariant not closed: %v", t))
			break
		}
	}
	// Span closure under program and fault.
	closed := func(set map[Trans]bool, kind string) {
		for t := range set {
			if span[t.From] && !span[t.To] {
				out = append(out, fmt.Sprintf("span not closed under %s: %v", kind, t))
				return
			}
		}
	}
	closed(trans, "program")
	closed(sys.Fault, "fault")

	// Safety from the invariant under faults.
	reach := sys.Reachable(invariant, trans, sys.Fault)
	for s := range reach {
		if sys.BadStates[s] {
			out = append(out, fmt.Sprintf("reachable bad state %d", s))
			break
		}
	}
	for t := range trans {
		if reach[t.From] && sys.BadTrans[t] {
			out = append(out, fmt.Sprintf("reachable bad program transition %v", t))
			break
		}
	}
	for t := range sys.Fault {
		if reach[t.From] && sys.BadTrans[t] {
			out = append(out, fmt.Sprintf("reachable bad fault transition %v", t))
			break
		}
	}

	// Recovery: outside the invariant (within the span) there must be no
	// deadlock and no cycle.
	outside := make(map[State]bool)
	for s := range span {
		if !invariant[s] {
			outside[s] = true
		}
	}
	adj := make(map[State][]State)
	for t := range trans {
		if outside[t.From] {
			adj[t.From] = append(adj[t.From], t.To)
		}
	}
	for s := range outside {
		if len(adj[s]) == 0 {
			out = append(out, fmt.Sprintf("deadlock outside invariant at state %d", s))
			break
		}
	}
	// Cycle detection among outside states via iterative DFS coloring.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[State]int8)
	var cycle bool
	for start := range outside {
		if color[start] != white || cycle {
			continue
		}
		type frame struct {
			s State
			i int
		}
		stack := []frame{{start, 0}}
		color[start] = gray
		for len(stack) > 0 && !cycle {
			f := &stack[len(stack)-1]
			advanced := false
			for f.i < len(adj[f.s]) {
				next := adj[f.s][f.i]
				f.i++
				if !outside[next] {
					continue
				}
				switch color[next] {
				case gray:
					cycle = true
				case white:
					color[next] = gray
					stack = append(stack, frame{next, 0})
					advanced = true
				}
				if cycle || advanced {
					break
				}
			}
			if !advanced && !cycle {
				color[f.s] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	if cycle {
		out = append(out, "livelock: cycle outside invariant")
	}
	return out
}
