package explicit

import (
	"sort"

	"repro/internal/program"
)

// This file implements the read-restriction group computation and the
// literal Algorithm 2 of the paper, transition by transition, including the
// ExpandGroup optimization.

// readIdx returns the indices of the variables process j reads / writes.
func (sys *System) readIdx(p *program.CompiledProc) (read, unread []int) {
	for i, v := range sys.C.Space.Vars {
		if p.Read[v.Name] {
			read = append(read, i)
		} else {
			unread = append(unread, i)
		}
	}
	return read, unread
}

// WriteLegal reports whether t changes only variables process p may write.
func (sys *System) WriteLegal(p *program.CompiledProc, t Trans) bool {
	from, to := sys.Values(t.From), sys.Values(t.To)
	for i, v := range sys.C.Space.Vars {
		if from[i] != to[i] && !p.Write[v.Name] {
			return false
		}
	}
	return true
}

// Group returns group_j(t): every transition agreeing with t on process p's
// readable variables (both before and after) and leaving each unreadable
// variable unchanged (Section III-B). t must be write-legal for p.
func (sys *System) Group(p *program.CompiledProc, t Trans) []Trans {
	_, unread := sys.readIdx(p)
	from, to := sys.Values(t.From), sys.Values(t.To)
	out := []Trans{}
	var rec func(k int)
	rec = func(k int) {
		if k == len(unread) {
			f := append([]int(nil), from...)
			g := append([]int(nil), to...)
			out = append(out, Trans{sys.Encode(f), sys.Encode(g)})
			return
		}
		i := unread[k]
		for val := 0; val < sys.radix[i]; val++ {
			from[i], to[i] = val, val
			rec(k + 1)
		}
		from[i], to[i] = sys.Values(t.From)[i], sys.Values(t.To)[i]
	}
	rec(0)
	sort.Slice(out, func(a, b int) bool {
		if out[a].From != out[b].From {
			return out[a].From < out[b].From
		}
		return out[a].To < out[b].To
	})
	return out
}

// GroupOf returns the group closure of a transition set for process p
// (write-illegal transitions contribute nothing).
func (sys *System) GroupOf(p *program.CompiledProc, delta map[Trans]bool) map[Trans]bool {
	out := make(map[Trans]bool)
	for t := range delta {
		if !sys.WriteLegal(p, t) {
			continue
		}
		for _, g := range sys.Group(p, t) {
			out[g] = true
		}
	}
	return out
}

// ExpandGroup enlarges a group by dropping variable varIdx (readable but not
// written) from the readable condition: for every value c of the variable,
// the group members with the variable fixed at c before and after the
// transition, updates unchanged (Section V-B's ExpandGroup).
func (sys *System) ExpandGroup(varIdx int, group []Trans) []Trans {
	seen := make(map[Trans]bool, len(group)*sys.radix[varIdx])
	var out []Trans
	for _, t := range group {
		from, to := sys.Values(t.From), sys.Values(t.To)
		if from[varIdx] != to[varIdx] {
			// The variable is written by this group; it cannot be dropped.
			return append([]Trans(nil), group...)
		}
		for val := 0; val < sys.radix[varIdx]; val++ {
			f := append([]int(nil), from...)
			g := append([]int(nil), to...)
			f[varIdx], g[varIdx] = val, val
			tt := Trans{sys.Encode(f), sys.Encode(g)}
			if !seen[tt] {
				seen[tt] = true
				out = append(out, tt)
			}
		}
	}
	return out
}

// RealizeStats reports the work done by the literal Algorithm 2.
type RealizeStats struct {
	// Iterations counts executions of the pick-a-transition loop body
	// (Lines 8–21).
	Iterations int
	// GroupsKept and GroupsDropped count the two outcomes of Line 10.
	GroupsKept, GroupsDropped int
	// Expansions counts successful ExpandGroup applications (Line 15-16).
	Expansions int
}

// Realize runs the paper's Algorithm 2 literally: starting from the
// intermediate program delta and fault-span span (a state set), it adds
// every transition from outside the span (Line 1), then for each process
// repeatedly picks a remaining write-legal transition, keeps its group if
// complete (after trying to expand it), or discards the group (Lines 3–24).
// useExpand toggles the ExpandGroup optimization so its effect on iteration
// count can be measured (experiment E7).
func (sys *System) Realize(delta map[Trans]bool, span map[State]bool, useExpand bool) (map[Trans]bool, RealizeStats) {
	var stats RealizeStats

	// Line 1: δ := δ ∪ {(s0,s1) | s0 ∉ T}.
	d := make(map[Trans]bool, len(delta))
	for t := range delta {
		d[t] = true
	}
	for s := 0; s < sys.NumStates; s++ {
		if span[State(s)] {
			continue
		}
		for to := 0; to < sys.NumStates; to++ {
			d[Trans{State(s), State(to)}] = true
		}
	}

	result := make(map[Trans]bool) // δ_P'
	for _, p := range sys.C.Procs {
		// Line 4–5: Δ_j := write-legal subset of δ.
		deltaJ := make(map[Trans]bool)
		for t := range d {
			if sys.WriteLegal(p, t) {
				deltaJ[t] = true
			}
		}
		procTrans := make(map[Trans]bool) // δ_j
		// Deterministic iteration: process transitions in sorted order.
		order := sortedTrans(deltaJ)
		for _, t := range order {
			if !deltaJ[t] {
				continue // already removed or absorbed into a kept group
			}
			stats.Iterations++
			group := sys.Group(p, t)
			complete := true
			for _, g := range group {
				if !deltaJ[g] {
					complete = false
					break
				}
			}
			if !complete {
				// Line 11: remove the whole group from Δ_j.
				stats.GroupsDropped++
				for _, g := range group {
					delete(deltaJ, g)
				}
				continue
			}
			// Lines 13–18: try to expand over each readable non-written var.
			if useExpand {
				read, _ := sys.readIdx(p)
				for _, vi := range read {
					if p.Write[sys.C.Space.Vars[vi].Name] {
						continue
					}
					bigger := sys.ExpandGroup(vi, group)
					if len(bigger) == len(group) {
						continue
					}
					ok := true
					for _, g := range bigger {
						if !deltaJ[g] {
							ok = false
							break
						}
					}
					if ok {
						group = bigger
						stats.Expansions++
					}
				}
			}
			// Lines 19–20.
			stats.GroupsKept++
			for _, g := range group {
				procTrans[g] = true
				delete(deltaJ, g)
			}
		}
		for t := range procTrans {
			result[t] = true
		}
	}
	return result, stats
}

func sortedTrans(set map[Trans]bool) []Trans {
	out := make([]Trans, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].From != out[b].From {
			return out[a].From < out[b].From
		}
		return out[a].To < out[b].To
	})
	return out
}
