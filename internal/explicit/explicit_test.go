package explicit

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/bdd"
	"repro/internal/casestudies"
	"repro/internal/expr"
	"repro/internal/program"
	"repro/internal/repair"
	"repro/internal/symbolic"
)

// hiddenModel mirrors the repair package's test model: one hidden variable a
// the process cannot read.
func hiddenModel() *program.Def {
	return &program.Def{
		Name: "hidden",
		Vars: []symbolic.VarSpec{{Name: "a", Domain: 2}, {Name: "y", Domain: 2}},
		Processes: []*program.Process{
			{Name: "p", Read: []string{"y"}, Write: []string{"y"}},
		},
		Faults: []program.Action{{
			Name:    "corrupt",
			Guard:   expr.And(expr.Eq("a", 0), expr.Eq("y", 0)),
			Updates: []program.Update{program.Set("a", 1), program.Set("y", 1)},
		}},
		Invariant: expr.Eq("y", 0),
		BadTrans:  expr.And(expr.Eq("a", 0), expr.NextEq("a", 0), expr.Changed("y")),
	}
}

func mustSystem(t *testing.T, d *program.Def) (*System, *program.Compiled) {
	t.Helper()
	c := d.MustCompile()
	sys, err := FromCompiled(c)
	if err != nil {
		t.Fatal(err)
	}
	return sys, c
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	sys, _ := mustSystem(t, casestudies.SC(3))
	for s := 0; s < sys.NumStates; s++ {
		if got := sys.Encode(sys.Values(State(s))); got != State(s) {
			t.Fatalf("round trip failed for state %d -> %d", s, got)
		}
	}
}

func TestEnumerationMatchesSymbolicCounts(t *testing.T) {
	for _, d := range []*program.Def{hiddenModel(), casestudies.BA(2), casestudies.SC(3)} {
		sys, c := mustSystem(t, d)
		s := c.Space
		if got, want := float64(len(sys.Invariant)), s.CountStates(c.Invariant); got != want {
			t.Errorf("%s: invariant %v != symbolic %v", d.Name, got, want)
		}
		if got, want := float64(len(sys.Fault)), s.CountTransitions(c.Fault); got != want {
			t.Errorf("%s: faults %v != symbolic %v", d.Name, got, want)
		}
		total := 0.0
		for j, p := range c.Procs {
			if got, want := float64(len(sys.Proc[j])), s.CountTransitions(p.Trans); got != want {
				t.Errorf("%s: proc %s %v != symbolic %v", d.Name, p.Name, got, want)
			}
			total += float64(len(sys.Proc[j]))
		}
		_ = total
		if got, want := float64(len(sys.BadTrans)), s.CountTransitions(c.BadTrans); got != want {
			t.Errorf("%s: bad transitions %v != symbolic %v", d.Name, got, want)
		}
	}
}

func TestReachableMatchesSymbolic(t *testing.T) {
	for _, d := range []*program.Def{hiddenModel(), casestudies.BA(2), casestudies.SC(3)} {
		sys, c := mustSystem(t, d)
		s := c.Space
		exp := sys.Reachable(sys.Invariant, sys.AllProg(), sys.Fault)
		sym := s.ReachableParts(c.Invariant, c.PartsWithFaults(bdd.True))
		if got, want := float64(len(exp)), s.CountStates(sym); got != want {
			t.Errorf("%s: explicit reach %v != symbolic %v", d.Name, got, want)
		}
	}
}

// symbolicTransSet enumerates a symbolic transition predicate into a map.
func symbolicTransSet(sys *System, f bdd.Node) map[Trans]bool {
	out := make(map[Trans]bool)
	sys.fillTrans(f, out)
	return out
}

func TestGroupMatchesSymbolic(t *testing.T) {
	sys, c := mustSystem(t, hiddenModel())
	s := c.Space
	m := s.M
	p := c.Procs[0]
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 100; iter++ {
		from := State(rng.Intn(sys.NumStates))
		to := State(rng.Intn(sys.NumStates))
		tr := Trans{from, to}
		if !sys.WriteLegal(p, tr) {
			continue
		}
		// Build the symbolic transition.
		fv, tv := sys.Values(from), sys.Values(to)
		names := map[string]int{"a": fv[0], "y": fv[1]}
		next := map[string]int{"a": tv[0], "y": tv[1]}
		sTr, err := s.Transition(names, next)
		if err != nil {
			t.Fatal(err)
		}
		symGroup := symbolicTransSet(sys, m.And(p.Group(sTr), s.ValidTrans()))
		expGroup := sys.Group(p, tr)
		if len(symGroup) != len(expGroup) {
			t.Fatalf("group size mismatch: explicit %d symbolic %d", len(expGroup), len(symGroup))
		}
		for _, g := range expGroup {
			if !symGroup[g] {
				t.Fatalf("explicit group member %v not in symbolic group", g)
			}
		}
	}
}

func TestLiteralRealizeMatchesSymbolic(t *testing.T) {
	for _, d := range []*program.Def{hiddenModel(), casestudies.BA(2), casestudies.SC(3)} {
		sys, c := mustSystem(t, d)
		s := c.Space
		m := s.M
		mask, err := repair.AddMasking(context.Background(), c, c.Invariant, c.BadTrans, repair.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		symbolicResult := repair.Realize(c, mask.Trans, mask.FaultSpan)

		delta := symbolicTransSet(sys, mask.Trans)
		span := make(map[State]bool)
		sys.fillStates(mask.FaultSpan, span)
		expResult, stats := sys.Realize(delta, span, true)

		want := symbolicTransSet(sys, m.And(symbolicResult, s.ValidTrans()))
		if len(expResult) != len(want) {
			t.Fatalf("%s: literal Algorithm 2 produced %d transitions, symbolic %d",
				d.Name, len(expResult), len(want))
		}
		for tr := range expResult {
			if !want[tr] {
				t.Fatalf("%s: literal result has %v, symbolic does not", d.Name, tr)
			}
		}
		if stats.Iterations == 0 {
			t.Fatalf("%s: expected nonzero iterations", d.Name)
		}
	}
}

func TestExpandGroupReducesIterations(t *testing.T) {
	// Experiment E7: on Byzantine agreement, ExpandGroup merges groups that
	// differ only in a readable-but-unwritten variable's value (e.g. a
	// finalize action insensitive to another process's decision), reducing
	// pick-loop iterations without changing the result.
	sys, c := mustSystem(t, casestudies.BA(2))
	mask, err := repair.AddMasking(context.Background(), c, c.Invariant, c.BadTrans, repair.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	delta := symbolicTransSet(sys, mask.Trans)
	span := make(map[State]bool)
	sys.fillStates(mask.FaultSpan, span)

	with, withStats := sys.Realize(delta, span, true)
	without, withoutStats := sys.Realize(delta, span, false)

	if len(with) != len(without) {
		t.Fatalf("ExpandGroup changed the result: %d vs %d", len(with), len(without))
	}
	for tr := range with {
		if !without[tr] {
			t.Fatal("ExpandGroup changed the result set")
		}
	}
	if withStats.Expansions == 0 {
		t.Fatal("expected successful expansions on Byzantine agreement")
	}
	if withStats.Iterations >= withoutStats.Iterations {
		t.Fatalf("ExpandGroup did not reduce iterations: %d vs %d",
			withStats.Iterations, withoutStats.Iterations)
	}

	// On the chain the expansion never applies (the expanded variants write
	// a value the specification forbids), and the result is unchanged.
	sysC, cC := mustSystem(t, casestudies.SC(3))
	maskC, err := repair.AddMasking(context.Background(), cC, cC.Invariant, cC.BadTrans, repair.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	deltaC := symbolicTransSet(sysC, maskC.Trans)
	spanC := make(map[State]bool)
	sysC.fillStates(maskC.FaultSpan, spanC)
	_, statsC := sysC.Realize(deltaC, spanC, true)
	if statsC.Expansions != 0 {
		t.Fatalf("chain should produce no expansions, got %d", statsC.Expansions)
	}
}

func TestExpandGroupRejectsWrittenVariable(t *testing.T) {
	sys, c := mustSystem(t, hiddenModel())
	p := c.Procs[0]
	// Group of y:1→0 with a=1 (unreadable a unchanged).
	base := Trans{sys.Encode([]int{1, 1}), sys.Encode([]int{1, 0})}
	group := sys.Group(p, base)
	// Expanding over y itself (index 1) must refuse: y changes.
	if got := sys.ExpandGroup(1, group); len(got) != len(group) {
		t.Fatalf("ExpandGroup over a written variable must not grow: %d vs %d", len(got), len(group))
	}
}

func TestCheckMaskingOnRepairedProgram(t *testing.T) {
	for _, d := range []*program.Def{hiddenModel(), casestudies.BA(2), casestudies.SC(3)} {
		sys, c := mustSystem(t, d)
		res, err := repair.Lazy(context.Background(), c, repair.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		trans := symbolicTransSet(sys, res.Trans)
		inv := make(map[State]bool)
		sys.fillStates(res.Invariant, inv)
		span := make(map[State]bool)
		sys.fillStates(res.FaultSpan, span)
		if violations := sys.CheckMasking(trans, inv, span); len(violations) != 0 {
			t.Errorf("%s: explicit masking check failed: %v", d.Name, violations)
		}
	}
}

func TestCheckMaskingDetectsViolations(t *testing.T) {
	sys, c := mustSystem(t, hiddenModel())
	res, err := repair.Lazy(context.Background(), c, repair.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	inv := make(map[State]bool)
	sys.fillStates(res.Invariant, inv)
	span := make(map[State]bool)
	sys.fillStates(res.FaultSpan, span)

	// Empty program: recovery states deadlock.
	if v := sys.CheckMasking(map[Trans]bool{}, inv, span); len(v) == 0 {
		t.Fatal("empty program should fail the masking check")
	}
	// Self-loop outside the invariant: livelock.
	var outside State = -1
	for s := range span {
		if !inv[s] {
			outside = s
			break
		}
	}
	if outside >= 0 {
		bad := map[Trans]bool{{outside, outside}: true}
		found := false
		for _, v := range sys.CheckMasking(bad, inv, span) {
			if v == "livelock: cycle outside invariant" {
				found = true
			}
		}
		if !found {
			t.Fatal("self-loop outside invariant should be reported as livelock")
		}
	}
}

func TestWriteLegal(t *testing.T) {
	sys, c := mustSystem(t, hiddenModel())
	p := c.Procs[0]
	// Changing y only: legal. Changing a: illegal.
	if !sys.WriteLegal(p, Trans{sys.Encode([]int{0, 1}), sys.Encode([]int{0, 0})}) {
		t.Fatal("y-only change should be write-legal")
	}
	if sys.WriteLegal(p, Trans{sys.Encode([]int{0, 1}), sys.Encode([]int{1, 1})}) {
		t.Fatal("a change should not be write-legal")
	}
}

func TestFromCompiledTooLarge(t *testing.T) {
	// 30 cells of domain 10 is far beyond the enumeration cap.
	c := casestudies.SC(30).MustCompile()
	if _, err := FromCompiled(c); err == nil {
		t.Fatal("expected state-space-too-large error")
	}
}
