// Package explicit is an enumerative (explicit-state) mirror of the symbolic
// engine. It materializes the state space of a compiled program as a graph,
// implements the read-restriction group computation and the *literal*
// Algorithm 2 of the paper — one transition picked per iteration, with the
// ExpandGroup optimization — and provides graph-based checks of masking
// fault-tolerance.
//
// Its purpose is validation: tests assert that the explicit algorithms agree
// with the symbolic ones on small instances, so the symbolic closed forms
// (DESIGN.md §4) are cross-checked against the paper's pseudocode.
package explicit

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/program"
)

// State is an explicit state: the index obtained by mixed-radix encoding of
// the variable values (first declared variable is the least significant
// digit).
type State int

// Trans is one explicit transition.
type Trans struct {
	From, To State
}

// System is the enumerated form of a compiled program.
type System struct {
	C *program.Compiled

	NumStates int
	radix     []int // domain sizes in declaration order

	// Proc[j] holds process j's transitions; Fault holds fault transitions.
	Proc  []map[Trans]bool
	Fault map[Trans]bool

	Invariant map[State]bool
	BadStates map[State]bool
	BadTrans  map[Trans]bool
}

// MaxStates bounds enumeration; FromCompiled fails beyond it.
const MaxStates = 1 << 22

// FromCompiled enumerates the compiled program into an explicit System.
func FromCompiled(c *program.Compiled) (*System, error) {
	total := 1
	radix := make([]int, len(c.Space.Vars))
	for i, v := range c.Space.Vars {
		radix[i] = v.Domain
		if total > MaxStates/v.Domain {
			return nil, fmt.Errorf("explicit: state space exceeds %d states", MaxStates)
		}
		total *= v.Domain
	}
	sys := &System{
		C:         c,
		NumStates: total,
		radix:     radix,
		Fault:     make(map[Trans]bool),
		Invariant: make(map[State]bool),
		BadStates: make(map[State]bool),
		BadTrans:  make(map[Trans]bool),
	}
	for range c.Procs {
		sys.Proc = append(sys.Proc, make(map[Trans]bool))
	}

	sys.fillStates(c.Invariant, sys.Invariant)
	sys.fillStates(c.BadStates, sys.BadStates)
	for j, p := range c.Procs {
		sys.fillTrans(p.Trans, sys.Proc[j])
	}
	sys.fillTrans(c.Fault, sys.Fault)
	sys.fillTrans(c.BadTrans, sys.BadTrans)
	return sys, nil
}

// Values decodes a state into per-variable values (declaration order).
func (sys *System) Values(s State) []int {
	out := make([]int, len(sys.radix))
	v := int(s)
	for i, r := range sys.radix {
		out[i] = v % r
		v /= r
	}
	return out
}

// Encode is the inverse of Values.
func (sys *System) Encode(vals []int) State {
	v := 0
	for i := len(vals) - 1; i >= 0; i-- {
		v = v*sys.radix[i] + vals[i]
	}
	return State(v)
}

// fillStates enumerates the models of a state predicate into set.
func (sys *System) fillStates(f bdd.Node, set map[State]bool) {
	s := sys.C.Space
	m := s.M
	m.AllSat(m.And(f, s.ValidCur()), func(cube []int8) bool {
		sys.expandStates(cube, set)
		return true
	})
}

// expandStates expands the don't-care current-state bits of a cube.
func (sys *System) expandStates(cube []int8, set map[State]bool) {
	s := sys.C.Space
	vals := make([]int, len(s.Vars))
	var rec func(i int)
	rec = func(i int) {
		if i == len(s.Vars) {
			set[sys.Encode(vals)] = true
			return
		}
		v := s.Vars[i]
		for _, val := range expandValue(cube, v.CurLevels(), v.DecodeCube(cube), v.Domain) {
			vals[i] = val
			rec(i + 1)
		}
	}
	rec(0)
}

// fillTrans enumerates the models of a transition predicate into set.
func (sys *System) fillTrans(f bdd.Node, set map[Trans]bool) {
	s := sys.C.Space
	m := s.M
	m.AllSat(m.And(f, s.ValidTrans()), func(cube []int8) bool {
		sys.expandTrans(cube, set)
		return true
	})
}

func (sys *System) expandTrans(cube []int8, set map[Trans]bool) {
	s := sys.C.Space
	from := make([]int, len(s.Vars))
	to := make([]int, len(s.Vars))
	var rec func(i int)
	rec = func(i int) {
		if i == len(s.Vars) {
			set[Trans{sys.Encode(from), sys.Encode(to)}] = true
			return
		}
		v := s.Vars[i]
		for _, cv := range expandValue(cube, v.CurLevels(), v.DecodeCube(cube), v.Domain) {
			for _, nv := range expandValue(cube, v.NextLevels(), v.DecodeNextCube(cube), v.Domain) {
				from[i], to[i] = cv, nv
				rec(i + 1)
			}
		}
	}
	rec(0)
}

// expandValue enumerates the variable values compatible with a cube: the
// base value with every combination of the don't-care bits, filtered to the
// domain.
func expandValue(cube []int8, levels []int, base, domain int) []int {
	var freeBits []int
	for b, lvl := range levels {
		if cube[lvl] == -1 {
			freeBits = append(freeBits, b)
		}
	}
	if len(freeBits) == 0 {
		return []int{base}
	}
	var out []int
	for pattern := 0; pattern < 1<<len(freeBits); pattern++ {
		val := base
		for k, b := range freeBits {
			if pattern&(1<<k) != 0 {
				val |= 1 << b
			}
		}
		if val < domain {
			out = append(out, val)
		}
	}
	return out
}

// AllProg returns the union of the process transition sets.
func (sys *System) AllProg() map[Trans]bool {
	out := make(map[Trans]bool)
	for _, pt := range sys.Proc {
		for t := range pt {
			out[t] = true
		}
	}
	return out
}

// Reachable returns the states reachable from init via the given transition
// sets.
func (sys *System) Reachable(init map[State]bool, sets ...map[Trans]bool) map[State]bool {
	adj := make(map[State][]State)
	for _, set := range sets {
		for t := range set {
			adj[t.From] = append(adj[t.From], t.To)
		}
	}
	reached := make(map[State]bool, len(init))
	var stack []State
	for s := range init {
		reached[s] = true
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range adj[s] {
			if !reached[t] {
				reached[t] = true
				stack = append(stack, t)
			}
		}
	}
	return reached
}

// FillStates enumerates the models of a symbolic state predicate into set.
func (sys *System) FillStates(f bdd.Node, set map[State]bool) { sys.fillStates(f, set) }

// FillTrans enumerates the models of a symbolic transition predicate into set.
func (sys *System) FillTrans(f bdd.Node, set map[Trans]bool) { sys.fillTrans(f, set) }
