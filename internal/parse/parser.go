package parse

import (
	"fmt"
	"strconv"

	"repro/internal/expr"
	"repro/internal/program"
	"repro/internal/symbolic"
)

// Program parses a model definition from the text format (see the package
// comment) into a program.Def ready to compile.
func Program(input string) (*program.Def, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.program()
}

type parser struct {
	toks []token
	pos  int

	def  *program.Def
	vars map[string]int // name -> domain (for validation)
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *parser) skipNewlines() {
	for p.cur().kind == tokNewline {
		p.pos++
	}
}

// expectSymbol consumes the given symbol or fails.
func (p *parser) expectSymbol(sym string) error {
	t := p.cur()
	if t.kind != tokSymbol || t.text != sym {
		return p.errf("expected %q, found %q", sym, t.text)
	}
	p.pos++
	return nil
}

// expectIdent consumes and returns an identifier.
func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, found %q", t.text)
	}
	p.pos++
	return t.text, nil
}

// keyword reports whether the current token is the given bare word.
func (p *parser) keyword(word string) bool {
	t := p.cur()
	return t.kind == tokIdent && t.text == word
}

// program parses the whole file.
func (p *parser) program() (*program.Def, error) {
	p.def = &program.Def{}
	p.vars = make(map[string]int)
	var invariants, badStates, badTrans []expr.Expr

	p.skipNewlines()
	if !p.keyword("program") {
		return nil, p.errf("file must start with 'program <name>'")
	}
	p.pos++
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	p.def.Name = name

	for {
		p.skipNewlines()
		t := p.cur()
		if t.kind == tokEOF {
			break
		}
		if t.kind != tokIdent {
			return nil, p.errf("expected a declaration keyword, found %q", t.text)
		}
		switch t.text {
		case "var":
			if err := p.varDecl(); err != nil {
				return nil, err
			}
		case "process":
			if err := p.processDecl(); err != nil {
				return nil, err
			}
		case "fault":
			p.pos++
			act, err := p.actionDecl(true)
			if err != nil {
				return nil, err
			}
			p.def.Faults = append(p.def.Faults, *act)
		case "invariant":
			p.pos++
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			invariants = append(invariants, e)
		case "badstate":
			p.pos++
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			badStates = append(badStates, e)
		case "badtrans":
			p.pos++
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			badTrans = append(badTrans, e)
		case "cost":
			p.pos++
			w, err := p.costValue()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(":"); err != nil {
				return nil, err
			}
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			p.def.CostRules = append(p.def.CostRules, program.CostRule{Cost: w, Pred: e})
		default:
			return nil, p.errf("unknown declaration %q", t.text)
		}
	}

	if len(invariants) == 0 {
		p.def.Invariant = expr.True
	} else {
		p.def.Invariant = expr.And(invariants...)
	}
	if len(badStates) > 0 {
		p.def.BadStates = expr.Or(badStates...)
	}
	if len(badTrans) > 0 {
		p.def.BadTrans = expr.Or(badTrans...)
	}
	return p.def, nil
}

// varDecl parses: var NAME : lo..hi   |   var NAME : bool
func (p *parser) varDecl() error {
	p.pos++ // 'var'
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if _, dup := p.vars[name]; dup {
		return p.errf("variable %q redeclared", name)
	}
	if err := p.expectSymbol(":"); err != nil {
		return err
	}
	domain := 0
	if p.keyword("bool") {
		p.pos++
		domain = 2
	} else {
		lo, err := p.number()
		if err != nil {
			return err
		}
		if lo != 0 {
			return p.errf("variable ranges must start at 0")
		}
		if err := p.expectSymbol(".."); err != nil {
			return err
		}
		hi, err := p.number()
		if err != nil {
			return err
		}
		if hi < 1 {
			return p.errf("variable %q needs at least two values", name)
		}
		domain = hi + 1
	}
	p.vars[name] = domain
	p.def.Vars = append(p.def.Vars, symbolic.VarSpec{Name: name, Domain: domain})
	return nil
}

func (p *parser) number() (int, error) {
	t := p.cur()
	if t.kind != tokNumber {
		return 0, p.errf("expected number, found %q", t.text)
	}
	p.pos++
	v, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, p.errf("bad number %q", t.text)
	}
	return v, nil
}

// maxCost bounds cost annotations. Costs are summed over transition sets in
// saturating int64 arithmetic during synthesis; capping each literal at 2^30
// keeps any realistic sum far from the ±∞ sentinels. (Negative literals never
// reach the parser: '-' is not a token of the language, so the lexer rejects
// them with a positioned error.)
const maxCost = 1 << 30

// costValue parses the weight of a `cost` clause: a positive literal in
// [1, maxCost]. Zero is rejected — a zero-cost transition would make cost
// minimization vacuous wherever it appears — and so are literals past the
// cap, with the error positioned at the literal.
func (p *parser) costValue() (int64, error) {
	t := p.cur()
	v, err := p.number()
	if err != nil {
		return 0, err
	}
	if v < 1 || v > maxCost {
		return 0, fmt.Errorf("line %d: cost %d out of range [1, %d]", t.line, v, maxCost)
	}
	return int64(v), nil
}

// processDecl parses a process block: the header line, then read/write/
// action clauses until the next top-level keyword.
func (p *parser) processDecl() error {
	p.pos++ // 'process'
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	for _, other := range p.def.Processes {
		if other.Name == name {
			return p.errf("process %q redeclared", name)
		}
	}
	proc := &program.Process{Name: name}
	for {
		p.skipNewlines()
		switch {
		case p.keyword("read"):
			p.pos++
			names, err := p.identList()
			if err != nil {
				return err
			}
			proc.Read = append(proc.Read, names...)
		case p.keyword("write"):
			p.pos++
			names, err := p.identList()
			if err != nil {
				return err
			}
			proc.Write = append(proc.Write, names...)
		case p.keyword("action"):
			p.pos++
			act, err := p.actionDecl(false)
			if err != nil {
				return err
			}
			proc.Actions = append(proc.Actions, *act)
		default:
			if len(proc.Read) == 0 {
				return p.errf("process %q has no read clause", name)
			}
			p.def.Processes = append(p.def.Processes, proc)
			return nil
		}
	}
}

// identList parses identifiers up to the end of the line; every name must be
// a declared variable.
func (p *parser) identList() ([]string, error) {
	var out []string
	for p.cur().kind == tokIdent {
		name := p.next().text
		if _, ok := p.vars[name]; !ok {
			return nil, p.errf("undeclared variable %q", name)
		}
		out = append(out, name)
	}
	if len(out) == 0 {
		return nil, p.errf("expected at least one variable name")
	}
	return out, nil
}

// actionDecl parses: NAME? : guard -> assignments [cost N]
// For faults the name is required to look the same; the leading keyword was
// already consumed by the caller. The trailing cost clause prices the
// action's transitions for cost-aware repair; faults are not priced (they
// are the adversary's moves, not the synthesizer's), so a cost clause on a
// fault is an error.
func (p *parser) actionDecl(isFault bool) (*program.Action, error) {
	act := &program.Action{}
	if p.cur().kind == tokIdent {
		act.Name = p.next().text
	}
	if err := p.expectSymbol(":"); err != nil {
		return nil, err
	}
	guard, err := p.expression()
	if err != nil {
		return nil, err
	}
	act.Guard = guard
	if err := p.expectSymbol("->"); err != nil {
		return nil, err
	}
	for {
		upd, err := p.assignment()
		if err != nil {
			return nil, err
		}
		act.Updates = append(act.Updates, *upd)
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			p.pos++
			continue
		}
		break
	}
	if p.keyword("cost") {
		if isFault {
			return nil, p.errf("fault actions cannot carry a cost (faults are not priced)")
		}
		p.pos++
		w, err := p.costValue()
		if err != nil {
			return nil, err
		}
		act.Cost = w
	}
	return act, nil
}

// assignment parses: NAME := const (| const)*   |   NAME := NAME
func (p *parser) assignment() (*program.Update, error) {
	target, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, ok := p.vars[target]; !ok {
		return nil, p.errf("assignment to undeclared variable %q", target)
	}
	if err := p.expectSymbol(":="); err != nil {
		return nil, err
	}
	if p.cur().kind == tokIdent {
		from := p.next().text
		if _, ok := p.vars[from]; !ok {
			return nil, p.errf("copy from undeclared variable %q", from)
		}
		u := program.Copy(target, from)
		return &u, nil
	}
	var values []int
	for {
		v, err := p.number()
		if err != nil {
			return nil, err
		}
		values = append(values, v)
		if p.cur().kind == tokSymbol && p.cur().text == "|" {
			p.pos++
			continue
		}
		break
	}
	if len(values) == 1 {
		u := program.Set(target, values[0])
		return &u, nil
	}
	u := program.Choose(target, values...)
	return &u, nil
}

// --- expression grammar ------------------------------------------------
//
//	expression := term ('|' term)*
//	term       := factor ('&' factor)*
//	factor     := '!' factor | '(' expression ')' | atom
//	atom       := 'true' | 'false'
//	            | 'changed' '(' NAME ')' | 'unchanged' '(' NAME ')'
//	            | NAME ''? ('=' | '!=' | '<') (NUMBER | NAME)

func (p *parser) expression() (expr.Expr, error) {
	left, err := p.term()
	if err != nil {
		return nil, err
	}
	parts := []expr.Expr{left}
	for p.cur().kind == tokSymbol && p.cur().text == "|" {
		p.pos++
		right, err := p.term()
		if err != nil {
			return nil, err
		}
		parts = append(parts, right)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return expr.Or(parts...), nil
}

func (p *parser) term() (expr.Expr, error) {
	left, err := p.factor()
	if err != nil {
		return nil, err
	}
	parts := []expr.Expr{left}
	for p.cur().kind == tokSymbol && p.cur().text == "&" {
		p.pos++
		right, err := p.factor()
		if err != nil {
			return nil, err
		}
		parts = append(parts, right)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return expr.And(parts...), nil
}

func (p *parser) factor() (expr.Expr, error) {
	t := p.cur()
	if t.kind == tokSymbol && t.text == "!" {
		p.pos++
		inner, err := p.factor()
		if err != nil {
			return nil, err
		}
		return expr.Not(inner), nil
	}
	if t.kind == tokSymbol && t.text == "(" {
		p.pos++
		inner, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return p.atom()
}

func (p *parser) atom() (expr.Expr, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return nil, p.errf("expected an atom, found %q", t.text)
	}
	switch t.text {
	case "true":
		p.pos++
		return expr.True, nil
	case "false":
		p.pos++
		return expr.False, nil
	case "changed", "unchanged":
		p.pos++
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, ok := p.vars[name]; !ok {
			return nil, p.errf("undeclared variable %q", name)
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		if t.text == "changed" {
			return expr.Changed(name), nil
		}
		return expr.Unchanged(name), nil
	}

	name := p.next().text
	if _, ok := p.vars[name]; !ok {
		return nil, p.errf("undeclared variable %q", name)
	}
	primed := false
	if p.cur().kind == tokPrime {
		primed = true
		p.pos++
	}
	op := p.cur()
	if op.kind != tokSymbol || (op.text != "=" && op.text != "!=" && op.text != "<") {
		return nil, p.errf("expected comparison after %q", name)
	}
	p.pos++

	rhs := p.cur()
	switch rhs.kind {
	case tokNumber:
		v, _ := strconv.Atoi(rhs.text)
		p.pos++
		switch {
		case primed && op.text == "=":
			return expr.NextEq(name, v), nil
		case primed && op.text == "!=":
			return expr.Not(expr.NextEq(name, v)), nil
		case primed:
			return nil, p.errf("'<' is not supported on primed variables")
		case op.text == "=":
			return expr.Eq(name, v), nil
		case op.text == "!=":
			return expr.Ne(name, v), nil
		default:
			return expr.Lt(name, v), nil
		}
	case tokIdent:
		other := p.next().text
		if _, ok := p.vars[other]; !ok {
			return nil, p.errf("undeclared variable %q", other)
		}
		switch {
		case primed && op.text == "=":
			return expr.NextEqVar(name, other), nil
		case primed && op.text == "!=":
			return expr.Not(expr.NextEqVar(name, other)), nil
		case primed:
			return nil, p.errf("'<' is not supported on primed variables")
		case op.text == "=":
			return expr.EqVar(name, other), nil
		case op.text == "!=":
			return expr.NeVar(name, other), nil
		default:
			return nil, p.errf("'<' between variables is not supported")
		}
	default:
		return nil, p.errf("expected a number or variable after %q", op.text)
	}
}
