package parse

import (
	"context"
	"strings"
	"testing"

	"repro/internal/bdd"
	"repro/internal/repair"
	"repro/internal/verify"
)

const trafficModel = `
# A pedestrian light with a glitching lamp.
program traffic

var light : 0..2
var btn   : bool

process controller
  read  light btn
  write light
  action go   : light = 0 & btn = 1 -> light := 1
  action stop : light = 1           -> light := 0

fault glitch : light < 2 -> light := 2
fault press  : true      -> btn := 0 | 1

invariant light < 2
badtrans  changed(btn) & unchanged(light) & btn' = 1 & false
`

func TestParseTraffic(t *testing.T) {
	def, err := Program(trafficModel)
	if err != nil {
		t.Fatal(err)
	}
	if def.Name != "traffic" {
		t.Fatalf("name = %q", def.Name)
	}
	if len(def.Vars) != 2 || def.Vars[0].Domain != 3 || def.Vars[1].Domain != 2 {
		t.Fatalf("vars = %+v", def.Vars)
	}
	if len(def.Processes) != 1 || len(def.Processes[0].Actions) != 2 {
		t.Fatalf("processes = %+v", def.Processes)
	}
	if len(def.Faults) != 2 {
		t.Fatalf("faults = %+v", def.Faults)
	}
	c, err := def.Compile()
	if err != nil {
		t.Fatal(err)
	}
	// The parsed model repairs and verifies: the controller must reset the
	// glitched lamp.
	res, err := repair.Lazy(context.Background(), c, repair.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep := verify.Result(c, res); !rep.OK() {
		t.Fatalf("verification failed:\n%s", rep)
	}
	reset, _ := c.Space.Transition(
		map[string]int{"light": 2, "btn": 0},
		map[string]int{"light": 0, "btn": 0})
	alt, _ := c.Space.Transition(
		map[string]int{"light": 2, "btn": 0},
		map[string]int{"light": 1, "btn": 0})
	if !c.Space.M.Implies(reset, res.Trans) && !c.Space.M.Implies(alt, res.Trans) {
		t.Fatal("no recovery for the glitched lamp")
	}
}

const chainModel = `
program minichain
var fc  : bool
var x.0 : 0..2
var x.1 : 0..2
var x.2 : 0..2

process p1
  read  x.0 x.1
  write x.1
process p2
  read  x.1 x.2
  write x.2

fault hit0a : fc = 0 -> x.0 := 0 | 1 | 2, fc := 1
fault hit0b : fc = 1 -> x.0 := 0 | 1 | 2, fc := 0
fault hit1a : fc = 0 -> x.1 := 0 | 1 | 2, fc := 1
fault hit1b : fc = 1 -> x.1 := 0 | 1 | 2, fc := 0
fault hit2a : fc = 0 -> x.2 := 0 | 1 | 2, fc := 1
fault hit2b : fc = 1 -> x.2 := 0 | 1 | 2, fc := 0

invariant x.1 = x.0
invariant x.2 = x.1
badtrans  unchanged(fc) & changed(x.1) & !(x.1' = x.0)
badtrans  unchanged(fc) & changed(x.2) & !(x.2' = x.1)
`

func TestParseChainEquivalentToGenerator(t *testing.T) {
	def, err := Program(chainModel)
	if err != nil {
		t.Fatal(err)
	}
	c := def.MustCompile()
	res, err := repair.Lazy(context.Background(), c, repair.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep := verify.Result(c, res); !rep.OK() {
		t.Fatalf("verification failed:\n%s", rep)
	}
	// Dotted variable names survive the round trip.
	if c.Space.VarByName("x.1") == nil {
		t.Fatal("dotted variable name lost")
	}
	// The copy-left protocol is synthesized.
	tr, _ := c.Space.Transition(
		map[string]int{"fc": 0, "x.0": 1, "x.1": 2, "x.2": 2},
		map[string]int{"fc": 0, "x.0": 1, "x.1": 1, "x.2": 2})
	if !c.Space.M.Implies(tr, res.Trans) {
		t.Fatal("copy-left recovery missing from parsed model's repair")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  string
	}{
		{"no program", "var x : bool\n", "must start"},
		{"bad range", "program p\nvar x : 1..3\n", "start at 0"},
		{"tiny domain", "program p\nvar x : 0..0\n", "at least two"},
		{"redeclared", "program p\nvar x : bool\nvar x : bool\n", "redeclared"},
		{"undeclared in guard", "program p\nvar x : bool\nfault f : y = 1 -> x := 0\n", "undeclared"},
		{"undeclared target", "program p\nvar x : bool\nfault f : true -> y := 0\n", "undeclared"},
		{"no read", "program p\nvar x : bool\nprocess q\n  write x\n", "no read clause"},
		{"missing arrow", "program p\nvar x : bool\nfault f : true x := 0\n", "expected"},
		{"primed lt", "program p\nvar x : 0..2\nfault f : true -> x := 0\nbadtrans x' < 1\n", "not supported"},
		{"stray char", "program p\nvar x : bool @\n", "unexpected character"},
		{"bad atom", "program p\nvar x : bool\ninvariant & x = 1\n", "atom"},
		{"unknown decl", "program p\nfrobnicate\n", "unknown declaration"},
		{"unclosed guard", "program p\nvar x : bool\nfault f : (x = 1 & x = 0 -> x := 0\n", "expected \")\""},
		{"duplicate process", "program p\nvar x : bool\nprocess q\n  read x\nprocess q\n  read x\n", "redeclared"},
		{"undeclared in read", "program p\nvar x : bool\nprocess q\n  read y\n  write x\n", "undeclared"},
		{"undeclared in write", "program p\nvar x : bool\nprocess q\n  read x\n  write y\n", "undeclared"},
		{"truncated comparison", "program p\nvar x : bool\ninvariant x =", "expected"},
		{"empty file", "", "must start"},
		{"zero cost", "program p\nvar x : bool\nprocess q\n  read x\n  write x\n  action a : x = 0 -> x := 1 cost 0\n", "out of range"},
		{"overflowing cost", "program p\nvar x : bool\nprocess q\n  read x\n  write x\n  action a : x = 0 -> x := 1 cost 99999999999999999999\n", "bad number"},
		{"over-cap cost", "program p\nvar x : bool\nprocess q\n  read x\n  write x\n  action a : x = 0 -> x := 1 cost 1073741825\n", "out of range"},
		{"negative cost", "program p\nvar x : bool\ncost -2 : x = 1\n", "unexpected character"},
		{"fault cost", "program p\nvar x : bool\nfault f : true -> x := 0 cost 3\n", "cannot carry a cost"},
		{"rule cost missing colon", "program p\nvar x : bool\ncost 2 x = 1\n", "expected"},
	}
	for _, tc := range cases {
		_, err := Program(tc.input)
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestParseCosts pins the cost-annotation grammar: a trailing `cost N`
// clause on program actions and top-level `cost N : expr` rules, with
// unannotated actions carrying the zero value (priced at the default by the
// weight layer, not the parser).
func TestParseCosts(t *testing.T) {
	src := `
program priced
var x : 0..2

process p
  read  x
  write x
  action up   : x = 0 -> x := 1 cost 3
  action down : x = 1 -> x := 0

cost 5 : changed(x)
cost 2 : x = 2
`
	def, err := Program(src)
	if err != nil {
		t.Fatal(err)
	}
	acts := def.Processes[0].Actions
	if acts[0].Cost != 3 {
		t.Fatalf("annotated action cost = %d, want 3", acts[0].Cost)
	}
	if acts[1].Cost != 0 {
		t.Fatalf("unannotated action cost = %d, want 0", acts[1].Cost)
	}
	if len(def.CostRules) != 2 || def.CostRules[0].Cost != 5 || def.CostRules[1].Cost != 2 {
		t.Fatalf("cost rules = %+v", def.CostRules)
	}
	if got := def.CostRules[0].Pred.String(); !strings.Contains(got, "changed") {
		t.Fatalf("rule predicate = %q, want a changed() form", got)
	}
	if _, err := def.Compile(); err != nil {
		t.Fatalf("costed model fails to compile: %v", err)
	}
}

func TestParseExpressionForms(t *testing.T) {
	src := `
program forms
var a : 0..3
var b : 0..3

process p
  read  a b
  write a
  action t : (a = 0 | a = 1) & !(b < 2) & a != 3 & a = b & a != b -> a := b

invariant true
badstate  false
badtrans  changed(a) & a' = 2
badtrans  a' = b & unchanged(b)
`
	def, err := Program(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := def.Compile(); err != nil {
		t.Fatal(err)
	}
}

func TestParsedMatchesHandBuilt(t *testing.T) {
	// The same model written in text and in Go must compile to identical
	// transition relations.
	def, err := Program(trafficModel)
	if err != nil {
		t.Fatal(err)
	}
	c := def.MustCompile()
	if c.Trans == bdd.False || c.Fault == bdd.False {
		t.Fatal("parsed model compiled to empty relations")
	}
	// go action: light=0 ∧ btn=1 → light:=1: exactly 1 transition.
	goTr, _ := c.Space.Transition(
		map[string]int{"light": 0, "btn": 1},
		map[string]int{"light": 1, "btn": 1})
	if !c.Space.M.Implies(goTr, c.Trans) {
		t.Fatal("parsed 'go' action missing")
	}
	if got := c.Space.CountTransitions(c.Trans); got != 3 { // go + stop(btn=0,1)
		t.Fatalf("transitions = %v, want 3", got)
	}
}
