package parse

import (
	"strings"
	"testing"
)

// FuzzProgram asserts the parser's contract on hostile input: malformed .ftr
// source must produce an error, never a panic, and whatever parses must also
// survive compilation (gated to small state spaces so the fuzzer explores the
// grammar rather than the BDD engine).
//
// The table-driven TestParseErrors cases double as the fuzz corpus here, so a
// regression on any known-bad shape is one `go test -fuzz=FuzzProgram` away
// from rediscovery.
func FuzzProgram(f *testing.F) {
	// Well-formed models: mutations explore near-miss syntax.
	f.Add(trafficModel)
	f.Add(chainModel)
	// Known-bad shapes from the error table.
	f.Add("var x : bool\n")
	f.Add("program p\nvar x : 1..3\n")
	f.Add("program p\nvar x : bool\nvar x : bool\n")
	f.Add("program p\nvar x : bool\nfault f : (x = 1 & x = 0 -> x := 0\n")
	f.Add("program p\nvar x : bool\nprocess q\n  read x\nprocess q\n  read x\n")
	f.Add("program p\nvar x : bool\nprocess q\n  read y\n  write x\n")
	f.Add("program p\nvar x : bool\ninvariant x =")
	f.Add("program p\nvar x : bool @\n")
	f.Add("program p\nvar x : 0..999999\n")
	f.Add("")
	// Cost-annotation shapes: well-formed, out-of-range, overflowing,
	// negative (fails at lex — no '-' token), priced fault, truncated rule.
	f.Add("program p\nvar x : bool\nprocess q\n  read x\n  write x\n  action a : x = 0 -> x := 1 cost 3\ncost 5 : changed(x)\n")
	f.Add("program p\nvar x : bool\nprocess q\n  read x\n  write x\n  action a : x = 0 -> x := 1 cost 0\n")
	f.Add("program p\nvar x : bool\ncost 99999999999999999999 : x = 1\n")
	f.Add("program p\nvar x : bool\ncost -2 : x = 1\n")
	f.Add("program p\nvar x : bool\nfault f : true -> x := 0 cost 3\n")
	f.Add("program p\nvar x : bool\ncost 2\n")

	f.Fuzz(func(t *testing.T, src string) {
		def, err := Program(src)
		if err != nil {
			if def != nil {
				t.Fatalf("error %v returned alongside a non-nil Def", err)
			}
			return
		}
		// Only compile small instances: the fuzzer should spend its budget on
		// the parser, not on symbolic fixpoints over huge domains.
		bits := 0
		for _, v := range def.Vars {
			d := v.Domain
			for d > 1 {
				bits++
				d = (d + 1) / 2
			}
		}
		if bits > 12 || len(def.Processes) > 8 || len(def.Faults) > 16 {
			return
		}
		if _, err := def.Compile(); err != nil {
			// Compile may legitimately reject a parseable Def (e.g. empty
			// write sets); it must do so with an error, not a panic.
			if !strings.Contains(err.Error(), ":") && err.Error() == "" {
				t.Fatalf("empty compile error")
			}
		}
	})
}
