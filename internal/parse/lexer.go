// Package parse reads distributed-program definitions from a small
// declarative text format, so repair problems can be written without Go:
//
//	program traffic
//
//	var light : 0..2
//	var btn   : bool
//
//	process controller
//	  read  light btn
//	  write light
//	  action go   : light = 0 & btn = 1 -> light := 1 cost 3
//	  action stop : light = 1           -> light := 0
//
//	fault glitch : light = 1 -> light := 2
//	fault press  : true      -> btn := 0 | 1
//
//	invariant light < 2
//	badstate  light = 2 & btn = 0
//	badtrans  changed(light) & light' = 2
//	cost 5 : changed(btn)
//
// Multiple `invariant` lines are conjoined; multiple `badstate`/`badtrans`
// lines are disjoined. Expressions support =, !=, <, & (and), | (or),
// ! (not), parentheses, `true`, `false`, variable–variable comparison
// (x = y), next-state forms (x' = 1, x' = y), and changed(x)/unchanged(x).
// Assignments support constants (x := 1), copies (x := y), and
// nondeterministic choice (x := 0 | 2).
//
// Cost annotations price transitions for cost-aware repair (see
// program.CostRule and the repair package's CostModel): an action's trailing
// `cost N` clause prices that action's transitions, and a top-level
// `cost N : expr` declaration prices every transition satisfying the
// (possibly transition-level) predicate. Weights are positive integers up to
// 2^30; when several sources price one transition the minimum wins, and
// unpriced transitions default to weight 1. Fault actions carry no cost.
package parse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokNewline
	tokIdent  // identifiers, possibly with dots: d.0, x.12
	tokNumber // decimal integer
	tokPrime  // ' attached to the preceding identifier (lexed together)
	tokSymbol // punctuation: = != < & | ! ( ) : , .. -> :=
)

// token is one lexeme with its source position.
type token struct {
	kind tokenKind
	text string
	line int
}

// lex splits the input into tokens. Comments run from '#' to end of line.
// Newlines are significant (they terminate clauses), so they are tokens.
func lex(input string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == '#':
			for i < n && input[i] != '\n' {
				i++
			}
		case c == '\n':
			toks = append(toks, token{tokNewline, "\n", line})
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < n && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_' || input[j] == '.') {
				// ".." is the range operator, not part of an identifier.
				if input[j] == '.' && j+1 < n && input[j+1] == '.' {
					break
				}
				j++
			}
			text := strings.TrimSuffix(input[i:j], ".")
			j = i + len(text)
			toks = append(toks, token{tokIdent, text, line})
			i = j
			if i < n && input[i] == '\'' {
				toks = append(toks, token{tokPrime, "'", line})
				i++
			}
		case unicode.IsDigit(rune(c)):
			j := i
			for j < n && unicode.IsDigit(rune(input[j])) {
				j++
			}
			toks = append(toks, token{tokNumber, input[i:j], line})
			i = j
		default:
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch {
			case two == ":=" || two == "!=" || two == ".." || two == "->":
				toks = append(toks, token{tokSymbol, two, line})
				i += 2
			case strings.ContainsRune("=<&|!():,", rune(c)):
				toks = append(toks, token{tokSymbol, string(c), line})
				i++
			default:
				return nil, fmt.Errorf("line %d: unexpected character %q", line, c)
			}
		}
	}
	toks = append(toks, token{tokEOF, "", line})
	return toks, nil
}
