package repair

import (
	"context"
	"time"

	"repro/internal/bdd"
	"repro/internal/program"
	"repro/internal/witness"
)

// Lazy implements Algorithm 1: adding masking fault-tolerance to a
// distributed program via lazy repair.
//
// Each outer iteration first runs Add-Masking (Step 1, realizability
// ignored), then Realize (Step 2, realizability enforced by removal). If
// Step 2's removals created deadlock states inside the fault-span, those
// states are made unreachable by adding every transition into them — and
// every transition escaping the fault-span — to the bad-transition part of
// the safety specification, and the loop repeats (Algorithm 1 lines 10–12).
//
// The context is consulted at fixpoint-iteration boundaries (the outer
// repeat loop, Step 1's shrink fixpoint, and the long symbolic reachability
// fixpoints), so a deadline or cancellation aborts a hung synthesis between
// symbolic steps with an error wrapping ctx.Err().
func Lazy(ctx context.Context, c *program.Compiled, opts Options) (*Result, error) {
	eng, err := program.NewEngine(c, opts.Workers)
	if err != nil {
		return nil, err
	}
	return LazyEngine(ctx, eng, opts)
}

// LazyEngine is Lazy running on a caller-supplied engine, so the engine's
// worker clones can be shared with the verifier (see internal/core.Run).
func LazyEngine(ctx context.Context, eng *program.Engine, opts Options) (*Result, error) {
	opts.ApplyEngine(eng)
	c := eng.C
	m := c.Space.M
	s := c.Space
	start := time.Now()
	sc := m.Protect()
	defer sc.Release()

	var stats Stats
	reach, err := eng.ReachableParts(ctx, c.Invariant, c.PartsWithFaults(bdd.True))
	if err != nil {
		return nil, engineErr(ctx, err)
	}
	stats.ReachableStates = s.CountStates(reach)

	// The weight ADD of a costed run, built once on the primary manager
	// (outside any parallel region — see cost.go). nil slot means uncosted.
	var weight *bdd.Rooted
	if opts.Costs != nil {
		weight = sc.Slot(buildWeight(c, opts.Costs))
	}

	invariant := sc.Slot(c.Invariant)
	badTrans := sc.Slot(c.BadTrans)

	maxIter := opts.MaxOuterIterations
	if maxIter <= 0 {
		maxIter = 64
	}
	// Loop-carried slots: the realized per-process relations, their union,
	// the certified span, the residual deadlocks, and the residue of the
	// last iteration (kept for the non-convergence witness).
	partSlots := make([]*bdd.Rooted, len(c.Procs))
	for i := range partSlots {
		partSlots[i] = sc.Slot(bdd.False)
	}
	realizedS := sc.Slot(bdd.False)
	lastDL := sc.Slot(bdd.False)
	lastRealized := sc.Slot(bdd.False)
	lastInv := sc.Slot(bdd.False)
	for iter := 1; iter <= maxIter; iter++ {
		stats.OuterIterations = iter
		if err := cancelled(ctx); err != nil {
			return nil, err
		}

		opts.phase("step1")
		t0 := time.Now()
		mask, err := AddMaskingEngine(ctx, eng, invariant.Node(), badTrans.Node(), opts)
		stats.Step1 += time.Since(t0)
		if err != nil {
			return nil, err
		}
		opts.logf("lazy: iteration %d: step 1 done (|S'|=%g, |T'|=%g)",
			iter, s.CountStates(mask.Invariant), s.CountStates(mask.FaultSpan))

		opts.phase("step2")
		t1 := time.Now()
		parts, err := RealizePartsEngine(ctx, eng, mask.Trans, mask.FaultSpan)
		if err != nil {
			return nil, engineErr(ctx, err)
		}
		for j, p := range parts {
			partSlots[j].Set(p)
		}
		realized := realizedS.Set(m.OrN(parts...))

		// Group-aware cycle elimination. Step 1 kept recovery maximal, so
		// the realized program may loop outside the invariant. Cycles are
		// broken here, where whole read-restriction groups can be removed
		// at once: removing a single rank-violating transition would break
		// its group and un-realize the program, which is exactly the
		// failure mode of group-oblivious cycle-breaking in Step 1.
		// With cycle-breaking done in Step 1 (the default), the realized
		// program is a subset of an already livelock-free relation, so no
		// cycle work is needed here — exactly the paper's Algorithm 2. In
		// the DeferCycleBreaking ablation, Step 1 kept recovery maximal and
		// cycles are eliminated here, group-aware: whole read-restriction
		// groups are removed at once. Every cycle outside the invariant
		// consists entirely of edges that do not strictly decrease the
		// breadth-first rank toward the invariant (a rank-decreasing edge
		// drops the rank, so no cycle can close through one), so the
		// infinite-path fixpoint runs on the bad-edge subrelation only.
		region := sc.Keep(m.Diff(mask.FaultSpan, mask.Invariant))
		for opts.DeferCycleBreaking {
			if err := cancelled(ctx); err != nil {
				return nil, err
			}
			isc := m.Protect()
			ranked := isc.Slot(mask.Invariant)
			remaining := isc.Slot(region)
			bad := isc.Slot(bdd.False)
			for remaining.Node() != bdd.False {
				newly := isc.Keep(srcInto(c, parts, remaining.Node(), ranked.Node()))
				if newly == bdd.False {
					break
				}
				notRanked := isc.Keep(m.Not(s.Prime(ranked.Node())))
				for _, part := range parts {
					bad.Set(m.Or(bad.Node(), m.AndN(part, newly, notRanked)))
				}
				ranked.Set(m.Or(ranked.Node(), newly))
				remaining.Set(m.Diff(remaining.Node(), newly))
			}
			// Unranked states can never reach the invariant: their edges
			// are useless; removing them deadlocks the states, which the
			// feedback below then makes unreachable.
			for _, part := range parts {
				bad.Set(m.Or(bad.Node(), m.And(part, remaining.Node())))
			}
			badParts := make([]bdd.Node, len(parts))
			for j := range parts {
				badParts[j] = isc.Keep(m.And(parts[j], bad.Node()))
			}
			core := isc.Keep(program.CyclicCore(c, badParts, region))
			toRemove := isc.Keep(m.Or(m.AndN(bad.Node(), core, s.Prime(core)), m.And(bad.Node(), remaining.Node())))
			// Cost-aware refinement: drop only the cheapest weight class per
			// pass. Ranks are recomputed against the shrunken relation each
			// pass, so expensive rank-violating transitions often become
			// rank-decreasing — and survive — once their cheap cycle-mates are
			// gone. The loop already runs until no pass changes anything, so
			// the restriction adds passes, never outer iterations.
			if opts.MinimizeCost && weight != nil {
				toRemove = isc.Keep(cheapestClass(m, toRemove, weight.Node()))
			}
			changed := false
			for j, p := range c.Procs {
				pb := m.And(parts[j], toRemove)
				if pb == bdd.False {
					continue
				}
				parts[j] = partSlots[j].Set(m.Diff(parts[j], p.Group(pb)))
				changed = true
			}
			isc.Release()
			if !changed {
				break
			}
			realized = realizedS.Set(m.OrN(parts...))
		}
		certSpan, err := eng.ReachableParts(ctx, mask.Invariant, append(append([]bdd.Node{}, parts...), c.FaultParts...))
		if err != nil {
			return nil, engineErr(ctx, err)
		}
		sc.Keep(certSpan)

		// Deadlocks among the states actually reachable from the repaired
		// invariant in the realized program under faults, outside the
		// repaired invariant. (The fault-span of Definition 15 is
		// existentially quantified, so deadlocked states the realized
		// program can no longer reach are harmless — the reachable set
		// itself is the certificate. Deadlocks inside the invariant are
		// legal finite computations; see the note in repair.go.)
		noOut := m.Diff(s.ValidCur(), src(c, realized))
		dl := sc.Keep(m.AndN(certSpan, noOut, m.Not(mask.Invariant)))
		stats.Step2 += time.Since(t1)

		if dl == bdd.False {
			// Cost-aware refinement: with the repair converged, thin the
			// synthesized recovery from the most expensive group class down,
			// keeping the verdict (removal-only, whole groups) while lowering
			// AchievedCost. See cost.go.
			if opts.MinimizeCost && weight != nil {
				opts.phase("thin")
				span, terr := thinRecovery(ctx, eng, mask.Invariant, weight.Node(), parts, partSlots, &opts)
				if terr != nil {
					return nil, terr
				}
				certSpan = sc.Keep(span)
				realized = realizedS.Set(m.OrN(parts...))
			}
			stats.Total = time.Since(start)
			stats.BDDNodes = m.Size()
			opts.logf("lazy: converged after %d iteration(s)", iter)
			// The result's relations outlive this call's scope; root them for
			// the life of the manager.
			res := &Result{
				Trans:     m.Ref(realized),
				Invariant: m.Ref(mask.Invariant),
				FaultSpan: m.Ref(certSpan),
				Stats:     stats,
			}
			if weight != nil {
				measureCosts(c, res, weight.Node())
			}
			return res, nil
		}
		opts.logf("lazy: iteration %d: %g deadlock state(s); augmenting spec",
			iter, s.CountStates(dl))
		lastDL.Set(dl)
		lastRealized.Set(realized)
		lastInv.Set(mask.Invariant)

		// Feedback (Algorithm 1 line 11, refined). A state deadlocks when
		// Step 2 removed its Step-1 transitions because their groups were
		// incomplete: some member, starting from another reachable state,
		// was removed in Step 1 for a good reason. The direct cure is to
		// make those *blocking member sources* unreachable — banning
		// transitions into them lets the group complete as free transitions
		// in the next iteration. Only when no blocker can be eliminated are
		// the deadlock states themselves made unreachable.
		isc := m.Protect()
		free := m.And(m.Not(mask.FaultSpan), s.ValidTrans())
		have := isc.Keep(m.Or(m.And(mask.Trans, s.ValidTrans()), free))
		dlOut := isc.Keep(m.And(mask.Trans, dl))
		blockersS := isc.Slot(bdd.False)
		for _, p := range c.Procs {
			cand := m.And(dlOut, p.WriteOK)
			if cand == bdd.False {
				continue
			}
			missing := m.Diff(p.Group(cand), have)
			blockersS.Set(m.Or(blockersS.Node(), src(c, missing)))
		}
		blockers := isc.Keep(m.Diff(blockersS.Node(), mask.Invariant))

		escape := m.AndN(mask.FaultSpan, m.Not(s.Prime(mask.FaultSpan)), s.ValidTrans())
		next := isc.Slot(m.Or(badTrans.Node(), escape))
		if blockers != bdd.False {
			next.Set(m.Or(next.Node(), m.And(s.Prime(blockers), s.ValidTrans())))
			opts.logf("lazy: iteration %d: banning entry to %g blocking state(s)",
				iter, s.CountStates(blockers))
		}
		// Transitions Step 2 provably could not realize from the deadlocked
		// states (e.g. multi-variable jumps whose group twins would be new
		// behavior inside the invariant) are banned outright, so the next
		// Step 1 routes recovery around them — typically through echoes of
		// the original protocol, whose groups do survive.
		unrealizable := m.Diff(dlOut, realized)
		if unrealizable != bdd.False {
			next.Set(m.Or(next.Node(), unrealizable))
		}
		if next.Node() == badTrans.Node() {
			// No new blocker information: fall back to making the deadlock
			// states themselves unreachable.
			next.Set(m.Or(next.Node(), m.And(s.Prime(dl), s.ValidTrans())))
		}
		badTrans.Set(next.Node())
		invariant.Set(mask.Invariant)
		isc.Release()
	}
	// Carry evidence out of the failure: a certified trace to one of the
	// deadlock states the final iteration could not eliminate. Extraction
	// failure (or cancellation racing the bound) falls back to the bare
	// sentinel.
	if lastDL.Node() != bdd.False {
		x := witness.New(c)
		if tr, werr := x.Deadlock(ctx, lastRealized.Node(), lastInv.Node(), lastDL.Node()); werr == nil && tr != nil {
			tr.Check = "repair convergence"
			return nil, &DeadlockError{Witness: tr, err: ErrNoConvergence}
		}
	}
	return nil, ErrNoConvergence
}
