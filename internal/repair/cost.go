package repair

// Cost-aware lazy repair. A repair problem's transitions are priced by an
// ADD weight layer (see internal/bdd's add.go): each valid transition
// carries a positive integer weight assembled from .ftr cost annotations,
// cost rules, and the caller's CostModel overrides, with unpriced
// transitions defaulting to weight 1. Two refinements spend that
// information:
//
//   - The deferred cycle-elimination pass (Options.DeferCycleBreaking)
//     removes the cheapest weight class of rank-violating transitions first;
//     later passes recompute ranks against the shrunken relation, which can
//     spare expensive transitions a cost-blind pass would have dropped.
//   - At convergence, a thinning pass walks the synthesized recovery
//     transitions from the most expensive group class down and deletes whole
//     read-restriction groups whose removal keeps every reachable
//     fault-span state able to recover, re-adding exactly the groups whose
//     loss broke a recovery path.
//
// Both refinements only ever shrink the converged relation toward cheaper
// recovery, so the repair verdict — and every verifier check — is unchanged;
// only AchievedCost drops. All ADD work runs on the engine's primary
// manager between parallel regions, which is what makes weighted runs
// byte-identical across worker counts and engine modes.

import (
	"context"

	"repro/internal/bdd"
	"repro/internal/program"
)

// CostModel prices transitions for cost-aware repair.
type CostModel struct {
	// Default is the weight of transitions no other source prices; values
	// below 1 mean 1.
	Default int64
	// Actions overrides per-action weights by name: a "proc.action" key
	// binds one process's action, a bare "action" key binds every action
	// with that name. Qualified keys win over bare ones, and both win over
	// the .ftr annotation. Entries below 1 are ignored.
	Actions map[string]int64
}

// actionWeight resolves one process/action pair against the model's
// overrides, falling back to the declared .ftr annotation.
func (cm *CostModel) actionWeight(proc, action string, declared int64) int64 {
	if w, ok := cm.Actions[proc+"."+action]; ok && w > 0 {
		return w
	}
	if w, ok := cm.Actions[action]; ok && w > 0 {
		return w
	}
	return declared
}

// buildWeight lowers the cost model onto the compiled program as a
// transition-weight ADD. The caller roots the result.
func buildWeight(c *program.Compiled, cm *CostModel) bdd.Node {
	return c.WeightADD(cm.actionWeight, cm.Default)
}

// measureCosts prices a synthesis result under the weight ADD: AchievedCost
// sums the weights of the kept transitions leaving the repaired invariant
// (the recovery behavior the repair pays to retain), CostRemoved sums the
// weights of the original program's transitions the repair deleted.
func measureCosts(c *program.Compiled, res *Result, w bdd.Node) {
	m := c.Space.M
	s := c.Space
	sc := m.Protect()
	defer sc.Release()
	rec := sc.Keep(m.AndN(res.Trans, m.Not(res.Invariant), s.ValidTrans()))
	res.AchievedCost = m.AddSum(sc.Keep(m.ITE(rec, w, bdd.False)))
	removed := sc.Keep(m.Diff(m.And(c.Trans, s.ValidTrans()), res.Trans))
	res.CostRemoved = m.AddSum(sc.Keep(m.ITE(removed, w, bdd.False)))
	res.Costed = true
}

// cheapestClass restricts delta to the transitions whose weight under w
// equals the minimum weight present in delta. False stays False.
func cheapestClass(m *bdd.Manager, delta, w bdd.Node) bdd.Node {
	if delta == bdd.False {
		return bdd.False
	}
	sc := m.Protect()
	defer sc.Release()
	priced := sc.Keep(m.ITE(delta, w, m.AddConst(bdd.AddInf)))
	v := m.AddMinValue(priced)
	if v >= bdd.AddInf {
		return bdd.False
	}
	atLeast := sc.Keep(m.Threshold(priced, v))
	return m.And(delta, m.Diff(atLeast, m.Threshold(priced, v+1)))
}

// thinRecovery is the convergence-time cost-minimization pass of lazy
// repair. parts must be the converged realized per-process relations (every
// state of the certified span outside the invariant reaches the invariant,
// and the sub-relation outside the invariant is acyclic). The pass walks the
// synthesized recovery transitions — kept transitions outside the repaired
// invariant that the fault-intolerant program did not already have — from
// the most expensive read-restriction group class down (per
// program.GroupMinCost), and per process removes whole group classes,
// re-adding exactly the groups whose loss left some reachable fault-span
// state unable to recover. Removal is the only mutation, so livelock
// freedom, realizability (full groups only), and every safety property of
// the converged relation are preserved; parts and partSlots are updated in
// place and the recomputed certified span of the thinned relation is
// returned (rooted via the caller's scope when kept).
func thinRecovery(ctx context.Context, eng *program.Engine, invariant, w bdd.Node,
	parts []bdd.Node, partSlots []*bdd.Rooted, opts *Options) (bdd.Node, error) {
	c := eng.C
	m := c.Space.M
	s := c.Space
	sc := m.Protect()
	defer sc.Release()
	sc.Keep(invariant)
	sc.Keep(w)

	// reach/backward recompute the certificate of a trial relation: the span
	// reachable from the invariant under program+faults, and the states that
	// can recover into the invariant via program transitions alone.
	reach := func(ps []bdd.Node) (bdd.Node, error) {
		return eng.ReachableParts(ctx, invariant, append(append([]bdd.Node{}, ps...), c.FaultParts...))
	}

	// Original program transitions are never thinned: deleting them is what
	// CostRemoved charges for, the opposite of this pass's objective.
	orig := sc.Keep(m.And(c.Trans, s.ValidTrans()))
	for j := range parts {
		if err := cancelled(ctx); err != nil {
			return bdd.False, err
		}
		p := c.Procs[j]
		psc := m.Protect()
		// Groups with a member inside the invariant or in the original
		// program are anchored: groups are removed whole or not at all, and
		// anchored members must stay.
		anchored := psc.Keep(p.Group(m.And(parts[j], m.Or(invariant, orig))))
		cand := psc.Keep(m.Diff(m.AndN(parts[j], m.Not(invariant), m.Not(orig)), anchored))
		if cand == bdd.False {
			psc.Release()
			continue
		}
		gcost := psc.Keep(p.GroupMinCost(cand, w))
		classes := m.AddTerminals(gcost)
		// Classes ascend; walk them descending and skip the +∞ background
		// (read classes where cand has no member).
		for i := len(classes) - 1; i >= 0; i-- {
			v := classes[i]
			if v >= bdd.AddInf {
				continue
			}
			isc := m.Protect()
			classPred := isc.Keep(m.Diff(m.Threshold(gcost, v), m.Threshold(gcost, v+1)))
			removal := isc.Keep(m.AndN(p.GroupExpand(classPred), parts[j], m.Not(invariant), m.Not(orig)))
			if removal == bdd.False {
				isc.Release()
				continue
			}
			trial := isc.Slot(m.Diff(parts[j], removal))
			removed := isc.Slot(removal)
			committed := false
			for {
				if err := cancelled(ctx); err != nil {
					isc.Release()
					return bdd.False, err
				}
				if removed.Node() == bdd.False {
					// Everything re-added: the trial equals the converged
					// part, which is known good — nothing to commit.
					break
				}
				ps := append([]bdd.Node{}, parts...)
				ps[j] = trial.Node()
				span, err := reach(ps)
				if err != nil {
					isc.Release()
					return bdd.False, engineErr(ctx, err)
				}
				isc.Keep(span)
				back, err := eng.BackwardReachableParts(ctx, invariant, ps)
				if err != nil {
					isc.Release()
					return bdd.False, engineErr(ctx, err)
				}
				isc.Keep(back)
				broken := m.Diff(m.Diff(span, invariant), back)
				if broken == bdd.False {
					committed = true
					break
				}
				// Some broken state's recovery path lost its first removed
				// edge at a broken state, so this re-add set is non-empty
				// whenever broken is (see DESIGN.md §20); the guard below is
				// belt-and-braces against that argument being violated.
				readd := m.And(removed.Node(), p.Group(m.And(removed.Node(), broken)))
				if readd == bdd.False {
					break
				}
				trial.Set(m.Or(trial.Node(), readd))
				removed.Set(m.Diff(removed.Node(), readd))
			}
			if committed {
				parts[j] = partSlots[j].Set(trial.Node())
				opts.logf("lazy: cost thinning: process %s: dropped %g class-%d recovery transition(s)",
					p.Name, s.CountTransitions(removed.Node()), v)
			}
			isc.Release()
		}
		psc.Release()
	}
	span, err := reach(parts)
	if err != nil {
		return bdd.False, engineErr(ctx, err)
	}
	return span, nil
}
