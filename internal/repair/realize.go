package repair

import (
	"context"

	"repro/internal/bdd"
	"repro/internal/program"
)

// Realize implements Step 2 (Algorithm 2): it revises the intermediate
// program delta — the output of Add-Masking — into a realizable one by
// removing transitions only.
//
// Line 1 of Algorithm 2: every transition starting outside the fault-span T
// is added for free, because those states are never reached; their presence
// lets read-restriction groups that straddle the span boundary survive.
// Then, for each process, the algorithm keeps exactly the transitions whose
// entire group is present (the closed form of the Algorithm-2 loop; the
// explicit engine implements the literal loop with ExpandGroup and tests
// assert both agree — see DESIGN.md §4).
//
// The result is the union of the per-process realizable transition sets.
// It may still contain deadlocks within T; Algorithm 1's outer loop detects
// those and re-runs both steps with an augmented safety specification.
func Realize(c *program.Compiled, delta, span bdd.Node) bdd.Node {
	parts := RealizeParts(c, delta, span)
	m := c.Space.M
	sc := m.Protect()
	defer sc.Release()
	for _, p := range parts {
		sc.Keep(p)
	}
	out := sc.Slot(bdd.False)
	for _, p := range parts {
		out.Set(m.Or(out.Node(), p))
	}
	return out.Node()
}

// RealizeParts is Realize exposing the per-process transition sets δ_j. Each
// part is realizable by its process (a union of complete groups); the
// program's transitions are their union. The caller may remove further whole
// groups from a part (e.g. to break livelocks) without losing realizability.
func RealizeParts(c *program.Compiled, delta, span bdd.Node) []bdd.Node {
	m := c.Space.M
	sc := m.Protect()
	defer sc.Release()
	free := m.And(m.Not(span), c.Space.ValidTrans())
	d := sc.Keep(m.Or(m.And(delta, c.Space.ValidTrans()), free))
	parts := make([]bdd.Node, len(c.Procs))
	for j, p := range c.Procs {
		// Earlier parts must survive the later processes' group closures.
		parts[j] = sc.Keep(p.MaxRealizableSubset(d))
	}
	return parts
}

// RealizePartsEngine is RealizeParts with the per-process group-closure
// computations — the expensive part of Step 2 — fanned out across the
// engine's workers. Each process's maximal realizable subset depends only on
// the shared candidate relation, so the tasks are independent and the merged
// result is identical to the serial one.
func RealizePartsEngine(ctx context.Context, e *program.Engine, delta, span bdd.Node) ([]bdd.Node, error) {
	c := e.C
	if e.Workers() <= 1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return RealizeParts(c, delta, span), nil
	}
	m := c.Space.M
	free := m.And(m.Not(span), c.Space.ValidTrans())
	d := m.Or(m.And(delta, c.Space.ValidTrans()), free)
	return e.MapProcs(ctx, d, func(wc *program.Compiled, j int, shared bdd.Node) bdd.Node {
		return wc.Procs[j].MaxRealizableSubset(shared)
	})
}
