// Package repair implements the paper's synthesis algorithms for adding
// masking fault-tolerance to distributed programs:
//
//   - AddMasking: Step 1 — the Kulkarni–Arora Add-Masking algorithm, which
//     ignores realizability (read/write) constraints, optionally restricted
//     to the states reachable by the fault-intolerant program in the
//     presence of faults (the heuristic the paper credits for the speedup).
//   - Realize: Step 2 — Algorithm 2, which enforces realizability purely by
//     removing transitions (keeping, per process, only complete
//     read-restriction groups) after adding free transitions outside the
//     fault-span.
//   - Lazy: Algorithm 1 — the outer loop combining the two steps, feeding
//     deadlocks created by Step 2 back into the safety specification.
//   - Cautious: the baseline in the style of the prior tool, which keeps the
//     model realizable after every intermediate add/remove by paying for
//     group closure inside the main fixpoint.
package repair

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/bdd"
	"repro/internal/program"
	"repro/internal/witness"
)

// ErrNotRepairable is returned when the invariant collapses to the empty set,
// i.e. no masking fault-tolerant realizable program exists under the
// algorithm's heuristics (Algorithm 1 line 7: "declare failure").
var ErrNotRepairable = errors.New("repair: cannot add fault-tolerance (invariant became empty)")

// ErrNoConvergence is returned if the outer lazy loop exceeds its iteration
// bound without eliminating deadlocks.
var ErrNoConvergence = errors.New("repair: outer repair loop did not converge")

// DeadlockError wraps ErrNoConvergence with concrete evidence: a certified
// trace reaching one of the deadlock states the final iteration could not
// eliminate. errors.Is(err, ErrNoConvergence) still holds, and callers that
// want the trace use errors.As.
type DeadlockError struct {
	// Witness demonstrates one residual deadlock: a computation from the last
	// candidate invariant, under faults, to a state the realized program
	// cannot leave.
	Witness *witness.Trace
	err     error
}

// Error describes the failure and summarizes the witness.
func (e *DeadlockError) Error() string {
	return fmt.Sprintf("%v (%s)", e.err, e.Witness.Detail)
}

// Unwrap exposes ErrNoConvergence to errors.Is.
func (e *DeadlockError) Unwrap() error { return e.err }

// cancelled returns a non-nil error wrapping ctx.Err() once the context is
// done. The repair algorithms call it at fixpoint-iteration boundaries, so a
// deadline or cancellation interrupts synthesis between symbolic steps (a
// hung instance is abandoned at the next boundary rather than running to
// completion). errors.Is(err, context.Canceled/DeadlineExceeded) works on
// the result.
func cancelled(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("repair: interrupted: %w", err)
	}
	return nil
}

// engineErr classifies an error returned by a parallel-engine call: a
// context cancellation is wrapped like cancelled(ctx); anything else (e.g. a
// *bdd.BudgetError converted by the worker pool) propagates unchanged.
func engineErr(ctx context.Context, err error) error {
	if cerr := cancelled(ctx); cerr != nil {
		return cerr
	}
	return err
}

// Options tune the repair algorithms.
type Options struct {
	// ReachabilityHeuristic restricts Step 1 to the states reachable by the
	// fault-intolerant program in the presence of faults (Section V-A). The
	// paper's headline speedup depends on it; disabling it gives the "pure
	// lazy" variant the paper reports as not competitive.
	ReachabilityHeuristic bool
	// DeferCycleBreaking moves Add-Masking's cycle-breaking from Step 1 to
	// a group-aware pass after Step 2 (whole read-restriction groups are
	// removed at once). The default (false) matches the paper: cycles are
	// broken in Step 1 — but maximally, keeping every transition of the
	// acyclic part of the recovery relation, so that read-restriction
	// groups survive into Step 2; only the cyclic core is filtered to
	// rank-decreasing transitions. An ablation benchmark compares the two.
	DeferCycleBreaking bool
	// MaxOuterIterations bounds Algorithm 1's repeat loop.
	MaxOuterIterations int
	// Mode selects the parallel engine: "partitioned" (or empty, the
	// default) fans work out across private worker managers with canonical
	// DAG transfer; "shared" runs all workers against one shared node table
	// with per-worker caches (program.ModeShared). Both modes synthesize
	// the same program for any worker count.
	Mode string
	// Workers is the number of BDD workers used to fan out the per-process
	// symbolic work inside one synthesis (image unions, group closures) —
	// private worker managers in partitioned mode, views of the shared
	// table in shared mode. Values below 1 select GOMAXPROCS; 1 runs
	// everything on the owning manager with no parallel machinery. Any
	// value yields the same synthesized program: intermediate sets are
	// canonical BDDs and worker results are merged in deterministic task
	// order.
	Workers int
	// GCThreshold overrides the managers' automatic-collection cadence for
	// this run: a positive value collects after that many node allocations, a
	// negative value disables automatic collection entirely (benchmarking the
	// GC-off baseline), and 0 keeps the manager default (or the
	// REPRO_GC_STRESS override).
	GCThreshold int64
	// NodeBudget, when positive, bounds the live BDD node count of the run's
	// managers: if the synthesis pushes the live count past the budget and a
	// collection cannot bring it back under, the run fails with a
	// *bdd.BudgetError instead of exhausting memory. Zero means unbounded.
	NodeBudget int64
	// Costs, when non-nil, prices every transition of the synthesis through
	// the ADD weight layer (see cost.go): the result gains AchievedCost and
	// CostRemoved, measured under this model. Pricing alone never changes
	// the synthesized program — set MinimizeCost to let the weights steer
	// the synthesis.
	Costs *CostModel
	// MinimizeCost enables the cost-aware refinements of lazy repair: the
	// weighted cycle-elimination order (with DeferCycleBreaking) and the
	// convergence-time thinning pass that removes expensive redundant
	// recovery groups. Requires Costs; the repair verdict is identical with
	// it on or off — only the cost of the synthesized recovery drops.
	MinimizeCost bool
	// Reorder arms dynamic variable reordering on the run's managers: a
	// positive value runs a sifting pass after that many node allocations, a
	// negative value disables reordering entirely (overriding the
	// REPRO_REORDER_STRESS environment default), and 0 keeps the manager
	// default (reordering off unless the stress variable is set). Reordering
	// never changes any synthesized program or witness — only the shape and
	// size of the BDDs along the way.
	Reorder int64
	// Logf, when non-nil, receives progress lines.
	//
	// Concurrency contract: a single repair call invokes Logf sequentially
	// (never from more than one goroutine at a time), so a Logf that only
	// writes to its own destination needs no locking for one call. But the
	// repair algorithms themselves are safe to run concurrently — one
	// compiled program per goroutine — and a Logf value SHARED between
	// concurrent calls (a common logger, a shared buffer) must synchronize
	// its own state; see internal/service's per-job logger for the pattern
	// used by the daemon's worker pool.
	Logf func(format string, args ...any)
	// Phasef, when non-nil, is called at the start of each synthesis step
	// ("step1" when Add-Masking begins, "step2" when realization begins —
	// once per outer iteration). The daemon uses it to feed streaming job
	// progress; the synthesized result never depends on it. Same
	// concurrency contract as Logf.
	Phasef func(phase string)
}

// DefaultOptions returns the configuration used in the paper's headline
// experiments: heuristic on, cycle-breaking in Step 1.
func DefaultOptions() Options {
	return Options{ReachabilityHeuristic: true, MaxOuterIterations: 64}
}

func (o *Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

func (o *Options) phase(name string) {
	if o.Phasef != nil {
		o.Phasef(name)
	}
}

// ApplyEngine pushes the manager-tuning options — node budget, collection
// cadence, reordering cadence — onto an engine's owner and worker managers.
// Every run boundary that builds an engine (the repair algorithms, the
// standalone verifier) funnels through it so the knobs mean the same thing
// everywhere.
func (o *Options) ApplyEngine(eng *program.Engine) {
	if o.NodeBudget > 0 {
		eng.SetNodeBudget(o.NodeBudget)
	}
	if o.GCThreshold != 0 {
		n := o.GCThreshold
		if n < 0 {
			n = 0 // manager semantics: <= 0 disables automatic GC
		}
		eng.SetGCThreshold(n)
	}
	if o.Reorder != 0 {
		n := o.Reorder
		if n < 0 {
			n = 0 // manager semantics: <= 0 disables automatic reordering
		}
		eng.SetReorderThreshold(n)
	}
}

// Stats records where the time went, matching the columns of the paper's
// tables.
type Stats struct {
	Step1 time.Duration // Add-Masking time (Table column "Time for Step 1")
	Step2 time.Duration // Algorithm 2 time (Table column "Time for Step 2")
	Total time.Duration

	OuterIterations int     // Algorithm 1 repeat-loop iterations
	ReachableStates float64 // |reachable(S, δ∪f)| (Table column "Reachable States")
	BDDNodes        int     // manager size after synthesis
}

// Result is a synthesized masking fault-tolerant program.
type Result struct {
	// Trans is δ_P': the repaired program's transitions (no stutter; the
	// Definition-18 stutter at deadlock states is implicit).
	Trans bdd.Node
	// Invariant is S': the repaired invariant.
	Invariant bdd.Node
	// FaultSpan is T': the fault-span certified by the synthesis.
	FaultSpan bdd.Node
	Stats     Stats
	// Witnesses holds recovery demonstrations when the caller asked for them
	// (repro.WithWitnesses, the daemon's "witnesses" spec field): certified
	// traces that leave the invariant via faults and converge back. The
	// repair algorithms themselves leave it nil.
	Witnesses []*witness.Trace

	// Costed marks a run priced by a cost model (Options.Costs); the two
	// sums below are zero otherwise. AchievedCost is the weighted count of
	// the kept transitions leaving the repaired invariant — the recovery
	// behavior the repair pays to retain. CostRemoved is the weighted count
	// of original program transitions the repair deleted. Both are exact
	// (each valid transition contributes its integer weight once), and both
	// are functions of the synthesized program and the weights alone, so
	// they are identical across worker counts and engine modes.
	Costed       bool
	AchievedCost float64
	CostRemoved  float64
}

// src returns the states with at least one outgoing transition in delta.
func src(c *program.Compiled, delta bdd.Node) bdd.Node {
	m := c.Space.M
	return m.AndExists(delta, c.Space.ValidTrans(), c.Space.NextCube())
}

// srcInto returns the states of from with an edge into to, computed per
// partition to keep intermediate products small. The relational product is
// taken against the raw partition (∃next. p ∧ to′ is conjoined with from
// afterwards — from constrains current-state bits only, so the two forms are
// equivalent): keeping the static partition as the cached operand lets the
// AndExists cache carry across fixpoint iterations where only to changes.
func srcInto(c *program.Compiled, parts []bdd.Node, from, to bdd.Node) bdd.Node {
	m := c.Space.M
	s := c.Space
	sc := m.Protect()
	defer sc.Release()
	sc.Keep(from)
	for _, p := range parts {
		sc.Keep(p)
	}
	primed := sc.Keep(s.Prime(to))
	out := sc.Slot(bdd.False)
	for _, p := range parts {
		out.Set(m.Or(out.Node(), m.AndExists(p, primed, s.NextCube())))
	}
	return m.And(from, out.Node())
}

// ComputeMsMt computes the set ms of states from which fault transitions
// alone can violate safety, and the set mt of transitions the fault-tolerant
// program must never execute (Section V-A). It is exported for the
// synchronous-semantics extension, which reuses the Add-Masking skeleton.
func ComputeMsMt(c *program.Compiled, badTrans bdd.Node) (ms, mt bdd.Node) {
	ms, mt, _ = ComputeMsMtEngine(context.Background(), program.SerialEngine(c), badTrans)
	return ms, mt
}

// ComputeMsMtEngine is ComputeMsMt running its fault-closure fixpoint on the
// engine's unified scheduler. The closure is an ordinary backward
// reachability under the fault partitions: every compiled action — faults
// included — is conjoined with ValidTrans, so fault preimages of invalid
// states are empty and restricting the seed to ValidCur (which
// BackwardReachableParts does) loses nothing.
func ComputeMsMtEngine(ctx context.Context, e *program.Engine, badTrans bdd.Node) (ms, mt bdd.Node, err error) {
	c := e.C
	m := c.Space.M
	s := c.Space
	sc := m.Protect()
	defer sc.Release()
	sc.Keep(badTrans)
	// Sources of fault transitions that themselves violate safety.
	ms0 := sc.Keep(m.Or(c.BadStates, src(c, m.And(c.Fault, badTrans))))
	back, err := e.BackwardReachableParts(ctx, ms0, c.FaultParts)
	if err != nil {
		return bdd.False, bdd.False, err
	}
	ms = sc.Keep(m.Or(ms0, back))
	mt = m.Or(badTrans, m.And(s.Prime(ms), s.ValidTrans()))
	return ms, mt, nil
}

// Invariant states that lose all their transitions during repair are NOT
// pruned: Definition 5 permits finite maximal computations, the invariant
// stays closed, and safety is refined trivially by a computation that rests
// inside the invariant. (The paper's instances carry no explicit liveness
// specification; the liveness half of masking — recovery — applies to
// fault-span states outside the invariant, which the algorithms do keep
// deadlock- and livelock-free.) The verifier still reports new invariant
// deadlocks as a warning so model authors can see lost progress.

// LayeredRecovery builds the recovery transition set, realizing Add-Masking's
// "break cycles by removing transitions" step in polynomial time while
// keeping the behavior maximal (Section V: transitions removed in Step 1
// should be ones that must, or are very likely to, be removed):
//
//   - First the cyclic core Z of T−S under avail is computed (the greatest
//     fixpoint of states with a successor inside the set). Every cycle of
//     avail within T−S lies entirely inside Z, so *all* avail transitions
//     from acyclic states are kept — removing any of them would be
//     unnecessary and would needlessly break read-restriction groups in
//     Step 2.
//   - Inside Z, transitions are kept only if they strictly decrease a
//     breadth-first rank toward the already-safe states, which breaks every
//     cycle.
//
// It returns the transitions and the set of states with guaranteed recovery;
// the caller prunes unranked states from the fault-span and re-runs its
// fixpoint.
func LayeredRecovery(c *program.Compiled, invariant, span bdd.Node, availParts []bdd.Node) (rec, ranked bdd.Node) {
	m := c.Space.M
	s := c.Space
	sc := m.Protect()
	defer sc.Release()
	sc.Keep(invariant)
	for _, p := range availParts {
		sc.Keep(p)
	}
	outside := sc.Keep(m.Diff(span, invariant))

	// Cyclic core: states of T−S with an infinite avail-path inside T−S.
	z := sc.Keep(program.CyclicCore(c, availParts, outside))

	acyclic := sc.Keep(m.Diff(outside, z))
	recS := sc.Slot(bdd.False)
	for _, part := range availParts {
		recS.Set(m.Or(recS.Node(), m.And(part, acyclic))) // keep everything from acyclic states
	}
	rankedS := sc.Slot(m.Or(invariant, acyclic))
	remaining := sc.Slot(z)
	stepS := sc.Slot(bdd.False)
	for remaining.Node() != bdd.False {
		primed := sc.Keep(s.Prime(rankedS.Node()))
		stepS.Set(bdd.False)
		for _, part := range availParts {
			stepS.Set(m.Or(stepS.Node(), m.AndN(part, remaining.Node(), primed)))
		}
		newly := src(c, stepS.Node())
		if newly == bdd.False {
			break // leftover states cannot recover; caller prunes them
		}
		recS.Set(m.Or(recS.Node(), stepS.Node()))
		rankedS.Set(m.Or(rankedS.Node(), newly))
		remaining.Set(m.Diff(remaining.Node(), newly))
	}
	return recS.Node(), rankedS.Node()
}
