package repair_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/program"
	"repro/internal/repair"
	"repro/internal/symbolic"
	"repro/internal/verify"
)

// This file property-tests the whole repair pipeline on randomly generated
// repair problems: for every generated model, each algorithm must either
// refuse cleanly (ErrNotRepairable / ErrNoConvergence) or produce a program
// that passes the independent verifier. This is the central soundness
// property of the toolkit.

// randomModel builds a random but well-formed repair problem:
//   - 2–4 variables with domains 2–3,
//   - 1–3 processes with random read sets (W ⊆ R enforced),
//   - random guarded-command actions over readable variables,
//   - 1–2 fault actions,
//   - an invariant derived from the program's actual closure so the premise
//     "P refines SPEC from S" is plausible,
//   - optional random bad states / bad transitions.
func randomModel(rng *rand.Rand) *program.Def {
	nVars := 2 + rng.Intn(3)
	d := &program.Def{Name: "fuzz"}
	varNames := make([]string, nVars)
	domains := make([]int, nVars)
	for i := range varNames {
		varNames[i] = fmt.Sprintf("v%d", i)
		domains[i] = 2 + rng.Intn(2)
		d.Vars = append(d.Vars, symbolic.VarSpec{Name: varNames[i], Domain: domains[i]})
	}

	randomGuard := func(readable []int) expr.Expr {
		var conj []expr.Expr
		for _, vi := range readable {
			if rng.Intn(2) == 0 {
				conj = append(conj, expr.Eq(varNames[vi], rng.Intn(domains[vi])))
			}
		}
		if len(conj) == 0 {
			return expr.True
		}
		return expr.And(conj...)
	}

	nProcs := 1 + rng.Intn(3)
	writable := rng.Perm(nVars) // writer per variable, at most one
	for p := 0; p < nProcs; p++ {
		var read, write []string
		var readIdx []int
		for vi := range varNames {
			if rng.Intn(3) > 0 { // ~2/3 readable
				read = append(read, varNames[vi])
				readIdx = append(readIdx, vi)
			}
		}
		// Choose writes among readable vars owned by this process index.
		for k, vi := range writable {
			if k%nProcs != p {
				continue
			}
			owned := false
			for _, ri := range readIdx {
				if ri == vi {
					owned = true
				}
			}
			if !owned {
				read = append(read, varNames[vi])
				readIdx = append(readIdx, vi)
			}
			write = append(write, varNames[vi])
		}
		proc := &program.Process{Name: fmt.Sprintf("p%d", p), Read: read, Write: write}
		nActs := rng.Intn(3)
		for a := 0; a < nActs && len(write) > 0; a++ {
			target := write[rng.Intn(len(write))]
			ti := indexOf(varNames, target)
			proc.Actions = append(proc.Actions, program.Action{
				Name:    fmt.Sprintf("a%d", a),
				Guard:   randomGuard(readIdx),
				Updates: []program.Update{program.Set(target, rng.Intn(domains[ti]))},
			})
		}
		d.Processes = append(d.Processes, proc)
	}

	// Faults: unrestricted random sets.
	nFaults := 1 + rng.Intn(2)
	for f := 0; f < nFaults; f++ {
		vi := rng.Intn(nVars)
		d.Faults = append(d.Faults, program.Action{
			Name:    fmt.Sprintf("f%d", f),
			Guard:   randomGuard([]int{rng.Intn(nVars)}),
			Updates: []program.Update{program.Set(varNames[vi], rng.Intn(domains[vi]))},
		})
	}

	// Invariant: a random conjunction (possibly loose).
	var inv []expr.Expr
	for vi := range varNames {
		if rng.Intn(2) == 0 {
			inv = append(inv, expr.Lt(varNames[vi], 1+rng.Intn(domains[vi])))
		}
	}
	if len(inv) == 0 {
		d.Invariant = expr.True
	} else {
		d.Invariant = expr.And(inv...)
	}

	// Safety: random bad states / bad transitions, sometimes absent.
	if rng.Intn(2) == 0 {
		vi := rng.Intn(nVars)
		d.BadStates = expr.Eq(varNames[vi], domains[vi]-1)
	}
	if rng.Intn(2) == 0 {
		vi := rng.Intn(nVars)
		d.BadTrans = expr.And(expr.Changed(varNames[vi]), expr.NextEq(varNames[vi], 0))
	}
	return d
}

func indexOf(names []string, want string) int {
	for i, n := range names {
		if n == want {
			return i
		}
	}
	panic("not found")
}

// TestFuzzLazySoundness: lazy repair on random models either refuses or
// verifies.
func TestFuzzLazySoundness(t *testing.T) {
	iterations := 150
	if testing.Short() {
		iterations = 30
	}
	rng := rand.New(rand.NewSource(20260704))
	repaired, refused := 0, 0
	for i := 0; i < iterations; i++ {
		d := randomModel(rng)
		c, err := d.Compile()
		if err != nil {
			t.Fatalf("iter %d: generator produced invalid model: %v", i, err)
		}
		res, err := repair.Lazy(context.Background(), c, repair.DefaultOptions())
		if err != nil {
			refused++
			continue
		}
		repaired++
		if rep := verify.Result(c, res); !rep.OK() {
			t.Fatalf("iter %d: lazy repair verified false on model %+v:\n%s", i, d, rep)
		}
	}
	t.Logf("lazy: %d repaired, %d refused", repaired, refused)
	if repaired == 0 {
		t.Fatal("generator produced no repairable models — property vacuous")
	}
}

// TestFuzzCautiousSoundness: the cautious baseline obeys the same contract.
func TestFuzzCautiousSoundness(t *testing.T) {
	iterations := 100
	if testing.Short() {
		iterations = 20
	}
	rng := rand.New(rand.NewSource(42424242))
	repaired, refused := 0, 0
	for i := 0; i < iterations; i++ {
		d := randomModel(rng)
		c, err := d.Compile()
		if err != nil {
			t.Fatalf("iter %d: generator produced invalid model: %v", i, err)
		}
		res, err := repair.Cautious(context.Background(), c, repair.DefaultOptions())
		if err != nil {
			refused++
			continue
		}
		repaired++
		if rep := verify.Result(c, res); !rep.OK() {
			t.Fatalf("iter %d: cautious repair verified false:\n%s", i, rep)
		}
	}
	t.Logf("cautious: %d repaired, %d refused", repaired, refused)
	if repaired == 0 {
		t.Fatal("generator produced no repairable models — property vacuous")
	}
}

// TestFuzzLazyVariantsSoundness: the pure-lazy and deferred-cycle variants
// obey the same contract.
func TestFuzzLazyVariantsSoundness(t *testing.T) {
	iterations := 80
	if testing.Short() {
		iterations = 15
	}
	variants := []repair.Options{
		{ReachabilityHeuristic: false, MaxOuterIterations: 64},
		{ReachabilityHeuristic: true, DeferCycleBreaking: true, MaxOuterIterations: 64},
		{ReachabilityHeuristic: false, DeferCycleBreaking: true, MaxOuterIterations: 64},
	}
	rng := rand.New(rand.NewSource(777))
	for i := 0; i < iterations; i++ {
		d := randomModel(rng)
		for vi, opts := range variants {
			c, err := d.Compile()
			if err != nil {
				t.Fatal(err)
			}
			res, err := repair.Lazy(context.Background(), c, opts)
			if err != nil {
				continue
			}
			if rep := verify.Result(c, res); !rep.OK() {
				t.Fatalf("iter %d variant %d: verified false:\n%s", i, vi, rep)
			}
		}
	}
}

// TestFuzzProblemStatementContainment: on repairable models, the output's
// invariant and in-invariant behavior are contained in the original's
// (Section II problem statement), checked directly in addition to the
// verifier.
func TestFuzzProblemStatementContainment(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	m := 0
	for i := 0; i < 60; i++ {
		d := randomModel(rng)
		c, err := d.Compile()
		if err != nil {
			t.Fatal(err)
		}
		res, err := repair.Lazy(context.Background(), c, repair.DefaultOptions())
		if err != nil {
			continue
		}
		m++
		if !c.Space.M.Implies(res.Invariant, c.Invariant) {
			t.Fatalf("iter %d: S' ⊄ S", i)
		}
		inside := c.Space.M.AndN(res.Trans, res.Invariant, c.Space.Prime(res.Invariant))
		if !c.Space.M.Implies(inside, c.Trans) {
			t.Fatalf("iter %d: δ'|S' ⊄ δ|S'", i)
		}
	}
	if m == 0 {
		t.Fatal("no repairable models generated")
	}
}
