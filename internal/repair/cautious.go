package repair

import (
	"context"
	"time"

	"repro/internal/bdd"
	"repro/internal/program"
)

// Cautious implements the baseline repair approach of the prior tool
// (Section IV): at every intermediate step the model is kept realizable, so
// every transition removal removes the transition's whole read-restriction
// group, and every recovery addition adds a whole group — after checking
// that no member of the group is harmful. The per-step group computations
// inside the main fixpoint are what make this approach expensive; lazy
// repair defers them to a single pass at the end.
//
// Two of the prior tool's heuristics are reproduced:
//
//   - A group containing a safety-violating member is still acceptable if
//     that member's source state is unreachable in the fault-intolerant
//     program in the presence of faults (the Section-IV heuristic). A final
//     soundness pass re-checks the bet against the repaired program's true
//     reachable set and revokes it where it failed.
//   - Recovery groups are added layer by layer, and a group is accepted only
//     if every member strictly decreases the distance to the invariant —
//     keeping the span cycle-free without a separate cycle-resolution phase.
func Cautious(ctx context.Context, c *program.Compiled, opts Options) (*Result, error) {
	eng, err := program.NewEngine(c, opts.Workers)
	if err != nil {
		return nil, err
	}
	return CautiousEngine(ctx, eng, opts)
}

// CautiousEngine is Cautious running on a caller-supplied engine: the
// reachability fixpoints and the per-process group removals of Phase 1 fan
// out across the engine's workers.
func CautiousEngine(ctx context.Context, eng *program.Engine, opts Options) (*Result, error) {
	opts.ApplyEngine(eng)
	c := eng.C
	m := c.Space.M
	s := c.Space
	start := time.Now()
	var stats Stats

	// Cautious repair is one monolithic fixpoint (group closure runs inside
	// the main loop), so the whole synthesis reports as step 1.
	opts.phase("step1")

	sc := m.Protect()
	defer sc.Release()
	ms, mt, err := ComputeMsMtEngine(ctx, eng, c.BadTrans)
	if err != nil {
		return nil, engineErr(ctx, err)
	}
	sc.Keep(ms)
	sc.Keep(mt)

	reach, err := eng.ReachableParts(ctx, c.Invariant, c.PartsWithFaults(bdd.True))
	if err != nil {
		return nil, engineErr(ctx, err)
	}
	stats.ReachableStates = s.CountStates(reach)
	// The Section-IV heuristic: prohibited transitions whose source the
	// fault-intolerant program cannot reach are tolerated (for now).
	mtHard := sc.Keep(m.And(mt, reach))

	// Cautious repair works over the full state space.
	span := sc.Slot(m.Diff(s.ValidCur(), ms))
	invariant := sc.Slot(m.Diff(c.Invariant, ms))
	banned := sc.Slot(bdd.False)

	deltas := make([]bdd.Node, len(c.Procs))
	deltaSlots := make([]*bdd.Rooted, len(c.Procs))
	for i := range deltaSlots {
		deltaSlots[i] = sc.Slot(bdd.False)
	}
	unionS := sc.Slot(bdd.False)

	maxOuter := opts.MaxOuterIterations * 16
	if maxOuter <= 0 {
		maxOuter = 1024
	}
	for outer := 1; outer <= maxOuter; outer++ {
		stats.OuterIterations = outer
		if err := cancelled(ctx); err != nil {
			return nil, err
		}

		// Phase 1: start from the original per-process transitions and
		// remove harmful groups until stable, re-establishing invariant
		// closure and deadlock-freedom after each removal round.
		for j, p := range c.Procs {
			deltas[j] = deltaSlots[j].Set(p.Trans)
		}
		for {
			// The harmful set is invariant across one removal round, and
			// each process's removal touches only its own delta, so the
			// per-process group closures fan out across the engine.
			harmful := m.OrN(
				mtHard,
				banned.Node(),
				m.AndN(span.Node(), m.Not(s.Prime(span.Node()))),           // escapes the span
				m.AndN(invariant.Node(), m.Not(s.Prime(invariant.Node()))), // breaks invariant closure
			)
			next, err := eng.MapNodes(ctx, harmful, deltas,
				func(wc *program.Compiled, harm, dj bdd.Node, j int) bdd.Node {
					wm := wc.Space.M
					bad := wm.And(dj, harm)
					if bad == bdd.False {
						return dj
					}
					return wm.Diff(dj, wc.Procs[j].Group(bad))
				})
			if err != nil {
				return nil, engineErr(ctx, err)
			}
			changed := false
			for j := range deltas {
				if next[j] != deltas[j] {
					deltas[j] = deltaSlots[j].Set(next[j])
					changed = true
				}
			}
			if !changed {
				break
			}
		}

		// Phase 2: add recovery groups layer by layer. The first, strict
		// pass accepts a group only if every member either starts outside
		// the span (harmless), starts in the invariant and is original
		// closed behavior, or strictly decreases the rank — which keeps the
		// span cycle-free by construction. States the strict pass cannot
		// serve (typically because their groups' members span several
		// layers, as in the chain protocols) get a second, lenient pass
		// whose members may land anywhere inside the span; Phase 3's cycle
		// and reachability analyses then police what the lenient pass let
		// through.
		isc := m.Protect()
		okInsideOf := func(p *program.CompiledProc) bdd.Node {
			return m.And(p.Trans, s.Prime(invariant.Node()))
		}
		ranks := []bdd.Node{invariant.Node()}
		ranked := isc.Slot(invariant.Node())
		remaining := isc.Slot(m.Diff(span.Node(), invariant.Node()))
		newlyS := isc.Slot(bdd.False)
		for pass := 0; pass < 2 && remaining.Node() != bdd.False; pass++ {
			strict := pass == 0
			for remaining.Node() != bdd.False {
				newlyS.Set(bdd.False)
				for j, p := range c.Procs {
					cand := m.AndN(p.WriteOK, remaining.Node(), s.Prime(ranked.Node()),
						m.Not(mtHard), m.Not(banned.Node()), s.ValidTrans())
					if cand == bdd.False {
						continue
					}
					csc := m.Protect()
					group := csc.Keep(p.Group(cand))
					bm := csc.Slot(m.And(group, m.Or(mtHard, banned.Node())))
					// Members inside the invariant must already be original
					// behavior that stays inside.
					bm.Set(m.Or(bm.Node(), m.AndN(group, invariant.Node(), m.Not(okInsideOf(p)))))
					if strict {
						// Members from unranked states must land in the
						// ranked set; members from rank r strictly below r.
						bm.Set(m.Or(bm.Node(), m.AndN(group, remaining.Node(), m.Not(s.Prime(ranked.Node())))))
						below := csc.Slot(bdd.False)
						for r, rankSet := range ranks {
							if r > 0 {
								bm.Set(m.Or(bm.Node(),
									m.AndN(group, rankSet, m.Not(s.Prime(below.Node())))))
							}
							below.Set(m.Or(below.Node(), rankSet))
						}
					} else {
						// Lenient: members from span states must stay inside
						// the span.
						bm.Set(m.Or(bm.Node(), m.AndN(group, span.Node(), m.Not(s.Prime(span.Node())))))
					}
					accepted := m.Diff(group, p.Group(bm.Node()))
					if accepted == bdd.False {
						csc.Release()
						continue
					}
					csc.Keep(accepted)
					deltas[j] = deltaSlots[j].Set(m.Or(deltas[j], accepted))
					newlyS.Set(m.Or(newlyS.Node(), m.And(src(c, m.AndN(accepted, remaining.Node(), s.Prime(ranked.Node()))), remaining.Node())))
					csc.Release()
				}
				if newlyS.Node() == bdd.False {
					break
				}
				ranks = append(ranks, isc.Keep(newlyS.Node()))
				ranked.Set(m.Or(ranked.Node(), newlyS.Node()))
				remaining.Set(m.Diff(remaining.Node(), newlyS.Node()))
			}
		}

		// Phase 3: prune states that could not be given recovery or whose
		// lenient recovery has no actual path back to the invariant, restore
		// fault closure of the span, and re-check for cycles outside the
		// invariant (original and lenient transitions in T−S are not
		// rank-constrained).
		spanParts := make([]bdd.Node, len(deltas))
		for i, dl := range deltas {
			spanParts[i] = isc.Keep(m.AndN(dl, span.Node(), s.Prime(span.Node())))
		}
		recoverable, err := eng.BackwardReachableParts(ctx, invariant.Node(), spanParts)
		if err != nil {
			isc.Release()
			return nil, engineErr(ctx, err)
		}
		unreach := m.Diff(m.Diff(span.Node(), invariant.Node()), recoverable)
		shrunk := false
		if remaining.Node() != bdd.False || unreach != bdd.False {
			span.Set(m.Diff(span.Node(), m.Or(remaining.Node(), unreach)))
			shrunk = true
		}
		// Restore fault closure: states with a fault chain out of the span
		// (one backward reachability under the fault partitions) drop out.
		esc, err := eng.BackwardReachableParts(ctx, m.Diff(s.ValidCur(), span.Node()), c.FaultParts)
		if err != nil {
			isc.Release()
			return nil, engineErr(ctx, err)
		}
		if cut := m.And(span.Node(), esc); cut != bdd.False {
			span.Set(m.Diff(span.Node(), cut))
			shrunk = true
		}
		if nextInv := m.And(invariant.Node(), span.Node()); nextInv != invariant.Node() {
			invariant.Set(nextInv)
			shrunk = true
		}
		isc.Release()
		if invariant.Node() == bdd.False {
			return nil, ErrNotRepairable
		}

		union := unionS.Set(m.OrN(deltas...))
		// States in T−S from which an infinite program-only path avoids the
		// invariant forever (greatest fixpoint).
		cyclic := program.CyclicCore(c, deltas, m.Diff(span.Node(), invariant.Node()))
		if cyclic != bdd.False {
			banned.Set(m.Or(banned.Node(), m.AndN(union, cyclic, s.Prime(cyclic))))
			continue
		}
		if shrunk {
			continue
		}

		// Structural convergence: audit the Section-IV heuristic's bets
		// against the repaired program's actual reachable set.
		trueReach, err := eng.ReachableParts(ctx, invariant.Node(), append(append([]bdd.Node{}, deltas...), c.FaultParts...))
		if err != nil {
			return nil, engineErr(ctx, err)
		}
		violation := m.AndN(union, mt, trueReach)
		if violation != bdd.False {
			banned.Set(m.Or(banned.Node(), violation))
			continue
		}

		stats.Total = time.Since(start)
		stats.BDDNodes = m.Size()
		opts.logf("cautious: converged after %d outer iteration(s)", outer)
		// The result's relations outlive this call's scope; root them for
		// the life of the manager.
		res := &Result{
			Trans:     m.Ref(union),
			Invariant: m.Ref(invariant.Node()),
			FaultSpan: m.Ref(span.Node()),
			Stats:     stats,
		}
		// Cautious repair prices its result but never minimizes: the
		// algorithm's removals are forced by safety, not chosen by weight.
		if opts.Costs != nil {
			wsc := m.Protect()
			measureCosts(c, res, wsc.Keep(buildWeight(c, opts.Costs)))
			wsc.Release()
		}
		return res, nil
	}
	return nil, ErrNoConvergence
}
