package repair

import (
	"context"
	"time"

	"repro/internal/bdd"
	"repro/internal/program"
)

// Cautious implements the baseline repair approach of the prior tool
// (Section IV): at every intermediate step the model is kept realizable, so
// every transition removal removes the transition's whole read-restriction
// group, and every recovery addition adds a whole group — after checking
// that no member of the group is harmful. The per-step group computations
// inside the main fixpoint are what make this approach expensive; lazy
// repair defers them to a single pass at the end.
//
// Two of the prior tool's heuristics are reproduced:
//
//   - A group containing a safety-violating member is still acceptable if
//     that member's source state is unreachable in the fault-intolerant
//     program in the presence of faults (the Section-IV heuristic). A final
//     soundness pass re-checks the bet against the repaired program's true
//     reachable set and revokes it where it failed.
//   - Recovery groups are added layer by layer, and a group is accepted only
//     if every member strictly decreases the distance to the invariant —
//     keeping the span cycle-free without a separate cycle-resolution phase.
func Cautious(ctx context.Context, c *program.Compiled, opts Options) (*Result, error) {
	eng, err := program.NewEngine(c, opts.Workers)
	if err != nil {
		return nil, err
	}
	return CautiousEngine(ctx, eng, opts)
}

// CautiousEngine is Cautious running on a caller-supplied engine: the
// reachability fixpoints and the per-process group removals of Phase 1 fan
// out across the engine's workers.
func CautiousEngine(ctx context.Context, eng *program.Engine, opts Options) (*Result, error) {
	c := eng.C
	m := c.Space.M
	s := c.Space
	start := time.Now()
	var stats Stats

	ms, mt := ComputeMsMt(c, c.BadTrans)

	reach, err := eng.ReachableParts(ctx, c.Invariant, c.PartsWithFaults(bdd.True))
	if err != nil {
		return nil, cancelled(ctx)
	}
	stats.ReachableStates = s.CountStates(reach)
	// The Section-IV heuristic: prohibited transitions whose source the
	// fault-intolerant program cannot reach are tolerated (for now).
	mtHard := m.And(mt, reach)

	// Cautious repair works over the full state space.
	span := m.Diff(s.ValidCur(), ms)
	invariant := m.Diff(c.Invariant, ms)
	banned := bdd.False

	deltas := make([]bdd.Node, len(c.Procs))

	maxOuter := opts.MaxOuterIterations * 16
	if maxOuter <= 0 {
		maxOuter = 1024
	}
	for outer := 1; outer <= maxOuter; outer++ {
		stats.OuterIterations = outer
		if err := cancelled(ctx); err != nil {
			return nil, err
		}

		// Phase 1: start from the original per-process transitions and
		// remove harmful groups until stable, re-establishing invariant
		// closure and deadlock-freedom after each removal round.
		for j, p := range c.Procs {
			deltas[j] = p.Trans
		}
		for {
			// The harmful set is invariant across one removal round, and
			// each process's removal touches only its own delta, so the
			// per-process group closures fan out across the engine.
			harmful := m.OrN(
				mtHard,
				banned,
				m.AndN(span, m.Not(s.Prime(span))), // escapes the span
				m.AndN(invariant, m.Not(s.Prime(invariant))), // breaks invariant closure
			)
			next, err := eng.MapNodes(ctx, harmful, deltas,
				func(wc *program.Compiled, harm, dj bdd.Node, j int) bdd.Node {
					wm := wc.Space.M
					bad := wm.And(dj, harm)
					if bad == bdd.False {
						return dj
					}
					return wm.Diff(dj, wc.Procs[j].Group(bad))
				})
			if err != nil {
				return nil, cancelled(ctx)
			}
			changed := false
			for j := range deltas {
				if next[j] != deltas[j] {
					deltas[j] = next[j]
					changed = true
				}
			}
			if !changed {
				break
			}
		}

		// Phase 2: add recovery groups layer by layer. The first, strict
		// pass accepts a group only if every member either starts outside
		// the span (harmless), starts in the invariant and is original
		// closed behavior, or strictly decreases the rank — which keeps the
		// span cycle-free by construction. States the strict pass cannot
		// serve (typically because their groups' members span several
		// layers, as in the chain protocols) get a second, lenient pass
		// whose members may land anywhere inside the span; Phase 3's cycle
		// and reachability analyses then police what the lenient pass let
		// through.
		okInsideOf := func(p *program.CompiledProc) bdd.Node {
			return m.And(p.Trans, s.Prime(invariant))
		}
		ranks := []bdd.Node{invariant}
		ranked := invariant
		remaining := m.Diff(span, invariant)
		for pass := 0; pass < 2 && remaining != bdd.False; pass++ {
			strict := pass == 0
			for remaining != bdd.False {
				newly := bdd.False
				for j, p := range c.Procs {
					cand := m.AndN(p.WriteOK, remaining, s.Prime(ranked),
						m.Not(mtHard), m.Not(banned), s.ValidTrans())
					if cand == bdd.False {
						continue
					}
					group := p.Group(cand)
					badMembers := m.And(group, m.Or(mtHard, banned))
					// Members inside the invariant must already be original
					// behavior that stays inside.
					badMembers = m.Or(badMembers, m.AndN(group, invariant, m.Not(okInsideOf(p))))
					if strict {
						// Members from unranked states must land in the
						// ranked set; members from rank r strictly below r.
						badMembers = m.Or(badMembers, m.AndN(group, remaining, m.Not(s.Prime(ranked))))
						below := bdd.False
						for r, rankSet := range ranks {
							if r > 0 {
								badMembers = m.Or(badMembers,
									m.AndN(group, rankSet, m.Not(s.Prime(below))))
							}
							below = m.Or(below, rankSet)
						}
					} else {
						// Lenient: members from span states must stay inside
						// the span.
						badMembers = m.Or(badMembers, m.AndN(group, span, m.Not(s.Prime(span))))
					}
					accepted := m.Diff(group, p.Group(badMembers))
					if accepted == bdd.False {
						continue
					}
					deltas[j] = m.Or(deltas[j], accepted)
					newly = m.Or(newly, m.And(src(c, m.AndN(accepted, remaining, s.Prime(ranked))), remaining))
				}
				if newly == bdd.False {
					break
				}
				ranks = append(ranks, newly)
				ranked = m.Or(ranked, newly)
				remaining = m.Diff(remaining, newly)
			}
		}

		// Phase 3: prune states that could not be given recovery or whose
		// lenient recovery has no actual path back to the invariant, restore
		// fault closure of the span, and re-check for cycles outside the
		// invariant (original and lenient transitions in T−S are not
		// rank-constrained).
		spanParts := make([]bdd.Node, len(deltas))
		for i, dl := range deltas {
			spanParts[i] = m.AndN(dl, span, s.Prime(span))
		}
		recoverable, err := eng.BackwardReachableParts(ctx, invariant, spanParts)
		if err != nil {
			return nil, cancelled(ctx)
		}
		unreach := m.Diff(m.Diff(span, invariant), recoverable)
		shrunk := false
		if remaining != bdd.False || unreach != bdd.False {
			span = m.Diff(span, m.Or(remaining, unreach))
			shrunk = true
		}
		for {
			escape := preimageAny(c, m.Diff(s.ValidCur(), span), c.FaultParts)
			next := m.Diff(span, escape)
			if next == span {
				break
			}
			span = next
			shrunk = true
		}
		if nextInv := m.And(invariant, span); nextInv != invariant {
			invariant = nextInv
			shrunk = true
		}
		if invariant == bdd.False {
			return nil, ErrNotRepairable
		}

		union := m.OrN(deltas...)
		// States in T−S from which an infinite program-only path avoids the
		// invariant forever (greatest fixpoint).
		cyclic := cyclicCore(c, deltas, m.Diff(span, invariant))
		if cyclic != bdd.False {
			banned = m.Or(banned, m.AndN(union, cyclic, s.Prime(cyclic)))
			continue
		}
		if shrunk {
			continue
		}

		// Structural convergence: audit the Section-IV heuristic's bets
		// against the repaired program's actual reachable set.
		trueReach, err := eng.ReachableParts(ctx, invariant, append(append([]bdd.Node{}, deltas...), c.FaultParts...))
		if err != nil {
			return nil, cancelled(ctx)
		}
		violation := m.AndN(union, mt, trueReach)
		if violation != bdd.False {
			banned = m.Or(banned, violation)
			continue
		}

		stats.Total = time.Since(start)
		stats.BDDNodes = m.Size()
		opts.logf("cautious: converged after %d outer iteration(s)", outer)
		return &Result{
			Trans:     union,
			Invariant: invariant,
			FaultSpan: span,
			Stats:     stats,
		}, nil
	}
	return nil, ErrNoConvergence
}
