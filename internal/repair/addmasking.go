package repair

import (
	"context"

	"repro/internal/bdd"
	"repro/internal/program"
)

// Masking is the output of Step 1 (Add-Masking): a fault-tolerant but not
// necessarily realizable program.
type Masking struct {
	// Trans is the intermediate program's transitions (realizability
	// constraints ignored).
	Trans bdd.Node
	// Invariant is S1, the repaired invariant.
	Invariant bdd.Node
	// FaultSpan is T1, the certified fault-span.
	FaultSpan bdd.Node
	// Iterations counts the shrink-fixpoint iterations.
	Iterations int
}

// AddMasking implements Step 1 of the lazy-repair algorithm: the
// polynomial-time Add-Masking algorithm of Kulkarni–Arora, tailored (per
// Section V-A) to the subset of the state space reachable by the
// fault-intolerant program in the presence of faults when
// opts.ReachabilityHeuristic is set.
//
// invariant is the current set of legitimate states S (it shrinks across
// Algorithm 1's outer iterations), and badTrans is the current Sf_bt (it
// grows as Algorithm 1 feeds back deadlock information). Bad states Sf_bs
// and the fault actions come from the compiled program.
//
// The returned program ignores read/write restrictions; Realize (Step 2)
// turns it into a realizable one.
//
// The context is checked at each shrink-fixpoint iteration and inside the
// symbolic reachability fixpoints, so cancellation aborts the step between
// symbolic operations.
func AddMasking(ctx context.Context, c *program.Compiled, invariant, badTrans bdd.Node, opts Options) (*Masking, error) {
	return AddMaskingEngine(ctx, program.SerialEngine(c), invariant, badTrans, opts)
}

// AddMaskingEngine is AddMasking running its reachability fixpoints on the
// given engine, fanning the per-partition images across the engine's worker
// managers when it has more than one.
func AddMaskingEngine(ctx context.Context, e *program.Engine, invariant, badTrans bdd.Node, opts Options) (*Masking, error) {
	c := e.C
	m := c.Space.M
	s := c.Space
	sc := m.Protect()
	defer sc.Release()
	sc.Keep(invariant)
	sc.Keep(badTrans)

	ms, mt, err := ComputeMsMtEngine(ctx, e, badTrans)
	if err != nil {
		return nil, engineErr(ctx, err)
	}
	sc.Keep(ms)
	notMT := sc.Keep(m.Not(mt))

	// First guesses for invariant and fault-span.
	s1 := sc.Slot(m.Diff(invariant, ms))
	if s1.Node() == bdd.False {
		return nil, ErrNotRepairable
	}
	universe := s.ValidCur()
	if opts.ReachabilityHeuristic {
		// States reached by the fault-intolerant program in the presence of
		// faults. Transitions the current specification already prohibits
		// (mt) are excluded: across Algorithm 1's outer iterations the
		// specification grows, and states only reachable through banned
		// behavior must drop out of the universe for the loop to converge.
		var err error
		universe, err = e.ReachableParts(ctx, invariant, c.PartsWithFaults(notMT))
		if err != nil {
			return nil, engineErr(ctx, err)
		}
	}
	t1 := sc.Slot(m.Diff(universe, ms))

	iterations := 0
	// Loop-carried relations: slots, reassigned every shrink iteration.
	availInside := sc.Slot(bdd.False)
	availOutside := sc.Slot(bdd.False)
	rec := sc.Slot(bdd.False)
	partSlots := make([]*bdd.Rooted, 2*len(c.Procs))
	for i := range partSlots {
		partSlots[i] = sc.Slot(bdd.False)
	}
	t2 := sc.Slot(bdd.False)
	for {
		iterations++
		if err := cancelled(ctx); err != nil {
			return nil, err
		}

		// All transitions the fault-tolerant program may use: inside the
		// invariant only original transitions that keep the invariant
		// closed; outside, any (possibly new) transition that stays in the
		// fault-span and is not prohibited. Write restrictions are kept
		// even in Step 1 (c.AnyWrite) — they cost one conjunction; the
		// complexity the paper defers to Step 2 comes from the read
		// restrictions (grouping).
		availInside.Set(bdd.False)
		availOutside.Set(bdd.False)
		availParts := make([]bdd.Node, 0, 2*len(c.Procs))
		insideCtx := m.AndN(s1.Node(), s.Prime(s1.Node()), notMT)
		m.Ref(insideCtx) // survives the outsideCtx chain and the per-proc loop
		// Self-loops make no recovery progress and would put every state in
		// the cyclic core, so they are never offered as recovery.
		outsideCtx := m.AndN(t1.Node(), s.Prime(t1.Node()), m.Not(s1.Node()), notMT, m.Not(s.Identity()), s.ValidTrans())
		m.Ref(outsideCtx)
		for i, p := range c.Procs {
			in := partSlots[2*i].Set(m.And(p.Trans, insideCtx))
			out := partSlots[2*i+1].Set(m.And(p.WriteOK, outsideCtx))
			availInside.Set(m.Or(availInside.Node(), in))
			availOutside.Set(m.Or(availOutside.Node(), out))
			availParts = append(availParts, in, out)
		}
		m.Deref(insideCtx)
		m.Deref(outsideCtx)

		// Remove fault-span states from which recovery to the invariant is
		// impossible.
		back, err := e.BackwardReachableParts(ctx, s1.Node(), availParts)
		if err != nil {
			return nil, engineErr(ctx, err)
		}
		t2.Set(m.And(t1.Node(), back))
		// Remove fault-span states from which faults escape the span: the
		// states that can reach the span's complement through fault chains
		// are one backward reachability under the fault partitions (faults
		// are conjoined with ValidTrans at compile time, so every chain
		// stays in valid states).
		esc, err := e.BackwardReachableParts(ctx, m.Diff(s.ValidCur(), t2.Node()), c.FaultParts)
		if err != nil {
			return nil, engineErr(ctx, err)
		}
		t2.Set(m.Diff(t2.Node(), esc))
		// Keep the invariant inside the span and deadlock-free.
		s2 := m.And(s1.Node(), t2.Node())
		if s2 == bdd.False {
			return nil, ErrNotRepairable
		}

		if s2 != s1.Node() || t2.Node() != t1.Node() {
			s1.Set(s2)
			t1.Set(t2.Node())
			continue
		}

		// The shrink fixpoint is stable; construct the recovery transitions
		// (original behavior inside the invariant is availInside). By
		// default cycles are broken here, maximally: every transition of
		// the acyclic part of the recovery relation is kept — removing any
		// would needlessly break read-restriction groups in Step 2 — and
		// only the cyclic core is filtered to rank-decreasing transitions.
		// Span states left without guaranteed recovery are pruned and the
		// fixpoint re-runs. With DeferCycleBreaking, recovery stays maximal
		// here and the lazy driver eliminates cycles group-awarely after
		// Step 2.
		if opts.DeferCycleBreaking {
			rec.Set(availOutside.Node())
			break
		}
		outsideParts := make([]bdd.Node, 0, len(availParts)/2)
		for i := 1; i < len(availParts); i += 2 {
			outsideParts = append(outsideParts, availParts[i])
		}
		r, ranked := LayeredRecovery(c, s1.Node(), t1.Node(), outsideParts)
		rec.Set(r)
		if ranked != t1.Node() {
			t1.Set(ranked)
			continue
		}
		break
	}

	// The result's relations outlive this scope (the lazy driver holds them
	// across Step 2 and its fixpoints), so they stay rooted for the life of
	// the manager.
	return &Masking{
		Trans:      m.Ref(m.Or(availInside.Node(), rec.Node())),
		Invariant:  m.Ref(s1.Node()),
		FaultSpan:  m.Ref(t1.Node()),
		Iterations: iterations,
	}, nil
}
