package repair

import (
	"context"
	"errors"
	"testing"

	"repro/internal/bdd"
	"repro/internal/expr"
	"repro/internal/program"
	"repro/internal/symbolic"
)

// flipModel is the smallest meaningful repair instance: one bit a, invariant
// a=0, a fault that sets a:=1, and a process that can read and write a but
// has no actions. Repair must invent the recovery transition a:=0.
func flipModel() *program.Def {
	return &program.Def{
		Name: "flip",
		Vars: []symbolic.VarSpec{{Name: "a", Domain: 2}},
		Processes: []*program.Process{
			{Name: "p", Read: []string{"a"}, Write: []string{"a"}},
		},
		Faults: []program.Action{
			{Name: "hit", Guard: expr.Eq("a", 0), Updates: []program.Update{program.Set("a", 1)}},
		},
		Invariant: expr.Eq("a", 0),
	}
}

// hiddenModel exercises read restrictions: variable a is written by the
// fault and invisible to the process p, which can only repair y. The
// recovery group of (a=1,y=1)→(a=1,y=0) contains (a=0,y=1)→(a=0,y=0), which
// the safety spec prohibits — but whose source is unreachable, so lazy
// repair (with the reachability heuristic) completes the group with a free
// transition outside the fault-span, exactly the paper's "case 1".
func hiddenModel() *program.Def {
	return &program.Def{
		Name: "hidden",
		Vars: []symbolic.VarSpec{{Name: "a", Domain: 2}, {Name: "y", Domain: 2}},
		Processes: []*program.Process{
			{Name: "p", Read: []string{"y"}, Write: []string{"y"}},
		},
		Faults: []program.Action{{
			Name:    "corrupt",
			Guard:   expr.And(expr.Eq("a", 0), expr.Eq("y", 0)),
			Updates: []program.Update{program.Set("a", 1), program.Set("y", 1)},
		}},
		Invariant: expr.Eq("y", 0),
		// Changing y while a stays 0 is prohibited.
		BadTrans: expr.And(expr.Eq("a", 0), expr.NextEq("a", 0), expr.Changed("y")),
	}
}

// doomedModel is unrepairable: the fault immediately drives the program into
// a bad state from every legitimate state.
func doomedModel() *program.Def {
	return &program.Def{
		Name: "doomed",
		Vars: []symbolic.VarSpec{{Name: "a", Domain: 3}},
		Processes: []*program.Process{
			{Name: "p", Read: []string{"a"}, Write: []string{"a"}},
		},
		Faults: []program.Action{
			{Name: "kill", Guard: expr.Eq("a", 0), Updates: []program.Update{program.Set("a", 2)}},
		},
		Invariant: expr.Eq("a", 0),
		BadStates: expr.Eq("a", 2),
	}
}

func TestAddMaskingFlip(t *testing.T) {
	c := flipModel().MustCompile()
	mask, err := AddMasking(context.Background(), c, c.Invariant, c.BadTrans, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := c.Space
	if got := s.CountStates(mask.Invariant); got != 1 {
		t.Fatalf("invariant size = %v, want 1", got)
	}
	if got := s.CountStates(mask.FaultSpan); got != 2 {
		t.Fatalf("fault-span size = %v, want 2", got)
	}
	// The repaired transitions must include exactly the recovery a:1→0.
	want, _ := s.Transition(map[string]int{"a": 1}, map[string]int{"a": 0})
	if mask.Trans != want {
		t.Fatalf("trans = %s, want 1→0", s.M.String(mask.Trans))
	}
}

func TestLazyFlip(t *testing.T) {
	c := flipModel().MustCompile()
	res, err := Lazy(context.Background(), c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := c.Space
	want, _ := s.Transition(map[string]int{"a": 1}, map[string]int{"a": 0})
	if !s.M.Implies(want, res.Trans) {
		t.Fatal("lazy result lost the recovery transition")
	}
	if res.Stats.OuterIterations != 1 {
		t.Fatalf("expected 1 outer iteration, got %d", res.Stats.OuterIterations)
	}
	if res.Stats.ReachableStates != 2 {
		t.Fatalf("reachable states = %v, want 2", res.Stats.ReachableStates)
	}
}

func TestCautiousFlip(t *testing.T) {
	c := flipModel().MustCompile()
	res, err := Cautious(context.Background(), c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := c.Space
	want, _ := s.Transition(map[string]int{"a": 1}, map[string]int{"a": 0})
	if !s.M.Implies(want, res.Trans) {
		t.Fatal("cautious result lost the recovery transition")
	}
}

func TestLazyHiddenUsesFreeTransitions(t *testing.T) {
	c := hiddenModel().MustCompile()
	res, err := Lazy(context.Background(), c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := c.Space
	m := s.M
	// Recovery (1,1)→(1,0) must be present…
	rec, _ := s.Transition(map[string]int{"a": 1, "y": 1}, map[string]int{"a": 1, "y": 0})
	if !m.Implies(rec, res.Trans) {
		t.Fatal("recovery transition (a=1,y=1)→(a=1,y=0) missing")
	}
	// …and its group twin (0,1)→(0,0), starting outside the fault-span,
	// must have been added for free to complete the group.
	twin, _ := s.Transition(map[string]int{"a": 0, "y": 1}, map[string]int{"a": 0, "y": 0})
	if !m.Implies(twin, res.Trans) {
		t.Fatal("free group-completing twin (a=0,y=1)→(a=0,y=0) missing")
	}
	// The twin's source is outside the certified fault-span.
	outside, _ := s.State(map[string]int{"a": 0, "y": 1})
	if m.And(outside, res.FaultSpan) != bdd.False {
		t.Fatal("(a=0,y=1) should be outside the fault-span")
	}
}

func TestLazyHiddenWithoutHeuristic(t *testing.T) {
	// Without the reachability heuristic Step 1 works over the full state
	// space. On this model the Add-Masking fixpoint itself prunes the
	// unreachable group-twin source (it cannot recover under write
	// restrictions), so pure lazy still repairs correctly — it just pays
	// for full-space fixpoints, which is the paper's performance point
	// (measured in the ablation benchmarks).
	c := hiddenModel().MustCompile()
	opts := DefaultOptions()
	opts.ReachabilityHeuristic = false
	res, err := Lazy(context.Background(), c, opts)
	if err != nil {
		t.Fatal(err)
	}
	s := c.Space
	if got := s.CountStates(res.Invariant); got != 2 {
		t.Fatalf("pure lazy invariant = %v states, want 2", got)
	}
	rec, _ := s.Transition(map[string]int{"a": 1, "y": 1}, map[string]int{"a": 1, "y": 0})
	if !s.M.Implies(rec, res.Trans) {
		t.Fatal("pure lazy lost the recovery transition")
	}
}

func TestCautiousHiddenToleratesUnreachableViolation(t *testing.T) {
	// Cautious repair keeps the recovery group because the prohibited
	// member starts from an unreachable state (the Section-IV heuristic).
	c := hiddenModel().MustCompile()
	res, err := Cautious(context.Background(), c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := c.Space
	rec, _ := s.Transition(map[string]int{"a": 1, "y": 1}, map[string]int{"a": 1, "y": 0})
	if !s.M.Implies(rec, res.Trans) {
		t.Fatal("cautious lost the recovery transition")
	}
}

func TestDoomedNotRepairable(t *testing.T) {
	c := doomedModel().MustCompile()
	if _, err := Lazy(context.Background(), c, DefaultOptions()); !errors.Is(err, ErrNotRepairable) {
		t.Fatalf("lazy: expected ErrNotRepairable, got %v", err)
	}
	if _, err := Cautious(context.Background(), c, DefaultOptions()); !errors.Is(err, ErrNotRepairable) {
		t.Fatalf("cautious: expected ErrNotRepairable, got %v", err)
	}
}

func TestComputeMsMt(t *testing.T) {
	c := doomedModel().MustCompile()
	ms, mt := ComputeMsMt(c, c.BadTrans)
	s := c.Space
	// ms = {a=2} ∪ {a=0} (fault leads there).
	bad, _ := s.State(map[string]int{"a": 2})
	srcState, _ := s.State(map[string]int{"a": 0})
	m := s.M
	if !m.Implies(bad, ms) || !m.Implies(srcState, ms) {
		t.Fatalf("ms = %s", m.String(ms))
	}
	ok, _ := s.State(map[string]int{"a": 1})
	if m.And(ok, ms) != bdd.False {
		t.Fatal("a=1 should not be in ms")
	}
	// mt contains every transition into ms.
	into := m.And(s.Prime(ms), s.ValidTrans())
	if !m.Implies(into, mt) {
		t.Fatal("mt must contain transitions into ms")
	}
}

func TestRealizeKeepsCompleteGroupsOnly(t *testing.T) {
	c := hiddenModel().MustCompile()
	s := c.Space
	m := s.M
	// Intermediate program: just the recovery (1,1)→(1,0).
	rec, _ := s.Transition(map[string]int{"a": 1, "y": 1}, map[string]int{"a": 1, "y": 0})

	// Span covering both group sources: the group twin is missing from
	// delta and starts inside the span, so the group must die.
	spanBoth := m.Or(mustState(t, s, map[string]int{"a": 1, "y": 1}),
		mustState(t, s, map[string]int{"a": 0, "y": 1}))
	if got := Realize(c, rec, m.Or(spanBoth, c.Invariant)); m.Implies(rec, got) {
		t.Fatal("group-incomplete recovery should have been removed")
	}

	// Span excluding the twin's source: the twin is free, group survives.
	spanOne := m.Or(mustState(t, s, map[string]int{"a": 1, "y": 1}), c.Invariant)
	if got := Realize(c, rec, spanOne); !m.Implies(rec, got) {
		t.Fatal("recovery with free twin should survive")
	}
}

func mustState(t *testing.T, s *symbolic.Space, vals map[string]int) bdd.Node {
	t.Helper()
	st, err := s.State(vals)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestLayeredRecoveryIsAcyclic(t *testing.T) {
	// Chain of 4 values: invariant {0}; availability allows k→k-1 and the
	// cycle-inducing k→k+1. Layered recovery must keep only the decreasing
	// edges.
	d := &program.Def{
		Name: "layers",
		Vars: []symbolic.VarSpec{{Name: "v", Domain: 4}},
		Processes: []*program.Process{
			{Name: "p", Read: []string{"v"}, Write: []string{"v"}},
		},
		Invariant: expr.Eq("v", 0),
	}
	c := d.MustCompile()
	s := c.Space
	m := s.M

	avail := bdd.False
	for k := 1; k < 4; k++ {
		down, _ := s.Transition(map[string]int{"v": k}, map[string]int{"v": k - 1})
		avail = m.Or(avail, down)
		if k < 3 {
			up, _ := s.Transition(map[string]int{"v": k}, map[string]int{"v": k + 1})
			avail = m.Or(avail, up)
		}
	}
	span := s.ValidCur()
	rec, ranked := LayeredRecovery(c, c.Invariant, span, []bdd.Node{avail})
	if ranked != span {
		t.Fatal("every state should be ranked")
	}
	// Only the three decreasing edges should be kept.
	if got := s.CountTransitions(rec); got != 3 {
		t.Fatalf("recovery has %v transitions, want 3", got)
	}
	up, _ := s.Transition(map[string]int{"v": 1}, map[string]int{"v": 2})
	if m.And(rec, up) != bdd.False {
		t.Fatal("increasing edge survived — recovery is not acyclic")
	}
}

func TestInvariantDeadlocksAreLegalRests(t *testing.T) {
	// v ∈ {0,1,2}; program: 0→1 only; invariant {0,1}. State 1 deadlocks
	// originally (legal rest) and there are no faults, so repair must keep
	// the invariant intact and change nothing.
	d := &program.Def{
		Name: "rests",
		Vars: []symbolic.VarSpec{{Name: "v", Domain: 3}},
		Processes: []*program.Process{{
			Name: "p", Read: []string{"v"}, Write: []string{"v"},
			Actions: []program.Action{{Guard: expr.Eq("v", 0), Updates: []program.Update{program.Set("v", 1)}}},
		}},
		Invariant: expr.Or(expr.Eq("v", 0), expr.Eq("v", 1)),
	}
	c := d.MustCompile()
	res, err := Lazy(context.Background(), c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Invariant != c.Invariant {
		t.Fatal("fault-free repair should keep the invariant unchanged")
	}
	step, _ := c.Space.Transition(map[string]int{"v": 0}, map[string]int{"v": 1})
	if !c.Space.M.Implies(step, res.Trans) {
		t.Fatal("fault-free repair lost the original transition")
	}
}

func TestOptionsLogf(t *testing.T) {
	c := flipModel().MustCompile()
	var lines int
	opts := DefaultOptions()
	opts.Logf = func(string, ...any) { lines++ }
	if _, err := Lazy(context.Background(), c, opts); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("expected log output")
	}
}
