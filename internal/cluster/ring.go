package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// Ring is a consistent-hash ring over replica names with virtual nodes.
// Each replica owns vnodes points on a 64-bit circle (the first 8 bytes of
// SHA-256("<replica>#<i>")); a key routes to the replica owning the first
// point at or clockwise after the key's own hash. Virtual nodes smooth the
// load split (with 128 per replica the imbalance across replicas is a few
// percent), and consistency bounds movement: removing one of n replicas
// re-routes only the keys that replica owned — about 1/n of the space —
// while every other key keeps its home, which is what keeps the content-
// addressed caches of the surviving replicas warm through membership
// changes.
//
// The ring is immutable after construction; membership changes build a new
// ring (they are rare — static config plus health transitions — and an
// immutable ring needs no locking on the routing hot path).
type Ring struct {
	replicas []string
	points   []point // sorted by hash
}

type point struct {
	hash uint64
	node int // index into replicas
}

// DefaultVirtualNodes is the per-replica point count used when a Config
// leaves it zero.
const DefaultVirtualNodes = 128

// NewRing builds a ring over the given replica names (order-insensitive:
// the layout depends only on the name set). vnodes <= 0 selects
// DefaultVirtualNodes.
func NewRing(replicas []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	names := append([]string(nil), replicas...)
	sort.Strings(names)
	r := &Ring{replicas: names}
	for ni, name := range names {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", name, i)), node: ni})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (astronomically rare) break on the replica name so the
		// layout stays a pure function of the membership set.
		return r.points[i].node < r.points[j].node
	})
	return r
}

func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Replicas returns the ring's member names (sorted).
func (r *Ring) Replicas() []string { return append([]string(nil), r.replicas...) }

// Lookup returns every replica in preference order for key: the primary
// (the owner of the first point clockwise from the key's hash) followed by
// the distinct successors around the ring. Callers walk the list skipping
// unhealthy replicas, which makes failover routing a pure function of the
// membership set and the health view.
func (r *Ring) Lookup(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.replicas))
	seen := make(map[int]bool, len(r.replicas))
	for i := 0; i < len(r.points) && len(out) < len(r.replicas); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, r.replicas[p.node])
		}
	}
	return out
}

// Primary returns the first preference for key ("" on an empty ring).
func (r *Ring) Primary(key string) string {
	prefs := r.Lookup(key)
	if len(prefs) == 0 {
		return ""
	}
	return prefs[0]
}
