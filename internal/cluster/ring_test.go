package cluster

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("key-%d", i)
	}
	return out
}

// TestRingMovementBound is the consistency property the tentpole leans on:
// removing one of n replicas re-routes ONLY the keys that replica owned —
// every other key keeps its primary, so the surviving replicas' caches stay
// warm through the membership change.
func TestRingMovementBound(t *testing.T) {
	replicas := []string{"http://a", "http://b", "http://c", "http://d", "http://e"}
	before := NewRing(replicas, 0)
	after := NewRing(replicas[:4], 0) // drop http://e

	moved := 0
	for _, k := range keys(10_000) {
		pb, pa := before.Primary(k), after.Primary(k)
		if pb != pa {
			if pb != "http://e" {
				t.Fatalf("key %s moved %s -> %s though its owner survived", k, pb, pa)
			}
			moved++
		} else if pb == "http://e" {
			t.Fatalf("key %s still routes to removed replica", k)
		}
	}
	// The removed replica owned ~1/5 of the space; allow generous slack for
	// virtual-node variance but insist the bound is in the right regime (a
	// naive mod-n hash would move ~4/5 of the keys).
	if moved == 0 {
		t.Fatal("no keys moved — removed replica owned nothing?")
	}
	if frac := float64(moved) / 10_000; frac > 0.30 {
		t.Fatalf("%.0f%% of keys moved; want about 1/5", frac*100)
	}
}

// TestRingBalance checks the virtual nodes smooth the split: with 128
// points per replica no replica owns more than twice the fair share.
func TestRingBalance(t *testing.T) {
	replicas := []string{"http://a", "http://b", "http://c", "http://d"}
	r := NewRing(replicas, 0)
	counts := make(map[string]int)
	for _, k := range keys(20_000) {
		counts[r.Primary(k)]++
	}
	fair := 20_000 / len(replicas)
	for _, rep := range replicas {
		if counts[rep] == 0 {
			t.Fatalf("replica %s owns no keys", rep)
		}
		if counts[rep] > 2*fair {
			t.Fatalf("replica %s owns %d of 20000 keys (fair share %d)", rep, counts[rep], fair)
		}
	}
}

// TestRingOrderInsensitive: the layout is a pure function of the membership
// set, not the configuration order.
func TestRingOrderInsensitive(t *testing.T) {
	a := NewRing([]string{"http://x", "http://y", "http://z"}, 16)
	b := NewRing([]string{"http://z", "http://x", "http://y"}, 16)
	for _, k := range keys(500) {
		if a.Primary(k) != b.Primary(k) {
			t.Fatalf("replica order changed the layout for %s", k)
		}
	}
}

// TestRingLookupPreferenceOrder: Lookup yields every replica exactly once,
// primary first, so a failover walk always terminates with full coverage.
func TestRingLookupPreferenceOrder(t *testing.T) {
	replicas := []string{"http://a", "http://b", "http://c"}
	r := NewRing(replicas, 8)
	for _, k := range keys(200) {
		prefs := r.Lookup(k)
		if len(prefs) != len(replicas) {
			t.Fatalf("Lookup(%s) = %v; want all %d replicas", k, prefs, len(replicas))
		}
		seen := make(map[string]bool)
		for _, p := range prefs {
			if seen[p] {
				t.Fatalf("Lookup(%s) repeats %s", k, p)
			}
			seen[p] = true
		}
		if prefs[0] != r.Primary(k) {
			t.Fatalf("Lookup(%s)[0] = %s, Primary = %s", k, prefs[0], r.Primary(k))
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if got := r.Lookup("k"); got != nil {
		t.Fatalf("empty ring Lookup = %v; want nil", got)
	}
	if got := r.Primary("k"); got != "" {
		t.Fatalf("empty ring Primary = %q; want empty", got)
	}
}
