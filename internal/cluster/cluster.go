// Package cluster implements a coordinator that fronts N ftrepaird
// replicas as one logical repair service.
//
// Routing is consistent hashing over the existing SHA-256 content key (the
// same key the single-node service uses for its result cache and in-flight
// coalescing): the coordinator resolves each submitted spec locally,
// computes its key, and forwards the raw body to the key's primary replica
// on a virtual-node hash ring. Identical jobs therefore always land on the
// same replica, where they dedup against its cache, spill and in-flight
// table exactly as on a single node. When a replica is lost, only the keys
// it owned (~1/n of the space) re-route; accepted jobs whose replica dies
// are resubmitted to the next preference — a spill/cache hit if any replica
// ever finished them, an honest re-run otherwise — so an accepted job is
// never silently dropped. Because reports are content-addressed and the
// synthesis is deterministic, a re-routed job's Normalized report is
// byte-identical to the single-node result.
//
// The coordinator exposes the same HTTP surface as a single daemon (submit,
// status, cancel, SSE/long-poll events, healthz, metrics.json), so clients
// need not know whether they are talking to one node or a cluster.
package cluster

import (
	"fmt"
	"net/http"
	"strings"
	"time"
)

// Config sizes a Coordinator.
type Config struct {
	// Replicas are the base URLs of the ftrepaird replicas (e.g.
	// "http://10.0.0.1:7463"). At least one is required; trailing slashes
	// are stripped.
	Replicas []string
	// VirtualNodes is the per-replica point count on the hash ring; 0 means
	// DefaultVirtualNodes.
	VirtualNodes int
	// ProbeInterval is the health-prober period; 0 disables background
	// probing (request-path failures still mark replicas down, but only a
	// probe — via CheckNow — brings one back).
	ProbeInterval time.Duration
	// HTTPTimeout bounds control calls (submit, status, cancel, probes);
	// 0 means 30s. Event streams are never timed out.
	HTTPTimeout time.Duration
	// Logf receives operational log lines (failovers, resubmissions); nil
	// discards them.
	Logf func(format string, args ...any)
}

// New builds a Coordinator over the configured replicas. The background
// health prober starts immediately when ProbeInterval > 0; call Close to
// stop it.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("cluster: config needs at least one replica")
	}
	if cfg.HTTPTimeout <= 0 {
		cfg.HTTPTimeout = 30 * time.Second
	}
	replicas := make([]string, 0, len(cfg.Replicas))
	seen := make(map[string]bool, len(cfg.Replicas))
	for _, r := range cfg.Replicas {
		r = strings.TrimRight(r, "/")
		if r == "" {
			return nil, fmt.Errorf("cluster: empty replica URL")
		}
		if seen[r] {
			return nil, fmt.Errorf("cluster: duplicate replica %s", r)
		}
		seen[r] = true
		replicas = append(replicas, r)
	}
	cfg.Replicas = replicas

	control := &http.Client{Timeout: cfg.HTTPTimeout}
	stream := &http.Client{} // event streams live as long as their jobs
	clients := make(map[string]*replicaClient, len(replicas))
	for _, r := range replicas {
		clients[r] = &replicaClient{base: r, control: control, stream: stream}
	}
	return &Coordinator{
		cfg:     cfg,
		ring:    NewRing(replicas, cfg.VirtualNodes),
		health:  newHealth(replicas, cfg.ProbeInterval, cfg.HTTPTimeout),
		clients: clients,
		jobs:    make(map[string]*routedJob),
	}, nil
}
