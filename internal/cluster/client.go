package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/service"
)

// replicaClient is the coordinator's HTTP client for one ftrepaird replica.
// Control calls (submit, status, cancel) run under the configured timeout;
// event streaming uses an untimed client because a legitimate stream lives
// as long as the job it follows.
type replicaClient struct {
	base    string
	control *http.Client
	stream  *http.Client
}

// apiStatusError is a non-2xx replica response surfaced with its decoded
// body, so the coordinator can distinguish replica-level rejections (e.g.
// queue_full — try the next replica) from unknown jobs (re-route and
// resubmit).
type apiStatusError struct {
	Status int
	API    service.APIError
}

func (e *apiStatusError) Error() string {
	return fmt.Sprintf("replica responded %d (%s: %s)", e.Status, e.API.Code, e.API.Message)
}

// Submit posts the raw spec body (already-validated JSON) and decodes the
// replica's JobView. The raw body is forwarded untouched so the replica
// hashes exactly what the client sent.
func (c *replicaClient) Submit(body []byte, client string) (service.JobView, error) {
	req, err := http.NewRequest(http.MethodPost, c.base+"/v1/repair", bytes.NewReader(body))
	if err != nil {
		return service.JobView{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	if client != "" {
		req.Header.Set("X-Client-ID", client)
	}
	resp, err := c.control.Do(req)
	if err != nil {
		return service.JobView{}, err
	}
	return decodeJobView(resp)
}

// Job fetches the replica-local view of a job.
func (c *replicaClient) Job(id string) (service.JobView, error) {
	resp, err := c.control.Get(c.base + "/v1/jobs/" + id)
	if err != nil {
		return service.JobView{}, err
	}
	return decodeJobView(resp)
}

// Cancel requests cancellation of a replica-local job.
func (c *replicaClient) Cancel(id string) (service.JobView, error) {
	req, err := http.NewRequest(http.MethodDelete, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return service.JobView{}, err
	}
	resp, err := c.control.Do(req)
	if err != nil {
		return service.JobView{}, err
	}
	return decodeJobView(resp)
}

// Events opens the replica's event stream for a job, passing the raw query
// through (poll/after/wait_ms), and returns the response for relaying.
func (c *replicaClient) Events(id, rawQuery string) (*http.Response, error) {
	url := c.base + "/v1/jobs/" + id + "/events"
	if rawQuery != "" {
		url += "?" + rawQuery
	}
	resp, err := c.stream.Get(url)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, statusError(resp)
	}
	return resp, nil
}

func decodeJobView(resp *http.Response) (service.JobView, error) {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return service.JobView{}, statusError(resp)
	}
	var view service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return service.JobView{}, fmt.Errorf("decoding replica response: %w", err)
	}
	return view, nil
}

func statusError(resp *http.Response) error {
	e := &apiStatusError{Status: resp.StatusCode}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	_ = json.Unmarshal(raw, &e.API)
	return e
}
