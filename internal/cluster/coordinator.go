package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"repro/internal/service"
)

// routedJob is the coordinator's record of one accepted submission: enough
// to find the job on its current replica and — because the body and content
// key are retained — to resubmit it elsewhere if that replica dies. The
// content-addressed caches make resubmission cheap: a re-routed job is a
// spill/cache hit on any replica that ever computed the key, and an honest
// re-run otherwise, so an accepted job is never silently dropped.
type routedJob struct {
	coordID string
	key     string
	body    []byte // raw spec JSON, forwarded verbatim on (re)submission
	client  string

	mu       sync.Mutex
	replica  string // base URL of the replica currently holding the job
	remoteID string // the replica-local job id
}

func (rj *routedJob) location() (string, string) {
	rj.mu.Lock()
	defer rj.mu.Unlock()
	return rj.replica, rj.remoteID
}

func (rj *routedJob) relocate(replica, remoteID string) {
	rj.mu.Lock()
	defer rj.mu.Unlock()
	rj.replica = replica
	rj.remoteID = remoteID
}

// Coordinator fronts a set of ftrepaird replicas: it routes each submission
// by its SHA-256 content key on a consistent-hash ring (so identical jobs
// land on — and dedup within — the same replica), fails over around dead
// replicas, and relays status, cancellation and event streams under
// coordinator-scoped job ids.
type Coordinator struct {
	cfg     Config
	ring    *Ring
	health  *health
	clients map[string]*replicaClient

	mu   sync.Mutex
	seq  int
	jobs map[string]*routedJob

	metrics struct {
		mu          sync.Mutex
		routed      int64 // submissions accepted and routed
		rejected    int64 // submissions rejected (replica capacity or all down)
		failovers   int64 // primary skipped at submit time (down or unreachable)
		resubmitted int64 // accepted jobs re-run on another replica after loss
	}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Close stops the health prober.
func (c *Coordinator) Close() { c.health.Close() }

// route returns the live-replica preference order for a content key: the
// ring's order with down replicas moved to the back (not dropped — if every
// replica looks down the coordinator still tries them in ring order rather
// than refusing outright, since the health view may be stale).
func (c *Coordinator) route(key string) []string {
	prefs := c.ring.Lookup(key)
	live := make([]string, 0, len(prefs))
	down := make([]string, 0)
	for _, r := range prefs {
		if c.health.Up(r) {
			live = append(live, r)
		} else {
			down = append(down, r)
		}
	}
	return append(live, down...)
}

// Handler returns the coordinator's HTTP API — the same surface as a single
// ftrepaird (submit, job status, cancel, events, healthz, metrics.json), so
// clients are oblivious to whether they talk to one daemon or a cluster.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/repair", c.handleSubmit)
	mux.HandleFunc("/v1/jobs/", c.handleJob)
	mux.HandleFunc("/healthz", c.handleHealthz)
	mux.HandleFunc("/metrics.json", c.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeAPIError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, service.APIError{Code: code, Message: msg})
}

// relayStatusError forwards a replica's structured rejection to the client
// unchanged — capacity and quota decisions are the owning replica's to make,
// and the body already carries the backoff guidance.
func relayStatusError(w http.ResponseWriter, e *apiStatusError) {
	if e.API.RetryAfterS > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", e.API.RetryAfterS))
	}
	writeJSON(w, e.Status, e.API)
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeAPIError(w, http.StatusMethodNotAllowed, service.CodeMethodNotAllowed, "use POST")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 4<<20))
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, service.CodeBadJSON, err.Error())
		return
	}
	// Validate and content-address locally before spending a network hop:
	// the coordinator computes the exact key a replica would, because both
	// run the same resolution code over the same bytes.
	var spec service.Spec
	dec := json.NewDecoder(strings.NewReader(string(body)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeAPIError(w, http.StatusBadRequest, service.CodeBadJSON, err.Error())
		return
	}
	key, err := service.ContentKey(spec)
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, service.CodeInvalidSpec, err.Error())
		return
	}
	client := r.Header.Get("X-Client-ID")

	prefs := c.route(key)
	var lastErr error
	for i, replica := range prefs {
		view, err := c.clients[replica].Submit(body, client)
		if err != nil {
			var se *apiStatusError
			if errors.As(err, &se) {
				// A structured rejection (quota, queue full, shedding) is the
				// owning replica's admission decision; relay it rather than
				// spraying the job onto a replica the ring didn't pick.
				c.countRejected()
				relayStatusError(w, se)
				return
			}
			// Transport failure: the replica is unreachable. Mark it down and
			// fail over to the next preference.
			c.health.MarkDown(replica, err)
			c.countFailover()
			c.logf("cluster: submit to %s failed (%v), trying next preference", replica, err)
			lastErr = err
			continue
		}
		if i > 0 {
			c.countFailover()
		}
		coordID := c.register(key, body, client, replica, view.ID)
		c.countRouted()
		view.ID = coordID
		status := http.StatusAccepted
		if view.State.Terminal() {
			status = http.StatusOK
		}
		writeJSON(w, status, view)
		return
	}
	c.countRejected()
	msg := "no replica reachable"
	if lastErr != nil {
		msg = fmt.Sprintf("no replica reachable: %v", lastErr)
	}
	writeAPIError(w, http.StatusServiceUnavailable, service.CodeOverloaded, msg)
}

func (c *Coordinator) register(key string, body []byte, client, replica, remoteID string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	coordID := fmt.Sprintf("c%06d-%s", c.seq, key[:8])
	c.jobs[coordID] = &routedJob{
		coordID: coordID, key: key, body: body, client: client,
		replica: replica, remoteID: remoteID,
	}
	return coordID
}

func (c *Coordinator) lookup(coordID string) (*routedJob, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rj, ok := c.jobs[coordID]
	return rj, ok
}

// fetch gets the current replica-local view of a routed job, failing over if
// the owning replica is unreachable or has forgotten the job (a restart):
// the retained spec body is resubmitted to the best live replica for the
// key, where the content-addressed spill either serves the finished result
// without recomputation or honestly re-runs the synthesis. Either way the
// accepted job survives the loss.
func (c *Coordinator) fetch(rj *routedJob) (service.JobView, error) {
	replica, remoteID := rj.location()
	view, err := c.clients[replica].Job(remoteID)
	if err == nil {
		view.ID = rj.coordID
		return view, nil
	}
	var se *apiStatusError
	if errors.As(err, &se) && se.API.Code != service.CodeUnknownJob {
		// The replica answered with something other than "never heard of
		// it" — that is the job's real state, not a loss; relay it.
		return service.JobView{}, err
	}
	if !errors.As(err, &se) {
		c.health.MarkDown(replica, err)
	}
	return c.resubmit(rj, replica, err)
}

// resubmit re-runs a lost job's spec on the best live replica, skipping the
// one that just failed.
func (c *Coordinator) resubmit(rj *routedJob, failed string, cause error) (service.JobView, error) {
	c.logf("cluster: job %s lost on %s (%v), resubmitting", rj.coordID, failed, cause)
	var lastErr error = cause
	for _, replica := range c.route(rj.key) {
		if replica == failed {
			continue
		}
		view, err := c.clients[replica].Submit(rj.body, rj.client)
		if err != nil {
			var se *apiStatusError
			if !errors.As(err, &se) {
				c.health.MarkDown(replica, err)
			}
			lastErr = err
			continue
		}
		rj.relocate(replica, view.ID)
		c.countResubmitted()
		view.ID = rj.coordID
		return view, nil
	}
	// Last resort: the failed replica itself may have come back (e.g. a
	// restart in a single-replica cluster) — its spill makes this cheap.
	if view, err := c.clients[failed].Submit(rj.body, rj.client); err == nil {
		rj.relocate(failed, view.ID)
		c.countResubmitted()
		view.ID = rj.coordID
		return view, nil
	}
	return service.JobView{}, fmt.Errorf("cluster: job %s unrecoverable: %w", rj.coordID, lastErr)
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id, ok := strings.CutSuffix(rest, "/events"); ok && id != "" && !strings.Contains(id, "/") {
		c.handleJobEvents(w, r, id)
		return
	}
	id := rest
	rj, ok := c.lookup(id)
	if !ok {
		writeAPIError(w, http.StatusNotFound, service.CodeUnknownJob, "unknown job "+id)
		return
	}
	switch r.Method {
	case http.MethodGet:
		view, err := c.fetch(rj)
		if err != nil {
			var se *apiStatusError
			if errors.As(err, &se) {
				relayStatusError(w, se)
				return
			}
			writeAPIError(w, http.StatusServiceUnavailable, service.CodeOverloaded, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, view)
	case http.MethodDelete:
		replica, remoteID := rj.location()
		view, err := c.clients[replica].Cancel(remoteID)
		if err != nil {
			var se *apiStatusError
			if errors.As(err, &se) {
				relayStatusError(w, se)
				return
			}
			c.health.MarkDown(replica, err)
			writeAPIError(w, http.StatusServiceUnavailable, service.CodeOverloaded, err.Error())
			return
		}
		view.ID = rj.coordID
		writeJSON(w, http.StatusAccepted, view)
	default:
		writeAPIError(w, http.StatusMethodNotAllowed, service.CodeMethodNotAllowed, "use GET or DELETE")
	}
}

// handleJobEvents relays a replica's event stream byte-for-byte — SSE frames
// or long-poll JSON, whichever the query selects — flushing as data arrives.
// If the owning replica is unreachable the job is resubmitted first, so the
// client's stream follows the job to its new home (with a fresh sequence).
func (c *Coordinator) handleJobEvents(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodGet {
		writeAPIError(w, http.StatusMethodNotAllowed, service.CodeMethodNotAllowed, "use GET")
		return
	}
	rj, ok := c.lookup(id)
	if !ok {
		writeAPIError(w, http.StatusNotFound, service.CodeUnknownJob, "unknown job "+id)
		return
	}
	replica, remoteID := rj.location()
	resp, err := c.clients[replica].Events(remoteID, r.URL.RawQuery)
	if err != nil {
		var se *apiStatusError
		if errors.As(err, &se) && se.API.Code != service.CodeUnknownJob {
			relayStatusError(w, se)
			return
		}
		if !errors.As(err, &se) {
			c.health.MarkDown(replica, err)
		}
		if _, rerr := c.resubmit(rj, replica, err); rerr != nil {
			writeAPIError(w, http.StatusServiceUnavailable, service.CodeOverloaded, rerr.Error())
			return
		}
		replica, remoteID = rj.location()
		if resp, err = c.clients[replica].Events(remoteID, r.URL.RawQuery); err != nil {
			writeAPIError(w, http.StatusServiceUnavailable, service.CodeOverloaded, err.Error())
			return
		}
	}
	defer resp.Body.Close()
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// ClusterHealth is the JSON body of the coordinator's /healthz.
type ClusterHealth struct {
	Status   string          `json:"status"`
	Replicas map[string]bool `json:"replicas"`
	Jobs     int             `json:"jobs"`
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	view := c.health.View()
	anyUp := false
	for _, up := range view {
		anyUp = anyUp || up
	}
	c.mu.Lock()
	jobs := len(c.jobs)
	c.mu.Unlock()
	status, code := "ok", http.StatusOK
	if !anyUp {
		status, code = "no replicas up", http.StatusServiceUnavailable
	}
	writeJSON(w, code, ClusterHealth{Status: status, Replicas: view, Jobs: jobs})
}

// ClusterMetrics is the JSON body of the coordinator's /metrics.json.
type ClusterMetrics struct {
	Replicas    int   `json:"replicas"`
	ReplicasUp  int   `json:"replicas_up"`
	Jobs        int   `json:"jobs"`
	Routed      int64 `json:"routed_total"`
	Rejected    int64 `json:"rejected_total"`
	Failovers   int64 `json:"failovers_total"`
	Resubmitted int64 `json:"resubmitted_total"`
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	view := c.health.View()
	up := 0
	for _, ok := range view {
		if ok {
			up++
		}
	}
	c.mu.Lock()
	jobs := len(c.jobs)
	c.mu.Unlock()
	c.metrics.mu.Lock()
	m := ClusterMetrics{
		Replicas: len(view), ReplicasUp: up, Jobs: jobs,
		Routed: c.metrics.routed, Rejected: c.metrics.rejected,
		Failovers: c.metrics.failovers, Resubmitted: c.metrics.resubmitted,
	}
	c.metrics.mu.Unlock()
	writeJSON(w, http.StatusOK, m)
}

func (c *Coordinator) countRouted() {
	c.metrics.mu.Lock()
	c.metrics.routed++
	c.metrics.mu.Unlock()
}

func (c *Coordinator) countRejected() {
	c.metrics.mu.Lock()
	c.metrics.rejected++
	c.metrics.mu.Unlock()
}

func (c *Coordinator) countFailover() {
	c.metrics.mu.Lock()
	c.metrics.failovers++
	c.metrics.mu.Unlock()
}

func (c *Coordinator) countResubmitted() {
	c.metrics.mu.Lock()
	c.metrics.resubmitted++
	c.metrics.mu.Unlock()
}
