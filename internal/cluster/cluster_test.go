package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

// replica is one in-process ftrepaird under test, killable mid-run.
type replica struct {
	base string
	svc  *service.Service
	srv  *http.Server
}

func (r *replica) kill() {
	r.srv.Close()
	r.svc.Close()
}

func bootReplica(t *testing.T, cfg service.Config) *replica {
	t.Helper()
	return bootReplicaAt(t, cfg, "127.0.0.1:0")
}

// bootReplicaAt binds a specific address (the restart test rebinds a dead
// replica's address so the coordinator finds the new process at the old
// route).
func bootReplicaAt(t *testing.T, cfg service.Config, addr string) *replica {
	t.Helper()
	svc := service.New(cfg)
	var ln net.Listener
	var err error
	for i := 0; i < 50; i++ { // the freed port can linger briefly after a kill
		if ln, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	srv := &http.Server{Handler: svc.Handler()}
	go srv.Serve(ln)
	return &replica{base: "http://" + ln.Addr().String(), svc: svc, srv: srv}
}

func bootCluster(t *testing.T, n int, cfg service.Config) ([]*replica, *Coordinator, string) {
	t.Helper()
	replicas := make([]*replica, n)
	urls := make([]string, n)
	for i := range replicas {
		replicas[i] = bootReplica(t, cfg)
		urls[i] = replicas[i].base
	}
	coord, err := New(Config{Replicas: urls, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: coord.Handler()}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return replicas, coord, "http://" + ln.Addr().String()
}

func postSpec(t *testing.T, base string, spec service.Spec) (service.JobView, int) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/repair", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var view service.JobView
	if err := json.Unmarshal(raw, &view); err != nil {
		t.Fatalf("bad response (%d): %s", resp.StatusCode, raw)
	}
	return view, resp.StatusCode
}

func waitJob(t *testing.T, base, id string, within time.Duration) service.JobView {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var view service.JobView
		if err := json.Unmarshal(raw, &view); err != nil {
			t.Fatalf("bad job response (%d): %s", resp.StatusCode, raw)
		}
		if view.State.Terminal() {
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, view.State, within)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// normalized renders a job's result report in its canonical comparable form.
func normalized(t *testing.T, view service.JobView) []byte {
	t.Helper()
	if view.Result == nil {
		t.Fatalf("job %s (%s) has no result: %s", view.ID, view.State, view.Error)
	}
	raw, err := json.Marshal(view.Result.Normalized())
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// ladder is the case-study set the e2e tests route through the cluster.
func ladder() []service.Spec {
	return []service.Spec{
		{Case: "ba", N: 3},
		{Case: "ba", N: 4},
		{Case: "ba", N: 5},
		{Case: "ring", N: 3},
	}
}

// TestClusterRoutesAndDedups: identical jobs land on the same replica by
// content key, so a resubmission is a cache hit cluster-wide.
func TestClusterRoutesAndDedups(t *testing.T) {
	replicas, _, base := bootCluster(t, 3, service.Config{Workers: 2})
	defer func() {
		for _, r := range replicas {
			r.kill()
		}
	}()
	spec := service.Spec{Case: "ba", N: 3}
	first, status := postSpec(t, base, spec)
	if status != http.StatusAccepted && status != http.StatusOK {
		t.Fatalf("submit status %d", status)
	}
	done := waitJob(t, base, first.ID, time.Minute)
	if done.State != service.StateDone {
		t.Fatalf("job failed: %s", done.Error)
	}
	again, status := postSpec(t, base, spec)
	if status != http.StatusOK || !again.CacheHit {
		t.Fatalf("resubmission: status %d cache_hit %v; want 200 + hit", status, again.CacheHit)
	}
	if !bytes.Equal(normalized(t, done), normalized(t, waitJob(t, base, again.ID, time.Minute))) {
		t.Fatal("cache-served report differs from the computed one")
	}
}

// TestClusterKillReplicaNoJobLost is the headline failure-path acceptance:
// the ladder is submitted through a 3-replica cluster, one replica (the
// primary for at least one accepted job) is killed before the jobs are
// collected, and every job must still complete with a Normalized report
// byte-identical to a single-node run.
func TestClusterKillReplicaNoJobLost(t *testing.T) {
	// Single-node baseline first.
	single := bootReplica(t, service.Config{Workers: 2})
	defer single.kill()
	baseline := make(map[string][]byte)
	for _, spec := range ladder() {
		view, _ := postSpec(t, single.base, spec)
		done := waitJob(t, single.base, view.ID, 2*time.Minute)
		if done.State != service.StateDone {
			t.Fatalf("baseline %v failed: %s", spec, done.Error)
		}
		baseline[done.Key] = normalized(t, done)
	}

	replicas, coord, base := bootCluster(t, 3, service.Config{Workers: 1})
	defer func() {
		for _, r := range replicas {
			r.kill()
		}
	}()

	ids := make([]string, 0, len(ladder()))
	for _, spec := range ladder() {
		view, status := postSpec(t, base, spec)
		if status != http.StatusAccepted && status != http.StatusOK {
			t.Fatalf("submit %v: status %d (%s)", spec, status, view.Error)
		}
		ids = append(ids, view.ID)
	}

	// Kill the primary of the first spec's key, so at least one accepted job
	// loses its home while (with single-worker replicas and four jobs) work
	// is still in flight.
	key, err := service.ContentKey(ladder()[0])
	if err != nil {
		t.Fatal(err)
	}
	victim := coord.ring.Primary(key)
	for _, r := range replicas {
		if r.base == victim {
			t.Logf("killing replica %s (primary of %s)", victim, key[:8])
			r.kill()
		}
	}

	for i, id := range ids {
		done := waitJob(t, base, id, 2*time.Minute)
		if done.State != service.StateDone {
			t.Fatalf("job %s (%v) lost after replica kill: %s %s", id, ladder()[i], done.State, done.Error)
		}
		want, ok := baseline[done.Key]
		if !ok {
			t.Fatalf("job %s key %s not in baseline", id, done.Key)
		}
		if got := normalized(t, done); !bytes.Equal(got, want) {
			t.Fatalf("job %s Normalized report differs from single-node baseline:\n got %s\nwant %s", id, got, want)
		}
	}
	coord.metrics.mu.Lock()
	resubmitted := coord.metrics.resubmitted
	coord.metrics.mu.Unlock()
	if resubmitted == 0 {
		t.Fatal("no job was resubmitted — the kill exercised nothing")
	}
}

// TestClusterReplicaRestartServesFromSpill: a replica dies after finishing a
// job and comes back (same address) with its spill directory intact; the
// coordinator re-routes the accepted job to it and the result is served from
// the persistent cache without recomputation.
func TestClusterReplicaRestartServesFromSpill(t *testing.T) {
	spill := t.TempDir()
	rep := bootReplica(t, service.Config{Workers: 2, SpillDir: spill})
	coord, err := New(Config{Replicas: []string{rep.base}, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: coord.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	view, _ := postSpec(t, base, service.Spec{Case: "ba", N: 3})
	done := waitJob(t, base, view.ID, time.Minute)
	if done.State != service.StateDone {
		t.Fatalf("job failed: %s", done.Error)
	}
	want := normalized(t, done)

	addr := strings.TrimPrefix(rep.base, "http://")
	rep.kill()
	rep2 := bootReplicaAt(t, service.Config{Workers: 2, SpillDir: spill}, addr)
	defer rep2.kill()

	after := waitJob(t, base, view.ID, time.Minute)
	if after.State != service.StateDone {
		t.Fatalf("job not recovered after restart: %s %s", after.State, after.Error)
	}
	if !after.CacheHit {
		t.Fatal("restarted replica recomputed instead of serving from spill")
	}
	if got := normalized(t, after); !bytes.Equal(got, want) {
		t.Fatalf("spill-served report differs:\n got %s\nwant %s", got, want)
	}
}

// TestClusterEventsStream: the coordinator relays the replica's SSE stream;
// a witnessed, verified job must deliver at least one event for every repair
// phase, and the stream must end after the terminal state event.
func TestClusterEventsStream(t *testing.T) {
	replicas, _, base := bootCluster(t, 2, service.Config{Workers: 2})
	defer func() {
		for _, r := range replicas {
			r.kill()
		}
	}()
	view, _ := postSpec(t, base, service.Spec{Case: "ba", N: 3, Witnesses: 1})

	resp, err := http.Get(base + "/v1/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("content type %q; want text/event-stream", ct)
	}
	phases := make(map[string]bool)
	terminal := false
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev service.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event frame %q: %v", line, err)
		}
		switch ev.Type {
		case "phase":
			phases[ev.Phase] = true
		case "state":
			if ev.State.Terminal() {
				terminal = true
			}
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if !terminal {
		t.Fatal("stream ended without a terminal state event")
	}
	for _, want := range []string{"compile", "step1", "step2", "witness", "verify"} {
		if !phases[want] {
			t.Fatalf("no event for phase %q; saw %v", want, phases)
		}
	}

	// Long-poll fallback through the coordinator: one page, done=true.
	resp2, err := http.Get(base + "/v1/jobs/" + view.ID + "/events?poll=1&after=0&wait_ms=1000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var page service.EventsPage
	if err := json.NewDecoder(resp2.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	if !page.Done || len(page.Events) == 0 {
		t.Fatalf("long-poll page done=%v events=%d; want done with full history", page.Done, len(page.Events))
	}
}

// TestClusterHealthAndMetrics: the coordinator's own endpoints reflect the
// cluster view.
func TestClusterHealthAndMetrics(t *testing.T) {
	replicas, coord, base := bootCluster(t, 2, service.Config{Workers: 1})
	defer func() {
		for _, r := range replicas {
			r.kill()
		}
	}()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hv ClusterHealth
	if err := json.NewDecoder(resp.Body).Decode(&hv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hv.Status != "ok" || len(hv.Replicas) != 2 {
		t.Fatalf("healthz = %+v", hv)
	}

	replicas[0].kill()
	coord.health.CheckNow()
	resp, err = http.Get(base + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	var mv ClusterMetrics
	if err := json.NewDecoder(resp.Body).Decode(&mv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if mv.Replicas != 2 || mv.ReplicasUp != 1 {
		t.Fatalf("metrics = %+v; want 1 of 2 up", mv)
	}
}

// TestCoordinatorRejectsBadSpecLocally: validation happens at the
// coordinator, without a replica round-trip.
func TestCoordinatorRejectsBadSpecLocally(t *testing.T) {
	coord, err := New(Config{Replicas: []string{"http://127.0.0.1:1"}})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	srv := &http.Server{Handler: coord.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	resp, err := http.Post(base+"/v1/repair", "application/json", strings.NewReader(`{"case":"nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var apiErr service.APIError
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest || apiErr.Code != service.CodeInvalidSpec {
		t.Fatalf("got %d %q; want 400 invalid_spec", resp.StatusCode, apiErr.Code)
	}
}
