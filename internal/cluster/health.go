package cluster

import (
	"net/http"
	"sync"
	"time"
)

// health tracks the liveness of the cluster's replicas: a background prober
// hits each replica's /healthz on a fixed interval, and the request paths
// feed back transport failures immediately (MarkDown), so a dead replica
// stops receiving routes within one round-trip rather than one probe
// period. A replica comes back only through a successful probe — transient
// request errors cannot flap it up.
type health struct {
	mu      sync.Mutex
	up      map[string]bool
	lastErr map[string]string

	client   *http.Client
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// newHealth starts a prober over the replica base URLs. Every replica
// starts up — the first probe round corrects optimism within interval —
// because starting pessimistic would reject all traffic on a cold
// coordinator. interval <= 0 disables the background loop (tests drive
// CheckNow directly).
func newHealth(replicas []string, interval, timeout time.Duration) *health {
	h := &health{
		up:      make(map[string]bool, len(replicas)),
		lastErr: make(map[string]string, len(replicas)),
		client:  &http.Client{Timeout: timeout},
		stop:    make(chan struct{}),
	}
	for _, r := range replicas {
		h.up[r] = true
	}
	if interval > 0 {
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			for {
				h.CheckNow()
				select {
				case <-ticker.C:
				case <-h.stop:
					return
				}
			}
		}()
	}
	return h
}

func (h *health) Close() {
	h.stopOnce.Do(func() { close(h.stop) })
	h.wg.Wait()
}

// CheckNow probes every replica once, synchronously, and updates the view.
func (h *health) CheckNow() {
	h.mu.Lock()
	replicas := make([]string, 0, len(h.up))
	for r := range h.up {
		replicas = append(replicas, r)
	}
	h.mu.Unlock()

	type verdict struct {
		replica string
		ok      bool
		errMsg  string
	}
	results := make(chan verdict, len(replicas))
	for _, r := range replicas {
		go func(r string) {
			resp, err := h.client.Get(r + "/healthz")
			if err != nil {
				results <- verdict{r, false, err.Error()}
				return
			}
			resp.Body.Close()
			results <- verdict{r, resp.StatusCode == http.StatusOK, resp.Status}
		}(r)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for range replicas {
		v := <-results
		h.up[v.replica] = v.ok
		if v.ok {
			delete(h.lastErr, v.replica)
		} else {
			h.lastErr[v.replica] = v.errMsg
		}
	}
}

// Up reports whether the replica is believed live.
func (h *health) Up(replica string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.up[replica]
}

// MarkDown records a transport failure observed by a request path.
func (h *health) MarkDown(replica string, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, known := h.up[replica]; !known {
		return
	}
	h.up[replica] = false
	if err != nil {
		h.lastErr[replica] = err.Error()
	}
}

// View snapshots the liveness map (replica URL -> up).
func (h *health) View() map[string]bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]bool, len(h.up))
	for r, ok := range h.up {
		out[r] = ok
	}
	return out
}
