package core

import (
	"context"
	"testing"

	"repro/internal/repair"
)

func TestRunLazyWithVerify(t *testing.T) {
	def, err := CaseStudy("sc", 3)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(context.Background(), Job{Def: def, Algorithm: LazyRepair, Options: repair.DefaultOptions(), Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Report == nil || !out.Report.OK() {
		t.Fatalf("verification missing or failed: %v", out.Report)
	}
	if out.CompileTime <= 0 {
		t.Fatal("compile time not recorded")
	}
	if out.Result.Stats.Total <= 0 {
		t.Fatal("repair time not recorded")
	}
}

func TestRunDefaultAlgorithmIsLazy(t *testing.T) {
	def, _ := CaseStudy("ba", 2)
	out, err := Run(context.Background(), Job{Def: def, Options: repair.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if out.Report != nil {
		t.Fatal("verify was not requested")
	}
}

func TestRunCautious(t *testing.T) {
	def, _ := CaseStudy("ba", 2)
	out, err := Run(context.Background(), Job{Def: def, Algorithm: CautiousRepair, Options: repair.DefaultOptions(), Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Report.OK() {
		t.Fatalf("cautious result failed verification:\n%s", out.Report)
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	def, _ := CaseStudy("ba", 2)
	if _, err := Run(context.Background(), Job{Def: def, Algorithm: "magic"}); err == nil {
		t.Fatal("unknown algorithm should error")
	}
}

func TestCaseStudyValidation(t *testing.T) {
	cases := []struct {
		name string
		n    int
		ok   bool
	}{
		{"ba", 3, true},
		{"bafs", 2, true},
		{"sc", 4, true},
		{"ba", 0, false},
		{"bafs", 0, false},
		{"sc", 1, false},
		{"ring", 3, true},
		{"ring", 1, false},
		{"tmr", 0, true},
		{"xx", 3, false},
	}
	for _, tc := range cases {
		_, err := CaseStudy(tc.name, tc.n)
		if (err == nil) != tc.ok {
			t.Errorf("CaseStudy(%q, %d): err=%v, want ok=%v", tc.name, tc.n, err, tc.ok)
		}
	}
	if len(CaseStudyNames()) != 5 {
		t.Error("expected five case studies")
	}
}
