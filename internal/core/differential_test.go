package core

import (
	"context"
	"testing"

	"repro/internal/program"
	"repro/internal/repair"
	"repro/internal/verify"
	"repro/internal/witness"
)

// TestBackendsAgree is the differential gate between the two verification
// backends: on every built-in case study, the BDD fixpoint engine and the
// SAT/BMC engine must return the same verdict for every check, both on the
// repaired program (everything passes) and on the unrepaired original under
// its original invariant (the safety checks fail — which exercises the SAT
// counterexample path). Every witness either backend attaches must replay
// through the certificate checker, so a disagreement cannot hide behind a
// plausible-looking trace.
func TestBackendsAgree(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name string
		n    int
	}{
		{"ba", 2},
		{"bafs", 2},
		{"sc", 4},
		{"ring", 2},
		{"tmr", 0},
	}
	// Tallied across all cases: the gate is vacuous unless the SAT backend
	// actually searched (some targets are constant-false and answer at depth
	// zero for free) and at least one original produced a counterexample.
	var solverWork int64
	counterexamples := 0
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			def, err := CaseStudy(tc.name, tc.n)
			if err != nil {
				t.Fatal(err)
			}
			c, err := def.Compile()
			if err != nil {
				t.Fatal(err)
			}
			res, err := repair.Lazy(ctx, c, repair.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}

			// Repaired program: both backends must pass every check.
			repaired := verifyBoth(t, c, res)
			if !repaired[0].OK() || !repaired[1].OK() {
				t.Errorf("repaired result fails verification:\nBDD:\n%s\nSAT:\n%s", repaired[0], repaired[1])
			}
			solverWork += repaired[1].SAT.Conflicts + repaired[1].SAT.Decisions + repaired[1].SAT.Propagations

			// Unrepaired original under its own invariant: the fault span is
			// the whole valid state space, so the reachability checks answer
			// the interesting question — can faults drive the original program
			// into the bad set? Where they can, the SAT backend must produce a
			// counterexample trace that certifies (verifyBoth replays every
			// attached witness). The stabilization models (sc, ring) declare
			// no bad set, so their originals legitimately pass.
			orig := &repair.Result{
				Trans:     c.Trans,
				Invariant: c.Invariant,
				FaultSpan: c.Space.ValidCur(),
			}
			reports := verifyBoth(t, c, orig)
			solverWork += reports[1].SAT.Conflicts + reports[1].SAT.Decisions + reports[1].SAT.Propagations
			for _, ck := range reports[1].Checks {
				if ck.Witness != nil && ck.Witness.Kind == witness.KindSafety {
					counterexamples++
				}
			}
		})
	}
	if solverWork == 0 {
		t.Error("SAT backend recorded no solver work across the whole ladder")
	}
	if counterexamples == 0 {
		t.Error("no original produced a SAT safety counterexample — the gate never exercised the trace decoder")
	}
}

// verifyBoth runs both backends over the same result, asserts the check lists
// agree name-by-name on OK and Warning, certifies every attached witness, and
// returns the two reports (BDD first).
func verifyBoth(t *testing.T, c *program.Compiled, res *repair.Result) [2]*verify.Report {
	t.Helper()
	ctx := context.Background()
	var reports [2]*verify.Report
	for i, backend := range []verify.Backend{verify.BackendBDD, verify.BackendSAT} {
		rep, err := verify.ResultBackendEngine(ctx, program.SerialEngine(c), res, backend, true)
		if err != nil {
			t.Fatalf("backend %s: %v", backend, err)
		}
		reports[i] = rep
		for _, ck := range rep.Checks {
			if ck.Witness == nil {
				continue
			}
			if err := witness.Certify(c, res.Trans, res.Invariant, ck.Witness); err != nil {
				t.Errorf("backend %s: witness for %q does not certify: %v", backend, ck.Name, err)
			}
		}
	}
	if reports[1].SAT == nil {
		t.Fatal("SAT backend attached no solver stats")
	}
	b, s := reports[0], reports[1]
	if len(b.Checks) != len(s.Checks) {
		t.Fatalf("check counts differ: BDD %d, SAT %d", len(b.Checks), len(s.Checks))
	}
	for i := range b.Checks {
		bc, sc := b.Checks[i], s.Checks[i]
		if bc.Name != sc.Name {
			t.Fatalf("check %d name differs: BDD %q, SAT %q", i, bc.Name, sc.Name)
		}
		if bc.OK != sc.OK || bc.Warning != sc.Warning {
			t.Errorf("backends disagree on %q: BDD ok=%v warn=%v (%s), SAT ok=%v warn=%v (%s)",
				bc.Name, bc.OK, bc.Warning, bc.Detail, sc.OK, sc.Warning, sc.Detail)
		}
	}
	// A failed safety check must carry a certified counterexample under both
	// backends (the verifier attaches it to the first failing of the two
	// safety checks): evidence, not an optional extra.
	for _, rep := range reports {
		name := ""
		for _, ck := range rep.Checks {
			if !ck.OK && (ck.Name == "no reachable bad state" || ck.Name == "no reachable bad transition") {
				name = ck.Name
				break
			}
		}
		if name == "" {
			continue
		}
		if !hasWitness(rep, name) {
			t.Errorf("failed check %q carries no witness", name)
		}
	}
	return reports
}

// hasWitness reports whether the named check carries a trace.
func hasWitness(rep *verify.Report, name string) bool {
	for _, ck := range rep.Checks {
		if ck.Name == name {
			return ck.Witness != nil
		}
	}
	return false
}
