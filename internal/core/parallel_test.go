package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"repro/internal/bdd"
	"repro/internal/repair"
)

// TestWorkersDeterministic is the acceptance check for the parallel engine:
// on every built-in case study, a repair run with Workers=4 must produce a
// byte-identical verified RunReport to the serial Workers=1 run, once the
// fields that legitimately vary (worker count, node-table size, timings) are
// normalized away. Run under -race this also exercises the pool's
// owner/worker handoff for data races.
func TestWorkersDeterministic(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		alg    Algorithm
		short  bool // keep under -short
		costed bool // weighted run: cost model + minimization on
	}{
		{"ba", 3, LazyRepair, true, false},
		{"bafs", 2, LazyRepair, true, false},
		{"sc", 8, LazyRepair, true, false},
		{"ring", 2, LazyRepair, true, false},
		{"tmr", 0, LazyRepair, true, false},
		{"sc", 5, CautiousRepair, true, false},
		// The deep-diameter instance: the scheduler must fan out (not hide
		// behind its cost-aware serial path) and still match the serial run.
		{"sc", 12, LazyRepair, false, false},
		// Weighted runs: the ADD weight layer, cheapest-first cycle breaking,
		// and recovery thinning must all be worker-count-invariant — Normalized
		// keeps achieved_cost/cost_removed, so any divergence fails the byte
		// comparison.
		{"ba", 3, LazyRepair, true, true},
		{"bafs", 2, LazyRepair, true, true},
	}
	for _, tc := range cases {
		if testing.Short() && !tc.short {
			continue
		}
		title := fmt.Sprintf("%s/%s%d", tc.alg, tc.name, tc.n)
		if tc.costed {
			title += "/costed"
		}
		t.Run(title, func(t *testing.T) {
			var reports [2][]byte
			for i, workers := range []int{1, 4} {
				def, err := CaseStudy(tc.name, tc.n)
				if err != nil {
					t.Fatal(err)
				}
				opts := repair.DefaultOptions()
				opts.Workers = workers
				if tc.costed {
					opts.Costs = &repair.CostModel{Default: 1, Actions: map[string]int64{"copy": 2}}
					opts.MinimizeCost = true
				}
				// Witnesses ride along: extraction must also be byte-identical
				// across worker counts (Normalized keeps the traces).
				job := Job{Def: def, Algorithm: tc.alg, Options: opts, Verify: true, Witnesses: 4}
				out, err := Run(context.Background(), job)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if out.Workers != workers {
					t.Fatalf("outcome records %d workers, want %d", out.Workers, workers)
				}
				if out.Report == nil || !out.Report.OK() {
					t.Fatalf("workers=%d: verification failed:\n%s", workers, out.Report)
				}
				if len(out.Result.Witnesses) == 0 {
					t.Fatalf("workers=%d: no recovery demonstrations extracted", workers)
				}
				if tc.costed && !out.Result.Costed {
					t.Fatalf("workers=%d: costed job produced an uncosted result", workers)
				}
				rep := NewRunReport(job, out, tc.name, tc.n).Normalized()
				if reports[i], err = json.Marshal(rep); err != nil {
					t.Fatal(err)
				}
			}
			if string(reports[0]) != string(reports[1]) {
				t.Errorf("workers=1 and workers=4 reports differ:\n  serial:   %s\n  parallel: %s",
					reports[0], reports[1])
			}
		})
	}
}

// canonicalExports serializes the run's three result predicates after pinning
// the manager to the identity variable order. The transfer format depends
// only on the function and the order, so once the order is normalized, two
// runs computed the same functions iff these buffers are byte-identical —
// regardless of engine mode, worker count, node numbering, or how many
// reordering passes each run happened to trigger.
func canonicalExports(out *Outcome) [][]byte {
	m := out.Compiled.Space.M
	identity := make([]int, len(m.Order()))
	for i := range identity {
		identity[i] = i
	}
	m.SetOrder(identity)
	res := out.Result
	return [][]byte{m.Export(res.Trans), m.Export(res.Invariant), m.Export(res.FaultSpan)}
}

// TestSharedDeterministic is the acceptance gate for the shared-memory
// engine: on every case study, a repair+verify run on the shared node table
// with 4 workers must be indistinguishable from the serial run — the
// Normalized RunReport (verdicts, statistics, witness traces) byte-identical,
// and the synthesized predicates byte-identical under canonical export. Under
// -race this doubles as the contention check for the lock-free unique table;
// with REPRO_GC_STRESS=1 every merge barrier runs a stop-the-world
// collection. -short keeps only the small instances so the stressed ladder
// fits CI timeouts.
func TestSharedDeterministic(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		alg    Algorithm
		short  bool // keep under -short
		costed bool // weighted run: cost model + minimization on
	}{
		{"ba", 3, LazyRepair, true, false},
		{"bafs", 2, LazyRepair, false, false},
		{"sc", 8, LazyRepair, false, false},
		{"ring", 2, LazyRepair, true, false},
		{"tmr", 0, LazyRepair, true, false},
		{"sc", 5, CautiousRepair, false, false},
		// Deep diameter: fan-out rounds, fork/join under the views, and the
		// owner-side serial tail all on one instance.
		{"sc", 12, LazyRepair, false, false},
		// Weighted run: all ADD work happens on the primary manager between
		// parallel regions, so shared mode must match serial byte-for-byte on
		// the cost fields too.
		{"ba", 3, LazyRepair, true, true},
	}
	for _, tc := range cases {
		if testing.Short() && !tc.short {
			continue
		}
		title := fmt.Sprintf("%s/%s%d", tc.alg, tc.name, tc.n)
		if tc.costed {
			title += "/costed"
		}
		t.Run(title, func(t *testing.T) {
			configs := []struct {
				mode    string
				workers int
			}{
				{"", 1}, // serial baseline (the parallel machinery is unused at 1)
				{"shared", 4},
			}
			var reports [2][]byte
			var exports [2][][]byte
			for i, cfg := range configs {
				def, err := CaseStudy(tc.name, tc.n)
				if err != nil {
					t.Fatal(err)
				}
				opts := repair.DefaultOptions()
				opts.Mode = cfg.mode
				opts.Workers = cfg.workers
				if tc.costed {
					opts.Costs = &repair.CostModel{Default: 1, Actions: map[string]int64{"copy": 2}}
					opts.MinimizeCost = true
				}
				job := Job{Def: def, Algorithm: tc.alg, Options: opts, Verify: true, Witnesses: 4}
				out, err := Run(context.Background(), job)
				if err != nil {
					t.Fatalf("mode=%q workers=%d: %v", cfg.mode, cfg.workers, err)
				}
				if cfg.mode == "shared" && out.Mode != "shared" {
					t.Fatalf("outcome records mode %q, want shared", out.Mode)
				}
				if out.Report == nil || !out.Report.OK() {
					t.Fatalf("mode=%q workers=%d: verification failed:\n%s", cfg.mode, cfg.workers, out.Report)
				}
				if len(out.Result.Witnesses) == 0 {
					t.Fatalf("mode=%q workers=%d: no recovery demonstrations extracted", cfg.mode, cfg.workers)
				}
				rep := NewRunReport(job, out, tc.name, tc.n).Normalized()
				if reports[i], err = json.Marshal(rep); err != nil {
					t.Fatal(err)
				}
				exports[i] = canonicalExports(out)
			}
			if string(reports[0]) != string(reports[1]) {
				t.Errorf("serial and shared reports differ:\n  serial: %s\n  shared: %s",
					reports[0], reports[1])
			}
			for j, name := range []string{"trans", "invariant", "fault-span"} {
				if !bytes.Equal(exports[0][j], exports[1][j]) {
					t.Errorf("canonical export of %s differs between serial and shared runs (%d vs %d bytes)",
						name, len(exports[0][j]), len(exports[1][j]))
				}
			}
		})
	}
}

// TestSharedVsPartitioned pins the two parallel engines against each other at
// the same worker count on one mid-size instance: same Normalized report,
// same canonical exports. Together with TestWorkersDeterministic (partitioned
// vs serial) and TestSharedDeterministic (shared vs serial) this closes the
// triangle.
func TestSharedVsPartitioned(t *testing.T) {
	var reports [2][]byte
	var exports [2][][]byte
	for i, mode := range []string{"partitioned", "shared"} {
		def, err := CaseStudy("sc", 8)
		if err != nil {
			t.Fatal(err)
		}
		opts := repair.DefaultOptions()
		opts.Mode = mode
		opts.Workers = 4
		job := Job{Def: def, Algorithm: LazyRepair, Options: opts, Verify: true, Witnesses: 4}
		out, err := Run(context.Background(), job)
		if err != nil {
			t.Fatalf("mode=%s: %v", mode, err)
		}
		if out.Mode != mode {
			t.Fatalf("outcome records mode %q, want %q", out.Mode, mode)
		}
		rep := NewRunReport(job, out, "sc", 8).Normalized()
		if reports[i], err = json.Marshal(rep); err != nil {
			t.Fatal(err)
		}
		exports[i] = canonicalExports(out)
	}
	if string(reports[0]) != string(reports[1]) {
		t.Errorf("partitioned and shared reports differ:\n  partitioned: %s\n  shared: %s",
			reports[0], reports[1])
	}
	for j, name := range []string{"trans", "invariant", "fault-span"} {
		if !bytes.Equal(exports[0][j], exports[1][j]) {
			t.Errorf("canonical export of %s differs between engines", name)
		}
	}
}

// TestSharedBudget checks that a node budget armed on a shared-mode run
// surfaces as a clean *bdd.BudgetError from Run — the budget check fires at
// the stop-the-world barrier after a parallel region, unwinds through the
// worker pool as a panic, and must come back as an error at the run boundary,
// exactly as in the other modes.
func TestSharedBudget(t *testing.T) {
	def, err := CaseStudy("sc", 8)
	if err != nil {
		t.Fatal(err)
	}
	opts := repair.DefaultOptions()
	opts.Mode = "shared"
	opts.Workers = 4
	opts.NodeBudget = 100 // far below the compiled model's working set
	_, err = Run(context.Background(), Job{Def: def, Algorithm: LazyRepair, Options: opts})
	var be *bdd.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("Run with blown shared-mode budget returned %v, want *bdd.BudgetError", err)
	}
}
