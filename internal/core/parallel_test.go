package core

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/repair"
)

// TestWorkersDeterministic is the acceptance check for the parallel engine:
// on every built-in case study, a repair run with Workers=4 must produce a
// byte-identical verified RunReport to the serial Workers=1 run, once the
// fields that legitimately vary (worker count, node-table size, timings) are
// normalized away. Run under -race this also exercises the pool's
// owner/worker handoff for data races.
func TestWorkersDeterministic(t *testing.T) {
	cases := []struct {
		name string
		n    int
		alg  Algorithm
	}{
		{"ba", 3, LazyRepair},
		{"bafs", 2, LazyRepair},
		{"sc", 8, LazyRepair},
		{"ring", 2, LazyRepair},
		{"tmr", 0, LazyRepair},
		{"sc", 5, CautiousRepair},
	}
	for _, tc := range cases {
		t.Run(string(tc.alg)+"/"+tc.name, func(t *testing.T) {
			var reports [2][]byte
			for i, workers := range []int{1, 4} {
				def, err := CaseStudy(tc.name, tc.n)
				if err != nil {
					t.Fatal(err)
				}
				opts := repair.DefaultOptions()
				opts.Workers = workers
				// Witnesses ride along: extraction must also be byte-identical
				// across worker counts (Normalized keeps the traces).
				job := Job{Def: def, Algorithm: tc.alg, Options: opts, Verify: true, Witnesses: 4}
				out, err := Run(context.Background(), job)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if out.Workers != workers {
					t.Fatalf("outcome records %d workers, want %d", out.Workers, workers)
				}
				if out.Report == nil || !out.Report.OK() {
					t.Fatalf("workers=%d: verification failed:\n%s", workers, out.Report)
				}
				if len(out.Result.Witnesses) == 0 {
					t.Fatalf("workers=%d: no recovery demonstrations extracted", workers)
				}
				rep := NewRunReport(job, out, tc.name, tc.n).Normalized()
				if reports[i], err = json.Marshal(rep); err != nil {
					t.Fatal(err)
				}
			}
			if string(reports[0]) != string(reports[1]) {
				t.Errorf("workers=1 and workers=4 reports differ:\n  serial:   %s\n  parallel: %s",
					reports[0], reports[1])
			}
		})
	}
}
