package core

import (
	"context"
	"testing"
)

// TestFixpointCounters asserts that the scheduler's observability counters
// (RunReport fix_* fields) are populated by a run and stripped by Normalized —
// they describe how the fixpoints were computed, not what they computed.
func TestFixpointCounters(t *testing.T) {
	def, err := CaseStudy("sc", 4)
	if err != nil {
		t.Fatal(err)
	}
	job := Job{Def: def, Algorithm: LazyRepair, Verify: false}
	out, err := Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunReport(job, out, "sc", 4)
	if r.FixRounds <= 0 {
		t.Errorf("FixRounds = %d, want > 0", r.FixRounds)
	}
	if r.FixImages <= 0 {
		t.Errorf("FixImages = %d, want > 0", r.FixImages)
	}
	if r.FixFrontierPeak <= 0 {
		t.Errorf("FixFrontierPeak = %d, want > 0", r.FixFrontierPeak)
	}
	if r.FixFrontierFinal <= 0 {
		t.Errorf("FixFrontierFinal = %d, want > 0", r.FixFrontierFinal)
	}
	// Serial runs spawn no fork/join tasks.
	if r.FixOpSpawns != 0 || r.FixOpSteals != 0 {
		t.Errorf("serial run has op counters: spawns=%d steals=%d", r.FixOpSpawns, r.FixOpSteals)
	}
	n := r.Normalized()
	if n.FixRounds != 0 || n.FixImages != 0 || n.FixFrontierPeak != 0 ||
		n.FixFrontierFinal != 0 || n.FixOpSpawns != 0 || n.FixOpSteals != 0 {
		t.Errorf("Normalized kept scheduler counters: %+v", n)
	}
}

// TestFixpointCountersShared asserts the fork/join counters move on a shared
// multi-worker run: at least one reachability round must fan out and spawn
// stealable apply branches.
func TestFixpointCountersShared(t *testing.T) {
	def, err := CaseStudy("sc", 8)
	if err != nil {
		t.Fatal(err)
	}
	job := Job{Def: def, Algorithm: LazyRepair, Verify: false}
	job.Options.Mode = "shared"
	job.Options.Workers = 4
	out, err := Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunReport(job, out, "sc", 8)
	if r.FixRounds <= 0 || r.FixImages <= 0 {
		t.Errorf("rounds=%d images=%d, want > 0", r.FixRounds, r.FixImages)
	}
	if r.FixOpSpawns <= 0 {
		t.Errorf("FixOpSpawns = %d, want > 0 (fork sites never fired)", r.FixOpSpawns)
	}
	if r.FixOpSteals < 0 || r.FixOpSteals > r.FixOpSpawns {
		t.Errorf("implausible steal count %d for %d spawns", r.FixOpSteals, r.FixOpSpawns)
	}
}
