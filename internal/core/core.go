// Package core orchestrates repair jobs: it compiles a distributed-program
// definition, runs the selected repair algorithm (lazy or cautious),
// optionally verifies the output against the paper's definitions, and
// gathers timing statistics in the shape of the paper's tables.
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bdd"
	"repro/internal/casestudies"
	"repro/internal/program"
	"repro/internal/repair"
	"repro/internal/sat"
	"repro/internal/verify"
	"repro/internal/witness"
)

// Algorithm selects a repair algorithm.
type Algorithm string

// The implemented repair algorithms.
const (
	// LazyRepair is the paper's two-step Algorithm 1.
	LazyRepair Algorithm = "lazy"
	// CautiousRepair is the baseline that maintains realizability at every
	// intermediate step (Section IV).
	CautiousRepair Algorithm = "cautious"
)

// Job describes one repair run.
type Job struct {
	Def       *program.Def
	Algorithm Algorithm
	Options   repair.Options
	// Verify runs the independent checker on the result.
	Verify bool
	// Backend selects the verification backend: verify.BackendBDD (the
	// default, also selected by the empty string) or verify.BackendSAT, which
	// routes the reachability checks and the safety/deadlock witness search
	// through bounded model checking over the CDCL solver. The repair
	// algorithms themselves always run on the BDD engine.
	Backend verify.Backend
	// Witnesses, when positive, asks for up to that many recovery
	// demonstrations on success (one per fault action) in
	// Result.Witnesses, and attaches failure traces to failed verifier
	// checks (when Verify is also set). Extraction is deterministic, so the
	// traces are byte-identical across worker counts.
	Witnesses int
	// Progress, when non-nil, receives phase-start notifications as the run
	// advances: PhaseCompile, then PhaseStep1/PhaseStep2 per outer repair
	// iteration (relayed through Options.Phasef unless the caller set that
	// hook itself), then PhaseWitness and PhaseVerify when requested. The
	// daemon streams these to clients; the outcome never depends on them.
	// Called sequentially from the goroutine running the job.
	Progress func(phase string)
}

// The phase names reported through Job.Progress, matching the per-phase
// counters of RunReport (compile_ns, step1_ns, step2_ns, witness_ns,
// verify_ns).
const (
	PhaseCompile = "compile"
	PhaseStep1   = "step1"
	PhaseStep2   = "step2"
	PhaseWitness = "witness"
	PhaseVerify  = "verify"
)

// Outcome is the result of a Job.
type Outcome struct {
	Compiled *program.Compiled
	Result   *repair.Result
	Report   *verify.Report // nil unless Job.Verify
	// SATStats is the solver work summed over the verifier's bounded
	// model-checking queries; nil unless Job.Verify ran under BackendSAT.
	SATStats *sat.Stats

	CompileTime time.Duration
	VerifyTime  time.Duration // zero unless Job.Verify
	WitnessTime time.Duration // zero unless Job.Witnesses > 0
	Workers     int           // effective engine worker count
	Mode        string        // effective engine mode ("partitioned" or "shared")

	// Node-lifetime counters of the run's owning manager (plus the peak
	// across worker managers), captured after the job finishes.
	NodesLive   int64 // live BDD nodes when the job completed
	PeakNodes   int64 // high-water mark of live nodes across all managers
	GCRuns      int64 // collections performed by the owning manager
	NodesFreed  int64 // nodes reclaimed by the owning manager
	ReorderRuns int64 // sifting passes run by the owning manager

	// Fixpoint is the unified reachability scheduler's cumulative work
	// counters (rounds, frontier images, frontier sizes, fork/join
	// spawn/steal counts), captured after the job finishes.
	Fixpoint program.FixpointStats
}

// Run executes a repair job. The context bounds the synthesis: a deadline or
// cancellation aborts the repair algorithms at their next fixpoint-iteration
// boundary with an error wrapping ctx.Err().
//
// One parallel engine (sized by Job.Options.Workers; 0 selects GOMAXPROCS)
// is built per run and shared between the synthesis and the verifier, so the
// worker clones are compiled once.
func Run(ctx context.Context, job Job) (out *Outcome, err error) {
	progress := func(phase string) {
		if job.Progress != nil {
			job.Progress(phase)
		}
	}
	if job.Options.Phasef == nil {
		job.Options.Phasef = job.Progress
	}
	progress(PhaseCompile)
	t0 := time.Now()
	compiled, err := job.Def.Compile()
	if err != nil {
		return nil, err
	}
	eng, err := program.NewEngineMode(compiled, program.Mode(job.Options.Mode), job.Options.Workers)
	if err != nil {
		return nil, err
	}
	job.Options.ApplyEngine(eng)
	// A blown budget surfaces as a *bdd.BudgetError panic at a collection
	// safe point (or pre-converted to an error by the worker pool); convert
	// it to a clean failure here, the run boundary. The recovery is
	// unconditional: budgets can be armed below this frame (a manager
	// carried over from an earlier bounded run), so gating it on this job's
	// own NodeBudget would let those panics escape.
	defer func() {
		if r := recover(); r != nil {
			be, ok := r.(*bdd.BudgetError)
			if !ok {
				panic(r)
			}
			out, err = nil, fmt.Errorf("core: %w", be)
		}
	}()
	out = &Outcome{Compiled: compiled, CompileTime: time.Since(t0), Workers: eng.Workers(), Mode: string(eng.Mode())}
	defer func() {
		if out != nil {
			st := compiled.Space.M.Stats()
			out.NodesLive = st.NodesLive
			out.PeakNodes = eng.PeakLive()
			out.GCRuns = st.GCRuns
			out.NodesFreed = st.NodesFreed
			out.ReorderRuns = st.ReorderRuns
			out.Fixpoint = eng.FixpointStats()
		}
	}()

	var res *repair.Result
	switch job.Algorithm {
	case LazyRepair, "":
		res, err = repair.LazyEngine(ctx, eng, job.Options)
	case CautiousRepair:
		res, err = repair.CautiousEngine(ctx, eng, job.Options)
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q", job.Algorithm)
	}
	if err != nil {
		return nil, err
	}
	out.Result = res

	if job.Witnesses > 0 {
		progress(PhaseWitness)
		t1 := time.Now()
		demos, err := witness.RecoveryDemos(ctx, compiled, res.Trans, res.Invariant, res.FaultSpan, job.Witnesses)
		if err != nil {
			return nil, err
		}
		res.Witnesses = demos
		out.WitnessTime = time.Since(t1)
	}

	if job.Verify {
		progress(PhaseVerify)
		t1 := time.Now()
		backend, err := verify.ParseBackend(string(job.Backend))
		if err != nil {
			return nil, err
		}
		rep, err := verify.ResultBackendEngine(ctx, eng, res, backend, job.Witnesses > 0)
		if err != nil {
			return nil, err
		}
		out.Report = rep
		out.SATStats = rep.SAT
		out.VerifyTime = time.Since(t1)
	}
	return out, nil
}

// CaseStudy builds one of the paper's case studies by name:
// "ba" (Byzantine agreement, n non-generals), "bafs" (Byzantine agreement
// with fail-stop faults), "sc" (stabilizing chain, n cells), or "ring"
// (Dijkstra's K-state token ring, n processes with counter domain n+1 — the
// extension benchmark).
func CaseStudy(name string, n int) (*program.Def, error) {
	switch name {
	case "ba":
		if n < 1 {
			return nil, fmt.Errorf("core: ba requires n ≥ 1")
		}
		return casestudies.BA(n), nil
	case "bafs":
		if n < 1 {
			return nil, fmt.Errorf("core: bafs requires n ≥ 1")
		}
		return casestudies.BAFS(n), nil
	case "sc":
		if n < 2 {
			return nil, fmt.Errorf("core: sc requires n ≥ 2")
		}
		return casestudies.SC(n), nil
	case "ring":
		if n < 2 {
			return nil, fmt.Errorf("core: ring requires n ≥ 2")
		}
		return casestudies.TokenRing(n, n+1), nil
	case "tmr":
		return casestudies.TMR(), nil
	default:
		return nil, fmt.Errorf("core: unknown case study %q (want ba, bafs, sc, ring, or tmr)", name)
	}
}

// CaseStudyNames lists the available case-study names.
func CaseStudyNames() []string { return []string{"ba", "bafs", "sc", "ring", "tmr"} }
