package core

import (
	"repro/internal/sat"
	"repro/internal/verify"
	"repro/internal/witness"
)

// RunReport is the machine-readable summary of one repair run: the paper's
// table columns (reachable states, Step 1 / Step 2 / total times, BDD nodes)
// plus the verification verdict. It is the single JSON encoding shared by
// `ftrepair -json`, the ftrepaird daemon's job results, and the benchjson
// perf snapshots, so downstream tooling parses one shape everywhere.
type RunReport struct {
	// Model is the program's declared name; Case/N identify a built-in
	// case-study instance when the run came from one.
	Model string `json:"model"`
	Case  string `json:"case,omitempty"`
	N     int    `json:"n,omitempty"`

	Algorithm   string `json:"algorithm"`
	Pure        bool   `json:"pure,omitempty"`         // reachability heuristic disabled
	DeferCycles bool   `json:"defer_cycles,omitempty"` // cycle-breaking after Step 2
	Workers     int    `json:"workers,omitempty"`      // effective engine worker count
	EngineMode  string `json:"engine_mode,omitempty"`  // "partitioned" or "shared"
	// Backend is the verification backend ("bdd" or "sat"); empty when
	// verification was not requested. Kept by Normalized: the verdict is
	// backend-independent, but which engine produced it is part of the
	// report's identity.
	Backend string `json:"backend,omitempty"`

	StateBits       int     `json:"state_bits"`
	States          float64 `json:"states"`
	ReachableStates float64 `json:"reachable_states"`
	InvariantStates float64 `json:"invariant_states"`
	FaultSpanStates float64 `json:"fault_span_states"`
	OuterIterations int     `json:"outer_iterations"`
	BDDNodes        int     `json:"bdd_nodes"`

	// Node-lifetime counters (see internal/bdd's collector): live nodes at
	// job completion, the high-water mark across the run's managers, and the
	// owning manager's collection activity.
	BDDNodesLive   int64 `json:"bdd_nodes_live,omitempty"`
	BDDPeakNodes   int64 `json:"bdd_peak_nodes,omitempty"`
	BDDGCRuns      int64 `json:"bdd_gc_runs,omitempty"`
	BDDNodesFreed  int64 `json:"bdd_nodes_freed,omitempty"`
	BDDReorderRuns int64 `json:"bdd_reorder_runs,omitempty"`

	// Fixpoint-scheduler work counters (internal/program's frontier-chained
	// scheduler): rounds and frontier images across every reachability
	// fixpoint of the run, the peak and final frontier sizes in BDD nodes,
	// and the shared engine's fork/join spawn/steal counts.
	FixRounds        int64 `json:"fix_rounds,omitempty"`
	FixImages        int64 `json:"fix_images,omitempty"`
	FixFrontierPeak  int64 `json:"fix_frontier_peak,omitempty"`
	FixFrontierFinal int64 `json:"fix_frontier_final,omitempty"`
	FixOpSpawns      int64 `json:"fix_op_spawns,omitempty"`
	FixOpSteals      int64 `json:"fix_op_steals,omitempty"`

	CompileNS int64 `json:"compile_ns"`
	Step1NS   int64 `json:"step1_ns"`
	Step2NS   int64 `json:"step2_ns"`
	TotalNS   int64 `json:"total_ns"`
	VerifyNS  int64 `json:"verify_ns,omitempty"`
	WitnessNS int64 `json:"witness_ns,omitempty"`

	// SAT holds the CDCL solver's work counters (conflicts, decisions,
	// propagations, learned clauses, restarts, max decision level) summed
	// over the verifier's bounded model-checking queries. Nil unless the run
	// verified under the SAT backend. Zeroed by Normalized: solver effort is
	// performance telemetry, not part of the verdict.
	SAT *sat.Stats `json:"sat,omitempty"`

	// Verified is nil when verification was not requested; otherwise the
	// verifier's verdict, with the individual checks in Checks.
	Verified *bool          `json:"verified,omitempty"`
	Checks   []verify.Check `json:"checks,omitempty"`

	// Witnesses holds the recovery demonstrations extracted when the job
	// asked for them (Job.Witnesses > 0). Deterministic: a function of the
	// synthesized program alone, so Normalized keeps them.
	Witnesses []*witness.Trace `json:"witnesses,omitempty"`

	// Cost-aware repair outputs (see internal/repair's cost.go). Costed is
	// true when the job carried a cost model; MinCost is true when the
	// synthesis additionally minimized. AchievedCost is the exact weighted
	// count of the kept transitions leaving the repaired invariant,
	// CostRemoved the weighted count of original transitions the repair
	// deleted. Kept by Normalized: both are functions of the synthesized
	// program and the weight layer, identical across worker counts and
	// engine modes.
	Costed       bool    `json:"costed,omitempty"`
	MinCost      bool    `json:"min_cost,omitempty"`
	AchievedCost float64 `json:"achieved_cost,omitempty"`
	CostRemoved  float64 `json:"cost_removed,omitempty"`
}

// NewRunReport summarizes a finished job. caseName and n may be zero values
// for models that did not come from a built-in case study.
func NewRunReport(job Job, out *Outcome, caseName string, n int) RunReport {
	s := out.Compiled.Space
	res := out.Result
	alg := job.Algorithm
	if alg == "" {
		alg = LazyRepair
	}
	r := RunReport{
		Model:       job.Def.Name,
		Case:        caseName,
		N:           n,
		Algorithm:   string(alg),
		Pure:        !job.Options.ReachabilityHeuristic,
		DeferCycles: job.Options.DeferCycleBreaking,
		Workers:     out.Workers,
		EngineMode:  out.Mode,

		StateBits:       s.TotalBits(),
		States:          s.CountStates(s.ValidCur()),
		ReachableStates: res.Stats.ReachableStates,
		InvariantStates: s.CountStates(res.Invariant),
		FaultSpanStates: s.CountStates(res.FaultSpan),
		OuterIterations: res.Stats.OuterIterations,
		BDDNodes:        res.Stats.BDDNodes,

		BDDNodesLive:   out.NodesLive,
		BDDPeakNodes:   out.PeakNodes,
		BDDGCRuns:      out.GCRuns,
		BDDNodesFreed:  out.NodesFreed,
		BDDReorderRuns: out.ReorderRuns,

		FixRounds:        out.Fixpoint.Rounds,
		FixImages:        out.Fixpoint.Images,
		FixFrontierPeak:  out.Fixpoint.PeakFrontier,
		FixFrontierFinal: out.Fixpoint.FinalFrontier,
		FixOpSpawns:      out.Fixpoint.OpSpawns,
		FixOpSteals:      out.Fixpoint.OpSteals,

		CompileNS: out.CompileTime.Nanoseconds(),
		Step1NS:   res.Stats.Step1.Nanoseconds(),
		Step2NS:   res.Stats.Step2.Nanoseconds(),
		TotalNS:   res.Stats.Total.Nanoseconds(),
		VerifyNS:  out.VerifyTime.Nanoseconds(),
		WitnessNS: out.WitnessTime.Nanoseconds(),

		Witnesses: res.Witnesses,

		Costed:       res.Costed,
		MinCost:      res.Costed && job.Options.MinimizeCost,
		AchievedCost: res.AchievedCost,
		CostRemoved:  res.CostRemoved,
	}
	if out.Report != nil {
		ok := out.Report.OK()
		r.Verified = &ok
		r.Checks = out.Report.Checks
		backend, err := verify.ParseBackend(string(job.Backend))
		if err != nil {
			backend = job.Backend // unvalidated jobs render verbatim
		}
		r.Backend = string(backend)
		r.SAT = out.SATStats
	}
	return r
}

// Normalized strips the fields that legitimately vary between runs of the
// same synthesis problem — wall-clock times, the worker count, and the BDD
// node count (the owning manager's node table evolves differently when
// results arrive as imported buffers instead of locally computed
// intermediates). Everything left is a function of the synthesized program
// alone, so two reports from the same problem must be identical after
// normalization regardless of Workers — the determinism contract the
// parallel engine is tested against.
func (r RunReport) Normalized() RunReport {
	r.Workers = 0
	r.EngineMode = "" // like Workers: how the result was computed, not what it is
	r.BDDNodes = 0
	// Node-lifetime counters vary with worker count, GC cadence, and
	// reordering cadence exactly like BDDNodes does.
	r.BDDNodesLive, r.BDDPeakNodes, r.BDDGCRuns, r.BDDNodesFreed = 0, 0, 0, 0
	r.BDDReorderRuns = 0
	// Scheduler work counters: rounds, images, and frontier sizes depend on
	// the worker count (blocks per round) and spawn/steal counts on the
	// steal schedule — how the fixpoint was computed, not what it is.
	r.FixRounds, r.FixImages, r.FixFrontierPeak, r.FixFrontierFinal = 0, 0, 0, 0
	r.FixOpSpawns, r.FixOpSteals = 0, 0
	r.CompileNS, r.Step1NS, r.Step2NS, r.TotalNS, r.VerifyNS = 0, 0, 0, 0, 0
	r.WitnessNS = 0
	// Solver work counters are performance telemetry, like the BDD node
	// counters above; the verdict they accompany is what must be identical.
	r.SAT = nil
	// Witnesses stay: extraction is deterministic, so they are part of the
	// cross-worker-count identity the determinism tests assert. The cost
	// fields stay for the same reason: exact weighted counts over the
	// synthesized relation, not telemetry.
	return r
}
