package synchronous

import (
	"fmt"
	"testing"

	"repro/internal/bdd"
	"repro/internal/casestudies"
	"repro/internal/expr"
	"repro/internal/program"
	"repro/internal/repair"
	"repro/internal/symbolic"
)

// syncChain is SC(n) reinterpreted under barrier semantics.
func syncChain(n int) *program.Def { return casestudies.SC(n) }

func TestComposeOfActionProgram(t *testing.T) {
	// Two counters that increment in lockstep: x := 1 when 0, y := 1 when 0.
	d := &program.Def{
		Name: "lockstep",
		Vars: []symbolic.VarSpec{{Name: "x", Domain: 2}, {Name: "y", Domain: 2}},
		Processes: []*program.Process{
			{Name: "px", Read: []string{"x"}, Write: []string{"x"},
				Actions: []program.Action{{Guard: expr.Eq("x", 0), Updates: []program.Update{program.Set("x", 1)}}}},
			{Name: "py", Read: []string{"y"}, Write: []string{"y"},
				Actions: []program.Action{{Guard: expr.Eq("y", 0), Updates: []program.Update{program.Set("y", 1)}}}},
		},
		Invariant: expr.True,
	}
	c := d.MustCompile()
	sys := New(c)
	s := c.Space

	// From (0,0) the synchronous step goes to (1,1) — both move at once.
	from, _ := s.State(map[string]int{"x": 0, "y": 0})
	img := s.Image(from, sys.Trans)
	want, _ := s.State(map[string]int{"x": 1, "y": 1})
	if img != want {
		t.Fatalf("synchronous image of (0,0) = %s", s.M.String(img))
	}
	// From (1,0) only py moves; px stutters.
	from2, _ := s.State(map[string]int{"x": 1, "y": 0})
	img2 := s.Image(from2, sys.Trans)
	want2, _ := s.State(map[string]int{"x": 1, "y": 1})
	if img2 != want2 {
		t.Fatalf("synchronous image of (1,0) = %s", s.M.String(img2))
	}
	// (1,1) stutters in place.
	from3, _ := s.State(map[string]int{"x": 1, "y": 1})
	if s.Image(from3, sys.Trans) != from3 {
		t.Fatal("terminal state should stutter")
	}
}

func TestComposedProgramIsRealizable(t *testing.T) {
	for _, n := range []int{3, 4} {
		c := syncChain(n).MustCompile()
		sys := New(c)
		if !sys.Realizable(sys.Trans) {
			t.Fatalf("SC(%d): synchronous composition of the original program must be realizable", n)
		}
	}
	// A transition where an unowned variable changes is not realizable.
	c := syncChain(3).MustCompile()
	sys := New(c)
	s := c.Space
	badTrans, _ := s.Transition(
		map[string]int{"fc": 0, "x.0": 1, "x.1": 1, "x.2": 1},
		map[string]int{"fc": 0, "x.0": 2, "x.1": 1, "x.2": 1}) // writes x.0: no owner
	if sys.Realizable(badTrans) {
		t.Fatal("changing an unowned variable must be unrealizable")
	}
}

func TestRealizableRejectsNonProduct(t *testing.T) {
	// Two independent single-writer bits; a relation that correlates their
	// simultaneous updates cannot be a product of local choices.
	d := &program.Def{
		Name: "corr",
		Vars: []symbolic.VarSpec{{Name: "x", Domain: 2}, {Name: "y", Domain: 2}},
		Processes: []*program.Process{
			{Name: "px", Read: []string{"x"}, Write: []string{"x"}},
			{Name: "py", Read: []string{"y"}, Write: []string{"y"}},
		},
		Invariant: expr.True,
	}
	c := d.MustCompile()
	sys := New(c)
	s := c.Space
	m := s.M
	// From (0,0): allow (1,0) and (0,1) but not (1,1): px's choice and py's
	// choice would have to be correlated.
	t1, _ := s.Transition(map[string]int{"x": 0, "y": 0}, map[string]int{"x": 1, "y": 0})
	t2, _ := s.Transition(map[string]int{"x": 0, "y": 0}, map[string]int{"x": 0, "y": 1})
	if sys.Realizable(m.Or(t1, t2)) {
		t.Fatal("correlated choices should not be synchronously realizable")
	}
	// Adding (1,1) and (0,0)→(0,0) completes the product and realizes it.
	t3, _ := s.Transition(map[string]int{"x": 0, "y": 0}, map[string]int{"x": 1, "y": 1})
	t4, _ := s.Transition(map[string]int{"x": 0, "y": 0}, map[string]int{"x": 0, "y": 0})
	if !sys.Realizable(m.OrN(t1, t2, t3, t4)) {
		t.Fatal("the full product should be realizable")
	}
}

func TestLazySyncChainStabilizes(t *testing.T) {
	for _, n := range []int{3, 4, 5} {
		c := syncChain(n).MustCompile()
		sys := New(c)
		res, err := Lazy(sys, repair.DefaultOptions())
		if err != nil {
			t.Fatalf("SC(%d) sync: %v", n, err)
		}
		s := c.Space
		m := s.M
		if !m.Implies(c.Invariant, res.Invariant) {
			t.Fatalf("SC(%d) sync: invariant shrank", n)
		}
		if !sys.Realizable(m.Diff(res.Trans, s.Identity())) && !sys.Realizable(res.Trans) {
			t.Fatalf("SC(%d) sync: result not synchronously realizable", n)
		}
		// Safety: no reachable transition violates the copy-left discipline.
		reach := s.ReachableParts(res.Invariant, []bdd.Node{res.Trans, c.Fault})
		if m.AndN(res.Trans, reach, c.BadTrans) != bdd.False {
			t.Fatalf("SC(%d) sync: reachable bad transition", n)
		}
		// Recovery: from every fault-span state the program alone reaches
		// the invariant, and it does so within n-1 synchronous rounds from
		// single-corruption states (the parallel speedup).
		outside := m.Diff(res.FaultSpan, res.Invariant)
		canReach := s.BackwardReachableParts(res.Invariant, []bdd.Node{m.Diff(res.Trans, s.Identity())})
		if !m.Implies(outside, canReach) {
			t.Fatalf("SC(%d) sync: some span state cannot recover", n)
		}
	}
}

func TestSyncChainParallelRecovery(t *testing.T) {
	// The synchronous chain heals a fully-corrupted suffix in parallel: the
	// wave moves every cell per round, so recovery needs at most n-1 rounds.
	n := 5
	c := syncChain(n).MustCompile()
	sys := New(c)
	res, err := Lazy(sys, repair.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := c.Space
	m := s.M
	vals := map[string]int{"fc": 0}
	for i := 0; i < n; i++ {
		vals[fmt.Sprintf("x.%d", i)] = i % 10 // fully corrupted
	}
	state, _ := s.State(vals)
	if m.And(state, res.FaultSpan) == bdd.False {
		t.Skip("fully corrupted state pruned from span")
	}
	steps := 0
	for m.And(state, res.Invariant) == bdd.False {
		img := s.Image(state, m.Diff(res.Trans, s.Identity()))
		if img == bdd.False {
			t.Fatal("recovery stuck")
		}
		// Follow the maximal-parallel branch: all processes moved; any
		// branch works for this bound, take one.
		cube := m.PickCube(img)
		next := map[string]int{}
		for _, v := range s.Vars {
			next[v.Name] = v.DecodeCube(cube)
		}
		state, _ = s.State(next)
		steps++
		if steps > 3*n {
			t.Fatalf("no convergence after %d rounds", steps)
		}
	}
	t.Logf("synchronous recovery in %d rounds (asynchronous needs up to %d copies)", steps, n*n)
}

func TestLazySyncRespectsReadRestrictions(t *testing.T) {
	// The synthesized local relation of process i may depend only on
	// x.{i-1}, x.i: projecting over a readable variable's values must
	// change the relation (sanity), while the stored locals are already
	// observation-closed by construction — verify via Realizable.
	c := syncChain(4).MustCompile()
	sys := New(c)
	res, err := Lazy(sys, repair.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := c.Space
	m := s.M
	for j, local := range res.Locals {
		p := c.Procs[j]
		// The local relation's support must lie within readable current
		// bits and written next bits.
		allowed := map[int]bool{}
		for _, v := range s.Vars {
			if p.Read[v.Name] {
				for _, l := range v.CurLevels() {
					allowed[l] = true
				}
			}
			if p.Write[v.Name] {
				for _, l := range v.NextLevels() {
					allowed[l] = true
				}
			}
		}
		for _, l := range m.Support(local) {
			if !allowed[l] {
				t.Fatalf("process %s: local relation depends on unobservable level %d (%s)",
					p.Name, l, m.VarName(l))
			}
		}
	}
}
