// Package synchronous extends lazy repair to synchronous (barrier)
// semantics, the setting the paper's conclusion highlights: all processes
// read their readable variables, wait for a barrier, then update their
// written variables simultaneously, and repeat. Lazy repair carries over
// because Step 1 never looked at realizability; only the realizability
// notion — and hence Step 2 — changes. (The paper notes no cautious repair
// algorithm is known for synchronous semantics.)
//
// Realizability here means the global transition relation factors into
// per-process local relations: process j contributes a relation from its
// readable pre-state to its written variables' post-state, a process with no
// applicable row keeps its variables, and a global transition is exactly a
// simultaneous combination of one local choice per process (unowned
// variables never change). Step 2 therefore projects the Step-1 program onto
// each process's observation, recomposes the product, and removes local rows
// until the product is contained in the allowed behavior — removal only,
// exactly in the lazy spirit.
package synchronous

import (
	"errors"
	"time"

	"repro/internal/bdd"
	"repro/internal/program"
	"repro/internal/repair"
)

// ErrNotRepairable mirrors repair.ErrNotRepairable for the synchronous case.
var ErrNotRepairable = errors.New("synchronous: cannot add fault-tolerance")

// ErrNoConvergence is returned when the outer loop exceeds its bound.
var ErrNoConvergence = errors.New("synchronous: repair loop did not converge")

// System is the synchronous view of a compiled program.
type System struct {
	C *program.Compiled

	// Owned is the conjunction "every variable written by no process is
	// unchanged" — the write universe of a synchronous step.
	Owned bdd.Node
	// Trans is the synchronous composition of the original program's
	// actions: every process simultaneously applies one enabled action or
	// keeps its variables.
	Trans bdd.Node

	// locals[j] is λ_j: process j's local relation over (full current
	// state, next values of W_j); the frame on other variables is removed.
	locals []bdd.Node
	// writeCubes[j] is the cube of process j's written next-state bits.
	writeCubes []bdd.Node
	// keep[j] is "process j's written variables unchanged".
	keep []bdd.Node
	// obsCube[j] is the cube of everything process j cannot observe in a
	// local row: unreadable current bits and all next bits outside W_j.
	obsCube []bdd.Node
}

// New builds the synchronous view of a compiled program.
func New(c *program.Compiled) *System {
	s := c.Space
	m := s.M
	sys := &System{C: c}
	// The System's relations live as long as the manager; root them
	// permanently (like a Compiled's fields).
	sc := m.Protect()
	defer sc.Release()

	owned := make(map[string]bool)
	for _, p := range c.Procs {
		for name := range p.Write {
			owned[name] = true
		}
	}
	ownedS := sc.Slot(bdd.True)
	for _, v := range s.Vars {
		if !owned[v.Name] {
			ownedS.Set(m.And(ownedS.Node(), v.Unchanged()))
		}
	}
	sys.Owned = m.Ref(ownedS.Node())

	for _, p := range c.Procs {
		keepWS := sc.Slot(bdd.True)
		var writeLevels []int
		var frameCube []int
		for _, v := range s.Vars {
			if p.Write[v.Name] {
				writeLevels = append(writeLevels, v.NextLevels()...)
				keepWS.Set(m.And(keepWS.Node(), v.Unchanged()))
			} else {
				frameCube = append(frameCube, v.NextLevels()...)
			}
		}
		keepW := keepWS.Node()
		// λ_j: strip the "others unchanged" frame from the compiled δ_j by
		// projecting away every next bit outside W_j.
		lambda := sc.Keep(m.Exists(p.Trans, m.Cube(frameCube)))
		// A process with no enabled action keeps its variables.
		enabled := m.AndExists(p.Trans, s.ValidTrans(), s.NextCube())
		lambda = m.Or(lambda, m.And(m.Not(enabled), keepW))

		sys.locals = append(sys.locals, m.Ref(lambda))
		sys.writeCubes = append(sys.writeCubes, m.Ref(m.Cube(writeLevels)))
		sys.keep = append(sys.keep, m.Ref(keepW))

		var obs []int
		for _, v := range s.Vars {
			if !p.Read[v.Name] {
				obs = append(obs, v.CurLevels()...)
			}
			if !p.Write[v.Name] {
				obs = append(obs, v.NextLevels()...)
			}
		}
		sys.obsCube = append(sys.obsCube, m.Ref(m.Cube(obs)))
	}

	sys.Trans = m.Ref(sys.compose(sys.locals))
	return sys
}

// compose builds the global synchronous relation from local relations:
// the conjunction of all locals, with unowned variables unchanged.
func (sys *System) compose(locals []bdd.Node) bdd.Node {
	m := sys.C.Space.M
	out := m.NewRooted(m.And(sys.Owned, sys.C.Space.ValidTrans()))
	defer out.Release()
	for _, l := range locals {
		out.Set(m.And(out.Node(), l))
	}
	return out.Node()
}

// ProjectLocal extracts process j's local relation from a global transition
// set: the pairs (readable pre-state, W_j post-values) that occur in delta,
// closed over everything j cannot observe. This is the synchronous analog of
// the read-restriction group.
func (sys *System) ProjectLocal(j int, delta bdd.Node) bdd.Node {
	m := sys.C.Space.M
	return m.Exists(m.And(delta, sys.C.Space.ValidTrans()), sys.obsCube[j])
}

// Realizable reports whether delta is exactly a synchronous composition of
// its own per-process projections (the synchronous realizability check).
func (sys *System) Realizable(delta bdd.Node) bool {
	m := sys.C.Space.M
	sc := m.Protect()
	defer sc.Release()
	d := sc.Keep(m.AndN(delta, sys.C.Space.ValidTrans(), sys.Owned))
	if d != m.And(delta, sys.C.Space.ValidTrans()) {
		return false // changes an unowned variable
	}
	locals := make([]bdd.Node, len(sys.locals))
	for j := range sys.locals {
		locals[j] = sc.Keep(sys.ProjectLocal(j, d))
	}
	return sys.compose(locals) == d
}

// Result mirrors repair.Result for the synchronous pipeline.
type Result struct {
	Trans     bdd.Node
	Invariant bdd.Node
	FaultSpan bdd.Node
	Stats     repair.Stats
	// Locals holds the synthesized per-process local relations.
	Locals []bdd.Node
}

// Lazy runs lazy repair under synchronous semantics: Step 1 is Add-Masking
// on the synchronous composition (write universe = all owned variables may
// change at once); Step 2 projects the intermediate program onto the
// processes, recomposes, and removes local rows whose combinations create
// disallowed transitions; deadlocks feed back exactly as in Algorithm 1.
func Lazy(sys *System, opts repair.Options) (*Result, error) {
	c := sys.C
	s := c.Space
	m := s.M
	start := time.Now()
	var stats repair.Stats

	syncProg := &syncCompiled{sys: sys}
	stats.ReachableStates = s.CountStates(
		s.ReachableParts(c.Invariant, []bdd.Node{sys.Trans, c.Fault}))

	sc := m.Protect()
	defer sc.Release()
	invariantS := sc.Slot(c.Invariant)
	badTransS := sc.Slot(c.BadTrans)
	maxIter := opts.MaxOuterIterations
	if maxIter <= 0 {
		maxIter = 64
	}
	for iter := 1; iter <= maxIter; iter++ {
		stats.OuterIterations = iter
		t0 := time.Now()
		mask, err := syncProg.addMasking(invariantS.Node(), badTransS.Node(), opts)
		stats.Step1 += time.Since(t0)
		if err != nil {
			return nil, err
		}
		isc := m.Protect()
		isc.Keep(mask.Trans)
		isc.Keep(mask.Invariant)
		isc.Keep(mask.FaultSpan)

		t1 := time.Now()
		locals, realized := sys.realize(mask)
		for _, l := range locals {
			isc.Keep(l)
		}
		isc.Keep(realized)
		// Deadlock analysis: in synchronous semantics every state has the
		// all-stutter successor, so "deadlocked" means the only successor
		// is the state itself while it lies outside the invariant.
		certSpan := isc.Keep(s.ReachableParts(mask.Invariant, []bdd.Node{realized, c.Fault}))
		moving := m.AndExists(m.Diff(realized, s.Identity()), s.ValidTrans(), s.NextCube())
		dl := isc.Keep(m.AndN(certSpan, m.Not(moving), m.Not(mask.Invariant)))
		stats.Step2 += time.Since(t1)

		if dl == bdd.False {
			stats.Total = time.Since(start)
			stats.BDDNodes = m.Size()
			// The result's relations outlive this call's scopes; root them
			// for the life of the manager.
			res := &Result{
				Trans:     m.Ref(realized),
				Invariant: m.Ref(mask.Invariant),
				FaultSpan: m.Ref(certSpan),
				Stats:     stats,
				Locals:    locals,
			}
			for j := range res.Locals {
				m.Ref(res.Locals[j])
			}
			isc.Release()
			return res, nil
		}
		badTransS.Set(m.OrN(badTransS.Node(),
			m.And(s.Prime(dl), s.ValidTrans()),
			m.AndN(mask.FaultSpan, m.Not(s.Prime(mask.FaultSpan)), s.ValidTrans())))
		invariantS.Set(mask.Invariant)
		isc.Release()
	}
	return nil, ErrNoConvergence
}

// realize is the synchronous Step 2: project the Step-1 program (plus free
// transitions outside the span and the always-legal all-stutter) onto each
// process, recompose, and iteratively drop local rows that only arise in
// disallowed combinations.
func (sys *System) realize(mask *syncMasking) ([]bdd.Node, bdd.Node) {
	c := sys.C
	s := c.Space
	m := s.M

	sc := m.Protect()
	defer sc.Release()
	free := m.And(m.Not(mask.FaultSpan), s.ValidTrans())
	allowed := sc.Keep(m.OrN(m.And(mask.Trans, s.ValidTrans()), free, s.Identity()))

	locals := make([]bdd.Node, len(sys.locals))
	localSlots := make([]*bdd.Rooted, len(sys.locals))
	for j := range locals {
		localSlots[j] = sc.Slot(bdd.False)
		locals[j] = localSlots[j].Set(sys.ProjectLocal(j, allowed))
	}
	prodS := sc.Slot(bdd.False)
	for {
		prod := prodS.Set(sys.compose(locals))
		bad := m.Diff(prod, allowed)
		if bad == bdd.False {
			return locals, prod
		}
		sc.Keep(bad)
		// Remove the local rows that participate in disallowed
		// combinations, round-robin: drop from the first process whose
		// projection of the bad set is nonempty. (Removing from all at once
		// can erase rows other, allowed combinations still need.)
		removed := false
		for j := range locals {
			rows := m.And(sys.ProjectLocal(j, bad), locals[j])
			// Never remove a process's stutter rows: totality requires a
			// fallback choice for every observation.
			rows = m.Diff(rows, sys.keep[j])
			if rows == bdd.False {
				continue
			}
			locals[j] = localSlots[j].Set(m.Diff(locals[j], rows))
			removed = true
			break
		}
		if !removed {
			// Only stutter combinations remain disallowed; they are legal
			// by the Definition-18 analog, so intersect and finish.
			return locals, m.And(prod, allowed)
		}
	}
}

// syncCompiled adapts the synchronous composition to the Add-Masking
// skeleton: the write universe allows every owned variable to change at
// once, and recovery layering works on the single monolithic relation.
type syncCompiled struct {
	sys *System
}

type syncMasking struct {
	Trans     bdd.Node
	Invariant bdd.Node
	FaultSpan bdd.Node
}

func (sc *syncCompiled) addMasking(invariant, badTrans bdd.Node, opts repair.Options) (*syncMasking, error) {
	sys := sc.sys
	c := sys.C
	s := c.Space
	m := s.M

	psc := m.Protect()
	defer psc.Release()
	ms, mt := repair.ComputeMsMt(c, badTrans)
	psc.Keep(ms)
	psc.Keep(mt)
	notMT := psc.Keep(m.Not(mt))

	s1S := psc.Slot(m.Diff(m.And(invariant, s.ValidCur()), ms))
	if s1S.Node() == bdd.False {
		return nil, ErrNotRepairable
	}
	universe := s.ValidCur()
	if opts.ReachabilityHeuristic {
		psc.Keep(invariant)
		universe = s.ReachableParts(invariant, []bdd.Node{m.And(sys.Trans, notMT), c.Fault})
	}
	t1S := psc.Slot(m.Diff(universe, ms))

	availInsideS := psc.Slot(bdd.False)
	availOutsideS := psc.Slot(bdd.False)
	recS := psc.Slot(bdd.False)
	t2S := psc.Slot(bdd.False)
	for {
		s1, t1 := s1S.Node(), t1S.Node()
		availInside := availInsideS.Set(m.AndN(sys.Trans, s1, s.Prime(s1), notMT))
		stay := m.AndN(sys.Owned, s.ValidTrans(), t1, s.Prime(t1))
		availOutside := availOutsideS.Set(m.AndN(stay, m.Not(s1), notMT, m.Not(s.Identity())))
		avail := m.Or(availInside, availOutside)

		t2S.Set(m.And(t1, s.BackwardReachableParts(s1, []bdd.Node{avail})))
		for {
			escape := s.Preimage(m.Diff(s.ValidCur(), t2S.Node()), c.Fault)
			next := m.Diff(t2S.Node(), escape)
			if next == t2S.Node() {
				break
			}
			t2S.Set(next)
		}
		t2 := t2S.Node()
		s2 := m.And(s1, t2)
		if s2 == bdd.False {
			return nil, ErrNotRepairable
		}
		if s2 != s1 || t2 != t1 {
			s1S.Set(s2)
			t1S.Set(t2)
			continue
		}
		rec, ranked := repair.LayeredRecovery(c, s1, t1, []bdd.Node{availOutside})
		recS.Set(rec)
		if ranked != t1 {
			t1S.Set(ranked)
			continue
		}
		break
	}
	return &syncMasking{
		Trans:     m.Or(availInsideS.Node(), recS.Node()),
		Invariant: s1S.Node(),
		FaultSpan: t1S.Node(),
	}, nil
}
