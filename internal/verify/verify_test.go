package verify

import (
	"context"
	"strings"
	"testing"

	"repro/internal/bdd"
	"repro/internal/expr"
	"repro/internal/program"
	"repro/internal/repair"
	"repro/internal/symbolic"
)

// twoBit is a small model with a hidden bit so realizability violations can
// be crafted: p reads/writes y; a is fault-controlled.
func twoBit() *program.Compiled {
	d := &program.Def{
		Name: "twobit",
		Vars: []symbolic.VarSpec{{Name: "a", Domain: 2}, {Name: "y", Domain: 2}},
		Processes: []*program.Process{
			{Name: "p", Read: []string{"y"}, Write: []string{"y"}},
		},
		Faults: []program.Action{{
			Name:    "hit",
			Guard:   expr.And(expr.Eq("a", 0), expr.Eq("y", 0)),
			Updates: []program.Update{program.Set("y", 1)},
		}},
		Invariant: expr.Eq("y", 0),
	}
	return d.MustCompile()
}

func goodResult(t *testing.T, c *program.Compiled) *repair.Result {
	t.Helper()
	res, err := repair.Lazy(context.Background(), c, repair.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestVerifyAcceptsCorrectRepair(t *testing.T) {
	c := twoBit()
	res := goodResult(t, c)
	rep := Result(c, res)
	if !rep.OK() {
		t.Fatalf("correct repair rejected:\n%s", rep)
	}
	if len(rep.Failures()) != 0 {
		t.Fatalf("failures on a correct repair: %v", rep.Failures())
	}
	if !strings.Contains(rep.String(), "ok") {
		t.Fatal("report rendering broken")
	}
}

func mustFail(t *testing.T, rep *Report, name string) {
	t.Helper()
	if rep.OK() {
		t.Fatalf("expected verification failure (%s):\n%s", name, rep)
	}
	for _, f := range rep.Failures() {
		if f == name {
			return
		}
	}
	t.Fatalf("expected failure %q, got %v", name, rep.Failures())
}

func TestDetectsEmptyInvariant(t *testing.T) {
	c := twoBit()
	res := goodResult(t, c)
	bad := *res
	bad.Invariant = bdd.False
	mustFail(t, Result(c, &bad), "invariant nonempty")
}

func TestDetectsInvariantEscape(t *testing.T) {
	c := twoBit()
	res := goodResult(t, c)
	bad := *res
	// Claim a bigger invariant than the original: S' ⊄ S.
	bad.Invariant = c.Space.ValidCur()
	mustFail(t, Result(c, &bad), "invariant subset of original")
}

func TestDetectsNewBehaviorInsideInvariant(t *testing.T) {
	c := twoBit()
	res := goodResult(t, c)
	s := c.Space
	// Add a transition inside the invariant that the original lacked:
	// y:0→0 with a flipping is not even write-legal, but first check the
	// new-behavior rule with a y-write: y:0→1 inside invariant.
	extra, _ := s.Transition(map[string]int{"a": 0, "y": 0}, map[string]int{"a": 0, "y": 1})
	bad := *res
	bad.Trans = s.M.Or(bad.Trans, extra)
	rep := Result(c, &bad)
	if rep.OK() {
		t.Fatalf("expected failure:\n%s", rep)
	}
}

func TestDetectsDeadlockOutsideInvariant(t *testing.T) {
	c := twoBit()
	res := goodResult(t, c)
	bad := *res
	bad.Trans = bdd.False // no recovery at all
	mustFail(t, Result(c, &bad), "no deadlock outside invariant")
}

func TestDetectsLivelock(t *testing.T) {
	c := twoBit()
	res := goodResult(t, c)
	s := c.Space
	m := s.M
	// Replace recovery with a 2-cycle between the two a-values of y=1…
	// which is write-illegal for p, so build it as y-toggles instead:
	// (a0,y1)→(a0,y0) exists; add (a0,y0)→(a0,y1) to close a cycle through
	// the invariant? Livelock must be outside the invariant: use the a=1
	// copies which are unreachable but inside the claimed span.
	up, _ := s.Transition(map[string]int{"a": 1, "y": 0}, map[string]int{"a": 1, "y": 1})
	down, _ := s.Transition(map[string]int{"a": 1, "y": 1}, map[string]int{"a": 1, "y": 0})
	bad := *res
	bad.Trans = m.OrN(bad.Trans, up, down)
	bad.FaultSpan = s.ValidCur() // claim everything, so a=1,y≠0 is outside S' in span
	rep := Result(c, &bad)
	if rep.OK() {
		t.Fatalf("expected livelock detection:\n%s", rep)
	}
}

func TestDetectsUnrealizableTransitions(t *testing.T) {
	c := twoBit()
	res := goodResult(t, c)
	s := c.Space
	// A transition flipping the unwritable a cannot belong to any process.
	illegal, _ := s.Transition(map[string]int{"a": 0, "y": 1}, map[string]int{"a": 1, "y": 1})
	bad := *res
	bad.Trans = s.M.Or(bad.Trans, illegal)
	mustFail(t, Result(c, &bad), "transitions decompose into processes")
}

func TestDetectsSpanEscape(t *testing.T) {
	c := twoBit()
	res := goodResult(t, c)
	bad := *res
	// Shrink the span below the reachable set: closure must fail.
	bad.FaultSpan = bad.Invariant
	rep := Result(c, &bad)
	if rep.OK() {
		t.Fatalf("expected span-closure failure:\n%s", rep)
	}
}

func TestNewInvariantDeadlockIsWarningOnly(t *testing.T) {
	// A program whose only invariant action is removed by the repair... build
	// directly: original has y-toggle inside invariant {y=0,y=1}; result
	// drops it. The verifier must warn but still pass.
	d := &program.Def{
		Name: "warn",
		Vars: []symbolic.VarSpec{{Name: "y", Domain: 2}},
		Processes: []*program.Process{
			{Name: "p", Read: []string{"y"}, Write: []string{"y"},
				Actions: []program.Action{{
					Guard:   expr.Eq("y", 0),
					Updates: []program.Update{program.Set("y", 1)},
				}}},
		},
		Invariant: expr.True,
	}
	c := d.MustCompile()
	res := &repair.Result{
		Trans:     bdd.False,
		Invariant: c.Invariant,
		FaultSpan: c.Invariant,
	}
	rep := Result(c, res)
	if !rep.OK() {
		t.Fatalf("warning-only condition failed the report:\n%s", rep)
	}
	found := false
	for _, ch := range rep.Checks {
		if ch.Name == "no new deadlock inside invariant" && !ch.OK && ch.Warning {
			found = true
		}
	}
	if !found {
		t.Fatal("expected a warning about new invariant deadlocks")
	}
	if !strings.Contains(rep.String(), "warn") {
		t.Fatal("rendering should mark warnings")
	}
}

func TestDetectsReachableBadState(t *testing.T) {
	d := &program.Def{
		Name: "badstate",
		Vars: []symbolic.VarSpec{{Name: "y", Domain: 3}},
		Processes: []*program.Process{
			{Name: "p", Read: []string{"y"}, Write: []string{"y"}},
		},
		Faults: []program.Action{{
			Guard:   expr.Eq("y", 0),
			Updates: []program.Update{program.Set("y", 1)},
		}},
		Invariant: expr.Eq("y", 0),
		BadStates: expr.Eq("y", 2),
	}
	c := d.MustCompile()
	res := goodResult(t, c)
	s := c.Space
	// Inject a recovery detour through the bad state y=2.
	viaBad, _ := s.Transition(map[string]int{"y": 1}, map[string]int{"y": 2})
	back, _ := s.Transition(map[string]int{"y": 2}, map[string]int{"y": 0})
	bad := *res
	bad.Trans = s.M.OrN(bad.Trans, viaBad, back)
	bad.FaultSpan = s.ValidCur()
	mustFail(t, Result(c, &bad), "no reachable bad state")
}

func TestLivenessLeadsTo(t *testing.T) {
	// A three-state rotor: 0 → 1 → 2 → 0. The leads-to property 0 ↝ 2
	// holds on the full program and breaks when the 1 → 2 step is removed.
	d := &program.Def{
		Name: "rotor",
		Vars: []symbolic.VarSpec{{Name: "x", Domain: 3}},
		Processes: []*program.Process{{
			Name: "p", Read: []string{"x"}, Write: []string{"x"},
			Actions: []program.Action{
				{Guard: expr.Eq("x", 0), Updates: []program.Update{program.Set("x", 1)}},
				{Guard: expr.Eq("x", 1), Updates: []program.Update{program.Set("x", 2)}},
				{Guard: expr.Eq("x", 2), Updates: []program.Update{program.Set("x", 0)}},
			},
		}},
		Invariant: expr.True,
		Liveness: []program.LeadsTo{
			{Name: "zero-to-two", From: expr.Eq("x", 0), To: expr.Eq("x", 2)},
		},
	}
	c := d.MustCompile()
	res := &repair.Result{Trans: c.Trans, Invariant: c.Invariant, FaultSpan: c.Invariant}
	rep := Result(c, res)
	if !rep.OK() {
		t.Fatalf("rotor should satisfy 0 ↝ 2:\n%s", rep)
	}

	// Drop the 1 → 2 transition: computations from 0 stall at 1.
	s := c.Space
	oneTwo, _ := s.Transition(map[string]int{"x": 1}, map[string]int{"x": 2})
	broken := &repair.Result{
		Trans:     s.M.Diff(c.Trans, oneTwo),
		Invariant: c.Invariant,
		FaultSpan: c.Invariant,
	}
	mustFail(t, Result(c, broken), "liveness zero-to-two")
}

func TestLivenessWithCycleEscape(t *testing.T) {
	// With a 1 ↔ 0 shortcut the program may loop 0→1→0 forever: L ↝ T must
	// fail even though a path to 2 exists, because *some* computation never
	// gets there.
	d := &program.Def{
		Name: "loopy",
		Vars: []symbolic.VarSpec{{Name: "x", Domain: 3}},
		Processes: []*program.Process{{
			Name: "p", Read: []string{"x"}, Write: []string{"x"},
			Actions: []program.Action{
				{Guard: expr.Eq("x", 0), Updates: []program.Update{program.Set("x", 1)}},
				{Guard: expr.Eq("x", 1), Updates: []program.Update{program.Choose("x", 0, 2)}},
			},
		}},
		Invariant: expr.True,
		Liveness: []program.LeadsTo{
			{Name: "reach-two", From: expr.Eq("x", 0), To: expr.Eq("x", 2)},
		},
	}
	c := d.MustCompile()
	res := &repair.Result{Trans: c.Trans, Invariant: c.Invariant, FaultSpan: c.Invariant}
	mustFail(t, Result(c, res), "liveness reach-two")
}
