// Package verify independently checks the output of the repair algorithms:
// that the synthesized program is masking fault-tolerant to the original
// specification from the repaired invariant (Definition 15), that it adds no
// new behavior inside the invariant (the problem statement of Section II),
// and that its transitions are realizable by the program's processes under
// the read/write restrictions (Definitions 19 and 20).
//
// The checks are deliberately written against the definitions rather than
// reusing the algorithms' internal fixpoints, so they serve as an oracle in
// tests.
package verify

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/bdd"
	"repro/internal/bmc"
	"repro/internal/program"
	"repro/internal/repair"
	"repro/internal/sat"
	"repro/internal/witness"
)

// Backend selects the symbolic engine behind the reachability checks.
type Backend string

// The verification backends.
const (
	// BackendBDD is the default: reachability as BDD fixpoints, witnesses by
	// frontier-stack extraction.
	BackendBDD Backend = "bdd"
	// BackendSAT routes the reachability checks (fault-span containment, bad
	// states, bad transitions) and the safety/deadlock witness search through
	// bounded model checking over the CDCL solver. The definitional and
	// fixpoint checks that are not reachability-shaped (closure, livelock,
	// realizability, liveness) still run on the BDD engine, so the two
	// backends answer the same questions and their verdicts must agree. A
	// passing SAT verdict is exact when the loop-free-path argument closed
	// the search and bounded (noted in the check detail) when MaxDepth was
	// hit first.
	BackendSAT Backend = "sat"
)

// ParseBackend validates a backend name; the empty string means BackendBDD.
func ParseBackend(s string) (Backend, error) {
	switch Backend(s) {
	case "", BackendBDD:
		return BackendBDD, nil
	case BackendSAT:
		return BackendSAT, nil
	}
	return "", fmt.Errorf("verify: unknown backend %q (want %q or %q)", s, BackendBDD, BackendSAT)
}

// Check is one verified property. The JSON tags make reports embeddable in
// the machine-readable outputs (ftrepair -json, the ftrepaird daemon).
type Check struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
	// Warning marks informational checks that do not affect Report.OK:
	// properties the paper's definitions do not require but a model author
	// may care about (e.g. progress lost to new invariant deadlocks).
	Warning bool `json:"warning,omitempty"`
	// Witness, when non-nil, is a concrete replayable trace demonstrating
	// the failure (see ResultWitnessEngine). It is attached only to failed
	// checks with a trace-shaped failure mode: reachable bad
	// states/transitions, deadlocks, livelocks, and unrealizable
	// transitions.
	Witness *witness.Trace `json:"witness,omitempty"`
}

// Report is the outcome of verifying a repair result.
type Report struct {
	Checks []Check
	// SAT carries the solver's work counters summed over every bounded
	// model-checking query of the run. Nil under the BDD backend.
	SAT *sat.Stats `json:"sat,omitempty"`
}

// OK reports whether every check passed.
func (r *Report) OK() bool {
	for _, c := range r.Checks {
		if !c.OK && !c.Warning {
			return false
		}
	}
	return true
}

// Failures returns the names of failed checks.
func (r *Report) Failures() []string {
	var out []string
	for _, c := range r.Checks {
		if !c.OK && !c.Warning {
			out = append(out, c.Name)
		}
	}
	return out
}

// String renders the report, one check per line.
func (r *Report) String() string {
	var sb strings.Builder
	for _, c := range r.Checks {
		mark := "ok  "
		if !c.OK {
			mark = "FAIL"
			if c.Warning {
				mark = "warn"
			}
		}
		fmt.Fprintf(&sb, "%s %-38s %s\n", mark, c.Name, c.Detail)
	}
	return sb.String()
}

func (r *Report) add(name string, ok bool, detail string) {
	r.Checks = append(r.Checks, Check{Name: name, OK: ok, Detail: detail})
}

// failed reports whether the named check exists and did not pass.
func (r *Report) failed(name string) bool {
	for _, c := range r.Checks {
		if c.Name == name {
			return !c.OK
		}
	}
	return false
}

// attach stores tr on the named check if that check failed. tr may be nil
// (extraction found no reachable witness), in which case nothing changes.
func (r *Report) attach(name string, tr *witness.Trace) {
	if tr == nil {
		return
	}
	for i := range r.Checks {
		if r.Checks[i].Name == name && !r.Checks[i].OK {
			tr.Check = name
			r.Checks[i].Witness = tr
			return
		}
	}
}

// Result verifies a repair result against the compiled program it was
// synthesized from.
func Result(c *program.Compiled, res *repair.Result) *Report {
	rep, _ := ResultEngine(context.Background(), program.SerialEngine(c), res)
	return rep
}

// ResultEngine is Result with the per-process predicates (the maximal
// realizable subsets every safety and realizability check builds on) and the
// reachability fixpoints fanned out across the engine's workers. The checks
// themselves are unchanged — canonical BDDs make the fan-out invisible to
// the verdict. The error is non-nil only on context cancellation.
func ResultEngine(ctx context.Context, e *program.Engine, res *repair.Result) (*Report, error) {
	return resultEngine(ctx, e, res, BackendBDD, false)
}

// ResultWitnessEngine is ResultEngine plus witness extraction: every failed
// check with a trace-shaped failure mode carries a concrete Trace that
// witness.Certify confirms. Extraction runs serially on the engine's owner
// manager from the same canonical fixpoint sets the checks computed, so the
// attached witnesses are byte-identical across worker counts.
func ResultWitnessEngine(ctx context.Context, e *program.Engine, res *repair.Result) (*Report, error) {
	return resultEngine(ctx, e, res, BackendBDD, true)
}

// ResultBackendEngine is the backend-selecting entry point: ResultEngine /
// ResultWitnessEngine with the reachability checks (and, with witnesses, the
// safety and deadlock trace search) routed through the chosen engine. Both
// backends emit the same check names with the same pass/fail meaning, which
// is what the differential gate compares.
func ResultBackendEngine(ctx context.Context, e *program.Engine, res *repair.Result, backend Backend, withWitness bool) (*Report, error) {
	return resultEngine(ctx, e, res, backend, withWitness)
}

func resultEngine(ctx context.Context, e *program.Engine, res *repair.Result, backend Backend, withWitness bool) (*Report, error) {
	c := e.C
	m := c.Space.M
	s := c.Space
	rep := &Report{}
	sc := m.Protect()
	defer sc.Release()

	inv, span, trans := res.Invariant, res.FaultSpan, res.Trans
	sc.Keep(inv)
	sc.Keep(span)
	valid := s.ValidTrans()
	trans = sc.Keep(m.And(trans, valid))

	// --- problem-statement conditions (Section II) -----------------------
	rep.add("invariant nonempty", inv != bdd.False, "")
	rep.add("invariant subset of original", m.Implies(inv, c.Invariant), "S' ⊆ S")
	newBehavior := m.AndN(trans, inv, s.Prime(inv), m.Not(c.Trans))
	rep.add("no new behavior inside invariant", newBehavior == bdd.False, "δ'|S' ⊆ δ|S'")

	// --- closure ----------------------------------------------------------
	escInv := m.AndN(trans, inv, m.Not(s.Prime(inv)))
	rep.add("invariant closed in program", escInv == bdd.False, "")
	rep.add("invariant inside fault-span", m.Implies(inv, span), "S' ⊆ T'")
	combined := sc.Keep(m.Or(trans, c.Fault))
	escSpan := m.AndN(combined, span, m.Not(s.Prime(span)))
	rep.add("fault-span closed in program∪fault", escSpan == bdd.False, "")

	// --- safety under faults ----------------------------------------------
	// Partition the program's transitions by process for image computation;
	// every realizable δ' is covered by its per-process maximal realizable
	// subsets, and faults are partitioned per action.
	procParts, err := e.MapProcs(ctx, trans, func(wc *program.Compiled, j int, tr bdd.Node) bdd.Node {
		return wc.Procs[j].MaxRealizableSubset(tr)
	})
	if err != nil {
		return nil, err
	}
	for _, p := range procParts {
		sc.Keep(p) // the per-process parts feed every later check
	}
	// The three reachability-shaped checks are the backend seam: BDD computes
	// the exact reachable set once and intersects; SAT answers each question
	// as a bounded-model-checking query over the same partitioned relation.
	// Check names and pass/fail meaning are identical either way — that is
	// the contract the differential gate relies on.
	var (
		satQuery    func(target bdd.Node, asTrans bool) (*bmc.Result, error)
		satBadState *bmc.Result
		satBadTrans *bmc.Result
	)
	if backend == BackendSAT {
		steps, attrib := bmcParts(sc, c, procParts, trans)
		rep.SAT = &sat.Stats{}
		satQuery = func(target bdd.Node, asTrans bool) (*bmc.Result, error) {
			// One fresh checker per query (the single-query contract); the
			// shared stats field sums the solver work across all of them.
			ck := bmc.New(s, inv, steps, bmc.Options{Attribution: attrib})
			var r *bmc.Result
			var qerr error
			if asTrans {
				r, qerr = ck.ReachTrans(ctx, target)
			} else {
				r, qerr = ck.ReachState(ctx, target)
			}
			if qerr != nil {
				return nil, qerr
			}
			rep.SAT.Add(r.Stats)
			return r, nil
		}
		r, qerr := satQuery(sc.Keep(m.Diff(s.ValidCur(), span)), false)
		if qerr != nil {
			return nil, qerr
		}
		rep.add("reachable within fault-span", !r.Reachable, bmcDetail(r))
		if satBadState, qerr = satQuery(c.BadStates, false); qerr != nil {
			return nil, qerr
		}
		rep.add("no reachable bad state", !satBadState.Reachable, bmcDetail(satBadState))
		if satBadTrans, qerr = satQuery(sc.Keep(m.And(combined, c.BadTrans)), true); qerr != nil {
			return nil, qerr
		}
		rep.add("no reachable bad transition", !satBadTrans.Reachable, bmcDetail(satBadTrans))
	} else {
		reach, err := e.ReachableParts(ctx, inv, append(append([]bdd.Node{}, procParts...), c.FaultParts...))
		if err != nil {
			return nil, err
		}
		sc.Keep(reach)
		rep.add("reachable within fault-span", m.Implies(reach, span), "")
		badReach := m.And(reach, c.BadStates)
		rep.add("no reachable bad state", badReach == bdd.False, "")
		badStep := m.AndN(combined, reach, c.BadTrans)
		rep.add("no reachable bad transition", badStep == bdd.False, "")
	}

	// --- recovery (the liveness half of masking) ---------------------------
	outside := sc.Keep(m.Diff(span, inv))
	noOut := sc.Keep(m.Diff(outside, src(c, trans)))
	rep.add("no deadlock outside invariant", noOut == bdd.False,
		fmt.Sprintf("%g stuck state(s)", s.CountStates(noOut)))
	// Greatest fixpoint: states in T'−S' from which some program-only path
	// stays outside the invariant forever (program.CyclicCore — the one GFP
	// loop shared with the repair algorithms' cycle analysis).
	cyclic := sc.Keep(program.CyclicCore(c, procParts, outside))
	rep.add("no livelock outside invariant", cyclic == bdd.False,
		fmt.Sprintf("%g state(s) on non-recovering paths", s.CountStates(cyclic)))
	// New finite computations: invariant states deadlocked now but not
	// before. Definition 5 permits finite maximal computations and the
	// instances carry no liveness specification, so this is informational
	// (it reports progress the repair traded away).
	origDeadlock := c.Deadlocks(c.Trans)
	newDeadlock := m.AndN(inv, m.Diff(s.ValidCur(), src(c, trans)), m.Not(origDeadlock))
	rep.Checks = append(rep.Checks, Check{
		Name:    "no new deadlock inside invariant",
		OK:      newDeadlock == bdd.False,
		Detail:  fmt.Sprintf("%g state(s) rest where the original program moved", s.CountStates(newDeadlock)),
		Warning: true,
	})

	// --- liveness (Definition 8, if the spec declares leads-to properties) -
	// L ↝ T holds from S' iff every program computation that visits a
	// reachable L-state later visits a T-state. With finite maximal
	// computations this is the least fixpoint "must reach T": a state is
	// good iff it is in T, or it has a successor and all its successors are
	// good. (Checked fault-free, per Definition 10's "computations of P".)
	if len(c.Liveness) > 0 {
		progReach, err := e.ReachableParts(ctx, inv, procParts)
		if err != nil {
			return nil, err
		}
		sc.Keep(progReach)
		hasSucc := sc.Keep(src(c, trans))
		for _, lt := range c.Liveness {
			goodS := sc.Slot(m.And(lt.To, s.ValidCur()))
			for {
				escapes := src(c, m.And(trans, m.Not(s.Prime(goodS.Node()))))
				next := m.Or(goodS.Node(), m.And(hasSucc, m.Not(escapes)))
				if next == goodS.Node() {
					break
				}
				goodS.Set(next)
			}
			pending := m.AndN(progReach, lt.From, m.Not(goodS.Node()))
			name := lt.Name
			if name == "" {
				name = "leads-to"
			}
			rep.add("liveness "+name, pending == bdd.False,
				fmt.Sprintf("%g reachable L-state(s) that may never reach T", s.CountStates(pending)))
		}
	}

	// --- realizability (Definitions 19 and 20) -----------------------------
	unionS := sc.Slot(bdd.False)
	for j, p := range c.Procs {
		part := procParts[j]
		if !p.Realizable(part) {
			rep.add("process "+p.Name+" subset realizable", false, "")
		}
		unionS.Set(m.Or(unionS.Node(), part))
	}
	rep.add("transitions decompose into processes", m.Implies(trans, unionS.Node()),
		"every transition belongs to a complete group of some process")

	// --- witnesses ---------------------------------------------------------
	// Extraction reuses the canonical sets computed above (the stuck and
	// cyclic states) and runs serially, so the same model and result yield
	// byte-identical traces regardless of the engine's worker count.
	if withWitness {
		x := witness.New(c)
		if rep.failed("no reachable bad state") || rep.failed("no reachable bad transition") {
			name := "no reachable bad state"
			if !rep.failed(name) {
				name = "no reachable bad transition"
			}
			if backend == BackendSAT {
				// The failing BMC query already decoded a shortest path; the
				// steps are in the exact shape Certify replays.
				res := satBadState
				if name == "no reachable bad transition" {
					res = satBadTrans
				}
				if res != nil && res.Reachable {
					rep.attach(name, &witness.Trace{
						Kind:   witness.KindSafety,
						Detail: fmt.Sprintf("bounded model check: safety violated after %d step(s)", len(res.Steps)-1),
						Steps:  res.Steps,
					})
				}
			} else {
				tr, werr := x.Safety(ctx, trans, inv)
				if werr != nil {
					return nil, werr
				}
				rep.attach(name, tr)
			}
		}
		if rep.failed("no deadlock outside invariant") {
			if backend == BackendSAT {
				r, qerr := satQuery(noOut, false)
				if qerr != nil {
					return nil, qerr
				}
				if r.Reachable {
					rep.attach("no deadlock outside invariant", &witness.Trace{
						Kind:   witness.KindDeadlock,
						Detail: fmt.Sprintf("bounded model check: deadlock outside the invariant after %d step(s)", len(r.Steps)-1),
						Steps:  r.Steps,
					})
				}
			} else {
				tr, werr := x.Deadlock(ctx, trans, inv, noOut)
				if werr != nil {
					return nil, werr
				}
				rep.attach("no deadlock outside invariant", tr)
			}
		}
		if rep.failed("no livelock outside invariant") {
			tr, werr := x.Livelock(ctx, trans, inv, cyclic)
			if werr != nil {
				return nil, werr
			}
			rep.attach("no livelock outside invariant", tr)
		}
		if rep.failed("transitions decompose into processes") {
			tr, werr := x.Unrealizable(ctx, trans)
			if werr != nil {
				return nil, werr
			}
			rep.attach("transitions decompose into processes", tr)
		}
	}

	return rep, nil
}

// bmcParts builds the labeled transition slices for the SAT backend's bounded
// model checker. The step union mirrors the BDD reach exactly: per-process
// maximal realizable subsets plus the per-action fault slices. The attribution
// list additionally carries the anonymous remainder of trans (transitions no
// single process realizes) so the final step of a ReachTrans query — drawn
// from the full system relation — still gets a label, matching the witness
// extractor's partition order (named processes, remainder, named faults).
func bmcParts(sc *bdd.Scope, c *program.Compiled, procParts []bdd.Node, trans bdd.Node) (steps, attrib []bmc.Part) {
	m := c.Space.M
	unionS := sc.Slot(bdd.False)
	for j, p := range c.Procs {
		steps = append(steps, bmc.Part{Name: p.Name, Kind: witness.StepProgram, Rel: procParts[j]})
		unionS.Set(m.Or(unionS.Node(), procParts[j]))
	}
	attrib = append(attrib, steps...)
	if rest := m.Diff(trans, unionS.Node()); rest != bdd.False {
		attrib = append(attrib, bmc.Part{Kind: witness.StepProgram, Rel: sc.Keep(rest)})
	}
	for i, f := range c.FaultParts {
		name := ""
		if i < len(c.Def.Faults) {
			name = c.Def.Faults[i].Name
		}
		fp := bmc.Part{Name: name, Kind: witness.StepFault, Rel: f}
		steps = append(steps, fp)
		attrib = append(attrib, fp)
	}
	return steps, attrib
}

// bmcDetail renders a BMC verdict for a check's detail column. A passing
// verdict that only holds up to the depth bound is labeled as such — the
// check still passes (the differential gate compares OK flags), but the
// report is honest about the weaker claim.
func bmcDetail(r *bmc.Result) string {
	switch {
	case r.Reachable:
		return fmt.Sprintf("violated at depth %d", r.Depth)
	case r.Complete:
		return fmt.Sprintf("unreachable (search complete at depth %d)", r.Depth)
	default:
		return fmt.Sprintf("no violation up to depth %d (bounded)", r.Depth)
	}
}

func src(c *program.Compiled, delta bdd.Node) bdd.Node {
	m := c.Space.M
	return m.AndExists(delta, c.Space.ValidTrans(), c.Space.NextCube())
}
