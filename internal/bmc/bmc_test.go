package bmc

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bdd"
	"repro/internal/sat"
	"repro/internal/symbolic"
	"repro/internal/witness"
)

// randRelation builds a guarded-command-style transition relation: a
// disjunction of (guard ∧ assignments) terms, where each term fixes one
// variable's next value and leaves the others unchanged.
func randRelation(s *symbolic.Space, rng *rand.Rand, terms int) bdd.Node {
	m := s.M
	rel := bdd.False
	for i := 0; i < terms; i++ {
		gv := s.Vars[rng.Intn(len(s.Vars))]
		term := gv.EqConst(rng.Intn(gv.Domain))
		tv := s.Vars[rng.Intn(len(s.Vars))]
		term = m.And(term, tv.NextEqConst(rng.Intn(tv.Domain)))
		for _, v := range s.Vars {
			if v != tv {
				term = m.And(term, v.Unchanged())
			}
		}
		rel = m.Or(rel, term)
	}
	return rel
}

// allAssignments enumerates every cur+next bit pattern of the space as a
// manager-indexed assignment plus a canonical key.
func allAssignments(s *symbolic.Space) [][]bool {
	var ids []int
	for _, v := range s.Vars {
		ids = append(ids, v.CurLevels()...)
		ids = append(ids, v.NextLevels()...)
	}
	n := len(ids)
	out := make([][]bool, 0, 1<<n)
	for mask := 0; mask < 1<<n; mask++ {
		asg := make([]bool, s.M.NumVars())
		for i, id := range ids {
			asg[id] = mask&(1<<i) != 0
		}
		out = append(out, asg)
	}
	return out
}

// TestTseitinRoundTrip is the encoding property test: for random small
// models, the CNF unrolled over one step has exactly the same satisfying
// assignments (projected to the state bits) as the BDD of the valid
// transition relation — checked three ways: per-assignment verdict equality
// against Eval, set equality against AllSat expansion, and count equality.
func TestTseitinRoundTrip(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		s := symbolic.MustNew([]symbolic.VarSpec{
			{Name: "x", Domain: 2 + rng.Intn(3)},
			{Name: "y", Domain: 2 + rng.Intn(2)},
		})
		m := s.M
		sc := m.Protect()
		rel := sc.Keep(randRelation(s, rng, 1+rng.Intn(4)))
		relValid := sc.Keep(m.And(rel, s.ValidTrans()))

		c := New(s, bdd.True, []Part{{Name: "p", Kind: witness.StepProgram, Rel: rel}}, Options{})
		c.ensureFrames(2)

		// Collect the BDD's model set over all cur+next bits via AllSat,
		// expanding don't-care positions.
		var ids []int
		for _, v := range s.Vars {
			ids = append(ids, v.CurLevels()...)
			ids = append(ids, v.NextLevels()...)
		}
		bddModels := make(map[uint64]bool)
		m.AllSat(relValid, func(cube []int8) bool {
			var expand func(i int, key uint64)
			expand = func(i int, key uint64) {
				if i == len(ids) {
					bddModels[key] = true
					return
				}
				switch cube[ids[i]] {
				case 0:
					expand(i+1, key)
				case 1:
					expand(i+1, key|1<<uint(i))
				default:
					expand(i+1, key)
					expand(i+1, key|1<<uint(i))
				}
			}
			expand(0, 0)
			return true
		})

		// For every total assignment: BDD Eval, AllSat membership, and the
		// CNF under assumptions that pin the frame bits must agree.
		cnfCount := 0
		for mask := 0; mask < 1<<len(ids); mask++ {
			asg := make([]bool, m.NumVars())
			for i, id := range ids {
				asg[id] = mask&(1<<i) != 0
			}
			want := m.Eval(relValid, asg)
			if want != bddModels[uint64(mask)] {
				t.Fatalf("trial %d: AllSat disagrees with Eval on %x", trial, mask)
			}
			var assume []sat.Lit
			assume = append(assume, c.stepGuards[0])
			for slot, v := range c.slots {
				b := c.bit[slot]
				assume = append(assume,
					sat.MkLit(c.frames[0][slot], !asg[v.CurLevels()[b]]),
					sat.MkLit(c.frames[1][slot], !asg[v.NextLevels()[b]]))
			}
			got, err := c.sol.Solve(ctx, assume...)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("trial %d: CNF says %v, BDD says %v on assignment %x", trial, got, want, mask)
			}
			if got {
				cnfCount++
			}
		}
		if cnfCount != len(bddModels) {
			t.Fatalf("trial %d: CNF has %d models, BDD has %d", trial, cnfCount, len(bddModels))
		}
		sc.Release()
	}
}

// bfsDepth computes the BDD-side shortest distance from init to target under
// the union of parts, or -1 if unreachable.
func bfsDepth(s *symbolic.Space, init, target bdd.Node, parts []bdd.Node) int {
	m := s.M
	sc := m.Protect()
	defer sc.Release()
	union := sc.Slot(bdd.False)
	for _, p := range parts {
		union.Set(m.Or(union.Node(), p))
	}
	reached := sc.Slot(m.And(init, s.ValidCur()))
	frontier := sc.Slot(reached.Node())
	for d := 0; ; d++ {
		if m.And(frontier.Node(), target) != bdd.False {
			return d
		}
		next := m.Diff(s.Image(frontier.Node(), union.Node()), reached.Node())
		if next == bdd.False {
			return -1
		}
		reached.Set(m.Or(reached.Node(), next))
		frontier.Set(next)
	}
}

// TestReachStateMatchesBDD cross-checks verdict, completeness, and shortest
// depth against the BDD engine on random models, and replays every found
// path pointwise.
func TestReachStateMatchesBDD(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		s := symbolic.MustNew([]symbolic.VarSpec{
			{Name: "a", Domain: 2 + rng.Intn(3)},
			{Name: "b", Domain: 2 + rng.Intn(3)},
		})
		m := s.M
		sc := m.Protect()
		nparts := 1 + rng.Intn(3)
		var parts []Part
		var rels []bdd.Node
		for i := 0; i < nparts; i++ {
			r := sc.Keep(randRelation(s, rng, 1+rng.Intn(3)))
			kind := witness.StepProgram
			name := "proc"
			if i == nparts-1 && rng.Intn(2) == 0 {
				kind, name = witness.StepFault, "crash"
			}
			parts = append(parts, Part{Name: name, Kind: kind, Rel: r})
			rels = append(rels, r)
		}
		av, bv := s.Vars[0], s.Vars[1]
		init := sc.Keep(m.And(av.EqConst(rng.Intn(av.Domain)), bv.EqConst(rng.Intn(bv.Domain))))
		target := sc.Keep(av.EqConst(rng.Intn(av.Domain)))

		wantDepth := bfsDepth(s, init, target, rels)
		c := New(s, init, parts, Options{MaxDepth: 40})
		res, err := c.ReachState(ctx, target)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Complete {
			t.Fatalf("trial %d: result not complete", trial)
		}
		if res.Reachable != (wantDepth >= 0) {
			t.Fatalf("trial %d: BMC says %v, BDD says depth %d", trial, res.Reachable, wantDepth)
		}
		if res.Reachable {
			if res.Depth != wantDepth {
				t.Fatalf("trial %d: BMC depth %d, BDD shortest %d", trial, res.Depth, wantDepth)
			}
			replay(t, trial, s, init, target, parts, res.Steps)
		}
		sc.Release()
	}
}

// replay is a miniature certify: first state in init, every step in its
// attributed part, last state in target.
func replay(t *testing.T, trial int, s *symbolic.Space, init, target bdd.Node, parts []Part, steps []witness.Step) {
	t.Helper()
	m := s.M
	asgState := func(st map[string]int) []bool {
		out := make([]bool, m.NumVars())
		for _, v := range s.Vars {
			for b, id := range v.CurLevels() {
				out[id] = st[v.Name]&(1<<b) != 0
			}
		}
		return out
	}
	asgTrans := func(from, to map[string]int) []bool {
		out := asgState(from)
		for _, v := range s.Vars {
			for b, id := range v.NextLevels() {
				out[id] = to[v.Name]&(1<<b) != 0
			}
		}
		return out
	}
	if steps[0].Kind != witness.StepInit || !m.Eval(init, asgState(steps[0].State)) {
		t.Fatalf("trial %d: path does not start in init", trial)
	}
	for i := 1; i < len(steps); i++ {
		matched := false
		for _, p := range parts {
			if p.Name == steps[i].By && p.Kind == steps[i].Kind {
				if m.Eval(p.Rel, asgTrans(steps[i-1].State, steps[i].State)) {
					matched = true
					break
				}
			}
		}
		if !matched {
			t.Fatalf("trial %d: step %d not in its attributed part (%s/%s)", trial, i, steps[i].Kind, steps[i].By)
		}
	}
	last := steps[len(steps)-1].State
	if target != bdd.False && !m.Eval(target, asgState(last)) {
		t.Fatalf("trial %d: path does not end in target", trial)
	}
}

// chainSpace is the 4-state chain 0 -> 1 -> 2 with 2 a dead end and 3
// disconnected: the canonical model for the deadlock-frame pitfall (a path
// ending in a dead end must remain satisfiable at deeper unrollings).
func chainSpace(t *testing.T) (*symbolic.Space, bdd.Node, []Part) {
	t.Helper()
	s := symbolic.MustNew([]symbolic.VarSpec{{Name: "x", Domain: 4}})
	m := s.M
	x := s.Vars[0]
	rel := bdd.False
	for v := 0; v < 2; v++ {
		rel = m.Or(rel, m.And(x.EqConst(v), x.NextEqConst(v+1)))
	}
	rel = m.Ref(rel)
	init := m.Ref(x.EqConst(0))
	return s, init, []Part{{Name: "step", Kind: witness.StepProgram, Rel: rel}}
}

func TestReachStateDeadEnd(t *testing.T) {
	ctx := context.Background()
	s, init, parts := chainSpace(t)
	x := s.Vars[0]

	c := New(s, init, parts, Options{})
	res, err := c.ReachState(ctx, x.EqConst(2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable || res.Depth != 2 || !res.Complete {
		t.Fatalf("dead-end state should be reachable at depth 2: %+v", res)
	}

	c2 := New(s, init, parts, Options{})
	res2, err := c2.ReachState(ctx, x.EqConst(3))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Reachable || !res2.Complete {
		t.Fatalf("disconnected state should be provably unreachable: %+v", res2)
	}
}

func TestReachTrans(t *testing.T) {
	ctx := context.Background()
	s, init, parts := chainSpace(t)
	m := s.M
	x := s.Vars[0]

	bad := m.Ref(m.And(x.EqConst(1), x.NextEqConst(2)))
	c := New(s, init, parts, Options{})
	res, err := c.ReachTrans(ctx, bad)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable || res.Depth != 2 || !res.Complete {
		t.Fatalf("bad step 1->2 should be takeable after one step: %+v", res)
	}
	lastIdx := len(res.Steps) - 1
	if res.Steps[lastIdx].State["x"] != 2 || res.Steps[lastIdx-1].State["x"] != 1 {
		t.Fatalf("final step should be 1->2: %+v", res.Steps)
	}

	// The final step is constrained by bad alone; callers intersect with the
	// system relation. 2->3 is not a system step, so the intersection is
	// empty and provably unreachable...
	bad2 := m.Ref(m.AndN(x.EqConst(2), x.NextEqConst(3), parts[0].Rel))
	c2 := New(s, init, parts, Options{})
	res2, err := c2.ReachTrans(ctx, bad2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Reachable || !res2.Complete {
		t.Fatalf("bad∩relation = ∅ should be unreachable: %+v", res2)
	}

	// ...while the raw 2->3 transition is takeable from the reachable dead
	// end when the caller does not intersect (attribution comes from the
	// wider Attribution list then).
	bad3 := m.Ref(m.And(x.EqConst(2), x.NextEqConst(3)))
	c3 := New(s, init, parts, Options{
		Attribution: append(append([]Part{}, parts...),
			Part{Name: "spec", Kind: witness.StepFault, Rel: bad3}),
	})
	res3, err := c3.ReachTrans(ctx, bad3)
	if err != nil {
		t.Fatal(err)
	}
	if !res3.Reachable || res3.Depth != 3 || !res3.Complete {
		t.Fatalf("unintersected bad step from the dead end should be found: %+v", res3)
	}
	if last := res3.Steps[len(res3.Steps)-1]; last.By != "spec" || last.Kind != witness.StepFault {
		t.Fatalf("final step should be attributed via the Attribution list: %+v", last)
	}
}

func TestEmptyInitAndFalseTarget(t *testing.T) {
	ctx := context.Background()
	s, _, parts := chainSpace(t)
	x := s.Vars[0]

	c := New(s, bdd.False, parts, Options{})
	res, err := c.ReachState(ctx, x.EqConst(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Reachable || !res.Complete {
		t.Fatalf("empty init must make everything provably unreachable: %+v", res)
	}

	s2, init2, parts2 := chainSpace(t)
	_ = s2
	c2 := New(s2, init2, parts2, Options{})
	res2, err := c2.ReachState(ctx, bdd.False)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Reachable || !res2.Complete {
		t.Fatalf("false target must be trivially unreachable: %+v", res2)
	}
}

func TestSingleQueryContract(t *testing.T) {
	ctx := context.Background()
	s, init, parts := chainSpace(t)
	x := s.Vars[0]
	c := New(s, init, parts, Options{})
	if _, err := c.ReachState(ctx, x.EqConst(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReachState(ctx, x.EqConst(2)); err == nil {
		t.Fatal("second query on the same Checker should error")
	}
}

func TestMaxDepthBound(t *testing.T) {
	ctx := context.Background()
	s, init, parts := chainSpace(t)
	x := s.Vars[0]
	c := New(s, init, parts, Options{MaxDepth: 1})
	res, err := c.ReachState(ctx, x.EqConst(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Reachable {
		t.Fatalf("x=3 is unreachable: %+v", res)
	}
	// Depth 1 cannot close the loop-free argument on this chain (a loop-free
	// path of length 1 exists), so the result must be marked incomplete.
	if res.Complete {
		t.Fatalf("MaxDepth 1 cannot prove unreachability here: %+v", res)
	}
}

// TestDeterminism: identical queries on fresh Checkers produce identical
// traces and statistics.
func TestDeterminism(t *testing.T) {
	ctx := context.Background()
	run := func() (*Result, error) {
		s, init, parts := chainSpace(t)
		c := New(s, init, parts, Options{})
		return c.ReachState(ctx, s.Vars[0].EqConst(2))
	}
	r1, err := run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Steps, r2.Steps) || r1.Stats != r2.Stats || r1.Depth != r2.Depth {
		t.Fatalf("identical queries diverged:\n%+v\n%+v", r1, r2)
	}
}
