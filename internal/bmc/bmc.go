// Package bmc is the bounded-model-checking bridge between the symbolic
// model (internal/symbolic state spaces whose predicates are BDDs) and the
// CDCL solver (internal/sat): it Tseitin-encodes the init/transition/target
// predicates into CNF templates, unrolls the transition relation k steps with
// one solver instance solved incrementally under assumptions, and decodes a
// satisfying assignment back into the concrete step sequence that
// internal/witness certifies.
//
// The unrolling is sound and, on finite spaces, complete: a query at depth k
// asks for a path of exactly k steps, depths are tried in increasing order
// (so the first SAT answer is a shortest path, matching the BDD engine's
// breadth-first witness distance), and after each miss a loop-free-path query
// decides termination — if no loop-free path of length k exists, every
// reachable state was already covered by a smaller depth and the target is
// unreachable (the recurrence-diameter argument). Every structure is built
// in deterministic order (frame by frame, template clause by clause) and the
// solver itself is deterministic, so BMC verdicts, traces, and statistics are
// reproducible byte for byte.
//
// Encoding. Each BDD node becomes one auxiliary variable x constrained by
// the full biconditional x ↔ ITE(v, hi, lo) (up to four 3-clauses). The full
// equivalence — not just the implication half sufficient for satisfiability —
// means auxiliary values are functionally determined by the state bits, so
// the CNF's models project bijectively onto the BDD's models; the property
// tests rely on that exactness. Encoding happens once per predicate into a
// frame-shiftable template over symbols (current bit i / next bit i / aux j)
// and is stamped out per frame with fresh auxiliaries and that frame's
// solver variables, so repeated unrolling never re-walks the BDD.
//
// The Checker borrows the caller's BDD nodes (init, parts, targets) and
// evaluates them pointwise during trace decoding; the caller keeps them
// rooted for the Checker's lifetime, as verify's scopes already do.
package bmc

import (
	"context"
	"fmt"

	"repro/internal/bdd"
	"repro/internal/sat"
	"repro/internal/symbolic"
	"repro/internal/witness"
)

// Part is one named slice of the transition relation, used both to build the
// step disjunction and to attribute decoded steps (process name for program
// parts, fault name for fault parts) exactly as the BDD witness extractor
// does.
type Part struct {
	Name string
	Kind witness.StepKind
	Rel  bdd.Node
}

// Options tune a Checker.
type Options struct {
	// MaxDepth bounds the unrolling. Zero means the default (64). If the
	// bound is hit before the loop-free-path argument closes, the Result is
	// marked incomplete.
	MaxDepth int
	// Attribution, when non-nil, overrides the parts used to label decoded
	// steps. The step union stays the parts passed to New; the attribution
	// list may be wider — verify uses this so the final step of a ReachTrans
	// query (drawn from the full system relation, not just the realizable
	// parts) still gets a name.
	Attribution []Part
}

// DefaultMaxDepth is the unrolling bound when Options.MaxDepth is zero.
const DefaultMaxDepth = 64

// Result is a BMC verdict.
type Result struct {
	// Reachable reports whether a path from init to the target was found.
	Reachable bool
	// Depth is the number of steps of the found path, or the depth at which
	// the search concluded (last depth examined).
	Depth int
	// Complete is true when the verdict is exact: either a path was found,
	// or the loop-free-path argument proved no deeper path can exist. False
	// only when MaxDepth was exhausted first.
	Complete bool
	// Steps is the decoded path (first entry kind "init") when Reachable.
	Steps []witness.Step
	// Stats are the solver's counters for this query.
	Stats sat.Stats
}

// template is a frame-shiftable CNF encoding of one BDD. Symbols: values
// 0..nbits-1 are current-state bits, nbits..2nbits-1 next-state bits, and
// 2nbits+j the j-th auxiliary. A tlit is sym<<1|neg, or one of the constants.
type template struct {
	clauses [][]int32
	root    int32
	nAux    int
}

const (
	tTrue  int32 = -1
	tFalse int32 = -2
)

// Checker unrolls one reachability query. Build with New, run exactly one
// ReachState or ReachTrans call.
type Checker struct {
	space  *symbolic.Space
	init   bdd.Node
	parts  []Part
	attrib []Part
	opts   Options

	sol   *sat.Solver
	nbits int
	slots []*symbolic.Var // slot -> finite-domain variable (repeated per bit)
	bit   []int           // slot -> bit index within its variable
	symOf map[int]int32   // BDD variable id -> symbol

	tmplValid *template
	tmplInit  *template
	tmplParts []*template

	frames     [][]int   // frame -> slot -> solver variable
	stepGuards []sat.Lit // stepGuards[t] assumes the step t -> t+1
	pathGuards []sat.Lit // pathGuards[k] assumes frames 0..k pairwise distinct

	used bool
}

// New builds a Checker for paths that start in init (a current-state
// predicate) and step through the union of the given relation parts. All
// nodes must belong to the space's manager and stay rooted while the Checker
// is in use.
func New(space *symbolic.Space, init bdd.Node, parts []Part, opts Options) *Checker {
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = DefaultMaxDepth
	}
	c := &Checker{
		space:  space,
		init:   init,
		parts:  parts,
		attrib: opts.Attribution,
		opts:   opts,
		sol:    sat.New(),
		symOf:  make(map[int]int32),
	}
	if c.attrib == nil {
		c.attrib = parts
	}
	for _, v := range space.Vars {
		cur, next := v.CurLevels(), v.NextLevels()
		for b := range cur {
			slot := int32(c.nbits)
			c.symOf[cur[b]] = slot
			c.symOf[next[b]] = slot // offset by nbits once nbits is final
			c.slots = append(c.slots, v)
			c.bit = append(c.bit, b)
			c.nbits++
		}
	}
	// Next-state ids were recorded with their slot; shift them now that the
	// total is known.
	for _, v := range space.Vars {
		for _, id := range v.NextLevels() {
			c.symOf[id] += int32(c.nbits)
		}
	}
	c.tmplValid = c.encode(space.ValidCur())
	c.tmplInit = c.encode(c.space.M.And(init, space.ValidCur()))
	for _, p := range c.parts {
		c.tmplParts = append(c.tmplParts, c.encode(c.space.M.And(p.Rel, space.ValidTrans())))
	}
	return c
}

// encode Tseitin-encodes a BDD into a template, one auxiliary per DAG node.
func (c *Checker) encode(f bdd.Node) *template {
	t := &template{}
	memo := make(map[bdd.Node]int32)
	t.root = c.encodeRec(f, t, memo)
	return t
}

func (c *Checker) encodeRec(f bdd.Node, t *template, memo map[bdd.Node]int32) int32 {
	if f == bdd.False {
		return tFalse
	}
	if f == bdd.True {
		return tTrue
	}
	if x, ok := memo[f]; ok {
		return x
	}
	m := c.space.M
	sym, ok := c.symOf[m.VarOf(f)]
	if !ok {
		panic(fmt.Sprintf("bmc: BDD variable %d is not a state bit of the space", m.VarOf(f)))
	}
	v := sym << 1
	lo := c.encodeRec(m.Low(f), t, memo)
	hi := c.encodeRec(m.High(f), t, memo)
	x := (int32(2*c.nbits+t.nAux) << 1)
	t.nAux++
	// x ↔ ITE(v, hi, lo), with constant children folded away.
	switch hi {
	case tTrue:
		t.clauses = append(t.clauses, []int32{x, v ^ 1})
	case tFalse:
		t.clauses = append(t.clauses, []int32{x ^ 1, v ^ 1})
	default:
		t.clauses = append(t.clauses,
			[]int32{x ^ 1, v ^ 1, hi},
			[]int32{x, v ^ 1, hi ^ 1})
	}
	switch lo {
	case tTrue:
		t.clauses = append(t.clauses, []int32{x, v})
	case tFalse:
		t.clauses = append(t.clauses, []int32{x ^ 1, v})
	default:
		t.clauses = append(t.clauses,
			[]int32{x ^ 1, v, lo},
			[]int32{x, v, lo ^ 1})
	}
	memo[f] = x
	return x
}

// usesNext reports whether the template mentions a next-state symbol.
func (t *template) usesNext(nbits int) bool {
	check := func(l int32) bool {
		sym := int(l >> 1)
		return sym >= nbits && sym < 2*nbits
	}
	if t.root >= 0 && check(t.root) {
		return true
	}
	for _, cl := range t.clauses {
		for _, l := range cl {
			if check(l) {
				return true
			}
		}
	}
	return false
}

// instantiate stamps the template out at frame t (next-state symbols land in
// frame t+1, which must exist), allocating fresh auxiliaries and asserting
// the definitional clauses. It returns the mapped root literal and false when
// the root is constant (then the bool result carries its value).
func (c *Checker) instantiate(tmpl *template, t int) (sat.Lit, bool, bool) {
	base := c.sol.NumVars()
	for j := 0; j < tmpl.nAux; j++ {
		c.sol.NewVar()
	}
	mapLit := func(l int32) sat.Lit {
		sym := int(l >> 1)
		neg := l&1 == 1
		var v int
		switch {
		case sym < c.nbits:
			v = c.frames[t][sym]
		case sym < 2*c.nbits:
			v = c.frames[t+1][sym-c.nbits]
		default:
			v = base + (sym - 2*c.nbits)
		}
		return sat.MkLit(v, neg)
	}
	cl := make([]sat.Lit, 0, 3)
	for _, tcl := range tmpl.clauses {
		cl = cl[:0]
		for _, l := range tcl {
			cl = append(cl, mapLit(l))
		}
		c.sol.AddClause(cl...)
	}
	switch tmpl.root {
	case tTrue:
		return 0, true, false
	case tFalse:
		return 0, false, false
	}
	return mapLit(tmpl.root), false, true
}

// ensureFrames materializes frames 0..n-1: per-frame solver variables and
// validity constraints, the guarded step into each new frame, and the
// loop-free-path scaffolding (pairwise distinctness of the new frame against
// every earlier one, guarded by a chained per-depth literal).
func (c *Checker) ensureFrames(n int) {
	for len(c.frames) < n {
		t := len(c.frames)
		fv := make([]int, c.nbits)
		for i := range fv {
			fv[i] = c.sol.NewVar()
		}
		c.frames = append(c.frames, fv)
		if root, cst, hasRoot := c.instantiate(c.tmplValid, t); hasRoot {
			c.sol.AddClause(root)
		} else if !cst {
			c.sol.AddClause() // no valid encodings: empty space
		}
		if t == 0 {
			if root, cst, hasRoot := c.instantiate(c.tmplInit, 0); hasRoot {
				c.sol.AddClause(root)
			} else if !cst {
				c.sol.AddClause() // empty init: every query is UNSAT
			}
		} else {
			// Step t-1 -> t: the disjunction of the part roots, enforced only
			// under this step's guard so that deeper frames never constrain
			// shallower queries (a path ending in a deadlock state must stay
			// satisfiable).
			guard := sat.MkLit(c.sol.NewVar(), false)
			c.stepGuards = append(c.stepGuards, guard)
			step := []sat.Lit{guard.Not()}
			sat_ := false
			for _, tp := range c.tmplParts {
				root, cst, hasRoot := c.instantiate(tp, t-1)
				if hasRoot {
					step = append(step, root)
				} else if cst {
					sat_ = true
				}
			}
			if !sat_ {
				c.sol.AddClause(step...)
			}
		}
		c.ensurePathGuard(t)
	}
}

// ensurePathGuard adds the loop-free constraint for depth k: assuming
// pathGuards[k] forces all frames 0..k pairwise distinct. Guards chain
// (u_k → u_{k-1}) so only the new frame's pairs are added per depth.
func (c *Checker) ensurePathGuard(k int) {
	u := sat.MkLit(c.sol.NewVar(), false)
	c.pathGuards = append(c.pathGuards, u)
	if k == 0 {
		return
	}
	c.sol.AddClause(u.Not(), c.pathGuards[k-1])
	for i := 0; i < k; i++ {
		// u → frames i and k differ in at least one bit.
		diff := []sat.Lit{u.Not()}
		for b := 0; b < c.nbits; b++ {
			d := sat.MkLit(c.sol.NewVar(), false)
			xi := sat.MkLit(c.frames[i][b], false)
			xk := sat.MkLit(c.frames[k][b], false)
			c.sol.AddClause(d.Not(), xi, xk)
			c.sol.AddClause(d.Not(), xi.Not(), xk.Not())
			diff = append(diff, d)
		}
		c.sol.AddClause(diff...)
	}
}

// ReachState decides whether a state satisfying target (a current-state
// predicate) is reachable from init via the part union, and returns a
// shortest witness path when it is.
func (c *Checker) ReachState(ctx context.Context, target bdd.Node) (*Result, error) {
	return c.run(ctx, target, false)
}

// ReachTrans decides whether a state with an outgoing transition in bad is
// reachable, i.e. whether a path via the part union can end with one bad
// step. The final step is constrained by bad alone — callers intersect bad
// with whatever system relation they mean beforehand (verify passes
// (program ∪ fault) ∩ spec-bad, mirroring the BDD check's conjunction). The
// returned path includes that final step.
func (c *Checker) ReachTrans(ctx context.Context, bad bdd.Node) (*Result, error) {
	return c.run(ctx, bad, true)
}

func (c *Checker) run(ctx context.Context, target bdd.Node, trans bool) (*Result, error) {
	if c.used {
		return nil, fmt.Errorf("bmc: Checker supports a single query")
	}
	c.used = true
	if target == bdd.False {
		return &Result{Complete: true, Stats: c.sol.Stats()}, nil
	}
	tmplTarget := c.encode(target)
	// A transition target constrains frame k+1; so does a stray next-state
	// bit in a state target (then the extra frame is merely existential).
	extra := 0
	if trans || tmplTarget.usesNext(c.nbits) {
		extra = 1
	}
	for k := 0; k <= c.opts.MaxDepth; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c.ensureFrames(k + 1 + extra)
		act := sat.MkLit(c.sol.NewVar(), false)
		root, cst, hasRoot := c.instantiate(tmplTarget, k)
		switch {
		case hasRoot:
			c.sol.AddClause(act.Not(), root)
		case !cst:
			c.sol.AddClause(act.Not())
		}
		// (A constant-true target needs nothing under the activation literal:
		// any state of the frame satisfies it.)
		assume := append([]sat.Lit{}, c.stepGuards[:k]...)
		assume = append(assume, act)
		found, err := c.sol.Solve(ctx, assume...)
		if err != nil {
			return nil, err
		}
		if found {
			steps, derr := c.decode(k + boolToInt(trans))
			if derr != nil {
				return nil, derr
			}
			return &Result{Reachable: true, Depth: k + boolToInt(trans), Complete: true, Steps: steps, Stats: c.sol.Stats()}, nil
		}
		c.sol.AddClause(act.Not())

		// Termination: no loop-free path of length k means every reachable
		// state shows up at some depth < k+1, all of which answered UNSAT.
		free, err := c.sol.Solve(ctx, append(append([]sat.Lit{}, c.stepGuards[:k]...), c.pathGuards[k])...)
		if err != nil {
			return nil, err
		}
		if !free {
			return &Result{Depth: k, Complete: true, Stats: c.sol.Stats()}, nil
		}
	}
	return &Result{Depth: c.opts.MaxDepth, Stats: c.sol.Stats()}, nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// decode reads the model's frames 0..depth back into named states and
// attributes each step to the first part whose relation contains it,
// mirroring the BDD extractor's attribution order.
func (c *Checker) decode(depth int) ([]witness.Step, error) {
	states := make([]map[string]int, depth+1)
	for t := 0; t <= depth; t++ {
		st := make(map[string]int, len(c.space.Vars))
		for _, v := range c.space.Vars {
			st[v.Name] = 0
		}
		for slot, v := range c.slots {
			if c.sol.Value(c.frames[t][slot]) {
				st[v.Name] |= 1 << c.bit[slot]
			}
		}
		states[t] = st
	}
	steps := []witness.Step{{Kind: witness.StepInit, State: states[0]}}
	for t := 1; t <= depth; t++ {
		kind, by, err := c.attribute(states[t-1], states[t])
		if err != nil {
			return nil, fmt.Errorf("bmc: step %d: %w", t, err)
		}
		steps = append(steps, witness.Step{Kind: kind, By: by, State: states[t]})
	}
	return steps, nil
}

// attribute finds the first attribution part containing the concrete
// transition, in list order — the same program-first precedence the BDD
// witness extractor applies.
func (c *Checker) attribute(from, to map[string]int) (witness.StepKind, string, error) {
	m := c.space.M
	asg := c.assignment(from, to)
	for _, p := range c.attrib {
		if p.Rel != bdd.False && m.Eval(p.Rel, asg) {
			return p.Kind, p.Name, nil
		}
	}
	return "", "", fmt.Errorf("transition %v -> %v is in no part", from, to)
}

// assignment builds the BDD-variable-id-indexed total assignment of a
// concrete transition, the same layout the witness checker uses.
func (c *Checker) assignment(from, to map[string]int) []bool {
	out := make([]bool, c.space.M.NumVars())
	for _, v := range c.space.Vars {
		val, nval := from[v.Name], to[v.Name]
		for b, id := range v.CurLevels() {
			out[id] = val&(1<<b) != 0
		}
		for b, id := range v.NextLevels() {
			out[id] = nval&(1<<b) != 0
		}
	}
	return out
}

// Stats returns the solver counters accumulated so far.
func (c *Checker) Stats() sat.Stats { return c.sol.Stats() }
