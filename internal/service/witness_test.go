package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

// TestSpecWitnessValidationAndKey: out-of-range witness requests are
// rejected, and the witness count is part of the content address — a report
// with embedded demonstrations must never be served to a client that asked
// for none (and vice versa).
func TestSpecWitnessValidationAndKey(t *testing.T) {
	for _, bad := range []int{-1, MaxWitnesses + 1} {
		sp := Spec{Case: "ba", N: 3, Witnesses: bad}
		if _, _, _, err := sp.resolve(); err == nil {
			t.Errorf("witnesses=%d resolved without error", bad)
		}
	}
	key := func(w int) string {
		sp := Spec{Case: "ba", N: 3, Witnesses: w}
		_, _, k, err := sp.resolve()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	if key(0) == key(2) || key(2) == key(3) {
		t.Fatal("witness count not folded into the content address")
	}
	if key(2) != key(2) {
		t.Fatal("content address not deterministic")
	}
}

// TestJobEmbedsCertifiedWitnesses submits a job asking for demonstrations
// and checks the finished report carries them, with the per-phase witness
// timing recorded and surfaced through the metrics counters.
func TestJobEmbedsCertifiedWitnesses(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Close()
	v, err := s.Submit(Spec{Case: "sc", N: 4, Witnesses: 3})
	if err != nil {
		t.Fatal(err)
	}
	final, err := s.Wait(context.Background(), v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Result == nil {
		t.Fatalf("job did not finish: state=%s err=%q", final.State, final.Error)
	}
	if len(final.Result.Witnesses) == 0 {
		t.Fatal("report embeds no recovery demonstrations")
	}
	if len(final.Result.Witnesses) > 3 {
		t.Fatalf("report embeds %d demonstrations, asked for 3", len(final.Result.Witnesses))
	}
	for i, tr := range final.Result.Witnesses {
		if len(tr.Steps) == 0 || tr.Faults() == 0 {
			t.Errorf("demonstration %d is degenerate: %+v", i, tr)
		}
	}
	if final.Result.WitnessNS <= 0 {
		t.Fatal("witness extraction time not recorded")
	}
	if m := s.Metrics(); m.WitnessNS <= 0 {
		t.Fatalf("witness time missing from metrics: %+v", m)
	}

	// A job that asks for no witnesses must not be served the cached
	// witness-bearing report.
	v2, err := s.Submit(Spec{Case: "sc", N: 4})
	if err != nil {
		t.Fatal(err)
	}
	final2, err := s.Wait(context.Background(), v2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final2.Result == nil || len(final2.Result.Witnesses) != 0 {
		t.Fatalf("witness-free job served a witness-bearing report")
	}
}

// TestMetricsJSONEndpoint checks /metrics.json serves the structured
// snapshot alongside the Prometheus text exposition at /metrics.
func TestMetricsJSONEndpoint(t *testing.T) {
	base, s, shutdown := bootDaemon(t, Config{Workers: 1, QueueDepth: 4})
	defer shutdown()

	v, err := s.Submit(Spec{Case: "ba", N: 2, Witnesses: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), v.ID); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(base + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics.json = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var snap MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Submitted < 1 || snap.Completed < 1 || snap.Workers != 1 {
		t.Fatalf("snapshot inconsistent: %+v", snap)
	}
	if snap.WitnessNS <= 0 {
		t.Fatalf("witness phase time missing from snapshot: %+v", snap)
	}

	// The text exposition must carry the same witness counter.
	resp2, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	text, _ := io.ReadAll(resp2.Body)
	if !containsLine(string(text), "ftrepaird_phase_witness_ns_total") {
		t.Fatalf("Prometheus exposition misses witness counter:\n%s", text)
	}
}

func containsLine(body, name string) bool {
	for _, line := range splitLines(body) {
		if len(line) >= len(name) && line[:len(name)] == name {
			return true
		}
	}
	return false
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
