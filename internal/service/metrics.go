package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// waitRing retains the most recent queue-wait durations (submission to
// worker pickup) in a fixed ring, so the metrics endpoints can report live
// p50/p99 latency without unbounded history. Percentile reads copy and sort
// the ring — at 512 entries that is cheap and only paid on scrape.
type waitRing struct {
	mu   sync.Mutex
	buf  [512]int64 // nanoseconds
	next int
	n    int
}

func (r *waitRing) record(d time.Duration) {
	r.mu.Lock()
	r.buf[r.next] = int64(d)
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// percentiles returns the p50 and p99 of the retained waits (zeros when no
// job has been picked up yet).
func (r *waitRing) percentiles() (p50, p99 time.Duration) {
	r.mu.Lock()
	vals := append([]int64(nil), r.buf[:r.n]...)
	r.mu.Unlock()
	if len(vals) == 0 {
		return 0, 0
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(vals)-1))
		return time.Duration(vals[i])
	}
	return at(0.50), at(0.99)
}

// metrics holds the service's monotonic counters. Everything is atomic so
// workers and HTTP handlers never contend on a lock for bookkeeping; gauges
// (queue depth, cache size) are read from their owning structures at render
// time instead of being duplicated here.
type metrics struct {
	submitted     int64 // jobs accepted into the system (including cache hits)
	rejected      int64 // submissions refused because the queue was full
	shed          int64 // predicted-expensive submissions shed over the watermark
	quotaRejected int64 // submissions refused by a client's token bucket
	completed     int64 // jobs reaching StateDone (cache hits included)
	failed        int64 // jobs reaching StateFailed
	cancelled     int64 // jobs reaching StateCancelled
	synthRuns     int64 // actual syntheses executed by workers
	running       int64 // gauge: jobs currently executing

	compileNS int64 // accumulated per-phase wall time, in nanoseconds
	step1NS   int64
	step2NS   int64
	verifyNS  int64
	witnessNS int64
	totalNS   int64

	gcRuns     int64 // BDD collections across all finished jobs
	nodesFreed int64 // BDD nodes reclaimed across all finished jobs
	peakNodes  int64 // gauge: largest per-job peak live node count seen
	liveNodes  int64 // gauge: live node count of the most recent job

	// Fixpoint-scheduler work across all finished jobs (the engine's
	// frontier-chained scheduler; see internal/program).
	fixRounds       int64
	fixImages       int64
	fixFrontierPeak int64 // gauge: largest frontier BDD seen in any job
	fixOpSpawns     int64
	fixOpSteals     int64

	// CDCL solver work across all jobs verified under the SAT backend.
	satConflicts    int64
	satDecisions    int64
	satPropagations int64
	satLearned      int64
	satRestarts     int64
	satMaxLevel     int64 // gauge: deepest decision level seen in any job
}

func (m *metrics) add(p *int64, v int64) { atomic.AddInt64(p, v) }
func (m *metrics) get(p *int64) int64    { return atomic.LoadInt64(p) }
func (m *metrics) set(p *int64, v int64) { atomic.StoreInt64(p, v) }

// maxOf raises *p to v if v is larger (lock-free running maximum).
func (m *metrics) maxOf(p *int64, v int64) {
	for {
		cur := atomic.LoadInt64(p)
		if v <= cur || atomic.CompareAndSwapInt64(p, cur, v) {
			return
		}
	}
}

// write renders the metrics in the Prometheus text exposition format.
func (m *metrics) write(w io.Writer, s *Service) {
	hits, misses := s.cache.Counters()
	g := func(name string, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	c := func(name string, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	c("ftrepaird_jobs_submitted_total", "Jobs accepted for processing.", m.get(&m.submitted))
	c("ftrepaird_jobs_rejected_total", "Submissions rejected because the queue was full.", m.get(&m.rejected))
	c("ftrepaird_jobs_shed_total", "Predicted-expensive submissions shed over the queue watermark.", m.get(&m.shed))
	c("ftrepaird_quota_rejected_total", "Submissions rejected by per-client quotas.", m.get(&m.quotaRejected))
	c("ftrepaird_jobs_completed_total", "Jobs finished successfully.", m.get(&m.completed))
	c("ftrepaird_jobs_failed_total", "Jobs finished with an error.", m.get(&m.failed))
	c("ftrepaird_jobs_cancelled_total", "Jobs cancelled by deadline or client.", m.get(&m.cancelled))
	c("ftrepaird_synthesis_total", "Repair syntheses actually executed (cache hits excluded).", m.get(&m.synthRuns))
	c("ftrepaird_cache_hits_total", "Results served from the content-addressed cache.", hits)
	c("ftrepaird_cache_misses_total", "Cache lookups that required a synthesis.", misses)
	ratio := 0.0
	if hits+misses > 0 {
		ratio = float64(hits) / float64(hits+misses)
	}
	fmt.Fprintf(w, "# HELP ftrepaird_cache_hit_ratio Fraction of lookups served from cache.\n"+
		"# TYPE ftrepaird_cache_hit_ratio gauge\nftrepaird_cache_hit_ratio %g\n", ratio)

	g("ftrepaird_queue_depth", "Jobs waiting in the bounded work queue (both lanes).", int64(s.q.depth()))
	g("ftrepaird_jobs_running", "Jobs currently being synthesized.", m.get(&m.running))
	g("ftrepaird_cache_entries", "Entries resident in the result cache.", int64(s.cache.Len()))
	g("ftrepaird_cache_spill_entries", "Entries resident in the persistent cache spill.", int64(s.cache.SpillLen()))
	spillHits, spillBad, spillErrs := s.cache.SpillCounters()
	c("ftrepaird_cache_spill_hits_total", "Memory misses served from the persistent spill.", spillHits)
	c("ftrepaird_cache_spill_rejected_total", "Spill entries rejected at load (corrupt or mismatched).", spillBad)
	c("ftrepaird_cache_spill_errors_total", "Failed spill writes (spill is best-effort).", spillErrs)
	g("ftrepaird_workers", "Size of the worker pool.", int64(s.cfg.Workers))
	p50, p99 := s.waits.percentiles()
	g("ftrepaird_queue_wait_p50_ms", "Median queue wait of recent jobs, in milliseconds.", p50.Milliseconds())
	g("ftrepaird_queue_wait_p99_ms", "99th-percentile queue wait of recent jobs, in milliseconds.", p99.Milliseconds())

	c("ftrepaird_phase_compile_ns_total", "Wall time spent compiling models to BDDs.", m.get(&m.compileNS))
	c("ftrepaird_phase_step1_ns_total", "Wall time spent in Step 1 (Add-Masking).", m.get(&m.step1NS))
	c("ftrepaird_phase_step2_ns_total", "Wall time spent in Step 2 (realize).", m.get(&m.step2NS))
	c("ftrepaird_phase_verify_ns_total", "Wall time spent in independent verification.", m.get(&m.verifyNS))
	c("ftrepaird_phase_witness_ns_total", "Wall time spent extracting witness traces.", m.get(&m.witnessNS))
	c("ftrepaird_phase_repair_ns_total", "Wall time spent in repair (Step 1 + Step 2 + outer loop).", m.get(&m.totalNS))

	c("ftrepaird_bdd_gc_runs_total", "BDD garbage collections across finished jobs.", m.get(&m.gcRuns))
	c("ftrepaird_bdd_nodes_freed_total", "BDD nodes reclaimed across finished jobs.", m.get(&m.nodesFreed))
	g("ftrepaird_bdd_peak_nodes", "Largest per-job peak live BDD node count observed.", m.get(&m.peakNodes))
	g("ftrepaird_bdd_live_nodes", "Live BDD node count of the most recently finished job.", m.get(&m.liveNodes))

	c("ftrepaird_fixpoint_rounds_total", "Reachability-scheduler rounds across finished jobs.", m.get(&m.fixRounds))
	c("ftrepaird_fixpoint_images_total", "Frontier images computed across finished jobs.", m.get(&m.fixImages))
	g("ftrepaird_fixpoint_frontier_peak_nodes", "Largest frontier BDD (nodes) observed in any job.", m.get(&m.fixFrontierPeak))
	c("ftrepaird_fixpoint_op_spawns_total", "Fork/join apply branches spawned across finished jobs.", m.get(&m.fixOpSpawns))
	c("ftrepaird_fixpoint_op_steals_total", "Fork/join apply branches stolen across finished jobs.", m.get(&m.fixOpSteals))

	c("ftrepaird_sat_conflicts_total", "CDCL conflicts across jobs verified under the SAT backend.", m.get(&m.satConflicts))
	c("ftrepaird_sat_decisions_total", "CDCL decisions across jobs verified under the SAT backend.", m.get(&m.satDecisions))
	c("ftrepaird_sat_propagations_total", "CDCL unit propagations across jobs verified under the SAT backend.", m.get(&m.satPropagations))
	c("ftrepaird_sat_learned_clauses_total", "Clauses learned across jobs verified under the SAT backend.", m.get(&m.satLearned))
	c("ftrepaird_sat_restarts_total", "CDCL restarts across jobs verified under the SAT backend.", m.get(&m.satRestarts))
	g("ftrepaird_sat_max_decision_level", "Deepest CDCL decision level observed in any job.", m.get(&m.satMaxLevel))
}

// MetricsSnapshot is the JSON shape of GET /metrics.json: the same counters
// and gauges as the Prometheus text endpoint, for tooling that prefers a
// structured read (dashboards, tests, jq one-liners).
type MetricsSnapshot struct {
	Submitted     int64 `json:"submitted"`
	Rejected      int64 `json:"rejected"`
	Shed          int64 `json:"shed"`
	QuotaRejected int64 `json:"quota_rejected"`
	Completed     int64 `json:"completed"`
	Failed        int64 `json:"failed"`
	Cancelled     int64 `json:"cancelled"`
	SynthRuns     int64 `json:"synthesis_runs"`
	Running       int64 `json:"running"`

	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	CacheEntries int   `json:"cache_entries"`
	// CacheHitRate is hits/(hits+misses) over the daemon's lifetime; 0 when
	// no lookup has happened yet.
	CacheHitRate  float64 `json:"cache_hit_rate"`
	SpillEntries  int     `json:"cache_spill_entries"`
	SpillHits     int64   `json:"cache_spill_hits"`
	SpillRejected int64   `json:"cache_spill_rejected"`
	SpillErrors   int64   `json:"cache_spill_errors"`
	QueueDepth    int     `json:"queue_depth"`
	// Queue-wait percentiles over a ring of recent jobs (submission to
	// worker pickup), in milliseconds.
	QueueWaitP50MS int64 `json:"queue_wait_p50_ms"`
	QueueWaitP99MS int64 `json:"queue_wait_p99_ms"`
	Workers        int   `json:"workers"`

	CompileNS int64 `json:"compile_ns"`
	Step1NS   int64 `json:"step1_ns"`
	Step2NS   int64 `json:"step2_ns"`
	VerifyNS  int64 `json:"verify_ns"`
	WitnessNS int64 `json:"witness_ns"`
	TotalNS   int64 `json:"total_ns"`

	BDDGCRuns     int64 `json:"bdd_gc_runs"`
	BDDNodesFreed int64 `json:"bdd_nodes_freed"`
	BDDPeakNodes  int64 `json:"bdd_peak_nodes"`
	BDDLiveNodes  int64 `json:"bdd_live_nodes"`

	FixRounds       int64 `json:"fix_rounds"`
	FixImages       int64 `json:"fix_images"`
	FixFrontierPeak int64 `json:"fix_frontier_peak"`
	FixOpSpawns     int64 `json:"fix_op_spawns"`
	FixOpSteals     int64 `json:"fix_op_steals"`

	SATConflicts    int64 `json:"sat_conflicts"`
	SATDecisions    int64 `json:"sat_decisions"`
	SATPropagations int64 `json:"sat_propagations"`
	SATLearned      int64 `json:"sat_learned_clauses"`
	SATRestarts     int64 `json:"sat_restarts"`
	SATMaxLevel     int64 `json:"sat_max_decision_level"`
}

// Metrics snapshots the service's counters and gauges.
func (s *Service) Metrics() MetricsSnapshot {
	m := &s.metrics
	hits, misses := s.cache.Counters()
	spillHits, spillBad, spillErrs := s.cache.SpillCounters()
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	p50, p99 := s.waits.percentiles()
	return MetricsSnapshot{
		Submitted:     m.get(&m.submitted),
		Rejected:      m.get(&m.rejected),
		Shed:          m.get(&m.shed),
		QuotaRejected: m.get(&m.quotaRejected),
		Completed:     m.get(&m.completed),
		Failed:        m.get(&m.failed),
		Cancelled:     m.get(&m.cancelled),
		SynthRuns:     m.get(&m.synthRuns),
		Running:       m.get(&m.running),

		CacheHits:      hits,
		CacheMisses:    misses,
		CacheEntries:   s.cache.Len(),
		CacheHitRate:   hitRate,
		SpillEntries:   s.cache.SpillLen(),
		SpillHits:      spillHits,
		SpillRejected:  spillBad,
		SpillErrors:    spillErrs,
		QueueDepth:     s.q.depth(),
		QueueWaitP50MS: p50.Milliseconds(),
		QueueWaitP99MS: p99.Milliseconds(),
		Workers:        s.cfg.Workers,

		CompileNS: m.get(&m.compileNS),
		Step1NS:   m.get(&m.step1NS),
		Step2NS:   m.get(&m.step2NS),
		VerifyNS:  m.get(&m.verifyNS),
		WitnessNS: m.get(&m.witnessNS),
		TotalNS:   m.get(&m.totalNS),

		BDDGCRuns:     m.get(&m.gcRuns),
		BDDNodesFreed: m.get(&m.nodesFreed),
		BDDPeakNodes:  m.get(&m.peakNodes),
		BDDLiveNodes:  m.get(&m.liveNodes),

		FixRounds:       m.get(&m.fixRounds),
		FixImages:       m.get(&m.fixImages),
		FixFrontierPeak: m.get(&m.fixFrontierPeak),
		FixOpSpawns:     m.get(&m.fixOpSpawns),
		FixOpSteals:     m.get(&m.fixOpSteals),

		SATConflicts:    m.get(&m.satConflicts),
		SATDecisions:    m.get(&m.satDecisions),
		SATPropagations: m.get(&m.satPropagations),
		SATLearned:      m.get(&m.satLearned),
		SATRestarts:     m.get(&m.satRestarts),
		SATMaxLevel:     m.get(&m.satMaxLevel),
	}
}
