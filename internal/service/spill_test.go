package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func testKey(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

func decodeBody(resp *http.Response, v any) error {
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	return json.Unmarshal(raw, v)
}

// --- cache-level spill behavior --------------------------------------------

// TestSpillCacheSurvivesRestart: a write-through entry is served by a fresh
// Cache over the same directory — the persistence contract of the spill.
func TestSpillCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewSpillCache(4, dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("job-1")
	c1.Put(key, core.RunReport{Model: "m", Algorithm: "lazy", StateBits: 7})

	c2, err := NewSpillCache(4, dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(key)
	if !ok {
		t.Fatal("entry did not survive the restart")
	}
	if got.Model != "m" || got.StateBits != 7 {
		t.Fatalf("restored entry mangled: %+v", got)
	}
	if hits, _, _ := c2.SpillCounters(); hits != 1 {
		t.Fatalf("spill hits = %d; want 1", hits)
	}
}

// TestSpillCorruptionRejected: tampered and truncated entries fail
// validation, are deleted, and report as misses — never served.
func TestSpillCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewSpillCache(0, dir, 16) // no memory tier: force disk reads
	if err != nil {
		t.Fatal(err)
	}
	tampered, truncated := testKey("tampered"), testKey("truncated")
	c1.Put(tampered, core.RunReport{Model: "m", Algorithm: "lazy"})
	c1.Put(truncated, core.RunReport{Model: "m", Algorithm: "lazy"})

	// Flip report bytes under an intact checksum, and truncate outright.
	raw, err := os.ReadFile(filepath.Join(dir, tampered+".json"))
	if err != nil {
		t.Fatal(err)
	}
	mut := bytes.Replace(raw, []byte(`"algorithm":"lazy"`), []byte(`"algorithm":"hazy"`), 1)
	if bytes.Equal(mut, raw) {
		t.Fatalf("tamper target not found in %s", raw)
	}
	if err := os.WriteFile(filepath.Join(dir, tampered+".json"), mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, truncated+".json"), raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := NewSpillCache(0, dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(tampered); ok {
		t.Fatal("checksum-violating entry was served")
	}
	if _, ok := c2.Get(truncated); ok {
		t.Fatal("truncated entry was served")
	}
	if _, bad, _ := c2.SpillCounters(); bad != 2 {
		t.Fatalf("spill rejections = %d; want 2", bad)
	}
	for _, key := range []string{tampered, truncated} {
		if _, err := os.Stat(filepath.Join(dir, key+".json")); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("corrupt entry %s not deleted: %v", key, err)
		}
	}
}

// TestSpillEviction: the disk store is bounded, oldest first, and the
// content survives in memory regardless.
func TestSpillEviction(t *testing.T) {
	dir := t.TempDir()
	c, err := NewSpillCache(8, dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		c.Put(testKey(string(rune('a'+i))), core.RunReport{Model: "m"})
	}
	if n := c.SpillLen(); n != 2 {
		t.Fatalf("spill holds %d entries; want 2 (bounded)", n)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(files) != 2 {
		t.Fatalf("%d spill files on disk; want 2", len(files))
	}
}

// --- service-level failure paths -------------------------------------------

// TestE2ESpillRestartServesWithoutRecompute is the crash/restart acceptance:
// a daemon computes a job, dies, and its successor over the same spill
// directory serves the result as a cache hit — zero syntheses.
func TestE2ESpillRestartServesWithoutRecompute(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Case: "ba", N: 3}

	base, _, shutdown := bootDaemon(t, Config{Workers: 2, SpillDir: dir})
	view, _ := postJob(t, base, spec)
	first := awaitJob(t, base, view.ID, time.Minute)
	if first.State != StateDone {
		t.Fatalf("job failed: %s", first.Error)
	}
	shutdown()

	base2, svc2, shutdown2 := bootDaemon(t, Config{Workers: 2, SpillDir: dir})
	defer shutdown2()
	again, status := postJob(t, base2, spec)
	if status != http.StatusOK || !again.CacheHit || again.State != StateDone {
		t.Fatalf("restarted daemon: status=%d cache_hit=%v state=%s; want inline spill hit",
			status, again.CacheHit, again.State)
	}
	if again.Result == nil || again.Result.Model != first.Result.Model {
		t.Fatal("spill-served report does not match the computed one")
	}
	if m := svc2.Metrics(); m.SynthRuns != 0 || m.SpillHits == 0 {
		t.Fatalf("restart recomputed: synth_runs=%d spill_hits=%d", m.SynthRuns, m.SpillHits)
	}
}

// TestE2ECorruptSpillRecomputed: a corrupted spill entry is rejected at load
// and the job is honestly recomputed rather than served wrong.
func TestE2ECorruptSpillRecomputed(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Case: "ba", N: 3}

	base, _, shutdown := bootDaemon(t, Config{Workers: 2, SpillDir: dir})
	view, _ := postJob(t, base, spec)
	first := awaitJob(t, base, view.ID, time.Minute)
	if first.State != StateDone {
		t.Fatalf("job failed: %s", first.Error)
	}
	shutdown()

	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no spill files written (err=%v)", err)
	}
	for _, f := range files {
		if err := os.WriteFile(f, []byte("{definitely not a valid entry"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	base2, svc2, shutdown2 := bootDaemon(t, Config{Workers: 2, SpillDir: dir})
	defer shutdown2()
	again, _ := postJob(t, base2, spec)
	if again.CacheHit {
		t.Fatal("corrupted spill entry served as a cache hit")
	}
	redone := awaitJob(t, base2, again.ID, time.Minute)
	if redone.State != StateDone {
		t.Fatalf("recompute failed: %s", redone.Error)
	}
	m := svc2.Metrics()
	if m.SpillRejected == 0 {
		t.Fatal("corrupt entry was not counted as rejected")
	}
	if m.SynthRuns == 0 {
		t.Fatal("no synthesis ran — where did the result come from?")
	}
}

// TestQuotaExhaustionTypedError: the per-client token bucket rejects with
// the typed sentinel at the API boundary and a structured 429 over HTTP.
func TestQuotaExhaustionTypedError(t *testing.T) {
	s := New(Config{Workers: 1, QuotaRate: 0.0001, QuotaBurst: 1})
	defer s.Close()
	if _, err := s.SubmitFor("alice", Spec{Case: "ba", N: 3}); err != nil {
		t.Fatalf("first submission rejected: %v", err)
	}
	_, err := s.SubmitFor("alice", Spec{Case: "ba", N: 4})
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("err = %v; want ErrQuotaExceeded", err)
	}
	// A different client has its own bucket.
	if _, err := s.SubmitFor("bob", Spec{Case: "ba", N: 5}); err != nil {
		t.Fatalf("bob hit alice's quota: %v", err)
	}
	// Cache hits are served even with the bucket empty: tokens pay for
	// synthesis, not reads.
	deadline := time.Now().Add(time.Minute)
	for {
		if time.Now().After(deadline) {
			t.Fatal("first job never finished")
		}
		if v, err := s.SubmitFor("alice", Spec{Case: "ba", N: 3}); err == nil && v.CacheHit {
			break
		} else if err != nil && !errors.Is(err, ErrQuotaExceeded) {
			t.Fatalf("cache-hit probe: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHTTPQuotaAndRetryAfter covers the capacity-error surface: 429 with
// code quota_exceeded, a Retry-After header, and queue depth in the body.
func TestHTTPQuotaAndRetryAfter(t *testing.T) {
	base, _, shutdown := bootDaemon(t, Config{Workers: 1, QuotaRate: 0.0001, QuotaBurst: 1})
	defer shutdown()

	post := func(spec string, client string) *http.Response {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPost, base+"/v1/repair", strings.NewReader(spec))
		req.Header.Set("X-Client-ID", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp := post(`{"case":"ba","n":3}`, "carol")
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("first submission: %d", resp.StatusCode)
	}

	resp = post(`{"case":"ba","n":4}`, "carol")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status = %d; want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After header")
	}
	var ae APIError
	if err := decodeBody(resp, &ae); err != nil {
		t.Fatal(err)
	}
	if ae.Code != CodeQuotaExceeded || ae.RetryAfterS < 1 {
		t.Fatalf("429 body = %+v; want quota_exceeded with retry_after_s", ae)
	}
}

// TestHTTPQueueFullRetryAfter: a hard-full queue rejects 503 with backoff
// guidance (Retry-After header + queue_depth in the body).
func TestHTTPQueueFullRetryAfter(t *testing.T) {
	// FastLaneNS < 0 disables the fast lane so one slow job plus one queued
	// job saturates the single general lane deterministically.
	base, svc, shutdown := bootDaemon(t, Config{Workers: 1, QueueDepth: 1, FastLaneNS: -1})
	defer shutdown()

	slow, _ := postJob(t, base, Spec{Case: "sc", N: 14})
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, _ := svc.Job(slow.ID)
		if v.State == StateRunning || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}

	sawReject := false
	for i := 0; i < 8 && !sawReject; i++ {
		body := strings.NewReader(`{"case":"ba","n":` + string(rune('2'+i)) + `}`)
		resp, err := http.Post(base+"/v1/repair", "application/json", body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			sawReject = true
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("503 missing Retry-After header")
			}
			var ae APIError
			if err := decodeBody(resp, &ae); err != nil {
				t.Fatal(err)
			}
			if ae.Code != CodeQueueFull || ae.QueueDepth < 1 || ae.RetryAfterS < 1 {
				t.Fatalf("503 body = %+v; want queue_full with queue_depth and retry_after_s", ae)
			}
		}
		resp.Body.Close()
	}
	if !sawReject {
		t.Fatal("queue never rejected")
	}
	svc.Cancel(slow.ID)
}
