package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
)

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/repair      submit a Spec (JSON body); responds 202 with the
//	                       job view, or 200 when served from cache
//	GET    /v1/jobs/{id}   job status/result
//	DELETE /v1/jobs/{id}   request cancellation
//	GET    /healthz        liveness + basic readiness
//	GET    /metrics        Prometheus text exposition
//	GET    /metrics.json   the same counters/gauges as structured JSON
//
// Error responses are structured JSON objects {"code": "...", "message":
// "..."} with conventional status codes: 400 bad_json/invalid_spec, 404
// unknown_job, 405 method_not_allowed, 503 queue_full/shutting_down. The
// code is a stable machine-readable token; the message is human-readable
// detail.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/repair", s.handleSubmit)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	return mux
}

// APIError is the JSON error body of every non-2xx response.
type APIError struct {
	// Code is a stable machine-readable token (e.g. "invalid_spec",
	// "unknown_job", "queue_full").
	Code string `json:"code"`
	// Message is the human-readable detail.
	Message string `json:"message"`
}

// The stable error codes of the HTTP API.
const (
	CodeBadJSON          = "bad_json"           // 400: body is not valid Spec JSON
	CodeInvalidSpec      = "invalid_spec"       // 400: well-formed but unacceptable spec
	CodeUnknownJob       = "unknown_job"        // 404
	CodeMethodNotAllowed = "method_not_allowed" // 405
	CodeQueueFull        = "queue_full"         // 503
	CodeShuttingDown     = "shutting_down"      // 503
)

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, APIError{Code: code, Message: err.Error()})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, errors.New("use POST"))
		return
	}
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadJSON, err)
		return
	}
	view, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusServiceUnavailable, CodeQueueFull, err)
		return
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, CodeShuttingDown, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, err)
		return
	}
	status := http.StatusAccepted
	if view.State == StateDone {
		status = http.StatusOK // content-addressed cache hit: result inline
	}
	writeJSON(w, status, view)
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.Contains(id, "/") {
		writeError(w, http.StatusNotFound, CodeUnknownJob, errors.New("bad job path"))
		return
	}
	switch r.Method {
	case http.MethodGet:
		view, ok := s.Job(id)
		if !ok {
			writeError(w, http.StatusNotFound, CodeUnknownJob, errors.New("unknown job "+id))
			return
		}
		writeJSON(w, http.StatusOK, view)
	case http.MethodDelete:
		view, ok := s.Cancel(id)
		if !ok {
			writeError(w, http.StatusNotFound, CodeUnknownJob, errors.New("unknown job "+id))
			return
		}
		writeJSON(w, http.StatusAccepted, view)
	default:
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, errors.New("use GET or DELETE"))
	}
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	jobs := len(s.jobs)
	s.mu.Unlock()
	if closed {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "shutting down"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"workers":     s.cfg.Workers,
		"queue_depth": s.q.depth(),
		"jobs":        jobs,
	})
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w, s)
}

func (s *Service) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}
