package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
)

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/repair      submit a Spec (JSON body); responds 202 with the
//	                       job view, or 200 when served from cache
//	GET    /v1/jobs/{id}   job status/result
//	DELETE /v1/jobs/{id}   request cancellation
//	GET    /healthz        liveness + basic readiness
//	GET    /metrics        Prometheus text exposition
//
// Error responses are JSON objects {"error": "..."} with conventional
// status codes (400 bad spec, 404 unknown job, 503 queue full or closed).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/repair", s.handleSubmit)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	view, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	status := http.StatusAccepted
	if view.State == StateDone {
		status = http.StatusOK // content-addressed cache hit: result inline
	}
	writeJSON(w, status, view)
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.Contains(id, "/") {
		writeError(w, http.StatusNotFound, errors.New("bad job path"))
		return
	}
	switch r.Method {
	case http.MethodGet:
		view, ok := s.Job(id)
		if !ok {
			writeError(w, http.StatusNotFound, errors.New("unknown job "+id))
			return
		}
		writeJSON(w, http.StatusOK, view)
	case http.MethodDelete:
		view, ok := s.Cancel(id)
		if !ok {
			writeError(w, http.StatusNotFound, errors.New("unknown job "+id))
			return
		}
		writeJSON(w, http.StatusAccepted, view)
	default:
		writeError(w, http.StatusMethodNotAllowed, errors.New("use GET or DELETE"))
	}
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	jobs := len(s.jobs)
	s.mu.Unlock()
	if closed {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "shutting down"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"workers":     s.cfg.Workers,
		"queue_depth": s.q.depth(),
		"jobs":        jobs,
	})
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w, s)
}
