package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/repair             submit a Spec (JSON body); responds 202 with
//	                              the job view, or 200 when served from cache
//	GET    /v1/jobs/{id}          job status/result
//	GET    /v1/jobs/{id}/events   streaming progress: SSE (default) or JSON
//	                              long-poll with ?poll=1&after=N
//	DELETE /v1/jobs/{id}          request cancellation
//	GET    /healthz               liveness + basic readiness
//	GET    /metrics               Prometheus text exposition
//	GET    /metrics.json          the same counters/gauges as structured JSON
//
// Error responses are structured JSON objects {"code": "...", "message":
// "...", ...} with conventional status codes: 400 bad_json/invalid_spec,
// 404 unknown_job, 405 method_not_allowed, 429 quota_exceeded, 503
// queue_full/overloaded/shutting_down. The code is a stable
// machine-readable token; the message is human-readable detail. Capacity
// rejections (429/503) carry a Retry-After header and the current
// queue_depth in the body so clients can back off intelligently.
//
// Clients are identified for quota purposes by the X-Client-ID header when
// present, else by the remote address' host part.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/repair", s.handleSubmit)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	return mux
}

// APIError is the JSON error body of every non-2xx response.
type APIError struct {
	// Code is a stable machine-readable token (e.g. "invalid_spec",
	// "unknown_job", "queue_full").
	Code string `json:"code"`
	// Message is the human-readable detail.
	Message string `json:"message"`
	// QueueDepth is the work queue's depth at rejection time, set on
	// capacity errors (queue_full, overloaded, quota_exceeded) so clients
	// can scale their backoff to the congestion they are seeing.
	QueueDepth int `json:"queue_depth,omitempty"`
	// RetryAfterS mirrors the Retry-After header, in seconds.
	RetryAfterS int `json:"retry_after_s,omitempty"`
}

// The stable error codes of the HTTP API.
const (
	CodeBadJSON          = "bad_json"           // 400: body is not valid Spec JSON
	CodeInvalidSpec      = "invalid_spec"       // 400: well-formed but unacceptable spec
	CodeUnknownJob       = "unknown_job"        // 404
	CodeMethodNotAllowed = "method_not_allowed" // 405
	CodeQuotaExceeded    = "quota_exceeded"     // 429: client token bucket empty
	CodeQueueFull        = "queue_full"         // 503
	CodeOverloaded       = "overloaded"         // 503: cost-aware load shedding
	CodeShuttingDown     = "shutting_down"      // 503
)

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, APIError{Code: code, Message: err.Error()})
}

// writeCapacityError writes a 429/503 with backoff guidance: a Retry-After
// header scaled to the current congestion and the queue depth in the body.
func (s *Service) writeCapacityError(w http.ResponseWriter, status int, code string, err error) {
	depth := s.q.depth()
	// Heuristic backoff: one second per queued job, clamped to [1s, 30s].
	// The p50 queue wait would be a sharper signal but is zero on a cold
	// daemon; depth is always live.
	retry := depth
	if retry < 1 {
		retry = 1
	}
	if retry > 30 {
		retry = 30
	}
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	writeJSON(w, status, APIError{Code: code, Message: err.Error(), QueueDepth: depth, RetryAfterS: retry})
}

// clientID attributes a request for quota purposes: the X-Client-ID header
// when the caller identifies itself, else the remote host.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, errors.New("use POST"))
		return
	}
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadJSON, err)
		return
	}
	view, err := s.SubmitFor(clientID(r), spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		s.writeCapacityError(w, http.StatusServiceUnavailable, CodeQueueFull, err)
		return
	case errors.Is(err, ErrOverloaded):
		s.writeCapacityError(w, http.StatusServiceUnavailable, CodeOverloaded, err)
		return
	case errors.Is(err, ErrQuotaExceeded):
		s.writeCapacityError(w, http.StatusTooManyRequests, CodeQuotaExceeded, err)
		return
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, CodeShuttingDown, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, err)
		return
	}
	status := http.StatusAccepted
	if view.State == StateDone {
		status = http.StatusOK // content-addressed cache hit: result inline
	}
	writeJSON(w, status, view)
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id, ok := strings.CutSuffix(rest, "/events"); ok && id != "" && !strings.Contains(id, "/") {
		s.handleJobEvents(w, r, id)
		return
	}
	id := rest
	if id == "" || strings.Contains(id, "/") {
		writeError(w, http.StatusNotFound, CodeUnknownJob, errors.New("bad job path"))
		return
	}
	switch r.Method {
	case http.MethodGet:
		view, ok := s.Job(id)
		if !ok {
			writeError(w, http.StatusNotFound, CodeUnknownJob, errors.New("unknown job "+id))
			return
		}
		writeJSON(w, http.StatusOK, view)
	case http.MethodDelete:
		view, ok := s.Cancel(id)
		if !ok {
			writeError(w, http.StatusNotFound, CodeUnknownJob, errors.New("unknown job "+id))
			return
		}
		writeJSON(w, http.StatusAccepted, view)
	default:
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, errors.New("use GET or DELETE"))
	}
}

// EventsPage is the JSON shape of the long-poll fallback: the events after
// the client's cursor and whether the stream is complete (the job reached a
// terminal state and every event has been delivered).
type EventsPage struct {
	Events []Event `json:"events"`
	Done   bool    `json:"done"`
}

// handleJobEvents streams a job's progress. The default is Server-Sent
// Events: one frame per event ("event: <type>", "id: <seq>", "data:
// <Event JSON>"), ending after the terminal state event. ?poll=1 selects
// the long-poll fallback for clients without SSE plumbing: the response is
// one EventsPage with everything after ?after=N, blocking up to ?wait_ms
// (default 25s, capped 60s) for the first new event.
func (s *Service) handleJobEvents(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, errors.New("use GET"))
		return
	}
	j, ok := s.jobByID(id)
	if !ok {
		writeError(w, http.StatusNotFound, CodeUnknownJob, errors.New("unknown job "+id))
		return
	}
	q := r.URL.Query()
	after, _ := strconv.ParseInt(q.Get("after"), 10, 64)

	if q.Get("poll") != "" {
		waitMS, _ := strconv.ParseInt(q.Get("wait_ms"), 10, 64)
		if waitMS <= 0 {
			waitMS = 25_000
		}
		if waitMS > 60_000 {
			waitMS = 60_000
		}
		deadline := time.NewTimer(time.Duration(waitMS) * time.Millisecond)
		defer deadline.Stop()
		for {
			evs, done, next := j.events.after(after)
			if len(evs) > 0 || done {
				writeJSON(w, http.StatusOK, EventsPage{Events: evs, Done: done})
				return
			}
			select {
			case <-next:
			case <-deadline.C:
				writeJSON(w, http.StatusOK, EventsPage{Events: []Event{}, Done: false})
				return
			case <-r.Context().Done():
				return
			}
		}
	}

	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		// No streaming support in the response path: degrade to one
		// long-poll page so proxies without Flusher still work.
		evs, done, _ := j.events.after(after)
		writeJSON(w, http.StatusOK, EventsPage{Events: evs, Done: done})
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	for {
		evs, done, next := j.events.after(after)
		for _, e := range evs {
			data, err := json.Marshal(e)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", e.Type, e.Seq, data)
			after = e.Seq
		}
		if len(evs) > 0 {
			flusher.Flush()
		}
		if done {
			return
		}
		select {
		case <-next:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	jobs := len(s.jobs)
	s.mu.Unlock()
	if closed {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "shutting down"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"workers":     s.cfg.Workers,
		"queue_depth": s.q.depth(),
		"jobs":        jobs,
	})
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w, s)
}

func (s *Service) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}
