package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"

	"repro/internal/program"
	"repro/internal/repair"
)

// defKey computes the content address of a repair job: a SHA-256 over a
// canonical serialization of the parsed program.Def plus the algorithm and
// the repair options that affect the result. Two submissions with the same
// key are guaranteed to describe the same synthesis problem, regardless of
// how they were written down (.ftr text with different whitespace/comments,
// a built-in case study, or the Go API), so the result cache and in-flight
// deduplication can serve one from the other.
//
// Canonical form: every component is written with an explicit kind tag and a
// length-delimited or line-oriented encoding in declaration order —
// declaration order is semantic (it fixes the BDD variable order), so it is
// hashed as-is; read/write sets are order-insensitive in the semantics and
// are sorted before hashing. Expressions are hashed via their String()
// rendering, which is deterministic and injective on distinct structures up
// to operator formatting.
func defKey(def *program.Def, alg string, opts repair.Options) string {
	h := sha256.New()
	wr := func(format string, args ...any) {
		fmt.Fprintf(h, format, args...)
	}

	// Workers does not change the synthesized program (the engine is
	// deterministic across worker counts), but the report records the
	// effective count, so runs with different budgets must not alias in the
	// cache. The node budget can turn a success into a failure, so it is part
	// of the address too. The version prefix is bumped whenever the report
	// shape for the same inputs changes (v3: witnesses embedded in RunReport;
	// v4: node-lifetime counters in RunReport and node_budget in the spec;
	// v5: reorder in the spec and bdd_reorder_runs in RunReport; v6: the
	// verification backend in the spec and backend/sat counters in RunReport;
	// v7: the engine mode in the spec — hashed canonically, so the legacy
	// flat spelling and the structured engine object alias — and engine_mode
	// in RunReport; v8: the cost model in the spec — hashed canonically like
	// the engine, flat and structured spellings alias — plus per-action cost
	// annotations and cost rules from the .ftr source, and the cost fields in
	// RunReport).
	mode := opts.Mode
	if mode == "" {
		mode = string(program.ModePartitioned)
	}
	wr("v8\x00alg=%s\x00heur=%t\x00defercyc=%t\x00maxiter=%d\x00mode=%s\x00workers=%d\x00nodebudget=%d\x00reorder=%d\x00",
		alg, opts.ReachabilityHeuristic, opts.DeferCycleBreaking, opts.MaxOuterIterations, mode, opts.Workers, opts.NodeBudget, opts.Reorder)
	if opts.Costs != nil {
		wr("cost:default=%d:minimize=%t\x00", opts.Costs.Default, opts.MinimizeCost)
		names := make([]string, 0, len(opts.Costs.Actions))
		for name := range opts.Costs.Actions {
			names = append(names, name)
		}
		sort.Strings(names)
		wr("costactions=%d\x00", len(names))
		for _, name := range names {
			wr("%s=%d\x00", name, opts.Costs.Actions[name])
		}
	} else {
		wr("cost=nil\x00")
	}

	wr("name=%s\x00", def.Name)
	wr("vars=%d\x00", len(def.Vars))
	for _, v := range def.Vars {
		wr("var:%s:%d\x00", v.Name, v.Domain)
	}

	wr("procs=%d\x00", len(def.Processes))
	for _, p := range def.Processes {
		wr("proc:%s\x00", p.Name)
		writeSorted(h, "read", p.Read)
		writeSorted(h, "write", p.Write)
		wr("actions=%d\x00", len(p.Actions))
		for _, a := range p.Actions {
			writeAction(h, a)
		}
	}

	wr("faults=%d\x00", len(def.Faults))
	for _, a := range def.Faults {
		writeAction(h, a)
	}

	wr("costrules=%d\x00", len(def.CostRules))
	for _, r := range def.CostRules {
		wr("costrule:%d\x00", r.Cost)
		writeExpr(h, "pred", r.Pred)
	}

	writeExpr(h, "invariant", def.Invariant)
	writeExpr(h, "badstates", def.BadStates)
	writeExpr(h, "badtrans", def.BadTrans)
	wr("liveness=%d\x00", len(def.Liveness))
	for _, lt := range def.Liveness {
		wr("leadsto:%s\x00", lt.Name)
		writeExpr(h, "from", lt.From)
		writeExpr(h, "to", lt.To)
	}

	return hex.EncodeToString(h.Sum(nil))
}

func writeSorted(w io.Writer, tag string, names []string) {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	fmt.Fprintf(w, "%s=%d\x00", tag, len(sorted))
	for _, n := range sorted {
		fmt.Fprintf(w, "%s\x00", n)
	}
}

func writeAction(w io.Writer, a program.Action) {
	fmt.Fprintf(w, "action:%s:cost=%d\x00", a.Name, a.Cost)
	writeExpr(w, "guard", a.Guard)
	fmt.Fprintf(w, "updates=%d\x00", len(a.Updates))
	for _, u := range a.Updates {
		fmt.Fprintf(w, "upd:%d:%s:%d:%s:%v\x00", u.Kind, u.Var, u.Val, u.From, u.Among)
	}
}

// writeExpr hashes an expression by its deterministic String rendering; nil
// (meaning the Def-level default) hashes distinctly from any real expression.
func writeExpr(w io.Writer, tag string, e interface{ String() string }) {
	if e == nil {
		fmt.Fprintf(w, "%s=nil\x00", tag)
		return
	}
	fmt.Fprintf(w, "%s=%s\x00", tag, e.String())
}
