package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/parse"
	"repro/internal/program"
	"repro/internal/repair"
	"repro/internal/verify"
)

// State is a job's position in its lifecycle.
type State string

// Job lifecycle states. Queued and Running are transient; Done, Failed and
// Cancelled are terminal.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// MaxJobWorkers bounds Spec.Workers: each engine worker costs a private BDD
// manager, so an unbounded request would let one client exhaust the daemon's
// memory.
const MaxJobWorkers = 16

// MaxWitnesses bounds Spec.Witnesses: each demonstration costs a serial
// extraction pass and is embedded verbatim in the cached report, so an
// unbounded request would bloat both the worker and the cache.
const MaxWitnesses = 8

// Spec is a repair-job submission: either a built-in case study (Case, N) or
// an inline .ftr model source (Model), plus algorithm and option selectors.
// It is the JSON body of POST /v1/repair.
type Spec struct {
	// Case/N name a built-in case-study instance (ba, bafs, sc, ring, tmr).
	Case string `json:"case,omitempty"`
	N    int    `json:"n,omitempty"`
	// Model is inline .ftr source; mutually exclusive with Case.
	Model string `json:"model,omitempty"`

	// Algorithm is "lazy" (default) or "cautious".
	Algorithm string `json:"algorithm,omitempty"`
	// Workers is the per-job parallel-engine budget: the number of private
	// BDD worker managers fanning out one synthesis. 0 (the default) runs
	// the job serially — the daemon's own pool already parallelizes across
	// jobs — while an explicit 2..MaxJobWorkers lets one wide job use
	// several cores. The synthesized result is identical either way.
	Workers int `json:"workers,omitempty"`
	// Pure disables the reachability heuristic (the paper's ablation).
	Pure bool `json:"pure,omitempty"`
	// DeferCycles moves cycle-breaking after Step 2 (the paper's ablation).
	DeferCycles bool `json:"defer_cycles,omitempty"`
	// NoVerify skips the independent verifier (it runs by default, so every
	// served result is a certified one unless the client opts out).
	NoVerify bool `json:"no_verify,omitempty"`
	// Backend selects the verification backend: "bdd" (the default — exact
	// reachability fixpoints) or "sat" (bounded model checking over the CDCL
	// solver). Part of the content address: the two backends produce the same
	// verdicts but different report bodies (check details, solver counters),
	// so their reports never alias in the cache.
	Backend string `json:"backend,omitempty"`
	// Witnesses asks for up to that many recovery demonstrations (certified
	// traces that leave the invariant via faults and converge back) embedded
	// in the result report, and attaches failure traces to failed verifier
	// checks. 0 (the default) extracts nothing; capped at MaxWitnesses. The
	// field is part of the content address: a report with witnesses and one
	// without never alias in the cache.
	Witnesses int `json:"witnesses,omitempty"`
	// TimeoutMS bounds the synthesis; 0 uses the service default. The clock
	// starts at submission, so time spent queued counts against the job.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// NodeBudget bounds the job's live BDD node count: a synthesis that grows
	// past it (and that garbage collection cannot shrink back under) fails
	// with a budget error instead of exhausting the daemon's memory. 0 (the
	// default) means unbounded. Part of the content address: a budgeted run
	// can fail where an unbudgeted one succeeds, so they never alias.
	NodeBudget int64 `json:"node_budget,omitempty"`
	// Reorder arms dynamic variable reordering on the job's BDD managers: a
	// sifting pass runs after that many node allocations. 0 (the default)
	// leaves reordering off. The synthesized program and its witnesses are
	// identical either way; only node counts and timing differ, which is
	// enough to keep the field in the content address (the report records
	// them).
	Reorder int64 `json:"reorder,omitempty"`

	// Engine is the structured engine configuration, mirroring the library's
	// EngineConfig. Its non-zero fields take precedence over the legacy flat
	// fields above (workers, node_budget, reorder, backend), and both
	// spellings canonicalize to the same content address, so a flat spec and
	// its structured equivalent alias in the cache.
	Engine *EngineSpec `json:"engine,omitempty"`

	// CostDefault, CostActions and MinimizeCost are the flat spellings of the
	// cost configuration; like the flat engine fields they are aliases for the
	// structured Cost object below, which wins field-by-field, and both
	// spellings canonicalize to the same content address.
	CostDefault  int64            `json:"cost_default,omitempty"`
	CostActions  map[string]int64 `json:"cost_actions,omitempty"`
	MinimizeCost bool             `json:"minimize_cost,omitempty"`

	// Cost is the structured cost configuration — the service-side mirror of
	// the library's CostModel plus the minimize switch. Any active cost field
	// (structured or flat) prices the job's transitions and adds
	// achieved_cost/cost_removed to the report; Minimize additionally turns on
	// cost-aware synthesis. Part of the content address: a costed report and
	// an uncosted one never alias.
	Cost *CostSpec `json:"cost,omitempty"`
}

// CostSpec is a Spec's structured cost configuration.
type CostSpec struct {
	// Default is the weight of transitions no other source prices; 0 means 1.
	Default int64 `json:"default,omitempty"`
	// Actions overrides per-action weights by name ("proc.action" or bare
	// "action"); weights must lie in [1, 2^30].
	Actions map[string]int64 `json:"actions,omitempty"`
	// Minimize turns on cost-aware synthesis (cheapest-first cycle breaking
	// and convergence-time recovery thinning); the verdict is unchanged.
	Minimize bool `json:"minimize,omitempty"`
}

// EngineSpec is a Spec's structured engine configuration — the service-side
// mirror of the library's EngineConfig.
type EngineSpec struct {
	// Mode selects the parallel engine: "partitioned" (the default) or
	// "shared". Validated; part of the content address in canonical form.
	Mode string `json:"mode,omitempty"`
	// Workers is the per-job worker count (same semantics and bound as the
	// legacy flat field).
	Workers int `json:"workers,omitempty"`
	// NodeBudget bounds the job's live BDD node count.
	NodeBudget int64 `json:"node_budget,omitempty"`
	// Reorder arms dynamic variable reordering.
	Reorder int64 `json:"reorder,omitempty"`
	// Backend selects the verification backend ("bdd" or "sat").
	Backend string `json:"backend,omitempty"`
}

// resolve parses/builds the program definition and the core job, and
// computes the spec's content address.
func (sp *Spec) resolve() (*program.Def, core.Job, string, error) {
	var def *program.Def
	var err error
	switch {
	case sp.Model != "" && sp.Case != "":
		return nil, core.Job{}, "", fmt.Errorf("service: spec has both model and case")
	case sp.Model != "":
		if def, err = parse.Program(sp.Model); err != nil {
			return nil, core.Job{}, "", fmt.Errorf("service: parsing model: %w", err)
		}
	case sp.Case != "":
		if def, err = core.CaseStudy(sp.Case, sp.N); err != nil {
			return nil, core.Job{}, "", err
		}
	default:
		return nil, core.Job{}, "", fmt.Errorf("service: spec needs either model or case")
	}

	alg := sp.Algorithm
	if alg == "" {
		alg = string(core.LazyRepair)
	}
	if alg != string(core.LazyRepair) && alg != string(core.CautiousRepair) {
		return nil, core.Job{}, "", fmt.Errorf("service: unknown algorithm %q (want %q or %q)",
			alg, core.LazyRepair, core.CautiousRepair)
	}
	// Canonicalize the engine configuration: the structured object wins
	// field-by-field over the legacy flat spellings, and the merged result is
	// what gets validated and hashed — so {"workers": 4} and
	// {"engine": {"workers": 4}} are the same job.
	eng := EngineSpec{}
	if sp.Engine != nil {
		eng = *sp.Engine
	}
	if eng.Workers == 0 {
		eng.Workers = sp.Workers
	}
	if eng.NodeBudget == 0 {
		eng.NodeBudget = sp.NodeBudget
	}
	if eng.Reorder == 0 {
		eng.Reorder = sp.Reorder
	}
	if eng.Backend == "" {
		eng.Backend = sp.Backend
	}
	mode, err := program.ParseMode(eng.Mode)
	if err != nil {
		return nil, core.Job{}, "", fmt.Errorf("service: %w", err)
	}
	if eng.Workers < 0 || eng.Workers > MaxJobWorkers {
		return nil, core.Job{}, "", fmt.Errorf("service: workers %d out of range [0,%d]", eng.Workers, MaxJobWorkers)
	}
	if sp.Witnesses < 0 || sp.Witnesses > MaxWitnesses {
		return nil, core.Job{}, "", fmt.Errorf("service: witnesses %d out of range [0,%d]", sp.Witnesses, MaxWitnesses)
	}
	if eng.NodeBudget < 0 {
		return nil, core.Job{}, "", fmt.Errorf("service: node_budget %d must be non-negative", eng.NodeBudget)
	}
	if eng.Reorder < 0 {
		return nil, core.Job{}, "", fmt.Errorf("service: reorder %d must be non-negative", eng.Reorder)
	}
	backend, err := verify.ParseBackend(eng.Backend)
	if err != nil {
		return nil, core.Job{}, "", fmt.Errorf("service: %w", err)
	}

	// Canonicalize the cost configuration the same way: structured wins
	// field-by-field, the merged result is validated and hashed.
	cost := CostSpec{}
	if sp.Cost != nil {
		cost = *sp.Cost
	}
	if cost.Default == 0 {
		cost.Default = sp.CostDefault
	}
	if len(cost.Actions) == 0 {
		cost.Actions = sp.CostActions
	}
	cost.Minimize = cost.Minimize || sp.MinimizeCost
	if cost.Default < 0 {
		return nil, core.Job{}, "", fmt.Errorf("service: cost default %d must be non-negative", cost.Default)
	}
	const maxCostWeight = 1 << 30
	for name, w := range cost.Actions {
		if w < 1 || w > maxCostWeight {
			return nil, core.Job{}, "", fmt.Errorf("service: cost for action %q is %d, want [1,%d]", name, w, int64(maxCostWeight))
		}
	}
	costed := cost.Default != 0 || len(cost.Actions) > 0 || cost.Minimize

	opts := repair.DefaultOptions()
	opts.ReachabilityHeuristic = !sp.Pure
	opts.DeferCycleBreaking = sp.DeferCycles
	opts.Mode = string(mode)
	// Unlike the library default (0 → GOMAXPROCS), a daemon job defaults to
	// a serial engine: the service's worker pool already runs jobs in
	// parallel, so intra-job width is opt-in per job.
	opts.Workers = eng.Workers
	if opts.Workers == 0 {
		opts.Workers = 1
	}
	opts.NodeBudget = eng.NodeBudget
	opts.Reorder = eng.Reorder
	if costed {
		opts.Costs = &repair.CostModel{Default: cost.Default, Actions: cost.Actions}
		opts.MinimizeCost = cost.Minimize
	}

	job := core.Job{
		Def:       def,
		Algorithm: core.Algorithm(alg),
		Options:   opts,
		Verify:    !sp.NoVerify,
		Backend:   backend,
		Witnesses: sp.Witnesses,
	}
	// Verification and witness extraction are independent post-passes over
	// the same result, so they are part of the content address only through
	// the report shape; include them (and the backend, hashed in canonical
	// form so "" and "bdd" alias) so runs with different report shapes never
	// alias in the cache.
	key := defKey(def, alg+fmt.Sprintf("/verify=%t/witnesses=%d/backend=%s", job.Verify, job.Witnesses, backend), opts)
	return def, job, key, nil
}

// ContentKey validates a spec and returns its content address without
// registering a job — the routing primitive of the cluster coordinator,
// which consistent-hashes this key across replicas so identical jobs land
// on (and dedup within) the same node.
func ContentKey(spec Spec) (string, error) {
	_, _, key, err := spec.resolve()
	return key, err
}

// job is the service's internal record of one submission.
type job struct {
	id  string
	key string

	spec      Spec
	coreJob   core.Job
	client    string       // submitting client (quota attribution); may be empty
	predicted CostEstimate // the admission cost model's prediction
	lane      string       // "fast" or "general"

	ctx    context.Context
	cancel context.CancelCauseFunc
	done   chan struct{} // closed exactly once on reaching a terminal state
	logger *jobLogger
	events *eventLog

	mu       sync.Mutex
	state    State
	err      string
	report   *core.RunReport
	cacheHit bool

	submitted time.Time
	started   time.Time
	finished  time.Time
}

// JobView is the externally visible snapshot of a job — the JSON shape of
// GET /v1/jobs/{id} and of submission responses.
type JobView struct {
	ID    string `json:"id"`
	Key   string `json:"key"`
	State State  `json:"state"`
	// CacheHit marks results served from the content-addressed cache or
	// coalesced onto an identical in-flight synthesis.
	CacheHit bool   `json:"cache_hit"`
	Error    string `json:"error,omitempty"`
	// Lane is the queue lane the admission cost model routed the job to
	// ("fast" for predicted-cheap jobs, "general" otherwise); Predicted is
	// the model's estimate.
	Lane      string        `json:"lane,omitempty"`
	Predicted *CostEstimate `json:"predicted,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`

	Result *core.RunReport `json:"result,omitempty"`
	Log    []string        `json:"log,omitempty"`
}

// view snapshots the job under its lock.
func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:          j.id,
		Key:         j.key,
		State:       j.state,
		CacheHit:    j.cacheHit,
		Error:       j.err,
		Lane:        j.lane,
		SubmittedAt: j.submitted,
		Result:      j.report,
		Log:         j.logger.snapshot(),
	}
	if j.predicted.TotalNS > 0 {
		p := j.predicted
		v.Predicted = &p
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	return v
}

// jobLogger adapts repair.Options.Logf to the worker pool: it retains the
// last max lines under a mutex, making the per-job log safe to snapshot from
// the HTTP handlers while a worker is writing it. (A single repair call logs
// sequentially — see the Options.Logf contract — but the reader is always a
// different goroutine, so the lock is load-bearing.)
type jobLogger struct {
	mu    sync.Mutex
	max   int
	start int // ring start
	lines []string
}

func newJobLogger(max int) *jobLogger {
	if max < 1 {
		max = 1
	}
	return &jobLogger{max: max}
}

func (l *jobLogger) logf(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.lines) < l.max {
		l.lines = append(l.lines, line)
		return
	}
	l.lines[l.start] = line
	l.start = (l.start + 1) % l.max
}

func (l *jobLogger) snapshot() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.lines) == 0 {
		return nil
	}
	out := make([]string, 0, len(l.lines))
	for i := 0; i < len(l.lines); i++ {
		out = append(out, l.lines[(l.start+i)%len(l.lines)])
	}
	return out
}
