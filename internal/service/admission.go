package service

import (
	"errors"
	"sync"
	"time"
)

// ErrQuotaExceeded is returned by Submit when the submitting client's
// token bucket is empty; HTTP callers see it as 429 Too Many Requests with
// a Retry-After header. The error is typed so in-process callers (the
// coordinator, tests) can branch on it with errors.Is.
var ErrQuotaExceeded = errors.New("service: client quota exceeded")

// ErrOverloaded is returned by Submit when the queue depth has crossed the
// load-shedding watermark and the job is predicted expensive: the daemon
// sheds work it expects to hold a worker for a long time while it still has
// headroom for cheap jobs, instead of rejecting everything only when the
// queue is hard-full. HTTP callers see 503 with Retry-After and the current
// queue depth.
var ErrOverloaded = errors.New("service: shedding predicted-expensive jobs (queue over watermark)")

// quotas is a per-client token-bucket table. Each client accrues rate
// tokens per second up to burst; a submission spends one token. Buckets are
// created on first sight and pruned once they are both full and idle, so
// the table's size tracks the active client set rather than the lifetime
// one.
type quotas struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	buckets map[string]*bucket
	now     func() time.Time // test seam
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newQuotas(rate float64, burst int) *quotas {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &quotas{rate: rate, burst: float64(burst), buckets: make(map[string]*bucket), now: time.Now}
}

// allow spends one token from client's bucket, reporting false (and the
// wait until a token accrues) when it is empty.
func (q *quotas) allow(client string) (ok bool, retryAfter time.Duration) {
	if q == nil || client == "" {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	b, found := q.buckets[client]
	if !found {
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[client] = b
		if len(q.buckets) > 4096 {
			q.pruneLocked(now)
		}
	}
	b.tokens = b.tokens + now.Sub(b.last).Seconds()*q.rate
	if b.tokens > q.burst {
		b.tokens = q.burst
	}
	b.last = now
	if b.tokens < 1 {
		need := (1 - b.tokens) / q.rate
		return false, time.Duration(need * float64(time.Second))
	}
	b.tokens--
	return true, 0
}

// pruneLocked drops buckets that have been idle long enough to refill
// completely — they are indistinguishable from fresh ones.
func (q *quotas) pruneLocked(now time.Time) {
	refill := time.Duration(q.burst / q.rate * float64(time.Second))
	for id, b := range q.buckets {
		if now.Sub(b.last) > refill {
			delete(q.buckets, id)
		}
	}
}
