package service

import (
	"sync"
	"time"
)

// Event is one entry in a job's progress stream: a lifecycle transition
// (type "state") or the start of a synthesis phase (type "phase"). Events
// are the payload of GET /v1/jobs/{id}/events, both as SSE frames and as
// the long-poll JSON fallback. Seq is monotonically increasing per job and
// is the resume cursor: a client that reconnects passes the last seq it saw
// and receives only what it missed.
type Event struct {
	Seq    int64  `json:"seq"`
	TimeMS int64  `json:"time_ms"` // wall clock, Unix milliseconds
	Type   string `json:"type"`    // "state" or "phase"
	// Phase is a core phase name ("compile", "step1", "step2", "witness",
	// "verify") on phase events.
	Phase string `json:"phase,omitempty"`
	// State is the job's new lifecycle state on state events.
	State State `json:"state,omitempty"`
	// Message carries detail: the error on failed/cancelled transitions,
	// "cache" when a done state was served without a synthesis.
	Message string `json:"message,omitempty"`
}

// eventLog is a job's append-only progress history plus a broadcast
// primitive: readers snapshot everything after a cursor and get a channel
// that closes on the next append. The log is bounded by construction — a
// job emits a handful of state events and at most two phase events per
// outer repair iteration (MaxOuterIterations caps those) — so it is never
// truncated and cursors stay valid for the job's lifetime.
type eventLog struct {
	mu     sync.Mutex
	events []Event
	notify chan struct{} // closed and replaced on every append
	done   bool          // a terminal state event has been appended
}

func newEventLog() *eventLog {
	return &eventLog{notify: make(chan struct{})}
}

// append records one event, stamping seq and time, and wakes all waiters.
// terminal marks the log complete: streams end after delivering it.
func (l *eventLog) append(e Event, terminal bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return // the terminal event is final; late hooks are dropped
	}
	e.Seq = int64(len(l.events)) + 1
	e.TimeMS = time.Now().UnixMilli()
	l.events = append(l.events, e)
	l.done = terminal
	close(l.notify)
	l.notify = make(chan struct{})
}

func (l *eventLog) phase(name string) {
	l.append(Event{Type: "phase", Phase: name}, false)
}

func (l *eventLog) state(st State, msg string) {
	l.append(Event{Type: "state", State: st, Message: msg}, st.Terminal())
}

// after returns the events with Seq > cursor, whether the log is complete,
// and a channel that closes on the next append (valid only while no new
// events were returned — callers re-poll after it fires).
func (l *eventLog) after(cursor int64) (evs []Event, done bool, next <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if cursor < 0 {
		cursor = 0
	}
	if int(cursor) < len(l.events) {
		evs = append([]Event(nil), l.events[cursor:]...)
	}
	return evs, l.done, l.notify
}
