package service

import (
	"math"

	"repro/internal/program"
)

// The admission cost model: a log-linear fit over the BENCH_1..7 snapshots
// (9 distinct case-study instances, best serial run per instance) predicting
// a synthesis' wall time and peak BDD node count from two features readable
// straight off the parsed definition, before any compilation — the boolean
// state-bit count and the process count:
//
//	ln(total_ns)   ≈ 12.89 + 0.126·state_bits + 0.296·ln(procs)
//	ln(peak_nodes) ≈  7.49 + 0.131·state_bits − 0.084·ln(procs)
//
// The fit is deliberately crude — admission needs an order of magnitude,
// not a benchmark. On the training instances it stays within about 12× of
// the measured time (most within 3×), which cleanly separates the
// sub-100ms ladder from the minutes-long deep-chain instances that motivate
// budgeted early termination. DESIGN.md §18 records the regression.
const (
	costTimeIntercept = 12.89
	costTimePerBit    = 0.126
	costTimePerLnProc = 0.296

	costNodesIntercept = 7.49
	costNodesPerBit    = 0.131
	costNodesPerLnProc = -0.084
)

// CostEstimate is the admission controller's prediction for one job.
type CostEstimate struct {
	// StateBits and Procs are the model's input features.
	StateBits int `json:"state_bits"`
	Procs     int `json:"procs"`
	// TotalNS is the predicted serial synthesis wall time.
	TotalNS int64 `json:"total_ns"`
	// PeakNodes is the predicted peak live BDD node count.
	PeakNodes int64 `json:"peak_nodes"`
}

// estimateCost evaluates the model on a parsed definition.
func estimateCost(def *program.Def) CostEstimate {
	bits := 0
	for _, v := range def.Vars {
		b := 1
		for (1 << b) < v.Domain {
			b++
		}
		bits += b
	}
	procs := len(def.Processes)
	if procs < 1 {
		procs = 1
	}
	lnProcs := math.Log(float64(procs))
	ns := math.Exp(costTimeIntercept + costTimePerBit*float64(bits) + costTimePerLnProc*lnProcs)
	nodes := math.Exp(costNodesIntercept + costNodesPerBit*float64(bits) + costNodesPerLnProc*lnProcs)
	clamp := func(f float64) int64 {
		if f > math.MaxInt64/2 {
			return math.MaxInt64 / 2
		}
		return int64(f)
	}
	return CostEstimate{StateBits: bits, Procs: procs, TotalNS: clamp(ns), PeakNodes: clamp(nodes)}
}
