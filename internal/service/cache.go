package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"

	"repro/internal/core"
)

// Cache is a bounded, content-addressed LRU of finished repair reports,
// keyed by defKey, with an optional disk-backed spill behind it. It stores
// only the serializable RunReport — never BDD nodes, whose managers belong
// to a single synthesis — so a hit costs one map lookup and entries do not
// pin symbolic state in memory.
//
// With a spill directory configured, Put writes through to disk (one
// content-key-named JSON file per entry, checksummed) and a Get that misses
// in memory falls back to the file store, so results survive both LRU
// eviction and daemon restarts. Entries are validated on load — key,
// checksum, and JSON shape — and a file that fails validation is deleted
// and reported as a miss, so a corrupted spill entry is recomputed rather
// than served.
//
// Safe for concurrent use.
type Cache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used; values are *cacheEntry
	items map[string]*list.Element

	hits, misses int64

	// Spill state; zero when no directory is configured.
	dir        string
	spillMax   int
	spillOrder []string // keys on disk, oldest first (eviction order)
	spillSet   map[string]struct{}
	spillHits  int64 // memory misses served from disk
	spillBad   int64 // entries rejected at load (corrupt/mismatched)
	spillErrs  int64 // write failures (spill is best-effort)
}

type cacheEntry struct {
	key    string
	report core.RunReport
}

// spillEntry is the on-disk format of one spilled result: the content key
// it answers, a SHA-256 over the exact report bytes, and the report itself.
// The filename repeats the key (<key>.json), so a renamed or truncated file
// fails validation instead of aliasing another job.
type spillEntry struct {
	V      int             `json:"v"`
	Key    string          `json:"key"`
	Sum    string          `json:"sum"`
	Report json.RawMessage `json:"report"`
}

const spillVersion = 1

var spillNameRE = regexp.MustCompile(`^[0-9a-f]{64}\.json$`)

// NewCache returns a memory-only cache holding at most max entries (max <= 0
// disables caching: every Get misses and Put is a no-op).
func NewCache(max int) *Cache {
	return &Cache{max: max, order: list.New(), items: make(map[string]*list.Element)}
}

// NewSpillCache returns a cache of max in-memory entries backed by a
// write-through file store in dir holding up to spillMax entries. The
// directory is created if needed and scanned once: existing entries (from a
// previous daemon run) become immediately servable. Filenames that are not
// content-key-shaped are ignored; validation of each entry's contents is
// deferred to first Get.
func NewSpillCache(max int, dir string, spillMax int) (*Cache, error) {
	c := NewCache(max)
	if dir == "" {
		return c, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: spill dir: %w", err)
	}
	if spillMax <= 0 {
		spillMax = 4096
	}
	c.dir = dir
	c.spillMax = spillMax
	c.spillSet = make(map[string]struct{})

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("service: spill dir: %w", err)
	}
	type onDisk struct {
		key string
		mod int64
	}
	var found []onDisk
	for _, e := range entries {
		if e.IsDir() || !spillNameRE.MatchString(e.Name()) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		found = append(found, onDisk{key: e.Name()[:64], mod: info.ModTime().UnixNano()})
	}
	// Oldest first, so eviction after a restart still drops the stalest
	// entries; ties (same mtime granularity) break on the key for
	// determinism.
	sort.Slice(found, func(i, j int) bool {
		if found[i].mod != found[j].mod {
			return found[i].mod < found[j].mod
		}
		return found[i].key < found[j].key
	})
	for _, f := range found {
		c.spillOrder = append(c.spillOrder, f.key)
		c.spillSet[f.key] = struct{}{}
	}
	return c, nil
}

func (c *Cache) path(key string) string { return filepath.Join(c.dir, key+".json") }

// Get returns the cached report for key, if present, and refreshes its
// recency. A memory miss consults the spill store; a valid spilled entry is
// promoted back into the in-memory LRU.
func (c *Cache) Get(key string) (core.RunReport, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.hits++
		c.order.MoveToFront(el)
		return el.Value.(*cacheEntry).report, true
	}
	if report, ok := c.loadSpillLocked(key); ok {
		c.hits++
		c.spillHits++
		if c.max > 0 {
			c.putMemLocked(key, report)
		}
		return report, true
	}
	c.misses++
	return core.RunReport{}, false
}

// loadSpillLocked reads and validates one spilled entry. Any validation
// failure — unreadable file, bad JSON, wrong version, key mismatch,
// checksum mismatch, report that does not decode — deletes the file and
// reports a miss, so the caller recomputes instead of serving corruption.
func (c *Cache) loadSpillLocked(key string) (core.RunReport, bool) {
	if c.dir == "" {
		return core.RunReport{}, false
	}
	if _, ok := c.spillSet[key]; !ok {
		return core.RunReport{}, false
	}
	raw, err := os.ReadFile(c.path(key))
	if err != nil {
		c.dropSpillLocked(key)
		return core.RunReport{}, false
	}
	var ent spillEntry
	var report core.RunReport
	valid := json.Unmarshal(raw, &ent) == nil &&
		ent.V == spillVersion &&
		ent.Key == key &&
		ent.Sum == hex.EncodeToString(sumOf(ent.Report)) &&
		json.Unmarshal(ent.Report, &report) == nil
	if !valid {
		c.spillBad++
		c.dropSpillLocked(key)
		_ = os.Remove(c.path(key))
		return core.RunReport{}, false
	}
	return report, true
}

func sumOf(b []byte) []byte {
	s := sha256.Sum256(b)
	return s[:]
}

func (c *Cache) dropSpillLocked(key string) {
	if _, ok := c.spillSet[key]; !ok {
		return
	}
	delete(c.spillSet, key)
	for i, k := range c.spillOrder {
		if k == key {
			c.spillOrder = append(c.spillOrder[:i], c.spillOrder[i+1:]...)
			break
		}
	}
}

// Put stores the report under key — in memory, evicting the least recently
// used entry when full, and (when a spill directory is configured) through
// to disk. Spill writes are atomic (temp file + rename) and best-effort: a
// full or read-only disk degrades the cache to memory-only rather than
// failing the job.
func (c *Cache) Put(key string, report core.RunReport) {
	if c.max <= 0 && c.dir == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.max > 0 {
		c.putMemLocked(key, report)
	}
	c.spillLocked(key, report)
}

func (c *Cache) putMemLocked(key string, report core.RunReport) {
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).report = report
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, report: report})
}

func (c *Cache) spillLocked(key string, report core.RunReport) {
	if c.dir == "" {
		return
	}
	raw, err := json.Marshal(report)
	if err != nil {
		c.spillErrs++
		return
	}
	ent := spillEntry{V: spillVersion, Key: key, Sum: hex.EncodeToString(sumOf(raw)), Report: raw}
	buf, err := json.Marshal(ent)
	if err != nil {
		c.spillErrs++
		return
	}
	tmp, err := os.CreateTemp(c.dir, "spill-*.tmp")
	if err != nil {
		c.spillErrs++
		return
	}
	_, werr := tmp.Write(buf)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		c.spillErrs++
		return
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		_ = os.Remove(tmp.Name())
		c.spillErrs++
		return
	}
	if _, ok := c.spillSet[key]; !ok {
		c.spillSet[key] = struct{}{}
		c.spillOrder = append(c.spillOrder, key)
		for len(c.spillOrder) > c.spillMax {
			victim := c.spillOrder[0]
			c.spillOrder = c.spillOrder[1:]
			delete(c.spillSet, victim)
			_ = os.Remove(c.path(victim))
		}
	}
}

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// SpillLen returns the number of entries resident in the spill store.
func (c *Cache) SpillLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.spillOrder)
}

// Counters returns the lifetime hit and miss counts (spill hits included in
// hits).
func (c *Cache) Counters() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// SpillCounters returns the spill store's lifetime activity: memory misses
// served from disk, entries rejected at load, and failed writes.
func (c *Cache) SpillCounters() (hits, bad, errs int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.spillHits, c.spillBad, c.spillErrs
}
