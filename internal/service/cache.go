package service

import (
	"container/list"
	"sync"

	"repro/internal/core"
)

// Cache is a bounded, content-addressed LRU of finished repair reports,
// keyed by defKey. It stores only the serializable RunReport — never BDD
// nodes, whose managers belong to a single synthesis — so a hit costs one
// map lookup and entries do not pin symbolic state in memory.
//
// Safe for concurrent use.
type Cache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used; values are *cacheEntry
	items map[string]*list.Element

	hits, misses int64
}

type cacheEntry struct {
	key    string
	report core.RunReport
}

// NewCache returns a cache holding at most max entries (max <= 0 disables
// caching: every Get misses and Put is a no-op).
func NewCache(max int) *Cache {
	return &Cache{max: max, order: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached report for key, if present, and refreshes its
// recency.
func (c *Cache) Get(key string) (core.RunReport, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return core.RunReport{}, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).report, true
}

// Put stores the report under key, evicting the least recently used entry
// when the cache is full.
func (c *Cache) Put(key string, report core.RunReport) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).report = report
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, report: report})
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Counters returns the lifetime hit and miss counts.
func (c *Cache) Counters() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
