package service

import (
	"context"
	"errors"
)

// ErrQueueFull is returned by Submit when the bounded work queue cannot
// accept another job; HTTP callers see it as 503 Service Unavailable.
// Backpressure by rejection (rather than blocking the submitter) keeps the
// daemon responsive under overload: clients retry with their own policy
// instead of tying up server connections.
var ErrQueueFull = errors.New("service: work queue is full")

// queue is a bounded FIFO of pending jobs feeding the worker pool. The
// channel's buffer is the bound, so depth reads are O(1) and pop blocks
// idle workers without spinning.
type queue struct {
	ch chan *job
}

func newQueue(depth int) *queue {
	if depth < 1 {
		depth = 1
	}
	return &queue{ch: make(chan *job, depth)}
}

// tryPush enqueues j without blocking; it reports false when the queue is
// at capacity.
func (q *queue) tryPush(j *job) bool {
	select {
	case q.ch <- j:
		return true
	default:
		return false
	}
}

// pop dequeues the next job, blocking until one is available or the context
// (the service's lifetime) ends.
func (q *queue) pop(ctx context.Context) (*job, bool) {
	select {
	case j := <-q.ch:
		return j, true
	case <-ctx.Done():
		return nil, false
	}
}

// depth returns the number of queued jobs.
func (q *queue) depth() int { return len(q.ch) }
