package service

import (
	"context"
	"errors"
)

// ErrQueueFull is returned by Submit when the bounded work queue cannot
// accept another job; HTTP callers see it as 503 Service Unavailable with a
// Retry-After header and the current queue depth in the error body.
// Backpressure by rejection (rather than blocking the submitter) keeps the
// daemon responsive under overload: clients retry with their own policy
// instead of tying up server connections.
var ErrQueueFull = errors.New("service: work queue is full")

// queue is a bounded two-lane FIFO of pending jobs feeding the worker pool.
// The general lane carries everything; the fast lane carries jobs the
// admission cost model predicts cheap, so a burst of expensive work cannot
// queue a sub-second job behind it. Channel buffers are the bounds, so
// depth reads are O(1) and pop blocks idle workers without spinning.
type queue struct {
	ch   chan *job
	fast chan *job
}

func newQueue(depth int) *queue {
	if depth < 1 {
		depth = 1
	}
	return &queue{ch: make(chan *job, depth), fast: make(chan *job, depth)}
}

// tryPush enqueues j on the selected lane without blocking; it reports
// false when that lane is at capacity.
func (q *queue) tryPush(j *job, fastLane bool) bool {
	lane := q.ch
	if fastLane {
		lane = q.fast
	}
	select {
	case lane <- j:
		return true
	default:
		return false
	}
}

// pop dequeues the next job, blocking until one is available or the context
// (the service's lifetime) ends. Fast-lane jobs are preferred when both
// lanes are non-empty; a worker with fastOnly set serves nothing else, so
// at least one worker is always within one cheap job of idle.
func (q *queue) pop(ctx context.Context, fastOnly bool) (*job, bool) {
	if fastOnly {
		select {
		case j := <-q.fast:
			return j, true
		case <-ctx.Done():
			return nil, false
		}
	}
	// Prefer the fast lane without blocking on it.
	select {
	case j := <-q.fast:
		return j, true
	default:
	}
	select {
	case j := <-q.fast:
		return j, true
	case j := <-q.ch:
		return j, true
	case <-ctx.Done():
		return nil, false
	}
}

// depth returns the number of queued jobs across both lanes.
func (q *queue) depth() int { return len(q.ch) + len(q.fast) }

// generalDepth returns the general lane's depth — the load-shedding signal
// (the fast lane drains quickly by construction).
func (q *queue) generalDepth() int { return len(q.ch) }
