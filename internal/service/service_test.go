package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/repair"
)

// --- content addressing ----------------------------------------------------

func TestDefKeyCanonical(t *testing.T) {
	opts := repair.DefaultOptions()

	a1, _ := core.CaseStudy("ba", 3)
	a2, _ := core.CaseStudy("ba", 3)
	if defKey(a1, "lazy", opts) != defKey(a2, "lazy", opts) {
		t.Fatal("identical case studies hash differently")
	}

	b, _ := core.CaseStudy("ba", 4)
	if defKey(a1, "lazy", opts) == defKey(b, "lazy", opts) {
		t.Fatal("ba(3) and ba(4) hash the same")
	}
	if defKey(a1, "lazy", opts) == defKey(a1, "cautious", opts) {
		t.Fatal("algorithm not part of the key")
	}
	pure := opts
	pure.ReachabilityHeuristic = false
	if defKey(a1, "lazy", opts) == defKey(a1, "lazy", pure) {
		t.Fatal("options not part of the key")
	}
}

func TestDefKeyNormalizesSurfaceSyntax(t *testing.T) {
	// The same model with different whitespace and comments must share a
	// content address: the key is computed on the parsed Def.
	s1 := Spec{Model: "program t\nvar x : bool\nprocess p\n  read x\n  write x\n  action a : x = 0 -> x := 1\ninvariant true\n"}
	s2 := Spec{Model: "# a comment\nprogram t\n\nvar x : bool\n\nprocess p\n  read  x\n  write x\n  action a : x = 0 -> x := 1\n\ninvariant true\n"}
	_, _, k1, err := s1.resolve()
	if err != nil {
		t.Fatal(err)
	}
	_, _, k2, err := s2.resolve()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("surface syntax leaked into content address:\n%s\n%s", k1, k2)
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []Spec{
		{},                                  // neither model nor case
		{Case: "ba", Model: "program x\n"},  // both
		{Case: "nope"},                      // unknown case
		{Case: "ba", N: 0},                  // bad instance size
		{Case: "ba", N: 3, Algorithm: "??"}, // unknown algorithm
		{Model: "var x : bool\n"},           // malformed model
		{Case: "ba", N: 3, Workers: -1},     // negative engine width
		{Case: "ba", N: 3, Workers: MaxJobWorkers + 1},                               // over the cap
		{Case: "ba", N: 3, Engine: &EngineSpec{Mode: "threads"}},                     // unknown engine mode
		{Case: "ba", N: 3, Engine: &EngineSpec{Workers: -1}},                         // negative width via engine object
		{Case: "ba", N: 3, Engine: &EngineSpec{Workers: MaxJobWorkers + 1}},          // over the cap via engine object
		{Case: "ba", N: 3, Engine: &EngineSpec{Backend: "z3"}},                       // unknown backend via engine object
		{Case: "ba", N: 3, CostDefault: -1},                                          // negative default weight
		{Case: "ba", N: 3, CostActions: map[string]int64{"a": 0}},                    // zero action weight
		{Case: "ba", N: 3, Cost: &CostSpec{Actions: map[string]int64{"a": 1 << 31}}}, // over the weight cap
	}
	for i, sp := range cases {
		if _, _, _, err := sp.resolve(); err == nil {
			t.Errorf("case %d: spec %+v resolved without error", i, sp)
		}
	}
}

// TestEngineSpecCanonicalization pins the aliasing contract of the
// structured engine object: a flat spec and its structured spelling share a
// content address, non-zero engine fields win over their flat twins, and the
// default mode hashes identically whether it is spelled "", "partitioned",
// or left to the flat fields.
func TestEngineSpecCanonicalization(t *testing.T) {
	key := func(sp Spec) string {
		t.Helper()
		_, _, k, err := sp.resolve()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}

	flat := Spec{Case: "ba", N: 3, Workers: 2, NodeBudget: 1 << 20, Reorder: 1 << 16, Backend: "sat"}
	structured := Spec{Case: "ba", N: 3, Engine: &EngineSpec{
		Workers: 2, NodeBudget: 1 << 20, Reorder: 1 << 16, Backend: "sat",
	}}
	if key(flat) != key(structured) {
		t.Error("flat and structured spellings of the same engine config hash differently")
	}

	explicit := structured
	explicit.Engine = &EngineSpec{Mode: "partitioned", Workers: 2, NodeBudget: 1 << 20, Reorder: 1 << 16, Backend: "sat"}
	if key(structured) != key(explicit) {
		t.Error(`default mode and explicit "partitioned" hash differently`)
	}

	shared := Spec{Case: "ba", N: 3, Engine: &EngineSpec{Mode: "shared", Workers: 2}}
	if key(Spec{Case: "ba", N: 3, Workers: 2}) == key(shared) {
		t.Error("engine mode not part of the content address")
	}

	// Non-zero engine fields take precedence over the flat twins: engine
	// workers 4 + flat workers 2 is the same job as flat workers 4.
	mixed := Spec{Case: "ba", N: 3, Workers: 2, Engine: &EngineSpec{Workers: 4}}
	if key(mixed) != key(Spec{Case: "ba", N: 3, Workers: 4}) {
		t.Error("engine object does not win over flat fields in the content address")
	}
	_, job, _, err := mixed.resolve()
	if err != nil {
		t.Fatal(err)
	}
	if job.Options.Workers != 4 {
		t.Errorf("resolved workers = %d, want the engine object's 4", job.Options.Workers)
	}
}

// TestCostSpecCanonicalization pins the aliasing contract of the structured
// cost object: a flat spec and its structured spelling share a content
// address, the structured object wins field-by-field, uncosted and costed
// jobs never alias, and resolve wires the merged model into the job options.
func TestCostSpecCanonicalization(t *testing.T) {
	key := func(sp Spec) string {
		t.Helper()
		_, _, k, err := sp.resolve()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}

	flat := Spec{Case: "ba", N: 3, CostDefault: 2, CostActions: map[string]int64{"copy": 5}, MinimizeCost: true}
	structured := Spec{Case: "ba", N: 3, Cost: &CostSpec{
		Default: 2, Actions: map[string]int64{"copy": 5}, Minimize: true,
	}}
	if key(flat) != key(structured) {
		t.Error("flat and structured spellings of the same cost config hash differently")
	}

	if key(Spec{Case: "ba", N: 3}) == key(structured) {
		t.Error("cost model not part of the content address")
	}
	noMin := structured
	noMin.Cost = &CostSpec{Default: 2, Actions: map[string]int64{"copy": 5}}
	if key(noMin) == key(structured) {
		t.Error("minimize switch not part of the content address")
	}

	// The structured object wins over the flat twins.
	mixed := Spec{Case: "ba", N: 3, CostDefault: 7, Cost: &CostSpec{Default: 2}}
	if key(mixed) != key(Spec{Case: "ba", N: 3, Cost: &CostSpec{Default: 2}}) {
		t.Error("cost object does not win over flat fields in the content address")
	}

	_, job, _, err := structured.resolve()
	if err != nil {
		t.Fatal(err)
	}
	if job.Options.Costs == nil || job.Options.Costs.Default != 2 ||
		job.Options.Costs.Actions["copy"] != 5 || !job.Options.MinimizeCost {
		t.Errorf("resolved cost options = %+v minimize=%t, want the structured spec's values",
			job.Options.Costs, job.Options.MinimizeCost)
	}
}

// TestCostSpecRuns submits a costed job end to end and checks the report
// carries the cost fields.
func TestCostSpecRuns(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Close()
	v, err := s.Submit(Spec{Case: "ba", N: 2, Cost: &CostSpec{Default: 1, Minimize: true}})
	if err != nil {
		t.Fatal(err)
	}
	final, err := s.Wait(context.Background(), v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Result == nil {
		t.Fatalf("job did not finish: state=%s err=%q", final.State, final.Error)
	}
	if !final.Result.Costed || !final.Result.MinCost {
		t.Fatalf("report is not costed: %+v", final.Result)
	}
	if final.Result.Verified == nil || !*final.Result.Verified {
		t.Fatal("costed job was not verified")
	}
}

// TestSharedEngineSpecRuns submits a shared-mode job end to end and checks
// the report records the mode.
func TestSharedEngineSpecRuns(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Close()
	v, err := s.Submit(Spec{Case: "ba", N: 2, Witnesses: 2, Engine: &EngineSpec{Mode: "shared", Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	final, err := s.Wait(context.Background(), v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Result == nil {
		t.Fatalf("job did not finish: state=%s err=%q", final.State, final.Error)
	}
	if final.Result.EngineMode != "shared" || final.Result.Workers != 2 {
		t.Fatalf("report records engine_mode=%q workers=%d, want shared/2", final.Result.EngineMode, final.Result.Workers)
	}
	if final.Result.Verified == nil || !*final.Result.Verified {
		t.Fatal("shared-mode job was not verified")
	}
}

// --- cache -----------------------------------------------------------------

func TestCacheLRU(t *testing.T) {
	c := NewCache(2)
	c.Put("a", core.RunReport{Model: "a"})
	c.Put("b", core.RunReport{Model: "b"})
	if _, ok := c.Get("a"); !ok { // refresh a
		t.Fatal("a missing")
	}
	c.Put("c", core.RunReport{Model: "c"}) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b not evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite recency")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c missing")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	hits, misses := c.Counters()
	if hits != 3 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

// --- job logger ------------------------------------------------------------

func TestJobLoggerConcurrent(t *testing.T) {
	l := newJobLogger(8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.logf("goroutine %d line %d", g, i)
				_ = l.snapshot()
			}
		}(g)
	}
	wg.Wait()
	if got := len(l.snapshot()); got != 8 {
		t.Fatalf("ring retained %d lines, want 8", got)
	}
}

// --- service: dedup and cache (deterministic, no HTTP) ---------------------

func TestSubmitServesIdenticalJobFromCache(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Close()

	spec := Spec{Case: "ba", N: 2}
	v1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final1, err := s.Wait(context.Background(), v1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final1.State != StateDone || final1.CacheHit {
		t.Fatalf("first job: state=%s cacheHit=%t", final1.State, final1.CacheHit)
	}
	if final1.Result == nil || final1.Result.Verified == nil || !*final1.Result.Verified {
		t.Fatalf("first job result not verified: %+v", final1.Result)
	}

	v2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if v2.State != StateDone || !v2.CacheHit {
		t.Fatalf("second job not served from cache: state=%s cacheHit=%t", v2.State, v2.CacheHit)
	}
	j1, _ := json.Marshal(final1.Result)
	j2, _ := json.Marshal(v2.Result)
	if !bytes.Equal(j1, j2) {
		t.Fatalf("cached result differs:\n%s\n%s", j1, j2)
	}
	if n := s.metrics.get(&s.metrics.synthRuns); n != 1 {
		t.Fatalf("syntheses = %d, want 1", n)
	}
}

func TestSubmitQueueFullRejects(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Close()

	// A slow job to occupy the lone worker, then distinct jobs to fill and
	// overflow the depth-1 queue. (Distinct specs, or they would coalesce.)
	slow, err := s.Submit(Spec{Case: "sc", N: 14})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, _ := s.Job(slow.ID)
		if v.State == StateRunning || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}

	queued, err := s.Submit(Spec{Case: "ba", N: 2})
	if err != nil {
		t.Fatal(err)
	}
	rejected := false
	var lastErr error
	for i := 0; i < 8; i++ { // the queued slot may drain; keep pushing distinct jobs
		if _, lastErr = s.Submit(Spec{Case: "ba", N: 3 + i}); errors.Is(lastErr, ErrQueueFull) {
			rejected = true
			break
		}
	}
	if !rejected {
		t.Fatalf("queue never filled; last err: %v", lastErr)
	}

	// Unwedge quickly.
	s.Cancel(slow.ID)
	s.Cancel(queued.ID)
}

// --- the acceptance e2e: daemon on a loopback port -------------------------

// bootDaemon starts the full HTTP daemon on a loopback port and returns its
// base URL plus a shutdown func.
func bootDaemon(t *testing.T, cfg Config) (string, *Service, func()) {
	t.Helper()
	svc := New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: svc.Handler()}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(), svc, func() {
		srv.Close()
		svc.Close()
	}
}

func postJob(t *testing.T, base string, spec Spec) (JobView, int) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/repair", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var view JobView
	if err := json.Unmarshal(raw, &view); err != nil {
		t.Fatalf("bad response (%d): %s", resp.StatusCode, raw)
	}
	return view, resp.StatusCode
}

func awaitJob(t *testing.T, base, id string, within time.Duration) JobView {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var view JobView
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(raw, &view); err != nil {
			t.Fatalf("bad job response: %s", raw)
		}
		if view.State.Terminal() {
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, view.State, within)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func metricValue(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
	m := re.FindSubmatch(raw)
	if m == nil {
		t.Fatalf("metric %s not found in:\n%s", name, raw)
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestE2EDedupConcurrentIdenticalJobs is acceptance criterion (a): the same
// ba -n 3 job submitted twice concurrently results in one synthesis and one
// cache hit, and both clients receive an identical verified result.
func TestE2EDedupConcurrentIdenticalJobs(t *testing.T) {
	base, _, shutdown := bootDaemon(t, Config{Workers: 2, QueueDepth: 8})
	defer shutdown()

	spec := Spec{Case: "ba", N: 3}
	type sub struct {
		view JobView
		code int
	}
	results := make(chan sub, 2)
	for i := 0; i < 2; i++ {
		go func() {
			v, code := postJob(t, base, spec)
			results <- sub{v, code}
		}()
	}
	var finals []JobView
	for i := 0; i < 2; i++ {
		r := <-results
		if r.code != http.StatusAccepted && r.code != http.StatusOK {
			t.Fatalf("submit status %d: %+v", r.code, r.view)
		}
		finals = append(finals, awaitJob(t, base, r.view.ID, 30*time.Second))
	}

	var cacheHits int
	for _, v := range finals {
		if v.State != StateDone {
			t.Fatalf("job %s: state=%s err=%q", v.ID, v.State, v.Error)
		}
		if v.Result == nil || v.Result.Verified == nil || !*v.Result.Verified {
			t.Fatalf("job %s: result not verified", v.ID)
		}
		if v.CacheHit {
			cacheHits++
		}
	}
	if cacheHits != 1 {
		t.Fatalf("cache hits among the two jobs = %d, want exactly 1", cacheHits)
	}

	j0, _ := json.Marshal(finals[0].Result)
	j1, _ := json.Marshal(finals[1].Result)
	if !bytes.Equal(j0, j1) {
		t.Fatalf("results differ:\n%s\n%s", j0, j1)
	}

	if v := metricValue(t, base, "ftrepaird_synthesis_total"); v != 1 {
		t.Fatalf("synthesis_total = %g, want 1", v)
	}
	if v := metricValue(t, base, "ftrepaird_cache_hits_total"); v != 1 {
		t.Fatalf("cache_hits_total = %g, want 1", v)
	}
}

// TestE2EDeadlineCancelsWithoutWedgingWorker is acceptance criterion (b): a
// job with a 1ms deadline is cancelled and reported as such, and the worker
// that would have run it keeps serving (a subsequent job completes).
func TestE2EDeadlineCancelsWithoutWedgingWorker(t *testing.T) {
	base, _, shutdown := bootDaemon(t, Config{Workers: 1, QueueDepth: 8})
	defer shutdown()

	doomed, code := postJob(t, base, Spec{Case: "sc", N: 14, TimeoutMS: 1})
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit status %d", code)
	}
	final := awaitJob(t, base, doomed.ID, 30*time.Second)
	if final.State != StateCancelled {
		t.Fatalf("deadline job state = %s (err=%q), want cancelled", final.State, final.Error)
	}
	if !strings.Contains(final.Error, "deadline") {
		t.Fatalf("cancellation cause %q does not mention the deadline", final.Error)
	}

	// The pool must still serve.
	after, _ := postJob(t, base, Spec{Case: "ba", N: 2})
	if v := awaitJob(t, base, after.ID, 30*time.Second); v.State != StateDone {
		t.Fatalf("follow-up job state = %s, want done", v.State)
	}

	if v := metricValue(t, base, "ftrepaird_jobs_cancelled_total"); v != 1 {
		t.Fatalf("jobs_cancelled_total = %g, want 1", v)
	}
}

// TestE2EHTTPSurface covers the small corners of the API: health, unknown
// jobs, bad bodies, and client-requested cancellation.
func TestE2EHTTPSurface(t *testing.T) {
	base, _, shutdown := bootDaemon(t, Config{Workers: 1, QueueDepth: 4})
	defer shutdown()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/v1/jobs/nonexistent")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", resp.StatusCode)
	}

	resp, err = http.Post(base+"/v1/repair", "application/json", strings.NewReader(`{"nope":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body = %d, want 400", resp.StatusCode)
	}

	// Cancel a running job via DELETE.
	v, _ := postJob(t, base, Spec{Case: "sc", N: 14})
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+v.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel = %d, want 202", resp.StatusCode)
	}
	final := awaitJob(t, base, v.ID, 30*time.Second)
	if final.State != StateCancelled {
		t.Fatalf("cancelled job state = %s", final.State)
	}
	if !strings.Contains(final.Error, "client") {
		t.Fatalf("cancellation cause %q does not mention the client", final.Error)
	}
}

// TestWorkersSpecRunsAndRecords submits a job with an explicit parallel
// engine width and checks the verified report records it; a second service
// with Config.JobWorkers set must apply that default to specs that omit the
// field.
func TestWorkersSpecRunsAndRecords(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Close()
	v, err := s.Submit(Spec{Case: "ba", N: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	final, err := s.Wait(context.Background(), v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Result == nil {
		t.Fatalf("job did not finish: state=%s err=%q", final.State, final.Error)
	}
	if final.Result.Workers != 2 {
		t.Fatalf("report records %d workers, want 2", final.Result.Workers)
	}

	s2 := New(Config{Workers: 1, QueueDepth: 4, JobWorkers: 2})
	defer s2.Close()
	v2, err := s2.Submit(Spec{Case: "ba", N: 2})
	if err != nil {
		t.Fatal(err)
	}
	final2, err := s2.Wait(context.Background(), v2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final2.Result == nil || final2.Result.Workers != 2 {
		t.Fatalf("JobWorkers default not applied: %+v", final2.Result)
	}
}

// TestNodeBudgetSpec covers the node_budget spec field end to end: validation,
// content addressing, budget enforcement, and the node counters on success.
func TestNodeBudgetSpec(t *testing.T) {
	bad := Spec{Case: "ba", N: 2, NodeBudget: -1}
	if _, _, _, err := bad.resolve(); err == nil {
		t.Fatal("negative node_budget resolved without error")
	}
	key := func(b int64) string {
		sp := Spec{Case: "ba", N: 2, NodeBudget: b}
		_, _, k, err := sp.resolve()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	if key(0) == key(1000) {
		t.Fatal("node_budget not folded into the content address")
	}

	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Close()
	v, err := s.Submit(Spec{Case: "sc", N: 6, NodeBudget: 500})
	if err != nil {
		t.Fatal(err)
	}
	final, err := s.Wait(context.Background(), v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateFailed || !strings.Contains(final.Error, "budget") {
		t.Fatalf("budgeted job state=%s err=%q, want a failed budget error", final.State, final.Error)
	}

	v2, err := s.Submit(Spec{Case: "sc", N: 6})
	if err != nil {
		t.Fatal(err)
	}
	final2, err := s.Wait(context.Background(), v2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final2.State != StateDone || final2.Result == nil {
		t.Fatalf("unbudgeted job did not finish: state=%s err=%q", final2.State, final2.Error)
	}
	if final2.Result.BDDNodesLive <= 0 || final2.Result.BDDPeakNodes <= 0 {
		t.Fatalf("report misses node counters: live=%d peak=%d",
			final2.Result.BDDNodesLive, final2.Result.BDDPeakNodes)
	}
}

// TestHTTPStructuredErrors decodes the {code, message} error body on each
// failure path of the HTTP API.
func TestHTTPStructuredErrors(t *testing.T) {
	base, _, shutdown := bootDaemon(t, Config{Workers: 1, QueueDepth: 4})
	defer shutdown()

	readErr := func(resp *http.Response) APIError {
		t.Helper()
		defer resp.Body.Close()
		var ae APIError
		raw, _ := io.ReadAll(resp.Body)
		if err := json.Unmarshal(raw, &ae); err != nil {
			t.Fatalf("error body is not an APIError: %s", raw)
		}
		if ae.Code == "" || ae.Message == "" {
			t.Fatalf("error body missing code or message: %s", raw)
		}
		return ae
	}

	resp, err := http.Post(base+"/v1/repair", "application/json",
		strings.NewReader(`{"case":"ba","n":3,"workers":99}`))
	if err != nil {
		t.Fatal(err)
	}
	if ae := readErr(resp); resp.StatusCode != http.StatusBadRequest || ae.Code != CodeInvalidSpec {
		t.Fatalf("workers=99: status=%d code=%q", resp.StatusCode, ae.Code)
	}

	resp, err = http.Post(base+"/v1/repair", "application/json", strings.NewReader(`{not json`))
	if err != nil {
		t.Fatal(err)
	}
	if ae := readErr(resp); resp.StatusCode != http.StatusBadRequest || ae.Code != CodeBadJSON {
		t.Fatalf("bad json: status=%d code=%q", resp.StatusCode, ae.Code)
	}

	resp, err = http.Get(base + "/v1/jobs/nonexistent")
	if err != nil {
		t.Fatal(err)
	}
	if ae := readErr(resp); resp.StatusCode != http.StatusNotFound || ae.Code != CodeUnknownJob {
		t.Fatalf("unknown job: status=%d code=%q", resp.StatusCode, ae.Code)
	}

	resp, err = http.Get(base + "/v1/repair")
	if err != nil {
		t.Fatal(err)
	}
	if ae := readErr(resp); resp.StatusCode != http.StatusMethodNotAllowed || ae.Code != CodeMethodNotAllowed {
		t.Fatalf("GET submit: status=%d code=%q", resp.StatusCode, ae.Code)
	}
}
