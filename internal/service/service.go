// Package service turns the repair library into a serving subsystem: a
// bounded job queue feeding a worker pool sized to GOMAXPROCS, a
// content-addressed cache of finished results keyed by a canonical hash of
// the parsed model plus options, per-job deadlines with real cancellation
// (threaded through the repair algorithms' fixpoints), and an HTTP/JSON API
// (see Handler) exposing submission, status, health and metrics.
//
// Identical jobs are deduplicated at two levels: a finished result is served
// straight from the cache, and a submission identical to an in-flight
// synthesis coalesces onto it — one synthesis runs, both jobs get the
// result, and the follower is accounted as a cache hit. Each synthesis
// compiles its own BDD manager, so workers share no symbolic state and the
// pool scales without locking the BDD layer.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
)

// Config tunes a Service. Zero values select sensible defaults.
type Config struct {
	// Workers is the worker-pool size; default GOMAXPROCS(0).
	Workers int
	// JobWorkers is the default per-job parallel-engine width applied to
	// submissions that leave Spec.Workers at 0. The default (0) keeps such
	// jobs serial — the pool above already parallelizes across jobs. Capped
	// at MaxJobWorkers.
	JobWorkers int
	// QueueDepth bounds the pending-job queue; default 64.
	QueueDepth int
	// CacheEntries bounds the result cache; default 256.
	CacheEntries int
	// DefaultTimeout applies to jobs that do not set Spec.TimeoutMS;
	// default 5m. The clock starts at submission.
	DefaultTimeout time.Duration
	// MaxLogLines bounds each job's retained progress log; default 64.
	MaxLogLines int
	// SpillDir, when non-empty, arms the persistent result-cache spill: every
	// finished report is written through to a content-key-named, checksummed
	// file in this directory, and cache lookups that miss in memory fall back
	// to it — so results survive restarts and LRU eviction. Entries are
	// validated on load; corruption is deleted and recomputed.
	SpillDir string
	// SpillEntries bounds the spill store's entry count (oldest evicted
	// first); default 4096. Only meaningful with SpillDir.
	SpillEntries int
	// QuotaRate arms per-client admission quotas: each client accrues this
	// many submissions per second (token bucket, burst QuotaBurst), and a
	// submission beyond it fails with ErrQuotaExceeded. 0 disables quotas.
	// Cache hits are always served — a token pays for synthesis capacity,
	// not for reads.
	QuotaRate float64
	// QuotaBurst is the token-bucket burst size; default 8.
	QuotaBurst int
	// ShedWatermark arms load shedding: once the general queue lane holds at
	// least this many jobs, submissions the cost model predicts expensive
	// fail with ErrOverloaded while cheap ones are still admitted. 0
	// disables shedding (only a hard-full queue rejects).
	ShedWatermark int
	// FastWorkers reserves that many pool workers for the fast lane (jobs
	// predicted under FastLaneNS), capped at Workers-1. All other workers
	// prefer the fast lane but drain both. Default 0: no reservation.
	FastWorkers int
	// FastLaneNS is the predicted serial wall time (nanoseconds) under which
	// a job routes to the fast lane; default 100ms. Negative disables the
	// fast lane entirely.
	FastLaneNS int64
	// CostBudgetScale, when positive, arms cost-based early termination: a
	// job predicted expensive (over FastLaneNS) that does not set its own
	// node_budget runs under NodeBudget = scale × predicted peak nodes, so a
	// synthesis whose BDDs blow far past the prediction fails fast with a
	// typed budget error instead of burning a worker until its wall-clock
	// deadline. 0 disables.
	CostBudgetScale int64
	// Logf, when non-nil, receives service-level log lines. It must be safe
	// for concurrent use (workers log concurrently).
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Minute
	}
	if c.MaxLogLines <= 0 {
		c.MaxLogLines = 64
	}
	if c.JobWorkers < 0 {
		c.JobWorkers = 0
	}
	if c.JobWorkers > MaxJobWorkers {
		c.JobWorkers = MaxJobWorkers
	}
	if c.SpillEntries <= 0 {
		c.SpillEntries = 4096
	}
	if c.QuotaBurst <= 0 {
		c.QuotaBurst = 8
	}
	if c.FastLaneNS == 0 {
		c.FastLaneNS = int64(100 * time.Millisecond)
	}
	if c.FastWorkers > c.Workers-1 {
		c.FastWorkers = c.Workers - 1
	}
	if c.FastWorkers < 0 {
		c.FastWorkers = 0
	}
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("service: closed")

// errClientCancel marks client-requested cancellation (vs deadline).
var errClientCancel = errors.New("cancelled by client")

// Service is the repair daemon's engine.
type Service struct {
	cfg     Config
	root    context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
	q       *queue
	cache   *Cache
	quotas  *quotas
	waits   waitRing
	metrics metrics

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string        // job ids in submission order, for retention pruning
	inflight map[string]*job // content key -> the job whose synthesis is pending
	seq      uint64
	closed   bool
}

// pruneLocked evicts the oldest terminal job records once the registry
// outgrows its retention bound, so a long-lived daemon's memory stays flat.
// Live (queued/running) jobs are never evicted. Callers hold s.mu.
func (s *Service) pruneLocked() {
	max := s.cfg.QueueDepth * 16
	if len(s.jobs) <= max {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j, ok := s.jobs[id]
		if !ok {
			continue
		}
		j.mu.Lock()
		terminal := j.state.Terminal()
		j.mu.Unlock()
		if terminal && len(s.jobs) > max {
			delete(s.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// New builds and starts a Service: the worker pool is live on return. An
// unusable spill directory degrades the cache to memory-only (logged), so a
// daemon never fails to boot over a cache tier.
func New(cfg Config) *Service {
	cfg.fill()
	root, stop := context.WithCancel(context.Background())
	cache, err := NewSpillCache(cfg.CacheEntries, cfg.SpillDir, cfg.SpillEntries)
	if err != nil {
		cache = NewCache(cfg.CacheEntries)
	}
	s := &Service{
		cfg:      cfg,
		root:     root,
		stop:     stop,
		q:        newQueue(cfg.QueueDepth),
		cache:    cache,
		quotas:   newQuotas(cfg.QuotaRate, cfg.QuotaBurst),
		jobs:     make(map[string]*job),
		inflight: make(map[string]*job),
	}
	if err != nil {
		s.logf("service: spill disabled: %v", err)
	}
	for i := 0; i < cfg.Workers; i++ {
		fastOnly := i < cfg.FastWorkers
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.worker(fastOnly)
		}()
	}
	return s
}

// Close stops accepting submissions, cancels every live job, and waits for
// the workers to drain.
func (s *Service) Close() {
	s.mu.Lock()
	s.closed = true
	live := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		live = append(live, j)
	}
	s.mu.Unlock()
	for _, j := range live {
		j.cancel(errors.New("service shutting down"))
	}
	s.stop()
	s.wg.Wait()
}

func (s *Service) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// costBudgetFloor is the minimum admission-imposed node budget: it protects
// jobs the model mispredicts as tiny from being killed by a budget far below
// anything a real synthesis needs.
const costBudgetFloor = 1 << 17

// Submit validates and registers a job with no client attribution (quotas
// do not apply). The returned view reflects the job's state at return: done
// (cache hit), or queued. ErrQueueFull, ErrOverloaded, ErrQuotaExceeded and
// ErrClosed are sentinel errors; anything else is a bad spec.
func (s *Service) Submit(spec Spec) (JobView, error) { return s.SubmitFor("", spec) }

// SubmitFor is Submit with client attribution: when the service is
// configured with per-client quotas, the submission spends a token from
// client's bucket (an empty client string bypasses quotas). Admission
// control — quotas, cost-aware load shedding, and cost-based node budgets —
// applies only to submissions that need a synthesis; content-addressed
// cache hits are always served.
func (s *Service) SubmitFor(client string, spec Spec) (JobView, error) {
	if spec.Workers == 0 {
		spec.Workers = s.cfg.JobWorkers
	}
	def, coreJob, key, err := spec.resolve()
	if err != nil {
		return JobView{}, err
	}

	predicted := estimateCost(def)
	cheapNS := s.cfg.FastLaneNS
	if cheapNS <= 0 {
		cheapNS = int64(100 * time.Millisecond)
	}
	cheap := predicted.TotalNS <= cheapNS
	fastLane := cheap && s.cfg.FastLaneNS > 0

	cachedReport, cached := s.cache.Get(key)
	if !cached {
		if ok, _ := s.quotas.allow(client); !ok {
			s.metrics.add(&s.metrics.quotaRejected, 1)
			return JobView{}, fmt.Errorf("%w (client %q)", ErrQuotaExceeded, client)
		}
		if s.cfg.ShedWatermark > 0 && !cheap && s.q.generalDepth() >= s.cfg.ShedWatermark {
			s.metrics.add(&s.metrics.shed, 1)
			return JobView{}, ErrOverloaded
		}
		if s.cfg.CostBudgetScale > 0 && !cheap && coreJob.Options.NodeBudget == 0 {
			b := s.cfg.CostBudgetScale * predicted.PeakNodes
			if b < costBudgetFloor {
				b = costBudgetFloor
			}
			coreJob.Options.NodeBudget = b
		}
	}

	timeout := s.cfg.DefaultTimeout
	if spec.TimeoutMS > 0 {
		timeout = time.Duration(spec.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(s.root, timeout)
	jctx, jcancel := context.WithCancelCause(ctx)
	j := &job{
		key:       key,
		spec:      spec,
		coreJob:   coreJob,
		client:    client,
		predicted: predicted,
		lane:      "general",
		ctx:       jctx,
		cancel:    jcancel,
		done:      make(chan struct{}),
		logger:    newJobLogger(s.cfg.MaxLogLines),
		events:    newEventLog(),
		state:     StateQueued,
		submitted: time.Now(),
	}
	if fastLane {
		j.lane = "fast"
	}
	// Release the deadline timer once the job reaches a terminal state.
	go func() {
		<-j.done
		cancel()
	}()
	j.coreJob.Options.Logf = j.logger.logf
	j.coreJob.Progress = j.events.phase

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		jcancel(ErrClosed)
		close(j.done)
		return JobView{}, ErrClosed
	}
	s.seq++
	j.id = fmt.Sprintf("j%06d-%s", s.seq, key[:8])
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.pruneLocked()
	s.metrics.add(&s.metrics.submitted, 1)

	// Content-addressed fast path: an identical finished job.
	if cached {
		s.mu.Unlock()
		s.finishFromCache(j, cachedReport)
		return j.view(), nil
	}

	// Coalesce onto an identical in-flight synthesis.
	if leader, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		j.events.state(StateQueued, "coalesced onto "+leader.id)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.follow(j, leader)
		}()
		s.logf("service: job %s coalesced onto %s (key %.8s)", j.id, leader.id, key)
		return j.view(), nil
	}

	// The leader may have finished between the unlocked cache check above
	// and here (Put happens before the in-flight slot clears, but this
	// submission can interleave between the two): one recheck under s.mu
	// closes the window.
	if report, ok := s.cache.Get(key); ok {
		s.mu.Unlock()
		s.finishFromCache(j, report)
		return j.view(), nil
	}

	// New synthesis: become the in-flight leader and enter the queue. A full
	// fast lane overflows onto the general lane before rejecting.
	s.inflight[key] = j
	pushed := s.q.tryPush(j, fastLane)
	if !pushed && fastLane {
		j.lane = "general"
		pushed = s.q.tryPush(j, false)
	}
	if !pushed {
		delete(s.inflight, key)
		delete(s.jobs, j.id)
		s.metrics.add(&s.metrics.submitted, -1)
		s.metrics.add(&s.metrics.rejected, 1)
		s.mu.Unlock()
		jcancel(ErrQueueFull)
		close(j.done)
		return JobView{}, ErrQueueFull
	}
	s.mu.Unlock()
	j.events.state(StateQueued, "")
	s.logf("service: job %s queued (model=%q key=%.8s lane=%s)", j.id, def.Name, key, j.lane)
	return j.view(), nil
}

// Job returns a snapshot of the job with the given id.
func (s *Service) Job(id string) (JobView, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// Cancel requests cancellation of a queued or running job. It returns the
// job's current view; cancellation completes asynchronously (the job
// transitions to cancelled at its next fixpoint boundary).
func (s *Service) Cancel(id string) (JobView, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobView{}, false
	}
	j.cancel(errClientCancel)
	return j.view(), true
}

// Wait blocks until the job reaches a terminal state or ctx ends, and
// returns its final view.
func (s *Service) Wait(ctx context.Context, id string) (JobView, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobView{}, fmt.Errorf("service: unknown job %q", id)
	}
	select {
	case <-j.done:
		return j.view(), nil
	case <-ctx.Done():
		return j.view(), ctx.Err()
	}
}

// worker is the pool loop: pop, run, repeat until the service closes.
// fastOnly workers serve nothing but the fast lane, so cheap jobs always
// have capacity waiting for them.
func (s *Service) worker(fastOnly bool) {
	for {
		j, ok := s.q.pop(s.root, fastOnly)
		if !ok {
			return
		}
		s.run(j)
	}
}

// run executes one synthesis on the calling worker.
func (s *Service) run(j *job) {
	if err := j.ctx.Err(); err != nil {
		// Deadline or client cancellation arrived while queued.
		s.finishCancelled(j, context.Cause(j.ctx))
		return
	}
	now := time.Now()
	j.mu.Lock()
	j.state = StateRunning
	j.started = now
	wait := now.Sub(j.submitted)
	j.mu.Unlock()
	s.waits.record(wait)
	j.events.state(StateRunning, "")
	s.metrics.add(&s.metrics.running, 1)
	defer s.metrics.add(&s.metrics.running, -1)

	out, err := core.Run(j.ctx, j.coreJob)
	switch {
	case err != nil && j.ctx.Err() != nil:
		s.finishCancelled(j, context.Cause(j.ctx))
	case err != nil:
		s.finishFailed(j, err)
	default:
		report := core.NewRunReport(j.coreJob, out, j.spec.Case, j.spec.N)
		s.metrics.add(&s.metrics.synthRuns, 1)
		s.metrics.add(&s.metrics.compileNS, report.CompileNS)
		s.metrics.add(&s.metrics.step1NS, report.Step1NS)
		s.metrics.add(&s.metrics.step2NS, report.Step2NS)
		s.metrics.add(&s.metrics.verifyNS, report.VerifyNS)
		s.metrics.add(&s.metrics.witnessNS, report.WitnessNS)
		s.metrics.add(&s.metrics.totalNS, report.TotalNS)
		s.metrics.add(&s.metrics.gcRuns, report.BDDGCRuns)
		s.metrics.add(&s.metrics.nodesFreed, report.BDDNodesFreed)
		s.metrics.maxOf(&s.metrics.peakNodes, report.BDDPeakNodes)
		s.metrics.set(&s.metrics.liveNodes, report.BDDNodesLive)
		s.metrics.add(&s.metrics.fixRounds, report.FixRounds)
		s.metrics.add(&s.metrics.fixImages, report.FixImages)
		s.metrics.maxOf(&s.metrics.fixFrontierPeak, report.FixFrontierPeak)
		s.metrics.add(&s.metrics.fixOpSpawns, report.FixOpSpawns)
		s.metrics.add(&s.metrics.fixOpSteals, report.FixOpSteals)
		if st := report.SAT; st != nil {
			s.metrics.add(&s.metrics.satConflicts, st.Conflicts)
			s.metrics.add(&s.metrics.satDecisions, st.Decisions)
			s.metrics.add(&s.metrics.satPropagations, st.Propagations)
			s.metrics.add(&s.metrics.satLearned, st.Learned)
			s.metrics.add(&s.metrics.satRestarts, st.Restarts)
			s.metrics.maxOf(&s.metrics.satMaxLevel, int64(st.MaxLevel))
		}
		// Publish to the cache BEFORE waking followers and clearing the
		// in-flight slot, so anyone released by either always finds it.
		s.cache.Put(j.key, report)
		s.finishDone(j, report, false)
	}
}

// follow completes a coalesced job from its leader's outcome — or from the
// follower's own deadline, whichever comes first. A follower whose leader
// fails or is cancelled does not inherit the failure (its deadline may be
// longer): it retries as a fresh submission of the same synthesis.
func (s *Service) follow(j, leader *job) {
	select {
	case <-j.ctx.Done():
		s.finishCancelled(j, context.Cause(j.ctx))
	case <-leader.done:
		if report, ok := s.cache.Get(j.key); ok {
			s.finishDone(j, report, true)
			return
		}
		// Leader did not produce a result. Take over: become leader or
		// follow whoever already did.
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			s.finishCancelled(j, ErrClosed)
			return
		}
		if next, ok := s.inflight[j.key]; ok && next != j {
			s.mu.Unlock()
			s.follow(j, next)
			return
		}
		s.inflight[j.key] = j
		if !s.q.tryPush(j, j.lane == "fast") {
			delete(s.inflight, j.key)
			s.mu.Unlock()
			s.finishFailed(j, fmt.Errorf("retry after leader %s failed: %w", leader.id, ErrQueueFull))
			return
		}
		s.mu.Unlock()
		s.logf("service: job %s re-queued after leader %s produced no result", j.id, leader.id)
	}
}

// clearInflight releases the in-flight slot if j still owns it.
func (s *Service) clearInflight(j *job) {
	s.mu.Lock()
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	s.mu.Unlock()
}

func (s *Service) finishDone(j *job, report core.RunReport, viaCache bool) {
	s.clearInflight(j)
	j.mu.Lock()
	j.state = StateDone
	j.report = &report
	j.cacheHit = viaCache
	j.finished = time.Now()
	j.mu.Unlock()
	s.metrics.add(&s.metrics.completed, 1)
	msg := ""
	if viaCache {
		msg = "cache"
	}
	j.events.state(StateDone, msg)
	close(j.done)
	s.logf("service: job %s done (cache_hit=%t)", j.id, viaCache)
}

func (s *Service) finishFromCache(j *job, report core.RunReport) {
	j.mu.Lock()
	j.state = StateDone
	j.report = &report
	j.cacheHit = true
	j.finished = time.Now()
	j.mu.Unlock()
	s.metrics.add(&s.metrics.completed, 1)
	j.events.state(StateDone, "cache")
	close(j.done)
	s.logf("service: job %s served from cache", j.id)
}

func (s *Service) finishFailed(j *job, err error) {
	s.clearInflight(j)
	j.mu.Lock()
	j.state = StateFailed
	j.err = err.Error()
	j.finished = time.Now()
	j.mu.Unlock()
	s.metrics.add(&s.metrics.failed, 1)
	j.events.state(StateFailed, err.Error())
	close(j.done)
	s.logf("service: job %s failed: %v", j.id, err)
}

func (s *Service) finishCancelled(j *job, cause error) {
	s.clearInflight(j)
	if cause == nil {
		cause = context.Canceled
	}
	j.mu.Lock()
	j.state = StateCancelled
	j.err = cause.Error()
	j.finished = time.Now()
	j.mu.Unlock()
	s.metrics.add(&s.metrics.cancelled, 1)
	j.events.state(StateCancelled, cause.Error())
	close(j.done)
	s.logf("service: job %s cancelled: %v", j.id, cause)
}

// jobByID returns the internal job record (the event stream handlers need
// the live eventLog, not a snapshot).
func (s *Service) jobByID(id string) (*job, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	return j, ok
}

// QueueDepth reports the total number of queued jobs across both lanes.
func (s *Service) QueueDepth() int { return s.q.depth() }
