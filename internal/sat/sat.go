// Package sat is a self-contained CDCL (conflict-driven clause-learning)
// boolean satisfiability solver: two-watched-literal unit propagation, VSIDS
// branching with phase saving, first-UIP conflict analysis with
// self-subsumption minimization, Luby restarts, and an activity-managed
// learnt-clause database. It exists as the second, independently-derived
// symbolic engine of the repair toolkit — the bounded-model-checking layer
// (internal/bmc) compiles verification queries to CNF and solves them here,
// so a BDD verdict and a SAT verdict about the same model come from two
// implementations that share no code below the query.
//
// The solver is deterministic by construction: branching ties break on
// variable index, no randomness is consulted anywhere, and clause-database
// reduction orders clauses by (activity, allocation id). The same clause
// stream therefore yields the same model, the same learnt clauses, and the
// same statistics on every run — the property the differential gate and the
// byte-identical-witness contracts build on.
//
// Incremental use: clauses may be added between Solve calls (monotone — the
// solver keeps its learnt clauses, which remain sound), and Solve takes
// assumption literals that hold for that call only. The bounded
// model checker grows one solver per query family, activating per-depth
// targets through assumption-guarded clauses.
package sat

import (
	"context"
	"fmt"
)

// Lit is a literal: variable index shifted left once, low bit set for
// negation. The zero-variable positive literal is Lit(0).
type Lit int32

// MkLit builds the literal for variable v (v ≥ 0), negated when neg is true.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

// String renders the literal in DIMACS polarity (1-based, minus = negated).
func (l Lit) String() string {
	if l.Neg() {
		return fmt.Sprintf("-%d", l.Var()+1)
	}
	return fmt.Sprintf("%d", l.Var()+1)
}

// lbool is a three-valued assignment: +1 true, -1 false, 0 unassigned.
type lbool int8

const (
	lTrue  lbool = 1
	lFalse lbool = -1
	lUndef lbool = 0
)

// clause is a disjunction of literals. For clauses of length ≥ 2 the first
// two literals are the watched pair.
type clause struct {
	lits   []Lit
	act    float64
	id     uint64 // allocation order; deterministic reduce-DB tiebreak
	learnt bool
}

// Stats are the solver's work counters. They are embedded (flattened) into
// RunReport by the verification layer, hence the JSON tags.
type Stats struct {
	Vars         int64 `json:"sat_vars,omitempty"`
	Clauses      int64 `json:"sat_clauses,omitempty"`
	Conflicts    int64 `json:"sat_conflicts,omitempty"`
	Decisions    int64 `json:"sat_decisions,omitempty"`
	Propagations int64 `json:"sat_propagations,omitempty"`
	Restarts     int64 `json:"sat_restarts,omitempty"`
	Learned      int64 `json:"sat_learned_clauses,omitempty"`
	MaxLevel     int64 `json:"sat_max_decision_level,omitempty"`
}

// Add accumulates o into s (counters sum, MaxLevel takes the maximum).
func (s *Stats) Add(o Stats) {
	s.Vars += o.Vars
	s.Clauses += o.Clauses
	s.Conflicts += o.Conflicts
	s.Decisions += o.Decisions
	s.Propagations += o.Propagations
	s.Restarts += o.Restarts
	s.Learned += o.Learned
	if o.MaxLevel > s.MaxLevel {
		s.MaxLevel = o.MaxLevel
	}
}

// Solver is one CDCL instance. The zero value is not usable; construct with
// New. Not safe for concurrent use.
type Solver struct {
	clauses []*clause // problem clauses (len ≥ 2)
	learnts []*clause
	watches [][]*clause // literal -> clauses watching its negation

	assigns  []lbool
	level    []int32
	reason   []*clause
	polarity []bool // phase saving: last value each variable held
	trail    []Lit
	trailLim []int
	qhead    int

	activity []float64
	varInc   float64
	heap     varHeap

	claInc     float64
	nextCla    uint64
	maxLearnts float64

	ok    bool   // false once the clause set is UNSAT at level 0
	model []bool // last satisfying assignment, captured before unwinding
	stats Stats

	// scratch for analyze
	seen    []bool
	minimal []Lit
}

const (
	varDecay     = 1.0 / 0.95
	claDecay     = 1.0 / 0.999
	rescaleLimit = 1e100
	restartBase  = 100 // conflicts per Luby unit
	// ctxCheckMask throttles context polling to every 1024 conflicts.
	ctxCheckMask = 1023
)

// New returns an empty solver.
func New() *Solver {
	return &Solver{varInc: 1, claInc: 1, ok: true, maxLearnts: 4000}
}

// NewVar allocates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assigns)
	s.assigns = append(s.assigns, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.polarity = append(s.polarity, true) // branch negative first, like PickCube
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.heap.insert(v, s)
	s.stats.Vars++
	return v
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assigns) }

// Stats returns a snapshot of the work counters.
func (s *Solver) Stats() Stats { return s.stats }

func (s *Solver) value(l Lit) lbool {
	v := s.assigns[l.Var()]
	if l.Neg() {
		return -v
	}
	return v
}

// Value returns the variable's value in the most recent satisfying
// assignment. Valid only after a Solve call returned true.
func (s *Solver) Value(v int) bool { return v < len(s.model) && s.model[v] }

// AddClause adds a disjunction to the solver at decision level 0. It returns
// false when the clause set has become unsatisfiable (then and forever). The
// literal slice is copied.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	s.cancelUntil(0)
	// Level-0 simplification: drop false literals, drop satisfied or
	// tautological clauses, deduplicate.
	out := make([]Lit, 0, len(lits))
	for _, l := range lits {
		if l.Var() >= len(s.assigns) {
			panic(fmt.Sprintf("sat: literal %v names unallocated variable", l))
		}
		switch s.value(l) {
		case lTrue:
			return true
		case lFalse:
			continue
		}
		dup := false
		for _, o := range out {
			if o == l {
				dup = true
				break
			}
			if o == l.Not() {
				return true // tautology
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		s.ok = s.propagate() == nil
		return s.ok
	}
	c := &clause{lits: out, id: s.nextCla}
	s.nextCla++
	s.clauses = append(s.clauses, c)
	s.stats.Clauses++
	s.attach(c)
	return true
}

func (s *Solver) attach(c *clause) {
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], c)
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], c)
}

func (s *Solver) detach(c *clause) {
	for _, l := range []Lit{c.lits[0], c.lits[1]} {
		ws := s.watches[l.Not()]
		for i, w := range ws {
			if w == c {
				ws[i] = ws[len(ws)-1]
				s.watches[l.Not()] = ws[:len(ws)-1]
				break
			}
		}
	}
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) newDecisionLevel() {
	s.trailLim = append(s.trailLim, len(s.trail))
	if lvl := int64(s.decisionLevel()); lvl > s.stats.MaxLevel {
		s.stats.MaxLevel = lvl
	}
}

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	if l.Neg() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// cancelUntil undoes all assignments above the given decision level.
func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	for i := len(s.trail) - 1; i >= s.trailLim[lvl]; i-- {
		v := s.trail[i].Var()
		s.polarity[v] = s.assigns[v] == lTrue
		s.assigns[v] = lUndef
		s.reason[v] = nil
		s.heap.insertIfAbsent(v, s)
	}
	s.trail = s.trail[:s.trailLim[lvl]]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

// propagate runs two-watched-literal unit propagation over the trail tail.
// It returns the conflicting clause, or nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is true; clauses watching ¬p need a look
		s.qhead++
		ws := s.watches[p]
		kept := ws[:0]
		var confl *clause
		for wi := 0; wi < len(ws); wi++ {
			c := ws[wi]
			// Normalize: the false watched literal ¬p sits at index 1.
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.value(c.lits[0]) == lTrue {
				kept = append(kept, c)
				continue
			}
			moved := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], c)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			kept = append(kept, c)
			if s.value(c.lits[0]) == lFalse {
				confl = c
				// Keep the remaining watchers and stop this literal's pass.
				kept = append(kept, ws[wi+1:]...)
				break
			}
			s.stats.Propagations++
			s.uncheckedEnqueue(c.lits[0], c)
		}
		s.watches[p] = kept
		if confl != nil {
			s.qhead = len(s.trail)
			return confl
		}
	}
	return nil
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > rescaleLimit {
		for i := range s.activity {
			s.activity[i] *= 1 / rescaleLimit
		}
		s.varInc *= 1 / rescaleLimit
	}
	s.heap.update(v, s)
}

func (s *Solver) bumpCla(c *clause) {
	c.act += s.claInc
	if c.act > rescaleLimit {
		for _, l := range s.learnts {
			l.act *= 1 / rescaleLimit
		}
		s.claInc *= 1 / rescaleLimit
	}
}

// analyze derives the first-UIP learnt clause from a conflict and the level
// to backjump to. The asserting literal is learnt[0].
func (s *Solver) analyze(confl *clause) (learnt []Lit, btLevel int) {
	learnt = append(learnt, 0) // room for the asserting literal
	counter := 0
	var p Lit
	haveP := false
	idx := len(s.trail) - 1
	curLevel := int32(s.decisionLevel())

	for {
		if confl == nil {
			panic(fmt.Sprintf("analyze: nil reason; counter=%d level=%d trail=%d idx=%d p=%v plevel=%d learnt=%v",
				counter, curLevel, len(s.trail), idx, p, s.level[p.Var()], learnt))
		}
		if confl.learnt {
			s.bumpCla(confl)
		}
		start := 0
		if haveP {
			start = 1 // confl is p's reason; lits[0] == p
		}
		for _, q := range confl.lits[start:] {
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if s.level[v] == curLevel {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Walk the trail back to the next marked literal.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		haveP = true
		idx--
		s.seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[p.Var()]
	}
	learnt[0] = p.Not()

	// Self-subsumption minimization: a non-asserting literal whose reason's
	// remaining literals are all already in the clause (seen) or at level 0
	// is implied by the rest and can be dropped.
	for _, l := range learnt {
		s.seen[l.Var()] = true
	}
	s.minimal = s.minimal[:0]
	s.minimal = append(s.minimal, learnt[0])
	for _, l := range learnt[1:] {
		if r := s.reason[l.Var()]; r != nil && s.redundant(r, l) {
			continue
		}
		s.minimal = append(s.minimal, l)
	}
	// Clear the marks over the pre-minimization clause: literals dropped as
	// redundant are marked too and would poison the next conflict's walk.
	for _, l := range learnt {
		s.seen[l.Var()] = false
	}
	learnt = append(learnt[:0], s.minimal...)

	// Backjump to the second-highest level in the clause and place that
	// literal at index 1 (the other watch).
	btLevel = 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.level[learnt[1].Var()])
	}
	return learnt, btLevel
}

// redundant reports whether literal l (whose reason is r, with r.lits[0] the
// propagated literal ¬l) is implied by the currently-seen literals.
func (s *Solver) redundant(r *clause, l Lit) bool {
	for _, q := range r.lits {
		if q == l.Not() {
			continue
		}
		if !s.seen[q.Var()] && s.level[q.Var()] != 0 {
			return false
		}
	}
	return true
}

// record installs a learnt clause and enqueues its asserting literal.
func (s *Solver) record(lits []Lit) {
	s.stats.Learned++
	if len(lits) == 1 {
		s.uncheckedEnqueue(lits[0], nil)
		return
	}
	c := &clause{lits: append([]Lit(nil), lits...), learnt: true, id: s.nextCla}
	s.nextCla++
	s.learnts = append(s.learnts, c)
	s.attach(c)
	s.bumpCla(c)
	s.uncheckedEnqueue(lits[0], c)
}

// reduceDB removes the lower-activity half of the learnt clauses, keeping
// binary clauses and clauses that are currently propagation reasons.
func (s *Solver) reduceDB() {
	sortClauses(s.learnts)
	keep := s.learnts[:0]
	limit := len(s.learnts) / 2
	for i, c := range s.learnts {
		locked := s.reason[c.lits[0].Var()] == c && s.value(c.lits[0]) == lTrue
		if i < limit && len(c.lits) > 2 && !locked {
			s.detach(c)
			continue
		}
		keep = append(keep, c)
	}
	s.learnts = keep
}

// pickBranchLit selects the next decision via VSIDS with phase saving. It
// returns false when every variable is assigned.
func (s *Solver) pickBranchLit() (Lit, bool) {
	for {
		v, ok := s.heap.pop(s)
		if !ok {
			return 0, false
		}
		if s.assigns[v] == lUndef {
			return MkLit(v, !s.polarity[v]), true
		}
	}
}

// luby returns the i-th element (1-based) of the Luby restart sequence
// 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (1<<k)-1 {
			return 1 << (k - 1)
		}
		if i < (1<<k)-1 {
			return luby(i - (1 << (k - 1)) + 1)
		}
	}
}

// Solve decides satisfiability of the clause set under the given assumption
// literals. It returns (true, nil) with a model readable via Value, or
// (false, nil) when unsatisfiable under the assumptions. The context is
// polled between conflicts; on cancellation the error is ctx.Err(). Clauses
// learned during the call are retained for later calls.
func (s *Solver) Solve(ctx context.Context, assumptions ...Lit) (bool, error) {
	if !s.ok {
		return false, nil
	}
	s.cancelUntil(0)
	defer s.cancelUntil(0)
	if confl := s.propagate(); confl != nil {
		s.ok = false
		return false, nil
	}

	for round := int64(1); ; round++ {
		budget := luby(round) * restartBase
		res, err := s.search(ctx, budget, assumptions)
		if err != nil {
			return false, err
		}
		if res == lTrue {
			// Capture the model before the deferred unwind erases it.
			s.model = s.model[:0]
			for _, a := range s.assigns {
				s.model = append(s.model, a == lTrue)
			}
			return true, nil
		}
		if res == lFalse {
			return false, nil
		}
		s.stats.Restarts++
		s.cancelUntil(0)
	}
}

// search runs CDCL until a verdict, the conflict budget, or cancellation.
// lUndef means "restart budget exhausted".
func (s *Solver) search(ctx context.Context, budget int64, assumptions []Lit) (lbool, error) {
	conflicts := int64(0)
	for {
		confl := s.propagate()
		if confl != nil {
			s.stats.Conflicts++
			conflicts++
			if s.stats.Conflicts&ctxCheckMask == 0 {
				if err := ctx.Err(); err != nil {
					return lUndef, err
				}
			}
			if s.decisionLevel() == 0 {
				s.ok = false
				return lFalse, nil
			}
			if s.decisionLevel() <= len(assumptions) {
				// The conflict depends on the assumptions alone.
				return lFalse, nil
			}
			learnt, bt := s.analyze(confl)
			if bt < len(assumptions) {
				bt = len(assumptions)
			}
			s.cancelUntil(bt)
			// After trimming to the assumption level the asserting literal
			// may already be decided; re-propagating resolves it either way.
			if s.value(learnt[0]) == lUndef {
				s.record(learnt)
			} else {
				s.stats.Learned++
				if len(learnt) > 1 {
					c := &clause{lits: append([]Lit(nil), learnt...), learnt: true, id: s.nextCla}
					s.nextCla++
					s.learnts = append(s.learnts, c)
					s.attach(c)
				}
			}
			s.varInc *= varDecay
			s.claInc *= claDecay
			continue
		}

		if conflicts >= budget {
			return lUndef, nil
		}
		if len(s.learnts) > int(s.maxLearnts) {
			s.reduceDB()
			s.maxLearnts *= 1.1
		}

		// Re-establish assumptions (one decision level each), then branch.
		next := Lit(-1)
		for s.decisionLevel() < len(assumptions) {
			p := assumptions[s.decisionLevel()]
			switch s.value(p) {
			case lTrue:
				s.newDecisionLevel() // dummy level, keeps indices aligned
			case lFalse:
				return lFalse, nil // assumptions conflict
			default:
				next = p
			}
			if next != Lit(-1) {
				break
			}
		}
		if next == Lit(-1) {
			l, ok := s.pickBranchLit()
			if !ok {
				return lTrue, nil // full assignment, no conflict
			}
			s.stats.Decisions++
			next = l
		}
		s.newDecisionLevel()
		s.uncheckedEnqueue(next, nil)
	}
}

// sortClauses orders learnt clauses ascending by activity with the
// allocation id as a deterministic tiebreak (older first).
func sortClauses(cs []*clause) {
	// Insertion sort keeps the dependency surface minimal; the learnt DB is
	// reduced rarely and is mostly ordered between reductions.
	for i := 1; i < len(cs); i++ {
		c := cs[i]
		j := i - 1
		for j >= 0 && (cs[j].act > c.act || (cs[j].act == c.act && cs[j].id > c.id)) {
			cs[j+1] = cs[j]
			j--
		}
		cs[j+1] = c
	}
}

// varHeap is a binary max-heap over variables ordered by activity, ties
// broken by smaller index — the deterministic half of VSIDS.
type varHeap struct {
	heap []int
	pos  []int // variable -> heap index, -1 if absent
}

func (h *varHeap) less(a, b int, s *Solver) bool {
	if s.activity[a] != s.activity[b] {
		return s.activity[a] > s.activity[b]
	}
	return a < b
}

func (h *varHeap) insert(v int, s *Solver) {
	for len(h.pos) <= v {
		h.pos = append(h.pos, -1)
	}
	if h.pos[v] >= 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.pos[v] = len(h.heap) - 1
	h.up(h.pos[v], s)
}

func (h *varHeap) insertIfAbsent(v int, s *Solver) { h.insert(v, s) }

func (h *varHeap) update(v int, s *Solver) {
	if v < len(h.pos) && h.pos[v] >= 0 {
		h.up(h.pos[v], s)
	}
}

func (h *varHeap) pop(s *Solver) (int, bool) {
	if len(h.heap) == 0 {
		return 0, false
	}
	v := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap = h.heap[:len(h.heap)-1]
	h.pos[v] = -1
	if len(h.heap) > 0 {
		h.heap[0] = last
		h.pos[last] = 0
		h.down(0, s)
	}
	return v, true
}

func (h *varHeap) up(i int, s *Solver) {
	v := h.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(v, h.heap[p], s) {
			break
		}
		h.heap[i] = h.heap[p]
		h.pos[h.heap[i]] = i
		i = p
	}
	h.heap[i] = v
	h.pos[v] = i
}

func (h *varHeap) down(i int, s *Solver) {
	v := h.heap[i]
	for {
		c := 2*i + 1
		if c >= len(h.heap) {
			break
		}
		if c+1 < len(h.heap) && h.less(h.heap[c+1], h.heap[c], s) {
			c++
		}
		if !h.less(h.heap[c], v, s) {
			break
		}
		h.heap[i] = h.heap[c]
		h.pos[h.heap[i]] = i
		i = c
	}
	h.heap[i] = v
	h.pos[v] = i
}
