package sat

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestDIMACSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		m := rng.Intn(30)
		cnf := &CNF{NumVars: n}
		for i := 0; i < m; i++ {
			k := 1 + rng.Intn(4)
			cl := make([]Lit, k)
			for j := range cl {
				cl[j] = MkLit(rng.Intn(n), rng.Intn(2) == 1)
			}
			cnf.Clauses = append(cnf.Clauses, cl)
		}
		var buf bytes.Buffer
		if err := cnf.WriteDIMACS(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ParseDIMACS(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, buf.String())
		}
		if got.NumVars != cnf.NumVars || len(got.Clauses) != len(cnf.Clauses) {
			t.Fatalf("trial %d: shape mismatch", trial)
		}
		for i := range cnf.Clauses {
			if !reflect.DeepEqual(got.Clauses[i], cnf.Clauses[i]) {
				t.Fatalf("trial %d clause %d: %v != %v", trial, i, got.Clauses[i], cnf.Clauses[i])
			}
		}
	}
}

func TestParseDIMACSAcceptsCommentsAndMultiline(t *testing.T) {
	src := `c a comment
c another

p cnf 3 2
1 -2
3 0
-1 2 -3 0
`
	cnf, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if cnf.NumVars != 3 || len(cnf.Clauses) != 2 {
		t.Fatalf("parsed shape wrong: %+v", cnf)
	}
	want := []Lit{MkLit(0, false), MkLit(1, true), MkLit(2, false)}
	if !reflect.DeepEqual(cnf.Clauses[0], want) {
		t.Fatalf("clause 0 = %v, want %v", cnf.Clauses[0], want)
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	cases := map[string]string{
		"no header":      "1 2 0\n",
		"dup header":     "p cnf 1 0\np cnf 1 0\n",
		"bad header":     "p cnf x 0\n",
		"big literal":    "p cnf 2 1\n3 0\n",
		"bad token":      "p cnf 2 1\none 0\n",
		"unterminated":   "p cnf 2 1\n1 2\n",
		"count mismatch": "p cnf 2 2\n1 0\n",
	}
	for name, src := range cases {
		if _, err := ParseDIMACS(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestCNFAddTo checks the CNF → Solver bridge end to end.
func TestCNFAddTo(t *testing.T) {
	cnf := &CNF{NumVars: 2, Clauses: [][]Lit{
		{MkLit(0, false)},
		{MkLit(0, true), MkLit(1, false)},
	}}
	s := New()
	if !cnf.AddTo(s) {
		t.Fatal("consistent CNF rejected")
	}
	got, err := s.Solve(context.Background())
	if err != nil || !got || !s.Value(0) || !s.Value(1) {
		t.Fatalf("expected model {x0, x1}: got=%v err=%v", got, err)
	}
}
