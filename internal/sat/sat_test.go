package sat

import (
	"context"
	"math/rand"
	"testing"
)

// bruteSat enumerates all assignments of n variables and reports whether any
// satisfies every clause. Only usable for small n.
func bruteSat(n int, clauses [][]Lit) bool {
	for mask := 0; mask < 1<<n; mask++ {
		if evalCNF(mask, clauses) {
			return true
		}
	}
	return false
}

func evalCNF(mask int, clauses [][]Lit) bool {
	for _, cl := range clauses {
		sat := false
		for _, l := range cl {
			val := mask&(1<<l.Var()) != 0
			if val != l.Neg() {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

func solverFor(t *testing.T, n int, clauses [][]Lit) *Solver {
	t.Helper()
	s := New()
	for i := 0; i < n; i++ {
		s.NewVar()
	}
	for _, cl := range clauses {
		s.AddClause(cl...)
	}
	return s
}

func TestLitEncoding(t *testing.T) {
	l := MkLit(7, false)
	if l.Var() != 7 || l.Neg() || !l.Not().Neg() || l.Not().Var() != 7 {
		t.Fatalf("literal encoding broken: %v", l)
	}
	if l.String() != "8" || l.Not().String() != "-8" {
		t.Fatalf("DIMACS rendering broken: %q %q", l, l.Not())
	}
}

// TestRandomCNFAgainstBruteForce cross-checks the CDCL verdict against
// exhaustive enumeration on random 3-SAT near the phase transition, and
// verifies every reported model pointwise.
func TestRandomCNFAgainstBruteForce(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(9) // 3..11 variables
		m := int(4.3*float64(n)) + rng.Intn(5)
		clauses := make([][]Lit, m)
		for i := range clauses {
			cl := make([]Lit, 3)
			for j := range cl {
				cl[j] = MkLit(rng.Intn(n), rng.Intn(2) == 1)
			}
			clauses[i] = cl
		}
		want := bruteSat(n, clauses)
		s := solverFor(t, n, clauses)
		got, err := s.Solve(ctx)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got != want {
			t.Fatalf("trial %d: solver says %v, brute force says %v (n=%d m=%d)", trial, got, want, n, m)
		}
		if got {
			mask := 0
			for v := 0; v < n; v++ {
				if s.Value(v) {
					mask |= 1 << v
				}
			}
			if !evalCNF(mask, clauses) {
				t.Fatalf("trial %d: reported model does not satisfy the CNF", trial)
			}
		}
	}
}

// TestPigeonhole checks the classic hard UNSAT family: n+1 pigeons in n
// holes. Every instance is unsatisfiable and requires real conflict-driven
// search (no polynomial resolution proof exists).
func TestPigeonhole(t *testing.T) {
	ctx := context.Background()
	for holes := 2; holes <= 6; holes++ {
		pigeons := holes + 1
		s := New()
		at := func(p, h int) Lit { return MkLit(p*holes+h, false) }
		for i := 0; i < pigeons*holes; i++ {
			s.NewVar()
		}
		for p := 0; p < pigeons; p++ {
			cl := make([]Lit, holes)
			for h := 0; h < holes; h++ {
				cl[h] = at(p, h)
			}
			s.AddClause(cl...)
		}
		for h := 0; h < holes; h++ {
			for p1 := 0; p1 < pigeons; p1++ {
				for p2 := p1 + 1; p2 < pigeons; p2++ {
					s.AddClause(at(p1, h).Not(), at(p2, h).Not())
				}
			}
		}
		got, err := s.Solve(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if got {
			t.Fatalf("pigeonhole %d/%d reported SAT", pigeons, holes)
		}
		if holes >= 4 && s.Stats().Conflicts == 0 {
			t.Fatalf("pigeonhole %d/%d solved with zero conflicts — propagation alone cannot refute it", pigeons, holes)
		}
	}
}

// TestAssumptions exercises incremental solving: the same solver answers
// differently under different assumption sets, and assumption-UNSAT does not
// poison later calls.
func TestAssumptions(t *testing.T) {
	ctx := context.Background()
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false)) // a ∨ b
	s.AddClause(MkLit(a, true), MkLit(c, false))  // ¬a ∨ c
	s.AddClause(MkLit(b, true), MkLit(c, true))   // ¬b ∨ ¬c

	if got, _ := s.Solve(ctx); !got {
		t.Fatal("base formula should be SAT")
	}
	// a=true forces c=true forces b=false: consistent.
	if got, _ := s.Solve(ctx, MkLit(a, false)); !got {
		t.Fatal("should be SAT under a")
	}
	if !s.Value(c) || s.Value(b) {
		t.Fatal("model under assumption a must have c and not b")
	}
	// a=false,b=false contradicts a ∨ b.
	if got, _ := s.Solve(ctx, MkLit(a, true), MkLit(b, true)); got {
		t.Fatal("should be UNSAT under ¬a ∧ ¬b")
	}
	// The solver must recover: the global formula is still SAT.
	if got, _ := s.Solve(ctx); !got {
		t.Fatal("formula must remain SAT after assumption-UNSAT call")
	}
	// Directly contradictory assumptions.
	if got, _ := s.Solve(ctx, MkLit(a, false), MkLit(a, true)); got {
		t.Fatal("should be UNSAT under a ∧ ¬a")
	}
}

// TestIncrementalActivation mimics the BMC usage pattern: targets guarded by
// activation literals, permanently disabled after an UNSAT answer.
func TestIncrementalActivation(t *testing.T) {
	ctx := context.Background()
	s := New()
	x := s.NewVar()
	act1, act2 := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(act1, true), MkLit(x, false)) // act1 → x
	s.AddClause(MkLit(act2, true), MkLit(x, true))  // act2 → ¬x
	s.AddClause(MkLit(x, false))                    // x holds

	if got, _ := s.Solve(ctx, MkLit(act1, false)); !got {
		t.Fatal("query 1 should be SAT")
	}
	if got, _ := s.Solve(ctx, MkLit(act2, false)); got {
		t.Fatal("query 2 should be UNSAT")
	}
	s.AddClause(MkLit(act2, true)) // retire query 2
	if got, _ := s.Solve(ctx, MkLit(act1, false)); !got {
		t.Fatal("query 1 should remain SAT after retiring query 2")
	}
}

func TestGlobalUnsatSticks(t *testing.T) {
	ctx := context.Background()
	s := New()
	v := s.NewVar()
	if !s.AddClause(MkLit(v, false)) {
		t.Fatal("first unit should be fine")
	}
	if s.AddClause(MkLit(v, true)) {
		t.Fatal("contradictory unit should report UNSAT")
	}
	if got, _ := s.Solve(ctx); got {
		t.Fatal("globally UNSAT solver answered SAT")
	}
	if s.AddClause(MkLit(v, false)) {
		t.Fatal("AddClause after global UNSAT should keep returning false")
	}
}

func TestEmptyAndTrivial(t *testing.T) {
	ctx := context.Background()
	s := New()
	if got, _ := s.Solve(ctx); !got {
		t.Fatal("empty clause set should be SAT")
	}
	v := s.NewVar()
	// Tautology is dropped, duplicate literal deduped.
	s.AddClause(MkLit(v, false), MkLit(v, true))
	s.AddClause(MkLit(v, false), MkLit(v, false))
	if got, _ := s.Solve(ctx); !got || !s.Value(v) {
		t.Fatal("v should be forced true")
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Large pigeonhole so the search cannot finish before the first poll.
	holes := 9
	pigeons := holes + 1
	s := New()
	at := func(p, h int) Lit { return MkLit(p*holes+h, false) }
	for i := 0; i < pigeons*holes; i++ {
		s.NewVar()
	}
	for p := 0; p < pigeons; p++ {
		cl := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			cl[h] = at(p, h)
		}
		s.AddClause(cl...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(at(p1, h).Not(), at(p2, h).Not())
			}
		}
	}
	if _, err := s.Solve(ctx); err == nil {
		t.Fatal("cancelled context should surface an error")
	}
}

// TestDeterminism runs the same instance twice in fresh solvers and compares
// models and statistics field-by-field.
func TestDeterminism(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	n := 40
	m := 170
	clauses := make([][]Lit, m)
	for i := range clauses {
		cl := make([]Lit, 3)
		for j := range cl {
			cl[j] = MkLit(rng.Intn(n), rng.Intn(2) == 1)
		}
		clauses[i] = cl
	}
	run := func() (bool, []bool, Stats) {
		s := solverFor(t, n, clauses)
		got, err := s.Solve(ctx)
		if err != nil {
			t.Fatal(err)
		}
		model := make([]bool, n)
		for v := 0; v < n; v++ {
			model[v] = s.Value(v)
		}
		return got, model, s.Stats()
	}
	got1, model1, st1 := run()
	got2, model2, st2 := run()
	if got1 != got2 || st1 != st2 {
		t.Fatalf("verdict/stats differ across identical runs: %v %+v vs %v %+v", got1, st1, got2, st2)
	}
	for v := range model1 {
		if model1[v] != model2[v] {
			t.Fatalf("model differs at variable %d", v)
		}
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Conflicts: 2, Decisions: 3, MaxLevel: 5}
	b := Stats{Conflicts: 1, Decisions: 1, MaxLevel: 9, Learned: 4}
	a.Add(b)
	if a.Conflicts != 3 || a.Decisions != 4 || a.MaxLevel != 9 || a.Learned != 4 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}
