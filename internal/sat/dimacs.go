package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CNF is a clause set in the plain form the DIMACS format carries: NumVars
// variables (0-based internally, 1-based in the file) and a list of clauses.
type CNF struct {
	NumVars int
	Clauses [][]Lit
}

// AddTo feeds every clause into the solver, allocating variables as needed,
// and returns the solver's verdict-so-far (false once globally UNSAT).
func (c *CNF) AddTo(s *Solver) bool {
	for s.NumVars() < c.NumVars {
		s.NewVar()
	}
	ok := true
	for _, cl := range c.Clauses {
		ok = s.AddClause(cl...)
	}
	return ok
}

// WriteDIMACS renders the CNF in DIMACS cnf format.
func (c *CNF) WriteDIMACS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p cnf %d %d\n", c.NumVars, len(c.Clauses))
	for _, cl := range c.Clauses {
		for _, l := range cl {
			bw.WriteString(l.String())
			bw.WriteByte(' ')
		}
		bw.WriteString("0\n")
	}
	return bw.Flush()
}

// ParseDIMACS reads a DIMACS cnf file. Comment lines ("c ...") are skipped;
// clauses may span lines and are terminated by 0, per the format. Literals
// beyond the declared variable count, a missing header, or a trailing
// unterminated clause are errors.
func ParseDIMACS(r io.Reader) (*CNF, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<24)
	cnf := &CNF{}
	header := false
	declared := 0
	var cur []Lit
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			if header {
				return nil, fmt.Errorf("dimacs: duplicate header")
			}
			f := strings.Fields(line)
			if len(f) != 4 || f[1] != "cnf" {
				return nil, fmt.Errorf("dimacs: malformed header %q", line)
			}
			nv, err1 := strconv.Atoi(f[2])
			nc, err2 := strconv.Atoi(f[3])
			if err1 != nil || err2 != nil || nv < 0 || nc < 0 {
				return nil, fmt.Errorf("dimacs: malformed header %q", line)
			}
			cnf.NumVars = nv
			declared = nc
			header = true
			continue
		}
		if !header {
			return nil, fmt.Errorf("dimacs: clause before header")
		}
		for _, tok := range strings.Fields(line) {
			n, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("dimacs: bad literal %q", tok)
			}
			if n == 0 {
				cnf.Clauses = append(cnf.Clauses, cur)
				cur = nil
				continue
			}
			v := n
			if v < 0 {
				v = -v
			}
			if v > cnf.NumVars {
				return nil, fmt.Errorf("dimacs: literal %d beyond %d declared variables", n, cnf.NumVars)
			}
			cur = append(cur, MkLit(v-1, n < 0))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cur) > 0 {
		return nil, fmt.Errorf("dimacs: unterminated final clause")
	}
	if len(cnf.Clauses) != declared {
		return nil, fmt.Errorf("dimacs: header declares %d clauses, found %d", declared, len(cnf.Clauses))
	}
	return cnf, nil
}
