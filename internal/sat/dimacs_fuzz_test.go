package sat

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDIMACS feeds arbitrary bytes to the parser (it must never panic) and,
// whenever a parse succeeds, re-serializes and re-parses to confirm the
// canonical form is a fixed point.
func FuzzDIMACS(f *testing.F) {
	f.Add([]byte("p cnf 3 2\n1 -2 3 0\n-1 2 -3 0\n"))
	f.Add([]byte("c comment\np cnf 1 1\n1 0\n"))
	f.Add([]byte("p cnf 0 0\n"))
	f.Add([]byte("p cnf 2 1\n1\n2 0\n"))
	f.Add([]byte("p cnf 5 3\n-5 4 0\n1 2 3 0\n-1 -2 0\n"))
	f.Add([]byte("1 2 0\n"))
	f.Add([]byte("p cnf 1 1\n99 0\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		cnf, err := ParseDIMACS(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := cnf.WriteDIMACS(&buf); err != nil {
			t.Fatalf("serialize parsed CNF: %v", err)
		}
		again, err := ParseDIMACS(&buf)
		if err != nil {
			t.Fatalf("reparse canonical form: %v\n%s", err, buf.String())
		}
		if again.NumVars != cnf.NumVars || len(again.Clauses) != len(cnf.Clauses) {
			t.Fatalf("round-trip changed shape: %d/%d vs %d/%d",
				cnf.NumVars, len(cnf.Clauses), again.NumVars, len(again.Clauses))
		}
		for i := range cnf.Clauses {
			if len(cnf.Clauses[i]) == 0 && len(again.Clauses[i]) == 0 {
				continue
			}
			if !reflect.DeepEqual(again.Clauses[i], cnf.Clauses[i]) {
				t.Fatalf("round-trip changed clause %d: %v vs %v", i, cnf.Clauses[i], again.Clauses[i])
			}
		}
	})
}
