package sim

import (
	"context"
	"testing"

	"repro/internal/casestudies"
	"repro/internal/expr"
	"repro/internal/repair"
)

func TestRepairedBAIsCleanUnderSimulation(t *testing.T) {
	c := casestudies.BA(3).MustCompile()
	res, err := repair.Lazy(context.Background(), c, repair.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	w := New(c, res.Trans, res.Invariant)
	cfg := DefaultConfig()
	cfg.Runs = 150
	m, err := w.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.BadStates != 0 || m.BadTransitions != 0 {
		t.Fatalf("repaired program violated safety in simulation: %s", m)
	}
	if m.FaultsInjected == 0 {
		t.Fatal("campaign injected no faults — vacuous")
	}
}

func TestOriginalBAViolatesUnderSimulation(t *testing.T) {
	// The fault-intolerant program finalizes unconditionally; with enough
	// adversarial runs a Byzantine general produces an agreement or
	// validity violation.
	c := casestudies.BA(3).MustCompile()
	// Start undecided: the interesting executions begin before anyone has
	// finalized.
	start := []expr.Expr{expr.Eq("b.g", 0)}
	for j := 0; j < 3; j++ {
		start = append(start,
			expr.Eq("b."+string(rune('0'+j)), 0),
			expr.Eq("d."+string(rune('0'+j)), casestudies.Bot),
			expr.Eq("f."+string(rune('0'+j)), 0))
	}
	startBDD, err := expr.And(start...).Compile(c.Space)
	if err != nil {
		t.Fatal(err)
	}
	w := New(c, c.Trans, c.Invariant).WithStart(startBDD)
	cfg := DefaultConfig()
	cfg.Runs = 400
	cfg.MaxFaults = 4
	cfg.FaultProb = 0.4
	m, err := w.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.BadStates == 0 {
		t.Fatalf("expected the unrepaired program to reach bad states: %s", m)
	}
}

func TestRepairedChainRecovers(t *testing.T) {
	c := casestudies.SC(4).MustCompile()
	res, err := repair.Lazy(context.Background(), c, repair.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	w := New(c, res.Trans, res.Invariant)
	cfg := DefaultConfig()
	cfg.Runs = 100
	cfg.Steps = 80
	m, err := w.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.BadTransitions != 0 {
		t.Fatalf("repaired chain took a bad transition: %s", m)
	}
	if m.Departures == 0 {
		t.Fatal("faults never left the invariant — vacuous")
	}
	if m.Recoveries == 0 {
		t.Fatalf("no recovery observed: %s", m)
	}
	if m.MaxRecoverySteps > 4*4 {
		t.Fatalf("recovery took too long: %s", m)
	}
}

func TestConfigValidation(t *testing.T) {
	c := casestudies.SC(3).MustCompile()
	w := New(c, c.Trans, c.Invariant)
	if _, err := w.Run(Config{}); err == nil {
		t.Fatal("zero config should error")
	}
}

func TestMetricsString(t *testing.T) {
	m := &Metrics{Runs: 1, Recoveries: 2, TotalRecoverySteps: 6}
	if m.MeanRecovery() != 3 {
		t.Fatalf("mean = %v", m.MeanRecovery())
	}
	if len(m.String()) == 0 {
		t.Fatal("empty rendering")
	}
}
