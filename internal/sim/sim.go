// Package sim executes random adversarial walks over a compiled program's
// transition system — interleaving program steps with a bounded number of
// fault steps — and reports safety violations and recovery behavior. It
// complements the symbolic verifier with runtime-level evidence: the
// verifier proves the repaired program masking fault-tolerant; the simulator
// demonstrates it on concrete executions (and demonstrates the original
// program failing on the same fault schedules).
package sim

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/bdd"
	"repro/internal/program"
	"repro/internal/witness"
)

// Config controls a simulation campaign.
type Config struct {
	// Runs is the number of independent executions.
	Runs int
	// Steps bounds the length of each execution.
	Steps int
	// MaxFaults bounds fault occurrences per run (computations contain
	// finitely many faults, Definition 13).
	MaxFaults int
	// FaultProb is the per-step probability of attempting a fault step
	// while the fault budget lasts and a fault is enabled.
	FaultProb float64
	// Seed makes campaigns reproducible.
	Seed int64
}

// DefaultConfig returns a moderate campaign.
func DefaultConfig() Config {
	return Config{Runs: 200, Steps: 60, MaxFaults: 3, FaultProb: 0.25, Seed: 1}
}

// Metrics aggregates a campaign's outcomes.
type Metrics struct {
	Runs  int
	Steps int

	// BadStates counts visits to Sf_bs states; BadTransitions counts
	// executed Sf_bt transitions (program or fault).
	BadStates      int
	BadTransitions int

	// FaultsInjected counts fault steps taken.
	FaultsInjected int
	// Departures counts excursions that left the invariant; Recoveries
	// counts those that returned to it before the run ended.
	Departures, Recoveries int
	// MaxRecoverySteps is the longest observed excursion that recovered;
	// TotalRecoverySteps sums them (for the mean).
	MaxRecoverySteps   int
	TotalRecoverySteps int
	// Rests counts runs that ended in a state with no outgoing program
	// transition (a legal rest when inside the invariant).
	Rests int
}

// MeanRecovery returns the average excursion length of recovered departures.
func (m *Metrics) MeanRecovery() float64 {
	if m.Recoveries == 0 {
		return 0
	}
	return float64(m.TotalRecoverySteps) / float64(m.Recoveries)
}

// String renders the campaign summary.
func (m *Metrics) String() string {
	return fmt.Sprintf(
		"runs=%d steps=%d faults=%d | bad states=%d bad transitions=%d | departures=%d recoveries=%d (mean %.1f, max %d steps) rests=%d",
		m.Runs, m.Steps, m.FaultsInjected, m.BadStates, m.BadTransitions,
		m.Departures, m.Recoveries, m.MeanRecovery(), m.MaxRecoverySteps, m.Rests)
}

// Walker runs campaigns over one compiled model.
type Walker struct {
	c         *program.Compiled
	trans     bdd.Node // program transitions to simulate
	invariant bdd.Node
	start     bdd.Node // initial-state predicate (default: the invariant)
}

// New builds a walker for the given program transitions and invariant
// (typically either the original c.Trans/c.Invariant or a repair result's
// Trans/Invariant). Runs start from random invariant states; see WithStart.
// The walker roots its relations for the life of the manager: campaigns run
// through many collection safe points.
func New(c *program.Compiled, trans, invariant bdd.Node) *Walker {
	m := c.Space.M
	m.Ref(trans)
	m.Ref(invariant)
	m.Ref(invariant) // once more: start aliases it until WithStart
	return &Walker{c: c, trans: trans, invariant: invariant, start: invariant}
}

// WithStart restricts the runs' initial states to the given predicate
// (e.g. the all-undecided configurations of Byzantine agreement).
func (w *Walker) WithStart(pred bdd.Node) *Walker {
	m := w.c.Space.M
	m.Ref(pred)
	m.Deref(w.start)
	w.start = pred
	return w
}

// Run executes a campaign and aggregates metrics.
func (w *Walker) Run(cfg Config) (*Metrics, error) {
	return w.RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: the context is checked at the start of
// every run, so a deadline shared with a repair job cannot be blown by a long
// campaign after the synthesis already timed out.
func (w *Walker) RunContext(ctx context.Context, cfg Config) (*Metrics, error) {
	if cfg.Runs <= 0 || cfg.Steps <= 0 {
		return nil, fmt.Errorf("sim: Runs and Steps must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := w.c.Space
	m := s.M
	metrics := &Metrics{Runs: cfg.Runs}

	for run := 0; run < cfg.Runs; run++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sim: interrupted: %w", err)
		}
		state, err := w.randomState(rng, w.start)
		if err != nil {
			return nil, err
		}
		faultsLeft := cfg.MaxFaults
		outsideSince := -1 // step index when the invariant was left

		for step := 0; step < cfg.Steps; step++ {
			metrics.Steps++
			stBDD, err := s.State(state)
			if err != nil {
				return nil, err
			}
			if m.And(stBDD, w.c.BadStates) != bdd.False {
				metrics.BadStates++
			}
			inInv := m.And(stBDD, w.invariant) != bdd.False
			if !inInv && outsideSince < 0 {
				outsideSince = step
				metrics.Departures++
			}
			if inInv && outsideSince >= 0 {
				dur := step - outsideSince
				metrics.Recoveries++
				metrics.TotalRecoverySteps += dur
				if dur > metrics.MaxRecoverySteps {
					metrics.MaxRecoverySteps = dur
				}
				outsideSince = -1
			}

			// Choose a relation for this step.
			useFault := faultsLeft > 0 && rng.Float64() < cfg.FaultProb
			var rel bdd.Node
			if useFault {
				rel = w.c.Fault
			} else {
				rel = w.trans
			}
			next, ok, err := w.randomSuccessor(rng, stBDD, rel)
			if err != nil {
				return nil, err
			}
			if !ok && useFault {
				// No fault enabled; fall back to a program step.
				useFault = false
				next, ok, err = w.randomSuccessor(rng, stBDD, w.trans)
				if err != nil {
					return nil, err
				}
			}
			if !ok {
				metrics.Rests++
				break
			}
			if useFault {
				metrics.FaultsInjected++
				faultsLeft--
			}
			// Bad transition?
			nxBDD, err := s.State(next)
			if err != nil {
				return nil, err
			}
			trBDD := m.And(stBDD, s.Prime(nxBDD))
			if m.And(trBDD, w.c.BadTrans) != bdd.False {
				metrics.BadTransitions++
			}
			state = next
		}
	}
	return metrics, nil
}

// ReplayResult summarizes the replay of one witness trace.
type ReplayResult struct {
	// Steps is the number of transitions executed (len(trace.Steps)-1).
	Steps int
	// Faults counts the fault steps among them.
	Faults int
	// Departed reports whether the trace left the walker's invariant;
	// Reentered whether it later returned to it.
	Departed, Reentered bool
	// BadStates counts visits to Sf_bs states; BadTransitions counts
	// executed Sf_bt transitions.
	BadStates, BadTransitions int
}

// Replay executes a witness trace step-by-step on the walker's transition
// system: every program step must be a transition of the walker's relation,
// every fault step a transition of the model's fault actions. It returns an
// error at the first step that is not actually executable, so a recovery
// demonstration doubles as a simulator seed — Replay(demo) succeeding with
// Reentered=true re-confirms convergence on the concrete execution.
func (w *Walker) Replay(tr *witness.Trace) (*ReplayResult, error) {
	if tr == nil || len(tr.Steps) == 0 {
		return nil, fmt.Errorf("sim: empty trace")
	}
	s := w.c.Space
	m := s.M
	out := &ReplayResult{}
	var prev bdd.Node
	for i, st := range tr.Steps {
		stBDD, err := s.State(st.State)
		if err != nil {
			return nil, fmt.Errorf("sim: replay step %d: %w", i, err)
		}
		if i == 0 {
			if st.Kind != witness.StepInit {
				return nil, fmt.Errorf("sim: replay step 0 must be init, got %q", st.Kind)
			}
		} else {
			out.Steps++
			var rel bdd.Node
			switch st.Kind {
			case witness.StepProgram:
				rel = w.trans
			case witness.StepFault:
				rel = w.c.Fault
				out.Faults++
			default:
				return nil, fmt.Errorf("sim: replay step %d: unknown kind %q", i, st.Kind)
			}
			trBDD := m.AndN(prev, s.Prime(stBDD), s.ValidTrans())
			if m.And(trBDD, rel) == bdd.False {
				return nil, fmt.Errorf("sim: replay step %d: %s step is not executable", i, st.Kind)
			}
			if m.And(trBDD, w.c.BadTrans) != bdd.False {
				out.BadTransitions++
			}
		}
		if m.And(stBDD, w.c.BadStates) != bdd.False {
			out.BadStates++
		}
		if m.And(stBDD, w.invariant) == bdd.False {
			out.Departed = true
		} else if out.Departed {
			out.Reentered = true
		}
		prev = stBDD
	}
	return out, nil
}

// randomState samples a state from a nonempty predicate, randomizing the
// don't-care bits of a satisfying cube.
func (w *Walker) randomState(rng *rand.Rand, set bdd.Node) (map[string]int, error) {
	s := w.c.Space
	m := s.M
	valid := m.And(set, s.ValidCur())
	if valid == bdd.False {
		return nil, fmt.Errorf("sim: empty state set")
	}
	cube := m.PickCubeRand(valid, func() bool { return rng.Intn(2) == 1 })
	out := make(map[string]int, len(s.Vars))
	for _, v := range s.Vars {
		val := 0
		for b, lvl := range v.CurLevels() {
			bit := cube[lvl]
			if bit == -1 {
				if rng.Intn(2) == 1 {
					bit = 1
				} else {
					bit = 0
				}
			}
			if bit == 1 {
				val |= 1 << b
			}
		}
		if val >= v.Domain {
			val = 0 // randomized don't-cares may leave the domain; clamp
		}
		out[v.Name] = val
	}
	// The clamp may have produced a state outside `set`; fall back to the
	// cube's deterministic values in that case.
	st, err := s.State(out)
	if err != nil {
		return nil, err
	}
	if m.And(st, valid) != bdd.False {
		return out, nil
	}
	for _, v := range s.Vars {
		out[v.Name] = v.DecodeCube(cube)
	}
	return out, nil
}

// randomSuccessor picks a uniformly-ish random successor of state under rel,
// reporting ok=false if there is none.
func (w *Walker) randomSuccessor(rng *rand.Rand, stBDD bdd.Node, rel bdd.Node) (map[string]int, bool, error) {
	s := w.c.Space
	m := s.M
	img := s.Image(stBDD, rel)
	if img == bdd.False {
		return nil, false, nil
	}
	// Enumerate up to a handful of successor cubes and pick one.
	type cand struct{ vals map[string]int }
	var cands []cand
	m.AllSat(m.And(img, s.ValidCur()), func(cube []int8) bool {
		vals := make(map[string]int, len(s.Vars))
		for _, v := range s.Vars {
			vals[v.Name] = v.DecodeCube(cube)
		}
		cands = append(cands, cand{vals})
		return len(cands) < 16
	})
	if len(cands) == 0 {
		return nil, false, nil
	}
	return cands[rng.Intn(len(cands))].vals, true, nil
}
