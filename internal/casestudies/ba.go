// Package casestudies builds the repair-problem instances evaluated in the
// paper: Byzantine agreement (Table I), Byzantine agreement with fail-stop
// faults, and the stabilizing chain (Table II), each parameterized by size.
package casestudies

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/program"
	"repro/internal/symbolic"
)

// Bot is the "undecided" value ⊥ of the decision variables d.j ∈ {0, 1, ⊥}.
const Bot = 2

// BA builds the Byzantine-agreement instance with n non-general processes
// (Section VI of the paper).
//
// Variables: the general g has b.g ∈ {0,1} (whether it is Byzantine) and
// d.g ∈ {0,1} (its decision); every non-general j has b.j ∈ {0,1},
// d.j ∈ {0,1,⊥} and f.j ∈ {0,1} (whether its decision is finalized).
//
// Read/write restrictions: non-general j reads every decision variable plus
// its own b.j and f.j, and writes d.j and f.j.
//
// Fault-intolerant actions of j:
//
//	d.j = ⊥ ∧ f.j = 0  →  d.j := d.g
//	d.j ≠ ⊥ ∧ f.j = 0  →  f.j := 1
//
// Faults: one process (general included) may become Byzantine if no process
// is; a Byzantine process may perturb its decision arbitrarily.
func BA(n int) *program.Def {
	if n < 1 {
		panic("casestudies: BA requires at least one non-general")
	}
	d := &program.Def{Name: fmt.Sprintf("BA(%d)", n)}

	bg, dg := "b.g", "d.g"
	d.Vars = append(d.Vars,
		symbolic.VarSpec{Name: bg, Domain: 2},
		symbolic.VarSpec{Name: dg, Domain: 2},
	)
	bj := func(j int) string { return fmt.Sprintf("b.%d", j) }
	dj := func(j int) string { return fmt.Sprintf("d.%d", j) }
	fj := func(j int) string { return fmt.Sprintf("f.%d", j) }
	for j := 0; j < n; j++ {
		d.Vars = append(d.Vars,
			symbolic.VarSpec{Name: bj(j), Domain: 2},
			symbolic.VarSpec{Name: dj(j), Domain: 3},
			symbolic.VarSpec{Name: fj(j), Domain: 2},
		)
	}

	// Processes with their read/write restrictions and actions.
	for j := 0; j < n; j++ {
		read := []string{dg, bj(j), fj(j)}
		for k := 0; k < n; k++ {
			read = append(read, dj(k))
		}
		d.Processes = append(d.Processes, &program.Process{
			Name:  fmt.Sprintf("p%d", j),
			Read:  read,
			Write: []string{dj(j), fj(j)},
			Actions: []program.Action{
				{
					Name:    "copy",
					Guard:   expr.And(expr.Eq(dj(j), Bot), expr.Eq(fj(j), 0)),
					Updates: []program.Update{program.Copy(dj(j), dg)},
				},
				{
					Name:    "finalize",
					Guard:   expr.And(expr.Ne(dj(j), Bot), expr.Eq(fj(j), 0)),
					Updates: []program.Update{program.Set(fj(j), 1)},
				},
			},
		})
	}

	// Faults. noByz: no process is Byzantine yet.
	noByz := []expr.Expr{expr.Eq(bg, 0)}
	for j := 0; j < n; j++ {
		noByz = append(noByz, expr.Eq(bj(j), 0))
	}
	d.Faults = append(d.Faults, program.Action{
		Name:    "byz-g",
		Guard:   expr.And(noByz...),
		Updates: []program.Update{program.Set(bg, 1)},
	}, program.Action{
		Name:    "perturb-g",
		Guard:   expr.Eq(bg, 1),
		Updates: []program.Update{program.Choose(dg, 0, 1)},
	})
	for j := 0; j < n; j++ {
		d.Faults = append(d.Faults, program.Action{
			Name:    fmt.Sprintf("byz-%d", j),
			Guard:   expr.And(noByz...),
			Updates: []program.Update{program.Set(bj(j), 1)},
		}, program.Action{
			Name:    fmt.Sprintf("perturb-%d", j),
			Guard:   expr.Eq(bj(j), 1),
			Updates: []program.Update{program.Choose(dj(j), 0, 1)},
		})
	}

	d.Invariant = baInvariant(n)
	d.BadStates = baBadStates(n)
	d.BadTrans = baBadTrans(n)
	return d
}

// baInvariant describes the legitimate states, following the formulation in
// the symbolic-synthesis literature: at most one process (the general
// included) is Byzantine, and every non-Byzantine non-general follows the
// general — its decision is either ⊥ or the general's *current* decision,
// and finalized implies decided. Note this is closed under the copy action
// even when the general is Byzantine; a perturbation of d.g moves already-
// decided followers outside the invariant, and recovery re-converges them.
func baInvariant(n int) expr.Expr {
	bg, dg := "b.g", "d.g"
	bj := func(j int) string { return fmt.Sprintf("b.%d", j) }
	dj := func(j int) string { return fmt.Sprintf("d.%d", j) }
	fj := func(j int) string { return fmt.Sprintf("f.%d", j) }

	follows := func(j int) expr.Expr {
		return expr.And(
			expr.Or(expr.Eq(dj(j), Bot), expr.EqVar(dj(j), dg)),
			expr.Implies(expr.Eq(fj(j), 1), expr.Ne(dj(j), Bot)),
		)
	}

	// Case A: nobody Byzantine, everyone follows.
	caseA := []expr.Expr{expr.Eq(bg, 0)}
	for j := 0; j < n; j++ {
		caseA = append(caseA, expr.Eq(bj(j), 0), follows(j))
	}

	// Case B: exactly one Byzantine non-general k; the others follow.
	var caseBs []expr.Expr
	for k := 0; k < n; k++ {
		cb := []expr.Expr{expr.Eq(bg, 0), expr.Eq(bj(k), 1)}
		for j := 0; j < n; j++ {
			if j == k {
				continue
			}
			cb = append(cb, expr.Eq(bj(j), 0), follows(j))
		}
		caseBs = append(caseBs, expr.And(cb...))
	}

	// Case C: Byzantine general; the (honest) non-generals are mutually
	// consistent on some value v — decided means d.j = v, finalized implies
	// decided. Consistency cannot refer to the general's current decision:
	// d.g flips under the Byzantine perturbation while finalized decisions
	// are frozen. States where an undecided follower can no longer act
	// consistently simply rest (Definition 5 permits finite maximal
	// computations; with a flip-flopping Byzantine general, termination is
	// not guaranteed — only safety and recovery are).
	agreesOn := func(j, v int) expr.Expr {
		return expr.And(
			expr.Or(expr.Eq(dj(j), Bot), expr.Eq(dj(j), v)),
			expr.Implies(expr.Eq(fj(j), 1), expr.Eq(dj(j), v)),
		)
	}
	var caseCs []expr.Expr
	for v := 0; v <= 1; v++ {
		cc := []expr.Expr{expr.Eq(bg, 1)}
		for j := 0; j < n; j++ {
			cc = append(cc, expr.Eq(bj(j), 0), agreesOn(j, v))
		}
		caseCs = append(caseCs, expr.And(cc...))
	}

	all := []expr.Expr{expr.And(caseA...)}
	all = append(all, caseBs...)
	all = append(all, caseCs...)
	return expr.Or(all...)
}

// baBadStates encodes the safety bad states: validity (a finalized non-
// Byzantine non-general disagreeing with a non-Byzantine general) and
// agreement (two finalized non-Byzantine non-generals disagreeing).
func baBadStates(n int) expr.Expr {
	bg, dg := "b.g", "d.g"
	bj := func(j int) string { return fmt.Sprintf("b.%d", j) }
	dj := func(j int) string { return fmt.Sprintf("d.%d", j) }
	fj := func(j int) string { return fmt.Sprintf("f.%d", j) }

	var bad []expr.Expr
	for j := 0; j < n; j++ {
		// Validity violation.
		bad = append(bad, expr.And(
			expr.Eq(bg, 0), expr.Eq(bj(j), 0), expr.Eq(fj(j), 1),
			expr.Not(expr.EqVar(dj(j), dg)),
		))
		// Agreement violation.
		for k := j + 1; k < n; k++ {
			bad = append(bad, expr.And(
				expr.Eq(bj(j), 0), expr.Eq(bj(k), 0),
				expr.Eq(fj(j), 1), expr.Eq(fj(k), 1),
				expr.NeVar(dj(j), dj(k)),
			))
		}
	}
	return expr.Or(bad...)
}

// baBadTrans prohibits changing or retracting a finalized decision of a
// non-Byzantine process.
func baBadTrans(n int) expr.Expr {
	bj := func(j int) string { return fmt.Sprintf("b.%d", j) }
	dj := func(j int) string { return fmt.Sprintf("d.%d", j) }
	fj := func(j int) string { return fmt.Sprintf("f.%d", j) }

	var bad []expr.Expr
	for j := 0; j < n; j++ {
		bad = append(bad, expr.And(
			expr.Eq(bj(j), 0), expr.Eq(fj(j), 1),
			expr.Or(expr.Changed(dj(j)), expr.Changed(fj(j))),
		))
	}
	return expr.Or(bad...)
}
