package casestudies

import (
	"context"
	"testing"

	"repro/internal/bdd"
	"repro/internal/repair"
	"repro/internal/verify"
)

func TestTMRLazyVerified(t *testing.T) {
	c := TMR().MustCompile()
	res, err := repair.Lazy(context.Background(), c, repair.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := verify.Result(c, res)
	if !rep.OK() {
		t.Fatalf("verification failed:\n%s", rep)
	}
	s := c.Space
	m := s.M

	// The repaired voter publishes the majority when replica 0 is the
	// corrupted one: from (in = 1,0,0, out = ⊥), publishing 1 (copying the
	// corrupt replica, as the original program did) must be gone, and a
	// path to a finalized majority output 0 must exist.
	start, _ := s.State(map[string]int{
		"in.0": 1, "in.1": 0, "in.2": 0, "out": Bot, "done": 0, "hit": 1})
	if m.And(start, res.FaultSpan) == bdd.False {
		t.Skip("corrupted-publish state outside span")
	}
	badPublish, _ := s.Transition(
		map[string]int{"in.0": 1, "in.1": 0, "in.2": 0, "out": Bot, "done": 0, "hit": 1},
		map[string]int{"in.0": 1, "in.1": 0, "in.2": 0, "out": 1, "done": 0, "hit": 1})
	if m.Implies(badPublish, res.Trans) {
		t.Fatal("repair kept the corrupt copy-from-replica-0 publish")
	}
	reach := s.Reachable(start, res.Trans)
	goal, _ := s.State(map[string]int{
		"in.0": 1, "in.1": 0, "in.2": 0, "out": 0, "done": 1, "hit": 1})
	if m.And(reach, goal) == bdd.False {
		t.Fatal("repaired voter cannot finalize the majority value")
	}
}

func TestTMRCautiousVerified(t *testing.T) {
	c := TMR().MustCompile()
	res, err := repair.Cautious(context.Background(), c, repair.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep := verify.Result(c, res); !rep.OK() {
		t.Fatalf("verification failed:\n%s", rep)
	}
}

func TestTMROriginalViolates(t *testing.T) {
	// Sanity: the fault-intolerant voter can reach a bad state (publishing
	// and finalizing the corrupted replica's value).
	c := TMR().MustCompile()
	s := c.Space
	m := s.M
	reach := s.ReachableParts(c.Invariant, c.PartsWithFaults(bdd.True))
	if m.And(reach, c.BadStates) == bdd.False {
		t.Fatal("original TMR should be able to violate safety — model too weak")
	}
}
