package casestudies

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/program"
	"repro/internal/symbolic"
)

// TMR builds the triple-modular-redundancy example classic to this synthesis
// line of work: three input replicas feed one voter that must publish a
// final output. The fault corrupts at most one replica *before or after*
// the voter reads, so the fault-intolerant voter — which simply copies the
// first replica — can publish a corrupted value. Repair must synthesize
// majority voting.
//
// Variables: in.0, in.1, in.2 ∈ {0,1} (replicas), out ∈ {0,1,⊥},
// done ∈ {0,1}. The voter reads everything and writes out and done.
//
// Fault-intolerant voter:
//
//	out = ⊥ ∧ done = 0 → out := in.0
//	out ≠ ⊥ ∧ done = 0 → done := 1
//
// Faults: corrupt one replica (at most one in total, tracked by the hit
// flag).
//
// Safety: a finalized output must equal the majority of the replicas —
// since at most one replica is corrupted, the majority is the true input —
// and a finalized output never changes.
func TMR() *program.Def {
	d := &program.Def{Name: "TMR"}
	in := func(i int) string { return fmt.Sprintf("in.%d", i) }
	d.Vars = append(d.Vars,
		symbolic.VarSpec{Name: in(0), Domain: 2},
		symbolic.VarSpec{Name: in(1), Domain: 2},
		symbolic.VarSpec{Name: in(2), Domain: 2},
		symbolic.VarSpec{Name: "out", Domain: 3}, // 2 = ⊥
		symbolic.VarSpec{Name: "done", Domain: 2},
		symbolic.VarSpec{Name: "hit", Domain: 2}, // a replica was corrupted
	)

	d.Processes = []*program.Process{{
		Name:  "voter",
		Read:  []string{in(0), in(1), in(2), "out", "done"},
		Write: []string{"out", "done"},
		Actions: []program.Action{
			{
				Name:    "publish",
				Guard:   expr.And(expr.Eq("out", Bot), expr.Eq("done", 0)),
				Updates: []program.Update{program.Copy("out", in(0))},
			},
			{
				Name:    "finalize",
				Guard:   expr.And(expr.Ne("out", Bot), expr.Eq("done", 0)),
				Updates: []program.Update{program.Set("done", 1)},
			},
		},
	}}

	for i := 0; i < 3; i++ {
		d.Faults = append(d.Faults, program.Action{
			Name:    fmt.Sprintf("corrupt-%d", i),
			Guard:   expr.Eq("hit", 0),
			Updates: []program.Update{program.Choose(in(i), 0, 1), program.Set("hit", 1)},
		})
	}

	// majority(v): at least two replicas hold v.
	majority := func(v int) expr.Expr {
		return expr.Or(
			expr.And(expr.Eq(in(0), v), expr.Eq(in(1), v)),
			expr.And(expr.Eq(in(0), v), expr.Eq(in(2), v)),
			expr.And(expr.Eq(in(1), v), expr.Eq(in(2), v)),
		)
	}

	// Legitimate states: no corruption yet, replicas unanimous, and the
	// output — once published — matches them. States with a corrupted
	// replica are fault-span territory: there the repair must *invent*
	// majority voting, which it could not do inside the invariant (no new
	// behavior is allowed there).
	unanimous := func(v int) expr.Expr {
		return expr.And(expr.Eq(in(0), v), expr.Eq(in(1), v), expr.Eq(in(2), v))
	}
	// The hit flag is permanent, so recovery after a corruption must land in
	// hit=1 states: the *completed* configurations where the finalized
	// output equals the majority are also legitimate (and rest there).
	d.Invariant = expr.Or(
		expr.And(
			expr.Eq("hit", 0),
			expr.Or(
				expr.And(unanimous(0), expr.Or(expr.Eq("out", Bot), expr.Eq("out", 0))),
				expr.And(unanimous(1), expr.Or(expr.Eq("out", Bot), expr.Eq("out", 1))),
			),
			expr.Implies(expr.Eq("done", 1), expr.Ne("out", Bot)),
		),
		expr.And(
			expr.Eq("hit", 1), expr.Eq("done", 1),
			expr.Or(
				expr.And(expr.Eq("out", 0), majority(0)),
				expr.And(expr.Eq("out", 1), majority(1)),
			),
		),
	)

	// Bad: finalized output disagreeing with the majority.
	d.BadStates = expr.And(
		expr.Eq("done", 1),
		expr.Not(expr.Or(
			expr.And(expr.Eq("out", 0), majority(0)),
			expr.And(expr.Eq("out", 1), majority(1)),
		)),
	)
	// Bad: changing a finalized output.
	d.BadTrans = expr.And(expr.Eq("done", 1), expr.Or(expr.Changed("out"), expr.Changed("done")))
	return d
}
