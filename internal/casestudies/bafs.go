package casestudies

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/program"
	"repro/internal/symbolic"
)

// BAFS builds Byzantine agreement with fail-stop faults for n non-generals:
// the BA(n) model extended with a liveness variable up.j per non-general.
// Faults may either make one process Byzantine (as in BA) or crash one
// non-general (up.j := 0); at most one process is faulty in total. A crashed
// process takes no steps: its actions are guarded by up.j = 1, and the
// safety specification prohibits any change to a crashed process's decision
// variables, which also forces synthesized recovery to respect the crash.
func BAFS(n int) *program.Def {
	if n < 1 {
		panic("casestudies: BAFS requires at least one non-general")
	}
	base := BA(n)
	d := &program.Def{Name: fmt.Sprintf("BAFS(%d)", n)}

	upj := func(j int) string { return fmt.Sprintf("up.%d", j) }
	bj := func(j int) string { return fmt.Sprintf("b.%d", j) }
	dj := func(j int) string { return fmt.Sprintf("d.%d", j) }
	fj := func(j int) string { return fmt.Sprintf("f.%d", j) }

	// Variables: BA's plus up.j per non-general.
	d.Vars = append(d.Vars, base.Vars...)
	for j := 0; j < n; j++ {
		d.Vars = append(d.Vars, symbolic.VarSpec{Name: upj(j), Domain: 2})
	}

	// Processes: BA's with up.j readable by its owner and every action
	// guarded by being up.
	for j, p := range base.Processes {
		np := &program.Process{
			Name:  p.Name,
			Read:  append(append([]string{}, p.Read...), upj(j)),
			Write: p.Write,
		}
		for _, a := range p.Actions {
			np.Actions = append(np.Actions, program.Action{
				Name:    a.Name,
				Guard:   expr.And(a.Guard, expr.Eq(upj(j), 1)),
				Updates: a.Updates,
			})
		}
		d.Processes = append(d.Processes, np)
	}

	// Faults: at most one faulty process overall — either one Byzantine
	// (general included) or one crashed non-general.
	noFault := []expr.Expr{expr.Eq("b.g", 0)}
	for j := 0; j < n; j++ {
		noFault = append(noFault, expr.Eq(bj(j), 0), expr.Eq(upj(j), 1))
	}
	d.Faults = append(d.Faults, program.Action{
		Name:    "byz-g",
		Guard:   expr.And(noFault...),
		Updates: []program.Update{program.Set("b.g", 1)},
	}, program.Action{
		Name:    "perturb-g",
		Guard:   expr.Eq("b.g", 1),
		Updates: []program.Update{program.Choose("d.g", 0, 1)},
	})
	for j := 0; j < n; j++ {
		d.Faults = append(d.Faults, program.Action{
			Name:    fmt.Sprintf("byz-%d", j),
			Guard:   expr.And(noFault...),
			Updates: []program.Update{program.Set(bj(j), 1)},
		}, program.Action{
			Name:    fmt.Sprintf("perturb-%d", j),
			Guard:   expr.Eq(bj(j), 1),
			Updates: []program.Update{program.Choose(dj(j), 0, 1)},
		}, program.Action{
			Name:    fmt.Sprintf("crash-%d", j),
			Guard:   expr.And(noFault...),
			Updates: []program.Update{program.Set(upj(j), 0)},
		})
	}

	// Invariant and bad states carry over from BA (up.j unconstrained: a
	// crashed process's frozen decision is legitimate as long as it is
	// consistent). Bad transitions additionally freeze crashed processes.
	d.Invariant = base.Invariant
	d.BadStates = base.BadStates
	frozen := make([]expr.Expr, 0, n)
	for j := 0; j < n; j++ {
		frozen = append(frozen, expr.And(
			expr.Eq(upj(j), 0),
			expr.Or(expr.Changed(dj(j)), expr.Changed(fj(j))),
		))
	}
	d.BadTrans = expr.Or(base.BadTrans, expr.Or(frozen...))
	return d
}
