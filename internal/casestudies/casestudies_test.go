package casestudies

import (
	"context"
	"testing"

	"repro/internal/bdd"
	"repro/internal/expr"
	"repro/internal/program"
	"repro/internal/repair"
	"repro/internal/verify"
)

func repairAndVerify(t *testing.T, d *program.Def, alg func(context.Context, *program.Compiled, repair.Options) (*repair.Result, error)) (*program.Compiled, *repair.Result) {
	t.Helper()
	c := d.MustCompile()
	res, err := alg(context.Background(), c, repair.DefaultOptions())
	if err != nil {
		t.Fatalf("%s: repair failed: %v", d.Name, err)
	}
	rep := verify.Result(c, res)
	if !rep.OK() {
		t.Fatalf("%s: verification failed:\n%s", d.Name, rep)
	}
	return c, res
}

func TestBA3LazyVerified(t *testing.T) {
	c, res := repairAndVerify(t, BA(3), repair.Lazy)
	s := c.Space
	m := s.M

	// The repaired invariant must retain the fault-free legitimate states:
	// nobody Byzantine, everyone following the general.
	caseA, err := fullFollow(3).Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	caseA = m.And(caseA, s.ValidCur())
	if !m.Implies(caseA, res.Invariant) {
		t.Fatalf("repair dropped %g of %g fault-free legitimate states",
			s.CountStates(m.Diff(caseA, res.Invariant)), s.CountStates(caseA))
	}
	// The fault-intolerant program's normal behavior must survive inside
	// the fault-free invariant: from the all-undecided state the repaired
	// program can still reach the all-finalized state.
	start, _ := s.State(map[string]int{
		"b.g": 0, "d.g": 1,
		"b.0": 0, "d.0": Bot, "f.0": 0,
		"b.1": 0, "d.1": Bot, "f.1": 0,
		"b.2": 0, "d.2": Bot, "f.2": 0,
	})
	if m.And(start, res.Invariant) == bdd.False {
		t.Fatal("all-undecided state not in repaired invariant")
	}
	goal, _ := s.State(map[string]int{
		"b.g": 0, "d.g": 1,
		"b.0": 0, "d.0": 1, "f.0": 1,
		"b.1": 0, "d.1": 1, "f.1": 1,
		"b.2": 0, "d.2": 1, "f.2": 1,
	})
	fwd := s.Reachable(start, res.Trans)
	if m.And(fwd, goal) == bdd.False {
		t.Fatal("repaired program cannot finalize agreement in the absence of faults")
	}
}

// fullFollow is BA's case-A legitimacy: no Byzantine process, every
// non-general undecided or following the general, finalized implies decided.
func fullFollow(n int) expr.Expr {
	out := []expr.Expr{expr.Eq("b.g", 0)}
	for j := 0; j < n; j++ {
		bj := expr.Eq(nameB(j), 0)
		follows := expr.Or(expr.Eq(nameD(j), Bot), expr.EqVar(nameD(j), "d.g"))
		final := expr.Implies(expr.Eq(nameF(j), 1), expr.Ne(nameD(j), Bot))
		out = append(out, bj, follows, final)
	}
	return expr.And(out...)
}

func nameB(j int) string { return "b." + string(rune('0'+j)) }
func nameD(j int) string { return "d." + string(rune('0'+j)) }
func nameF(j int) string { return "f." + string(rune('0'+j)) }

func TestBA3CautiousVerified(t *testing.T) {
	if testing.Short() {
		t.Skip("cautious repair is slow by design")
	}
	c, res := repairAndVerify(t, BA(3), repair.Cautious)
	s := c.Space
	caseA, err := fullFollow(3).Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	caseA = s.M.And(caseA, s.ValidCur())
	if !s.M.Implies(caseA, res.Invariant) {
		t.Fatal("cautious repair dropped fault-free legitimate states")
	}
}

func TestBA2Lazy(t *testing.T) {
	repairAndVerify(t, BA(2), repair.Lazy)
}

func TestSC4LazySynthesizesCopyChain(t *testing.T) {
	c, res := repairAndVerify(t, SC(4), repair.Lazy)
	s := c.Space
	m := s.M

	// The entire invariant must survive (nothing about the chain is
	// unrepairable).
	if !m.Implies(c.Invariant, res.Invariant) {
		t.Fatal("repair shrank the chain invariant")
	}

	// The synthesized recovery must include copy-from-left: from the state
	// 3,3,7,3 process 2 can set x.2 := x.1.
	from := map[string]int{"fc": 0, "x.0": 3, "x.1": 3, "x.2": 7, "x.3": 3}
	to := map[string]int{"fc": 0, "x.0": 3, "x.1": 3, "x.2": 3, "x.3": 3}
	tr, err := s.Transition(from, to)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Implies(tr, res.Trans) {
		t.Fatal("copy-from-left recovery x.2 := x.1 missing")
	}

	// No synthesized transition may write a value other than the left
	// neighbour's (on reachable states): that is the safety spec, so the
	// verifier covers reachable ones; here we additionally check that every
	// transition from the full span obeys it.
	if bad := m.AndN(res.Trans, res.FaultSpan, c.BadTrans); bad != bdd.False {
		t.Fatal("synthesized transitions violate the copy-left discipline")
	}

	// Convergence: from the fully-corrupted-but-reachable span, repeated
	// program steps reach the invariant (verifier checks this too; this is
	// a belt-and-braces direct check from one deep state).
	deep, _ := s.State(map[string]int{"fc": 0, "x.0": 1, "x.1": 2, "x.2": 3, "x.3": 4})
	if m.And(deep, res.FaultSpan) != bdd.False {
		reach := s.Reachable(deep, res.Trans)
		if m.And(reach, res.Invariant) == bdd.False {
			t.Fatal("no recovery path from a multi-corrupted state")
		}
	}
}

func TestSC3Cautious(t *testing.T) {
	if testing.Short() {
		t.Skip("cautious repair is slow by design")
	}
	repairAndVerify(t, SC(3), repair.Cautious)
}

func TestBAFS2Lazy(t *testing.T) {
	c, res := repairAndVerify(t, BAFS(2), repair.Lazy)
	s := c.Space
	m := s.M
	// A crashed process must never act: no synthesized transition changes
	// d.j or f.j while up.j = 0.
	for j := 0; j < 2; j++ {
		frozen, err := expr.And(
			expr.Eq("up."+string(rune('0'+j)), 0),
			expr.Or(expr.Changed(nameD(j)), expr.Changed(nameF(j))),
		).Compile(s)
		if err != nil {
			t.Fatal(err)
		}
		if m.AndN(res.Trans, res.FaultSpan, frozen) != bdd.False {
			t.Fatalf("synthesized program moves crashed process %d", j)
		}
	}
}

func TestModelSizes(t *testing.T) {
	cases := []struct {
		def    *program.Def
		states float64
	}{
		{BA(2), 4 * 12 * 12},
		{SC(3), 2 * 10 * 10 * 10},
	}
	for _, tc := range cases {
		c := tc.def.MustCompile()
		if got := c.Space.CountStates(bdd.True); got != tc.states {
			t.Errorf("%s: state space = %g, want %g", tc.def.Name, got, tc.states)
		}
	}
}

func TestGeneratorValidation(t *testing.T) {
	for _, f := range []func(){
		func() { BA(0) },
		func() { BAFS(0) },
		func() { SC(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for invalid size")
				}
			}()
			f()
		}()
	}
}

func TestOriginalProgramsAreRealizable(t *testing.T) {
	for _, def := range []*program.Def{BA(2), BA(3), BAFS(2), SC(3)} {
		c := def.MustCompile()
		if !c.ProgramRealizable(c.Trans) {
			t.Errorf("%s: fault-intolerant program should be realizable", def.Name)
		}
	}
}
