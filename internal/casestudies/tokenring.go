package casestudies

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/program"
	"repro/internal/symbolic"
)

// TokenRing builds Dijkstra's K-state self-stabilizing token ring with n
// processes and counter domain k (use k ≥ n for stabilization), as a repair
// problem: the ring program circulates a single privilege in its legitimate
// states; transient faults corrupt counters arbitrarily, possibly creating
// several privileges. Repair must certify (and, where the original program
// lacks transitions, complete) recovery to the single-privilege states.
//
// Topology and restrictions: process 0 (the "root") reads x.(n-1) and x.0
// and writes x.0; process i ≥ 1 reads x.(i-1) and x.i and writes x.i.
//
// Actions (Dijkstra's protocol): the root, when privileged
// (x.0 = x.(n-1)), advances its counter modulo k; process i ≥ 1, when
// privileged (x.i ≠ x.(i-1)), copies its left neighbour.
//
// The safety specification pins the protocol shape — the root may only
// advance-when-privileged, others may only copy — using the same
// fault-parity exemption as the stabilizing chain. This case study extends
// the paper's evaluation with the canonical stabilization benchmark; it
// also exercises repair on a program that is *already* fault-tolerant
// (Dijkstra's theorem), which lazy repair must recognize and preserve.
func TokenRing(n, k int) *program.Def {
	if n < 2 {
		panic("casestudies: TokenRing requires at least two processes")
	}
	if k < 2 {
		panic("casestudies: TokenRing requires counter domain of at least 2")
	}
	d := &program.Def{Name: fmt.Sprintf("TR(%d,%d)", n, k)}

	cell := func(i int) string { return fmt.Sprintf("x.%d", i) }
	d.Vars = append(d.Vars, symbolic.VarSpec{Name: "fc", Domain: 2})
	for i := 0; i < n; i++ {
		d.Vars = append(d.Vars, symbolic.VarSpec{Name: cell(i), Domain: k})
	}

	// Root: advance when privileged.
	var rootActs []program.Action
	for v := 0; v < k; v++ {
		rootActs = append(rootActs, program.Action{
			Name:    fmt.Sprintf("advance-%d", v),
			Guard:   expr.And(expr.Eq(cell(0), v), expr.Eq(cell(n-1), v)),
			Updates: []program.Update{program.Set(cell(0), (v+1)%k)},
		})
	}
	d.Processes = append(d.Processes, &program.Process{
		Name:    "p0",
		Read:    []string{cell(n - 1), cell(0)},
		Write:   []string{cell(0)},
		Actions: rootActs,
	})
	for i := 1; i < n; i++ {
		d.Processes = append(d.Processes, &program.Process{
			Name:  fmt.Sprintf("p%d", i),
			Read:  []string{cell(i - 1), cell(i)},
			Write: []string{cell(i)},
			Actions: []program.Action{{
				Name:    "copy",
				Guard:   expr.NeVar(cell(i), cell(i-1)),
				Updates: []program.Update{program.Copy(cell(i), cell(i-1))},
			}},
		})
	}

	// Transient faults corrupt any single counter, toggling the parity.
	anyValue := make([]int, k)
	for v := range anyValue {
		anyValue[v] = v
	}
	for i := 0; i < n; i++ {
		for parity := 0; parity <= 1; parity++ {
			d.Faults = append(d.Faults, program.Action{
				Name:  fmt.Sprintf("corrupt-%d-p%d", i, parity),
				Guard: expr.Eq("fc", parity),
				Updates: []program.Update{
					program.Choose(cell(i), anyValue...),
					program.Set("fc", 1-parity),
				},
			})
		}
	}

	// Privileges: root iff x.0 = x.(n-1); process i iff x.i ≠ x.(i-1).
	priv := make([]expr.Expr, n)
	priv[0] = expr.EqVar(cell(0), cell(n-1))
	for i := 1; i < n; i++ {
		priv[i] = expr.NeVar(cell(i), cell(i-1))
	}
	// Invariant: exactly one privilege.
	var exactlyOne []expr.Expr
	for j := 0; j < n; j++ {
		conj := []expr.Expr{priv[j]}
		for l := 0; l < n; l++ {
			if l != j {
				conj = append(conj, expr.Not(priv[l]))
			}
		}
		exactlyOne = append(exactlyOne, expr.And(conj...))
	}
	d.Invariant = expr.Or(exactlyOne...)

	// Protocol-shape safety, with the fault-parity exemption: the root may
	// change x.0 only when privileged and only by advancing; process i ≥ 1
	// may change x.i only to its left neighbour's value.
	var rootAdvance []expr.Expr
	for v := 0; v < k; v++ {
		rootAdvance = append(rootAdvance, expr.And(
			expr.Eq(cell(0), v), expr.Eq(cell(n-1), v),
			expr.NextEq(cell(0), (v+1)%k)))
	}
	badWrites := []expr.Expr{
		expr.And(expr.Changed(cell(0)), expr.Not(expr.Or(rootAdvance...))),
	}
	for i := 1; i < n; i++ {
		badWrites = append(badWrites, expr.And(
			expr.Changed(cell(i)),
			expr.Not(expr.NextEqVar(cell(i), cell(i-1)))))
	}
	d.BadTrans = expr.And(expr.Unchanged("fc"), expr.Or(badWrites...))
	return d
}
