package casestudies

import (
	"context"
	"testing"

	"repro/internal/bdd"
	"repro/internal/repair"
	"repro/internal/verify"
)

func TestTokenRingLazyVerified(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{3, 4}, {4, 5}} {
		d := TokenRing(tc.n, tc.k)
		c := d.MustCompile()
		res, err := repair.Lazy(context.Background(), c, repair.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		rep := verify.Result(c, res)
		if !rep.OK() {
			t.Fatalf("%s: verification failed:\n%s", d.Name, rep)
		}
		// Dijkstra's program is already stabilizing for k ≥ n: the whole
		// single-privilege invariant must survive.
		if !c.Space.M.Implies(c.Invariant, res.Invariant) {
			t.Fatalf("%s: repair shrank the single-privilege invariant", d.Name)
		}
	}
}

func TestTokenRingPreservesProtocol(t *testing.T) {
	d := TokenRing(3, 4)
	c := d.MustCompile()
	res, err := repair.Lazy(context.Background(), c, repair.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := c.Space
	m := s.M
	// Every original transition from the repaired invariant that stays in
	// it must survive (the program was already correct there).
	inside := m.AndN(c.Trans, res.Invariant, s.Prime(res.Invariant))
	if !m.Implies(inside, res.Trans) {
		t.Fatal("repair dropped original in-invariant protocol moves")
	}
	// The token keeps circulating: from a legit state, the whole legit set
	// is reachable (the privilege makes a full round).
	start, _ := s.State(map[string]int{"fc": 0, "x.0": 0, "x.1": 0, "x.2": 0})
	reach := s.Reachable(start, res.Trans)
	// From all-equal (root privileged) the root advances and the token
	// travels: at least n distinct legit configurations must be reachable.
	legitReach := m.And(reach, res.Invariant)
	if got := s.CountStates(legitReach); got < 3 {
		t.Fatalf("token does not circulate: only %g legit states reachable", got)
	}
}

func TestTokenRingRecoversFromTwoPrivileges(t *testing.T) {
	d := TokenRing(3, 4)
	c := d.MustCompile()
	res, err := repair.Lazy(context.Background(), c, repair.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := c.Space
	m := s.M
	// x = (0, 1, 2): privileges at p1 and p2 — an illegitimate state.
	twoPriv, _ := s.State(map[string]int{"fc": 0, "x.0": 0, "x.1": 1, "x.2": 2})
	if m.And(twoPriv, c.Invariant) != bdd.False {
		t.Fatal("test state should be illegitimate")
	}
	if m.And(twoPriv, res.FaultSpan) == bdd.False {
		t.Skip("state outside certified span")
	}
	reach := s.Reachable(twoPriv, res.Trans)
	if m.And(reach, res.Invariant) == bdd.False {
		t.Fatal("no recovery from the two-privilege state")
	}
}

func TestTokenRingValidation(t *testing.T) {
	for _, f := range []func(){
		func() { TokenRing(1, 4) },
		func() { TokenRing(3, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for invalid parameters")
				}
			}()
			f()
		}()
	}
}
