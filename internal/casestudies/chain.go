package casestudies

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/program"
	"repro/internal/symbolic"
)

// ChainDomain is the per-cell value domain of the stabilizing chain. With 10
// values per cell, SC(n) has 10^n states, matching the 10^19–10^30 ladder of
// the paper's Table II.
const ChainDomain = 10

// SC builds the stabilizing-chain instance with n cells x.0 … x.(n-1).
//
// Process i (for i ≥ 1) reads x.(i-1) and x.i and writes x.i; cell x.0 is
// owned by the environment and no process writes it. The legitimate states
// are those where every cell equals its left neighbour (hence all equal
// x.0). The fault-intolerant program has no actions at all — it merely rests
// in the invariant — and transient faults corrupt arbitrary single cells.
// Repair must therefore *discover* the copy-from-left stabilization
// protocol, and Step 2 must discard every recovery candidate whose
// read-restriction group is incomplete (anything that peeks beyond the left
// neighbour).
//
// The safety specification says a cell may only ever be rewritten to its
// left neighbour's current value. To exempt the faults themselves from this
// constraint, every fault toggles a parity variable fc that no process can
// read or write; a transition counts as a (bad) program write only if it
// leaves fc unchanged.
func SC(n int) *program.Def {
	if n < 2 {
		panic("casestudies: SC requires at least two cells")
	}
	d := &program.Def{Name: fmt.Sprintf("SC(%d)", n)}

	cell := func(i int) string { return fmt.Sprintf("x.%d", i) }
	d.Vars = append(d.Vars, symbolic.VarSpec{Name: "fc", Domain: 2})
	for i := 0; i < n; i++ {
		d.Vars = append(d.Vars, symbolic.VarSpec{Name: cell(i), Domain: ChainDomain})
	}

	for i := 1; i < n; i++ {
		d.Processes = append(d.Processes, &program.Process{
			Name:  fmt.Sprintf("p%d", i),
			Read:  []string{cell(i - 1), cell(i)},
			Write: []string{cell(i)},
		})
	}

	// Transient faults: corrupt any single cell to any value, toggling the
	// fault-parity variable.
	anyValue := make([]int, ChainDomain)
	for v := range anyValue {
		anyValue[v] = v
	}
	for i := 0; i < n; i++ {
		for parity := 0; parity <= 1; parity++ {
			d.Faults = append(d.Faults, program.Action{
				Name:  fmt.Sprintf("corrupt-%d-p%d", i, parity),
				Guard: expr.Eq("fc", parity),
				Updates: []program.Update{
					program.Choose(cell(i), anyValue...),
					program.Set("fc", 1-parity),
				},
			})
		}
	}

	var eqs []expr.Expr
	for i := 1; i < n; i++ {
		eqs = append(eqs, expr.EqVar(cell(i), cell(i-1)))
	}
	d.Invariant = expr.And(eqs...)

	var badWrites []expr.Expr
	for i := 1; i < n; i++ {
		badWrites = append(badWrites, expr.And(
			expr.Changed(cell(i)),
			expr.Not(expr.NextEqVar(cell(i), cell(i-1))),
		))
	}
	d.BadTrans = expr.And(expr.Unchanged("fc"), expr.Or(badWrites...))
	return d
}
