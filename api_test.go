package repro

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestRepairSingleEntry drives the redesigned entry point through both
// algorithms and a multi-worker engine, and checks the result verifies.
func TestRepairSingleEntry(t *testing.T) {
	for _, alg := range []Algorithm{LazyAlg, CautiousAlg} {
		def, err := CaseStudy("sc", 4)
		if err != nil {
			t.Fatal(err)
		}
		c, res, err := Repair(context.Background(), def,
			WithAlgorithm(alg), WithWorkers(2))
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		rep, err := VerifyContext(context.Background(), c, res, 2)
		if err != nil {
			t.Fatalf("%v: verify: %v", alg, err)
		}
		if !rep.OK() {
			t.Fatalf("%v: verification failed:\n%s", alg, rep)
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	if LazyAlg.String() != "lazy" || CautiousAlg.String() != "cautious" {
		t.Fatalf("algorithm names: %q, %q", LazyAlg, CautiousAlg)
	}
	if s := Algorithm(7).String(); !strings.Contains(s, "7") {
		t.Fatalf("unknown algorithm renders as %q", s)
	}
}

func TestRepairTimeout(t *testing.T) {
	def, err := CaseStudy("ba", 6)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = Repair(context.Background(), def, WithTimeout(time.Nanosecond))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// The deprecated wrappers must remain exact synonyms for the corresponding
// Repair calls: same invariant, fault-span, and transition counts.
func TestDeprecatedWrappersAgree(t *testing.T) {
	def1, _ := CaseStudy("sc", 4)
	c1, r1, err := Lazy(def1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	def2, _ := CaseStudy("sc", 4)
	c2, r2, err := Repair(context.Background(), def2)
	if err != nil {
		t.Fatal(err)
	}
	if CountStates(c1, r1.Invariant) != CountStates(c2, r2.Invariant) ||
		CountStates(c1, r1.FaultSpan) != CountStates(c2, r2.FaultSpan) ||
		CountTransitions(c1, r1.Trans) != CountTransitions(c2, r2.Trans) {
		t.Fatal("Lazy wrapper and Repair disagree on sc n=4")
	}
}

// TestCrossManagerPanics pins the misuse bug: handing a Node from one
// Compiled's manager to another must panic with a message naming the
// manager mismatch rather than silently counting the wrong function.
func TestCrossManagerPanics(t *testing.T) {
	bigDef, _ := CaseStudy("ba", 3)
	_, bigRes, err := Lazy(bigDef, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	smallDef, _ := CaseStudy("sc", 3)
	small, _, err := Lazy(smallDef, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	foreign := bigRes.Trans // index valid only in big's manager

	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s accepted a foreign node", name)
				return
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, "not from this manager") {
				t.Errorf("%s panicked with unhelpful message: %v", name, r)
			}
		}()
		f()
	}
	expectPanic("CountStates", func() { CountStates(small, foreign) })
	expectPanic("CountTransitions", func() { CountTransitions(small, foreign) })
	expectPanic("Intersects", func() { Intersects(small, foreign, bigRes.Invariant) })
}
