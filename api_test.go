package repro

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestRepairSingleEntry drives the redesigned entry point through both
// algorithms and a multi-worker engine, and checks the result verifies.
func TestRepairSingleEntry(t *testing.T) {
	for _, alg := range []Algorithm{LazyAlg, CautiousAlg} {
		def, err := CaseStudy("sc", 4)
		if err != nil {
			t.Fatal(err)
		}
		c, res, err := Repair(context.Background(), def,
			WithAlgorithm(alg), WithEngine(EngineConfig{Workers: 2}))
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		rep, err := Verify(context.Background(), c, res, WithEngine(EngineConfig{Workers: 2}))
		if err != nil {
			t.Fatalf("%v: verify: %v", alg, err)
		}
		if !rep.OK() {
			t.Fatalf("%v: verification failed:\n%s", alg, rep)
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	if LazyAlg.String() != "lazy" || CautiousAlg.String() != "cautious" {
		t.Fatalf("algorithm names: %q, %q", LazyAlg, CautiousAlg)
	}
	if s := Algorithm(7).String(); !strings.Contains(s, "7") {
		t.Fatalf("unknown algorithm renders as %q", s)
	}
}

func TestRepairTimeout(t *testing.T) {
	def, err := CaseStudy("ba", 6)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = Repair(context.Background(), def, WithTimeout(time.Nanosecond))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// TestVerifyOptionsAgree checks the redesigned Verify against itself across
// worker counts and manager tuning: same verdict, any options.
func TestVerifyOptionsAgree(t *testing.T) {
	def, _ := CaseStudy("sc", 4)
	c, res, err := Repair(context.Background(), def)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Verify(context.Background(), c, res, WithEngine(EngineConfig{Workers: 1}))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Verify(context.Background(), c, res, WithEngine(EngineConfig{Workers: 3, Reorder: 1 << 14}))
	if err != nil {
		t.Fatal(err)
	}
	if serial.OK() != parallel.OK() || !serial.OK() {
		t.Fatalf("verify verdicts disagree: serial %v, parallel %v", serial.OK(), parallel.OK())
	}
}

// TestVerifyBudgetError pins the run-boundary contract on the verification
// path: a node budget blown while checking must come back as a *BudgetError
// wrapped in an ordinary error, never as a panic escaping Verify.
func TestVerifyBudgetError(t *testing.T) {
	def, _ := CaseStudy("sc", 4)
	c, res, err := Repair(context.Background(), def)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Verify(context.Background(), c, res, WithEngine(EngineConfig{NodeBudget: 16}))
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetError", err)
	}
	if be.Live <= be.Budget || be.Budget != 16 {
		t.Fatalf("implausible BudgetError: %+v", be)
	}
}

// TestRepairWithCostModel drives the cost-carrying API end to end: a costed
// run must verify exactly like an uncosted one, report exact weighted counts,
// and achieve no more cost than the cost-blind synthesis under the same
// weights (measured here by re-pricing the uncosted result's transitions).
func TestRepairWithCostModel(t *testing.T) {
	def, err := CaseStudy("ba", 3)
	if err != nil {
		t.Fatal(err)
	}
	c, res, err := Repair(context.Background(), def, WithCostModel(CostModel{Default: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Costed || res.AchievedCost <= 0 {
		t.Fatalf("costed run reported Costed=%t AchievedCost=%g", res.Costed, res.AchievedCost)
	}
	rep, err := Verify(context.Background(), c, res)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("costed repair fails verification:\n%s", rep)
	}

	blindDef, _ := CaseStudy("ba", 3)
	bc, blind, err := Repair(context.Background(), blindDef)
	if err != nil {
		t.Fatal(err)
	}
	// Under unit weights the cost-blind achieved cost is its recovery
	// transition count; the minimizing run must not exceed it.
	blindCost := CountTransitions(bc, bc.Space.M.AndN(blind.Trans, bc.Space.M.Not(blind.Invariant), bc.Space.ValidTrans()))
	if res.AchievedCost > blindCost {
		t.Fatalf("cost-aware achieved %g > cost-blind %g", res.AchievedCost, blindCost)
	}
}

// TestCrossManagerPanics pins the misuse bug: handing a Node from one
// Compiled's manager to another must panic with a message naming the
// manager mismatch rather than silently counting the wrong function.
func TestCrossManagerPanics(t *testing.T) {
	bigDef, _ := CaseStudy("ba", 3)
	_, bigRes, err := Repair(context.Background(), bigDef)
	if err != nil {
		t.Fatal(err)
	}
	smallDef, _ := CaseStudy("sc", 3)
	small, _, err := Repair(context.Background(), smallDef)
	if err != nil {
		t.Fatal(err)
	}
	foreign := bigRes.Trans // index valid only in big's manager

	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s accepted a foreign node", name)
				return
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, "not from this manager") {
				t.Errorf("%s panicked with unhelpful message: %v", name, r)
			}
		}()
		f()
	}
	expectPanic("CountStates", func() { CountStates(small, foreign) })
	expectPanic("CountTransitions", func() { CountTransitions(small, foreign) })
	expectPanic("Intersects", func() { Intersects(small, foreign, bigRes.Invariant) })
}
