package repro

// Benchmarks regenerating the paper's evaluation, one family per table or
// figure (see DESIGN.md §6 and EXPERIMENTS.md for the full ladders — the
// sizes here are kept moderate so `go test -bench=.` terminates quickly;
// cmd/tables runs the full ladders):
//
//	BenchmarkTable1* — Table I: Byzantine agreement, cautious vs lazy.
//	BenchmarkTable2* — Table II: stabilizing chain at scale, lazy.
//	BenchmarkTable3* — the garbled second table's caption: BA + fail-stop.
//	BenchmarkTable4* — ablations: pure lazy (no reachability heuristic) and
//	                   deferred cycle-breaking.
//	BenchmarkFigure5* — the Section III-B group computation itself.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/repair"
)

func benchRepair(b *testing.B, caseName string, n int, alg func(*Compiled, Options) (*Result, error), opts Options) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		def, err := CaseStudy(caseName, n)
		if err != nil {
			b.Fatal(err)
		}
		c, err := def.Compile()
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := alg(c, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func lazyAlg(c *Compiled, o Options) (*Result, error) {
	return repair.Lazy(context.Background(), c, o)
}

func cautiousAlg(c *Compiled, o Options) (*Result, error) {
	return repair.Cautious(context.Background(), c, o)
}

func BenchmarkTable1BALazy(b *testing.B) {
	for _, n := range []int{3, 6, 10} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchRepair(b, "ba", n, lazyAlg, DefaultOptions())
		})
	}
}

func BenchmarkTable1BACautious(b *testing.B) {
	for _, n := range []int{3, 6, 10} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchRepair(b, "ba", n, cautiousAlg, DefaultOptions())
		})
	}
}

func BenchmarkTable2SCLazy(b *testing.B) {
	for _, n := range []int{8, 12, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchRepair(b, "sc", n, lazyAlg, DefaultOptions())
		})
	}
}

// BenchmarkTable2SCStep2 isolates Step 2 (Algorithm 2) on the chain: the
// paper's Table II shows it staying ≈flat while Step 1 grows.
func BenchmarkTable2SCStep2(b *testing.B) {
	for _, n := range []int{8, 12, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			def, err := CaseStudy("sc", n)
			if err != nil {
				b.Fatal(err)
			}
			c, err := def.Compile()
			if err != nil {
				b.Fatal(err)
			}
			mask, err := repair.AddMasking(context.Background(), c, c.Invariant, c.BadTrans, repair.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				repair.Realize(c, mask.Trans, mask.FaultSpan)
			}
		})
	}
}

func BenchmarkTable3BAFSLazy(b *testing.B) {
	for _, n := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchRepair(b, "bafs", n, lazyAlg, DefaultOptions())
		})
	}
}

func BenchmarkTable4PureLazy(b *testing.B) {
	opts := DefaultOptions()
	opts.ReachabilityHeuristic = false
	for _, n := range []int{3, 6} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchRepair(b, "ba", n, lazyAlg, opts)
		})
	}
}

func BenchmarkTable4DeferCycles(b *testing.B) {
	opts := DefaultOptions()
	opts.DeferCycleBreaking = true
	for _, n := range []int{3, 6} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchRepair(b, "ba", n, lazyAlg, opts)
		})
	}
}

// BenchmarkFigure5Group measures the symbolic read-restriction group
// computation (Section III-B) on Byzantine agreement's full transition set.
func BenchmarkFigure5Group(b *testing.B) {
	def, err := CaseStudy("ba", 8)
	if err != nil {
		b.Fatal(err)
	}
	c, err := def.Compile()
	if err != nil {
		b.Fatal(err)
	}
	p := c.Procs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Group(c.Trans)
	}
}

// BenchmarkFigure5MaxRealizable measures the closed-form Algorithm-2 kernel.
func BenchmarkFigure5MaxRealizable(b *testing.B) {
	def, err := CaseStudy("ba", 8)
	if err != nil {
		b.Fatal(err)
	}
	c, err := def.Compile()
	if err != nil {
		b.Fatal(err)
	}
	p := c.Procs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.MaxRealizableSubset(c.Trans)
	}
}
